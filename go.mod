module kmachine

go 1.24
