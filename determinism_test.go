// Golden determinism tests: a run is a pure function of (machines,
// Config), so Stats and outputs at a fixed seed must be bit-identical
// across engine rewrites — this is the regression fence for "strict
// behavioral equivalence" across perf work. The constants below were
// re-recorded when gen.Gnp moved to its per-row canonical form
// (row-seeded geometric skipping, the definition shard generation
// replays): the generated graph at a given seed legitimately changed
// then, and the sharded/full equivalence suite extends the fence across
// input paths. The graph-free dsort goldens still date to PR 1.
package kmachine_test

import (
	"hash/fnv"
	"math"
	"testing"

	"kmachine/internal/conncomp"
	"kmachine/internal/core"
	"kmachine/internal/dsort"
	"kmachine/internal/gen"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/triangle"
)

func hashU64s(t *testing.T, xs []uint64) uint64 {
	t.Helper()
	h := fnv.New64a()
	var b [8]byte
	for _, u := range xs {
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func checkStats(t *testing.T, s *core.Stats, rounds, messages, words, maxRecv int64, supersteps int) {
	t.Helper()
	if s.Rounds != rounds || s.Supersteps != supersteps || s.Messages != messages ||
		s.Words != words || s.MaxRecvWords != maxRecv {
		t.Errorf("stats = Rounds=%d Supersteps=%d Messages=%d Words=%d MaxRecvWords=%d,\nwant     Rounds=%d Supersteps=%d Messages=%d Words=%d MaxRecvWords=%d",
			s.Rounds, s.Supersteps, s.Messages, s.Words, s.MaxRecvWords,
			rounds, supersteps, messages, words, maxRecv)
	}
}

func TestGoldenPageRank(t *testing.T) {
	g := gen.Gnp(500, 0.02, 1)
	p := partition.NewRVP(g, 8, 2)
	opts := pagerank.AlgorithmOne(0.15)
	opts.Tokens, opts.Iterations = 4, 12
	res, err := pagerank.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(500), Seed: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 102, 13310, 26620, 3576, 24)
	est := make([]uint64, len(res.Estimate))
	for i, x := range res.Estimate {
		est[i] = math.Float64bits(x)
	}
	if h := hashU64s(t, est); h != 0xa7dda344efb07938 {
		t.Errorf("Estimate hash = %#x, want 0xa7dda344efb07938", h)
	}
	psi := make([]uint64, len(res.Psi))
	for i, x := range res.Psi {
		psi[i] = uint64(x)
	}
	if h := hashU64s(t, psi); h != 0x1b274d89ccff875b {
		t.Errorf("Psi hash = %#x, want 0x1b274d89ccff875b", h)
	}
}

func TestGoldenDistributedSort(t *testing.T) {
	in := dsort.RandomInput(3000, 8, 1, dsort.UniformKeys)
	res, err := dsort.Run(in, core.Config{K: 8, Bandwidth: 8, Seed: 3}, 64)
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 27, 8538, 8538, 1109, 6)
	var flat []uint64
	for _, blk := range res.Blocks {
		flat = append(flat, blk...)
	}
	if h := hashU64s(t, flat); h != 0x8276147cfa083e13 {
		t.Errorf("Blocks hash = %#x, want 0x8276147cfa083e13", h)
	}
	if res.RebalancedKeys != 212 {
		t.Errorf("RebalancedKeys = %d, want 212", res.RebalancedKeys)
	}
}

func TestGoldenTriangle(t *testing.T) {
	g := gen.Gnp(96, 0.5, 1)
	p := partition.NewRVP(g, 8, 2)
	res, err := triangle.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(96), Seed: 3}, triangle.AlgorithmOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 90, 12280, 24560, 3734, 3)
	if res.Count != 19148 {
		t.Errorf("Count = %d, want 19148", res.Count)
	}
}

func TestGoldenConnComp(t *testing.T) {
	g := gen.Gnp(400, 0.01, 1)
	p := partition.NewRVP(g, 8, 2)
	res, err := conncomp.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(400), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 85, 12055, 23774, 3238, 18)
	lbl := make([]uint64, len(res.Label))
	for i, l := range res.Label {
		lbl[i] = uint64(int64(l))
	}
	if h := hashU64s(t, lbl); h != 0x8ba2e1fc22a9b1d4 {
		t.Errorf("Label hash = %#x, want 0x8ba2e1fc22a9b1d4", h)
	}
	if res.Components != 7 {
		t.Errorf("Components = %d, want 7", res.Components)
	}
}

// TestGoldenDropPerSuperstep: the retention knob must change nothing
// except PerSuperstep itself.
func TestGoldenDropPerSuperstep(t *testing.T) {
	g := gen.Gnp(500, 0.02, 1)
	p := partition.NewRVP(g, 8, 2)
	opts := pagerank.AlgorithmOne(0.15)
	opts.Tokens, opts.Iterations = 4, 12
	res, err := pagerank.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(500), Seed: 3, DropPerSuperstep: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 102, 13310, 26620, 3576, 24)
	if res.Stats.PerSuperstep != nil {
		t.Errorf("DropPerSuperstep run retained %d per-superstep stats", len(res.Stats.PerSuperstep))
	}
}
