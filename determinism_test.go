// Golden determinism tests: a run is a pure function of (machines,
// Config), so Stats and outputs at a fixed seed must be bit-identical
// across engine rewrites. The constants below were recorded from the
// pre-persistent-worker engine (PR 1); the rebuilt engine (persistent
// workers, sparse link accounting, recycled transport buffers) must
// reproduce every one of them exactly — this is the regression fence
// for "strict behavioral equivalence" across perf work.
package kmachine_test

import (
	"hash/fnv"
	"math"
	"testing"

	"kmachine/internal/conncomp"
	"kmachine/internal/core"
	"kmachine/internal/dsort"
	"kmachine/internal/gen"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/triangle"
)

func hashU64s(t *testing.T, xs []uint64) uint64 {
	t.Helper()
	h := fnv.New64a()
	var b [8]byte
	for _, u := range xs {
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func checkStats(t *testing.T, s *core.Stats, rounds, messages, words, maxRecv int64, supersteps int) {
	t.Helper()
	if s.Rounds != rounds || s.Supersteps != supersteps || s.Messages != messages ||
		s.Words != words || s.MaxRecvWords != maxRecv {
		t.Errorf("stats = Rounds=%d Supersteps=%d Messages=%d Words=%d MaxRecvWords=%d,\nwant     Rounds=%d Supersteps=%d Messages=%d Words=%d MaxRecvWords=%d",
			s.Rounds, s.Supersteps, s.Messages, s.Words, s.MaxRecvWords,
			rounds, supersteps, messages, words, maxRecv)
	}
}

func TestGoldenPageRank(t *testing.T) {
	g := gen.Gnp(500, 0.02, 1)
	p := partition.NewRVP(g, 8, 2)
	opts := pagerank.AlgorithmOne(0.15)
	opts.Tokens, opts.Iterations = 4, 12
	res, err := pagerank.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(500), Seed: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 107, 13603, 27206, 3666, 24)
	est := make([]uint64, len(res.Estimate))
	for i, x := range res.Estimate {
		est[i] = math.Float64bits(x)
	}
	if h := hashU64s(t, est); h != 0x5e6b23a01fad7808 {
		t.Errorf("Estimate hash = %#x, want 0x5e6b23a01fad7808", h)
	}
	psi := make([]uint64, len(res.Psi))
	for i, x := range res.Psi {
		psi[i] = uint64(x)
	}
	if h := hashU64s(t, psi); h != 0xc3af0f89763e7395 {
		t.Errorf("Psi hash = %#x, want 0xc3af0f89763e7395", h)
	}
}

func TestGoldenDistributedSort(t *testing.T) {
	in := dsort.RandomInput(3000, 8, 1, dsort.UniformKeys)
	res, err := dsort.Run(in, core.Config{K: 8, Bandwidth: 8, Seed: 3}, 64)
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 27, 8538, 8538, 1109, 6)
	var flat []uint64
	for _, blk := range res.Blocks {
		flat = append(flat, blk...)
	}
	if h := hashU64s(t, flat); h != 0x8276147cfa083e13 {
		t.Errorf("Blocks hash = %#x, want 0x8276147cfa083e13", h)
	}
	if res.RebalancedKeys != 212 {
		t.Errorf("RebalancedKeys = %d, want 212", res.RebalancedKeys)
	}
}

func TestGoldenTriangle(t *testing.T) {
	g := gen.Gnp(96, 0.5, 1)
	p := partition.NewRVP(g, 8, 2)
	res, err := triangle.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(96), Seed: 3}, triangle.AlgorithmOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 88, 12092, 24184, 3672, 3)
	if res.Count != 18591 {
		t.Errorf("Count = %d, want 18591", res.Count)
	}
}

func TestGoldenConnComp(t *testing.T) {
	g := gen.Gnp(400, 0.01, 1)
	p := partition.NewRVP(g, 8, 2)
	res, err := conncomp.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(400), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 103, 14350, 28308, 3801, 21)
	lbl := make([]uint64, len(res.Label))
	for i, l := range res.Label {
		lbl[i] = uint64(int64(l))
	}
	if h := hashU64s(t, lbl); h != 0xebcb72bede0a8c30 {
		t.Errorf("Label hash = %#x, want 0xebcb72bede0a8c30", h)
	}
	if res.Components != 10 {
		t.Errorf("Components = %d, want 10", res.Components)
	}
}

// TestGoldenDropPerSuperstep: the retention knob must change nothing
// except PerSuperstep itself.
func TestGoldenDropPerSuperstep(t *testing.T) {
	g := gen.Gnp(500, 0.02, 1)
	p := partition.NewRVP(g, 8, 2)
	opts := pagerank.AlgorithmOne(0.15)
	opts.Tokens, opts.Iterations = 4, 12
	res, err := pagerank.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(500), Seed: 3, DropPerSuperstep: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, res.Stats, 107, 13603, 27206, 3666, 24)
	if res.Stats.PerSuperstep != nil {
		t.Errorf("DropPerSuperstep run retained %d per-superstep stats", len(res.Stats.PerSuperstep))
	}
}
