package kmachine_test

// Failure-injection suite over the real algorithm stack: kill machine j
// at superstep s — under the chaos transport, on both the loopback and
// the TCP substrate — and assert the failure-hardened runtime's
// guarantees end to end for pagerank and conncomp:
//
//   - the run returns a non-nil error within the configured
//     SuperstepTimeout (never hangs);
//   - the error wraps a *transport.MachineError attributing the failure
//     to the killed machine and the kill superstep;
//   - teardown is goroutine-clean (Close unblocks everything, safe to
//     call twice);
//   - and on the happy path the new knobs change nothing: a run with a
//     generous SuperstepTimeout is bit-identical to one without.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"kmachine"
	"kmachine/internal/algo"
	"kmachine/internal/conncomp"
	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/testutil"
	"kmachine/internal/transport"
	"kmachine/internal/transport/chaos"
	"kmachine/internal/transport/inmem"
	"kmachine/internal/transport/tcp"
)

const (
	failN      = 150
	failK      = 6
	failVictim = 3
	failStep   = 2
)

// runKilled executes the algorithm on a cluster whose transport kills
// failVictim at failStep, returning the run error. The generic helper
// is what makes the suite registry-shaped: any Algorithm descriptor
// slots in.
func runKilled[M, L, O any](t *testing.T, a algo.Algorithm[M, L, O], p *partition.VertexPartition, kind transport.Kind) error {
	t.Helper()
	machines := make([]core.Machine[M], p.K)
	for i := 0; i < p.K; i++ {
		m, err := a.NewMachine(p.View(core.MachineID(i)))
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	cfg := core.Config{K: p.K, Bandwidth: core.DefaultBandwidth(failN), Seed: 11,
		SuperstepTimeout: 5 * time.Second}
	cluster := core.NewCluster(cfg, func(id core.MachineID) core.Machine[M] { return machines[id] })

	var tr transport.Transport[M]
	switch kind {
	case transport.InMem:
		tr = chaos.Wrap[M](inmem.New[M](p.K), chaos.KillAt(failVictim, failStep))
	case transport.TCP:
		inner, err := tcp.New[M](p.K, a.Codec)
		if err != nil {
			t.Fatal(err)
		}
		// Drop-connection fault: sever the victim's real sockets and
		// let the tcp substrate's own deadline/cascade machinery
		// produce the error.
		tr = chaos.Wrap[M](inner, chaos.DropConnAt(failVictim, failStep, func() {
			inner.SeverMachine(failVictim)
		}))
	default:
		t.Fatalf("unknown transport kind %q", kind)
	}
	defer tr.Close()

	var runErr error
	done := make(chan struct{})
	go func() {
		_, runErr = cluster.RunOn(tr)
		close(done)
	}()
	testutil.WaitOrDump(t, done, 30*time.Second, "killed cluster")
	return runErr
}

// killCase is one row of the registry-shaped kill table.
type killCase struct {
	name string
	run  func(t *testing.T, kind transport.Kind) error
}

func failurePartition(t *testing.T) *partition.VertexPartition {
	t.Helper()
	g := gen.Gnp(failN, 0.05, 31)
	return partition.NewRVP(g, failK, 32)
}

func TestKillMachineMidRunAttributedOnEverySubstrate(t *testing.T) {
	cases := []killCase{
		{"pagerank", func(t *testing.T, kind transport.Kind) error {
			return runKilled(t, pagerank.Descriptor(failN, pagerank.AlgorithmOne(0.15)), failurePartition(t), kind)
		}},
		{"conncomp", func(t *testing.T, kind transport.Kind) error {
			return runKilled(t, conncomp.Descriptor(failN), failurePartition(t), kind)
		}},
	}
	for _, tc := range cases {
		for _, kind := range []transport.Kind{transport.InMem, transport.TCP} {
			t.Run(tc.name+"/"+string(kind), func(t *testing.T) {
				base := runtime.NumGoroutine()
				err := tc.run(t, kind)
				if err == nil {
					t.Fatal("run with a killed machine terminated without error")
				}
				var me *transport.MachineError
				if !errors.As(err, &me) {
					t.Fatalf("error %v carries no machine attribution", err)
				}
				if int(me.Machine) != failVictim {
					t.Errorf("failure attributed to machine %d, want %d (err: %v)", me.Machine, failVictim, err)
				}
				if me.Superstep != failStep {
					t.Errorf("failure attributed to superstep %d, want %d (err: %v)", me.Superstep, failStep, err)
				}
				testutil.NoLeakedGoroutines(t, base)
			})
		}
	}
}

// TestSuperstepTimeoutHappyPathIdentical: with no failure, a run under
// a per-superstep deadline must be bit-identical — Stats and outputs —
// to one without, on both substrates, through the PUBLIC RunConfig
// knob. This is the "deadline semantics leave the golden hashes
// unchanged" half of the acceptance criteria.
func TestSuperstepTimeoutHappyPathIdentical(t *testing.T) {
	g := kmachine.Gnp(300, 0.008, 56)
	p := kmachine.RandomVertexPartition(g, 4, 57)
	for _, kind := range []kmachine.TransportKind{kmachine.TransportInMem, kmachine.TransportTCP} {
		plain, err := kmachine.ConnectedComponentsOver(kmachine.RunConfig{Transport: kind}, p, 0, 58)
		if err != nil {
			t.Fatal(err)
		}
		timed, err := kmachine.ConnectedComponentsOver(
			kmachine.RunConfig{Transport: kind, SuperstepTimeout: 30 * time.Second}, p, 0, 58)
		if err != nil {
			t.Fatal(err)
		}
		sameStats(t, "timeout-vs-plain/"+string(kind), timed.Stats, plain.Stats)
		if timed.Components != plain.Components {
			t.Errorf("%s: components %d with timeout, %d without", kind, timed.Components, plain.Components)
		}
		for v := range plain.Label {
			if timed.Label[v] != plain.Label[v] {
				t.Fatalf("%s: vertex %d label diverges under SuperstepTimeout", kind, v)
			}
		}
	}
}

// TestPublicAPICancellation: a pre-canceled RunConfig.Context must
// abort any public entry point with a wrapped context error and partial
// cleanup, not run the computation.
func TestPublicAPICancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := kmachine.Gnp(200, 0.04, 51)
	p := kmachine.RandomVertexPartition(g, 4, 52)
	_, err := kmachine.PageRank(p, kmachine.PageRankConfig{
		RunConfig: kmachine.RunConfig{Context: ctx}, Seed: 53,
	})
	if err == nil {
		t.Fatal("pre-canceled context did not abort the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}
