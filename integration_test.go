package kmachine_test

// Cross-package integration tests: full pipelines that exercise several
// subsystems together, the way a downstream user would compose them.

import (
	"math"
	"testing"

	"kmachine"
	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
	"kmachine/internal/triangle"
)

// TestREPToTrianglesPipeline reproduces the footnote-3 workflow: the
// input arrives under the random *edge* partition, is converted to the
// random vertex partition as a measured k-machine computation, and the
// triangle enumeration then runs on the converted partition. The end
// result must still be exact, and the conversion cost must be the
// Õ(m/k²) the footnote claims.
func TestREPToTrianglesPipeline(t *testing.T) {
	g := gen.Gnp(150, 0.3, 7)
	const k = 27
	rep := partition.NewREP(g, k, 11)
	conv, err := partition.ConvertREPToRVP(rep, core.Config{K: k, Bandwidth: 8, Seed: 13}, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := triangle.Run(conv.RVP, core.Config{K: k, Bandwidth: 8, Seed: 19}, triangle.AlgorithmOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum := graph.TriangleChecksum(g.Triangles())
	if res.Count != wantCount || res.Checksum != wantSum {
		t.Fatalf("post-conversion enumeration wrong: %d triangles, want %d", res.Count, wantCount)
	}
	total := conv.Stats.Rounds + res.Stats.Rounds
	if total <= 0 {
		t.Error("pipeline reported no rounds")
	}
	t.Logf("REP->RVP conversion %d rounds + enumeration %d rounds", conv.Stats.Rounds, res.Stats.Rounds)
}

// TestPageRankMatchesSolverEndToEnd: the full public-API path (generate,
// partition, run, compare against the sequential solver) achieves the
// paper's δ-approximation on a graph large enough for concentration.
func TestPageRankMatchesSolverEndToEnd(t *testing.T) {
	g := kmachine.DirectedGnp(500, 0.02, 23)
	p := kmachine.RandomVertexPartition(g, 16, 29)
	res, err := kmachine.PageRank(p, kmachine.PageRankConfig{Eps: 0.2, Tokens: 512, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	truth := graph.ExpectedVisitPageRank(g, graph.PageRankOptions{Eps: 0.2, Tol: 1e-12, MaxIter: 5000})
	var worst float64
	count := 0
	for v := range truth {
		if truth[v] < 2.0/float64(g.N()) {
			continue
		}
		rel := math.Abs(res.Estimate[v]-truth[v]) / truth[v]
		if rel > worst {
			worst = rel
		}
		count++
	}
	if count == 0 {
		t.Skip("no sufficiently high-rank vertices")
	}
	if worst > 0.5 {
		t.Errorf("worst relative error %.3f on %d high-rank vertices; δ-approximation broken", worst, count)
	}
}

// TestCongestedCliqueEquivalence: the same graph enumerated under the
// k-machine RVP and under the congested clique (k = n) must produce the
// same triangle set — the two models differ only in cost.
func TestCongestedCliqueEquivalence(t *testing.T) {
	g := kmachine.Gnp(64, 0.4, 37)
	rvpRes, err := kmachine.Triangles(kmachine.RandomVertexPartition(g, 8, 41), kmachine.TriangleConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	cliqueRes, err := kmachine.Triangles(kmachine.CongestedCliquePartition(g), kmachine.TriangleConfig{Bandwidth: 1, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if rvpRes.Count != cliqueRes.Count || rvpRes.Checksum != cliqueRes.Checksum {
		t.Errorf("k-machine (%d) and congested clique (%d) disagree", rvpRes.Count, cliqueRes.Count)
	}
}

// TestAllSubgraphModesOnOneGraph: triangles, triads and 4-cliques on the
// same partition, each validated; together with the length-2-path
// identity sum_u C(deg u, 2) = triads + 3·triangles they cross-check
// one another.
func TestAllSubgraphModesOnOneGraph(t *testing.T) {
	g := kmachine.Gnp(100, 0.25, 53)
	p := kmachine.RandomVertexPartition(g, 27, 59)
	tri, err := kmachine.Triangles(p, kmachine.TriangleConfig{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	triads, err := kmachine.OpenTriads(p, kmachine.TriangleConfig{Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	cliques, err := kmachine.Cliques4(p, kmachine.TriangleConfig{Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	var paths int64
	for u := 0; u < g.N(); u++ {
		d := int64(g.Degree(u))
		paths += d * (d - 1) / 2
	}
	if got := triads.Count + 3*tri.Count; got != paths {
		t.Errorf("triads + 3·triangles = %d, want path count %d", got, paths)
	}
	if cliques.Count != g.CountCliques4() {
		t.Errorf("4-cliques %d, want %d", cliques.Count, g.CountCliques4())
	}
}

// TestSortThenComponentsShareCluster: two different algorithms run back
// to back with the same seeds must not interfere (no global state).
func TestIndependentRunsNoGlobalState(t *testing.T) {
	g := kmachine.Gnp(200, 0.05, 73)
	p := kmachine.RandomVertexPartition(g, 8, 79)
	before, err := kmachine.Triangles(p, kmachine.TriangleConfig{Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kmachine.Sort(2000, 8, 0, 89); err != nil {
		t.Fatal(err)
	}
	if _, err := kmachine.ConnectedComponents(p, 0, 97); err != nil {
		t.Fatal(err)
	}
	after, err := kmachine.Triangles(p, kmachine.TriangleConfig{Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	if before.Count != after.Count || before.Stats.Rounds != after.Stats.Rounds {
		t.Error("triangle run changed after unrelated computations: hidden global state")
	}
}
