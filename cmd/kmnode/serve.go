package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"kmachine/internal/jobs"
	"kmachine/internal/obs"
)

// This file is kmnode's daemon mode. `kmnode -serve -local k` builds
// the standing k-machine mesh ONCE and runs a job service over it:
//
//	kmnode -serve -local 8 -debug-addr 127.0.0.1:6060
//
// The HTTP/JSON control API lives on the -debug-addr mux next to pprof
// and expvar (127.0.0.1:0 when the flag is omitted):
//
//	POST /api/v1/jobs       {"algo":"pagerank","n":10000,"seed":42}
//	GET  /api/v1/jobs/{id}  status; done jobs carry result + output hash
//	GET  /api/v1/jobs       all jobs
//	GET  /api/v1/status     scheduler gauges (queue depth, mesh health)
//	POST /api/v1/drain      stop intake, wait until idle
//
// Shutdown: the first SIGINT/SIGTERM drains — in-flight and queued
// jobs finish, new submissions get 503 — then the mesh closes and the
// process exits 0. A second signal force-aborts the in-flight job
// through its context; teardown still completes cleanly.
func runServe(k int, addr string, tr *obs.Trace, retainJobs int) {
	if k < 2 {
		fatal("-serve needs -local k with k >= 2 for the standing mesh size")
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	backend, err := jobs.NewMeshBackend(k)
	if err != nil {
		fatal("standing mesh failed to build", slog.Int("k", k), slog.Any("err", err))
	}
	sched := jobs.New(backend, jobs.Options{Trace: tr, MaxJobs: retainJobs})
	mux := newDebugMux(tr)
	sched.RegisterAPI(mux)
	publishJobExpvars(sched)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("job service failed to listen", slog.String("addr", addr), slog.Any("err", err))
	}
	srv := &http.Server{Handler: mux}
	serveDone := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(serveDone)
	}()
	logger.Info("job service listening", slog.String("addr", ln.Addr().String()), slog.Int("k", k))
	// The address also goes to stdout so scripts can scrape it when the
	// OS picked the port.
	fmt.Printf("serving on %s\n", ln.Addr())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	logger.Info("drain started", slog.String("signal", sig.String()))
	go func() {
		sig2 := <-sigc
		logger.Warn("force-aborting in-flight job", slog.String("signal", sig2.String()))
		sched.Abort()
	}()
	if err := sched.Drain(context.Background()); err != nil {
		logger.Error("drain failed", slog.Any("err", err))
	}
	if err := sched.Close(); err != nil {
		logger.Error("scheduler close failed", slog.Any("err", err))
	}
	srv.Close()
	<-serveDone
	signal.Stop(sigc)
	st := sched.Stats()
	logger.Info("job service stopped", slog.Int64("done", st.Done), slog.Int64("failed", st.Failed))
}
