package main

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"kmachine/internal/jobs"
	"kmachine/internal/obs"
)

// This file is kmnode's debug plane — the seed of the resident
// daemon's control surface (ROADMAP item 1). -debug-addr serves:
//
//	/debug/pprof/...   the standard net/http/pprof profiles
//	/debug/vars        expvar JSON, including the kmachine.* gauges
//
// The kmachine.* expvars are all derived live from the run's trace
// recorder, so they move while the computation is in flight:
//
//	kmachine.superstep.current   highest superstep any span reached
//	                             (-1 before the first; the "where is
//	                             the run now" gauge)
//	kmachine.supersteps          supersteps entered so far (current+1)
//	kmachine.wire.bytes_sent     data-plane bytes shipped (frame spans;
//	kmachine.wire.bytes_recv     control frames are not span-recorded —
//	kmachine.wire.frames_sent    WireStats remains the physical total)
//	kmachine.wire.frames_recv
//	kmachine.wire.per_peer       the same four counters broken down by
//	                             peer machine ID (JSON array, index =
//	                             machine; a hot or stalling peer shows
//	                             up as a skewed lane)
//	kmachine.trace.spans         spans recorded so far
//	kmachine.trace.dropped       spans that fell off the ring
func startDebugServer(addr string, tr *obs.Trace) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	// The server lives for the process lifetime; kmnode exits when the
	// run (plus -debug-linger) is over, which is this server's teardown.
	go http.Serve(ln, newDebugMux(tr))
	return ln.Addr().String(), nil
}

// newDebugMux builds the debug plane's mux — pprof plus the expvar
// gauges — without binding it to a listener, so -serve can mount the
// job-service API on the same mux (serve.go) while single-run mode
// keeps the fire-and-forget server above.
func newDebugMux(tr *obs.Trace) *http.ServeMux {
	publishExpvars(tr)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// publishOnce guards the expvar registrations: expvar.Publish panics on
// duplicates, and tests may start more than one server per process.
var publishOnce sync.Once

// publishJobOnce guards the job-service expvars the same way.
var publishJobOnce sync.Once

// publishJobExpvars adds the scheduler's gauges next to the trace-fed
// kmachine.* set. The trace gauges are Reset per job by the scheduler,
// so under -serve they describe the LIVE job; kmachine.job.current says
// which job that is, and the kmachine.jobs.* counters accumulate over
// the daemon's lifetime.
func publishJobExpvars(s *jobs.Scheduler) {
	publishJobOnce.Do(func() {
		gauge := func(name string, read func(st jobs.Stats) any) {
			expvar.Publish(name, expvar.Func(func() any { return read(s.Stats()) }))
		}
		gauge("kmachine.job.current", func(st jobs.Stats) any { return st.Running })
		gauge("kmachine.jobs.queued", func(st jobs.Stats) any { return st.Queued })
		gauge("kmachine.jobs.done", func(st jobs.Stats) any { return st.Done })
		gauge("kmachine.jobs.failed", func(st jobs.Stats) any { return st.Failed })
		gauge("kmachine.jobs.canceled", func(st jobs.Stats) any { return st.Canceled })
		gauge("kmachine.jobs.mesh_rebuilds", func(st jobs.Stats) any { return st.Rebuilds })
		gauge("kmachine.jobs.recovered", func(st jobs.Stats) any { return st.Recovered })
		gauge("kmachine.jobs.evicted", func(st jobs.Stats) any { return st.Evicted })
		gauge("kmachine.jobs.draining", func(st jobs.Stats) any { return st.Draining })
	})
}

func publishExpvars(tr *obs.Trace) {
	publishOnce.Do(func() {
		gauge := func(name string, read func(c obs.Counters) any) {
			expvar.Publish(name, expvar.Func(func() any { return read(tr.Counters()) }))
		}
		gauge("kmachine.superstep.current", func(c obs.Counters) any { return c.CurrentSuperstep })
		gauge("kmachine.supersteps", func(c obs.Counters) any { return c.SuperstepsStarted })
		gauge("kmachine.wire.bytes_sent", func(c obs.Counters) any { return c.BytesSent })
		gauge("kmachine.wire.bytes_recv", func(c obs.Counters) any { return c.BytesRecv })
		gauge("kmachine.wire.frames_sent", func(c obs.Counters) any { return c.FramesSent })
		gauge("kmachine.wire.frames_recv", func(c obs.Counters) any { return c.FramesRecv })
		gauge("kmachine.wire.per_peer", func(c obs.Counters) any { return c.PerPeer })
		gauge("kmachine.trace.spans", func(c obs.Counters) any { return c.Total })
		gauge("kmachine.trace.dropped", func(c obs.Counters) any { return c.Dropped })
	})
}
