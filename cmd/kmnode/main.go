// Command kmnode runs k-machine computations over real TCP sockets.
// Any algorithm in the registry (kmachine/internal/algo) can run —
// pagerank, triangle, conncomp, dsort, routing — because the registry
// erases every algorithm behind the same descriptor interface.
//
// Standalone mode starts ONE machine of the cluster in this process;
// the k processes (possibly on k hosts) find each other through the
// -peers list and run the distributed superstep protocol, with machine
// 0 acting as the coordinator:
//
//	kmnode -id 0 -k 4 -listen 127.0.0.1:9000 \
//	       -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//	       -algo pagerank -n 10000 -p 0.001 -seed 42
//	kmnode -id 1 -k 4 -listen 127.0.0.1:9001 -peers ... (same flags)
//	...
//
// Every node builds the same input deterministically from the shared
// seed (the random-vertex-partition input distribution of §1.1), so no
// input distribution round is needed — exactly the model's assumption
// that the input is already partitioned when the computation starts.
//
// Local mode spawns the entire k-machine cluster inside this process,
// every machine with its own listener and dialer on loopback TCP:
//
//	kmnode -local 8 -algo conncomp -n 10000 -p 0.001 -seed 42
//
// Either way the computation reports the measured round complexity
// (the paper's T) plus the algorithm's result summary, and the numbers
// are bit-identical to the in-process simulator on the same seed.
//
// Input setup defaults to materializing the full graph in every
// process. -sharded switches to partition-local setup — each process
// builds only its machine's CSR shard from the generator's per-row
// canonical stream, O((n+m)/k) memory instead of O(n+m) — and -input
// edges.txt ingests an edge-list file (full, or pre-split by
// cmd/internal/cliutil's splitter) instead of generating G(n,p). Both
// knobs change setup cost only: Stats, summaries, and output hashes
// are bit-identical to the default path.
//
// Observability: -trace out.json records a wall-clock phase timeline
// (compute / barrier / exchange per machine and superstep, plus
// per-peer frame spans) and writes it as Chrome trace-event JSON —
// open it in chrome://tracing or Perfetto. -debug-addr serves
// net/http/pprof and expvar (see debug.go for the published gauges)
// while the run is in flight; -debug-linger keeps that server alive
// after the run so the final counters can still be scraped.
// Diagnostics go to stderr via log/slog — one human-readable line per
// event by default, `-log-format json` for machine consumption — with
// machine/superstep attribution attached as structured attrs whenever
// the runtime recorded it. Results (stats, summaries, hashes) stay on
// stdout.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"kmachine/cmd/internal/cliutil"
	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/core"
	"kmachine/internal/obs"
	"kmachine/internal/partition"
	"kmachine/internal/transport"
	"kmachine/internal/transport/node"
)

// logger is the process-wide diagnostic logger (stderr). It starts on
// the one-line text handler so even pre-flag failures render; main
// swaps in the JSON handler when -log-format json asks for it.
var logger = slog.New(newLineHandler(os.Stderr))

// tel is the process-wide telemetry state (trace recorder, trace output
// path, debug-server linger); zero means "not instrumented".
var tel telemetry

func main() {
	// A panic that escapes the runtime (a bug, not an expected failure)
	// must still come out as a one-line diagnostic and a non-zero exit,
	// not a raw stack trace: kmnode processes are cluster members, and
	// their exit status is what orchestration scripts key off.
	defer func() {
		if r := recover(); r != nil {
			fatal("internal panic", slog.Any("panic", r))
		}
	}()
	var (
		local     = flag.Int("local", 0, "spawn a full k-machine cluster over loopback TCP in this process")
		serve     = flag.Bool("serve", false, "daemon mode: build the standing mesh once (-local k sets its size) and serve the job-submission HTTP API on -debug-addr")
		id        = flag.Int("id", -1, "this node's machine ID (standalone mode)")
		k         = flag.Int("k", 0, "cluster size (standalone mode)")
		listen    = flag.String("listen", "", "listen address, e.g. 127.0.0.1:9000 (standalone mode)")
		peers     = flag.String("peers", "", "comma-separated k listen addresses in machine-ID order (standalone mode)")
		algoName  = flag.String("algo", "pagerank", "computation to run ("+strings.Join(algo.Names(), "|")+")")
		list      = flag.Bool("algos", false, "list registered algorithms and exit")
		n         = flag.Int("n", 10000, "number of vertices (keys for dsort, probes/machine for routing)")
		p         = flag.Float64("p", 0.0, "G(n,p) edge probability; 0 means 10/n")
		seed      = flag.Uint64("seed", 1, "seed for graph, partition, and machine randomness")
		bw        = flag.Int("bandwidth", 0, "per-link words/round; 0 means DefaultBandwidth(n)")
		eps       = flag.Float64("eps", 0.15, "PageRank reset probability")
		top       = flag.Int("top", 5, "how many top-ranked vertices to print")
		timeout   = flag.Duration("dial-timeout", 10*time.Second, "how long to wait for peers to come up")
		deadline  = flag.Duration("superstep-timeout", 0, "per-superstep deadline; a crashed or wedged peer surfaces as an attributed error within it (0 = none)")
		streaming = flag.Bool("streaming", false, "streaming supersteps: overlap compute with communication by shipping per-peer batches mid-superstep (results and stats are identical)")
		ckEvery   = flag.Int("checkpoint-every", 0, "capture machine state every s supersteps and survive machine failures by resuming from the last checkpoint (0 = off, fail fast)")
		ckDir     = flag.String("checkpoint-dir", "", "persist checkpoints to this directory instead of memory only — complete cluster checkpoints land as ckpt-*.kmnc files (needs -checkpoint-every)")
		retain    = flag.Int("retain-jobs", 0, "daemon mode: keep at most this many job records, evicting finished ones oldest-first (0 = unbounded)")
		sharded   = flag.Bool("sharded", false, "partition-local setup: build only this machine's CSR shard instead of materializing the full graph (results and stats are identical)")
		input     = flag.String("input", "", "read the graph from this edge-list file ('u v' per line, '#' comments) instead of generating G(n,p); -n still declares the vertex-ID space")
		splitOut  = flag.String("split-out", "", "split -input into per-machine edge-list files in this directory and exit (needs -local k or -k for the machine count)")
		trace     = flag.String("trace", "", "write a Chrome trace-event JSON phase timeline to this file (open in chrome://tracing or Perfetto)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. :0 or 127.0.0.1:6060)")
		linger    = flag.Duration("debug-linger", 0, "keep the debug server alive this long after the run, so final counters can be scraped")
		logFormat = flag.String("log-format", "text", "diagnostic log format on stderr: text (one line per event) or json")
	)
	flag.Parse()

	switch *logFormat {
	case "text":
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fatal("unknown -log-format", slog.String("format", *logFormat), slog.String("supported", "text, json"))
	}

	if *list {
		for _, e := range algo.Entries() {
			fmt.Printf("%-10s %s\n", e.Name, e.Doc)
		}
		return
	}
	entry, ok := algo.Lookup(*algoName)
	if !ok {
		fatal("unknown -algo", slog.String("algo", *algoName), slog.String("supported", strings.Join(algo.Names(), ", ")))
	}

	prob := algo.Problem{N: *n, EdgeP: *p, Seed: *seed, Bandwidth: *bw, Eps: *eps, Top: *top,
		SuperstepTimeout: *deadline, Streaming: *streaming, Sharded: *sharded, InputPath: *input,
		Checkpoint: algo.CheckpointSpec{Every: *ckEvery, Dir: *ckDir}}
	switch {
	case *local >= 2:
		prob.K = *local
	case *id >= 0 || (*splitOut != "" && *k >= 2):
		prob.K = *k
	default:
		if *serve {
			fmt.Fprintln(os.Stderr, "kmnode: -serve needs -local k for the standing mesh size")
		} else {
			fmt.Fprintln(os.Stderr, "kmnode: need either -local k, or -id with -k/-listen/-peers")
		}
		flag.Usage()
		os.Exit(2)
	}

	if *splitOut != "" {
		if *input == "" {
			fatal("-split-out needs -input with the flat edge list to split")
		}
		paths, err := cliutil.SplitEdgeList(*input, *splitOut, partition.Spec{N: prob.N, K: prob.K, Seed: prob.Seed + 1})
		if err != nil {
			fatal("edge-list split failed", slog.String("input", *input), slog.Any("err", err))
		}
		for m, path := range paths {
			fmt.Printf("machine %d: %s\n", m, path)
		}
		return
	}

	// The trace recorder doubles as the debug plane's data source, so
	// either flag turns it on — and daemon mode always has one, since
	// its debug plane is re-scoped to the live job. With k known, the
	// per-peer wire counters get their lanes.
	if *trace != "" || *debugAddr != "" || *serve {
		tel = telemetry{trace: obs.NewTrace(0, prob.K), tracePath: *trace, linger: *linger}
		prob.Recorder = tel.trace
	}
	if *serve {
		// The daemon owns the debug mux (the job API mounts on it) and
		// only exits on signal, so the one-shot server and the trace
		// flush below don't apply.
		runServe(prob.K, *debugAddr, tel.trace, *retain)
		return
	}
	if *debugAddr != "" {
		addr, err := startDebugServer(*debugAddr, tel.trace)
		if err != nil {
			fatal("debug server failed to start", slog.String("addr", *debugAddr), slog.Any("err", err))
		}
		tel.debugOn = true
		logger.Info("debug server listening", slog.String("addr", addr))
	}

	if *local >= 2 {
		runLocal(entry, prob)
	} else {
		runStandalone(entry, prob, *id, *listen, *peers, *timeout)
	}
	tel.flush()
}

func runLocal(entry *algo.Entry, prob algo.Problem) {
	logger.Info("local cluster starting",
		slog.Int("k", prob.K), slog.String("algo", entry.Name),
		slog.Int("n", prob.N), slog.Uint64("seed", prob.Seed))
	start := time.Now()
	out, err := entry.RunNodeLocal(prob)
	if err != nil {
		failRun("cluster failed", err)
	}
	printOutcome(out, time.Since(start))
}

func runStandalone(entry *algo.Entry, prob algo.Problem, id int, listen, peerList string, timeout time.Duration) {
	if prob.K < 2 || listen == "" || peerList == "" {
		fatal("standalone mode needs -k >= 2, -listen, and -peers")
	}
	peers := strings.Split(peerList, ",")
	if len(peers) != prob.K {
		fatal("-peers list does not match k", slog.Int("addresses", len(peers)), slog.Int("k", prob.K))
	}
	logger.Info("machine starting",
		slog.Int("machine", id), slog.Int("k", prob.K), slog.String("listen", listen),
		slog.String("algo", entry.Name), slog.Int("n", prob.N), slog.Uint64("seed", prob.Seed))

	start := time.Now()
	out, err := entry.RunStandalone(prob, node.Config{
		ID:          id,
		ListenAddr:  listen,
		Peers:       peers,
		DialTimeout: timeout,
		Recorder:    tel.recorder(),
	})
	if err != nil {
		failRun("machine failed", err, slog.Int("self", id))
	}
	printOutcome(out, time.Since(start))
}

// failRun logs a run failure and exits non-zero. The machine/superstep
// attribution the runtime recorded — WHICH process of the cluster to
// look at, and when it died — rides along as structured attrs instead
// of being interpolated into the message.
func failRun(msg string, err error, extra ...any) {
	args := extra
	var me *transport.MachineError
	if errors.As(err, &me) {
		args = append(args,
			slog.Int("machine", int(me.Machine)),
			slog.Int("superstep", me.Superstep),
			slog.Any("err", me.Err))
	} else {
		args = append(args, slog.Any("err", err))
	}
	tel.flush()
	logger.Error(msg, args...)
	os.Exit(1)
}

// fatal logs a configuration or internal failure and exits non-zero.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func printOutcome(out *algo.Outcome, wall time.Duration) {
	if out.Stats != nil {
		printStats(out.Stats, wall)
	}
	if out.SetupTime > 0 || out.ExecTime > 0 {
		fmt.Printf("setup %v (input build) + run %v (supersteps)\n",
			out.SetupTime.Round(time.Millisecond), out.ExecTime.Round(time.Millisecond))
	}
	for _, line := range out.Summary {
		fmt.Println(line)
	}
	if out.Hash != 0 {
		fmt.Printf("output hash %016x\n", out.Hash)
	}
}

func printStats(s *core.Stats, wall time.Duration) {
	fmt.Printf("done in %v wall clock\n", wall.Round(time.Millisecond))
	fmt.Printf("rounds=%d supersteps=%d messages=%d words=%d maxRecvWords=%d\n",
		s.Rounds, s.Supersteps, s.Messages, s.Words, s.MaxRecvWords)
}

// telemetry is the optional observability state of a run: the span
// recorder feeding both the -trace export and the debug plane's
// expvars.
type telemetry struct {
	trace     *obs.Trace
	tracePath string
	linger    time.Duration
	debugOn   bool
}

// recorder returns the trace as an obs.Recorder, or a true nil
// interface when telemetry is off — assigning the nil *obs.Trace field
// directly would produce a non-nil interface holding a nil pointer,
// which defeats the runtime's rec != nil fast-path check.
func (t *telemetry) recorder() obs.Recorder {
	if t.trace == nil {
		return nil
	}
	return t.trace
}

// flush writes the trace file, prints the phase summary, and keeps the
// debug server lingering if asked. Called once on every exit path that
// ran (or attempted) a computation.
func (t *telemetry) flush() {
	if t.trace == nil {
		return
	}
	spans := t.trace.Spans()
	if sum := obs.Summarize(spans); sum.Supersteps > 0 {
		fmt.Printf("phases over %d supersteps: compute p50=%v max=%v | barrier p50=%v max=%v | exchange p50=%v max=%v | spans cover %.1f%% of %v wall\n",
			sum.Supersteps,
			time.Duration(sum.Compute.P50Ns), time.Duration(sum.Compute.MaxNs),
			time.Duration(sum.Barrier.P50Ns), time.Duration(sum.Barrier.MaxNs),
			time.Duration(sum.Exchange.P50Ns), time.Duration(sum.Exchange.MaxNs),
			100*sum.Coverage, time.Duration(sum.WallNs).Round(time.Millisecond))
	}
	if t.tracePath != "" {
		if err := obs.WriteChromeTraceFile(t.tracePath, spans); err != nil {
			logger.Error("trace write failed", slog.String("path", t.tracePath), slog.Any("err", err))
		} else {
			logger.Info("trace written", slog.String("path", t.tracePath), slog.Int("spans", len(spans)))
		}
	}
	if t.debugOn && t.linger > 0 {
		logger.Info("debug server lingering", slog.Duration("for", t.linger))
		time.Sleep(t.linger)
	}
}
