// Command kmnode runs k-machine computations over real TCP sockets.
//
// Standalone mode starts ONE machine of the cluster in this process;
// the k processes (possibly on k hosts) find each other through the
// -peers list and run the distributed superstep protocol, with machine
// 0 acting as the coordinator:
//
//	kmnode -id 0 -k 4 -listen 127.0.0.1:9000 \
//	       -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//	       -algo pagerank -n 10000 -p 0.001 -seed 42
//	kmnode -id 1 -k 4 -listen 127.0.0.1:9001 -peers ... (same flags)
//	...
//
// Every node builds the same input deterministically from the shared
// seed (the random-vertex-partition input distribution of §1.1), so no
// input distribution round is needed — exactly the model's assumption
// that the input is already partitioned when the computation starts.
//
// Local mode spawns the entire k-machine cluster inside this process,
// every machine with its own listener and dialer on loopback TCP:
//
//	kmnode -local 8 -algo pagerank -n 10000 -p 0.001 -seed 42
//
// Either way the computation reports the measured round complexity
// (the paper's T) and, for PageRank, the top-ranked vertices.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/transport/node"
)

func main() {
	var (
		local   = flag.Int("local", 0, "spawn a full k-machine cluster over loopback TCP in this process")
		id      = flag.Int("id", -1, "this node's machine ID (standalone mode)")
		k       = flag.Int("k", 0, "cluster size (standalone mode)")
		listen  = flag.String("listen", "", "listen address, e.g. 127.0.0.1:9000 (standalone mode)")
		peers   = flag.String("peers", "", "comma-separated k listen addresses in machine-ID order (standalone mode)")
		algo    = flag.String("algo", "pagerank", "computation to run (pagerank)")
		n       = flag.Int("n", 10000, "number of vertices")
		p       = flag.Float64("p", 0.0, "G(n,p) edge probability; 0 means 10/n")
		seed    = flag.Uint64("seed", 1, "seed for graph, partition, and machine randomness")
		bw      = flag.Int("bandwidth", 0, "per-link words/round; 0 means DefaultBandwidth(n)")
		eps     = flag.Float64("eps", 0.15, "PageRank reset probability")
		top     = flag.Int("top", 5, "how many top-ranked vertices to print")
		timeout = flag.Duration("dial-timeout", 10*time.Second, "how long to wait for peers to come up")
	)
	flag.Parse()

	if *algo != "pagerank" {
		fatalf("unknown -algo %q (supported: pagerank)", *algo)
	}
	if *p == 0 {
		*p = 10 / float64(*n)
	}
	if *bw == 0 {
		*bw = core.DefaultBandwidth(*n)
	}

	switch {
	case *local >= 2:
		runLocal(*local, *n, *p, *seed, *bw, *eps, *top)
	case *id >= 0:
		runStandalone(*id, *k, *listen, *peers, *n, *p, *seed, *bw, *eps, *top, *timeout)
	default:
		fmt.Fprintln(os.Stderr, "kmnode: need either -local k, or -id with -k/-listen/-peers")
		flag.Usage()
		os.Exit(2)
	}
}

// buildInput deterministically reconstructs the shared input: every
// node derives the identical graph and random vertex partition from the
// seed, the model's "input is already partitioned" assumption.
func buildInput(n int, p float64, k int, seed uint64) *partition.VertexPartition {
	g := gen.Gnp(n, p, seed)
	return partition.NewRVP(g, k, seed+1)
}

func runLocal(k, n int, p float64, seed uint64, bw int, eps float64, top int) {
	fmt.Printf("kmnode: local cluster, k=%d machines over loopback TCP, n=%d p=%g seed=%d B=%d words/round\n",
		k, n, p, seed, bw)
	part := buildInput(n, p, k, seed)
	opts := pagerank.AlgorithmOne(eps)

	machines := make([]*pagerank.NodeMachine, k)
	start := time.Now()
	stats, err := node.RunLocal(k, bw, seed+2, 0, pagerank.WireCodec(),
		func(id core.MachineID) core.Machine[pagerank.Wire] {
			m, err := pagerank.NewNodeMachine(part.View(id), opts)
			if err != nil {
				fatalf("machine %d: %v", id, err)
			}
			machines[id] = m
			return m
		})
	if err != nil {
		fatalf("cluster failed: %v", err)
	}
	printStats(stats, time.Since(start))

	merged := make(map[int32]float64, n)
	for _, m := range machines {
		for v, est := range m.LocalEstimates() {
			merged[v] = est
		}
	}
	printTop(merged, top, "cluster-wide")
}

func runStandalone(id, k int, listen, peerList string, n int, p float64, seed uint64, bw int, eps float64, top int, timeout time.Duration) {
	if k < 2 || listen == "" || peerList == "" {
		fatalf("standalone mode needs -k >= 2, -listen, and -peers")
	}
	peers := strings.Split(peerList, ",")
	if len(peers) != k {
		fatalf("-peers lists %d addresses, want k=%d", len(peers), k)
	}
	fmt.Printf("kmnode: machine %d/%d on %s, n=%d p=%g seed=%d B=%d words/round\n",
		id, k, listen, n, p, seed, bw)

	part := buildInput(n, p, k, seed)
	m, err := pagerank.NewNodeMachine(part.View(core.MachineID(id)), pagerank.AlgorithmOne(eps))
	if err != nil {
		fatalf("%v", err)
	}
	start := time.Now()
	stats, err := node.Run(node.Config{
		ID: id, K: k,
		ListenAddr:  listen,
		Peers:       peers,
		Bandwidth:   bw,
		Seed:        seed + 2,
		DialTimeout: timeout,
	}, m, pagerank.WireCodec())
	if err != nil {
		fatalf("machine %d failed: %v", id, err)
	}
	if stats != nil {
		printStats(stats, time.Since(start))
	}
	printTop(m.LocalEstimates(), top, fmt.Sprintf("machine %d's", id))
}

func printStats(s *core.Stats, wall time.Duration) {
	fmt.Printf("done in %v wall clock\n", wall.Round(time.Millisecond))
	fmt.Printf("rounds=%d supersteps=%d messages=%d words=%d maxRecvWords=%d\n",
		s.Rounds, s.Supersteps, s.Messages, s.Words, s.MaxRecvWords)
}

func printTop(est map[int32]float64, top int, who string) {
	type ve struct {
		v int32
		e float64
	}
	ranked := make([]ve, 0, len(est))
	for v, e := range est {
		ranked = append(ranked, ve{v, e})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].e != ranked[j].e {
			return ranked[i].e > ranked[j].e
		}
		return ranked[i].v < ranked[j].v
	})
	if top > len(ranked) {
		top = len(ranked)
	}
	fmt.Printf("%s top %d vertices by PageRank estimate:\n", who, top)
	for _, r := range ranked[:top] {
		fmt.Printf("  v%-8d %.6f\n", r.v, r.e)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kmnode: "+format+"\n", args...)
	os.Exit(1)
}
