// Command kmnode runs k-machine computations over real TCP sockets.
// Any algorithm in the registry (kmachine/internal/algo) can run —
// pagerank, triangle, conncomp, dsort, routing — because the registry
// erases every algorithm behind the same descriptor interface.
//
// Standalone mode starts ONE machine of the cluster in this process;
// the k processes (possibly on k hosts) find each other through the
// -peers list and run the distributed superstep protocol, with machine
// 0 acting as the coordinator:
//
//	kmnode -id 0 -k 4 -listen 127.0.0.1:9000 \
//	       -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//	       -algo pagerank -n 10000 -p 0.001 -seed 42
//	kmnode -id 1 -k 4 -listen 127.0.0.1:9001 -peers ... (same flags)
//	...
//
// Every node builds the same input deterministically from the shared
// seed (the random-vertex-partition input distribution of §1.1), so no
// input distribution round is needed — exactly the model's assumption
// that the input is already partitioned when the computation starts.
//
// Local mode spawns the entire k-machine cluster inside this process,
// every machine with its own listener and dialer on loopback TCP:
//
//	kmnode -local 8 -algo conncomp -n 10000 -p 0.001 -seed 42
//
// Either way the computation reports the measured round complexity
// (the paper's T) plus the algorithm's result summary, and the numbers
// are bit-identical to the in-process simulator on the same seed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/core"
	"kmachine/internal/transport"
	"kmachine/internal/transport/node"
)

func main() {
	// A panic that escapes the runtime (a bug, not an expected failure)
	// must still come out as a one-line diagnostic and a non-zero exit,
	// not a raw stack trace: kmnode processes are cluster members, and
	// their exit status is what orchestration scripts key off.
	defer func() {
		if r := recover(); r != nil {
			fatalf("internal panic: %v", r)
		}
	}()
	var (
		local    = flag.Int("local", 0, "spawn a full k-machine cluster over loopback TCP in this process")
		id       = flag.Int("id", -1, "this node's machine ID (standalone mode)")
		k        = flag.Int("k", 0, "cluster size (standalone mode)")
		listen   = flag.String("listen", "", "listen address, e.g. 127.0.0.1:9000 (standalone mode)")
		peers    = flag.String("peers", "", "comma-separated k listen addresses in machine-ID order (standalone mode)")
		algoName = flag.String("algo", "pagerank", "computation to run ("+strings.Join(algo.Names(), "|")+")")
		list     = flag.Bool("algos", false, "list registered algorithms and exit")
		n        = flag.Int("n", 10000, "number of vertices (keys for dsort, probes/machine for routing)")
		p        = flag.Float64("p", 0.0, "G(n,p) edge probability; 0 means 10/n")
		seed     = flag.Uint64("seed", 1, "seed for graph, partition, and machine randomness")
		bw       = flag.Int("bandwidth", 0, "per-link words/round; 0 means DefaultBandwidth(n)")
		eps      = flag.Float64("eps", 0.15, "PageRank reset probability")
		top      = flag.Int("top", 5, "how many top-ranked vertices to print")
		timeout  = flag.Duration("dial-timeout", 10*time.Second, "how long to wait for peers to come up")
		deadline = flag.Duration("superstep-timeout", 0, "per-superstep deadline; a crashed or wedged peer surfaces as an attributed error within it (0 = none)")
	)
	flag.Parse()

	if *list {
		for _, e := range algo.Entries() {
			fmt.Printf("%-10s %s\n", e.Name, e.Doc)
		}
		return
	}
	entry, ok := algo.Lookup(*algoName)
	if !ok {
		fatalf("unknown -algo %q (supported: %s)", *algoName, strings.Join(algo.Names(), ", "))
	}

	prob := algo.Problem{N: *n, EdgeP: *p, Seed: *seed, Bandwidth: *bw, Eps: *eps, Top: *top, SuperstepTimeout: *deadline}
	switch {
	case *local >= 2:
		prob.K = *local
		runLocal(entry, prob)
	case *id >= 0:
		prob.K = *k
		runStandalone(entry, prob, *id, *listen, *peers, *timeout)
	default:
		fmt.Fprintln(os.Stderr, "kmnode: need either -local k, or -id with -k/-listen/-peers")
		flag.Usage()
		os.Exit(2)
	}
}

func runLocal(entry *algo.Entry, prob algo.Problem) {
	fmt.Printf("kmnode: local cluster, k=%d machines over loopback TCP, algo=%s n=%d seed=%d\n",
		prob.K, entry.Name, prob.N, prob.Seed)
	start := time.Now()
	out, err := entry.RunNodeLocal(prob)
	if err != nil {
		fatalf("cluster failed: %s", diagnose(err))
	}
	printOutcome(out, time.Since(start))
}

func runStandalone(entry *algo.Entry, prob algo.Problem, id int, listen, peerList string, timeout time.Duration) {
	if prob.K < 2 || listen == "" || peerList == "" {
		fatalf("standalone mode needs -k >= 2, -listen, and -peers")
	}
	peers := strings.Split(peerList, ",")
	if len(peers) != prob.K {
		fatalf("-peers lists %d addresses, want k=%d", len(peers), prob.K)
	}
	fmt.Printf("kmnode: machine %d/%d on %s, algo=%s n=%d seed=%d\n",
		id, prob.K, listen, entry.Name, prob.N, prob.Seed)

	start := time.Now()
	out, err := entry.RunStandalone(prob, node.Config{
		ID:          id,
		ListenAddr:  listen,
		Peers:       peers,
		DialTimeout: timeout,
	})
	if err != nil {
		fatalf("machine %d failed: %s", id, diagnose(err))
	}
	printOutcome(out, time.Since(start))
}

// diagnose renders a run failure as one line, leading with the
// machine/superstep attribution when the runtime recorded one — the
// line an operator greps for to learn WHICH process of the cluster to
// look at.
func diagnose(err error) string {
	var me *transport.MachineError
	if errors.As(err, &me) {
		return fmt.Sprintf("machine %d failed in superstep %d (%v)", me.Machine, me.Superstep, me.Err)
	}
	return err.Error()
}

func printOutcome(out *algo.Outcome, wall time.Duration) {
	if out.Stats != nil {
		printStats(out.Stats, wall)
	}
	for _, line := range out.Summary {
		fmt.Println(line)
	}
	if out.Hash != 0 {
		fmt.Printf("output hash %016x\n", out.Hash)
	}
}

func printStats(s *core.Stats, wall time.Duration) {
	fmt.Printf("done in %v wall clock\n", wall.Round(time.Millisecond))
	fmt.Printf("rounds=%d supersteps=%d messages=%d words=%d maxRecvWords=%d\n",
		s.Rounds, s.Supersteps, s.Messages, s.Words, s.MaxRecvWords)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kmnode: "+format+"\n", args...)
	os.Exit(1)
}
