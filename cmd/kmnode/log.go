package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// lineHandler is the default slog handler: the classic one-line
// "kmnode: message key=value ..." rendering operators grep for, now fed
// from structured records so the same attrs serialise losslessly under
// -log-format json. Levels and timestamps are deliberately omitted —
// kmnode diagnostics are few and their order on stderr is their
// timeline; error-ness is conveyed by the message and the exit status.
type lineHandler struct {
	mu    *sync.Mutex // shared across WithAttrs clones: one writer lock per sink
	w     io.Writer
	attrs []slog.Attr
}

func newLineHandler(w io.Writer) *lineHandler {
	return &lineHandler{mu: &sync.Mutex{}, w: w}
}

// Enabled implements slog.Handler: everything Info and up prints.
func (h *lineHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= slog.LevelInfo
}

// Handle implements slog.Handler.
func (h *lineHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString("kmnode: ")
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		appendAttr(&b, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func appendAttr(b *strings.Builder, a slog.Attr) {
	v := a.Value.String()
	if strings.ContainsAny(v, " \t\"") {
		v = fmt.Sprintf("%q", v)
	}
	b.WriteByte(' ')
	b.WriteString(a.Key)
	b.WriteByte('=')
	b.WriteString(v)
}

// WithAttrs implements slog.Handler.
func (h *lineHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	clone := *h
	clone.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &clone
}

// WithGroup implements slog.Handler. kmnode's diagnostics are flat;
// grouped attrs keep their own keys.
func (h *lineHandler) WithGroup(string) slog.Handler { return h }
