// Command kmbench regenerates the paper-reproduction tables recorded in
// EXPERIMENTS.md: one table per experiment in DESIGN.md's index
// (F1, E1–E17), each exercising a claim of "On the Distributed
// Complexity of Large-Scale Graph Computations" (SPAA 2018).
//
// Usage:
//
//	kmbench                 # run every experiment at full size
//	kmbench -quick          # smaller sizes (seconds instead of minutes)
//	kmbench -run E2,E5      # only the listed experiment IDs
//	kmbench -seed 7         # perturb all randomness
//	kmbench -list           # list experiment IDs and exit
//	kmbench -json           # machine-readable output (BENCH_*.json trajectories)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kmachine/internal/experiments"
)

// jsonReport is the machine-readable output shape of -json: enough
// metadata to reproduce the run plus every experiment table verbatim,
// so successive PRs can record BENCH_*.json trajectories and diff them.
type jsonReport struct {
	Mode      string      `json:"mode"`
	Seed      uint64      `json:"seed"`
	Timestamp string      `json:"timestamp"`
	Tables    []jsonTable `json:"tables"`
}

type jsonTable struct {
	experiments.Table
	Seconds float64 `json:"seconds"`
}

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", 1, "seed for all randomness")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	if !*jsonOut {
		fmt.Printf("kmachine reproduction harness (%s mode, seed %d)\n", mode, *seed)
		fmt.Printf("paper: Pandurangan, Robinson, Scquizzato — SPAA 2018 (arXiv:1602.08481)\n\n")
	}

	report := jsonReport{
		Mode:      mode,
		Seed:      *seed,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	ran := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		table := r.Run(cfg)
		elapsed := time.Since(start)
		if *jsonOut {
			report.Tables = append(report.Tables, jsonTable{Table: table, Seconds: elapsed.Seconds()})
		} else {
			table.Fprint(os.Stdout)
			fmt.Printf("   (%s in %v)\n\n", r.ID, elapsed.Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%q; try -list\n", *run)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "encode json: %v\n", err)
			os.Exit(1)
		}
	}
}
