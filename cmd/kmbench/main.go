// Command kmbench regenerates the paper-reproduction tables recorded in
// EXPERIMENTS.md: one table per experiment in DESIGN.md's index
// (F1, E1–E17), each exercising a claim of "On the Distributed
// Complexity of Large-Scale Graph Computations" (SPAA 2018).
//
// Usage:
//
//	kmbench                 # run every experiment at full size
//	kmbench -quick          # smaller sizes (seconds instead of minutes)
//	kmbench -run E2,E5      # only the listed experiment IDs
//	kmbench -seed 7         # perturb all randomness
//	kmbench -list           # list experiment IDs and exit
//	kmbench -json           # machine-readable output (BENCH_*.json trajectories)
//	kmbench -cpuprofile cpu.out -memprofile mem.out
//	                        # write pprof profiles of the run, so perf
//	                        # work can show where the time goes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"kmachine/internal/experiments"
)

// jsonReport is the machine-readable output shape of -json: enough
// metadata to reproduce the run plus every experiment table verbatim,
// so successive PRs can record BENCH_*.json trajectories and diff them.
type jsonReport struct {
	Mode      string      `json:"mode"`
	Seed      uint64      `json:"seed"`
	Timestamp string      `json:"timestamp"`
	Tables    []jsonTable `json:"tables"`
}

type jsonTable struct {
	experiments.Table
	Seconds float64 `json:"seconds"`
}

func main() {
	// All work happens in kmbenchMain so error exits unwind through the
	// profiling defers: os.Exit here, after it returns, never truncates
	// a started CPU profile or skips the heap snapshot.
	if err := kmbenchMain(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func kmbenchMain() (err error) {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", 1, "seed for all randomness")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Written on the way out so the snapshot covers the whole run; a
		// profile error surfaces in the exit code unless the run itself
		// already failed.
		defer func() {
			f, ferr := os.Create(*memProfile)
			if ferr != nil {
				ferr = fmt.Errorf("create mem profile: %w", ferr)
			} else {
				defer f.Close()
				runtime.GC() // settle live-heap numbers before the snapshot
				if werr := pprof.WriteHeapProfile(f); werr != nil {
					ferr = fmt.Errorf("write mem profile: %w", werr)
				}
			}
			if err == nil {
				err = ferr
			} else if ferr != nil {
				fmt.Fprintln(os.Stderr, ferr)
			}
		}()
	}

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return nil
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	if !*jsonOut {
		fmt.Printf("kmachine reproduction harness (%s mode, seed %d)\n", mode, *seed)
		fmt.Printf("paper: Pandurangan, Robinson, Scquizzato — SPAA 2018 (arXiv:1602.08481)\n\n")
	}

	report := jsonReport{
		Mode:      mode,
		Seed:      *seed,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	ran := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		table := r.Run(cfg)
		elapsed := time.Since(start)
		if *jsonOut {
			report.Tables = append(report.Tables, jsonTable{Table: table, Seconds: elapsed.Seconds()})
		} else {
			table.Fprint(os.Stdout)
			fmt.Printf("   (%s in %v)\n\n", r.ID, elapsed.Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -run=%q; try -list", *run)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return fmt.Errorf("encode json: %w", err)
		}
	}
	return nil
}
