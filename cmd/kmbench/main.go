// Command kmbench regenerates the paper-reproduction tables recorded in
// EXPERIMENTS.md: one table per experiment in DESIGN.md's index
// (F1, E1–E25), each exercising a claim of "On the Distributed
// Complexity of Large-Scale Graph Computations" (SPAA 2018).
//
// Usage:
//
//	kmbench                 # run every experiment at full size
//	kmbench -quick          # smaller sizes (seconds instead of minutes)
//	kmbench -run E2,E5      # only the listed experiment IDs
//	kmbench -seed 7         # perturb all randomness
//	kmbench -list           # list experiment IDs and exit
//	kmbench -json           # machine-readable output (BENCH_*.json trajectories)
//	kmbench -cpuprofile cpu.out -memprofile mem.out
//	                        # write pprof profiles of the run, so perf
//	                        # work can show where the time goes
//	kmbench -run E21 -trace e21.json
//	                        # phase-timing experiment, plus a Chrome
//	                        # trace-event timeline of its TCP PageRank
//	                        # run (open in chrome://tracing / Perfetto)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"kmachine/internal/experiments"
)

// jsonReport is the machine-readable output shape of -json: enough
// metadata to reproduce the run plus every experiment table verbatim,
// so successive PRs can record BENCH_*.json trajectories and diff them.
type jsonReport struct {
	Mode      string      `json:"mode"`
	Seed      uint64      `json:"seed"`
	Timestamp string      `json:"timestamp"`
	Tables    []jsonTable `json:"tables"`
}

type jsonTable struct {
	experiments.Table
	Seconds float64 `json:"seconds"`
}

func main() {
	// All work happens in kmbenchMain so error exits unwind through the
	// profiling defers: os.Exit here, after it returns, never truncates
	// a started CPU profile or skips the heap snapshot.
	if err := kmbenchMain(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func kmbenchMain() (err error) {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", 1, "seed for all randomness")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	mdOut := flag.Bool("md", false, "emit a Markdown document (the EXPERIMENTS.md generator)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline of E21's instrumented TCP PageRank run to this file (only meaningful when E21 runs)")
	streaming := flag.Bool("streaming", false, "run the registry-driven experiments (E19, E21) with streaming supersteps — results and Stats are identical, only the schedule changes")
	ckEvery := flag.Int("checkpoint-every", 0, "run E19's substrate matrix with checkpointing every s supersteps — hashes and Stats must come out unchanged (E25 owns its own cadence and ignores this)")
	ckDir := flag.String("checkpoint-dir", "", "persist E19's in-process checkpoints to this directory (core.FileSink) instead of the in-memory ring; only meaningful with -checkpoint-every")
	flag.Parse()

	if *jsonOut && *mdOut {
		return fmt.Errorf("cannot combine -json and -md: pick one output format")
	}

	// Both profile files are created BEFORE the suite runs, so an
	// unwritable path fails in milliseconds instead of after minutes of
	// benchmarking; each is closed on every exit path by its defer.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close cpu profile: %w", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			return fmt.Errorf("create mem profile: %w", ferr)
		}
		// The snapshot itself is written on the way out so it covers the
		// whole run; a profile error surfaces in the exit code unless
		// the run already failed with its own.
		defer func() {
			runtime.GC() // settle live-heap numbers before the snapshot
			ferr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
			if ferr != nil {
				ferr = fmt.Errorf("write mem profile: %w", ferr)
				if err == nil {
					err = ferr
				} else {
					fmt.Fprintln(os.Stderr, ferr)
				}
			}
		}()
	}

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return nil
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, TracePath: *tracePath, Streaming: *streaming,
		CheckpointEvery: *ckEvery, CheckpointDir: *ckDir}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	switch {
	case *jsonOut:
	case *mdOut:
		fmt.Printf("# EXPERIMENTS — paper-reproduction tables\n\n")
		fmt.Printf("**Paper:** Pandurangan, Robinson, Scquizzato — \"On the Distributed Complexity of Large-Scale Graph Computations\", SPAA 2018 (arXiv:1602.08481)\n\n")
		fmt.Printf("Generated by `go run ./cmd/kmbench -md` (%s mode, seed %d); regenerate after\n", mode, *seed)
		fmt.Printf("algorithm or engine changes. One table per experiment in DESIGN.md's\n")
		fmt.Printf("index. All claims are asymptotic (Õ/Ω̃): the tables report *shapes* —\n")
		fmt.Printf("scaling exponents, algorithm orderings, crossovers — and the notes record\n")
		fmt.Printf("the fitted exponents and pass/fail of each shape check.\n\n")
	default:
		fmt.Printf("kmachine reproduction harness (%s mode, seed %d)\n", mode, *seed)
		fmt.Printf("paper: Pandurangan, Robinson, Scquizzato — SPAA 2018 (arXiv:1602.08481)\n\n")
	}

	report := jsonReport{
		Mode:      mode,
		Seed:      *seed,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	ran := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		table, rerr := r.Run(cfg)
		if rerr != nil {
			return fmt.Errorf("experiment %s (%s) failed: %w", r.ID, r.Name, rerr)
		}
		elapsed := time.Since(start)
		switch {
		case *jsonOut:
			report.Tables = append(report.Tables, jsonTable{Table: table, Seconds: elapsed.Seconds()})
		case *mdOut:
			table.Fmarkdown(os.Stdout)
		default:
			table.Fprint(os.Stdout)
			fmt.Printf("   (%s in %v)\n\n", r.ID, elapsed.Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -run=%q; try -list", *run)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return fmt.Errorf("encode json: %w", err)
		}
	}
	return nil
}
