package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/partition"
)

// TestSplitEdgeList: split a flat edge list into k per-machine files,
// then ingest each machine's own file and require the shard to be
// bit-identical to the shard built from the full file. That equality is
// what lets a node process read O((n+m)/k) bytes instead of the whole
// dataset.
func TestSplitEdgeList(t *testing.T) {
	const n, k = 250, 8
	g := gen.Gnp(n, 0.04, 13)
	dir := t.TempDir()
	full := filepath.Join(dir, "edges.txt")
	f, err := os.Create(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec := partition.Spec{N: n, K: k, Seed: 14}
	outDir := filepath.Join(dir, "split")
	if err := os.Mkdir(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	paths, err := SplitEdgeList(full, outDir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != k {
		t.Fatalf("SplitEdgeList returned %d paths, want %d", len(paths), k)
	}

	for m := 0; m < k; m++ {
		if want := fmt.Sprintf("edges.m%d.txt", m); filepath.Base(paths[m]) != want {
			t.Fatalf("machine %d file named %q, want %q", m, filepath.Base(paths[m]), want)
		}
		fromSplit, err := gen.IngestEdgeList(paths[m], spec, false, core.MachineID(m))
		if err != nil {
			t.Fatalf("ingest split file for machine %d: %v", m, err)
		}
		fromFull, err := gen.IngestEdgeList(full, spec, false, core.MachineID(m))
		if err != nil {
			t.Fatalf("ingest full file for machine %d: %v", m, err)
		}
		if !slices.Equal(fromSplit.Locals(), fromFull.Locals()) {
			t.Fatalf("machine %d: Locals differ between split and full ingest", m)
		}
		for _, u := range fromFull.Locals() {
			if !slices.Equal(fromSplit.OutAdj(u), fromFull.OutAdj(u)) {
				t.Fatalf("machine %d: OutAdj(%d) from split %v, from full %v",
					m, u, fromSplit.OutAdj(u), fromFull.OutAdj(u))
			}
		}
	}

	// The split files together should be smaller than k copies of the
	// full file: each edge appears at most twice across all of them.
	var splitBytes int64
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		splitBytes += st.Size()
	}
	fullSt, err := os.Stat(full)
	if err != nil {
		t.Fatal(err)
	}
	if splitBytes > 2*fullSt.Size()+int64(k) {
		t.Fatalf("split files total %d bytes, more than twice the %d-byte input", splitBytes, fullSt.Size())
	}
}

func TestSplitEdgeListBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("3 999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := SplitEdgeList(bad, dir, partition.Spec{N: 10, K: 2, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("SplitEdgeList on out-of-range edge: err = %v, want line-numbered parse error", err)
	}
}
