// Package cliutil holds the small amount of input-construction code
// shared by the repository's CLIs (cmd/pagerank, cmd/triangles):
// building a named graph family from flags and partitioning it over the
// k machines.
package cliutil

import (
	"fmt"

	"kmachine"
)

// GraphSpec names a generated input graph.
type GraphSpec struct {
	// Kind is the family: gnp | star | powerlaw | cycle.
	Kind string
	// N is the vertex count.
	N int
	// P is the G(n,p) edge probability (gnp only).
	P float64
	// Directed requests the directed variant (gnp and cycle).
	Directed bool
	// Seed drives the generator.
	Seed uint64
}

// Build constructs the graph, or an error naming the unknown family.
func (s GraphSpec) Build() (*kmachine.Graph, error) {
	switch s.Kind {
	case "gnp":
		if s.Directed {
			return kmachine.DirectedGnp(s.N, s.P, s.Seed), nil
		}
		return kmachine.Gnp(s.N, s.P, s.Seed), nil
	case "star":
		return kmachine.Star(s.N), nil
	case "powerlaw":
		return kmachine.PowerLaw(s.N, 3, s.Seed), nil
	case "cycle":
		b := kmachine.NewGraphBuilder(s.N, s.Directed)
		for i := 0; i < s.N; i++ {
			b.AddEdge(i, (i+1)%s.N)
		}
		return b.Build(), nil
	default:
		return nil, fmt.Errorf("unknown -graph %q (families: gnp, star, powerlaw, cycle)", s.Kind)
	}
}

// Partition builds the graph and hashes it over k machines with the
// §1.1 random vertex partition (seeded at Seed+1, the shared CLI
// convention), or the congested-clique identity partition when clique
// is set (k = n, Corollary 1).
func (s GraphSpec) Partition(k int, clique bool) (*kmachine.Graph, *kmachine.VertexPartition, error) {
	g, err := s.Build()
	if err != nil {
		return nil, nil, err
	}
	if clique {
		return g, kmachine.CongestedCliquePartition(g), nil
	}
	return g, kmachine.RandomVertexPartition(g, k, s.Seed+1), nil
}
