// Edge-list splitting: turn one flat edge-list file into k per-machine
// files, each holding every edge incident to that machine's Home-owned
// vertices. A kmnode process then ingests only its own file
// (-input edges.m3.txt -sharded), reading O((n+m)/k) instead of the
// whole dataset — the out-of-core leg of partition-local setup. Because
// gen.IngestEdgeList drops remote-remote lines, ingesting a split file
// produces the bit-identical shard the full file would.
package cliutil

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/partition"
)

// SplitEdgeList streams the edge list at inPath once and writes k
// per-machine files into outDir, named <base>.m<ID>.txt. An edge whose
// endpoints live on two machines is written to both files (each machine
// stores its own vertices' full adjacency rows, §1.1). It returns the
// per-machine file paths in machine-ID order.
func SplitEdgeList(inPath, outDir string, spec partition.Spec) ([]string, error) {
	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()

	base := filepath.Base(inPath)
	if ext := filepath.Ext(base); ext != "" {
		base = base[:len(base)-len(ext)]
	}
	paths := make([]string, spec.K)
	writers := make([]*bufio.Writer, spec.K)
	files := make([]*os.File, spec.K)
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	for m := 0; m < spec.K; m++ {
		paths[m] = filepath.Join(outDir, fmt.Sprintf("%s.m%d.txt", base, m))
		f, err := os.Create(paths[m])
		if err != nil {
			return nil, err
		}
		files[m] = f
		writers[m] = bufio.NewWriter(f)
	}

	var writeErr error
	scanErr := gen.ScanEdgeList(in, spec.N, func(u, v int32) {
		if writeErr != nil {
			return
		}
		hu, hv := spec.HomeOf(u), spec.HomeOf(v)
		if _, err := fmt.Fprintf(writers[hu], "%d %d\n", u, v); err != nil {
			writeErr = err
			return
		}
		if hv != hu {
			if _, err := fmt.Fprintf(writers[hv], "%d %d\n", u, v); err != nil {
				writeErr = err
			}
		}
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if writeErr != nil {
		return nil, writeErr
	}
	for m := core.MachineID(0); int(m) < spec.K; m++ {
		if err := writers[m].Flush(); err != nil {
			return nil, err
		}
		if err := files[m].Close(); err != nil {
			return nil, err
		}
		files[m] = nil
	}
	return paths, nil
}
