// Command pagerank runs the paper's Algorithm 1 (§3.1) on a generated
// graph, prints the measured round complexity next to the Õ(n/k²)
// prediction and the Theorem 2 lower bound, and reports estimate quality
// against the sequential solver.
//
// Usage:
//
//	pagerank -n 4000 -k 32 -graph star
//	pagerank -n 2000 -k 16 -graph gnp -deg 12 -baseline
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"kmachine"
	"kmachine/cmd/internal/cliutil"
	"kmachine/internal/graph"
)

func main() {
	n := flag.Int("n", 2000, "number of vertices")
	k := flag.Int("k", 16, "number of machines")
	deg := flag.Float64("deg", 12, "average degree for -graph gnp")
	graphKind := flag.String("graph", "gnp", "graph family: gnp | star | powerlaw | cycle")
	eps := flag.Float64("eps", 0.15, "reset probability")
	seed := flag.Uint64("seed", 1, "seed")
	baseline := flag.Bool("baseline", false, "run the Õ(n/k) conversion baseline instead of Algorithm 1")
	flag.Parse()

	spec := cliutil.GraphSpec{Kind: *graphKind, N: *n, P: *deg / float64(*n), Directed: true, Seed: *seed}
	g, p, err := spec.Partition(*k, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	res, err := kmachine.PageRank(p, kmachine.PageRankConfig{
		Eps: *eps, Seed: *seed + 2, Baseline: *baseline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	algo := "Algorithm 1 (Õ(n/k²), Thm 4)"
	if *baseline {
		algo = "conversion baseline (Õ(n/k), [33])"
	}
	bBits := kmachine.DefaultBandwidth(g.N()) * kmachine.DefaultBandwidth(g.N())
	lb := kmachine.PageRankLowerBound(g.N(), *k, bBits)
	fmt.Printf("graph          %s: n=%d m=%d\n", *graphKind, g.N(), g.M())
	fmt.Printf("algorithm      %s\n", algo)
	fmt.Printf("machines       k=%d, bandwidth=%d words/link/round\n", *k, kmachine.DefaultBandwidth(g.N()))
	fmt.Printf("rounds         %d  (iterations: %d, tokens/vertex: %d)\n",
		res.Stats.Rounds, res.Iterations, res.TokensPerVertex)
	fmt.Printf("messages       %d  (%d words)\n", res.Stats.Messages, res.Stats.Words)
	fmt.Printf("GLBT bound     Ω(%.1f) rounds (Theorem 2)\n", lb.Rounds)

	// Estimate quality against the expected-visit ground truth.
	truth := graph.ExpectedVisitPageRank(g, graph.PageRankOptions{Eps: *eps, Tol: 1e-12, MaxIter: 5000})
	var relSum float64
	var count int
	for v := range truth {
		if truth[v] < 1/float64(g.N()) {
			continue
		}
		relSum += math.Abs(res.Estimate[v]-truth[v]) / truth[v]
		count++
	}
	if count > 0 {
		fmt.Printf("accuracy       mean relative error %.3f over %d high-rank vertices\n",
			relSum/float64(count), count)
	}

	// Top five vertices by estimate.
	type kv struct {
		v int
		e float64
	}
	top := make([]kv, 0, 5)
	for v, e := range res.Estimate {
		top = append(top, kv{v, e})
		for i := len(top) - 1; i > 0 && top[i].e > top[i-1].e; i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
		if len(top) > 5 {
			top = top[:5]
		}
	}
	fmt.Printf("top vertices  ")
	for _, t := range top {
		fmt.Printf(" %d(%.2e)", t.v, t.e)
	}
	fmt.Println()
}
