// Command triangles runs the paper's §3.2 color-partition triangle
// enumeration (or the conversion baseline, or the congested-clique mode)
// on a generated graph, verifies the output against the sequential
// enumerator, and prints the measured rounds next to the Theorem 3/5
// predictions.
//
// Usage:
//
//	triangles -n 300 -p 0.5 -k 27
//	triangles -n 300 -p 0.5 -k 27 -baseline
//	triangles -n 125 -p 0.5 -clique
//	triangles -n 400 -p 0.05 -k 27 -triads
package main

import (
	"flag"
	"fmt"
	"os"

	"kmachine"
	"kmachine/cmd/internal/cliutil"
)

func main() {
	n := flag.Int("n", 200, "number of vertices")
	p := flag.Float64("p", 0.5, "edge probability (G(n,p))")
	k := flag.Int("k", 27, "number of machines")
	seed := flag.Uint64("seed", 1, "seed")
	baseline := flag.Bool("baseline", false, "run the conversion-style baseline of [33]/[21]")
	clique := flag.Bool("clique", false, "congested-clique mode: k = n (Corollary 1)")
	triads := flag.Bool("triads", false, "enumerate open triads instead of triangles")
	cliques4 := flag.Bool("cliques4", false, "enumerate 4-cliques (the §1.2 generalization)")
	flag.Parse()

	spec := cliutil.GraphSpec{Kind: "gnp", N: *n, P: *p, Seed: *seed}
	g, part, err := spec.Partition(*k, *clique)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	kk := *k
	if *clique {
		kk = g.N()
	}

	cfg := kmachine.TriangleConfig{Seed: *seed + 2, Baseline: *baseline}
	if *clique {
		cfg.Bandwidth = 1
	}

	if *cliques4 {
		res, err := kmachine.Cliques4(part, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		want := g.CountCliques4()
		fmt.Printf("graph        G(%d, %g): m=%d\n", *n, *p, g.M())
		fmt.Printf("mode         4-clique enumeration (§1.2 generalization), colors=%d\n", res.Colors)
		fmt.Printf("output       %d (sequential ground truth: %d, match: %v)\n",
			res.Count, want, res.Count == want)
		fmt.Printf("rounds       %d (%d messages)\n", res.Stats.Rounds, res.Stats.Messages)
		return
	}

	var res *kmachine.TriangleResult
	var want int64
	mode := "color-partition algorithm (Õ(m/k^{5/3}+n/k^{4/3}), Thm 5)"
	switch {
	case *triads:
		mode = "open-triad enumeration (§1.2)"
		res, err = kmachine.OpenTriads(part, cfg)
		want = g.CountTriads()
	default:
		if *baseline {
			mode = "conversion baseline (Õ(m·n^{1/3}/k²), [33])"
		}
		res, err = kmachine.Triangles(part, cfg)
		want = g.CountTriangles()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("graph        G(%d, %g): m=%d\n", *n, *p, g.M())
	fmt.Printf("mode         %s\n", mode)
	fmt.Printf("machines     k=%d, colors=%d\n", kk, res.Colors)
	fmt.Printf("output       %d (sequential ground truth: %d, match: %v)\n",
		res.Count, want, res.Count == want)
	fmt.Printf("rounds       %d\n", res.Stats.Rounds)
	fmt.Printf("messages     %d (%d words)\n", res.Stats.Messages, res.Stats.Words)
	if !*triads {
		bBits := kmachine.DefaultBandwidth(g.N()) * kmachine.DefaultBandwidth(g.N())
		lb := kmachine.TriangleLowerBound(g.N(), kk, bBits, float64(want))
		fmt.Printf("GLBT bound   Ω(%.1f) rounds (Theorem 3, IC=%.0f bits)\n", lb.Rounds, lb.IC)
	}
	var maxOut int64
	for _, c := range res.PerMachine {
		if c > maxOut {
			maxOut = c
		}
	}
	fmt.Printf("max/machine  %d outputs (Lemma 9 floor: t/k = %d)\n", maxOut, want/int64(kk))
}
