package kmachine_test

// Checkpoint/recovery acceptance suite (ROADMAP item 5): chaos-killed
// runs with checkpointing armed must COMPLETE — replacement transport,
// state restored from the latest consistent cut, missed supersteps
// replayed — with output and Stats bit-identical to an unkilled golden
// run, for every registry algorithm, on the loopback and the TCP
// substrate. Alongside sits the Snapshotter property test: restoring a
// snapshot into an arbitrarily dirty machine must reproduce the
// snapshotted machine's subsequent supersteps bit for bit.

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"kmachine/internal/algo"
	"kmachine/internal/conncomp"
	"kmachine/internal/core"
	"kmachine/internal/dsort"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/routing"
	"kmachine/internal/testutil"
	"kmachine/internal/transport"
	"kmachine/internal/transport/chaos"
	"kmachine/internal/transport/inmem"
	"kmachine/internal/transport/tcp"
	"kmachine/internal/triangle"
)

// recoveredRun executes the algorithm under the checkpoint policy with
// a chaos fault killing recVictim at killStep (killStep < 0 runs
// fault-free — the golden arm). Recovery reopens fresh, fault-free
// transports of the same kind, so a recovered run is "replacement
// machine joins a rebuilt mesh". Returns the merged output and Stats.
func recoveredRun[M, L, O any](t *testing.T, a algo.Algorithm[M, L, O], in partition.Input, k int,
	kind transport.Kind, every, killStep int) (O, *core.Stats) {
	t.Helper()
	machines := make([]algo.Machine[M, L], k)
	for i := 0; i < k; i++ {
		v, err := in.MachineView(core.MachineID(i))
		if err != nil {
			t.Fatal(err)
		}
		if machines[i], err = a.NewMachine(v); err != nil {
			t.Fatal(err)
		}
	}
	cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(failN), Seed: 13,
		SuperstepTimeout: 5 * time.Second}
	if every > 0 {
		cfg.Checkpoint = core.CheckpointPolicy{Every: every}
	}
	cluster := core.NewCluster(cfg, func(id core.MachineID) core.Machine[M] { return machines[id] })

	open := func() (core.Transport[M], error) {
		return core.OpenTransport[M](kind, k, a.Codec)
	}
	inner, err := open()
	if err != nil {
		t.Fatal(err)
	}
	var tr core.Transport[M] = inner
	if killStep >= 0 {
		switch kind {
		case transport.InMem:
			tr = chaos.Wrap[M](inner, chaos.KillAt(recVictim, killStep))
		case transport.TCP:
			tt := inner.(*tcp.Transport[M])
			tr = chaos.Wrap[M](inner, chaos.DropConnAt(recVictim, killStep, func() {
				tt.SeverMachine(recVictim)
			}))
		default:
			t.Fatalf("unknown transport kind %q", kind)
		}
	}
	defer tr.Close()

	var stats *core.Stats
	var runErr error
	done := make(chan struct{})
	go func() {
		stats, runErr = cluster.RunCheckpointed(tr, a.Codec, open)
		close(done)
	}()
	testutil.WaitOrDump(t, done, 30*time.Second, "checkpointed cluster")
	if runErr != nil {
		t.Fatalf("checkpointed run (kill=%d): %v", killStep, runErr)
	}
	locals := make([]L, k)
	for i, m := range machines {
		locals[i] = m.Output()
	}
	return a.Merge(locals), stats
}

const recVictim = 3

// recCase is one registry algorithm's row of the recovery matrix: run
// golden and killed arms and compare.
type recCase struct {
	name string
	// killStep places the fault at a superstep the algorithm actually
	// reaches; the cadence of 2 means routing's superstep-0 kill lands
	// before any periodic capture and exercises the arm-time
	// restart-from-zero image, while the deeper kills resume from a
	// genuine mid-run checkpoint.
	killStep int
	check    func(t *testing.T, kind transport.Kind, killStep int)
}

// checkRecovered is the generic body of every matrix cell: the killed
// run's output must be deeply equal to the golden run's, the Stats
// bit-identical, and exactly one machine replacement performed.
func checkRecovered[M, L, O any](t *testing.T, a algo.Algorithm[M, L, O], in partition.Input, k int,
	kind transport.Kind, killStep int) {
	t.Helper()
	base := runtime.NumGoroutine()
	const every = 2
	goldenOut, goldenStats := recoveredRun(t, a, in, k, kind, every, -1)
	gotOut, gotStats := recoveredRun(t, a, in, k, kind, every, killStep)
	if !reflect.DeepEqual(gotOut, goldenOut) {
		t.Errorf("recovered output diverges from unkilled golden run")
	}
	sameStats(t, "recovered-vs-golden", gotStats, goldenStats)
	if goldenStats.Recoveries != 0 {
		t.Errorf("golden run reports %d recoveries, want 0", goldenStats.Recoveries)
	}
	if gotStats.Recoveries != 1 {
		t.Errorf("recovered run reports %d recoveries, want 1", gotStats.Recoveries)
	}
	testutil.NoLeakedGoroutines(t, base)
}

// TestRecoveryRegistryWideBitIdentical kills machine 3 mid-run for
// every registry algorithm on both in-process substrates and requires
// the acceptance bar of the checkpoint design: the run completes with
// output hash and Stats identical to the unkilled golden.
func TestRecoveryRegistryWideBitIdentical(t *testing.T) {
	graphIn := failurePartition(t)
	edgeless := algo.EdgelessInput(algo.Problem{N: failN, K: failK, Seed: 11})
	sortIn := dsort.RandomInput(failN, failK, 11, dsort.UniformKeys)
	sortAlgo, err := dsort.Descriptor(sortIn, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []recCase{
		{"pagerank", 2, func(t *testing.T, kind transport.Kind, ks int) {
			checkRecovered(t, pagerank.Descriptor(failN, pagerank.AlgorithmOne(0.15)), graphIn, failK, kind, ks)
		}},
		{"conncomp", 2, func(t *testing.T, kind transport.Kind, ks int) {
			checkRecovered(t, conncomp.Descriptor(failN), graphIn, failK, kind, ks)
		}},
		{"triangle", 1, func(t *testing.T, kind transport.Kind, ks int) {
			checkRecovered(t, triangle.Descriptor(failK, triangle.AlgorithmOptions()), graphIn, failK, kind, ks)
		}},
		{"dsort", 1, func(t *testing.T, kind transport.Kind, ks int) {
			checkRecovered(t, sortAlgo, edgeless, failK, kind, ks)
		}},
		{"routing", 0, func(t *testing.T, kind transport.Kind, ks int) {
			checkRecovered(t, routing.Descriptor(failN), edgeless, failK, kind, ks)
		}},
	}
	for _, tc := range cases {
		for _, kind := range []transport.Kind{transport.InMem, transport.TCP} {
			t.Run(tc.name+"/"+string(kind), func(t *testing.T) {
				tc.check(t, kind, tc.killStep)
			})
		}
	}
}

// TestRecoveryRestartFromZero arms a cadence beyond the kill superstep,
// so no periodic checkpoint exists when the machine dies: recovery must
// fall back to the arm-time superstep -1 image — an exact
// restart-from-zero — and still land on the golden output.
func TestRecoveryRestartFromZero(t *testing.T) {
	in := failurePartition(t)
	a := conncomp.Descriptor(failN)
	golden, goldenStats := recoveredRun(t, a, in, failK, transport.InMem, 1000, -1)
	got, gotStats := recoveredRun(t, a, in, failK, transport.InMem, 1000, failStep)
	if !reflect.DeepEqual(got, golden) {
		t.Errorf("restart-from-zero output diverges from golden")
	}
	sameStats(t, "restart-vs-golden", gotStats, goldenStats)
	if gotStats.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", gotStats.Recoveries)
	}
}

// TestRecoveryExhaustsMaxRecoveries: when every replacement transport
// also dies, the run must give up after the policy's bound with the
// attributed error — not retry forever.
func TestRecoveryExhaustsMaxRecoveries(t *testing.T) {
	in := failurePartition(t)
	a := conncomp.Descriptor(failN)
	machines := make([]algo.Machine[conncomp.Wire, conncomp.Local], failK)
	for i := 0; i < failK; i++ {
		m, err := a.NewMachine(in.View(core.MachineID(i)))
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	const maxRec = 2
	cfg := core.Config{K: failK, Bandwidth: core.DefaultBandwidth(failN), Seed: 13,
		SuperstepTimeout: 5 * time.Second,
		Checkpoint:       core.CheckpointPolicy{Every: 2, MaxRecoveries: maxRec}}
	cluster := core.NewCluster(cfg, func(id core.MachineID) core.Machine[conncomp.Wire] { return machines[id] })
	// Every transport — initial and replacements alike — kills the
	// victim at its first exchange after attach.
	openKilling := func() (core.Transport[conncomp.Wire], error) {
		return chaos.Wrap[conncomp.Wire](inmem.New[conncomp.Wire](failK), chaos.KillAt(recVictim, failStep)), nil
	}
	tr, _ := openKilling()
	defer tr.Close()
	stats, err := cluster.RunCheckpointed(tr, a.Codec, openKilling)
	if err == nil {
		t.Fatal("run with perpetually dying replacements terminated without error")
	}
	var me *transport.MachineError
	if !errors.As(err, &me) {
		t.Fatalf("exhaustion error %v carries no machine attribution", err)
	}
	if stats.Recoveries != maxRec {
		t.Errorf("recoveries = %d, want the policy bound %d", stats.Recoveries, maxRec)
	}
}

// snapshotRoundTrip is the per-algorithm body of the Snapshotter
// property test: snapshot every machine at its pristine state, dirty
// the machines by running the computation to completion, restore the
// pristine snapshots IN PLACE, and require (a) a re-snapshot is
// byte-identical to the original, and (b) a fresh run over the restored
// machines reproduces the golden output and Stats bit for bit — i.e.
// RestoreState(SnapshotState(m)) yields bit-identical subsequent
// supersteps no matter how dirty the restored object was.
func snapshotRoundTrip[M, L, O any](t *testing.T, a algo.Algorithm[M, L, O], in partition.Input, k int) {
	t.Helper()
	run := func(machines []algo.Machine[M, L]) (O, *core.Stats) {
		cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(failN), Seed: 13}
		cluster := core.NewCluster(cfg, func(id core.MachineID) core.Machine[M] { return machines[id] })
		tr := inmem.New[M](k)
		defer tr.Close()
		stats, err := cluster.RunOn(tr)
		if err != nil {
			t.Fatal(err)
		}
		locals := make([]L, k)
		for i, m := range machines {
			locals[i] = m.Output()
		}
		return a.Merge(locals), stats
	}
	build := func() []algo.Machine[M, L] {
		machines := make([]algo.Machine[M, L], k)
		for i := 0; i < k; i++ {
			v, err := in.MachineView(core.MachineID(i))
			if err != nil {
				t.Fatal(err)
			}
			if machines[i], err = a.NewMachine(v); err != nil {
				t.Fatal(err)
			}
		}
		return machines
	}

	goldenOut, goldenStats := run(build())

	machines := build()
	pristine := make([][]byte, k)
	for i, m := range machines {
		snap, ok := any(m).(core.Snapshotter)
		if !ok {
			t.Fatalf("machine %d (%T) does not implement core.Snapshotter", i, m)
		}
		blob, err := snap.SnapshotState(nil)
		if err != nil {
			t.Fatal(err)
		}
		pristine[i] = blob
	}
	run(machines) // dirty every machine with a full computation
	for i, m := range machines {
		snap := any(m).(core.Snapshotter)
		if err := snap.RestoreState(pristine[i]); err != nil {
			t.Fatalf("restore machine %d: %v", i, err)
		}
		again, err := snap.SnapshotState(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, pristine[i]) {
			t.Errorf("machine %d: re-snapshot after restore differs from the original blob", i)
		}
	}
	gotOut, gotStats := run(machines)
	if !reflect.DeepEqual(gotOut, goldenOut) {
		t.Errorf("run over restored machines diverges from golden output")
	}
	sameStats(t, "restored-vs-golden", gotStats, goldenStats)
}

// TestSnapshotRestoreRoundTripRegistryWide runs the Snapshotter
// property test for every registry algorithm's state codec.
func TestSnapshotRestoreRoundTripRegistryWide(t *testing.T) {
	graphIn := failurePartition(t)
	edgeless := algo.EdgelessInput(algo.Problem{N: failN, K: failK, Seed: 11})
	sortIn := dsort.RandomInput(failN, failK, 11, dsort.UniformKeys)
	sortAlgo, err := dsort.Descriptor(sortIn, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("pagerank", func(t *testing.T) {
		snapshotRoundTrip(t, pagerank.Descriptor(failN, pagerank.AlgorithmOne(0.15)), graphIn, failK)
	})
	t.Run("conncomp", func(t *testing.T) {
		snapshotRoundTrip(t, conncomp.Descriptor(failN), graphIn, failK)
	})
	t.Run("triangle", func(t *testing.T) {
		snapshotRoundTrip(t, triangle.Descriptor(failK, triangle.AlgorithmOptions()), graphIn, failK)
	})
	t.Run("dsort", func(t *testing.T) {
		snapshotRoundTrip(t, sortAlgo, edgeless, failK)
	})
	t.Run("routing", func(t *testing.T) {
		snapshotRoundTrip(t, routing.Descriptor(failN), edgeless, failK)
	})
}
