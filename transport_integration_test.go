package kmachine_test

// Substrate-equivalence suite: every algorithm in the registry, run on
// all three substrates — the in-process loopback, real loopback TCP
// sockets, and the standalone node runtime (one machine per
// listener+dialer, coordinator-driven supersteps) — must produce
// bit-identical Stats and output hashes. This is the executable form of
// the conversion results the paper builds on (Klauck et al.,
// arXiv:1311.6209): the cost of a k-machine algorithm is a property of
// its message pattern, not of the substrate that carries the messages,
// and our accounting lives in core precisely so that Stats cannot drift
// between transports.
//
// The suite is table-driven over the registry, so a future algorithm
// (MST, BFS, ...) is covered the moment its package registers a
// descriptor — no new test required.

import (
	"math"
	"testing"

	"kmachine"
	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/core"
	"kmachine/internal/transport"
)

// suiteProblem returns the per-algorithm problem sizes: small enough
// that three full runs (one per substrate) stay fast, large enough that
// every code path (two-hop relays, heavy vertices, rebalance traffic)
// fires.
func suiteProblem(name string) algo.Problem {
	prob := algo.Problem{N: 260, EdgeP: 0.03, K: 8, Seed: 97}
	switch name {
	case "pagerank":
		// The token walk runs Θ(log n/eps) iterations; keep n moderate.
		prob.N, prob.EdgeP = 180, 0.05
	case "triangle":
		// Denser graph so the color-partition machines enumerate real
		// triangles, k=8 to give c=2 color classes.
		prob.N, prob.EdgeP = 140, 0.1
	case "dsort":
		prob.N = 1200 // keys
	case "conncomp":
		// Sparse: many components, so the labels (and their hash) are
		// non-degenerate — on a connected graph every min-ID label
		// would be 0 and the cross-substrate comparison vacuous.
		prob.EdgeP = 2 / float64(prob.N)
	}
	return prob
}

func sameStats(t *testing.T, label string, got, want *core.Stats) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Supersteps != want.Supersteps ||
		got.Messages != want.Messages || got.Words != want.Words ||
		got.MaxRecvWords != want.MaxRecvWords {
		t.Errorf("%s stats diverge:\n got  Rounds=%d Supersteps=%d Messages=%d Words=%d MaxRecvWords=%d\n want Rounds=%d Supersteps=%d Messages=%d Words=%d MaxRecvWords=%d",
			label,
			got.Rounds, got.Supersteps, got.Messages, got.Words, got.MaxRecvWords,
			want.Rounds, want.Supersteps, want.Messages, want.Words, want.MaxRecvWords)
	}
	if len(got.RecvWords) != len(want.RecvWords) {
		t.Errorf("%s: RecvWords length %d, want %d", label, len(got.RecvWords), len(want.RecvWords))
		return
	}
	for i := range want.RecvWords {
		if got.RecvWords[i] != want.RecvWords[i] || got.SentWords[i] != want.SentWords[i] {
			t.Errorf("%s machine %d: got (recv=%d,sent=%d), want (recv=%d,sent=%d)", label, i,
				got.RecvWords[i], got.SentWords[i], want.RecvWords[i], want.SentWords[i])
		}
	}
}

// TestRegistrySubstrateEquivalence is the acceptance bar of the unified
// driver layer: for every registered algorithm, the loopback run, the
// TCP-socket run, and the standalone node-runtime run agree on every
// Stats field and on the canonical output hash, bit for bit.
func TestRegistrySubstrateEquivalence(t *testing.T) {
	names := algo.Names()
	if len(names) < 5 {
		t.Fatalf("registry holds %d algorithms %v, want at least the 5 core ones", len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			entry, ok := algo.Lookup(name)
			if !ok {
				t.Fatalf("registry lost %q between Names and Lookup", name)
			}
			prob := suiteProblem(name)

			mem, err := entry.Run(prob, transport.InMem)
			if err != nil {
				t.Fatalf("inmem run: %v", err)
			}
			if mem.Hash == 0 {
				t.Fatalf("inmem run produced zero output hash — spec %q hashes nothing", name)
			}

			tcp, err := entry.Run(prob, transport.TCP)
			if err != nil {
				t.Fatalf("tcp run: %v", err)
			}
			sameStats(t, "tcp-vs-inmem", tcp.Stats, mem.Stats)
			if tcp.Hash != mem.Hash {
				t.Errorf("output hash over tcp %016x, inmem %016x", tcp.Hash, mem.Hash)
			}

			nodeOut, err := entry.RunNodeLocal(prob)
			if err != nil {
				t.Fatalf("node runtime run: %v", err)
			}
			sameStats(t, "node-vs-inmem", nodeOut.Stats, mem.Stats)
			if nodeOut.Hash != mem.Hash {
				t.Errorf("output hash over node runtime %016x, inmem %016x", nodeOut.Hash, mem.Hash)
			}
		})
	}
}

// TestPublicAPITransportKnob drives the TCP substrate through the
// PUBLIC kmachine wrappers — PageRankConfig/TriangleConfig's embedded
// RunConfig and the SortOver/ConnectedComponentsOver entry points —
// which the registry suite above bypasses (it runs the internal
// entries directly). A wrapper that drops the Transport field on its
// way to core.Config would pass every other test; this one catches it.
func TestPublicAPITransportKnob(t *testing.T) {
	overTCP := kmachine.RunConfig{Transport: kmachine.TransportTCP}

	g := kmachine.Gnp(200, 0.04, 51)
	p := kmachine.RandomVertexPartition(g, 4, 52)

	memPR, err := kmachine.PageRank(p, kmachine.PageRankConfig{Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	tcpPR, err := kmachine.PageRank(p, kmachine.PageRankConfig{RunConfig: overTCP, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	sameStats(t, "PageRank", tcpPR.Stats, memPR.Stats)
	for v := range memPR.Estimate {
		if math.Float64bits(tcpPR.Estimate[v]) != math.Float64bits(memPR.Estimate[v]) {
			t.Fatalf("vertex %d: tcp estimate %v, inmem %v", v, tcpPR.Estimate[v], memPR.Estimate[v])
		}
	}

	memTri, err := kmachine.Triangles(p, kmachine.TriangleConfig{Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	tcpTri, err := kmachine.Triangles(p, kmachine.TriangleConfig{RunConfig: overTCP, Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	sameStats(t, "Triangles", tcpTri.Stats, memTri.Stats)
	if tcpTri.Count != memTri.Count || tcpTri.Checksum != memTri.Checksum {
		t.Errorf("triangles: tcp (count=%d, sum=%x), inmem (count=%d, sum=%x)",
			tcpTri.Count, tcpTri.Checksum, memTri.Count, memTri.Checksum)
	}

	memSort, err := kmachine.Sort(500, 4, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	tcpSort, err := kmachine.SortOver(overTCP, 500, 4, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	sameStats(t, "SortOver", tcpSort.Stats, memSort.Stats)
	for i := range memSort.Blocks {
		for j := range memSort.Blocks[i] {
			if tcpSort.Blocks[i][j] != memSort.Blocks[i][j] {
				t.Fatalf("sort machine %d key %d diverges", i, j)
			}
		}
	}

	sparse := kmachine.Gnp(300, 0.008, 56)
	ps := kmachine.RandomVertexPartition(sparse, 4, 57)
	memCC, err := kmachine.ConnectedComponents(ps, 0, 58)
	if err != nil {
		t.Fatal(err)
	}
	tcpCC, err := kmachine.ConnectedComponentsOver(overTCP, ps, 0, 58)
	if err != nil {
		t.Fatal(err)
	}
	sameStats(t, "ConnectedComponentsOver", tcpCC.Stats, memCC.Stats)
	if tcpCC.Components != memCC.Components {
		t.Errorf("components: tcp %d, inmem %d", tcpCC.Components, memCC.Components)
	}
	for v := range memCC.Label {
		if tcpCC.Label[v] != memCC.Label[v] {
			t.Fatalf("vertex %d label: tcp %d, inmem %d", v, tcpCC.Label[v], memCC.Label[v])
		}
	}
}

// TestRegistryDeterminism: rerunning the same problem on the same
// substrate reproduces the identical hash (a run is a pure function of
// the problem), and perturbing the seed changes it (the hash actually
// covers the output).
func TestRegistryDeterminism(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			entry, _ := algo.Lookup(name)
			prob := suiteProblem(name)
			a, err := entry.Run(prob, transport.InMem)
			if err != nil {
				t.Fatal(err)
			}
			b, err := entry.Run(prob, transport.InMem)
			if err != nil {
				t.Fatal(err)
			}
			if a.Hash != b.Hash {
				t.Errorf("same problem, different hashes: %016x vs %016x", a.Hash, b.Hash)
			}
			// Every registered algorithm must pass the perturbation
			// check: suiteProblem keeps each problem in a regime where
			// the output is seed-sensitive (e.g. conncomp runs sparse,
			// with many components), so a Hash that covers only
			// seed-invariant quantities is caught here.
			prob.Seed += 1000
			c, err := entry.Run(prob, transport.InMem)
			if err != nil {
				t.Fatal(err)
			}
			if c.Hash == a.Hash {
				t.Errorf("perturbed seed reproduced hash %016x — hash does not cover the output", a.Hash)
			}
		})
	}
}
