package kmachine_test

// Transport-equivalence integration tests: the same computation over
// the in-memory loopback and over real loopback TCP sockets must agree
// bit-for-bit — estimates AND the measured communication statistics.
// This is the executable form of the conversion results the paper
// builds on (Klauck et al., arXiv:1311.6209): the cost of a k-machine
// algorithm is a property of its message pattern, not of the substrate
// that carries the messages, and our accounting lives in core precisely
// so that Stats cannot drift between transports.

import (
	"math"
	"testing"

	"kmachine"
)

// TestPageRankOverTCPMatchesInMemory is the acceptance bar for the
// transport subsystem: distributed PageRank over transport/tcp
// (loopback, k=8) must produce byte-identical Estimate and identical
// Rounds/Words to the transport/inmem run on the same seed.
func TestPageRankOverTCPMatchesInMemory(t *testing.T) {
	const (
		n    = 300
		k    = 8
		seed = 1234
	)
	g := kmachine.Gnp(n, 0.04, seed)
	p := kmachine.RandomVertexPartition(g, k, seed+1)

	base := kmachine.PageRankConfig{Eps: 0.15, Seed: seed + 2}
	mem, err := kmachine.PageRank(p, base)
	if err != nil {
		t.Fatal(err)
	}

	overTCP := base
	overTCP.Transport = kmachine.TransportTCP
	tcp, err := kmachine.PageRank(p, overTCP)
	if err != nil {
		t.Fatal(err)
	}

	if tcp.Stats.Rounds != mem.Stats.Rounds {
		t.Errorf("Rounds: tcp %d, inmem %d", tcp.Stats.Rounds, mem.Stats.Rounds)
	}
	if tcp.Stats.Words != mem.Stats.Words {
		t.Errorf("Words: tcp %d, inmem %d", tcp.Stats.Words, mem.Stats.Words)
	}
	if tcp.Stats.Messages != mem.Stats.Messages || tcp.Stats.Supersteps != mem.Stats.Supersteps {
		t.Errorf("Messages/Supersteps: tcp (%d,%d), inmem (%d,%d)",
			tcp.Stats.Messages, tcp.Stats.Supersteps, mem.Stats.Messages, mem.Stats.Supersteps)
	}
	for i := range mem.Stats.RecvWords {
		if tcp.Stats.RecvWords[i] != mem.Stats.RecvWords[i] || tcp.Stats.SentWords[i] != mem.Stats.SentWords[i] {
			t.Errorf("machine %d: tcp (recv=%d,sent=%d), inmem (recv=%d,sent=%d)", i,
				tcp.Stats.RecvWords[i], tcp.Stats.SentWords[i], mem.Stats.RecvWords[i], mem.Stats.SentWords[i])
		}
	}
	for v := range mem.Estimate {
		if math.Float64bits(tcp.Estimate[v]) != math.Float64bits(mem.Estimate[v]) {
			t.Fatalf("vertex %d: tcp estimate %v, inmem %v (not byte-identical)", v, tcp.Estimate[v], mem.Estimate[v])
		}
		if tcp.Psi[v] != mem.Psi[v] {
			t.Fatalf("vertex %d: tcp psi %d, inmem %d", v, tcp.Psi[v], mem.Psi[v])
		}
	}
}

// TestSortAndComponentsOverTCPViaPublicAPI covers the remaining public
// entry points: SortOver and ConnectedComponentsOver must honor the
// transport knob and agree with their loopback twins.
func TestSortAndComponentsOverTCPViaPublicAPI(t *testing.T) {
	overTCP := kmachine.RunConfig{Transport: kmachine.TransportTCP}

	memSort, err := kmachine.Sort(500, 4, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	tcpSort, err := kmachine.SortOver(overTCP, 500, 4, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	if tcpSort.Stats.Rounds != memSort.Stats.Rounds || tcpSort.Stats.Words != memSort.Stats.Words {
		t.Errorf("sort stats: tcp (rounds=%d, words=%d), inmem (rounds=%d, words=%d)",
			tcpSort.Stats.Rounds, tcpSort.Stats.Words, memSort.Stats.Rounds, memSort.Stats.Words)
	}
	for i := range memSort.Blocks {
		if len(tcpSort.Blocks[i]) != len(memSort.Blocks[i]) {
			t.Fatalf("machine %d block size: tcp %d, inmem %d", i, len(tcpSort.Blocks[i]), len(memSort.Blocks[i]))
		}
		for j := range memSort.Blocks[i] {
			if tcpSort.Blocks[i][j] != memSort.Blocks[i][j] {
				t.Fatalf("machine %d key %d diverges", i, j)
			}
		}
	}

	g := kmachine.Gnp(300, 0.008, 31)
	p := kmachine.RandomVertexPartition(g, 4, 32)
	memCC, err := kmachine.ConnectedComponents(p, 0, 33)
	if err != nil {
		t.Fatal(err)
	}
	tcpCC, err := kmachine.ConnectedComponentsOver(overTCP, p, 0, 33)
	if err != nil {
		t.Fatal(err)
	}
	if tcpCC.Components != memCC.Components || tcpCC.Stats.Rounds != memCC.Stats.Rounds {
		t.Errorf("components: tcp (%d comps, %d rounds), inmem (%d comps, %d rounds)",
			tcpCC.Components, tcpCC.Stats.Rounds, memCC.Components, memCC.Stats.Rounds)
	}
	for v := range memCC.Label {
		if tcpCC.Label[v] != memCC.Label[v] {
			t.Fatalf("vertex %d label: tcp %d, inmem %d", v, tcpCC.Label[v], memCC.Label[v])
		}
	}
}

// TestTrianglesOverTCPMatchesInMemory extends the equivalence to the
// paper's triangle enumeration (no two-hop framing, different payload
// codec — a different wire path than PageRank).
func TestTrianglesOverTCPMatchesInMemory(t *testing.T) {
	const (
		n    = 150
		k    = 8
		seed = 77
	)
	g := kmachine.Gnp(n, 0.08, seed)
	p := kmachine.RandomVertexPartition(g, k, seed+1)

	base := kmachine.TriangleConfig{Seed: seed + 2, Collect: true}
	mem, err := kmachine.Triangles(p, base)
	if err != nil {
		t.Fatal(err)
	}
	overTCP := base
	overTCP.Transport = kmachine.TransportTCP
	tcp, err := kmachine.Triangles(p, overTCP)
	if err != nil {
		t.Fatal(err)
	}
	if tcp.Count != mem.Count || tcp.Checksum != mem.Checksum {
		t.Errorf("enumeration: tcp (count=%d, sum=%x), inmem (count=%d, sum=%x)",
			tcp.Count, tcp.Checksum, mem.Count, mem.Checksum)
	}
	if tcp.Stats.Rounds != mem.Stats.Rounds || tcp.Stats.Words != mem.Stats.Words {
		t.Errorf("stats: tcp (rounds=%d, words=%d), inmem (rounds=%d, words=%d)",
			tcp.Stats.Rounds, tcp.Stats.Words, mem.Stats.Rounds, mem.Stats.Words)
	}
}
