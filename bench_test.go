// Benchmarks regenerating every experiment in DESIGN.md's index: one
// BenchmarkF1/E1..E17 per paper claim (run `go test -bench=. -benchmem`),
// plus micro-benchmarks for the core algorithms at several (n, k)
// operating points. cmd/kmbench prints the corresponding tables; these
// benchmarks time the same code paths under the Go benchmark harness.
package kmachine_test

import (
	"fmt"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/dsort"
	"kmachine/internal/experiments"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/routing"
	"kmachine/internal/transport"
	"kmachine/internal/triangle"
)

// benchExperiment runs one experiment table per iteration (quick sizes).
func benchExperiment(b *testing.B, id string) {
	var runner *experiments.Runner
	for _, r := range experiments.All() {
		if r.ID == id {
			rr := r
			runner = &rr
			break
		}
	}
	if runner == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := runner.Run(experiments.Config{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkF1_LowerBoundGraph(b *testing.B)   { benchExperiment(b, "F1") }
func BenchmarkE1_PageRank(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE2_Triangles(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3_Separation(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4_RevealedPaths(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5_CongestedClique(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6_MessageComplexity(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7_RandomRouting(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8_Sorting(b *testing.B)           { benchExperiment(b, "E8") }
func BenchmarkE9_InducedEdges(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10_Balance(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11_REPConversion(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12_OpenTriads(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13_SparseCrossover(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14_Ablations(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15_GLBTGap(b *testing.B)          { benchExperiment(b, "E15") }
func BenchmarkE16_Connectivity(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17_InfoCost(b *testing.B)         { benchExperiment(b, "E17") }
func BenchmarkE18_Cliques4(b *testing.B)         { benchExperiment(b, "E18") }

// --- micro-benchmarks: the algorithms at individual operating points ---

func BenchmarkPageRankAlgorithm1(b *testing.B) {
	for _, k := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("gnp/n=2000/k=%d", k), func(b *testing.B) {
			g := gen.Gnp(2000, 0.006, 1)
			p := partition.NewRVP(g, k, 2)
			opts := pagerank.AlgorithmOne(0.15)
			opts.Tokens, opts.Iterations = 8, 30
			cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 3}
			b.ReportAllocs()
			b.ResetTimer()
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := pagerank.Run(p, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

func BenchmarkPageRankBaseline(b *testing.B) {
	for _, k := range []int{16, 32} {
		b.Run(fmt.Sprintf("gnp/n=2000/k=%d", k), func(b *testing.B) {
			g := gen.Gnp(2000, 0.006, 1)
			p := partition.NewRVP(g, k, 2)
			opts := pagerank.ConversionBaseline(0.15)
			opts.Tokens, opts.Iterations = 8, 30
			cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 3}
			b.ReportAllocs()
			b.ResetTimer()
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := pagerank.Run(p, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkPageRankAlgorithm1TCP is the end-to-end benchmark of the
// real-deployment path: the same PageRank workload as above, but every
// envelope crossing loopback TCP sockets through the persistent
// exchange pipeline (encode, frame, decode, coordinator barrier). The
// gap to BenchmarkPageRankAlgorithm1 is the total substrate cost.
func BenchmarkPageRankAlgorithm1TCP(b *testing.B) {
	for _, k := range []int{8, 16} {
		b.Run(fmt.Sprintf("gnp/n=2000/k=%d", k), func(b *testing.B) {
			g := gen.Gnp(2000, 0.006, 1)
			p := partition.NewRVP(g, k, 2)
			opts := pagerank.AlgorithmOne(0.15)
			opts.Tokens, opts.Iterations = 8, 30
			cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 3,
				Transport: transport.TCP}
			b.ReportAllocs()
			b.ResetTimer()
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := pagerank.Run(p, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

func BenchmarkTriangleAlgorithm(b *testing.B) {
	for _, k := range []int{8, 27, 64} {
		b.Run(fmt.Sprintf("gnhalf/n=192/k=%d", k), func(b *testing.B) {
			g := gen.Gnp(192, 0.5, 1)
			p := partition.NewRVP(g, k, 2)
			cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 3}
			b.ReportAllocs()
			b.ResetTimer()
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := triangle.Run(p, cfg, triangle.AlgorithmOptions())
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

func BenchmarkTriangleBaseline(b *testing.B) {
	g := gen.Gnp(192, 0.5, 1)
	p := partition.NewRVP(g, 27, 2)
	cfg := core.Config{K: 27, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := triangle.RunBaseline(p, cfg, triangle.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCongestedClique(b *testing.B) {
	g := gen.Gnp(125, 0.5, 1)
	p := partition.NewIdentity(g)
	cfg := core.Config{K: g.N(), Bandwidth: 1, Seed: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := triangle.Run(p, cfg, triangle.AlgorithmOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedSort(b *testing.B) {
	for _, k := range []int{8, 32} {
		b.Run(fmt.Sprintf("n=20000/k=%d", k), func(b *testing.B) {
			in := dsort.RandomInput(20000, k, 1, dsort.UniformKeys)
			cfg := core.Config{K: k, Bandwidth: 8, Seed: 3}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dsort.Run(in, cfg, 128); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRandomRouting(b *testing.B) {
	for _, k := range []int{8, 32} {
		b.Run(fmt.Sprintf("k=%d/x=2048", k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := routing.RandomRouteExperiment(k, 2048, 4, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSequentialTriangleEnum(b *testing.B) {
	g := gen.Gnp(400, 0.5, 1)
	b.ReportAllocs()
	var count int64
	for i := 0; i < b.N; i++ {
		count = g.CountTriangles()
	}
	b.ReportMetric(float64(count), "triangles")
}

func BenchmarkSequentialPageRank(b *testing.B) {
	g := gen.DirectedGnp(2000, 0.006, 1)
	opts := graph.DefaultPageRankOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = graph.PowerIterationPageRank(g, opts)
	}
}

func BenchmarkGnpGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gen.Gnp(10000, 0.01, uint64(i))
	}
}

func BenchmarkRVPPartition(b *testing.B) {
	g := gen.Gnp(10000, 0.002, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = partition.NewRVP(g, 32, uint64(i))
	}
}
