package kmachine_test

import (
	"math"
	"sort"
	"testing"

	"kmachine"
)

func TestFacadePageRank(t *testing.T) {
	g := kmachine.DirectedGnp(200, 0.03, 1)
	p := kmachine.RandomVertexPartition(g, 8, 2)
	res, err := kmachine.PageRank(p, kmachine.PageRankConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimate) != g.N() {
		t.Fatalf("got %d estimates, want %d", len(res.Estimate), g.N())
	}
	if res.Stats.Rounds <= 0 {
		t.Error("no rounds measured")
	}
}

func TestFacadePageRankBaselineSlower(t *testing.T) {
	g := kmachine.Star(1500)
	p := kmachine.RandomVertexPartition(g, 32, 4)
	fast, err := kmachine.PageRank(p, kmachine.PageRankConfig{Seed: 5, Tokens: 16})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := kmachine.PageRank(p, kmachine.PageRankConfig{Seed: 5, Tokens: 16, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Stats.Rounds <= fast.Stats.Rounds {
		t.Errorf("baseline (%d rounds) not slower than Algorithm 1 (%d rounds)",
			slow.Stats.Rounds, fast.Stats.Rounds)
	}
}

func TestFacadeTriangles(t *testing.T) {
	g := kmachine.Gnp(120, 0.3, 7)
	p := kmachine.RandomVertexPartition(g, 27, 8)
	res, err := kmachine.Triangles(p, kmachine.TriangleConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != g.CountTriangles() {
		t.Errorf("distributed count %d, sequential %d", res.Count, g.CountTriangles())
	}
	base, err := kmachine.Triangles(p, kmachine.TriangleConfig{Seed: 9, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Count != res.Count {
		t.Errorf("baseline count %d differs from algorithm count %d", base.Count, res.Count)
	}
}

func TestFacadeOpenTriads(t *testing.T) {
	g := kmachine.Gnp(80, 0.1, 11)
	p := kmachine.RandomVertexPartition(g, 8, 12)
	res, err := kmachine.OpenTriads(p, kmachine.TriangleConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != g.CountTriads() {
		t.Errorf("distributed triads %d, sequential %d", res.Count, g.CountTriads())
	}
}

func TestFacadeCliques4(t *testing.T) {
	g := kmachine.Gnp(60, 0.4, 23)
	p := kmachine.RandomVertexPartition(g, 16, 24)
	res, err := kmachine.Cliques4(p, kmachine.TriangleConfig{Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != g.CountCliques4() {
		t.Errorf("distributed 4-cliques %d, sequential %d", res.Count, g.CountCliques4())
	}
}

func TestFacadeSort(t *testing.T) {
	res, err := kmachine.Sort(3000, 8, 0, 14)
	if err != nil {
		t.Fatal(err)
	}
	var prevMax uint64
	total := 0
	for i, block := range res.Blocks {
		if !sort.SliceIsSorted(block, func(a, b int) bool { return block[a] < block[b] }) {
			t.Fatalf("block %d not sorted", i)
		}
		if len(block) > 0 {
			if block[0] < prevMax {
				t.Fatalf("block %d overlaps previous block", i)
			}
			prevMax = block[len(block)-1]
		}
		total += len(block)
	}
	if total != 3000 {
		t.Errorf("blocks hold %d keys, want 3000", total)
	}
}

func TestFacadeComponents(t *testing.T) {
	g := kmachine.Gnp(300, 0.03, 15)
	p := kmachine.RandomVertexPartition(g, 8, 16)
	res, err := kmachine.ConnectedComponents(p, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components < 1 {
		t.Error("no components found")
	}
}

func TestFacadeCongestedClique(t *testing.T) {
	g := kmachine.Gnp(64, 0.5, 18)
	p := kmachine.CongestedCliquePartition(g)
	res, err := kmachine.Triangles(p, kmachine.TriangleConfig{Bandwidth: 1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != g.CountTriangles() {
		t.Errorf("clique count %d, sequential %d", res.Count, g.CountTriangles())
	}
}

func TestFacadeBounds(t *testing.T) {
	pr := kmachine.PageRankLowerBound(10000, 10, 16)
	tr := kmachine.TriangleLowerBound(1000, 27, 16, 0)
	st := kmachine.SortingLowerBound(10000, 10, 16)
	for _, b := range []kmachine.Bound{pr, tr, st} {
		if b.Rounds <= 0 || math.IsNaN(b.Rounds) {
			t.Errorf("bound %s has invalid rounds %v", b.Problem, b.Rounds)
		}
		if b.IC > b.HZ {
			t.Errorf("bound %s: IC %g exceeds H[Z] %g", b.Problem, b.IC, b.HZ)
		}
	}
}

func TestFacadeSequentialPageRankAgrees(t *testing.T) {
	g := kmachine.DirectedGnp(150, 0.05, 20)
	p := kmachine.RandomVertexPartition(g, 8, 21)
	res, err := kmachine.PageRank(p, kmachine.PageRankConfig{Seed: 22, Tokens: 256, Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	truth := kmachine.SequentialPageRank(g, 0.2)
	// Rank correlation on the top vertices: the highest-truth vertex
	// should be near the top of the estimates.
	best := 0
	for v := range truth {
		if truth[v] > truth[best] {
			best = v
		}
	}
	higher := 0
	for v := range res.Estimate {
		if res.Estimate[v] > res.Estimate[best] {
			higher++
		}
	}
	if higher > g.N()/10 {
		t.Errorf("true top vertex ranked %d-th by estimates", higher+1)
	}
}
