package kmachine_test

// Streaming-schedule invariance suite: for every algorithm in the
// registry, running with Config.Streaming on — eager per-peer batch
// dispatch overlapping compute with the wire — must reproduce the
// lockstep schedule's Stats and output hash bit for bit, on all three
// substrates. This is the oracle that lets the streaming engine exist
// at all: §1.1 accounting (rounds, words, per-link loads) is a
// property of WHAT is sent in each superstep, never of WHEN within the
// superstep it left the machine, so any divergence here is a bug in
// the relaxed barrier, not a measurement artifact.

import (
	"testing"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/transport"
)

// TestStreamingScheduleInvariance runs every registered algorithm
// lockstep-on-inmem as the reference, then streaming on inmem, TCP,
// and the standalone node runtime, asserting full Stats and hash
// agreement each time. Algorithms that emit only at step end (no eager
// batches) pass trivially through the streaming engine; the converted
// ones (pagerank, dsort) exercise genuine mid-step dispatch.
func TestStreamingScheduleInvariance(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			entry, ok := algo.Lookup(name)
			if !ok {
				t.Fatalf("registry lost %q between Names and Lookup", name)
			}
			prob := suiteProblem(name)

			ref, err := entry.Run(prob, transport.InMem)
			if err != nil {
				t.Fatalf("lockstep inmem run: %v", err)
			}
			if ref.Hash == 0 {
				t.Fatalf("lockstep run produced zero output hash — comparison would be vacuous")
			}

			sprob := prob
			sprob.Streaming = true

			smem, err := entry.Run(sprob, transport.InMem)
			if err != nil {
				t.Fatalf("streaming inmem run: %v", err)
			}
			sameStats(t, "streaming-inmem-vs-lockstep", smem.Stats, ref.Stats)
			if smem.Hash != ref.Hash {
				t.Errorf("streaming inmem hash %016x, lockstep %016x", smem.Hash, ref.Hash)
			}

			stcp, err := entry.Run(sprob, transport.TCP)
			if err != nil {
				t.Fatalf("streaming tcp run: %v", err)
			}
			sameStats(t, "streaming-tcp-vs-lockstep", stcp.Stats, ref.Stats)
			if stcp.Hash != ref.Hash {
				t.Errorf("streaming tcp hash %016x, lockstep %016x", stcp.Hash, ref.Hash)
			}

			snode, err := entry.RunNodeLocal(sprob)
			if err != nil {
				t.Fatalf("streaming node runtime run: %v", err)
			}
			sameStats(t, "streaming-node-vs-lockstep", snode.Stats, ref.Stats)
			if snode.Hash != ref.Hash {
				t.Errorf("streaming node hash %016x, lockstep %016x", snode.Hash, ref.Hash)
			}
		})
	}
}

// TestStreamingWireParity pins down a stronger property on the TCP
// substrate: the v2 batch framing sends exactly one frame per
// (src, dst) pair per superstep under either schedule — streaming
// re-times frames, it does not re-shape them — so the wire byte and
// frame counts must match the lockstep run exactly.
func TestStreamingWireParity(t *testing.T) {
	for _, name := range []string{"pagerank", "dsort"} {
		t.Run(name, func(t *testing.T) {
			entry, ok := algo.Lookup(name)
			if !ok {
				t.Fatalf("algorithm %q not registered", name)
			}
			prob := suiteProblem(name)
			lock, err := entry.Run(prob, transport.TCP)
			if err != nil {
				t.Fatalf("lockstep tcp run: %v", err)
			}
			sprob := prob
			sprob.Streaming = true
			stream, err := entry.Run(sprob, transport.TCP)
			if err != nil {
				t.Fatalf("streaming tcp run: %v", err)
			}
			if lock.Wire.FramesSent == 0 || stream.Wire.FramesSent == 0 {
				t.Fatal("tcp run reported no wire frames — wire stats did not flow through")
			}
			if stream.Wire.BytesSent != lock.Wire.BytesSent ||
				stream.Wire.BytesRecv != lock.Wire.BytesRecv ||
				stream.Wire.FramesSent != lock.Wire.FramesSent ||
				stream.Wire.FramesRecv != lock.Wire.FramesRecv {
				t.Errorf("wire stats diverge under streaming:\nlock   bytes %d/%d frames %d/%d\nstream bytes %d/%d frames %d/%d",
					lock.Wire.BytesSent, lock.Wire.BytesRecv, lock.Wire.FramesSent, lock.Wire.FramesRecv,
					stream.Wire.BytesSent, stream.Wire.BytesRecv, stream.Wire.FramesSent, stream.Wire.FramesRecv)
			}
		})
	}
}
