// Package algo is the unified algorithm driver of the k-machine
// simulator: one descriptor type and one execution path shared by every
// distributed algorithm in the repository.
//
// The paper's model (§1.1) is a single substrate — k machines, pairwise
// links, bandwidth-charged rounds — and the conversion theorems it
// builds on (Klauck et al., arXiv:1311.6209) are precisely about the
// substrate-independence of k-machine computations. This package makes
// that independence structural: an algorithm is described ONCE as an
// Algorithm value (name, wire codec, per-machine factory from a
// partition.View, local-output extraction, cross-machine merge) and the
// generic driver runs it on any substrate —
//
//   - Run / Exec: the in-process cluster (core.Cluster) over any
//     transport.Kind (loopback or real TCP sockets);
//   - NodeRunLocal: the standalone node runtime (transport/node), every
//     machine with its own listener+dialer over loopback TCP in one
//     process (cmd/kmnode -local);
//   - NodeRun: ONE machine of a multi-process cluster (cmd/kmnode -id),
//     peers living in other processes.
//
// All cost accounting happens in core before envelopes reach a
// transport, so a descriptor's Stats and outputs are bit-identical on
// every substrate — the registry test suite asserts exactly that for
// every registered algorithm.
//
// The registry half of the package (registry.go) erases the generic
// types behind a name-keyed Entry table so CLIs and table-driven tests
// can enumerate algorithms without knowing their message types.
package algo

import (
	"fmt"

	"kmachine/internal/core"
	"kmachine/internal/partition"
	"kmachine/internal/transport"
	"kmachine/internal/transport/node"
	"kmachine/internal/transport/wire"
)

// Machine is one participant of a distributed algorithm: a core.Machine
// that can additionally report its share of the output after the run.
// M is the envelope payload type, L the machine-local output type.
type Machine[M, L any] interface {
	core.Machine[M]
	// Output returns this machine's share of the result. It is called
	// once, after the run completes; the returned value may alias
	// machine state.
	Output() L
}

// Algorithm describes one distributed algorithm to the generic driver.
// M is the envelope payload, L the machine-local output, O the merged
// cluster-wide output.
type Algorithm[M, L, O any] struct {
	// Name identifies the algorithm in errors and registry listings.
	Name string
	// Codec serialises envelope payloads for substrates that cross
	// process or socket boundaries (transport/tcp, transport/node); the
	// in-memory loopback ignores it.
	Codec wire.Codec[M]
	// NewMachine builds machine view.Self()'s state. Every substrate
	// calls it the same way, so a machine's behaviour cannot depend on
	// where it runs — nor on whether the view is a window onto a
	// materialised graph (partition.GraphView) or a partition-local CSR
	// shard (partition.LocalView).
	NewMachine func(view partition.View) (Machine[M, L], error)
	// Merge folds the k machine-local outputs (in machine-ID order)
	// into the cluster-wide output.
	Merge func(locals []L) O
}

// Run executes the algorithm over the partitioned input on an
// in-process cluster, resolving cfg.Transport with the descriptor's
// codec. It returns the merged output and the measured Stats. The input
// may be a materialised *partition.VertexPartition or a
// *partition.ShardedInput whose per-machine CSRs are built on demand.
func Run[M, L, O any](a Algorithm[M, L, O], in partition.Input, cfg core.Config) (O, *core.Stats, error) {
	out, stats, _, err := RunWire(a, in, cfg)
	return out, stats, err
}

// RunWire is Run additionally reporting the substrate's physical
// bytes-on-wire (zero for the loopback): the paper-level Stats describe
// the model's words, the WireStats what the sockets actually carried.
func RunWire[M, L, O any](a Algorithm[M, L, O], in partition.Input, cfg core.Config) (O, *core.Stats, transport.WireStats, error) {
	var zero O
	if cfg.K != in.NumMachines() {
		return zero, nil, transport.WireStats{}, fmt.Errorf("%s: cluster k=%d but partition k=%d", a.Name, cfg.K, in.NumMachines())
	}
	return ExecWire(cfg, a.Codec, func(id core.MachineID) (Machine[M, L], error) {
		v, err := in.MachineView(id)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		return a.NewMachine(v)
	}, a.Merge)
}

// Exec is the substrate-owning driver tail shared by every algorithm's
// Run function: build the k machines (in machine-ID order, exactly like
// core.NewCluster's factory contract), resolve cfg.Transport, run to
// quiescence, then extract and merge the machine-local outputs. It
// exists separately from Run for algorithms whose input is not a vertex
// partition (dsort's key lists, routing's synthetic workloads).
func Exec[M, L, O any](cfg core.Config, codec wire.Codec[M], build func(core.MachineID) (Machine[M, L], error), merge func([]L) O) (O, *core.Stats, error) {
	out, stats, _, err := ExecWire(cfg, codec, build, merge)
	return out, stats, err
}

// ExecWire is Exec additionally reporting the substrate's physical
// bytes-on-wire alongside the paper-level Stats.
func ExecWire[M, L, O any](cfg core.Config, codec wire.Codec[M], build func(core.MachineID) (Machine[M, L], error), merge func([]L) O) (O, *core.Stats, transport.WireStats, error) {
	var zero O
	machines, err := buildMachines(cfg.K, build)
	if err != nil {
		return zero, nil, transport.WireStats{}, err
	}
	cluster := core.NewCluster(cfg, func(id core.MachineID) core.Machine[M] {
		return machines[id]
	})
	stats, w, err := core.RunOverWire(cluster, codec)
	if err != nil {
		return zero, nil, w, err
	}
	return mergeOutputs(machines, merge), stats, w, nil
}

// NodeRunLocal executes the algorithm over the standalone node runtime:
// the full k-machine cluster in this process, every machine with its
// own listener and dialer on loopback TCP and the coordinator-driven
// superstep protocol of transport/node (cmd/kmnode -local). Outputs and
// Stats are bit-identical to Run on the same inputs. ncfg is the
// per-machine Config template of node.RunLocal (ID/addresses ignored);
// its K must match the partition's, and its Context/SuperstepTimeout
// knobs bound the run exactly as they do standalone.
func NodeRunLocal[M, L, O any](a Algorithm[M, L, O], in partition.Input, ncfg node.Config) (O, *core.Stats, error) {
	var zero O
	if ncfg.K != in.NumMachines() {
		return zero, nil, fmt.Errorf("%s: node cluster k=%d but partition k=%d", a.Name, ncfg.K, in.NumMachines())
	}
	machines, err := buildMachines(in.NumMachines(), func(id core.MachineID) (Machine[M, L], error) {
		v, err := in.MachineView(id)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		return a.NewMachine(v)
	})
	if err != nil {
		return zero, nil, err
	}
	stats, err := node.RunLocal(ncfg, a.Codec, func(id core.MachineID) core.Machine[M] {
		return machines[id]
	})
	if err != nil {
		return zero, nil, err
	}
	return mergeOutputs(machines, a.Merge), stats, nil
}

// NodeRunJob executes the algorithm as one job on a standing mesh
// (node.RunJobLocal): the resident-daemon substrate, where the socket
// fabric outlives individual jobs and each job attaches fresh typed
// endpoints framing its traffic with the job ID. Outputs and Stats are
// bit-identical to NodeRunLocal on the same inputs; only the mesh
// lifetime differs. On error the mesh is poisoned and must be rebuilt.
func NodeRunJob[M, L, O any](a Algorithm[M, L, O], in partition.Input, lm *node.LocalMesh, ncfg node.Config, job uint64) (O, *core.Stats, error) {
	var zero O
	if ncfg.K != in.NumMachines() {
		return zero, nil, fmt.Errorf("%s: node cluster k=%d but partition k=%d", a.Name, ncfg.K, in.NumMachines())
	}
	machines, err := buildMachines(in.NumMachines(), func(id core.MachineID) (Machine[M, L], error) {
		v, err := in.MachineView(id)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		return a.NewMachine(v)
	})
	if err != nil {
		return zero, nil, err
	}
	stats, err := node.RunJobLocal(lm, ncfg, job, a.Codec, func(id core.MachineID) core.Machine[M] {
		return machines[id]
	})
	if err != nil {
		return zero, nil, err
	}
	return mergeOutputs(machines, a.Merge), stats, nil
}

// NodeRun executes ONE machine of the algorithm's cluster in this
// process (cmd/kmnode -id); the peers live in other processes and are
// reached through ncfg. It returns the machine-local output — every
// process of the run reconstructs the same partition from the shared
// seed, and the union of the k local outputs is the Run output. With a
// sharded input this is where the O((n+m)/k) per-process setup win
// lands: MachineView builds only this machine's rows.
func NodeRun[M, L, O any](a Algorithm[M, L, O], in partition.Input, ncfg node.Config) (L, *core.Stats, error) {
	var zero L
	v, err := in.MachineView(core.MachineID(ncfg.ID))
	if err != nil {
		return zero, nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	m, err := a.NewMachine(v)
	if err != nil {
		return zero, nil, err
	}
	stats, err := node.Run(ncfg, m, a.Codec)
	if err != nil {
		return zero, nil, err
	}
	return m.Output(), stats, nil
}

// buildMachines constructs the k machines sequentially in machine-ID
// order — the shared construction contract of every substrate, and the
// reason a factory error can surface before any cluster is built.
func buildMachines[M, L any](k int, build func(core.MachineID) (Machine[M, L], error)) ([]Machine[M, L], error) {
	machines := make([]Machine[M, L], k)
	for i := 0; i < k; i++ {
		m, err := build(core.MachineID(i))
		if err != nil {
			return nil, err
		}
		machines[i] = m
	}
	return machines, nil
}

// mergeOutputs extracts the machine-local outputs in machine-ID order
// and folds them.
func mergeOutputs[M, L, O any](machines []Machine[M, L], merge func([]L) O) O {
	locals := make([]L, len(machines))
	for i, m := range machines {
		locals[i] = m.Output()
	}
	return merge(locals)
}
