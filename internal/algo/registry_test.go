package algo

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
	"kmachine/internal/transport"
	"kmachine/internal/transport/node"
	"kmachine/internal/transport/wire"
)

// The algo package itself registers nothing (algorithm packages do, in
// their init), so this test file owns the registry contents and can
// exercise Register/Lookup/Names against a toy echo algorithm end to
// end — including the substrate runners, without depending on any real
// algorithm package (which would be an import cycle).

type echoMsg struct{ X int64 }

type echoCodec struct{}

func (echoCodec) Append(dst []byte, m echoMsg) ([]byte, error) {
	return wire.AppendVarint(dst, m.X), nil
}

func (echoCodec) Decode(src []byte) (echoMsg, int, error) {
	v, n, err := wire.Varint(src)
	return echoMsg{X: v}, n, err
}

// echoMachine sends its ID to the next machine in superstep 0 and
// records what it receives.
type echoMachine struct {
	self core.MachineID
	got  int64
}

func (m *echoMachine) Step(ctx *core.StepContext, inbox []core.Envelope[echoMsg]) ([]core.Envelope[echoMsg], bool) {
	for _, e := range inbox {
		m.got += e.Msg.X
	}
	if ctx.Superstep > 0 {
		return nil, true
	}
	return []core.Envelope[echoMsg]{{
		To:    core.MachineID((int(m.self) + 1) % ctx.K),
		Words: 1,
		Msg:   echoMsg{X: int64(m.self) + 1},
	}}, true
}

func (m *echoMachine) Output() int64 { return m.got }

func echoDescriptor() Algorithm[echoMsg, int64, int64] {
	return Algorithm[echoMsg, int64, int64]{
		Name:  "echo",
		Codec: echoCodec{},
		NewMachine: func(view partition.View) (Machine[echoMsg, int64], error) {
			return &echoMachine{self: view.Self()}, nil
		},
		Merge: func(locals []int64) int64 {
			var sum int64
			for _, l := range locals {
				sum += l
			}
			return sum
		},
	}
}

func init() {
	Register(Spec[echoMsg, int64, int64]{
		Name: "echo",
		Doc:  "test-only ring echo",
		Build: func(prob Problem) (Algorithm[echoMsg, int64, int64], partition.Input, error) {
			g := graph.NewBuilder(prob.N, false).Build()
			return echoDescriptor(), partition.NewRVP(g, prob.K, prob.Seed+1), nil
		},
		Hash: func(sum int64) uint64 {
			h := NewHash64()
			h.Add(uint64(sum))
			return h.Sum()
		},
	})
}

func TestRegistryLookupAndNames(t *testing.T) {
	names := Names()
	found := false
	for _, n := range names {
		if n == "echo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing echo", names)
	}
	if _, ok := Lookup("echo"); !ok {
		t.Fatal("Lookup(echo) failed")
	}
	if _, ok := Lookup("no-such-algorithm"); ok {
		t.Fatal("Lookup invented an algorithm")
	}
	entries := Entries()
	if len(entries) != len(names) {
		t.Fatalf("Entries() returned %d rows, Names() %d", len(entries), len(names))
	}
}

func TestEchoAcrossSubstrates(t *testing.T) {
	entry, _ := Lookup("echo")
	prob := Problem{N: 64, K: 5, Seed: 3}

	mem, err := entry.Run(prob, transport.InMem)
	if err != nil {
		t.Fatal(err)
	}
	// The ring sends 1+2+...+k once around: the sum of deliveries is
	// k(k+1)/2.
	wantHash := func() uint64 {
		h := NewHash64()
		h.Add(uint64(5 * 6 / 2))
		return h.Sum()
	}()
	if mem.Hash != wantHash {
		t.Errorf("inmem hash %016x, want %016x", mem.Hash, wantHash)
	}

	tcp, err := entry.Run(prob, transport.TCP)
	if err != nil {
		t.Fatal(err)
	}
	nodeOut, err := entry.RunNodeLocal(prob)
	if err != nil {
		t.Fatal(err)
	}
	for label, o := range map[string]*Outcome{"tcp": tcp, "node": nodeOut} {
		if o.Hash != mem.Hash {
			t.Errorf("%s hash %016x, inmem %016x", label, o.Hash, mem.Hash)
		}
		if o.Stats.Rounds != mem.Stats.Rounds || o.Stats.Words != mem.Stats.Words {
			t.Errorf("%s stats (rounds=%d words=%d), inmem (rounds=%d words=%d)",
				label, o.Stats.Rounds, o.Stats.Words, mem.Stats.Rounds, mem.Stats.Words)
		}
	}
}

// TestEchoRunJobMatches: the standing-mesh runner (RunJob / Submit) is
// bit-identical to RunNodeLocal and Run — and the mesh carries several
// jobs, including by-name submission.
func TestEchoRunJobMatches(t *testing.T) {
	entry, _ := Lookup("echo")
	prob := Problem{N: 64, K: 5, Seed: 3}
	ref, err := entry.Run(prob, transport.InMem)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := node.NewLocalMesh(prob.K)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	for job := uint64(1); job <= 2; job++ {
		got, err := entry.RunJob(prob, lm, job)
		if err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if got.Hash != ref.Hash {
			t.Errorf("job %d hash %016x, want %016x", job, got.Hash, ref.Hash)
		}
		if got.Stats.Rounds != ref.Stats.Rounds || got.Stats.Words != ref.Stats.Words {
			t.Errorf("job %d stats (rounds=%d words=%d), want (rounds=%d words=%d)",
				job, got.Stats.Rounds, got.Stats.Words, ref.Stats.Rounds, ref.Stats.Words)
		}
	}
	byName, err := Submit("echo", prob, lm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if byName.Hash != ref.Hash {
		t.Errorf("Submit hash %016x, want %016x", byName.Hash, ref.Hash)
	}
	if _, err := Submit("no-such-algorithm", prob, lm, 4); err == nil {
		t.Fatal("Submit invented an algorithm")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Spec[echoMsg, int64, int64]{
		Name: "echo",
		Build: func(Problem) (Algorithm[echoMsg, int64, int64], partition.Input, error) {
			return echoDescriptor(), nil, nil
		},
		Hash: func(int64) uint64 { return 0 },
	})
}

func TestHash64Canonical(t *testing.T) {
	a, b := NewHash64(), NewHash64()
	a.Add(1)
	a.Add(2)
	b.Add(1)
	b.Add(2)
	if a.Sum() != b.Sum() {
		t.Error("same stream, different sums")
	}
	c := NewHash64()
	c.Add(2)
	c.Add(1)
	if c.Sum() == a.Sum() {
		t.Error("order-swapped stream collided")
	}
}
