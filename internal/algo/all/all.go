// Package all populates the algorithm registry: blank-importing it
// links every algorithm package and runs their init() registrations.
// CLIs and table-driven tests that enumerate algo.Names() import this
// package instead of naming the algorithm packages one by one — adding
// a future algorithm (MST, BFS, ...) to the registry is one line here.
package all

import (
	_ "kmachine/internal/conncomp"
	_ "kmachine/internal/dsort"
	_ "kmachine/internal/pagerank"
	_ "kmachine/internal/routing"
	_ "kmachine/internal/triangle"
)
