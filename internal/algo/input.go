// Problem-input resolution: the shared helpers every Spec.Build uses to
// honour Problem.Sharded and Problem.InputPath, plus the timing wrapper
// that charges input construction to Outcome.SetupTime wherever it
// happens (Spec.Build for materialised inputs, MachineView for sharded
// ones).
package algo

import (
	"time"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

// PartitionSpec is the problem's unmaterialised partition: the registry
// convention seeds the vertex partition at Seed+1 on every substrate.
func (prob Problem) PartitionSpec() partition.Spec {
	return partition.Spec{N: prob.N, K: prob.K, Seed: prob.Seed + 1}
}

// GnpInput resolves the standard graph input of a problem — G(N, EdgeP)
// at Seed, or the edge list at InputPath — as a materialised
// VertexPartition or, when prob.Sharded, a lazy per-machine shard input.
// All four paths produce bit-identical adjacency for each machine.
func GnpInput(prob Problem) (partition.Input, error) {
	spec := prob.PartitionSpec()
	if prob.InputPath != "" {
		if prob.Sharded {
			return gen.EdgeListInput(prob.InputPath, spec, false), nil
		}
		g, err := gen.ReadEdgeListGraph(prob.InputPath, prob.N, false)
		if err != nil {
			return nil, err
		}
		return partition.NewRVP(g, prob.K, spec.Seed), nil
	}
	if prob.Sharded {
		return gen.GnpInput(spec, prob.EdgeP, prob.Seed), nil
	}
	return partition.NewRVP(gen.Gnp(prob.N, prob.EdgeP, prob.Seed), prob.K, spec.Seed), nil
}

// EdgelessInput resolves the input of problems that carry no graph
// (dsort's keys, routing's synthetic workloads): the partition alone.
func EdgelessInput(prob Problem) partition.Input {
	if prob.Sharded {
		return gen.EdgelessInput(prob.PartitionSpec())
	}
	return partition.NewRVP(graph.NewBuilder(prob.N, false).Build(), prob.K, prob.Seed+1)
}

// timedInput wraps an Input and accumulates the wall-clock spent inside
// MachineView, so the registry can report setup separately from
// supersteps regardless of where the input is actually built.
type timedInput struct {
	in       partition.Input
	viewTime time.Duration
}

func (t *timedInput) NumMachines() int { return t.in.NumMachines() }

func (t *timedInput) MachineView(m core.MachineID) (partition.View, error) {
	t0 := time.Now()
	v, err := t.in.MachineView(m)
	t.viewTime += time.Since(t0)
	return v, err
}
