package algo

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"kmachine/internal/core"
	"kmachine/internal/obs"
	"kmachine/internal/partition"
	"kmachine/internal/transport"
	"kmachine/internal/transport/node"
)

// Problem is the standard seed-derived instance every registered
// algorithm runs on: the model's assumption that "the input is already
// partitioned when the computation starts" is realised by every process
// of a run rebuilding the identical graph, partition, and derived
// inputs from the shared seed — no input-distribution round is needed
// (cmd/kmnode relies on this, and so does the cross-substrate test
// suite).
type Problem struct {
	// N is the number of vertices (and, for dsort, keys; for routing,
	// messages per machine).
	N int
	// EdgeP is the G(n,p) edge probability; 0 means 10/N.
	EdgeP float64
	// K is the number of machines.
	K int
	// Seed derives everything: the graph (Seed), the vertex partition
	// (Seed+1), and the machine random streams (Seed+2) — the same
	// convention on every substrate.
	Seed uint64
	// Bandwidth is the per-link words/round; 0 means DefaultBandwidth(N).
	Bandwidth int
	// Eps is the PageRank reset probability; 0 means 0.15.
	Eps float64
	// Top bounds summary listings (top-ranked vertices etc.); 0 means 5.
	Top int
	// SuperstepTimeout bounds each superstep's cross-machine phases on
	// every substrate (core.Config.SuperstepTimeout /
	// node.Config.SuperstepTimeout): a crashed or wedged machine
	// surfaces as an attributed error within the timeout instead of
	// hanging the run. 0 means no deadline; the happy path is
	// unaffected either way.
	SuperstepTimeout time.Duration
	// Context cancels or deadlines the whole run on every substrate
	// (core.Config.Context / node.Config.Context) — the per-job deadline
	// hook of the job scheduler. nil means Background.
	Context context.Context
	// Recorder, when non-nil, receives wall-clock phase spans from the
	// run on every substrate (core.Config.Recorder /
	// node.Config.Recorder): compute, barrier-wait, and exchange per
	// superstep, plus per-peer frame spans on socket substrates. Spans
	// measure time only — Stats, outputs, and hashes are identical with
	// or without a recorder. nil (the default) records nothing.
	Recorder obs.Recorder
	// Streaming opts the run into streaming supersteps on every
	// substrate (core.Config.Streaming / node.Config.Streaming):
	// opted-in machines overlap compute with communication by handing
	// finished per-peer batches to the transport mid-superstep. Purely a
	// scheduling knob — Stats, outputs, and hashes are bit-identical
	// with it on or off. Default off.
	Streaming bool
	// Sharded opts setup into partition-local input construction
	// (kmnode -sharded): each machine's View is a per-machine CSR shard
	// built from the generator's canonical per-row stream (or ingested
	// from InputPath), and no process materialises a global
	// *graph.Graph — per-process setup memory is O((n+m)/k) instead of
	// O(n+m). Stats, outputs, and hashes are bit-identical with it on or
	// off; only setup cost changes. Default off.
	Sharded bool
	// InputPath, when non-empty, reads the graph from an edge-list file
	// (gen.ScanEdgeList format, kmnode -input) instead of generating
	// G(N, EdgeP); N still declares the vertex-ID space and Seed still
	// drives the partition and machine streams. With Sharded set the
	// file is streamed straight into this machine's CSR shard.
	InputPath string
	// Checkpoint opts the run into per-superstep checkpointing and
	// failure recovery on every substrate (core.Config.Checkpoint /
	// node.Config.Checkpoint). Off by default — the zero value keeps
	// today's fail-fast behaviour, hashes, and Stats bit-identical.
	Checkpoint CheckpointSpec
}

// CheckpointSpec is the substrate-agnostic checkpoint policy of a
// Problem: which knobs apply depends on the runner (Sink/Dir and
// MaxRecoveries drive the in-process cluster's in-run machine
// replacement; Store and Resume drive the node runtime's
// resume-from-checkpoint, which the job scheduler uses across mesh
// rebuilds). Every is shared. The machines of the algorithm must
// implement core.Snapshotter (all registry algorithms do).
type CheckpointSpec struct {
	// Every captures machine state every Every supersteps; 0 disables
	// checkpointing entirely.
	Every int
	// Dir, when non-empty, persists checkpoints to disk: the
	// in-process cluster swaps its in-memory ring for a core.FileSink,
	// and the node runtime mirrors every complete checkpoint into the
	// directory (CheckpointStore.PersistTo).
	Dir string
	// Sink overrides the in-process cluster's checkpoint sink (wins
	// over Dir). Useful for inspecting checkpoint traffic in tests and
	// experiments (core.MemorySink counts puts and bytes).
	Sink core.CheckpointSink
	// MaxRecoveries caps in-run machine replacements on the in-process
	// cluster; 0 means core.DefaultMaxRecoveries.
	MaxRecoveries int
	// Store is the node runtime's shared checkpoint store. The job
	// scheduler creates one per opted-in job so checkpoints survive
	// mesh rebuilds; nil lets the node runtime create a private one.
	Store *node.CheckpointStore
	// Resume makes a node-runtime run restore the latest complete
	// checkpoint from Store before its first superstep — the
	// re-attempt half of the scheduler's recovery protocol.
	Resume bool
}

// withDefaults resolves the zero-value conventions.
func (prob Problem) withDefaults() Problem {
	if prob.EdgeP == 0 {
		prob.EdgeP = 10 / float64(prob.N)
	}
	if prob.Bandwidth == 0 {
		prob.Bandwidth = core.DefaultBandwidth(prob.N)
	}
	if prob.Eps == 0 {
		prob.Eps = 0.15
	}
	if prob.Top == 0 {
		prob.Top = 5
	}
	return prob
}

// nodeConfig is the node-runtime configuration of a problem — the same
// Seed+2 machine-stream convention as coreConfig, for the substrates
// built on transport/node (RunNodeLocal, RunJob).
func (prob Problem) nodeConfig(k int) node.Config {
	return node.Config{K: k, Bandwidth: prob.Bandwidth, Seed: prob.Seed + 2,
		SuperstepTimeout: prob.SuperstepTimeout, Context: prob.Context,
		Recorder: prob.Recorder, Streaming: prob.Streaming,
		Checkpoint: node.CheckpointConfig{Every: prob.Checkpoint.Every,
			Store: prob.Checkpoint.Store, Resume: prob.Checkpoint.Resume,
			Dir: prob.Checkpoint.Dir}}
}

// coreConfig is the in-process cluster configuration of a problem: the
// machine streams draw from Seed+2 on every substrate.
func (prob Problem) coreConfig(kind transport.Kind) core.Config {
	cfg := core.Config{K: prob.K, Bandwidth: prob.Bandwidth, Seed: prob.Seed + 2,
		Transport: kind, SuperstepTimeout: prob.SuperstepTimeout, Context: prob.Context,
		Recorder: prob.Recorder, Streaming: prob.Streaming}
	if ck := prob.Checkpoint; ck.Every > 0 {
		sink := ck.Sink
		if sink == nil {
			if ck.Dir != "" {
				sink = core.NewFileSink(ck.Dir)
			} else {
				sink = core.NewMemorySink(2)
			}
		}
		cfg.Checkpoint = core.CheckpointPolicy{Every: ck.Every, Sink: sink,
			MaxRecoveries: ck.MaxRecoveries}
		// Checkpointed runs capture at the lockstep barrier.
		cfg.Streaming = false
	}
	return cfg
}

// Outcome is the substrate-agnostic report of one registry run.
type Outcome struct {
	// Algo is the registered name.
	Algo string
	// Stats is the measured communication profile. For standalone runs
	// it is the cluster-wide Stats shipped by the coordinator.
	Stats *core.Stats
	// Wire is the substrate's physical bytes-on-wire (zero for the
	// loopback, which ships none). Stats are bit-identical across
	// substrates; Wire is precisely the part that is not.
	Wire transport.WireStats
	// Hash is the canonical FNV-1a hash of the merged output — the
	// quantity the cross-substrate equivalence suite compares. Zero for
	// standalone single-machine runs, which only hold a share of the
	// output.
	Hash uint64
	// Summary holds human-readable result lines (kmnode prints them).
	Summary []string
	// SetupTime is input-construction wall-clock: Spec.Build (generation
	// or full-graph ingest) plus every MachineView call (which is where
	// shard generation/ingest happens for sharded inputs).
	SetupTime time.Duration
	// ExecTime is the remaining driver wall-clock: machine construction,
	// supersteps, and output merge. Splitting it from SetupTime keeps
	// O(n+m) build cost out of transport comparisons.
	ExecTime time.Duration
}

// Spec binds an Algorithm descriptor to the standard Problem instance,
// with the output hashing and summarising the erased registry needs.
type Spec[M, L, O any] struct {
	// Name keys the registry ("pagerank", "triangle", ...).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Build derives the descriptor and its partitioned input from the
	// problem — a materialised *partition.VertexPartition, or a
	// *partition.ShardedInput when prob.Sharded is set (the GnpInput /
	// EdgelessInput helpers resolve the choice). It must be
	// deterministic in prob: every process of a distributed run calls it
	// with identical arguments.
	Build func(prob Problem) (Algorithm[M, L, O], partition.Input, error)
	// Hash canonically hashes the merged output (order-independent of
	// machine layout, dependent on every output bit).
	Hash func(o O) uint64
	// Summarize renders the merged output; top bounds listings.
	Summarize func(o O, top int) []string
	// SummarizeLocal renders one machine's local output (standalone
	// kmnode, which never sees the merged result).
	SummarizeLocal func(l L, top int) []string
}

// Entry is the type-erased registry row: the three substrate runners of
// one registered algorithm, enumerable without knowing its generic
// types.
type Entry struct {
	// Name and Doc mirror the Spec.
	Name string
	Doc  string

	run           func(prob Problem, kind transport.Kind) (*Outcome, error)
	runNodeLocal  func(prob Problem) (*Outcome, error)
	runStandalone func(prob Problem, ncfg node.Config) (*Outcome, error)
	runJob        func(prob Problem, lm *node.LocalMesh, job uint64) (*Outcome, error)
}

// Run executes the algorithm on an in-process cluster over the given
// transport kind (loopback or TCP sockets).
func (e *Entry) Run(prob Problem, kind transport.Kind) (*Outcome, error) {
	return e.run(prob, kind)
}

// RunNodeLocal executes the algorithm over the standalone node runtime,
// all k machines in this process on loopback TCP (kmnode -local).
func (e *Entry) RunNodeLocal(prob Problem) (*Outcome, error) {
	return e.runNodeLocal(prob)
}

// RunStandalone executes ONE machine of the algorithm's cluster in this
// process; peers live in other processes (kmnode -id). The outcome
// carries the machine-local summary and the cluster-wide Stats.
func (e *Entry) RunStandalone(prob Problem, ncfg node.Config) (*Outcome, error) {
	return e.runStandalone(prob, ncfg)
}

// RunJob executes the algorithm as job `job` on a standing mesh
// (node.RunJobLocal): the resident-daemon path, where the fabric
// outlives individual jobs. Stats, outputs, and hashes are bit-identical
// to RunNodeLocal on the same Problem. On error the mesh is poisoned
// and the scheduler must rebuild it.
func (e *Entry) RunJob(prob Problem, lm *node.LocalMesh, job uint64) (*Outcome, error) {
	return e.runJob(prob, lm, job)
}

// Submit runs any registered algorithm by name as one job on a standing
// mesh — the type-erased entry point of the job scheduler: no generic
// instantiation at the call site, so a daemon can execute a mixed
// stream of algorithms on one fabric.
func Submit(name string, prob Problem, lm *node.LocalMesh, job uint64) (*Outcome, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q", name)
	}
	return e.RunJob(prob, lm, job)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]*Entry{}
)

// Register installs a Spec in the name-keyed registry. Algorithm
// packages call it from init(); importing kmachine/internal/algo/all
// (or any of the packages directly) populates the table. Duplicate
// names panic — they indicate two packages claiming one identity.
func Register[M, L, O any](s Spec[M, L, O]) {
	if s.Name == "" || s.Build == nil || s.Hash == nil {
		panic("algo: Register needs Name, Build, and Hash")
	}
	e := &Entry{
		Name: s.Name,
		Doc:  s.Doc,
		run: func(prob Problem, kind transport.Kind) (*Outcome, error) {
			prob = prob.withDefaults()
			t0 := time.Now()
			a, in, err := s.Build(prob)
			if err != nil {
				return nil, err
			}
			buildD := time.Since(t0)
			ti := &timedInput{in: in}
			t1 := time.Now()
			out, stats, w, err := RunWire(a, ti, prob.coreConfig(kind))
			if err != nil {
				return nil, err
			}
			total := time.Since(t1)
			o := s.outcome(out, stats, prob)
			o.Wire = w
			o.SetupTime = buildD + ti.viewTime
			o.ExecTime = total - ti.viewTime
			return o, nil
		},
		runNodeLocal: func(prob Problem) (*Outcome, error) {
			prob = prob.withDefaults()
			t0 := time.Now()
			a, in, err := s.Build(prob)
			if err != nil {
				return nil, err
			}
			buildD := time.Since(t0)
			ncfg := prob.nodeConfig(in.NumMachines())
			ti := &timedInput{in: in}
			t1 := time.Now()
			out, stats, err := NodeRunLocal(a, ti, ncfg)
			if err != nil {
				return nil, err
			}
			total := time.Since(t1)
			o := s.outcome(out, stats, prob)
			o.SetupTime = buildD + ti.viewTime
			o.ExecTime = total - ti.viewTime
			return o, nil
		},
		runJob: func(prob Problem, lm *node.LocalMesh, job uint64) (*Outcome, error) {
			prob = prob.withDefaults()
			t0 := time.Now()
			a, in, err := s.Build(prob)
			if err != nil {
				return nil, err
			}
			buildD := time.Since(t0)
			ncfg := prob.nodeConfig(in.NumMachines())
			ti := &timedInput{in: in}
			t1 := time.Now()
			out, stats, err := NodeRunJob(a, ti, lm, ncfg, job)
			if err != nil {
				return nil, err
			}
			total := time.Since(t1)
			o := s.outcome(out, stats, prob)
			o.SetupTime = buildD + ti.viewTime
			o.ExecTime = total - ti.viewTime
			return o, nil
		},
		runStandalone: func(prob Problem, ncfg node.Config) (*Outcome, error) {
			prob = prob.withDefaults()
			t0 := time.Now()
			a, in, err := s.Build(prob)
			if err != nil {
				return nil, err
			}
			buildD := time.Since(t0)
			ncfg.K = in.NumMachines()
			ncfg.Bandwidth = prob.Bandwidth
			ncfg.Seed = prob.Seed + 2
			if ncfg.SuperstepTimeout == 0 {
				ncfg.SuperstepTimeout = prob.SuperstepTimeout
			}
			if ncfg.Context == nil {
				ncfg.Context = prob.Context
			}
			if ncfg.Recorder == nil {
				ncfg.Recorder = prob.Recorder
			}
			if prob.Streaming {
				ncfg.Streaming = true
			}
			ti := &timedInput{in: in}
			t1 := time.Now()
			local, stats, err := NodeRun(a, ti, ncfg)
			if err != nil {
				return nil, err
			}
			total := time.Since(t1)
			o := &Outcome{Algo: s.Name, Stats: stats,
				SetupTime: buildD + ti.viewTime, ExecTime: total - ti.viewTime}
			if s.SummarizeLocal != nil {
				o.Summary = s.SummarizeLocal(local, prob.Top)
			}
			return o, nil
		},
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("algo: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = e
}

func (s Spec[M, L, O]) outcome(out O, stats *core.Stats, prob Problem) *Outcome {
	o := &Outcome{Algo: s.Name, Stats: stats, Hash: s.Hash(out)}
	if s.Summarize != nil {
		o.Summary = s.Summarize(out, prob.Top)
	}
	return o
}

// Lookup returns the entry registered under name.
func Lookup(name string) (*Entry, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Entries returns the registered entries in Names() order.
func Entries() []*Entry {
	names := Names()
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]*Entry, 0, len(names))
	for _, n := range names {
		if e, ok := registry[n]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Hash64 accumulates a canonical FNV-1a hash over a stream of 64-bit
// words — the shared output-hash primitive of the registry Specs, so
// every algorithm's hash is comparable across substrates and runs.
type Hash64 struct{ sum uint64 }

// NewHash64 returns a hasher at the FNV-1a offset basis.
func NewHash64() *Hash64 { return &Hash64{sum: 14695981039346656037} }

// Add folds one 64-bit word, little-endian byte order.
func (h *Hash64) Add(x uint64) {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h.sum ^= uint64(byte(x >> (8 * i)))
		h.sum *= prime
	}
}

// Sum returns the accumulated hash.
func (h *Hash64) Sum() uint64 { return h.sum }
