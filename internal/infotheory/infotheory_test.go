package infotheory

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEntropyUniform(t *testing.T) {
	for _, n := range []int{2, 4, 8, 1024} {
		p := make([]float64, n)
		for i := range p {
			p[i] = 1
		}
		if got, want := Entropy(p), math.Log2(float64(n)); !almost(got, want, 1e-9) {
			t.Errorf("uniform entropy over %d = %g, want %g", n, got, want)
		}
	}
}

func TestEntropyDeterministic(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); !almost(got, 0, 1e-12) {
		t.Errorf("point-mass entropy = %g, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %g, want 0", got)
	}
}

func TestEntropyScaleInvariant(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		q := []float64{p[0] * 7, p[1] * 7, p[2] * 7}
		return almost(Entropy(p), Entropy(q), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropyMaximalAtUniform(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1}
		return Entropy(p) <= 2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := BinaryEntropy(0.5); !almost(got, 1, 1e-12) {
		t.Errorf("H(1/2) = %g, want 1", got)
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Error("H(0) or H(1) nonzero")
	}
	if !almost(BinaryEntropy(0.25), BinaryEntropy(0.75), 1e-12) {
		t.Error("binary entropy not symmetric")
	}
}

func TestSurprisal(t *testing.T) {
	if got := Surprisal(0.5); !almost(got, 1, 1e-12) {
		t.Errorf("surprisal(1/2) = %g, want 1", got)
	}
	if got := Surprisal(1.0 / 1024); !almost(got, 10, 1e-9) {
		t.Errorf("surprisal(2^-10) = %g, want 10", got)
	}
	if !math.IsInf(Surprisal(0), 1) {
		t.Error("surprisal(0) not +Inf")
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// Product distribution: I = 0.
	joint := [][]float64{
		{0.25, 0.25},
		{0.25, 0.25},
	}
	if got := MutualInformation(joint); !almost(got, 0, 1e-9) {
		t.Errorf("I of independent = %g, want 0", got)
	}
}

func TestMutualInformationPerfectlyCorrelated(t *testing.T) {
	joint := [][]float64{
		{0.5, 0},
		{0, 0.5},
	}
	if got := MutualInformation(joint); !almost(got, 1, 1e-9) {
		t.Errorf("I of identical bits = %g, want 1", got)
	}
}

func TestConditionalEntropyChainRule(t *testing.T) {
	// H[X|Y] = H[X,Y] - H[Y]; check against direct computation on a
	// hand-built joint.
	joint := [][]float64{
		{0.3, 0.1},
		{0.2, 0.4},
	}
	var flat []float64
	py := []float64{0.5, 0.5}
	for _, row := range joint {
		flat = append(flat, row...)
	}
	want := Entropy(flat) - Entropy(py)
	if got := ConditionalEntropy(joint); !almost(got, want, 1e-9) {
		t.Errorf("H[X|Y] = %g, want %g", got, want)
	}
	// Conditioning cannot increase entropy: H[X|Y] <= H[X].
	px := []float64{0.4, 0.6}
	if ConditionalEntropy(joint) > Entropy(px)+1e-9 {
		t.Error("conditioning increased entropy")
	}
}

func TestTranscriptLemma3(t *testing.T) {
	// B=1 bit, k=2 machines, T=10 rounds: one link, (B+1)*T = 20 bits.
	if got := TranscriptLogCount(1, 2, 10); got != 20 {
		t.Errorf("log transcript count = %g, want 20", got)
	}
	// Inverse: 20 bits of required information need >= 10 rounds.
	if got := MinRoundsForInformation(20, 1, 2); !almost(got, 10, 1e-9) {
		t.Errorf("min rounds = %g, want 10", got)
	}
}

func TestGeneralLowerBoundShape(t *testing.T) {
	// Doubling bandwidth or machines halves the bound.
	base := GeneralLowerBound(1000, 10, 10)
	if got := GeneralLowerBound(1000, 20, 10); !almost(got, base/2, 1e-9) {
		t.Error("bound not inversely linear in B")
	}
	if got := GeneralLowerBound(1000, 10, 20); !almost(got, base/2, 1e-9) {
		t.Error("bound not inversely linear in k")
	}
}

func TestPageRankBoundScaling(t *testing.T) {
	// Theorem 2: Ω(n/(B·k²)) — 2x machines -> 4x fewer rounds; 2x n ->
	// 2x more rounds.
	b1 := PageRankBound(10001, 10, 8)
	b2 := PageRankBound(10001, 20, 8)
	if r := b1.Rounds / b2.Rounds; !almost(r, 4, 1e-6) {
		t.Errorf("PageRank bound k-scaling %g, want 4", r)
	}
	b3 := PageRankBound(20001, 10, 8)
	if r := b3.Rounds / b1.Rounds; !almost(r, 2, 1e-3) {
		t.Errorf("PageRank bound n-scaling %g, want 2", r)
	}
	if b1.IC <= 0 || b1.HZ < b1.IC {
		t.Errorf("PageRank bound inconsistent: IC=%g HZ=%g", b1.IC, b1.HZ)
	}
}

func TestTriangleBoundScaling(t *testing.T) {
	// Theorem 3: Ω(n²/(B·k^{5/3})) — 8x machines -> 8^{5/3} = 32x fewer.
	b1 := TriangleBound(1000, 8, 8, 0)
	b2 := TriangleBound(1000, 64, 8, 0)
	if r := b1.Rounds / b2.Rounds; !almost(r, 32, 0.5) {
		t.Errorf("triangle bound k-scaling %g, want ~32", r)
	}
	// n-scaling: IC ~ n², so 2x n -> ~4x rounds.
	b3 := TriangleBound(2000, 8, 8, 0)
	if r := b3.Rounds / b1.Rounds; r < 3.9 || r > 4.1 {
		t.Errorf("triangle bound n-scaling %g, want ~4", r)
	}
}

func TestCongestedCliqueCorollary1(t *testing.T) {
	// Ω(n^{1/3}/B): 8x vertices -> 2x rounds.
	b1 := CongestedCliqueTriangleBound(512, 1)
	b2 := CongestedCliqueTriangleBound(4096, 1)
	if r := b2.Rounds / b1.Rounds; r < 1.9 || r > 2.1 {
		t.Errorf("congested clique n-scaling %g, want ~2", r)
	}
}

func TestTriangleMessageCorollary2(t *testing.T) {
	// Ω̃(n²·k^{1/3}): 8x machines -> 2x messages.
	m1 := TriangleMessageBound(1000, 8)
	m2 := TriangleMessageBound(1000, 64)
	if r := m2 / m1; !almost(r, 2, 1e-9) {
		t.Errorf("message bound k-scaling %g, want 2", r)
	}
}

func TestSortingAndMSTBounds(t *testing.T) {
	s := SortingBound(100000, 10, 8)
	m := MSTBound(100000, 10, 8)
	if !almost(s.Rounds, m.Rounds, 1e-9) {
		t.Error("sorting and MST instantiations should coincide (both IC = n/k)")
	}
	if s.Rounds <= 0 {
		t.Error("non-positive sorting bound")
	}
}

func TestExpectedTrianglesGnHalf(t *testing.T) {
	// C(4,3)/8 = 0.5.
	if got := ExpectedTrianglesGnHalf(4); !almost(got, 0.5, 1e-12) {
		t.Errorf("E[triangles] for n=4: %g, want 0.5", got)
	}
}

func TestEntropyPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative mass accepted")
		}
	}()
	Entropy([]float64{0.5, -0.5})
}
