// Package infotheory implements the information-theoretic apparatus of
// the paper's Section 2: entropy and surprisal utilities, the General
// Lower Bound Theorem (Theorem 1) as a calculator, the transcript
// counting of Lemma 3, and the per-problem information-cost
// instantiations used by Theorems 2 and 3, Corollaries 1 and 2, and the
// §1.3 cookbook examples (sorting, MST).
//
// The GLBT states: if, on a (1-ε)-fraction of inputs, some machine's
// output raises its surprisal about a random variable Z by IC bits
// beyond its initial knowledge (premises (1) and (2)), then the round
// complexity is T = Ω(IC/(B·k)) — because a machine's transcript over T
// rounds can take at most 2^{(B+1)(k-1)T} values (Lemma 3) and must
// carry IC bits of information.
//
// The calculator returns the Ω(·) argument without its hidden constant:
// callers compare *shapes* (scaling exponents, ratios across parameter
// sweeps), exactly as the paper's Õ/Ω̃ claims are stated.
package infotheory

import "math"

// Entropy returns the Shannon entropy (bits) of a distribution. Entries
// must be non-negative; the function normalises so callers may pass raw
// counts. Zero entries contribute zero.
func Entropy(p []float64) float64 {
	var sum float64
	for _, v := range p {
		if v < 0 {
			panic("infotheory: negative probability mass")
		}
		sum += v
	}
	if sum == 0 {
		return 0
	}
	var h float64
	for _, v := range p {
		if v == 0 {
			continue
		}
		q := v / sum
		h -= q * math.Log2(q)
	}
	return h
}

// BinaryEntropy returns H(p) = -p·log p - (1-p)·log(1-p).
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Surprisal returns the self-information -log2(p) of an event with
// probability p (the quantity premises (1) and (2) of Theorem 1 bound).
func Surprisal(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(p)
}

// MutualInformation returns I[X;Y] (bits) of a joint distribution given
// as a matrix of (unnormalised) probabilities joint[x][y], via
// I[X;Y] = H[X] + H[Y] - H[X,Y].
func MutualInformation(joint [][]float64) float64 {
	if len(joint) == 0 {
		return 0
	}
	nx, ny := len(joint), len(joint[0])
	px := make([]float64, nx)
	py := make([]float64, ny)
	var flat []float64
	for x := range joint {
		for y, v := range joint[x] {
			px[x] += v
			py[y] += v
			flat = append(flat, v)
		}
	}
	return Entropy(px) + Entropy(py) - Entropy(flat)
}

// ConditionalEntropy returns H[X|Y] = H[X,Y] - H[Y] for a joint matrix
// joint[x][y].
func ConditionalEntropy(joint [][]float64) float64 {
	if len(joint) == 0 {
		return 0
	}
	py := make([]float64, len(joint[0]))
	var flat []float64
	for x := range joint {
		for y, v := range joint[x] {
			py[y] += v
			flat = append(flat, v)
		}
	}
	return Entropy(flat) - Entropy(py)
}

// TranscriptLogCount is Lemma 3: the base-2 log of the number of
// distinct transcripts a machine can receive over its k-1 links of
// bandwidth B bits in T rounds, namely (B+1)·(k-1)·T.
func TranscriptLogCount(bBits, k int, rounds int64) float64 {
	return float64(bBits+1) * float64(k-1) * float64(rounds)
}

// MinRoundsForInformation inverts Lemma 3: a machine that must receive
// ic bits of information needs at least ic/((B+1)(k-1)) rounds. This is
// the engine of Theorem 1's conclusion T = Ω(IC/(B·k)).
func MinRoundsForInformation(ic float64, bBits, k int) float64 {
	if ic <= 0 {
		return 0
	}
	return ic / (float64(bBits+1) * float64(k-1))
}

// GeneralLowerBound is Theorem 1's conclusion T = IC/(B·k), without the
// hidden constant.
func GeneralLowerBound(ic float64, bBits, k int) float64 {
	return ic / (float64(bBits) * float64(k))
}

// Bound describes one instantiation of the GLBT.
type Bound struct {
	// Problem names the instantiation.
	Problem string
	// HZ is the entropy of the hidden variable Z in bits.
	HZ float64
	// IC is the information cost plugged into Theorem 1.
	IC float64
	// Rounds is the resulting lower bound IC/(B·k).
	Rounds float64
}

// PageRankBound instantiates Theorem 2: Z is the set of (direction bit,
// vertex) pairs of the Figure-1 graph, H[Z] = m/4 bits for m = n-1, and
// the machine outputting Ω(n/k) PageRank values gains IC = m/(4k) bits
// (Lemmas 7 and 8). Rounds = Ω(n/(B·k²)).
func PageRankBound(n, k, bBits int) Bound {
	m := float64(n - 1)
	ic := m / (4 * float64(k))
	return Bound{
		Problem: "pagerank",
		HZ:      m / 4,
		IC:      ic,
		Rounds:  GeneralLowerBound(ic, bBits, k),
	}
}

// ExpectedTrianglesGnHalf returns the expected number of triangles of
// G(n, 1/2): C(n,3)/8 (each of the 3 edges present with prob 1/2).
func ExpectedTrianglesGnHalf(n int) float64 {
	nn := float64(n)
	return nn * (nn - 1) * (nn - 2) / 6 / 8
}

// TriangleBound instantiates Theorem 3: Z is the characteristic edge
// vector of G(n,1/2), H[Z] = C(n,2) bits, and a machine outputting t/k
// of the t triangles gains IC = Θ((t/k)^{2/3}) bits (Lemma 11, via
// Rivin's bound: representing L triangles needs Ω(L^{2/3}) edges).
// With t = Θ(n³), Rounds = Ω(n²/(B·k^{5/3})). Pass t <= 0 to use the
// G(n,1/2) expectation.
func TriangleBound(n, k, bBits int, t float64) Bound {
	if t <= 0 {
		t = ExpectedTrianglesGnHalf(n)
	}
	ic := math.Pow(t/float64(k), 2.0/3.0)
	nn := float64(n)
	return Bound{
		Problem: "triangle-enumeration",
		HZ:      nn * (nn - 1) / 2,
		IC:      ic,
		Rounds:  GeneralLowerBound(ic, bBits, k),
	}
}

// CongestedCliqueTriangleBound instantiates Corollary 1: k = n, so
// Rounds = Ω(n^{1/3}/B) (tight up to log factors against the Õ(n^{1/3})
// algorithm).
func CongestedCliqueTriangleBound(n, bBits int) Bound {
	b := TriangleBound(n, n, bBits, 0)
	b.Problem = "triangle-enumeration/congested-clique"
	return b
}

// TriangleMessageBound is Corollary 2: any algorithm enumerating all
// triangles whp within Õ(n²/k^{5/3}) rounds exchanges Ω̃(n²·k^{1/3})
// messages in total (each machine must receive Ω̃(n²/k^{2/3}) bits).
func TriangleMessageBound(n, k int) float64 {
	nn := float64(n)
	return nn * nn * math.Cbrt(float64(k))
}

// SortingBound instantiates the §1.3 cookbook example: n keys randomly
// partitioned, machine i must output the i-th block of order statistics;
// IC = Θ(n/k) bits gives Rounds = Ω(n/(B·k²)).
func SortingBound(n, k, bBits int) Bound {
	ic := float64(n) / float64(k)
	return Bound{Problem: "sorting", HZ: float64(n), IC: ic, Rounds: GeneralLowerBound(ic, bBits, k)}
}

// MSTBound instantiates the §1.3 MST example (complete graph with random
// edge weights; some machine must output Ω(n/k) of the n-1 MST edges):
// Rounds = Ω(n/(B·k²)), matching the Õ(n/k²) algorithm of [51].
func MSTBound(n, k, bBits int) Bound {
	ic := float64(n) / float64(k)
	return Bound{Problem: "mst", HZ: float64(n), IC: ic, Rounds: GeneralLowerBound(ic, bBits, k)}
}
