// Package chaos is the failure-injection transport: it wraps any
// transport.Transport and makes partial failure deterministic. The
// k-machine model (§1.1 of the paper) assumes lock-step synchronous
// rounds; real substrates inherit none of that safety, and the only way
// to TEST the runtime's failure handling — deadlines, cancellation,
// abort propagation, goroutine-clean teardown — is to make a machine
// die at a chosen superstep, every run. Three fault shapes cover the
// paths the runtime must survive:
//
//   - KillAt: the victim "dies" at a superstep — the inner transport is
//     torn down and the Exchange returns a machine-attributed ErrKilled
//     (works on any substrate, including the loopback, which has no
//     real failure mode of its own);
//   - DropConnAt: a substrate hook severs the victim's real resources
//     (e.g. tcp.Transport.SeverMachine closes its listener and every
//     connection), and the inner transport's OWN failure path then runs
//     — deadlines fire, closes cascade — with the resulting error
//     re-attributed to the victim;
//   - DelayAt: added latency before a superstep's exchange, bounded by
//     the caller's context, for exercising per-superstep deadlines
//     without a wall-clock-sized test.
//
// Whatever the fault, the error that reaches the caller wraps a
// *transport.MachineError naming the victim and the superstep, so
// registry-wide tests can assert attribution uniformly across
// substrates.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"time"

	"kmachine/internal/obs"
	"kmachine/internal/transport"
)

// ErrKilled is the cause inside the MachineError a KillAt fault
// produces; detect it with errors.Is.
var ErrKilled = errors.New("chaos: machine killed by fault injection")

type faultKind int

const (
	faultKill faultKind = iota
	faultDropConn
	faultDelay
)

// Fault is one injected failure; build them with KillAt, DropConnAt,
// and DelayAt.
type Fault struct {
	kind   faultKind
	victim transport.MachineID
	step   int
	delay  time.Duration
	sever  func()
}

// KillAt makes the victim machine die at the given superstep: the
// wrapped transport is closed and Exchange returns a MachineError
// wrapping ErrKilled. Substrate-independent.
func KillAt(victim transport.MachineID, step int) Fault {
	return Fault{kind: faultKill, victim: victim, step: step}
}

// DropConnAt severs the victim's real substrate resources at the given
// superstep by calling sever (e.g. a closure over
// tcp.Transport.SeverMachine), then lets the inner transport's own
// failure machinery produce the error; chaos re-attributes it to the
// victim if the substrate could not.
func DropConnAt(victim transport.MachineID, step int, sever func()) Fault {
	return Fault{kind: faultDropConn, victim: victim, step: step, sever: sever}
}

// DelayAt inserts d of latency before the exchange of the given
// superstep (step < 0 means every superstep). The sleep respects the
// Exchange context: an expiring per-superstep deadline cuts it short
// and surfaces as a MachineError attributed to machine -1 (no specific
// victim — the cluster, not a machine, was slow).
func DelayAt(step int, d time.Duration) Fault {
	return Fault{kind: faultDelay, step: step, victim: -1, delay: d}
}

// Transport wraps an inner transport with injected faults. It is not
// safe for concurrent Exchange calls, matching the Transport contract.
type Transport[M any] struct {
	inner  transport.Transport[M]
	faults []Fault
	killed bool
	victim transport.MachineID
}

// Wrap decorates inner with the given faults.
func Wrap[M any](inner transport.Transport[M], faults ...Fault) *Transport[M] {
	return &Transport[M]{inner: inner, faults: faults, victim: -1}
}

// Exchange applies due faults, then forwards to the inner transport.
func (t *Transport[M]) Exchange(ctx context.Context, step int, outs [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	for _, f := range t.faults {
		switch f.kind {
		case faultDelay:
			if f.step >= 0 && f.step != step {
				continue
			}
			select {
			case <-time.After(f.delay):
			case <-ctx.Done():
				return nil, &transport.MachineError{Machine: f.victim, Superstep: step,
					Err: fmt.Errorf("chaos: delayed superstep overran its deadline: %w", ctx.Err())}
			}
		case faultKill:
			if f.step != step || t.killed {
				continue
			}
			t.killed, t.victim = true, f.victim
			t.inner.Close()
			return nil, &transport.MachineError{Machine: f.victim, Superstep: step, Err: ErrKilled}
		case faultDropConn:
			if f.step != step || t.killed {
				continue
			}
			t.killed, t.victim = true, f.victim
			f.sever()
			// Fall through to the inner Exchange: the severed resources
			// make the substrate's real failure path fire.
		}
	}
	in, err := t.inner.Exchange(ctx, step, outs)
	if err != nil && t.killed {
		// Guarantee attribution: whatever shape the substrate's failure
		// took (a victim endpoint reporting its own dead sockets, a
		// generic close error), the caller learns who chaos killed.
		var me *transport.MachineError
		if !errors.As(err, &me) || me.Machine != t.victim {
			err = &transport.MachineError{Machine: t.victim, Superstep: step, Err: err}
		}
	}
	return in, err
}

// CanStream implements transport.Streamer by delegation: chaos itself
// adds no wire, so the streaming capability is exactly the inner
// transport's. Exposing the methods while answering false here is the
// pattern that lets a wrapper implement the interface unconditionally —
// callers must gate on CanStream, per the contract.
func (t *Transport[M]) CanStream() bool {
	if s, ok := t.inner.(transport.Streamer[M]); ok {
		return s.CanStream()
	}
	return false
}

// BeginSuperstep forwards to the inner streamer. Faults stay attached
// to FinishSuperstep — the streaming superstep's barrier — mirroring
// their timing on the lockstep path, where they fire in Exchange.
func (t *Transport[M]) BeginSuperstep(ctx context.Context, step int) error {
	return t.inner.(transport.Streamer[M]).BeginSuperstep(ctx, step)
}

// SendBatch forwards an eagerly-emitted batch to the inner streamer.
func (t *Transport[M]) SendBatch(from, to transport.MachineID, batch []transport.Envelope[M]) error {
	return t.inner.(transport.Streamer[M]).SendBatch(from, to, batch)
}

// FinishSuperstep applies due faults, then forwards to the inner
// streamer — the same injection points and attribution guarantee as
// Exchange, so the chaos suite asserts identical failure behaviour
// under either schedule. A KillAt victim dies here even if its batches
// were already streamed: the run aborts with the attributed error
// before any inbox is assembled, exactly like a machine crashing
// mid-superstep.
func (t *Transport[M]) FinishSuperstep(ctx context.Context, step int, rest [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	for _, f := range t.faults {
		switch f.kind {
		case faultDelay:
			if f.step >= 0 && f.step != step {
				continue
			}
			select {
			case <-time.After(f.delay):
			case <-ctx.Done():
				return nil, &transport.MachineError{Machine: f.victim, Superstep: step,
					Err: fmt.Errorf("chaos: delayed superstep overran its deadline: %w", ctx.Err())}
			}
		case faultKill:
			if f.step != step || t.killed {
				continue
			}
			t.killed, t.victim = true, f.victim
			t.inner.Close()
			return nil, &transport.MachineError{Machine: f.victim, Superstep: step, Err: ErrKilled}
		case faultDropConn:
			if f.step != step || t.killed {
				continue
			}
			t.killed, t.victim = true, f.victim
			f.sever()
		}
	}
	in, err := t.inner.(transport.Streamer[M]).FinishSuperstep(ctx, step, rest)
	if err != nil && t.killed {
		var me *transport.MachineError
		if !errors.As(err, &me) || me.Machine != t.victim {
			err = &transport.MachineError{Machine: t.victim, Superstep: step, Err: err}
		}
	}
	return in, err
}

// Close closes the inner transport.
func (t *Transport[M]) Close() error { return t.inner.Close() }

// WireStats forwards the inner transport's physical-layer counters, so
// wrapping a substrate in faults does not hide its bytes-on-wire; a
// meterless inner transport (the loopback) reports zeros.
func (t *Transport[M]) WireStats() transport.WireStats {
	if m, ok := t.inner.(transport.WireMeter); ok {
		return m.WireStats()
	}
	return transport.WireStats{}
}

// SetRecorder forwards the telemetry recorder to the inner transport
// when it records frame spans (transport.TraceSink), so wrapping a
// substrate in faults does not blind the tracer; a sink-less inner
// transport makes this a no-op.
func (t *Transport[M]) SetRecorder(r obs.Recorder) {
	if s, ok := t.inner.(transport.TraceSink); ok {
		s.SetRecorder(r)
	}
}
