package chaos_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"kmachine/internal/core"
	"kmachine/internal/transport"
	"kmachine/internal/transport/chaos"
	"kmachine/internal/transport/inmem"
)

type msg struct{ X int64 }

// chatterFactory builds machines that keep one envelope per ring link in
// flight forever, so the run only ends when a fault ends it.
func chatterFactory(k int) func(core.MachineID) core.Machine[msg] {
	return func(id core.MachineID) core.Machine[msg] {
		return core.MachineFunc[msg](func(ctx *core.StepContext, inbox []core.Envelope[msg]) ([]core.Envelope[msg], bool) {
			return []core.Envelope[msg]{{To: core.MachineID((int(ctx.Self) + 1) % k), Words: 1}}, false
		})
	}
}

func TestKillAtReturnsAttributedError(t *testing.T) {
	const k, victim, step = 4, 2, 3
	tr := chaos.Wrap(inmem.New[msg](k), chaos.KillAt(victim, step))
	defer tr.Close()
	c := core.NewCluster(core.Config{K: k, Bandwidth: 1, Seed: 1, MaxSupersteps: 100}, chatterFactory(k))
	stats, err := c.RunOn(tr)
	if err == nil {
		t.Fatal("killed cluster terminated without error")
	}
	var me *transport.MachineError
	if !errors.As(err, &me) {
		t.Fatalf("error %v carries no machine attribution", err)
	}
	if me.Machine != victim || me.Superstep != step {
		t.Errorf("attributed to machine %d superstep %d, want %d/%d", me.Machine, me.Superstep, victim, step)
	}
	if !errors.Is(err, chaos.ErrKilled) {
		t.Errorf("error %v does not wrap ErrKilled", err)
	}
	// Accounting happens before envelopes reach the transport, so the
	// superstep the kill lands in is already in the partial stats.
	if stats == nil || stats.Supersteps != step+1 {
		t.Errorf("stats account %d supersteps, want %d (kill superstep included)", stats.Supersteps, step+1)
	}
}

func TestDelayOverrunsSuperstepTimeout(t *testing.T) {
	const k = 3
	// 30s of injected latency against a 50ms per-superstep deadline: the
	// run must fail within the deadline, not sleep the delay out.
	tr := chaos.Wrap(inmem.New[msg](k), chaos.DelayAt(1, 30*time.Second))
	defer tr.Close()
	c := core.NewCluster(core.Config{
		K: k, Bandwidth: 1, Seed: 1, MaxSupersteps: 100,
		SuperstepTimeout: 50 * time.Millisecond,
	}, chatterFactory(k))
	start := time.Now()
	_, err := c.RunOn(tr)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("delayed superstep did not error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire, want ~50ms", elapsed)
	}
}

func TestDropConnReattributesInnerFailure(t *testing.T) {
	const k, victim, step = 3, 1, 2
	inner := inmem.New[msg](k)
	// The severed "connection" of the loopback is the transport itself:
	// what matters is that the inner failure, whatever its shape, comes
	// back attributed to the victim chaos chose.
	tr := chaos.Wrap[msg](inner, chaos.DropConnAt(victim, step, func() { inner.Close() }))
	defer tr.Close()
	c := core.NewCluster(core.Config{K: k, Bandwidth: 1, Seed: 1, MaxSupersteps: 100}, chatterFactory(k))
	_, err := c.RunOn(tr)
	if err == nil {
		t.Fatal("severed transport did not error")
	}
	var me *transport.MachineError
	if !errors.As(err, &me) {
		t.Fatalf("inner error %v was not re-attributed", err)
	}
	if me.Machine != victim || me.Superstep != step {
		t.Errorf("attributed to machine %d superstep %d, want %d/%d", me.Machine, me.Superstep, victim, step)
	}
}

// streamChatterFactory is chatterFactory on the streaming emit path:
// each machine hands its single ring envelope to the transport mid-step
// via the emitter, so faults land while batches are in flight rather
// than at a clean phase boundary.
func streamChatterFactory(k int) func(core.MachineID) core.Machine[msg] {
	return func(id core.MachineID) core.Machine[msg] {
		return core.MachineFunc[msg](func(ctx *core.StepContext, inbox []core.Envelope[msg]) ([]core.Envelope[msg], bool) {
			to := core.MachineID((int(ctx.Self) + 1) % k)
			batch := []core.Envelope[msg]{{To: to, Words: 1}}
			return core.EmitOrAppend(ctx, to, batch, nil), false
		})
	}
}

// A kill landing mid-streaming-superstep must surface with the same
// machine/superstep attribution the lockstep schedule guarantees, even
// though peers may already have decoded the victim's eager batches for
// that superstep.
func TestKillAtAttributionUnderStreaming(t *testing.T) {
	const k, victim, step = 4, 2, 3
	tr := chaos.Wrap(inmem.New[msg](k), chaos.KillAt(victim, step))
	defer tr.Close()
	c := core.NewCluster(core.Config{K: k, Bandwidth: 1, Seed: 1, MaxSupersteps: 100, Streaming: true},
		streamChatterFactory(k))
	stats, err := c.RunOn(tr)
	if err == nil {
		t.Fatal("killed streaming cluster terminated without error")
	}
	var me *transport.MachineError
	if !errors.As(err, &me) {
		t.Fatalf("streaming error %v carries no machine attribution", err)
	}
	if me.Machine != victim || me.Superstep != step {
		t.Errorf("attributed to machine %d superstep %d, want %d/%d", me.Machine, me.Superstep, victim, step)
	}
	if !errors.Is(err, chaos.ErrKilled) {
		t.Errorf("error %v does not wrap ErrKilled", err)
	}
	if stats == nil || stats.Supersteps != step+1 {
		t.Errorf("stats account %d supersteps, want %d (kill superstep included)", stats.Supersteps, step+1)
	}
}

// A delay fault under streaming must still hit the per-superstep
// deadline promptly: the relaxed barrier cannot weaken cancellation.
func TestDelayOverrunsTimeoutUnderStreaming(t *testing.T) {
	const k = 3
	tr := chaos.Wrap(inmem.New[msg](k), chaos.DelayAt(1, 30*time.Second))
	defer tr.Close()
	c := core.NewCluster(core.Config{
		K: k, Bandwidth: 1, Seed: 1, MaxSupersteps: 100, Streaming: true,
		SuperstepTimeout: 50 * time.Millisecond,
	}, streamChatterFactory(k))
	start := time.Now()
	_, err := c.RunOn(tr)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("delayed streaming superstep did not error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire under streaming, want ~50ms", elapsed)
	}
}

// TestHappyPathPassThrough: an inert chaos wrapper (no due faults) must
// be invisible — same Stats as the bare loopback.
func TestHappyPathPassThrough(t *testing.T) {
	const k = 4
	run := func(tr core.Transport[msg]) *core.Stats {
		t.Helper()
		factory := func(id core.MachineID) core.Machine[msg] {
			return core.MachineFunc[msg](func(ctx *core.StepContext, inbox []core.Envelope[msg]) ([]core.Envelope[msg], bool) {
				if ctx.Superstep >= 5 {
					return nil, true
				}
				return []core.Envelope[msg]{{To: core.MachineID((int(ctx.Self) + 1) % k), Words: 2}}, false
			})
		}
		c := core.NewCluster(core.Config{K: k, Bandwidth: 1, Seed: 9}, factory)
		stats, err := c.RunOn(tr)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	plain := run(inmem.New[msg](k))
	wrapped := run(chaos.Wrap(inmem.New[msg](k), chaos.KillAt(1, 10_000)))
	if plain.Rounds != wrapped.Rounds || plain.Words != wrapped.Words || plain.Supersteps != wrapped.Supersteps {
		t.Errorf("chaos wrapper changed the happy path: %+v vs %+v", wrapped, plain)
	}
}
