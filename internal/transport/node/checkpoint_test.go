package node

// White-box tests for the standalone runtime's checkpoint plane: the
// per-machine KMNP parts written into a CheckpointStore at the
// coordinator's continue verdict, and the ctrlResume round that aligns
// a resumed cluster on the restored superstep. The property under test
// is the same as everywhere in this repo: arming checkpoints changes
// nothing observable, and resuming from a store reproduces the golden
// run bit for bit.

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/testutil"
	"kmachine/internal/transport/wire"
)

// ckMachine is a deterministic ring machine whose state exercises all
// three restored quantities: the snapshot blob (sum), the RNG stream
// (each superstep's payload is a fresh draw), and the stored inbox
// (sums accumulate from delivered envelopes).
type ckMachine struct {
	self core.MachineID
	sum  int64
}

const ckLastStep = 9

func (m *ckMachine) Step(ctx *core.StepContext, inbox []core.Envelope[failMsg]) ([]core.Envelope[failMsg], bool) {
	for _, e := range inbox {
		m.sum += e.Msg.X
	}
	if ctx.Superstep >= ckLastStep {
		return nil, true
	}
	return []core.Envelope[failMsg]{{
		To:    core.MachineID((int(m.self) + 1) % ctx.K),
		Words: 1,
		Msg:   failMsg{X: int64(ctx.RNG.Uint64() % 1000)},
	}}, false
}

func (m *ckMachine) SnapshotState(dst []byte) ([]byte, error) {
	return wire.AppendVarint(dst, m.sum), nil
}

func (m *ckMachine) RestoreState(src []byte) error {
	c := &wire.Cursor{Src: src}
	m.sum = c.Varint()
	return c.Finish()
}

// runCkCluster executes the ring over RunLocal with the given
// checkpoint config, returning the Stats and every machine's final sum.
func runCkCluster(t *testing.T, k int, ck CheckpointConfig) (*core.Stats, []int64) {
	t.Helper()
	machines := make([]*ckMachine, k)
	cfg := Config{K: k, Bandwidth: 1, Seed: 77, Checkpoint: ck}
	stats, err := RunLocal(cfg, failCodec{}, func(id core.MachineID) core.Machine[failMsg] {
		machines[id] = &ckMachine{self: id}
		return machines[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]int64, k)
	for i, m := range machines {
		sums[i] = m.sum
	}
	return stats, sums
}

func sameCkStats(t *testing.T, label string, got, want *core.Stats) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Supersteps != want.Supersteps ||
		got.Messages != want.Messages || got.Words != want.Words ||
		got.MaxRecvWords != want.MaxRecvWords {
		t.Errorf("%s: stats diverge: got Rounds=%d Supersteps=%d Messages=%d Words=%d, want Rounds=%d Supersteps=%d Messages=%d Words=%d",
			label, got.Rounds, got.Supersteps, got.Messages, got.Words,
			want.Rounds, want.Supersteps, want.Messages, want.Words)
	}
}

// TestNodeCheckpointedRunMatchesGolden: arming the checkpoint plane on
// the node runtime must not perturb Stats or outputs, and the store
// must end the run holding a complete (all k parts + coordinator
// stats) checkpoint of a pre-final superstep.
func TestNodeCheckpointedRunMatchesGolden(t *testing.T) {
	base := runtime.NumGoroutine()
	const k = 4
	goldenStats, goldenSums := runCkCluster(t, k, CheckpointConfig{})
	store := NewCheckpointStore(k)
	ckStats, ckSums := runCkCluster(t, k, CheckpointConfig{Every: 2, Store: store})
	sameCkStats(t, "checkpointed-vs-golden", ckStats, goldenStats)
	for i := range goldenSums {
		if ckSums[i] != goldenSums[i] {
			t.Errorf("machine %d sum %d with checkpointing, %d without", i, ckSums[i], goldenSums[i])
		}
	}
	latest := store.LatestComplete()
	if latest < 0 {
		t.Fatal("no complete checkpoint in the store after a checkpointed run")
	}
	if latest >= goldenStats.Supersteps-1 {
		t.Errorf("latest complete checkpoint at superstep %d, want a pre-final superstep of a %d-superstep run",
			latest, goldenStats.Supersteps)
	}
	if store.Puts() == 0 || store.Bytes() == 0 {
		t.Errorf("store counters empty: puts=%d bytes=%d", store.Puts(), store.Bytes())
	}
	testutil.NoLeakedGoroutines(t, base)
}

// TestNodeResumeFromStoreDeterministic: fresh machines resumed from a
// prior run's store replay only the post-checkpoint tail, and the total
// Stats and final outputs are bit-identical to the golden run — the
// node-runtime half of the scheduler's resume-from-checkpoint protocol.
func TestNodeResumeFromStoreDeterministic(t *testing.T) {
	base := runtime.NumGoroutine()
	const k = 4
	goldenStats, goldenSums := runCkCluster(t, k, CheckpointConfig{})
	store := NewCheckpointStore(k)
	if _, _ = runCkCluster(t, k, CheckpointConfig{Every: 2, Store: store}); store.LatestComplete() < 0 {
		t.Fatal("no complete checkpoint to resume from")
	}
	resumedStats, resumedSums := runCkCluster(t, k, CheckpointConfig{Every: 2, Store: store, Resume: true})
	sameCkStats(t, "resumed-vs-golden", resumedStats, goldenStats)
	for i := range goldenSums {
		if resumedSums[i] != goldenSums[i] {
			t.Errorf("machine %d sum %d after resume, golden %d", i, resumedSums[i], goldenSums[i])
		}
	}
	testutil.NoLeakedGoroutines(t, base)
}

// TestResumeWithEmptyStoreStartsFromZero: Resume against a store with
// no complete checkpoint must degrade to a normal from-zero run — the
// path a job takes when its machine died before the first capture.
func TestResumeWithEmptyStoreStartsFromZero(t *testing.T) {
	const k = 4
	goldenStats, goldenSums := runCkCluster(t, k, CheckpointConfig{})
	store := NewCheckpointStore(k)
	resumedStats, resumedSums := runCkCluster(t, k, CheckpointConfig{Every: 2, Store: store, Resume: true})
	sameCkStats(t, "empty-resume-vs-golden", resumedStats, goldenStats)
	for i := range goldenSums {
		if resumedSums[i] != goldenSums[i] {
			t.Errorf("machine %d sum %d after empty-store resume, golden %d", i, resumedSums[i], goldenSums[i])
		}
	}
}

// TestPersistedCheckpointSurvivesProcessDeath: with Dir set, complete
// checkpoints land on disk (at most two retained, no torn .tmp left
// behind), and a *fresh* store loaded from the directory — the state a
// restarted process has — resumes to the golden totals.
func TestPersistedCheckpointSurvivesProcessDeath(t *testing.T) {
	const k = 4
	dir := t.TempDir()
	goldenStats, goldenSums := runCkCluster(t, k, CheckpointConfig{})
	if _, _ = runCkCluster(t, k, CheckpointConfig{Every: 2, Dir: dir}); true {
		files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.kmnc"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 || len(files) > 2 {
			t.Fatalf("persisted %d checkpoint files %v, want 1..2", len(files), files)
		}
		if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmp) != 0 {
			t.Fatalf("torn temp files left behind: %v", tmp)
		}
	}
	fresh := NewCheckpointStore(k)
	step, err := fresh.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if step < 0 || step != fresh.LatestComplete() {
		t.Fatalf("LoadFrom returned step %d, store says %d", step, fresh.LatestComplete())
	}
	resumedStats, resumedSums := runCkCluster(t, k, CheckpointConfig{Every: 2, Store: fresh, Resume: true})
	sameCkStats(t, "disk-resumed-vs-golden", resumedStats, goldenStats)
	for i := range goldenSums {
		if resumedSums[i] != goldenSums[i] {
			t.Errorf("machine %d sum %d after disk resume, golden %d", i, resumedSums[i], goldenSums[i])
		}
	}
}

// TestLoadFromSkipsCorruptFiles: a truncated newest file must not
// poison recovery — LoadFrom falls back to the next-newest valid one.
func TestLoadFromSkipsCorruptFiles(t *testing.T) {
	const k = 4
	dir := t.TempDir()
	store := NewCheckpointStore(k)
	if err := store.PersistTo(dir); err != nil {
		t.Fatal(err)
	}
	if _, _ = runCkCluster(t, k, CheckpointConfig{Every: 2, Store: store}); store.LatestComplete() < 0 {
		t.Fatal("no complete checkpoint persisted")
	}
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.kmnc"))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v, %d files", err, len(files))
	}
	sort.Strings(files)
	newest := files[len(files)-1]
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewCheckpointStore(k)
	step, err := fresh.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) >= 2 {
		if step < 0 {
			t.Fatal("LoadFrom found nothing despite an intact older checkpoint")
		}
	} else if step >= 0 {
		t.Fatalf("LoadFrom accepted the truncated file as superstep %d", step)
	}
	wrongK := NewCheckpointStore(k + 1)
	if step, err := wrongK.LoadFrom(dir); err != nil || step >= 0 {
		t.Fatalf("k-mismatched store loaded step %d, err %v; want -1, nil", step, err)
	}
}
