package node_test

import (
	"errors"
	"math"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/transport/node"
	"kmachine/internal/transport/wire"
)

type echoMsg struct {
	X int64
}

type echoCodec struct{}

func (echoCodec) Append(dst []byte, m echoMsg) ([]byte, error) {
	return wire.AppendVarint(dst, m.X), nil
}

func (echoCodec) Decode(src []byte) (echoMsg, int, error) {
	v, n, err := wire.Varint(src)
	return echoMsg{X: v}, n, err
}

// ringFactory: machine i sends i+1 one-word tokens to (i+1)%k in
// superstep 0, checks what it received in superstep 1.
func ringFactory(t *testing.T, k int) func(core.MachineID) core.Machine[echoMsg] {
	return func(id core.MachineID) core.Machine[echoMsg] {
		return core.MachineFunc[echoMsg](func(ctx *core.StepContext, inbox []core.Envelope[echoMsg]) ([]core.Envelope[echoMsg], bool) {
			switch ctx.Superstep {
			case 0:
				var out []core.Envelope[echoMsg]
				for n := 0; n <= int(ctx.Self); n++ {
					out = append(out, core.Envelope[echoMsg]{
						To:    core.MachineID((int(ctx.Self) + 1) % k),
						Words: 1,
						Msg:   echoMsg{X: int64(ctx.Self)},
					})
				}
				return out, true
			default:
				wantFrom := (int(ctx.Self) + k - 1) % k
				if len(inbox) != wantFrom+1 {
					t.Errorf("machine %d got %d envelopes, want %d", ctx.Self, len(inbox), wantFrom+1)
				}
				for _, e := range inbox {
					if int(e.From) != wantFrom || e.Msg.X != int64(wantFrom) {
						t.Errorf("machine %d got %+v, want from %d", ctx.Self, e, wantFrom)
					}
				}
				return nil, true
			}
		})
	}
}

func TestRunLocalRingMatchesCoreStats(t *testing.T) {
	const k = 5
	nodeStats, err := node.RunLocal(node.Config{K: k, Bandwidth: 2, Seed: 7}, echoCodec{}, ringFactory(t, k))
	if err != nil {
		t.Fatal(err)
	}
	cluster := core.NewCluster(core.Config{K: k, Bandwidth: 2, Seed: 7}, ringFactory(t, k))
	coreStats, err := cluster.Run()
	if err != nil {
		t.Fatal(err)
	}
	if nodeStats.Rounds != coreStats.Rounds ||
		nodeStats.Words != coreStats.Words ||
		nodeStats.Messages != coreStats.Messages ||
		nodeStats.Supersteps != coreStats.Supersteps ||
		nodeStats.MaxRecvWords != coreStats.MaxRecvWords {
		t.Errorf("stats diverge:\n node: %+v\n core: %+v", nodeStats, coreStats)
	}
	for i := 0; i < k; i++ {
		if nodeStats.RecvWords[i] != coreStats.RecvWords[i] || nodeStats.SentWords[i] != coreStats.SentWords[i] {
			t.Errorf("machine %d words: node (%d,%d), core (%d,%d)", i,
				nodeStats.RecvWords[i], nodeStats.SentWords[i], coreStats.RecvWords[i], coreStats.SentWords[i])
		}
	}
}

func TestRunLocalMaxSuperstepsAborts(t *testing.T) {
	_, err := node.RunLocal(node.Config{K: 3, Bandwidth: 1, Seed: 1, MaxSupersteps: 4}, echoCodec{}, func(core.MachineID) core.Machine[echoMsg] {
		return core.MachineFunc[echoMsg](func(*core.StepContext, []core.Envelope[echoMsg]) ([]core.Envelope[echoMsg], bool) {
			return nil, false // never done
		})
	})
	if !errors.Is(err, core.ErrMaxSupersteps) {
		t.Fatalf("err = %v, want ErrMaxSupersteps", err)
	}
}

func TestRunLocalPanicAbortsCluster(t *testing.T) {
	_, err := node.RunLocal(node.Config{K: 3, Bandwidth: 1, Seed: 1}, echoCodec{}, func(id core.MachineID) core.Machine[echoMsg] {
		return core.MachineFunc[echoMsg](func(ctx *core.StepContext, _ []core.Envelope[echoMsg]) ([]core.Envelope[echoMsg], bool) {
			if ctx.Self == 1 && ctx.Superstep == 1 {
				panic("boom")
			}
			return nil, false
		})
	})
	if err == nil {
		t.Fatal("panicking machine did not abort the cluster")
	}
}

// TestRunLocalPageRankMatchesInMemory is the paper-level claim: the
// same PageRank machines, run as k standalone node runtimes over
// loopback TCP, produce bit-identical estimates and identical measured
// Rounds/Words to the in-process simulator.
func TestRunLocalPageRankMatchesInMemory(t *testing.T) {
	const (
		k    = 8
		n    = 200
		seed = 42
	)
	g := gen.Gnp(n, 0.05, seed)
	p := partition.NewRVP(g, k, seed+1)
	bw := core.DefaultBandwidth(n)
	opts := pagerank.AlgorithmOne(0.15)

	mem, err := pagerank.Run(p, core.Config{K: k, Bandwidth: bw, Seed: seed + 2}, opts)
	if err != nil {
		t.Fatal(err)
	}

	machines := make([]*pagerank.NodeMachine, k)
	nodeStats, err := node.RunLocal(node.Config{K: k, Bandwidth: bw, Seed: seed + 2}, pagerank.WireCodec(),
		func(id core.MachineID) core.Machine[pagerank.Wire] {
			m, err := pagerank.NewNodeMachine(p.View(id), opts)
			if err != nil {
				t.Fatal(err)
			}
			machines[id] = m
			return m
		})
	if err != nil {
		t.Fatal(err)
	}

	if nodeStats.Rounds != mem.Stats.Rounds || nodeStats.Words != mem.Stats.Words ||
		nodeStats.Supersteps != mem.Stats.Supersteps || nodeStats.Messages != mem.Stats.Messages {
		t.Errorf("stats diverge: node rounds=%d words=%d supersteps=%d msgs=%d; inmem rounds=%d words=%d supersteps=%d msgs=%d",
			nodeStats.Rounds, nodeStats.Words, nodeStats.Supersteps, nodeStats.Messages,
			mem.Stats.Rounds, mem.Stats.Words, mem.Stats.Supersteps, mem.Stats.Messages)
	}

	got := 0
	for _, m := range machines {
		for v, est := range m.LocalEstimates() {
			got++
			if math.Float64bits(est) != math.Float64bits(mem.Estimate[v]) {
				t.Errorf("vertex %d: node estimate %v, inmem %v", v, est, mem.Estimate[v])
			}
		}
	}
	if got != n {
		t.Errorf("nodes output %d estimates, want %d", got, n)
	}
}
