package node

import (
	"context"
	"fmt"
	"sync"

	"kmachine/internal/core"
	"kmachine/internal/transport/tcp"
	"kmachine/internal/transport/wire"
)

// This file is the node runtime's multi-job mode: where Run/RunLocal
// build a mesh, execute one algorithm, and tear everything down, a
// LocalMesh outlives jobs — RunJobLocal attaches fresh typed endpoints
// to the standing fabric for each job, frames every data batch with the
// job ID, brackets the superstep loop in a job-begin/job-end control
// handshake, and detaches with the connections intact. Per-job
// isolation falls out of the structure: each job gets fresh endpoints
// (wire counters, scratch, inboxes), a fresh coordinator (Stats), and
// whatever Recorder the caller put in its Config.

// Job-lifecycle control frames, exchanged on the report/verdict plane
// around each job's superstep loop. Values deliberately far from the
// verdict kinds (0..2): a verdict misread as a lifecycle frame — or
// vice versa, a straggler from a mis-sequenced previous job — fails
// loudly instead of aliasing.
const (
	ctrlJobBegin = byte(0xB0)
	ctrlJobEnd   = byte(0xB1)
)

func encodeJobCtrl(kind byte, job uint64) []byte {
	return wire.AppendUvarint([]byte{kind}, job)
}

func decodeJobCtrl(buf []byte, wantKind byte, wantJob uint64) error {
	if len(buf) < 1 || buf[0] != wantKind {
		got := byte(0xFF)
		if len(buf) > 0 {
			got = buf[0]
		}
		return fmt.Errorf("node: expected job control frame 0x%02x, got 0x%02x", wantKind, got)
	}
	job, _, err := wire.Uvarint(buf[1:])
	if err != nil {
		return fmt.Errorf("node: corrupt job control frame: %w", err)
	}
	if job != wantJob {
		return fmt.Errorf("node: job control frame for job %d, want job %d", job, wantJob)
	}
	return nil
}

// LocalMesh is the standing k-machine socket fabric of a resident
// in-process cluster: k listeners on loopback, every ordered pair
// connected, no job running. It is built once (NewLocalMesh), executes
// any number of sequential jobs (RunJobLocal), and is torn down on
// Close. Any job failure poisons it — Healthy reports whether the next
// job may run or the owner must rebuild.
type LocalMesh struct {
	k      int
	meshes []*tcp.Mesh
}

// NewLocalMesh builds the standing loopback fabric for a k-machine
// resident cluster.
func NewLocalMesh(k int) (*LocalMesh, error) {
	if k < 2 {
		return nil, fmt.Errorf("node: need k >= 2 machines, got %d", k)
	}
	ms, err := tcp.NewLoopbackSocketMesh(k)
	if err != nil {
		return nil, err
	}
	return &LocalMesh{k: k, meshes: ms}, nil
}

// K returns the cluster size.
func (lm *LocalMesh) K() int { return lm.k }

// Healthy reports whether every machine's fabric is still usable: false
// after any job failure (or Sever), meaning the owner must rebuild the
// mesh before the next job.
func (lm *LocalMesh) Healthy() bool {
	for _, m := range lm.meshes {
		if !m.Healthy() {
			return false
		}
	}
	return true
}

// Sever forcibly closes machine i's fabric — listener and every
// connection — simulating that machine dying mid-job. The in-flight
// job fails with attribution; the mesh is poisoned. Fault injection
// for chaos tests, mirroring tcp.Transport.SeverMachine.
func (lm *LocalMesh) Sever(i int) error {
	if i < 0 || i >= lm.k {
		return fmt.Errorf("node: cannot sever machine %d of %d", i, lm.k)
	}
	return lm.meshes[i].Close()
}

// Close tears down every machine's fabric.
func (lm *LocalMesh) Close() error {
	var first error
	for _, m := range lm.meshes {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RunJobLocal executes one job on the standing mesh: typed endpoints
// attach for job `job` (all data frames carry its ID), the coordinator
// opens with a job-begin control frame, the ordinary superstep loop
// runs to its stop verdict, and a job-end handshake certifies every
// machine consumed every frame before the endpoints detach — which is
// what makes the connections safe to hand to the next job's endpoints.
// cfg is a template exactly like RunLocal's: ID, ListenAddr, and Peers
// are ignored; K must equal the mesh's. On any error the mesh is
// poisoned (Healthy()==false) and must be rebuilt.
func RunJobLocal[M any](lm *LocalMesh, cfg Config, job uint64, codec wire.Codec[M], factory func(core.MachineID) core.Machine[M]) (*core.Stats, error) {
	if cfg.K != lm.k {
		return nil, fmt.Errorf("node: job config wants k=%d on a k=%d mesh", cfg.K, lm.k)
	}
	if job == 0 {
		// Zero is the "no job" sentinel in MachineError attribution.
		return nil, fmt.Errorf("node: job IDs start at 1")
	}
	k := lm.k
	if cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Store == nil {
		// A private store still checkpoints, but recovery needs the
		// caller (the job scheduler) to own the store so it survives the
		// mesh rebuild between attempts.
		cfg.Checkpoint.Store = NewCheckpointStore(k)
	}
	if cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Dir != "" {
		if err := cfg.Checkpoint.Store.PersistTo(cfg.Checkpoint.Dir); err != nil {
			return nil, err
		}
	}
	eps := make([]*tcp.Endpoint[M], k)
	for i := 0; i < k; i++ {
		e, err := tcp.Attach[M](lm.meshes[i], codec, job)
		if err != nil {
			for _, prev := range eps[:i] {
				prev.Close()
			}
			return nil, err
		}
		if cfg.Recorder != nil {
			e.SetRecorder(cfg.Recorder)
		}
		eps[i] = e
	}
	// Factory calls stay sequential, matching core.NewCluster's contract.
	machines := make([]core.Machine[M], k)
	for i := 0; i < k; i++ {
		machines[i] = factory(core.MachineID(i))
	}
	stats := make([]*core.Stats, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mcfg := cfg
			mcfg.ID = i
			mcfg.ListenAddr, mcfg.Peers = "", nil
			if err := mcfg.validate(); err == nil {
				stats[i], errs[i] = runJobNode(mcfg, eps[i], machines[i], job, codec)
			} else {
				errs[i] = err
			}
			if errs[i] != nil {
				// Same teardown rule as RunLocal: a node that bails must
				// close its endpoint — and with it the shared fabric — so
				// peers parked on its connections unblock immediately.
				eps[i].Close()
			} else {
				eps[i].Detach()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// A failed job may leave some machines cleanly detached and
			// others mid-teardown; poison the whole fabric so the owner
			// rebuilds rather than running the next job on a half-dead
			// mesh.
			for _, e := range eps {
				e.Close()
			}
			if errs[0] != nil {
				return stats[0], errs[0]
			}
			return stats[0], err
		}
	}
	return stats[0], nil
}

// runJobNode wraps one machine's superstep loop in the job-lifecycle
// handshake. The begin frame proves the control plane is aligned on
// this job before any data frame ships; the end frames prove every
// machine consumed its stop verdict — i.e. every connection is
// quiescent — before the caller detaches the endpoints.
func runJobNode[M any](cfg Config, ep *tcp.Endpoint[M], m core.Machine[M], job uint64, codec wire.Codec[M]) (*core.Stats, error) {
	runCtx := cfg.Context
	if runCtx == nil {
		runCtx = context.Background()
	}
	hctx, cancel := handshakeCtx(runCtx, cfg)
	if cfg.ID == 0 {
		if err := ep.Broadcast(hctx, encodeJobCtrl(ctrlJobBegin, job)); err != nil {
			cancel()
			return nil, fmt.Errorf("node: coordinator job %d begin: %w", job, err)
		}
	} else {
		frame, err := ep.ReceiveVerdict(hctx)
		if err == nil {
			err = decodeJobCtrl(frame, ctrlJobBegin, job)
		}
		if err != nil {
			cancel()
			return nil, fmt.Errorf("node: machine %d job %d begin: %w", cfg.ID, job, err)
		}
	}
	cancel()

	stats, err := runLoop(cfg, ep, m, codec)
	if err != nil {
		return stats, err
	}

	hctx, cancel = handshakeCtx(runCtx, cfg)
	defer cancel()
	if err := ep.SendToCoordinator(hctx, encodeJobCtrl(ctrlJobEnd, job)); err != nil {
		return stats, fmt.Errorf("node: machine %d job %d end: %w", cfg.ID, job, err)
	}
	if cfg.ID == 0 {
		// Step index is only diagnostic here; -1 marks the end-of-job
		// collection round.
		ends, err := ep.CollectReports(hctx, -1)
		if err != nil {
			return stats, fmt.Errorf("node: coordinator job %d end: %w", job, err)
		}
		for i, frame := range ends {
			if err := decodeJobCtrl(frame, ctrlJobEnd, job); err != nil {
				return stats, fmt.Errorf("node: coordinator job %d end from machine %d: %w", job, i, err)
			}
		}
	}
	return stats, nil
}

// handshakeCtx bounds a job-lifecycle handshake the same way a
// superstep is bounded: by cfg.SuperstepTimeout when set, otherwise
// only by the run context.
func handshakeCtx(runCtx context.Context, cfg Config) (context.Context, context.CancelFunc) {
	if cfg.SuperstepTimeout > 0 {
		return context.WithTimeout(runCtx, cfg.SuperstepTimeout)
	}
	return context.WithCancel(runCtx)
}
