package node

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"kmachine/internal/core"
	"kmachine/internal/rng"
	"kmachine/internal/transport/tcp"
	"kmachine/internal/transport/wire"
)

// This file is the node runtime's checkpoint/recovery layer, the
// distributed mirror of core's coordinated-rollback design
// (core/checkpoint.go): every cfg.Checkpoint.Every supersteps each node
// captures a per-machine part — its RNG stream position, its machine
// state (via core.Snapshotter), and the inbox it is about to consume —
// into a shared CheckpointStore, and the coordinator additionally
// captures its accumulated Stats. A checkpoint is complete when all k
// parts plus the coordinator blob are present for one superstep.
//
// Recovery is a re-run: the job scheduler rebuilds the poisoned mesh,
// rebuilds the machines from the deterministic inputs, and re-enters
// with Checkpoint.Resume set. The coordinator picks the latest complete
// checkpoint and broadcasts the resume superstep in a pre-loop control
// round; every node restores its part and the loop continues at the
// following superstep, bit-identical to an unkilled run. With no
// complete checkpoint in the store the broadcast says "from zero" and
// the freshly built machines simply run from the start.
//
// The capture point — after the continue verdict, before the next
// compute — means the checkpointed Stats already include the captured
// superstep, so resume re-accounts nothing.
//
// The store is in-process shared memory: it serves RunLocal and the
// resident job service, where all k node loops live in one process.
// Multi-process standalone runs only ever fill one machine's parts and
// therefore never observe a complete checkpoint.

// CheckpointConfig is the checkpoint policy of a node run
// (Config.Checkpoint). The zero value disables checkpointing.
type CheckpointConfig struct {
	// Every captures a checkpoint after every Every-th superstep's
	// continue verdict; 0 disables. Requires the machine to implement
	// core.Snapshotter and forces lockstep supersteps (validate clears
	// Streaming — purely a scheduling knob, so Stats and hashes are
	// unchanged).
	Every int
	// Store receives the parts. RunLocal/RunJobLocal create a private
	// one when nil; standalone Run requires it.
	Store *CheckpointStore
	// Resume restores the latest complete checkpoint before the first
	// superstep: the coordinator broadcasts the resume superstep and
	// every node installs its part. With an empty store the run starts
	// from superstep 0.
	Resume bool
	// Dir, when non-empty, mirrors every complete checkpoint to a
	// ckpt-%08d.kmnc file in that directory (tmp+rename, last two
	// retained) — a durable restart point a fresh store can reload
	// with LoadFrom after the process itself dies.
	Dir string
}

// CheckpointStore holds the per-machine checkpoint parts of one job's
// run, keyed by superstep. It is safe for concurrent use by the k node
// loops of an in-process cluster and retains the last two complete
// checkpoints (a capture in progress must not invalidate the only
// restorable one).
type CheckpointStore struct {
	mu    sync.Mutex
	k     int
	steps map[int]*ckSlot
	puts  int
	bytes int64
	dir   string
}

type ckSlot struct {
	parts [][]byte
	stats []byte
	have  int
}

// NewCheckpointStore builds an empty store for a k-machine cluster.
func NewCheckpointStore(k int) *CheckpointStore {
	return &CheckpointStore{k: k, steps: map[int]*ckSlot{}}
}

// PutPart stores machine id's part for one superstep, copying the blob.
func (s *CheckpointStore) PutPart(step, id int, part []byte) error {
	if id < 0 || id >= s.k {
		return fmt.Errorf("node: checkpoint part from machine %d of %d", id, s.k)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := s.slot(step)
	if slot.parts[id] == nil {
		slot.have++
	}
	slot.parts[id] = append([]byte(nil), part...)
	s.puts++
	s.bytes += int64(len(part))
	s.pruneLocked()
	return s.persistLocked(step)
}

// PutStats stores the coordinator's accumulated-Stats blob for one
// superstep, copying it.
func (s *CheckpointStore) PutStats(step int, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slot(step).stats = append([]byte(nil), blob...)
	s.bytes += int64(len(blob))
	s.pruneLocked()
	return s.persistLocked(step)
}

// Part returns machine id's part for the superstep, if present.
func (s *CheckpointStore) Part(step, id int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.steps[step]
	if !ok || id < 0 || id >= s.k || slot.parts[id] == nil {
		return nil, false
	}
	return slot.parts[id], true
}

// StatsBlob returns the coordinator blob for the superstep, if present.
func (s *CheckpointStore) StatsBlob(step int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.steps[step]
	if !ok || slot.stats == nil {
		return nil, false
	}
	return slot.stats, true
}

// LatestComplete returns the highest superstep with all k parts and the
// coordinator blob present, or -1 when none is complete.
func (s *CheckpointStore) LatestComplete() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latestLocked()
}

// Puts and Bytes report how many parts were stored and the total bytes
// accepted (parts plus stats blobs, before pruning) — the E25
// experiment's overhead counters.
func (s *CheckpointStore) Puts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts
}

func (s *CheckpointStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

func (s *CheckpointStore) slot(step int) *ckSlot {
	slot, ok := s.steps[step]
	if !ok {
		slot = &ckSlot{parts: make([][]byte, s.k)}
		s.steps[step] = slot
	}
	return slot
}

func (s *CheckpointStore) latestLocked() int {
	latest := -1
	for step, slot := range s.steps {
		if slot.have == s.k && slot.stats != nil && step > latest {
			latest = step
		}
	}
	return latest
}

// pruneLocked drops everything older than the second-latest complete
// checkpoint: the latest is the restore target, the previous one the
// fallback while a new capture is still filling in.
func (s *CheckpointStore) pruneLocked() {
	latest := s.latestLocked()
	if latest < 0 {
		return
	}
	prev := -1
	for step, slot := range s.steps {
		if step < latest && slot.have == s.k && slot.stats != nil && step > prev {
			prev = step
		}
	}
	floor := latest
	if prev >= 0 {
		floor = prev
	}
	for step := range s.steps {
		if step < floor {
			delete(s.steps, step)
		}
	}
}

// PersistTo mirrors every complete checkpoint to dir from now on:
// whenever a superstep's slot fills (all k parts plus the coordinator
// blob), the whole cut is written to ckpt-%08d.kmnc via tmp+rename,
// and only the two newest files are retained — the same retention the
// in-memory slots use. The files give a run a durable restart point:
// after the process dies, LoadFrom rebuilds a store a Resume run can
// pick up from.
func (s *CheckpointStore) PersistTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("node: checkpoint dir: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dir = dir
	return nil
}

// Complete-checkpoint file format ("KMNC" v1): the k parts and the
// coordinator's Stats blob of one superstep, length-prefixed.
//
//	magic 'K','M','N','C', version 1
//	uvarint superstep+1
//	uvarint k
//	k × (uvarint len ++ KMNP part)
//	uvarint len(stats) ++ gob Stats blob
var ckFileMagic = []byte{'K', 'M', 'N', 'C', 1}

// persistLocked writes the step's slot to the persist directory if one
// is configured and the slot is complete; otherwise it is a no-op.
func (s *CheckpointStore) persistLocked(step int) error {
	slot, ok := s.steps[step]
	if s.dir == "" || !ok || slot.have != s.k || slot.stats == nil {
		return nil
	}
	buf := append([]byte(nil), ckFileMagic...)
	buf = wire.AppendUvarint(buf, uint64(step+1))
	buf = wire.AppendUvarint(buf, uint64(s.k))
	for _, part := range slot.parts {
		buf = wire.AppendUvarint(buf, uint64(len(part)))
		buf = append(buf, part...)
	}
	buf = wire.AppendUvarint(buf, uint64(len(slot.stats)))
	buf = append(buf, slot.stats...)
	name := filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d.kmnc", step))
	tmp := name + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("node: persist checkpoint: %w", err)
	}
	if err := os.Rename(tmp, name); err != nil {
		return fmt.Errorf("node: persist checkpoint: %w", err)
	}
	return s.pruneFilesLocked()
}

// pruneFilesLocked mirrors the in-memory retention on disk: everything
// but the two newest checkpoint files is removed. The %08d zero
// padding makes lexical order superstep order.
func (s *CheckpointStore) pruneFilesLocked() error {
	files, err := filepath.Glob(filepath.Join(s.dir, "ckpt-*.kmnc"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	for _, f := range files[:max(0, len(files)-2)] {
		if err := os.Remove(f); err != nil {
			return fmt.Errorf("node: prune checkpoint files: %w", err)
		}
	}
	return nil
}

// LoadFrom installs the newest valid persisted checkpoint from dir
// into the store, returning its superstep (-1 when the directory holds
// no loadable checkpoint — not an error, mirroring an empty store's
// from-zero resume). Files whose k disagrees with the store, or that
// fail to parse (a torn write survives only as the ignored .tmp), are
// skipped in favor of the next-newest.
func (s *CheckpointStore) LoadFrom(dir string) (int, error) {
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.kmnc"))
	if err != nil {
		return -1, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(files)))
	for _, f := range files {
		buf, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		step, parts, stats, err := decodeCheckpointFile(buf, s.k)
		if err != nil {
			continue
		}
		for id, part := range parts {
			if err := s.PutPart(step, id, part); err != nil {
				return -1, err
			}
		}
		if err := s.PutStats(step, stats); err != nil {
			return -1, err
		}
		return step, nil
	}
	return -1, nil
}

func decodeCheckpointFile(buf []byte, wantK int) (step int, parts [][]byte, stats []byte, err error) {
	if len(buf) < len(ckFileMagic) || !bytes.Equal(buf[:len(ckFileMagic)], ckFileMagic) {
		return 0, nil, nil, fmt.Errorf("node: bad checkpoint file header")
	}
	c := wire.Cursor{Src: buf, Off: len(ckFileMagic)}
	step = int(c.Uvarint()) - 1
	k := int(c.Uvarint())
	if c.Err != nil {
		return 0, nil, nil, c.Err
	}
	if k != wantK {
		return 0, nil, nil, fmt.Errorf("node: checkpoint file for k=%d, want k=%d", k, wantK)
	}
	take := func() []byte {
		n := int(c.Uvarint())
		if c.Err != nil || n < 0 || c.Off+n > len(buf) {
			if c.Err == nil {
				c.Err = fmt.Errorf("node: checkpoint file blob overruns %d bytes", len(buf))
			}
			return nil
		}
		b := buf[c.Off : c.Off+n]
		c.Off += n
		return b
	}
	parts = make([][]byte, k)
	for id := range parts {
		parts[id] = take()
	}
	stats = take()
	if err := c.Finish(); err != nil {
		return 0, nil, nil, fmt.Errorf("node: corrupt checkpoint file: %w", err)
	}
	return step, parts, stats, nil
}

// Per-machine part format ("KMNP" v1):
//
//	magic 'K','M','N','P', version 1
//	uvarint superstep+1
//	uvarint rng stream state
//	uvarint len(state) ++ state     (core.Snapshotter blob)
//	uvarint len(inbox) ++ envelopes (uvarint From, To, Words, codec payload)
var ckPartMagic = []byte{'K', 'M', 'N', 'P', 1}

func encodePart[M any](dst []byte, step int, rngState uint64, snap core.Snapshotter, inbox []core.Envelope[M], codec wire.Codec[M]) ([]byte, error) {
	dst = append(dst, ckPartMagic...)
	dst = wire.AppendUvarint(dst, uint64(step+1))
	dst = wire.AppendUvarint(dst, rngState)
	state, err := snap.SnapshotState(nil)
	if err != nil {
		return nil, fmt.Errorf("node: snapshot state: %w", err)
	}
	dst = wire.AppendUvarint(dst, uint64(len(state)))
	dst = append(dst, state...)
	dst = wire.AppendUvarint(dst, uint64(len(inbox)))
	for i := range inbox {
		e := &inbox[i]
		dst = wire.AppendUvarint(dst, uint64(e.From))
		dst = wire.AppendUvarint(dst, uint64(e.To))
		dst = wire.AppendUvarint(dst, uint64(e.Words))
		dst, err = codec.Append(dst, e.Msg)
		if err != nil {
			return nil, fmt.Errorf("node: encode checkpointed envelope: %w", err)
		}
	}
	return dst, nil
}

// decodePart restores machine state and RNG position from a part and
// returns the inbox the resumed superstep consumes.
func decodePart[M any](part []byte, wantStep int, snap core.Snapshotter, r *rng.RNG, codec wire.Codec[M]) ([]core.Envelope[M], error) {
	if len(part) < len(ckPartMagic) || !bytes.Equal(part[:len(ckPartMagic)], ckPartMagic) {
		return nil, fmt.Errorf("node: bad checkpoint part header")
	}
	c := wire.Cursor{Src: part, Off: len(ckPartMagic)}
	step := int(c.Uvarint()) - 1
	rngState := c.Uvarint()
	stateLen := int(c.Uvarint())
	if c.Err == nil && (stateLen < 0 || c.Off+stateLen > len(part)) {
		return nil, fmt.Errorf("node: checkpoint part claims %d state bytes in %d", stateLen, len(part)-c.Off)
	}
	if c.Err != nil {
		return nil, c.Err
	}
	state := part[c.Off : c.Off+stateLen]
	c.Off += stateLen
	nIn := int(c.Uvarint())
	inbox := make([]core.Envelope[M], 0, nIn)
	for i := 0; i < nIn && c.Err == nil; i++ {
		from := c.Uvarint()
		to := c.Uvarint()
		words := c.Uvarint()
		if c.Err != nil {
			break
		}
		m, n, err := codec.Decode(part[c.Off:])
		if err != nil {
			return nil, fmt.Errorf("node: decode checkpointed envelope: %w", err)
		}
		c.Off += n
		inbox = append(inbox, core.Envelope[M]{
			From: core.MachineID(from), To: core.MachineID(to),
			Words: int32(words), Msg: m,
		})
	}
	if err := c.Finish(); err != nil {
		return nil, fmt.Errorf("node: corrupt checkpoint part: %w", err)
	}
	if step != wantStep {
		return nil, fmt.Errorf("node: checkpoint part for superstep %d, want %d", step, wantStep)
	}
	if err := snap.RestoreState(state); err != nil {
		return nil, fmt.Errorf("node: restore state: %w", err)
	}
	r.SetState(rngState)
	return inbox, nil
}

// ctrlResume is the pre-loop control frame of a resuming run: the
// coordinator broadcasts the superstep of the checkpoint every node
// must restore (encoded as step+1, so 0 means "no checkpoint, run from
// the start"). Same value family as the job-lifecycle frames — far from
// the verdict kinds so a misread fails loudly.
const ctrlResume = byte(0xB2)

func encodeResume(step int) []byte {
	return wire.AppendUvarint([]byte{ctrlResume}, uint64(step+1))
}

func decodeResume(buf []byte) (int, error) {
	if len(buf) < 1 || buf[0] != ctrlResume {
		got := byte(0xFF)
		if len(buf) > 0 {
			got = buf[0]
		}
		return 0, fmt.Errorf("node: expected resume control frame 0x%02x, got 0x%02x", ctrlResume, got)
	}
	v, _, err := wire.Uvarint(buf[1:])
	if err != nil {
		return 0, fmt.Errorf("node: corrupt resume control frame: %w", err)
	}
	return int(v) - 1, nil
}

// encodeStatsBlob serialises the coordinator's accumulated Stats the
// same way the stop verdict ships final Stats.
func encodeStatsBlob(stats *core.Stats) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(stats); err != nil {
		return nil, fmt.Errorf("node: encode checkpoint stats: %w", err)
	}
	return buf.Bytes(), nil
}

// restoreStats replaces the coordinator's accumulated Stats with a
// checkpointed blob. MaxRecvWords resets to zero — it is derived by
// finalize() at the end of the run, mirroring core.
func (c *coordinator) restoreStats(blob []byte) error {
	st := &core.Stats{}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(st); err != nil {
		return fmt.Errorf("node: decode checkpoint stats: %w", err)
	}
	if len(st.RecvWords) != c.k || len(st.SentWords) != c.k {
		return fmt.Errorf("node: checkpoint stats for k=%d, want k=%d", len(st.RecvWords), c.k)
	}
	st.MaxRecvWords = 0
	c.stats = st
	return nil
}

// captureNode stores one node's part — and, on the coordinator, the
// accumulated-Stats blob — for the just-accounted superstep.
func captureNode[M any](cfg Config, store *CheckpointStore, step int, r *rng.RNG, snap core.Snapshotter, inbox []core.Envelope[M], codec wire.Codec[M], coord *coordinator) error {
	part, err := encodePart(nil, step, r.State(), snap, inbox, codec)
	if err != nil {
		return err
	}
	if err := store.PutPart(step, cfg.ID, part); err != nil {
		return err
	}
	if coord != nil {
		blob, err := encodeStatsBlob(coord.stats)
		if err != nil {
			return err
		}
		if err := store.PutStats(step, blob); err != nil {
			return err
		}
	}
	return nil
}

// resumeRound is the pre-loop control round of a resuming run: the
// coordinator picks the latest complete checkpoint from the store and
// broadcasts its superstep; every other node waits for the frame. It
// returns the superstep to restore, or -1 to run from the start.
func resumeRound[M any](cfg Config, ep *tcp.Endpoint[M], runCtx context.Context, store *CheckpointStore) (int, error) {
	hctx, cancel := handshakeCtx(runCtx, cfg)
	defer cancel()
	if cfg.ID == 0 {
		step := store.LatestComplete()
		if err := ep.Broadcast(hctx, encodeResume(step)); err != nil {
			return 0, fmt.Errorf("node: coordinator resume broadcast: %w", err)
		}
		return step, nil
	}
	frame, err := ep.ReceiveVerdict(hctx)
	if err != nil {
		return 0, fmt.Errorf("node: machine %d resume wait: %w", cfg.ID, err)
	}
	step, err := decodeResume(frame)
	if err != nil {
		return 0, fmt.Errorf("node: machine %d resume: %w", cfg.ID, err)
	}
	return step, nil
}
