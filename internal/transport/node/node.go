// Package node is the standalone k-machine runtime: it drives ONE
// machine of a cluster whose peers live in other processes, connected
// by the tcp transport's socket mesh. cmd/kmnode is its CLI.
//
// Where core.Cluster steps all k machines in one process and barriers
// with a sync.WaitGroup, this runtime distributes the loop itself: each
// node steps its machine, exchanges one superstep's batched envelopes
// with its peers over TCP, and then reports ⟨done, emitted, per-link
// word counts⟩ to the coordinator (machine 0). The coordinator runs
// exactly core's accounting arithmetic on the assembled link-load
// matrix — max(1, ceil(max-link-words/B)) rounds per superstep — and
// broadcasts a verdict: continue, stop (carrying the final Stats), or
// abort. A run over this runtime therefore reports the same Rounds and
// Words as the same machines under core.Cluster on the loopback
// transport; the conversion results of Klauck et al. (arXiv:1311.6209)
// are about precisely this substrate-independence, and the integration
// tests assert it.
package node

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"kmachine/internal/core"
	"kmachine/internal/obs"
	"kmachine/internal/rng"
	"kmachine/internal/transport"
	"kmachine/internal/transport/tcp"
	"kmachine/internal/transport/wire"
)

// Config describes one node's place in the cluster.
type Config struct {
	// ID is this node's machine ID; K the cluster size.
	ID, K int
	// ListenAddr is this node's listen address ("host:port"; port 0
	// picks a free port, useful only when peers learn it out of band).
	ListenAddr string
	// Peers holds the k listen addresses in machine-ID order.
	Peers []string
	// Bandwidth is the per-link capacity in words per round.
	Bandwidth int
	// Seed derives every machine's random stream, exactly like
	// core.Config.Seed: node i draws from rng.NewStream(Seed, i).
	Seed uint64
	// MaxSupersteps aborts runaway algorithms; 0 means core's default.
	MaxSupersteps int
	// DropPerSuperstep disables Stats.PerSuperstep retention on the
	// coordinator, exactly like core.Config.DropPerSuperstep; only the
	// coordinator's value matters (the field travels inside the final
	// stop verdict, so all nodes still return identical Stats).
	DropPerSuperstep bool
	// DialTimeout bounds mesh construction; 0 means tcp's default.
	DialTimeout time.Duration
	// Context cancels the run: the superstep loop observes it between
	// phases and it bounds every socket operation, so canceling it
	// tears the node down promptly with a wrapped context error. nil
	// means Background.
	Context context.Context
	// SuperstepTimeout bounds each superstep's cross-machine phases
	// (exchange, report, verdict): a peer process that crashes or
	// wedges surfaces as a machine-attributed error within the timeout
	// on every surviving node instead of hanging the cluster. 0 means
	// no deadline. Happy-path Stats and outputs are unaffected. Under
	// Streaming the deadline covers the whole superstep — begin,
	// compute, finish — since the wire is active throughout.
	SuperstepTimeout time.Duration
	// Streaming opts this node into streaming supersteps: an emitter is
	// bound into the machine's StepContext so core.EmitBatch hands
	// finished per-peer batches to the endpoint mid-compute, and the
	// superstep's exchange becomes a BeginSuperstep/FinishSuperstep
	// pair. Purely a scheduling knob — reports, Stats, outputs, and
	// golden hashes are bit-identical to the lockstep schedule. All
	// nodes of a cluster must agree on it. Default off.
	Streaming bool
	// Recorder, when non-nil, receives wall-clock phase spans from this
	// node's superstep loop — compute (the Step call), exchange (this
	// node's data-plane barrier), and barrier (the report/verdict
	// control round), all with Machine = ID — and is installed on the
	// endpoint so its pipeline workers record per-peer frame spans too.
	// Same contract as core.Config.Recorder: concurrency-safe,
	// allocation-free, nil keeps the loop on its span-free path. In
	// RunLocal all k machines share the one recorder, yielding a
	// cluster-wide timeline.
	Recorder obs.Recorder
	// Checkpoint is the checkpoint/recovery policy (checkpoint.go). Off
	// by default; when Every > 0 the machine must implement
	// core.Snapshotter and Streaming is cleared (lockstep only — purely
	// a scheduling knob, so Stats and hashes are unchanged).
	Checkpoint CheckpointConfig
}

func (cfg *Config) validate() error {
	if cfg.K < 2 || cfg.ID < 0 || cfg.ID >= cfg.K {
		return fmt.Errorf("node: invalid id %d for k=%d", cfg.ID, cfg.K)
	}
	if cfg.Bandwidth < 1 {
		return fmt.Errorf("node: need Bandwidth >= 1 word/round, got %d", cfg.Bandwidth)
	}
	if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = 1 << 20
	}
	if cfg.Checkpoint.Every > 0 {
		// Checkpoints capture at the lockstep superstep boundary;
		// streaming is purely a scheduling knob (identical Stats and
		// hashes), so clearing it is safe rather than an error.
		cfg.Streaming = false
	}
	return nil
}

// Run executes one machine of the cluster: listen, dial the mesh, then
// drive supersteps until the coordinator calls the computation
// complete. The returned Stats are the full cluster statistics (the
// coordinator computes them and ships them in the stop verdict), so
// every node of a successful run returns identical Stats.
func Run[M any](cfg Config, m core.Machine[M], codec wire.Codec[M]) (*core.Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ep, err := tcp.Listen[M](cfg.ID, cfg.K, cfg.ListenAddr, codec)
	if err != nil {
		return nil, err
	}
	defer ep.Close()
	if err := ep.Connect(cfg.Peers, cfg.DialTimeout); err != nil {
		return nil, err
	}
	if cfg.Recorder != nil {
		ep.SetRecorder(cfg.Recorder)
	}
	return runLoop(cfg, ep, m, codec)
}

// RunLocal spawns the full k-machine cluster over loopback TCP inside
// one process — every machine gets its own listener, dials every peer,
// and runs the standalone superstep loop (kmnode's -local mode). The
// factory is called once per machine, like core.NewCluster's. cfg is a
// template: ID, ListenAddr, and Peers are ignored (every machine gets
// its own loopback endpoint); K, Bandwidth, Seed, MaxSupersteps,
// DropPerSuperstep, Context, and SuperstepTimeout apply to all.
func RunLocal[M any](cfg Config, codec wire.Codec[M], factory func(core.MachineID) core.Machine[M]) (*core.Stats, error) {
	k := cfg.K
	if cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Store == nil {
		cfg.Checkpoint.Store = NewCheckpointStore(k)
	}
	if cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Dir != "" {
		if err := cfg.Checkpoint.Store.PersistTo(cfg.Checkpoint.Dir); err != nil {
			return nil, err
		}
	}
	eps, err := tcp.NewLoopbackMesh[M](k, codec)
	if err != nil {
		return nil, err
	}
	if cfg.Recorder != nil {
		for _, ep := range eps {
			ep.SetRecorder(cfg.Recorder)
		}
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	// Factory calls stay sequential, matching core.NewCluster's contract
	// (factories may append to shared slices without locking).
	machines := make([]core.Machine[M], k)
	for i := 0; i < k; i++ {
		machines[i] = factory(core.MachineID(i))
	}
	stats := make([]*core.Stats, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mcfg := cfg
			mcfg.ID = i
			mcfg.ListenAddr, mcfg.Peers = "", nil
			if err := mcfg.validate(); err == nil {
				stats[i], errs[i] = runLoop(mcfg, eps[i], machines[i], codec)
			} else {
				errs[i] = err
			}
			if errs[i] != nil {
				// A node that bails early must tear its endpoint down
				// right away: peers may be parked in reads on its
				// connections with no (or a long) deadline, and the
				// close is what unwedges them immediately (standalone
				// node.Run gets this from its deferred Close; here all
				// k share the process).
				eps[i].Close()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Prefer the coordinator's error: it aggregates the cluster
			// view, and on an abort every node returns the same message.
			if errs[0] != nil {
				return stats[0], errs[0]
			}
			return stats[0], err
		}
	}
	return stats[0], nil
}

// runLoop is the distributed mirror of core.Cluster.RunOn: it observes
// cfg.Context between phases and bounds every superstep's socket
// operations with cfg.SuperstepTimeout, so a crashed or wedged peer
// process surfaces as a machine-attributed error within the timeout on
// this node rather than wedging it forever.
func runLoop[M any](cfg Config, ep *tcp.Endpoint[M], m core.Machine[M], codec wire.Codec[M]) (*core.Stats, error) {
	r := rng.NewStream(cfg.Seed, uint64(cfg.ID))
	runCtx := cfg.Context
	if runCtx == nil {
		runCtx = context.Background()
	}
	var coord *coordinator
	if cfg.ID == 0 {
		coord = newCoordinator(cfg.K, cfg.Bandwidth, cfg.DropPerSuperstep)
	}
	var inbox []core.Envelope[M]
	var snap core.Snapshotter
	ckEvery, ckStore := cfg.Checkpoint.Every, cfg.Checkpoint.Store
	if ckEvery > 0 {
		var ok bool
		if snap, ok = m.(core.Snapshotter); !ok {
			return nil, fmt.Errorf("node: machine %d (%T) does not implement core.Snapshotter; checkpointing needs SnapshotState/RestoreState", cfg.ID, m)
		}
		if codec == nil {
			return nil, fmt.Errorf("node: machine %d checkpointing needs a message codec", cfg.ID)
		}
		if ckStore == nil {
			return nil, fmt.Errorf("node: machine %d checkpointing needs a CheckpointStore", cfg.ID)
		}
	}
	start := 0
	if ckEvery > 0 && cfg.Checkpoint.Resume {
		ckStep, err := resumeRound(cfg, ep, runCtx, ckStore)
		if err != nil {
			ep.Close()
			return nil, err
		}
		if ckStep >= 0 {
			part, ok := ckStore.Part(ckStep, cfg.ID)
			if !ok {
				ep.Close()
				return nil, fmt.Errorf("node: machine %d has no checkpoint part for superstep %d", cfg.ID, ckStep)
			}
			if inbox, err = decodePart(part, ckStep, snap, r, codec); err != nil {
				ep.Close()
				return nil, fmt.Errorf("node: machine %d resume from superstep %d: %w", cfg.ID, ckStep, err)
			}
			if coord != nil {
				blob, ok := ckStore.StatsBlob(ckStep)
				if !ok {
					ep.Close()
					return nil, fmt.Errorf("node: coordinator has no checkpoint stats for superstep %d", ckStep)
				}
				if err := coord.restoreStats(blob); err != nil {
					ep.Close()
					return nil, err
				}
			}
			start = ckStep + 1
		}
	}
	linkScratch := make([]int64, cfg.K) // per-superstep link row, reused
	var repBuf []byte                   // report encode scratch, reused
	ctx := &core.StepContext{Self: core.MachineID(cfg.ID), K: cfg.K, RNG: r}
	var em *core.Emitter[M]
	if cfg.Streaming {
		em = core.NewEmitter[M](epSender[M]{ep: ep}, core.MachineID(cfg.ID), cfg.K)
		em.Bind(ctx)
	}
	for step := start; ; step++ {
		if step >= cfg.MaxSupersteps {
			// Every node shares MaxSupersteps and steps in lockstep, so
			// all abort on the same superstep; only the coordinator has
			// the (partial) statistics.
			return coordStats(coord), core.ErrMaxSupersteps
		}
		if err := runCtx.Err(); err != nil {
			// Tear our endpoint down before leaving: peers parked on
			// our connections unblock immediately instead of waiting
			// out their own deadlines.
			ep.Close()
			return coordStats(coord), fmt.Errorf("node: machine %d canceled before superstep %d: %w", cfg.ID, step, err)
		}

		// Under streaming the per-superstep deadline must already be
		// running when the first eager batch hits the wire, so the
		// superstep context is created here, around compute, instead of
		// inside superstepRound; BeginSuperstep arms the endpoint (and
		// releases its readers) before the Step call.
		sctx := context.Context(nil)
		var cancel context.CancelFunc
		if em != nil {
			sctx = runCtx
			if cfg.SuperstepTimeout > 0 {
				sctx, cancel = context.WithTimeout(runCtx, cfg.SuperstepTimeout)
			}
			em.Reset()
			if err := ep.BeginSuperstep(sctx, step); err != nil {
				if cancel != nil {
					cancel()
				}
				ep.Close()
				return coordStats(coord), err
			}
		}

		ctx.Superstep = step
		var t0 int64
		if cfg.Recorder != nil {
			t0 = obs.Now()
		}
		out, done, stepErr := stepSafely(m, ctx, inbox)
		if cfg.Recorder != nil {
			cfg.Recorder.Record(obs.Span{Start: t0, Dur: obs.Now() - t0,
				Machine: int32(cfg.ID), Peer: -1, Superstep: int32(step), Phase: obs.PhaseCompute})
		}
		if em != nil {
			if err := em.Err(); err != nil {
				// A failed eager send is a transport failure, not an
				// algorithm error: the endpoint is (or is about to be)
				// dead, so the report/verdict protocol cannot carry the
				// news. Tear down and return the attributed error, like
				// any other exchange failure.
				if cancel != nil {
					cancel()
				}
				ep.Close()
				return coordStats(coord), fmt.Errorf("node: machine %d streaming emit failed in superstep %d: %w", cfg.ID, step, err)
			}
		}
		for i := range linkScratch {
			linkScratch[i] = 0
		}
		rep := report{done: done, emitted: len(out) > 0, linkWords: linkScratch}
		if stepErr == nil {
			stepErr = validateAndAccount(cfg, out, &rep, em, step)
		}
		if em != nil {
			// Fold the eager emissions into the same report the rest
			// envelopes filled: order-independent sums, so the
			// coordinator's accounting is bit-identical to lockstep.
			msgs, any := em.AccountInto(rep.linkWords)
			rep.messages += msgs
			rep.emitted = rep.emitted || any
		}
		if stepErr != nil {
			rep.err = stepErr.Error()
			out = nil // still participate in the exchange so peers don't hang
		}

		repBuf = rep.appendEncode(repBuf[:0], step)
		v, next, err := superstepRound(cfg, ep, coord, runCtx, sctx, step, repBuf, out, &rep)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			// When the run context died mid-superstep the transport
			// error is just the shrapnel of the teardown (closed
			// connections, aborted reads); report the cancellation as
			// the cause so callers can errors.Is it.
			if cErr := runCtx.Err(); cErr != nil {
				err = fmt.Errorf("node: machine %d canceled in superstep %d: %w (teardown: %v)", cfg.ID, step, cErr, err)
			}
			return coordStats(coord), err
		}
		switch v.kind {
		case verdictContinue:
			inbox = next
			if ckEvery > 0 && (step+1)%ckEvery == 0 {
				// Capture after the continue verdict: the coordinator's
				// Stats already include this superstep, the RNG sits at
				// its post-compute position, and inbox holds exactly the
				// messages superstep step+1 consumes — so a resumed run
				// re-enters at step+1 with nothing to re-account.
				if err := captureNode(cfg, ckStore, step, r, snap, inbox, codec, coord); err != nil {
					ep.Close()
					return coordStats(coord), fmt.Errorf("node: machine %d checkpoint at superstep %d: %w", cfg.ID, step, err)
				}
			}
		case verdictStop:
			return v.stats, nil
		case verdictAbort:
			return coordStats(coord), errors.New(v.errMsg)
		}
	}
}

// superstepRound runs the cross-machine phases of one superstep —
// exchange, report, verdict — under one per-superstep deadline. The
// failure protocol: a node whose Step failed still exchanges (an empty
// batch) and carries the error in its report, so the coordinator learns
// of it and broadcasts an abort verdict that every surviving machine
// returns as the same error; a node that dies outright is detected by
// its peers' bounded reads (exchange) or the coordinator's bounded
// CollectReports, and the coordinator then broadcasts the abort best
// effort over whatever control connections remain before failing
// itself. Transport-level failures arrive as *transport.MachineError
// with machine/superstep attribution from the tcp layer.
//
// repPayload is the node's encoded report; it is recycled scratch owned
// by runLoop, which is safe because the endpoint either writes it out
// immediately or (on the coordinator) queues it only until the
// CollectReports of this same superstep pops it.
// Under streaming (sctx non-nil) the superstep context was created by
// runLoop — it already covers the compute that streamed batches — and
// the data-plane barrier is FinishSuperstep instead of Exchange.
func superstepRound[M any](cfg Config, ep *tcp.Endpoint[M], coord *coordinator, runCtx, sctx context.Context, step int, repPayload []byte, out []core.Envelope[M], rep *report) (verdict, []core.Envelope[M], error) {
	streaming := sctx != nil
	if sctx == nil {
		sctx = runCtx
		if cfg.SuperstepTimeout > 0 {
			var cancel context.CancelFunc
			sctx, cancel = context.WithTimeout(runCtx, cfg.SuperstepTimeout)
			defer cancel()
		}
	}

	// Phase spans mirror core's engine, but per node: the exchange span
	// is this node's data-plane barrier (Machine = ID, not the cluster's
	// -1 — each node performs its own), and the report/verdict control
	// round below plays the role of core's barrier wait, so it records
	// as PhaseBarrier.
	rec := cfg.Recorder
	var t0 int64
	if rec != nil {
		t0 = obs.Now()
	}
	var next []core.Envelope[M]
	var err error
	if streaming {
		next, err = ep.FinishSuperstep(sctx, step, out)
	} else {
		next, err = ep.Exchange(sctx, step, out)
	}
	if rec != nil {
		rec.Record(obs.Span{Start: t0, Dur: obs.Now() - t0,
			Machine: int32(cfg.ID), Peer: -1, Superstep: int32(step), Phase: obs.PhaseExchange})
	}
	if err != nil {
		return verdict{}, nil, err
	}
	var b0 int64
	if rec != nil {
		b0 = obs.Now()
		defer func() {
			rec.Record(obs.Span{Start: b0, Dur: obs.Now() - b0,
				Machine: int32(cfg.ID), Peer: -1, Superstep: int32(step), Phase: obs.PhaseBarrier})
		}()
	}
	if err := ep.SendToCoordinator(sctx, repPayload); err != nil {
		return verdict{}, nil, fmt.Errorf("node: machine %d report (superstep %d): %w", cfg.ID, step, err)
	}

	var verdictPayload []byte
	if coord != nil {
		reports, err := ep.CollectReports(sctx, step)
		if err != nil {
			// A report that never arrived means a peer died between the
			// exchange and its report. Propagate the abort to the
			// survivors — best effort, over whatever control
			// connections still work — so they return an attributed
			// error instead of waiting out their own deadlines.
			abortBroadcast(ep, sctx, err)
			return verdict{}, nil, err
		}
		verdictPayload, err = coord.process(step, reports)
		if err != nil {
			abortBroadcast(ep, sctx, err)
			return verdict{}, nil, err
		}
		if err := ep.Broadcast(sctx, verdictPayload); err != nil {
			return verdict{}, nil, err
		}
	} else {
		var err error
		verdictPayload, err = ep.ReceiveVerdict(sctx)
		if err != nil {
			// No verdict within the deadline: the coordinator (or the
			// path to it) is gone. Attribute the wait to machine 0 —
			// unless the tcp layer already attributed a more specific
			// culprit.
			var me *transport.MachineError
			if !errors.As(err, &me) {
				err = &transport.MachineError{Machine: 0, Superstep: step,
					Err: fmt.Errorf("node: machine %d verdict wait: %w", cfg.ID, err)}
			}
			return verdict{}, nil, err
		}
	}

	v, err := decodeVerdict(verdictPayload)
	if err != nil {
		return verdict{}, nil, err
	}
	return v, next, nil
}

// abortBroadcast ships an abort verdict to every peer, best effort.
// The coordinator reaches here precisely when the superstep context has
// failed (an expired deadline is the common case), so the writes run
// under a fresh short deadline — reusing the dead context would make
// every abort write fail instantly and leave the survivors to time out
// blaming the coordinator instead of the real culprit.
func abortBroadcast[M any](ep *tcp.Endpoint[M], sctx context.Context, cause error) {
	actx, cancel := context.WithTimeout(context.WithoutCancel(sctx), 2*time.Second)
	defer cancel()
	_ = ep.Broadcast(actx, encodeAbort(cause.Error()))
}

// coordStats returns the coordinator's (possibly partial) statistics
// for error returns, finalized like core's deferred stats.finalize() so
// MaxRecvWords is consistent on every path.
func coordStats(c *coordinator) *core.Stats {
	if c == nil {
		return nil
	}
	c.finalize()
	return c.stats
}

// stepSafely runs one Step with core's panic recovery semantics.
func stepSafely[M any](m core.Machine[M], ctx *core.StepContext, inbox []core.Envelope[M]) (out []core.Envelope[M], done bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("node: machine %d panicked in superstep %d: %v", ctx.Self, ctx.Superstep, rec)
		}
	}()
	out, done = m.Step(ctx, inbox)
	return out, done, nil
}

// validateAndAccount mirrors core's per-envelope validation and
// From-stamping, and fills the report's link-word vector (self links
// are free, exactly like core). Under streaming (em non-nil) it also
// enforces the no-mixing rule: a peer that already received a streamed
// batch this superstep must not reappear in the rest envelopes.
func validateAndAccount[M any](cfg Config, out []core.Envelope[M], rep *report, em *core.Emitter[M], step int) error {
	for j := range out {
		e := &out[j]
		if e.To < 0 || int(e.To) >= cfg.K {
			return fmt.Errorf("node: machine %d sent to invalid machine %d", cfg.ID, e.To)
		}
		if e.Words < 0 {
			return fmt.Errorf("node: machine %d sent negative-size envelope", cfg.ID)
		}
		e.From = core.MachineID(cfg.ID)
		if int(e.To) != cfg.ID {
			if em != nil && em.EmittedTo(e.To) {
				return fmt.Errorf("node: machine %d returned envelopes for machine %d after streaming a batch to it in superstep %d", cfg.ID, e.To, step)
			}
			rep.linkWords[e.To] += int64(e.Words)
			rep.messages++
		}
	}
	return nil
}

// epSender adapts a node's endpoint to the transport.BatchSender the
// core emitter wants: every batch a node emits is its own, so `from` is
// implied by the endpoint.
type epSender[M any] struct{ ep *tcp.Endpoint[M] }

func (s epSender[M]) SendBatch(from, to transport.MachineID, batch []transport.Envelope[M]) error {
	return s.ep.StreamBatch(to, batch)
}

// report is one node's per-superstep account to the coordinator.
type report struct {
	done      bool
	emitted   bool
	messages  int64
	linkWords []int64 // words this node sent to each machine (self = 0)
	err       string
}

const (
	repFlagDone = 1 << iota
	repFlagEmitted
	repFlagError
)

// appendEncode serialises the report into dst, which callers recycle
// across supersteps (runLoop ships one report per superstep on the hot
// path of every node).
func (r *report) appendEncode(dst []byte, step int) []byte {
	var flags byte
	if r.done {
		flags |= repFlagDone
	}
	if r.emitted {
		flags |= repFlagEmitted
	}
	if r.err != "" {
		flags |= repFlagError
	}
	buf := append(dst, flags)
	buf = wire.AppendUvarint(buf, uint64(step))
	buf = wire.AppendUvarint(buf, uint64(r.messages))
	buf = wire.AppendUvarint(buf, uint64(len(r.linkWords)))
	for _, w := range r.linkWords {
		buf = wire.AppendUvarint(buf, uint64(w))
	}
	if r.err != "" {
		buf = append(buf, r.err...)
	}
	return buf
}

// decodeReportInto decodes a report into rep, reusing rep.linkWords
// when it has the capacity — the coordinator decodes k reports per
// superstep into the same recycled structs.
func decodeReportInto(rep *report, buf []byte, wantStep int) error {
	if len(buf) < 1 {
		return fmt.Errorf("node: empty report")
	}
	flags := buf[0]
	pos := 1
	var hdr [3]uint64
	for i := range hdr {
		v, n, err := wire.Uvarint(buf[pos:])
		if err != nil {
			return fmt.Errorf("node: corrupt report: %w", err)
		}
		hdr[i] = v
		pos += n
	}
	if int(hdr[0]) != wantStep {
		return fmt.Errorf("node: report for superstep %d, want %d", hdr[0], wantStep)
	}
	rep.done = flags&repFlagDone != 0
	rep.emitted = flags&repFlagEmitted != 0
	rep.messages = int64(hdr[1])
	n := int(hdr[2])
	if n > len(buf)-pos {
		// Each link word costs at least one byte: reject a corrupt count
		// before sizing the slice by it.
		return fmt.Errorf("node: report claims %d links in %d bytes", n, len(buf)-pos)
	}
	if cap(rep.linkWords) < n {
		rep.linkWords = make([]int64, n)
	}
	rep.linkWords = rep.linkWords[:n]
	for i := range rep.linkWords {
		v, n, err := wire.Uvarint(buf[pos:])
		if err != nil {
			return fmt.Errorf("node: corrupt report: %w", err)
		}
		rep.linkWords[i] = int64(v)
		pos += n
	}
	rep.err = ""
	if flags&repFlagError != 0 {
		rep.err = string(buf[pos:])
	}
	return nil
}

// coordinator aggregates reports into core-identical Stats. The
// linkWords/recvS/sentS scratch is reused across supersteps, mirroring
// the allocation-free accounting of core's engine.
type coordinator struct {
	k                int
	bandwidth        int
	dropPerSuperstep bool
	stats            *core.Stats
	linkWords        []int64
	recvS, sentS     []int64
	reports          []*report
}

func newCoordinator(k, bandwidth int, dropPerSuperstep bool) *coordinator {
	c := &coordinator{
		k:                k,
		bandwidth:        bandwidth,
		dropPerSuperstep: dropPerSuperstep,
		stats: &core.Stats{
			RecvWords: make([]int64, k),
			SentWords: make([]int64, k),
		},
		linkWords: make([]int64, k*k),
		recvS:     make([]int64, k),
		sentS:     make([]int64, k),
		reports:   make([]*report, k),
	}
	for i := range c.reports {
		c.reports[i] = &report{linkWords: make([]int64, 0, k)}
	}
	return c
}

// process runs core's accounting arithmetic on one superstep's reports
// and returns the verdict to broadcast.
func (c *coordinator) process(step int, payloads [][]byte) ([]byte, error) {
	reports := c.reports
	for i, p := range payloads {
		rep := reports[i]
		if err := decodeReportInto(rep, p, step); err != nil {
			return nil, fmt.Errorf("node: coordinator report from %d: %w", i, err)
		}
		if len(rep.linkWords) != c.k {
			return nil, fmt.Errorf("node: report from %d has %d links, want %d", i, len(rep.linkWords), c.k)
		}
	}
	for i, rep := range reports {
		if rep.err != "" {
			return encodeAbort(fmt.Sprintf("machine %d: %s", i, rep.err)), nil
		}
	}

	// Assemble the k×k link-load matrix from the per-node rows and hand
	// it to the exact accounting function core.RunOn uses — the shared
	// arithmetic is what makes the two substrates' Stats bit-identical
	// by construction. Every row is fully overwritten, so the reused
	// scratch matrix needs no zeroing between supersteps.
	var messages int64
	allDone, pending := true, false
	for i, rep := range reports {
		if !rep.done {
			allDone = false
		}
		if rep.emitted {
			pending = true
		}
		copy(c.linkWords[i*c.k:(i+1)*c.k], rep.linkWords)
		messages += rep.messages
	}
	if allDone && !pending {
		// Quiescent: like core, the final silent superstep is free.
		c.finalize()
		return encodeStop(c.stats)
	}
	ss := core.AccountSuperstep(c.k, c.bandwidth, c.linkWords, messages, c.recvS, c.sentS)
	for i := 0; i < c.k; i++ {
		c.stats.RecvWords[i] += c.recvS[i]
		c.stats.SentWords[i] += c.sentS[i]
	}
	c.stats.Rounds += ss.Rounds
	c.stats.Supersteps++
	c.stats.Messages += ss.Messages
	c.stats.Words += ss.Words
	if !c.dropPerSuperstep {
		c.stats.PerSuperstep = append(c.stats.PerSuperstep, ss)
	}
	return []byte{verdictContinue}, nil
}

func (c *coordinator) finalize() {
	for _, w := range c.stats.RecvWords {
		if w > c.stats.MaxRecvWords {
			c.stats.MaxRecvWords = w
		}
	}
}

// Verdict kinds (first payload byte).
const (
	verdictContinue = byte(iota)
	verdictStop
	verdictAbort
)

type verdict struct {
	kind   byte
	stats  *core.Stats
	errMsg string
}

func encodeStop(stats *core.Stats) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(verdictStop)
	if err := gob.NewEncoder(&buf).Encode(stats); err != nil {
		return nil, fmt.Errorf("node: encode final stats: %w", err)
	}
	return buf.Bytes(), nil
}

func encodeAbort(msg string) []byte {
	return append([]byte{verdictAbort}, msg...)
}

func decodeVerdict(buf []byte) (verdict, error) {
	if len(buf) < 1 {
		return verdict{}, fmt.Errorf("node: empty verdict")
	}
	v := verdict{kind: buf[0]}
	switch v.kind {
	case verdictContinue:
	case verdictStop:
		v.stats = &core.Stats{}
		if err := gob.NewDecoder(bytes.NewReader(buf[1:])).Decode(v.stats); err != nil {
			return verdict{}, fmt.Errorf("node: decode final stats: %w", err)
		}
	case verdictAbort:
		v.errMsg = string(buf[1:])
	default:
		return verdict{}, fmt.Errorf("node: unknown verdict kind %d", v.kind)
	}
	return v, nil
}
