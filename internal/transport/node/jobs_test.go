package node_test

import (
	"errors"
	"runtime"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/testutil"
	"kmachine/internal/transport"
	"kmachine/internal/transport/node"
)

// TestRunJobLocalSequentialJobs: the resident-mesh contract at the node
// layer — several sequential jobs on one standing mesh each produce
// Stats identical to a fresh single-run RunLocal, the mesh stays
// healthy across clean jobs, and nothing leaks.
func TestRunJobLocalSequentialJobs(t *testing.T) {
	const k = 5
	cfg := node.Config{K: k, Bandwidth: 2, Seed: 7}
	want, err := node.RunLocal(cfg, echoCodec{}, ringFactory(t, k))
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	lm, err := node.NewLocalMesh(k)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	for job := uint64(1); job <= 3; job++ {
		got, err := node.RunJobLocal(lm, cfg, job, echoCodec{}, ringFactory(t, k))
		if err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if got.Rounds != want.Rounds || got.Words != want.Words ||
			got.Messages != want.Messages || got.Supersteps != want.Supersteps {
			t.Fatalf("job %d stats diverge from single-run:\n job:  %+v\n want: %+v", job, got, want)
		}
		if !lm.Healthy() {
			t.Fatalf("mesh unhealthy after clean job %d", job)
		}
	}
	lm.Close()
	testutil.NoLeakedGoroutines(t, base)
}

// TestRunJobLocalFailurePoisonsMesh: an aborting job (machine panic)
// must fail that job, leave the mesh unhealthy, and a rebuilt mesh must
// carry the next job cleanly.
func TestRunJobLocalFailurePoisonsMesh(t *testing.T) {
	const k = 3
	cfg := node.Config{K: k, Bandwidth: 1, Seed: 1}
	lm, err := node.NewLocalMesh(k)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	_, err = node.RunJobLocal(lm, cfg, 1, echoCodec{}, func(id core.MachineID) core.Machine[echoMsg] {
		return core.MachineFunc[echoMsg](func(ctx *core.StepContext, _ []core.Envelope[echoMsg]) ([]core.Envelope[echoMsg], bool) {
			if ctx.Self == 1 && ctx.Superstep == 1 {
				panic("boom")
			}
			return nil, false
		})
	})
	if err == nil {
		t.Fatal("panicking job succeeded")
	}
	if lm.Healthy() {
		t.Fatal("mesh still healthy after a failed job")
	}

	lm2, err := node.NewLocalMesh(k)
	if err != nil {
		t.Fatal(err)
	}
	defer lm2.Close()
	if _, err := node.RunJobLocal(lm2, cfg, 2, echoCodec{}, ringFactory(t, k)); err != nil {
		t.Fatalf("job on rebuilt mesh: %v", err)
	}
}

// TestRunJobLocalSeverAttributesJob: a machine killed mid-job surfaces
// as a MachineError carrying the job ID on the standing-mesh path.
func TestRunJobLocalSeverAttributesJob(t *testing.T) {
	const k = 3
	cfg := node.Config{K: k, Bandwidth: 1, Seed: 1}
	lm, err := node.NewLocalMesh(k)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	const jobID = 42
	_, err = node.RunJobLocal(lm, cfg, jobID, echoCodec{}, func(id core.MachineID) core.Machine[echoMsg] {
		return core.MachineFunc[echoMsg](func(ctx *core.StepContext, _ []core.Envelope[echoMsg]) ([]core.Envelope[echoMsg], bool) {
			if ctx.Self == 2 && ctx.Superstep == 2 {
				// Deterministic mid-job death: this machine's fabric goes
				// away under it; the survivors' reads attribute the loss.
				lm.Sever(2)
			}
			return nil, false
		})
	})
	if err == nil {
		t.Fatal("severed job succeeded")
	}
	var me *transport.MachineError
	if errors.As(err, &me) {
		if me.Job != jobID {
			t.Fatalf("MachineError carries job %d, want %d: %v", me.Job, jobID, err)
		}
	}
	// The abort may also surface as the coordinator's verdict-style
	// error; either way the mesh must be poisoned.
	if lm.Healthy() {
		t.Fatal("mesh still healthy after severed machine")
	}
}

// TestRunJobLocalRejectsBadJobs: job ID 0 and a k-mismatched config are
// refused before any endpoint attaches.
func TestRunJobLocalRejectsBadJobs(t *testing.T) {
	lm, err := node.NewLocalMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	if _, err := node.RunJobLocal(lm, node.Config{K: 2, Bandwidth: 1}, 0, echoCodec{}, ringFactory(t, 2)); err == nil {
		t.Fatal("job 0 accepted")
	}
	if _, err := node.RunJobLocal(lm, node.Config{K: 3, Bandwidth: 1}, 1, echoCodec{}, ringFactory(t, 3)); err == nil {
		t.Fatal("k mismatch accepted")
	}
	if !lm.Healthy() {
		t.Fatal("rejected submissions poisoned the mesh")
	}
}
