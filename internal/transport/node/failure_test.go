package node

// White-box failure tests for the standalone runtime: they drive
// runLoop directly over a real loopback-TCP mesh so a machine's
// "process" can be killed (its endpoint torn down) or wedged (its Step
// stalled past the deadline) at a chosen superstep, and assert the
// acceptance bar of the failure-hardening work: every surviving machine
// returns a non-nil machine-attributed error within SuperstepTimeout,
// and the teardown is goroutine-clean.

import (
	"context"
	"errors"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"kmachine/internal/core"
	"kmachine/internal/testutil"
	"kmachine/internal/transport"
	"kmachine/internal/transport/tcp"
	"kmachine/internal/transport/wire"
)

type failMsg struct{ X int64 }

type failCodec struct{}

func (failCodec) Append(dst []byte, m failMsg) ([]byte, error) {
	return wire.AppendVarint(dst, m.X), nil
}

func (failCodec) Decode(src []byte) (failMsg, int, error) {
	v, n, err := wire.Varint(src)
	return failMsg{X: v}, n, err
}

// runMeshWithFault spawns k runLoops over a fresh loopback mesh; the
// victim machine executes onVictimStep(eps) inside its Step at
// superstep failStep (before emitting). Machines chatter endlessly, so
// only the fault can end the run. Returns the k runLoop errors once
// every loop has exited; a cluster that fails to drain within 30s fails
// the test with a full goroutine dump — that is the hang this PR fixes.
func runMeshWithFault(t *testing.T, k, victim, failStep int, timeout time.Duration, onVictimStep func(eps []*tcp.Endpoint[failMsg])) []error {
	t.Helper()
	eps, err := tcp.NewLoopbackMesh[failMsg](k, failCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	factory := func(id core.MachineID) core.Machine[failMsg] {
		return core.MachineFunc[failMsg](func(ctx *core.StepContext, inbox []core.Envelope[failMsg]) ([]core.Envelope[failMsg], bool) {
			if int(ctx.Self) == victim && ctx.Superstep == failStep {
				onVictimStep(eps)
			}
			return []core.Envelope[failMsg]{{To: core.MachineID((int(ctx.Self) + 1) % k), Words: 1}}, false
		})
	}

	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{ID: i, K: k, Bandwidth: 1, Seed: 7, SuperstepTimeout: timeout}
			if verr := cfg.validate(); verr != nil {
				errs[i] = verr
				return
			}
			_, errs[i] = runLoop(cfg, eps[i], factory(core.MachineID(i)), nil)
			if errs[i] != nil {
				eps[i].Close()
			}
		}(i)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	testutil.WaitOrDump(t, done, 30*time.Second, "cluster")
	return errs
}

// assertSurvivorsAttribute checks that every machine except the victim
// returned an error attributed to the victim.
func assertSurvivorsAttribute(t *testing.T, errs []error, victim int) {
	t.Helper()
	for i, err := range errs {
		if i == victim {
			// The victim's own loop fails on its severed sockets; the
			// shape of its error is unspecified but it must not succeed.
			if err == nil {
				t.Errorf("victim machine %d returned no error", i)
			}
			continue
		}
		if err == nil {
			t.Fatalf("surviving machine %d returned nil error after machine %d failed", i, victim)
		}
		var me *transport.MachineError
		if !errors.As(err, &me) {
			t.Errorf("machine %d error %v carries no machine attribution", i, err)
			continue
		}
		if int(me.Machine) != victim {
			t.Errorf("machine %d attributes the failure to machine %d, want %d (err: %v)", i, me.Machine, victim, err)
		}
	}
}

// TestCrashedNodeSurfacesOnAllSurvivors kills machine 2's endpoint —
// listener and every connection, exactly what its process dying looks
// like to the peers — at superstep 1 and requires every surviving
// machine to return an error attributed to machine 2, with no
// goroutines left behind.
func TestCrashedNodeSurfacesOnAllSurvivors(t *testing.T) {
	base := runtime.NumGoroutine()
	const k, victim, step = 4, 2, 1
	errs := runMeshWithFault(t, k, victim, step, 2*time.Second, func(eps []*tcp.Endpoint[failMsg]) {
		eps[victim].Close()
	})
	assertSurvivorsAttribute(t, errs, victim)
	testutil.NoLeakedGoroutines(t, base)
}

// TestWedgedNodeTimesOutOnSurvivors stalls machine 1 inside its Step
// for far longer than SuperstepTimeout: the survivors' reads must time
// out within the deadline — attributed to the wedged machine, wrapping
// os.ErrDeadlineExceeded — rather than wait the stall out.
func TestWedgedNodeTimesOutOnSurvivors(t *testing.T) {
	base := runtime.NumGoroutine()
	const (
		k, victim, step = 3, 1, 1
		timeout         = 300 * time.Millisecond
		stall           = 1500 * time.Millisecond
	)
	start := time.Now()
	errs := runMeshWithFault(t, k, victim, step, timeout, func([]*tcp.Endpoint[failMsg]) {
		time.Sleep(stall)
	})
	elapsed := time.Since(start)

	// The wedged machine itself eventually finishes its sleep and fails
	// on the by-then-severed mesh, so the victim slot may hold any
	// error; the survivors must all attribute the timeout to it.
	assertSurvivorsAttribute(t, errs, victim)
	deadlineSeen := false
	for i, err := range errs {
		if i != victim && errors.Is(err, os.ErrDeadlineExceeded) {
			deadlineSeen = true
		}
	}
	if !deadlineSeen {
		t.Errorf("no survivor reported os.ErrDeadlineExceeded; errors: %v", errs)
	}
	// The full join waits for the victim's stall to end (its goroutine
	// must exit for the leak check) but must not stack timeouts on top.
	if elapsed > stall+5*time.Second {
		t.Errorf("cluster took %v to drain, want ≈ the %v stall", elapsed, stall)
	}
	testutil.NoLeakedGoroutines(t, base)
}

// TestCanceledContextAbortsNodeRun: cancellation via Config.Context
// must abort a healthy, endlessly chattering cluster with an error on
// every machine and a goroutine-clean teardown.
func TestCanceledContextAbortsNodeRun(t *testing.T) {
	base := runtime.NumGoroutine()
	const k = 3
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := RunLocal(Config{K: k, Bandwidth: 1, Seed: 3, Context: ctx},
			failCodec{}, func(id core.MachineID) core.Machine[failMsg] {
				return core.MachineFunc[failMsg](func(sctx *core.StepContext, inbox []core.Envelope[failMsg]) ([]core.Envelope[failMsg], bool) {
					return []core.Envelope[failMsg]{{To: core.MachineID((int(sctx.Self) + 1) % k), Words: 1}}, false
				})
			})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled run terminated without error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the cluster")
	}
	testutil.NoLeakedGoroutines(t, base)
}
