package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"kmachine/internal/transport"
)

// Codec serialises one algorithm's message type M. Append writes m to
// dst and returns the extended slice; Decode reads one message from the
// front of src and returns it with the number of bytes consumed.
//
// A Codec must round-trip exactly: Decode(Append(nil, m)) == (m,
// len(Append(nil, m)), nil) for every message the algorithm can emit.
// Decode must return a self-contained value that does not alias src —
// transports recycle their frame buffers across supersteps (see
// ReadFrameInto), so a message holding a sub-slice of src would be
// corrupted one superstep later.
// The per-algorithm implementations live next to their message types
// (pagerank.WireCodec, dsort.WireCodec, conncomp.WireCodec,
// triangle.WireCodec) so unexported message structs stay unexported.
type Codec[M any] interface {
	Append(dst []byte, m M) ([]byte, error)
	Decode(src []byte) (M, int, error)
}

// MaxFrame is the largest frame Read/WriteFrame accept: 1 GiB, far
// above any single superstep batch yet small enough to reject a
// corrupted length prefix before allocating.
const MaxFrame = 1 << 30

// ErrFrameTooLarge reports a length prefix above MaxFrame.
var ErrFrameTooLarge = fmt.Errorf("wire: frame exceeds %d bytes", MaxFrame)

// AppendUvarint appends x in unsigned LEB128.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// Uvarint decodes an unsigned LEB128 value from the front of src.
func Uvarint(src []byte) (uint64, int, error) {
	x, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated or overlong uvarint")
	}
	return x, n, nil
}

// AppendVarint appends x in zigzag LEB128 (negative-friendly).
func AppendVarint(dst []byte, x int64) []byte {
	return binary.AppendVarint(dst, x)
}

// Varint decodes a zigzag LEB128 value from the front of src.
func Varint(src []byte) (int64, int, error) {
	x, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated or overlong varint")
	}
	return x, n, nil
}

// AppendEnvelope appends one envelope: uvarint From, To, Words headers
// followed by the codec-encoded payload.
func AppendEnvelope[M any](dst []byte, e transport.Envelope[M], c Codec[M]) ([]byte, error) {
	if e.From < 0 || e.To < 0 || e.Words < 0 {
		return dst, fmt.Errorf("wire: envelope with negative header field: from=%d to=%d words=%d", e.From, e.To, e.Words)
	}
	dst = AppendUvarint(dst, uint64(e.From))
	dst = AppendUvarint(dst, uint64(e.To))
	dst = AppendUvarint(dst, uint64(e.Words))
	return c.Append(dst, e.Msg)
}

// DecodeEnvelope decodes one envelope from the front of src, returning
// the bytes consumed. Header values above int32 range are corruption
// (AppendEnvelope rejects negatives, so a valid header always fits):
// rejecting them here keeps silently-truncated Words out of core's
// accounting.
func DecodeEnvelope[M any](src []byte, c Codec[M]) (transport.Envelope[M], int, error) {
	var e transport.Envelope[M]
	pos := 0
	for _, f := range []*transport.MachineID{&e.From, &e.To} {
		v, n, err := Uvarint(src[pos:])
		if err != nil {
			return e, 0, err
		}
		if v > math.MaxInt32 {
			return e, 0, fmt.Errorf("wire: machine ID %d out of range", v)
		}
		*f = transport.MachineID(v)
		pos += n
	}
	w, n, err := Uvarint(src[pos:])
	if err != nil {
		return e, 0, err
	}
	if w > math.MaxInt32 {
		return e, 0, fmt.Errorf("wire: envelope words %d out of range", w)
	}
	e.Words = int32(w)
	pos += n
	msg, n, err := c.Decode(src[pos:])
	if err != nil {
		return e, 0, err
	}
	e.Msg = msg
	return e, pos + n, nil
}

// AppendBatch appends one superstep batch: uvarint superstep, uvarint
// sender, uvarint count, then count envelopes. The batch is the unit
// the TCP transport frames per (sender, receiver, superstep) — empty
// batches are legal and mark "nothing for you this superstep".
func AppendBatch[M any](dst []byte, step int, from transport.MachineID, envs []transport.Envelope[M], c Codec[M]) ([]byte, error) {
	dst = AppendUvarint(dst, uint64(step))
	dst = AppendUvarint(dst, uint64(from))
	dst = AppendUvarint(dst, uint64(len(envs)))
	var err error
	for _, e := range envs {
		if dst, err = AppendEnvelope(dst, e, c); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeBatch decodes a batch produced by AppendBatch.
func DecodeBatch[M any](src []byte, c Codec[M]) (step int, from transport.MachineID, envs []transport.Envelope[M], err error) {
	return DecodeBatchInto(src, c, nil)
}

// DecodeBatchInto is DecodeBatch appending into dst[:0], so a transport
// decoding one batch per peer per superstep can recycle its envelope
// scratch instead of allocating a fresh slice every frame. Decoded
// envelopes are self-contained values (a Codec must not alias src), so
// the caller may reuse the frame buffer once DecodeBatchInto returns.
func DecodeBatchInto[M any](src []byte, c Codec[M], dst []transport.Envelope[M]) (step int, from transport.MachineID, envs []transport.Envelope[M], err error) {
	pos := 0
	var hdr [3]uint64
	for i := range hdr {
		v, n, err := Uvarint(src[pos:])
		if err != nil {
			return 0, 0, nil, err
		}
		hdr[i] = v
		pos += n
	}
	step, from = int(hdr[0]), transport.MachineID(hdr[1])
	count := hdr[2]
	if count > uint64(len(src)-pos) {
		// Each envelope needs >= 1 byte; a count beyond the remaining
		// bytes is corruption, not a big batch.
		return 0, 0, nil, fmt.Errorf("wire: batch claims %d envelopes in %d bytes", count, len(src)-pos)
	}
	envs = dst[:0]
	if free := uint64(cap(envs)); free < count {
		envs = make([]transport.Envelope[M], 0, count)
	}
	for i := uint64(0); i < count; i++ {
		e, n, err := DecodeEnvelope(src[pos:], c)
		if err != nil {
			return 0, 0, nil, err
		}
		envs = append(envs, e)
		pos += n
	}
	if pos != len(src) {
		return 0, 0, nil, fmt.Errorf("wire: %d trailing bytes after batch", len(src)-pos)
	}
	return step, from, envs, nil
}

// WriteFrame writes a length-prefixed frame: uvarint payload length
// followed by the payload bytes.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.ByteReader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto is ReadFrame reusing buf's storage when it has the
// capacity, so a connection reading one frame per superstep can recycle
// its read buffer. The returned slice aliases buf on reuse; it is valid
// until the next ReadFrameInto call with the same buffer.
func ReadFrameInto(r io.ByteReader, buf []byte) ([]byte, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if size > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := buf[:0]
	if uint64(cap(payload)) < size {
		payload = make([]byte, size)
	} else {
		payload = payload[:size]
	}
	br, ok := r.(io.Reader)
	if !ok {
		return nil, fmt.Errorf("wire: ReadFrameInto needs an io.Reader, got %T", r)
	}
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
