package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"kmachine/internal/transport"
)

// Codec serialises one algorithm's message type M. Append writes m to
// dst and returns the extended slice; Decode reads one message from the
// front of src and returns it with the number of bytes consumed.
//
// A Codec must round-trip exactly: Decode(Append(nil, m)) == (m,
// len(Append(nil, m)), nil) for every message the algorithm can emit.
// Decode must return a self-contained value that does not alias src —
// transports recycle their frame buffers across supersteps (see
// ReadFrameInto), so a message holding a sub-slice of src would be
// corrupted one superstep later.
// The per-algorithm implementations live next to their message types
// (pagerank.WireCodec, dsort.WireCodec, conncomp.WireCodec,
// triangle.WireCodec) so unexported message structs stay unexported.
type Codec[M any] interface {
	Append(dst []byte, m M) ([]byte, error)
	Decode(src []byte) (M, int, error)
}

// MaxFrame is the largest frame Read/WriteFrame accept: 1 GiB, far
// above any single superstep batch yet small enough to reject a
// corrupted length prefix before allocating.
const MaxFrame = 1 << 30

// ErrFrameTooLarge reports a length prefix above MaxFrame.
var ErrFrameTooLarge = fmt.Errorf("wire: frame exceeds %d bytes", MaxFrame)

// AppendUvarint appends x in unsigned LEB128.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// Uvarint decodes an unsigned LEB128 value from the front of src.
func Uvarint(src []byte) (uint64, int, error) {
	x, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated or overlong uvarint")
	}
	return x, n, nil
}

// Cursor is a latching decode cursor over a byte slice: each read
// advances Off, the first failure sticks in Err and turns every later
// read into a zero-value no-op, so a decode body reads linearly and
// checks Err once at the end. Used by the per-algorithm checkpoint
// state codecs (state.go files), which share this package's varint
// primitives with the batch format.
type Cursor struct {
	Src []byte
	Off int
	Err error
}

// Uvarint reads one unsigned LEB128 value.
func (c *Cursor) Uvarint() uint64 {
	if c.Err != nil {
		return 0
	}
	v, n, err := Uvarint(c.Src[c.Off:])
	if err != nil {
		c.Err = err
		return 0
	}
	c.Off += n
	return v
}

// Varint reads one zigzag LEB128 value.
func (c *Cursor) Varint() int64 {
	if c.Err != nil {
		return 0
	}
	v, n, err := Varint(c.Src[c.Off:])
	if err != nil {
		c.Err = err
		return 0
	}
	c.Off += n
	return v
}

// Byte reads one raw byte.
func (c *Cursor) Byte() byte {
	if c.Err == nil && c.Off >= len(c.Src) {
		c.Err = fmt.Errorf("wire: truncated cursor read")
	}
	if c.Err != nil {
		return 0
	}
	b := c.Src[c.Off]
	c.Off++
	return b
}

// Uint64 reads 8 raw little-endian bytes (for payloads where varint
// compression would lose bit-exactness guarantees, e.g. float bits).
func (c *Cursor) Uint64() uint64 {
	if c.Err == nil && c.Off+8 > len(c.Src) {
		c.Err = fmt.Errorf("wire: truncated cursor read")
	}
	if c.Err != nil {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.Src[c.Off:])
	c.Off += 8
	return v
}

// Finish returns the latched error, or an error if trailing bytes
// remain unconsumed — a decode that must account for the whole blob
// (checkpoint restore) calls it last.
func (c *Cursor) Finish() error {
	if c.Err != nil {
		return c.Err
	}
	if c.Off != len(c.Src) {
		return fmt.Errorf("wire: %d trailing bytes after decode", len(c.Src)-c.Off)
	}
	return nil
}

// AppendVarint appends x in zigzag LEB128 (negative-friendly).
func AppendVarint(dst []byte, x int64) []byte {
	return binary.AppendVarint(dst, x)
}

// Varint decodes a zigzag LEB128 value from the front of src.
func Varint(src []byte) (int64, int, error) {
	x, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated or overlong varint")
	}
	return x, n, nil
}

// AppendEnvelope appends one envelope: uvarint From, To, Words headers
// followed by the codec-encoded payload.
func AppendEnvelope[M any](dst []byte, e transport.Envelope[M], c Codec[M]) ([]byte, error) {
	if e.From < 0 || e.To < 0 || e.Words < 0 {
		return dst, fmt.Errorf("wire: envelope with negative header field: from=%d to=%d words=%d", e.From, e.To, e.Words)
	}
	dst = AppendUvarint(dst, uint64(e.From))
	dst = AppendUvarint(dst, uint64(e.To))
	dst = AppendUvarint(dst, uint64(e.Words))
	return c.Append(dst, e.Msg)
}

// DecodeEnvelope decodes one envelope from the front of src, returning
// the bytes consumed. Header values above int32 range are corruption
// (AppendEnvelope rejects negatives, so a valid header always fits):
// rejecting them here keeps silently-truncated Words out of core's
// accounting.
func DecodeEnvelope[M any](src []byte, c Codec[M]) (transport.Envelope[M], int, error) {
	var e transport.Envelope[M]
	pos := 0
	for _, f := range []*transport.MachineID{&e.From, &e.To} {
		v, n, err := Uvarint(src[pos:])
		if err != nil {
			return e, 0, err
		}
		if v > math.MaxInt32 {
			return e, 0, fmt.Errorf("wire: machine ID %d out of range", v)
		}
		*f = transport.MachineID(v)
		pos += n
	}
	w, n, err := Uvarint(src[pos:])
	if err != nil {
		return e, 0, err
	}
	if w > math.MaxInt32 {
		return e, 0, fmt.Errorf("wire: envelope words %d out of range", w)
	}
	e.Words = int32(w)
	pos += n
	msg, n, err := c.Decode(src[pos:])
	if err != nil {
		return e, 0, err
	}
	e.Msg = msg
	return e, pos + n, nil
}

// AppendBatch appends one superstep batch: uvarint superstep, uvarint
// sender, uvarint count, then count envelopes. The batch is the unit
// the TCP transport frames per (sender, receiver, superstep) — empty
// batches are legal and mark "nothing for you this superstep".
func AppendBatch[M any](dst []byte, step int, from transport.MachineID, envs []transport.Envelope[M], c Codec[M]) ([]byte, error) {
	dst = AppendUvarint(dst, uint64(step))
	dst = AppendUvarint(dst, uint64(from))
	dst = AppendUvarint(dst, uint64(len(envs)))
	var err error
	for _, e := range envs {
		if dst, err = AppendEnvelope(dst, e, c); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeBatch decodes a batch produced by AppendBatch.
func DecodeBatch[M any](src []byte, c Codec[M]) (step int, from transport.MachineID, envs []transport.Envelope[M], err error) {
	return DecodeBatchInto(src, c, nil)
}

// DecodeBatchInto is DecodeBatch appending into dst[:0], so a transport
// decoding one batch per peer per superstep can recycle its envelope
// scratch instead of allocating a fresh slice every frame. Decoded
// envelopes are self-contained values (a Codec must not alias src), so
// the caller may reuse the frame buffer once DecodeBatchInto returns.
func DecodeBatchInto[M any](src []byte, c Codec[M], dst []transport.Envelope[M]) (step int, from transport.MachineID, envs []transport.Envelope[M], err error) {
	pos := 0
	var hdr [3]uint64
	for i := range hdr {
		v, n, err := Uvarint(src[pos:])
		if err != nil {
			return 0, 0, nil, err
		}
		hdr[i] = v
		pos += n
	}
	step, from = int(hdr[0]), transport.MachineID(hdr[1])
	count := hdr[2]
	if count > uint64(len(src)-pos) {
		// Each envelope needs >= 1 byte; a count beyond the remaining
		// bytes is corruption, not a big batch.
		return 0, 0, nil, fmt.Errorf("wire: batch claims %d envelopes in %d bytes", count, len(src)-pos)
	}
	envs = dst[:0]
	if free := uint64(cap(envs)); free < count {
		envs = make([]transport.Envelope[M], 0, count)
	}
	for i := uint64(0); i < count; i++ {
		e, n, err := DecodeEnvelope(src[pos:], c)
		if err != nil {
			return 0, 0, nil, err
		}
		envs = append(envs, e)
		pos += n
	}
	if pos != len(src) {
		return 0, 0, nil, fmt.Errorf("wire: %d trailing bytes after batch", len(src)-pos)
	}
	return step, from, envs, nil
}

// Batch format versions. A versioned batch begins with one of these
// bytes; the legacy (PR-1) batch format has no version byte and is only
// handled by DecodeBatch/DecodeBatchInto.
const (
	// BatchV1 frames the legacy per-envelope format (from/to/words per
	// envelope) behind a version byte so it can coexist with v2 on the
	// same connection.
	BatchV1 = byte(0x01)
	// BatchV2 is the compact per-destination format: the per-envelope To
	// is elided (implied by the frame's destination), From is run-length
	// delta-encoded, and the payload section is length-prefixed.
	BatchV2 = byte(0x02)
)

// AppendBatchV1 appends a version-framed v1 batch: the BatchV1 byte
// followed by the exact AppendBatch body. It exists for cross-version
// interop (and its tests): a v2-speaking decoder must still accept a
// peer that ships the legacy layout.
func AppendBatchV1[M any](dst []byte, step int, from transport.MachineID, envs []transport.Envelope[M], c Codec[M]) ([]byte, error) {
	return AppendBatch(append(dst, BatchV1), step, from, envs, c)
}

// AppendBatchV2 appends one superstep batch in the v2 layout:
//
//	batchV2 := version superstep count [run* words* payloadLen payload]
//
// Two envelope header fields of v1 are elided outright, because a TCP
// batch frame is already a per-(sender, receiver, superstep) unit: the
// per-envelope To is implied by the frame's destination, and the frame
// sender is implied by the connection the frame arrives on — both are
// supplied to the decoder as arguments and reconstructed. From values
// are encoded as (delta, runLength) runs — zigzag delta against the
// previous run's From, seeded with `from` — so the common transport
// batch (every envelope From the frame's sender) costs two bytes of
// From encoding total instead of one byte per envelope. The payload
// section is length-prefixed so a decoder can validate and pre-size
// before touching codec bytes. An empty batch (the "nothing for you
// this superstep" marker, which dominates frame counts for sparse
// traffic) ends right after count and costs no more than its v1
// equivalent.
func AppendBatchV2[M any](dst []byte, step int, from, to transport.MachineID, envs []transport.Envelope[M], c Codec[M]) ([]byte, error) {
	dst = append(dst, BatchV2)
	dst = AppendUvarint(dst, uint64(step))
	dst = AppendUvarint(dst, uint64(len(envs)))
	if len(envs) == 0 {
		return dst, nil
	}

	// From runs: (delta, length) pairs over maximal runs of equal From.
	// Envelopes inside a run share the head's From, so checking heads
	// covers every From in the batch.
	prev := from
	for i := 0; i < len(envs); {
		e := &envs[i]
		if e.From < 0 {
			return dst, fmt.Errorf("wire: envelope with negative From %d", e.From)
		}
		run := 1
		for i+run < len(envs) && envs[i+run].From == e.From {
			run++
		}
		dst = AppendVarint(dst, int64(e.From)-int64(prev))
		dst = AppendUvarint(dst, uint64(run))
		prev = e.From
		i += run
	}

	// Words, one per envelope; To and Words are validated here, where
	// every envelope is visited.
	for i := range envs {
		e := &envs[i]
		if e.To != to {
			return dst, fmt.Errorf("wire: v2 batch for machine %d holds envelope addressed to %d", to, e.To)
		}
		if e.Words < 0 {
			return dst, fmt.Errorf("wire: envelope with negative Words %d", e.Words)
		}
		dst = AppendUvarint(dst, uint64(e.Words))
	}

	// Payload section, length-prefixed. Encode into the tail of dst,
	// then insert the length prefix in front — a second small copy of
	// just the payload bytes, which keeps the format streaming-friendly
	// without a separate scratch buffer.
	mark := len(dst)
	var err error
	for i := range envs {
		if dst, err = c.Append(dst, envs[i].Msg); err != nil {
			return dst, err
		}
	}
	payload := len(dst) - mark
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(payload))
	dst = append(dst, hdr[:n]...)              // grow by prefix size
	copy(dst[mark+n:], dst[mark:mark+payload]) // shift payload right
	copy(dst[mark:], hdr[:n])                  // install the prefix
	return dst, nil
}

// DecodeBatchAny decodes a version-framed batch (BatchV1 or BatchV2)
// produced by AppendBatchV1/AppendBatchV2. `from` and `to` identify the
// connection the frame arrived on — the machine at the far end and this
// machine — and reconstruct the fields the v2 layout elides; v1 bodies
// carry both explicitly and ignore the arguments (the returned sender
// is the embedded one, which transports verify against the connection).
func DecodeBatchAny[M any](src []byte, c Codec[M], from, to transport.MachineID) (step int, gotFrom transport.MachineID, envs []transport.Envelope[M], err error) {
	return DecodeBatchAnyInto(src, c, from, to, nil)
}

// DecodeBatchAnyInto is DecodeBatchAny appending into dst[:0], the
// recycled-scratch form transports use (see DecodeBatchInto).
func DecodeBatchAnyInto[M any](src []byte, c Codec[M], from, to transport.MachineID, dst []transport.Envelope[M]) (step int, gotFrom transport.MachineID, envs []transport.Envelope[M], err error) {
	if len(src) == 0 {
		return 0, 0, nil, fmt.Errorf("wire: empty batch frame")
	}
	switch src[0] {
	case BatchV1:
		return DecodeBatchInto(src[1:], c, dst)
	case BatchV2:
		return decodeBatchV2Into(src[1:], c, from, to, dst)
	default:
		return 0, 0, nil, fmt.Errorf("wire: unknown batch version 0x%02x", src[0])
	}
}

func decodeBatchV2Into[M any](src []byte, c Codec[M], from, to transport.MachineID, dst []transport.Envelope[M]) (step int, gotFrom transport.MachineID, envs []transport.Envelope[M], err error) {
	pos := 0
	var hdr [2]uint64
	for i := range hdr {
		v, n, err := Uvarint(src[pos:])
		if err != nil {
			return 0, 0, nil, err
		}
		hdr[i] = v
		pos += n
	}
	step = int(hdr[0])
	count := hdr[1]
	if count == 0 {
		if pos != len(src) {
			return 0, 0, nil, fmt.Errorf("wire: %d trailing bytes after empty v2 batch", len(src)-pos)
		}
		return step, from, dst[:0], nil
	}
	if count > uint64(len(src)-pos) {
		// Each envelope contributes at least one Words byte; a count
		// beyond the remaining bytes is corruption, not a big batch.
		return 0, 0, nil, fmt.Errorf("wire: v2 batch claims %d envelopes in %d bytes", count, len(src)-pos)
	}
	envs = dst[:0]
	if free := uint64(cap(envs)); free < count {
		envs = make([]transport.Envelope[M], 0, count)
	}

	// From runs: fill the envelope headers first.
	prev := int64(from)
	for covered := uint64(0); covered < count; {
		delta, n, err := Varint(src[pos:])
		if err != nil {
			return 0, 0, nil, err
		}
		pos += n
		length, n, err := Uvarint(src[pos:])
		if err != nil {
			return 0, 0, nil, err
		}
		pos += n
		f := prev + delta
		if f < 0 || f > math.MaxInt32 {
			return 0, 0, nil, fmt.Errorf("wire: v2 batch From %d out of range", f)
		}
		if length == 0 || length > count-covered {
			return 0, 0, nil, fmt.Errorf("wire: v2 batch run of %d envelopes with %d uncovered", length, count-covered)
		}
		for i := uint64(0); i < length; i++ {
			envs = append(envs, transport.Envelope[M]{From: transport.MachineID(f), To: to})
		}
		prev = f
		covered += length
	}

	// Words, one per envelope.
	for i := range envs {
		w, n, err := Uvarint(src[pos:])
		if err != nil {
			return 0, 0, nil, err
		}
		if w > math.MaxInt32 {
			return 0, 0, nil, fmt.Errorf("wire: envelope words %d out of range", w)
		}
		envs[i].Words = int32(w)
		pos += n
	}

	// Length-prefixed payload section: the prefix must account for
	// exactly the remaining bytes, and the codec must consume exactly
	// the prefix.
	plen, n, err := Uvarint(src[pos:])
	if err != nil {
		return 0, 0, nil, err
	}
	pos += n
	if plen != uint64(len(src)-pos) {
		return 0, 0, nil, fmt.Errorf("wire: v2 payload section claims %d bytes, %d remain", plen, len(src)-pos)
	}
	for i := range envs {
		msg, n, err := c.Decode(src[pos:])
		if err != nil {
			return 0, 0, nil, err
		}
		envs[i].Msg = msg
		pos += n
	}
	if pos != len(src) {
		return 0, 0, nil, fmt.Errorf("wire: %d trailing bytes after v2 batch", len(src)-pos)
	}
	return step, from, envs, nil
}

// BatchJobbed marks a job-scoped data frame: the byte sits where a
// batch version byte otherwise would, followed by the uvarint job ID
// and then a complete versioned batch (BatchV1 or BatchV2 body,
// unchanged). It is the framing extension that lets frames from
// different jobs share one standing mesh's persistent per-peer
// connections: a reader attached for job J rejects a straggler frame
// from job I != J instead of silently decoding it into the wrong run.
// Mixed-version interop is preserved — the job header wraps either
// batch version, and job-less endpoints keep shipping bare v1/v2
// batches.
const BatchJobbed = byte(0x03)

// AppendJobHeader appends a job-scope header: the BatchJobbed marker
// and the job ID. The caller appends a versioned batch (AppendBatchV1 /
// AppendBatchV2) immediately after.
func AppendJobHeader(dst []byte, job uint64) []byte {
	dst = append(dst, BatchJobbed)
	return AppendUvarint(dst, job)
}

// PeelJobHeader splits a data frame into its job scope and the inner
// versioned batch. Frames without a job header (bare v1/v2 batches from
// a job-less endpoint, or abort frames) return jobbed=false with rest
// aliasing src whole; job-scoped frames return the job ID and the inner
// batch bytes. The caller decides whether a bare frame is acceptable —
// a job-attached reader treats it as a protocol violation.
func PeelJobHeader(src []byte) (job uint64, rest []byte, jobbed bool, err error) {
	if len(src) == 0 || src[0] != BatchJobbed {
		return 0, src, false, nil
	}
	job, n, err := Uvarint(src[1:])
	if err != nil {
		return 0, nil, true, fmt.Errorf("wire: corrupt job header: %w", err)
	}
	return job, src[1+n:], true, nil
}

// BatchAbort marks a blame frame: a failing endpoint's last words on a
// data connection, naming the machine it holds responsible before the
// connection closes. Readers that find one instead of a batch re-raise
// the blame as a machine-attributed error, which is what keeps failure
// attribution correct across cascading teardowns — the abort bytes
// precede the closing FIN in stream order, so a peer can always
// distinguish "this machine died" (bare EOF) from "this machine is
// tearing down because someone else died" (abort frame, then EOF).
const BatchAbort = byte(0xFF)

// AppendAbort appends a blame frame: the BatchAbort marker, the
// superstep in which the failure surfaced, and the suspect machine.
func AppendAbort(dst []byte, step int, suspect transport.MachineID) []byte {
	dst = append(dst, BatchAbort)
	dst = AppendUvarint(dst, uint64(step))
	return AppendUvarint(dst, uint64(suspect))
}

// DecodeAbort decodes a blame frame produced by AppendAbort.
func DecodeAbort(src []byte) (step int, suspect transport.MachineID, err error) {
	if len(src) == 0 || src[0] != BatchAbort {
		return 0, 0, fmt.Errorf("wire: not an abort frame")
	}
	pos := 1
	s, n, err := Uvarint(src[pos:])
	if err != nil {
		return 0, 0, err
	}
	pos += n
	m, _, err := Uvarint(src[pos:])
	if err != nil {
		return 0, 0, err
	}
	if m > math.MaxInt32 {
		return 0, 0, fmt.Errorf("wire: abort suspect %d out of range", m)
	}
	return int(s), transport.MachineID(m), nil
}

// UvarintLen returns the encoded size of x in bytes without encoding it.
func UvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// FrameSize returns the bytes a payload of the given length occupies on
// the wire once framed by WriteFrame: the uvarint length prefix plus the
// payload itself. Transports use it to account actual bytes-on-wire.
func FrameSize(payloadLen int) int {
	return UvarintLen(uint64(payloadLen)) + payloadLen
}

// WriteFrame writes a length-prefixed frame: uvarint payload length
// followed by the payload bytes. Byte-writers (bufio.Writer — every
// transport connection) take an allocation-free path: the header array
// of the generic path escapes through the io.Writer interface, which
// would put one allocation on every frame of the hot exchange loop.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	if bw, ok := w.(io.ByteWriter); ok {
		x := uint64(len(payload))
		for x >= 0x80 {
			if err := bw.WriteByte(byte(x) | 0x80); err != nil {
				return err
			}
			x >>= 7
		}
		if err := bw.WriteByte(byte(x)); err != nil {
			return err
		}
	} else {
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(len(payload)))
		if _, err := w.Write(hdr[:n]); err != nil {
			return err
		}
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.ByteReader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto is ReadFrame reusing buf's storage when it has the
// capacity, so a connection reading one frame per superstep can recycle
// its read buffer. The returned slice aliases buf on reuse; it is valid
// until the next ReadFrameInto call with the same buffer.
func ReadFrameInto(r io.ByteReader, buf []byte) ([]byte, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if size > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := buf[:0]
	if uint64(cap(payload)) < size {
		payload = make([]byte, size)
	} else {
		payload = payload[:size]
	}
	br, ok := r.(io.Reader)
	if !ok {
		return nil, fmt.Errorf("wire: ReadFrameInto needs an io.Reader, got %T", r)
	}
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
