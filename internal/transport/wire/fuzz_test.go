package wire

import (
	"bytes"
	"testing"

	"kmachine/internal/transport"
)

// FuzzBatchDecode is the robustness fence of the versioned batch
// decoder: arbitrary bytes must never panic it, and whatever it accepts
// must survive a re-encode/decode round trip value-identically. The
// same input additionally seeds a constructive check — a batch built
// from the fuzzed bytes encodes and decodes back to itself — so one
// target covers both directions (decoder hardening and encoder/decoder
// identity) for the CI fuzz-smoke job, which can only drive a single
// -fuzz pattern.
func FuzzBatchDecode(f *testing.F) {
	c := pairCodec{}
	// Seed corpus: valid v2, valid version-framed v1, the legal empty
	// batch, and known-corrupt shapes from the unit tests.
	envs := []transport.Envelope[pairMsg]{
		{From: 1, To: 2, Words: 4, Msg: pairMsg{A: -9, B: 11}},
		{From: 1, To: 2, Words: 0, Msg: pairMsg{A: 0, B: 1}},
		{From: 3, To: 2, Words: 7, Msg: pairMsg{A: 5, B: 0}},
	}
	if seed, err := AppendBatchV2(nil, 3, 1, 2, envs, c); err == nil {
		f.Add(seed)
	}
	if seed, err := AppendBatchV1(nil, 3, 1, envs, c); err == nil {
		f.Add(seed)
	}
	if seed, err := AppendBatchV2(nil, 0, 0, 2, nil, c); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{BatchV2, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, src []byte) {
		// Decoder hardening: must reject or accept without panicking,
		// and an accepted batch must re-encode into a decodable batch
		// with identical values (the encoding itself may differ — the
		// decoder accepts non-canonical run splits the encoder never
		// produces).
		const sender = transport.MachineID(1)
		const to = transport.MachineID(2)
		step, from, envs, err := DecodeBatchAny(src, c, sender, to)
		if err == nil {
			reenc, err := AppendBatchV2(nil, step, from, to, envs, c)
			if err != nil {
				// A v1 body may carry envelopes the v2 encoder rejects
				// (To != frame destination); that asymmetry is fine.
				if len(src) > 0 && src[0] == BatchV2 {
					t.Fatalf("v2 re-encode of decoded batch failed: %v", err)
				}
			} else {
				step2, from2, envs2, err := DecodeBatchAny(reenc, c, from, to)
				if err != nil {
					t.Fatalf("re-encoded batch rejected: %v", err)
				}
				if step2 != step || from2 != from || len(envs2) != len(envs) {
					t.Fatalf("re-encode header drift: (%d,%d,%d) -> (%d,%d,%d)",
						step, from, len(envs), step2, from2, len(envs2))
				}
				for i := range envs {
					if envs[i] != envs2[i] {
						t.Fatalf("re-encode envelope %d drift: %+v -> %+v", i, envs[i], envs2[i])
					}
				}
			}
		}

		// Constructive identity: derive a well-formed batch from the
		// fuzz bytes and assert exact round-trip through both formats.
		built := batchFromBytes(src)
		bstep, bfrom := len(src)%4096, transport.MachineID(len(src)%64)
		v2, err := AppendBatchV2(nil, bstep, bfrom, to, built, c)
		if err != nil {
			t.Fatalf("encode of well-formed batch failed: %v", err)
		}
		v1, err := AppendBatchV1(nil, bstep, bfrom, built, c)
		if err != nil {
			t.Fatalf("v1 encode of well-formed batch failed: %v", err)
		}
		for _, enc := range [][]byte{v2, v1} {
			gstep, gfrom, genvs, err := DecodeBatchAny(enc, c, bfrom, to)
			if err != nil {
				t.Fatalf("round trip decode failed: %v", err)
			}
			if gstep != bstep || gfrom != bfrom || len(genvs) != len(built) {
				t.Fatalf("round trip header: got (%d,%d,%d), want (%d,%d,%d)",
					gstep, gfrom, len(genvs), bstep, bfrom, len(built))
			}
			for i := range built {
				if genvs[i] != built[i] {
					t.Fatalf("round trip envelope %d: got %+v, want %+v", i, genvs[i], built[i])
				}
			}
		}
	})
}

// batchFromBytes deterministically shapes fuzz input into a valid
// single-destination batch: each input byte contributes one envelope
// (capped so a megabyte mutation doesn't stall the fuzzer on a
// million-envelope batch), with From/Words/payload derived from a
// rolling state so runs of equal From (the run-length-encoded path)
// appear naturally.
func batchFromBytes(src []byte) []transport.Envelope[pairMsg] {
	if len(src) > 512 {
		src = src[:512]
	}
	envs := make([]transport.Envelope[pairMsg], 0, len(src))
	from := transport.MachineID(0)
	for i, b := range src {
		if b&0x07 == 0 { // change From on ~1/8 of bytes: real run lengths
			from = transport.MachineID(b>>3) % 64
		}
		envs = append(envs, transport.Envelope[pairMsg]{
			From:  from,
			To:    2,
			Words: int32(b),
			Msg:   pairMsg{A: int64(i) - int64(b), B: uint64(b) << uint(i%8)},
		})
	}
	return envs
}

// TestFuzzSeedsPass runs the seed corpus through the fuzz body once in
// a plain `go test`, so a broken seed fails fast everywhere instead of
// only in the -fuzz smoke job.
func TestFuzzSeedsPass(t *testing.T) {
	c := pairCodec{}
	envs := []transport.Envelope[pairMsg]{
		{From: 1, To: 2, Words: 4, Msg: pairMsg{A: -9, B: 11}},
		{From: 3, To: 2, Words: 7, Msg: pairMsg{A: 5, B: 0}},
	}
	v2, err := AppendBatchV2(nil, 3, 1, 2, envs, c)
	if err != nil {
		t.Fatal(err)
	}
	s, fr, got, err := DecodeBatchAny(v2, c, 1, 2)
	if err != nil || s != 3 || fr != 1 || len(got) != 2 {
		t.Fatalf("seed decode: step=%d from=%d n=%d err=%v", s, fr, len(got), err)
	}
	if !bytes.Equal(v2[:1], []byte{BatchV2}) {
		t.Fatalf("v2 batch does not start with the version byte: % x", v2[:2])
	}
}
