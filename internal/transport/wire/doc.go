// Package wire is the binary codec shared by every non-loopback
// transport: length-prefixed frames, varint-encoded envelope headers,
// and a Codec[M] abstraction for algorithm payloads.
//
// # Wire format
//
// All integers are LEB128 varints: unsigned ("uvarint") for counts,
// identifiers, and sizes; zigzag-signed ("varint") for payload fields
// that may be negative. Multi-byte values have no fixed width and no
// endianness concerns.
//
// Frame — the unit written to a net.Conn:
//
//	frame     := length payload
//	length    := uvarint              // payload size in bytes, <= MaxFrame
//
// Batch — one (sender, receiver, superstep) shipment of envelopes; the
// TCP transport writes exactly one batch frame per peer per superstep,
// empty batches included, which is what lets a receiver detect that a
// superstep's input is complete:
//
//	batch     := superstep sender count envelope*
//	superstep := uvarint              // zero-based superstep index
//	sender    := uvarint              // MachineID of the writing machine
//	count     := uvarint              // number of envelopes that follow
//
// Envelope — header plus algorithm payload:
//
//	envelope  := from to words msg
//	from      := uvarint              // MachineID, stamped by core
//	to        := uvarint              // MachineID
//	words     := uvarint              // size in machine words (cost model)
//	msg       := Codec[M]-defined bytes
//
// The envelope Words field travels on the wire even though the receiver
// could often recompute it, because the cost accounting in core treats
// it as authoritative: a transport must hand back exactly the word
// counts it was given.
//
// # Versioned batches (v2)
//
// The layout above is the legacy (version-less) v1 batch. Transports
// now ship versioned batches: the first byte of the batch body names
// the format (BatchV1 = 0x01 framing the v1 body verbatim, BatchV2 =
// 0x02 for the compact layout), and DecodeBatchAny dispatches on it —
// a v2-speaking endpoint still accepts a v1-framed peer.
//
// The v2 batch exploits that a TCP batch frame is already a
// per-(sender, receiver, superstep) unit carried by a connection that
// identifies both ends:
//
//	batchV2    := 0x02 superstep count              // empty batch
//	batchV2    := 0x02 superstep count run* words* payloadLen payload
//	superstep  := uvarint             // zero-based superstep index
//	count      := uvarint             // number of envelopes
//	run        := delta length        // From values, run-length encoded
//	delta      := varint              // zigzag delta vs previous run's From
//	                                  // (first run: vs the frame sender)
//	length     := uvarint             // envelopes sharing this From (>= 1);
//	                                  // run lengths sum to count
//	words      := uvarint             // one per envelope, in order
//	payloadLen := uvarint             // total bytes of the payload section
//	payload    := msg*                // Codec bytes, concatenated in order
//
// Three fields of v1 disappear: the batch sender (implied by the
// connection the frame arrives on, supplied to the decoder as an
// argument), the per-envelope To (implied by the frame destination),
// and the per-envelope From (collapsed to one two-byte run in the
// common case where every envelope carries the sender's own From). The
// payload length prefix lets a decoder validate the section boundary
// and pre-size scratch before touching codec bytes. Empty batches —
// the "nothing for you this superstep" markers that dominate frame
// counts for sparse traffic — end right after count, so they cost no
// more than their v1 equivalent.
//
// # Job-scoped frames
//
// A resident mesh executes many jobs over the same persistent
// connections (DESIGN.md "Job service"). Data frames of such a mesh are
// job-scoped: a job header sits where the batch version byte otherwise
// would, and the complete versioned batch follows unchanged —
//
//	jobbed     := 0x03 job batchV1|batchV2
//	job        := uvarint             // job ID, assigned by the scheduler
//
// The header scopes, it does not re-encode: v1 and v2 bodies travel
// byte-identically inside it, so mixed-version meshes interoperate
// job-scoped exactly as they do bare. A reader attached for job J
// rejects a frame scoped to any other job (a straggler from a previous
// job, or a protocol bug) as an attributed error instead of decoding it
// into the wrong run; job-less endpoints (the single-run Listen/Connect
// path) never emit the header and reject it as an unknown version.
//
// A failing endpoint may ship one final frame on a data connection
// before closing it:
//
//	abort      := 0xFF superstep suspect
//	suspect    := uvarint             // MachineID the sender blames
//
// The abort precedes the connection's FIN in stream order, which is
// what lets a reader distinguish "this peer died" (bare EOF) from
// "this peer is tearing down because suspect died" — the basis of
// correct failure attribution across cascading teardowns (transport/tcp
// castBlame).
//
// # Arrival order under streaming supersteps
//
// Nothing in the frame layout assumes lockstep scheduling, but readers
// must not either: under the streaming schedule (DESIGN.md "Streaming
// supersteps") a machine ships each peer's batch as soon as its compute
// finalises it, so frames for superstep s arrive spread across the
// *whole* of superstep s rather than clustered after a barrier, and the
// relative arrival order of frames from different senders carries no
// information. The per-frame superstep field is therefore the only
// valid sequencing key — a decoder may assert that consecutive frames
// on one connection carry monotonically increasing superstep values
// (one frame per peer per superstep still holds, either schedule), but
// must never infer phase boundaries from inter-frame timing.
//
// # Payload codecs
//
// Codec[M] implementations live next to the message types they
// serialise: pagerank.WireCodec, dsort.WireCodec, conncomp.WireCodec,
// and triangle.WireCodec / triangle.BaselineWireCodec, each composed
// with routing.HopCodec when the algorithm routes through Valiant
// two-hop intermediates. Every codec has a round-trip property test in
// its home package.
package wire
