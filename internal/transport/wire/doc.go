// Package wire is the binary codec shared by every non-loopback
// transport: length-prefixed frames, varint-encoded envelope headers,
// and a Codec[M] abstraction for algorithm payloads.
//
// # Wire format
//
// All integers are LEB128 varints: unsigned ("uvarint") for counts,
// identifiers, and sizes; zigzag-signed ("varint") for payload fields
// that may be negative. Multi-byte values have no fixed width and no
// endianness concerns.
//
// Frame — the unit written to a net.Conn:
//
//	frame     := length payload
//	length    := uvarint              // payload size in bytes, <= MaxFrame
//
// Batch — one (sender, receiver, superstep) shipment of envelopes; the
// TCP transport writes exactly one batch frame per peer per superstep,
// empty batches included, which is what lets a receiver detect that a
// superstep's input is complete:
//
//	batch     := superstep sender count envelope*
//	superstep := uvarint              // zero-based superstep index
//	sender    := uvarint              // MachineID of the writing machine
//	count     := uvarint              // number of envelopes that follow
//
// Envelope — header plus algorithm payload:
//
//	envelope  := from to words msg
//	from      := uvarint              // MachineID, stamped by core
//	to        := uvarint              // MachineID
//	words     := uvarint              // size in machine words (cost model)
//	msg       := Codec[M]-defined bytes
//
// The envelope Words field travels on the wire even though the receiver
// could often recompute it, because the cost accounting in core treats
// it as authoritative: a transport must hand back exactly the word
// counts it was given.
//
// # Payload codecs
//
// Codec[M] implementations live next to the message types they
// serialise: pagerank.WireCodec, dsort.WireCodec, conncomp.WireCodec,
// and triangle.WireCodec / triangle.BaselineWireCodec, each composed
// with routing.HopCodec when the algorithm routes through Valiant
// two-hop intermediates. Every codec has a round-trip property test in
// its home package.
package wire
