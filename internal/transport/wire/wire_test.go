package wire

import (
	"bufio"
	"bytes"
	"testing"

	"kmachine/internal/rng"
	"kmachine/internal/transport"
)

// pairMsg is a minimal payload for envelope/batch tests.
type pairMsg struct {
	A int64
	B uint64
}

type pairCodec struct{}

func (pairCodec) Append(dst []byte, m pairMsg) ([]byte, error) {
	dst = AppendVarint(dst, m.A)
	return AppendUvarint(dst, m.B), nil
}

func (pairCodec) Decode(src []byte) (pairMsg, int, error) {
	a, n, err := Varint(src)
	if err != nil {
		return pairMsg{}, 0, err
	}
	b, m, err := Uvarint(src[n:])
	if err != nil {
		return pairMsg{}, 0, err
	}
	return pairMsg{A: a, B: b}, n + m, nil
}

func TestVarintRoundTrip(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		u := r.Uint64() >> uint(r.Intn(64))
		s := int64(r.Uint64()) >> uint(r.Intn(64))
		buf := AppendUvarint(nil, u)
		gu, n, err := Uvarint(buf)
		if err != nil || gu != u || n != len(buf) {
			t.Fatalf("uvarint %d: got %d (n=%d, err=%v)", u, gu, n, err)
		}
		buf = AppendVarint(nil, s)
		gs, n, err := Varint(buf)
		if err != nil || gs != s || n != len(buf) {
			t.Fatalf("varint %d: got %d (n=%d, err=%v)", s, gs, n, err)
		}
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	r := rng.New(7)
	c := pairCodec{}
	for i := 0; i < 2000; i++ {
		want := transport.Envelope[pairMsg]{
			From:  transport.MachineID(r.Intn(1 << 20)),
			To:    transport.MachineID(r.Intn(1 << 20)),
			Words: int32(r.Intn(1 << 30)),
			Msg:   pairMsg{A: int64(r.Uint64()) >> uint(r.Intn(64)), B: r.Uint64()},
		}
		buf, err := AppendEnvelope(nil, want, c)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeEnvelope(buf, c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || n != len(buf) {
			t.Fatalf("round trip: got %+v (n=%d), want %+v (len=%d)", got, n, want, len(buf))
		}
	}
}

func TestEnvelopeRejectsNegativeHeaders(t *testing.T) {
	c := pairCodec{}
	for _, e := range []transport.Envelope[pairMsg]{
		{From: -1, To: 0, Words: 1},
		{From: 0, To: -2, Words: 1},
		{From: 0, To: 0, Words: -1},
	} {
		if _, err := AppendEnvelope(nil, e, c); err == nil {
			t.Errorf("envelope %+v encoded without error", e)
		}
	}
}

func TestBatchRoundTripProperty(t *testing.T) {
	r := rng.New(42)
	c := pairCodec{}
	for trial := 0; trial < 200; trial++ {
		step := r.Intn(1 << 16)
		from := transport.MachineID(r.Intn(64))
		envs := make([]transport.Envelope[pairMsg], r.Intn(50))
		for i := range envs {
			envs[i] = transport.Envelope[pairMsg]{
				From:  from,
				To:    transport.MachineID(r.Intn(64)),
				Words: int32(r.Intn(1000)),
				Msg:   pairMsg{A: int64(r.Uint64()) >> 3, B: r.Uint64()},
			}
		}
		buf, err := AppendBatch(nil, step, from, envs, c)
		if err != nil {
			t.Fatal(err)
		}
		gotStep, gotFrom, gotEnvs, err := DecodeBatch(buf, c)
		if err != nil {
			t.Fatal(err)
		}
		if gotStep != step || gotFrom != from || len(gotEnvs) != len(envs) {
			t.Fatalf("batch header: got (%d,%d,%d), want (%d,%d,%d)",
				gotStep, gotFrom, len(gotEnvs), step, from, len(envs))
		}
		for i := range envs {
			if gotEnvs[i] != envs[i] {
				t.Fatalf("envelope %d: got %+v, want %+v", i, gotEnvs[i], envs[i])
			}
		}
	}
}

func TestBatchRejectsCorruption(t *testing.T) {
	c := pairCodec{}
	buf, err := AppendBatch(nil, 3, 1, []transport.Envelope[pairMsg]{
		{From: 1, To: 2, Words: 4, Msg: pairMsg{A: -9, B: 11}},
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeBatch(buf[:len(buf)-1], c); err == nil {
		t.Error("truncated batch decoded without error")
	}
	if _, _, _, err := DecodeBatch(append(buf, 0xff), c); err == nil {
		t.Error("batch with trailing bytes decoded without error")
	}
	huge := AppendUvarint(nil, 0)
	huge = AppendUvarint(huge, 0)
	huge = AppendUvarint(huge, 1<<40) // absurd count, no envelopes
	if _, _, _, err := DecodeBatch(huge, c); err == nil {
		t.Error("batch with absurd count decoded without error")
	}
}

// v2Batch builds a random single-destination batch (the shape the TCP
// transport ships): every envelope addressed to `to`, From values in
// runs so the run-length encoding path is exercised.
func v2Batch(r *rng.RNG, from, to transport.MachineID, n int) []transport.Envelope[pairMsg] {
	envs := make([]transport.Envelope[pairMsg], 0, n)
	f := from
	for len(envs) < n {
		if r.Intn(3) == 0 {
			f = transport.MachineID(r.Intn(64))
		}
		envs = append(envs, transport.Envelope[pairMsg]{
			From:  f,
			To:    to,
			Words: int32(r.Intn(1000)),
			Msg:   pairMsg{A: int64(r.Uint64()) >> 3, B: r.Uint64()},
		})
	}
	return envs
}

func TestBatchV2RoundTripProperty(t *testing.T) {
	r := rng.New(271)
	c := pairCodec{}
	for trial := 0; trial < 300; trial++ {
		step := r.Intn(1 << 16)
		from := transport.MachineID(r.Intn(64))
		to := transport.MachineID(r.Intn(64))
		envs := v2Batch(r, from, to, r.Intn(50))
		buf, err := AppendBatchV2(nil, step, from, to, envs, c)
		if err != nil {
			t.Fatal(err)
		}
		gotStep, gotFrom, gotEnvs, err := DecodeBatchAny(buf, c, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if gotStep != step || gotFrom != from || len(gotEnvs) != len(envs) {
			t.Fatalf("batch header: got (%d,%d,%d), want (%d,%d,%d)",
				gotStep, gotFrom, len(gotEnvs), step, from, len(envs))
		}
		for i := range envs {
			if gotEnvs[i] != envs[i] {
				t.Fatalf("envelope %d: got %+v, want %+v", i, gotEnvs[i], envs[i])
			}
		}
	}
}

// TestBatchCrossVersionDecode: the same envelopes encoded as a
// version-framed v1 batch and as a v2 batch must decode to identical
// values through the same version-dispatching entry point — the interop
// guarantee that lets endpoints of different wire versions share a mesh.
func TestBatchCrossVersionDecode(t *testing.T) {
	r := rng.New(99)
	c := pairCodec{}
	for trial := 0; trial < 100; trial++ {
		step := r.Intn(1 << 12)
		from := transport.MachineID(r.Intn(32))
		to := transport.MachineID(r.Intn(32))
		envs := v2Batch(r, from, to, r.Intn(30))
		v1, err := AppendBatchV1(nil, step, from, envs, c)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := AppendBatchV2(nil, step, from, to, envs, c)
		if err != nil {
			t.Fatal(err)
		}
		s1, f1, e1, err := DecodeBatchAny(v1, c, from, to)
		if err != nil {
			t.Fatalf("v1 decode: %v", err)
		}
		s2, f2, e2, err := DecodeBatchAny(v2, c, from, to)
		if err != nil {
			t.Fatalf("v2 decode: %v", err)
		}
		if s1 != s2 || f1 != f2 || len(e1) != len(e2) {
			t.Fatalf("cross-version header mismatch: v1 (%d,%d,%d) v2 (%d,%d,%d)",
				s1, f1, len(e1), s2, f2, len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("envelope %d: v1 %+v, v2 %+v", i, e1[i], e2[i])
			}
		}
	}
}

// TestBatchV2SmallerOnTransportShape pins the format's raison d'être:
// on the batch shape the TCP transport actually ships — every envelope
// From the frame's sender, To its destination — v2 beats the legacy v1
// encoding once a batch holds a few envelopes, and the saving grows
// linearly (about two bytes per envelope for single-byte machine IDs).
func TestBatchV2SmallerOnTransportShape(t *testing.T) {
	c := pairCodec{}
	for _, n := range []int{3, 10, 100, 1000} {
		envs := make([]transport.Envelope[pairMsg], n)
		for i := range envs {
			envs[i] = transport.Envelope[pairMsg]{From: 5, To: 9, Words: int32(i % 7), Msg: pairMsg{A: int64(i), B: uint64(i)}}
		}
		v1, err := AppendBatch(nil, 12, 5, envs, c)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := AppendBatchV2(nil, 12, 5, 9, envs, c)
		if err != nil {
			t.Fatal(err)
		}
		if len(v2) >= len(v1) {
			t.Errorf("n=%d: v2 encoding %d bytes, legacy v1 %d bytes — no saving", n, len(v2), len(v1))
		}
		// 2 bytes per envelope (From + To elided) minus the constant
		// format overhead (version byte, one run, payload prefix).
		// overhead (version byte, one run, payload prefix — each field a
		// few varint bytes).
		if saved, want := len(v1)-len(v2), 2*n-8; saved < want {
			t.Errorf("n=%d: saved only %d bytes, want >= %d", n, saved, want)
		}
	}
}

func TestBatchV2RejectsCorruption(t *testing.T) {
	c := pairCodec{}
	envs := []transport.Envelope[pairMsg]{
		{From: 1, To: 2, Words: 4, Msg: pairMsg{A: -9, B: 11}},
		{From: 3, To: 2, Words: 7, Msg: pairMsg{A: 5, B: 0}},
	}
	buf, err := AppendBatchV2(nil, 3, 1, 2, envs, c)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the pristine encoding decodes.
	if _, _, _, err := DecodeBatchAny(buf, c, 1, 2); err != nil {
		t.Fatalf("pristine v2 batch rejected: %v", err)
	}
	// Truncation at every boundary must be detected.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, _, err := DecodeBatchAny(buf[:cut], c, 1, 2); err == nil {
			t.Errorf("v2 batch truncated to %d/%d bytes decoded without error", cut, len(buf))
		}
	}
	if _, _, _, err := DecodeBatchAny(append(append([]byte(nil), buf...), 0xff), c, 1, 2); err == nil {
		t.Error("v2 batch with trailing bytes decoded without error")
	}
	if _, _, _, err := DecodeBatchAny([]byte{0x7f}, c, 1, 2); err == nil {
		t.Error("unknown batch version decoded without error")
	}
	if _, _, _, err := DecodeBatchAny(nil, c, 1, 2); err == nil {
		t.Error("empty batch frame decoded without error")
	}
	// Absurd count with no envelope bytes behind it.
	huge := []byte{BatchV2}
	huge = AppendUvarint(huge, 0)
	huge = AppendUvarint(huge, 1<<40)
	if _, _, _, err := DecodeBatchAny(huge, c, 1, 2); err == nil {
		t.Error("v2 batch with absurd count decoded without error")
	}
	// A run whose delta drives From negative.
	neg := []byte{BatchV2}
	neg = AppendUvarint(neg, 0) // step
	neg = AppendUvarint(neg, 1) // sender
	neg = AppendUvarint(neg, 1) // count
	neg = AppendVarint(neg, -5) // delta: From = 1-5 = -4
	neg = AppendUvarint(neg, 1) // run length
	neg = AppendUvarint(neg, 0) // words
	neg = AppendUvarint(neg, 0) // payloadLen
	if _, _, _, err := DecodeBatchAny(neg, c, 1, 2); err == nil {
		t.Error("v2 batch with negative From decoded without error")
	}
	// A zero-length run (would never terminate coverage).
	zero := []byte{BatchV2}
	zero = AppendUvarint(zero, 0)
	zero = AppendUvarint(zero, 1) // count 1
	zero = AppendVarint(zero, 0)
	zero = AppendUvarint(zero, 0) // run length 0
	if _, _, _, err := DecodeBatchAny(zero, c, 1, 2); err == nil {
		t.Error("v2 batch with zero-length run decoded without error")
	}
	// Payload length prefix that disagrees with the remaining bytes.
	lie, err := AppendBatchV2(nil, 3, 1, 2, envs[:1], c)
	if err != nil {
		t.Fatal(err)
	}
	lie = append(lie, 0x00) // one trailing byte the prefix does not cover
	if _, _, _, err := DecodeBatchAny(lie, c, 1, 2); err == nil {
		t.Error("v2 batch with lying payload prefix decoded without error")
	}
}

func TestAppendBatchV2RejectsForeignDestination(t *testing.T) {
	c := pairCodec{}
	envs := []transport.Envelope[pairMsg]{{From: 0, To: 3, Words: 1}}
	if _, err := AppendBatchV2(nil, 0, 0, 2, envs, c); err == nil {
		t.Error("v2 batch accepted an envelope addressed to a different machine")
	}
	if _, err := AppendBatchV2(nil, 0, 0, 3, []transport.Envelope[pairMsg]{{From: 0, To: 3, Words: -1}}, c); err == nil {
		t.Error("v2 batch accepted negative Words")
	}
	if _, err := AppendBatchV2(nil, 0, 0, 3, []transport.Envelope[pairMsg]{{From: -1, To: 3, Words: 1}}, c); err == nil {
		t.Error("v2 batch accepted negative From")
	}
}

func TestFrameSize(t *testing.T) {
	r := rng.New(5)
	c := pairCodec{}
	for trial := 0; trial < 50; trial++ {
		from := transport.MachineID(r.Intn(64))
		to := transport.MachineID(r.Intn(64))
		envs := v2Batch(r, from, to, r.Intn(40))
		enc, err := AppendBatchV2(nil, r.Intn(1000), from, to, envs, c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, enc); err != nil {
			t.Fatal(err)
		}
		if got := FrameSize(len(enc)); got != buf.Len() {
			t.Errorf("FrameSize(%d) = %d, actual frame is %d bytes", len(enc), got, buf.Len())
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for _, p := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame payload: got %d bytes, want %d", len(got), len(p))
		}
	}
	if _, err := ReadFrame(r); err == nil {
		t.Error("read past final frame succeeded")
	}
}

func TestJobHeaderRoundTrip(t *testing.T) {
	r := rng.New(19)
	c := pairCodec{}
	for trial := 0; trial < 100; trial++ {
		job := r.Uint64() >> uint(r.Intn(64))
		step := r.Intn(1000)
		from := transport.MachineID(r.Intn(8))
		to := transport.MachineID(r.Intn(8))
		envs := v2Batch(r, from, to, r.Intn(20))

		// Job header wraps either batch version byte-identically.
		for _, v := range []byte{BatchV1, BatchV2} {
			enc := AppendJobHeader(nil, job)
			hdr := len(enc)
			var err error
			if v == BatchV1 {
				enc, err = AppendBatchV1(enc, step, from, envs, c)
			} else {
				enc, err = AppendBatchV2(enc, step, from, to, envs, c)
			}
			if err != nil {
				t.Fatal(err)
			}
			gotJob, rest, jobbed, err := PeelJobHeader(enc)
			if err != nil || !jobbed || gotJob != job {
				t.Fatalf("peel: job=%d jobbed=%v err=%v, want job=%d", gotJob, jobbed, err, job)
			}
			if len(rest) != len(enc)-hdr {
				t.Fatalf("peel v%d: rest %d bytes, want %d", v, len(rest), len(enc)-hdr)
			}
			gotStep, gotFrom, gotEnvs, err := DecodeBatchAnyInto(rest, c, from, to, nil)
			if err != nil {
				t.Fatal(err)
			}
			if gotStep != step || gotFrom != from || len(gotEnvs) != len(envs) {
				t.Fatalf("inner batch v%d: got (%d,%d,%d), want (%d,%d,%d)",
					v, gotStep, gotFrom, len(gotEnvs), step, from, len(envs))
			}
			for i := range envs {
				if gotEnvs[i] != envs[i] {
					t.Fatalf("envelope %d: got %+v, want %+v", i, gotEnvs[i], envs[i])
				}
			}
		}
	}
}

func TestJobHeaderBarePassthrough(t *testing.T) {
	c := pairCodec{}
	enc, err := AppendBatchV2(nil, 5, 1, 2, nil, c)
	if err != nil {
		t.Fatal(err)
	}
	job, rest, jobbed, err := PeelJobHeader(enc)
	if err != nil || jobbed || job != 0 {
		t.Fatalf("bare frame: job=%d jobbed=%v err=%v, want passthrough", job, jobbed, err)
	}
	if &rest[0] != &enc[0] || len(rest) != len(enc) {
		t.Fatal("bare frame: rest does not alias src")
	}
	// Abort frames are job-agnostic: 0xFF never collides with 0x03.
	ab := AppendAbort(nil, 7, 3)
	if _, _, jobbed, err := PeelJobHeader(ab); err != nil || jobbed {
		t.Fatalf("abort frame peeled as jobbed (err=%v)", err)
	}
}

func TestJobHeaderRejectsCorruption(t *testing.T) {
	// Truncated uvarint after the marker.
	for _, src := range [][]byte{
		{BatchJobbed},
		{BatchJobbed, 0x80},
		{BatchJobbed, 0xFF, 0xFF},
	} {
		if _, _, jobbed, err := PeelJobHeader(src); err == nil || !jobbed {
			t.Errorf("corrupt header % x: jobbed=%v err=%v, want error", src, jobbed, err)
		}
	}
	// A jobbed frame handed to a job-less decoder is an unknown version.
	c := pairCodec{}
	enc, err := AppendBatchV1(AppendJobHeader(nil, 42), 1, 0, nil, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeBatchAnyInto(enc, c, 0, 1, nil); err == nil {
		t.Error("job-less decoder accepted a jobbed frame")
	}
}
