package wire

import (
	"bufio"
	"bytes"
	"testing"

	"kmachine/internal/rng"
	"kmachine/internal/transport"
)

// pairMsg is a minimal payload for envelope/batch tests.
type pairMsg struct {
	A int64
	B uint64
}

type pairCodec struct{}

func (pairCodec) Append(dst []byte, m pairMsg) ([]byte, error) {
	dst = AppendVarint(dst, m.A)
	return AppendUvarint(dst, m.B), nil
}

func (pairCodec) Decode(src []byte) (pairMsg, int, error) {
	a, n, err := Varint(src)
	if err != nil {
		return pairMsg{}, 0, err
	}
	b, m, err := Uvarint(src[n:])
	if err != nil {
		return pairMsg{}, 0, err
	}
	return pairMsg{A: a, B: b}, n + m, nil
}

func TestVarintRoundTrip(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		u := r.Uint64() >> uint(r.Intn(64))
		s := int64(r.Uint64()) >> uint(r.Intn(64))
		buf := AppendUvarint(nil, u)
		gu, n, err := Uvarint(buf)
		if err != nil || gu != u || n != len(buf) {
			t.Fatalf("uvarint %d: got %d (n=%d, err=%v)", u, gu, n, err)
		}
		buf = AppendVarint(nil, s)
		gs, n, err := Varint(buf)
		if err != nil || gs != s || n != len(buf) {
			t.Fatalf("varint %d: got %d (n=%d, err=%v)", s, gs, n, err)
		}
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	r := rng.New(7)
	c := pairCodec{}
	for i := 0; i < 2000; i++ {
		want := transport.Envelope[pairMsg]{
			From:  transport.MachineID(r.Intn(1 << 20)),
			To:    transport.MachineID(r.Intn(1 << 20)),
			Words: int32(r.Intn(1 << 30)),
			Msg:   pairMsg{A: int64(r.Uint64()) >> uint(r.Intn(64)), B: r.Uint64()},
		}
		buf, err := AppendEnvelope(nil, want, c)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeEnvelope(buf, c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || n != len(buf) {
			t.Fatalf("round trip: got %+v (n=%d), want %+v (len=%d)", got, n, want, len(buf))
		}
	}
}

func TestEnvelopeRejectsNegativeHeaders(t *testing.T) {
	c := pairCodec{}
	for _, e := range []transport.Envelope[pairMsg]{
		{From: -1, To: 0, Words: 1},
		{From: 0, To: -2, Words: 1},
		{From: 0, To: 0, Words: -1},
	} {
		if _, err := AppendEnvelope(nil, e, c); err == nil {
			t.Errorf("envelope %+v encoded without error", e)
		}
	}
}

func TestBatchRoundTripProperty(t *testing.T) {
	r := rng.New(42)
	c := pairCodec{}
	for trial := 0; trial < 200; trial++ {
		step := r.Intn(1 << 16)
		from := transport.MachineID(r.Intn(64))
		envs := make([]transport.Envelope[pairMsg], r.Intn(50))
		for i := range envs {
			envs[i] = transport.Envelope[pairMsg]{
				From:  from,
				To:    transport.MachineID(r.Intn(64)),
				Words: int32(r.Intn(1000)),
				Msg:   pairMsg{A: int64(r.Uint64()) >> 3, B: r.Uint64()},
			}
		}
		buf, err := AppendBatch(nil, step, from, envs, c)
		if err != nil {
			t.Fatal(err)
		}
		gotStep, gotFrom, gotEnvs, err := DecodeBatch(buf, c)
		if err != nil {
			t.Fatal(err)
		}
		if gotStep != step || gotFrom != from || len(gotEnvs) != len(envs) {
			t.Fatalf("batch header: got (%d,%d,%d), want (%d,%d,%d)",
				gotStep, gotFrom, len(gotEnvs), step, from, len(envs))
		}
		for i := range envs {
			if gotEnvs[i] != envs[i] {
				t.Fatalf("envelope %d: got %+v, want %+v", i, gotEnvs[i], envs[i])
			}
		}
	}
}

func TestBatchRejectsCorruption(t *testing.T) {
	c := pairCodec{}
	buf, err := AppendBatch(nil, 3, 1, []transport.Envelope[pairMsg]{
		{From: 1, To: 2, Words: 4, Msg: pairMsg{A: -9, B: 11}},
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeBatch(buf[:len(buf)-1], c); err == nil {
		t.Error("truncated batch decoded without error")
	}
	if _, _, _, err := DecodeBatch(append(buf, 0xff), c); err == nil {
		t.Error("batch with trailing bytes decoded without error")
	}
	huge := AppendUvarint(nil, 0)
	huge = AppendUvarint(huge, 0)
	huge = AppendUvarint(huge, 1<<40) // absurd count, no envelopes
	if _, _, _, err := DecodeBatch(huge, c); err == nil {
		t.Error("batch with absurd count decoded without error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for _, p := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame payload: got %d bytes, want %d", len(got), len(p))
		}
	}
	if _, err := ReadFrame(r); err == nil {
		t.Error("read past final frame succeeded")
	}
}
