// Package transport defines the substrate the k-machine cluster runs
// on: the envelope types that cross machine boundaries and the
// Transport interface that moves one superstep's batched envelopes
// between machines.
//
// The package deliberately knows nothing about algorithms, graphs, or
// cost accounting. The paper's round/word accounting (§1.1) lives in
// internal/core and is computed from the outgoing envelope batches
// *before* they are handed to a Transport, so Stats are bit-identical
// on every implementation — the Klauck–Nanongkai–Pandurangan–Robinson
// conversion results (arXiv:1311.6209) are exactly about porting
// message-passing algorithms across substrates without changing their
// communication cost, and the accounting split enforces that here.
//
// Implementations:
//
//   - transport/inmem — the in-process loopback used by simulations and
//     tests (the default);
//   - transport/tcp — each machine has its own listener and dials every
//     peer over real net.Conns, with per-superstep batch framing
//     (transport/wire) and a coordinator-driven barrier;
//   - transport/node — the standalone runtime that drives ONE machine
//     of a cluster whose peers live in other processes (cmd/kmnode).
package transport

import (
	"context"
	"fmt"

	"kmachine/internal/obs"
)

// MachineID identifies one of the k machines.
type MachineID int32

// Envelope is one message in flight. Words is its size in machine words
// for bandwidth accounting; From is stamped by the cluster before the
// envelope reaches a Transport.
type Envelope[M any] struct {
	From, To MachineID
	Words    int32
	Msg      M
}

// Transport moves one superstep's envelopes between the k machines.
//
// Exchange is called once per superstep with outs[i] holding the
// envelopes machine i emitted, already validated (To in range, Words
// >= 0) and stamped with From. It returns inboxes[j], the envelopes
// delivered to machine j for the next superstep, assembled in sender-ID
// order (self-addressed envelopes of machine j appear at position j of
// that order). Exchange is a barrier: it returns only after every
// machine's batch has been routed, so a superstep cannot overtake a
// straggler.
//
// Failure contract. ctx bounds the superstep: implementations that can
// block on remote machines must observe ctx's deadline and cancellation
// so a crashed or wedged peer surfaces as an error within the deadline
// instead of an indefinite hang. When the failure can be attributed to
// a specific machine, the returned error wraps a *MachineError naming
// it and the superstep. Exchange is not restartable after an error: an
// implementation may tear down its resources to unblock peers (the tcp
// mesh does), so the caller must treat any Exchange error as fatal for
// the run and Close the transport.
//
// A Transport carries payloads verbatim and must preserve both the
// per-sender envelope order and the Words field — the accounting in
// core depends on it.
//
// Buffer ownership. A Transport may recycle inbox storage: the inboxes
// returned by Exchange (both the outer slice and the envelope storage
// it points into) remain valid only until the second-following Exchange
// call on the same transport. Implementations double-buffer so that the
// previous superstep's inboxes — and any outgoing envelopes that alias
// them, e.g. second-hop forwards — are never overwritten while the
// current superstep is assembled; callers that need an envelope beyond
// that window must copy it. Symmetrically, outs stays owned by the
// caller: a Transport must finish reading it before Exchange returns
// and must not retain or mutate it afterwards, so machines may recycle
// their outbox slices across supersteps.
type Transport[M any] interface {
	Exchange(ctx context.Context, step int, outs [][]Envelope[M]) (inboxes [][]Envelope[M], err error)

	// Close releases transport resources (listeners, connections) and
	// unblocks any I/O still pending on them. It is safe to call more
	// than once and from a goroutine other than the one in Exchange;
	// Exchange must not be called after Close.
	Close() error
}

// BatchSender is the narrow eager-emission capability a machine's
// per-peer emitter needs: hand one finished, validated batch for one
// peer to the substrate while the superstep is still computing. It is
// the subset of Streamer that core.Emitter holds, so the engine-side
// emitter does not need the whole superstep-lifecycle surface.
//
// SendBatch may be called concurrently for different senders (one
// goroutine per `from` at a time), only between BeginSuperstep and
// FinishSuperstep of the same superstep, at most once per (from, to)
// pair per superstep, never with from == to, and only with envelopes
// already validated (To == to, Words >= 0) and stamped with From. An
// error means the batch was NOT accepted and the run is failing; the
// caller must surface it and stop emitting.
type BatchSender[M any] interface {
	SendBatch(from, to MachineID, batch []Envelope[M]) error
}

// Streamer is the optional streaming-superstep capability of a
// Transport: instead of the single Exchange barrier, a superstep may be
// opened with BeginSuperstep, fed finished per-peer batches eagerly via
// SendBatch while machines are still computing, and closed with
// FinishSuperstep, which ships whatever was not streamed and returns
// the assembled inboxes. Like TraceSink and WireMeter, callers discover
// it by type assertion and additionally gate on CanStream(), so a
// wrapper (chaos) can expose the methods while delegating the decision
// to its inner transport.
//
// The relaxed schedule must not be observable in the results: inboxes
// come back in the same sender-ID order, with the same per-sender
// envelope order, as an Exchange carrying the identical envelopes would
// produce — a streamed batch for peer j simply IS sender i's
// contribution to inbox j (the engine forbids mixing a streamed batch
// and leftover rest envelopes for the same (from, to) pair in one
// superstep). FinishSuperstep is the superstep's barrier: it returns
// only after every batch of the superstep (streamed or rest) has been
// routed, and it carries the Exchange failure contract (ctx deadline /
// cancellation, *MachineError attribution, fatal-on-error).
//
// Buffer ownership for streamed batches: the caller keeps ownership of
// a batch slice handed to SendBatch but must not mutate or recycle it
// until FinishSuperstep for that superstep returns (the tcp substrate
// encodes it concurrently with the remaining compute); the transport
// must not retain the slice after FinishSuperstep returns. rest and the
// returned inboxes follow the Exchange ownership rules verbatim.
//
// A superstep opened with BeginSuperstep and never finished (the run
// terminated quiescently, or aborted on an error) is abandoned by
// Close, which unblocks any eagerly-parked I/O.
type Streamer[M any] interface {
	BatchSender[M]

	// CanStream reports whether the transport actually supports the
	// streaming path right now (a wrapper returns its inner transport's
	// answer). When false, the other methods must not be called.
	CanStream() bool

	// BeginSuperstep opens superstep step: the transport arms eager
	// receive on all peers and accepts SendBatch calls until
	// FinishSuperstep.
	BeginSuperstep(ctx context.Context, step int) error

	// FinishSuperstep ships the not-yet-streamed remainder (rest[i] =
	// machine i's leftover envelopes, self-addressed ones included),
	// waits for every machine's batches to be routed, and returns the
	// assembled inboxes — the streaming superstep's barrier.
	FinishSuperstep(ctx context.Context, step int, rest [][]Envelope[M]) (inboxes [][]Envelope[M], err error)
}

// MachineError attributes a distributed-runtime failure to the machine
// it was observed against and the superstep in which it surfaced. The
// tcp substrate wraps every per-peer receive/send failure (including
// os.ErrDeadlineExceeded from an expired superstep deadline) in one, so
// "peer j died" reaches the caller as a bounded, attributed error
// rather than an anonymous hang; the chaos transport synthesizes them
// for injected faults. Extract with errors.As; Unwrap exposes the
// underlying cause for errors.Is checks.
type MachineError struct {
	// Machine is the peer the failure is attributed to — the machine
	// that crashed, wedged, or was killed, not the one reporting.
	Machine MachineID
	// Superstep is the superstep in which the failure surfaced.
	Superstep int
	// Job, when nonzero, is the scheduler-assigned job the failure
	// surfaced in. Single-run transports leave it zero; job-attached
	// endpoints of a resident mesh stamp it so a multi-job daemon can
	// attribute the failure to exactly one submission.
	Job uint64
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *MachineError) Error() string {
	if e.Job != 0 {
		return fmt.Sprintf("machine %d failed in superstep %d (job %d): %v", e.Machine, e.Superstep, e.Job, e.Err)
	}
	return fmt.Sprintf("machine %d failed in superstep %d: %v", e.Machine, e.Superstep, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *MachineError) Unwrap() error { return e.Err }

// WireStats counts what a substrate physically shipped: whole frames
// and their actual byte sizes (length prefixes included), data and
// control plane alike. It is the measured counterpart of the paper's
// word-based cost model — Stats.Words counts model words before any
// transport touches an envelope, WireStats counts the bytes a real
// socket carried — and comparing the two quantifies both the encoding
// efficiency of the wire format and the protocol overhead (barrier and
// report/verdict frames) that the model abstracts away. The loopback
// transport ships nothing and reports zeros by not implementing
// WireMeter at all.
type WireStats struct {
	// FramesSent/FramesRecv count whole frames shipped and received.
	FramesSent, FramesRecv int64
	// BytesSent/BytesRecv are the frames' on-wire sizes: payload plus
	// length prefix.
	BytesSent, BytesRecv int64
	// PerPeer, when the substrate tracks it, breaks the totals down by
	// peer machine ID (slice index; the entry at an endpoint's own ID
	// stays zero — machines don't dial themselves). Aggregating
	// transports (the tcp cluster transport, chaos) sum per-endpoint
	// breakdowns, so entry j then reads "traffic exchanged with machine
	// j, summed over all endpoints". Nil when the substrate doesn't
	// track per-peer traffic.
	PerPeer []PeerWireStats
}

// PeerWireStats is one peer's share of an endpoint's wire traffic.
type PeerWireStats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
}

// Plus returns the field-wise sum, for aggregating per-endpoint
// counters into a cluster total. PerPeer breakdowns merge entry-wise
// (the result is sized to the longer of the two).
func (w WireStats) Plus(o WireStats) WireStats {
	sum := WireStats{
		FramesSent: w.FramesSent + o.FramesSent,
		FramesRecv: w.FramesRecv + o.FramesRecv,
		BytesSent:  w.BytesSent + o.BytesSent,
		BytesRecv:  w.BytesRecv + o.BytesRecv,
	}
	if len(w.PerPeer) > 0 || len(o.PerPeer) > 0 {
		n := len(w.PerPeer)
		if len(o.PerPeer) > n {
			n = len(o.PerPeer)
		}
		sum.PerPeer = make([]PeerWireStats, n)
		for i := range sum.PerPeer {
			var a, b PeerWireStats
			if i < len(w.PerPeer) {
				a = w.PerPeer[i]
			}
			if i < len(o.PerPeer) {
				b = o.PerPeer[i]
			}
			sum.PerPeer[i] = PeerWireStats{
				FramesSent: a.FramesSent + b.FramesSent,
				FramesRecv: a.FramesRecv + b.FramesRecv,
				BytesSent:  a.BytesSent + b.BytesSent,
				BytesRecv:  a.BytesRecv + b.BytesRecv,
			}
		}
	}
	return sum
}

// WireMeter is implemented by transports that count bytes-on-wire
// (transport/tcp; the chaos wrapper forwards to its inner transport).
// Callers discover it with a type assertion and treat absence as "this
// substrate ships no physical bytes".
type WireMeter interface {
	WireStats() WireStats
}

// TraceSink is implemented by transports that can record per-frame
// telemetry spans (obs.PhaseFrameWrite/Read/Decode) into a recorder —
// transport/tcp's pipeline workers do; the chaos wrapper forwards to
// its inner transport. Callers discover it with a type assertion
// (core.RunOverWire installs Config.Recorder this way) and treat
// absence as "this substrate has no frame-level detail to offer".
// SetRecorder must be called before the first Exchange; the transport
// reads the recorder without synchronisation on its hot paths.
type TraceSink interface {
	SetRecorder(r obs.Recorder)
}

// Kind names a Transport implementation for configuration surfaces
// (core.Config.Transport, kmachine.RunConfig.Transport).
type Kind string

const (
	// Default resolves to InMem.
	Default Kind = ""
	// InMem is the in-process loopback transport.
	InMem Kind = "inmem"
	// TCP runs every machine as its own listener+dialer over loopback
	// TCP connections.
	TCP Kind = "tcp"
	// TCPWireV1 is TCP shipping the legacy v1 batch encoding instead of
	// the compact v2 — the A/B surface that lets experiments measure
	// the v2 format's bytes-on-wire savings on otherwise identical
	// runs. Stats are bit-identical across wire versions by
	// construction; only WireStats differ.
	TCPWireV1 Kind = "tcp/wire-v1"
)
