// Package inmem implements the in-process loopback Transport: the
// routing loop that used to be hard-wired into core.Cluster.Run,
// extracted behind the transport.Transport interface. It is the default
// substrate for simulations and tests: envelopes never leave the
// process and delivery is a pure slice shuffle.
//
// Exchange assembles inboxes count-then-place: one pass over the
// outboxes counts the per-destination envelopes, the k inboxes are then
// carved out of a single flat buffer, and a second pass places every
// envelope at its final position. The flat buffer and the inbox headers
// are double-buffered and recycled across supersteps (the transport
// ownership rule), so a steady-state superstep performs no allocation
// at all once the buffers have grown to the run's working set.
package inmem

import (
	"context"
	"fmt"
	"sync/atomic"

	"kmachine/internal/transport"
)

// exchangeBuf is one generation of recycled inbox storage.
type exchangeBuf[M any] struct {
	flat    []transport.Envelope[M]
	inboxes [][]transport.Envelope[M]
}

// Transport is the loopback implementation of transport.Transport.
type Transport[M any] struct {
	k      int
	closed bool

	// bufs are the two inbox-buffer generations: gen selects the one the
	// next Exchange assembles into, so the inboxes handed out by the
	// previous call — and any envelopes still aliasing them — stay
	// untouched while the current superstep is built.
	bufs [2]exchangeBuf[M]
	gen  int

	counts []int // per-destination envelope counts / placement cursors
	starts []int // prefix offsets of each inbox within flat

	// Counter-only observability (see Counters): the loopback ships no
	// physical bytes and records no frame spans, but counting its work
	// gives instrumented runs a shape to compare across substrates.
	// Atomics only because a debug plane may snapshot mid-run; Exchange
	// itself is serial.
	exchanges, envelopes atomic.Int64

	// Streaming-superstep staging (transport.Streamer): SendBatch runs
	// concurrently, one goroutine per sender, so the staged batches are
	// indexed [from*k+to] and each sender records the pairs it touched
	// in its own list — no two goroutines ever write the same slot.
	// FinishSuperstep folds the staged batches into the normal
	// count-then-place assembly and resets the staging via the pair
	// lists, keeping the steady state allocation-free.
	streaming bool
	staged    [][]transport.Envelope[M] // [from*k+to], nil when not staged
	strPairs  [][]int32                 // per-sender list of staged destinations
}

// New returns a loopback transport for a k-machine cluster.
func New[M any](k int) *Transport[M] {
	if k < 2 {
		panic(fmt.Sprintf("inmem: need k >= 2 machines, got %d", k))
	}
	return &Transport[M]{
		k:      k,
		counts: make([]int, k),
		starts: make([]int, k+1),
	}
}

// Exchange routes outs into per-destination inboxes. Iterating senders
// in machine order makes inbox assembly deterministic and sender-ID
// ordered, matching the Transport contract; the returned inboxes obey
// the contract's ownership rule (valid until the second-following
// Exchange). The loopback never blocks, so ctx is only checked once on
// entry — a canceled run stops routing immediately but can never hang
// here.
func (t *Transport[M]) Exchange(ctx context.Context, step int, outs [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("inmem: superstep %d canceled: %w", step, err)
	}
	if t.closed {
		return nil, fmt.Errorf("inmem: Exchange on closed transport (superstep %d)", step)
	}
	if len(outs) != t.k {
		return nil, fmt.Errorf("inmem: got %d outboxes for a %d-machine cluster", len(outs), t.k)
	}

	counts := t.counts
	for i := range counts {
		counts[i] = 0
	}
	total := 0
	for i := range outs {
		for j := range outs[i] {
			to := outs[i][j].To
			if to < 0 || int(to) >= t.k {
				return nil, fmt.Errorf("inmem: envelope to invalid machine %d (superstep %d)", to, step)
			}
			counts[to]++
		}
		total += len(outs[i])
	}

	b := &t.bufs[t.gen]
	t.gen ^= 1
	if cap(b.flat) < total {
		b.flat = make([]transport.Envelope[M], total)
	}
	flat := b.flat[:total]
	if b.inboxes == nil {
		b.inboxes = make([][]transport.Envelope[M], t.k)
	}

	starts := t.starts
	starts[0] = 0
	for j := 0; j < t.k; j++ {
		starts[j+1] = starts[j] + counts[j]
		counts[j] = starts[j] // reuse counts as the placement cursors
	}
	for i := range outs {
		for j := range outs[i] {
			to := outs[i][j].To
			flat[counts[to]] = outs[i][j]
			counts[to]++
		}
	}
	for j := 0; j < t.k; j++ {
		// Cap-limit each inbox so an append by a misbehaving caller
		// cannot clobber its neighbour's envelopes.
		b.inboxes[j] = flat[starts[j]:starts[j+1]:starts[j+1]]
	}
	t.exchanges.Add(1)
	t.envelopes.Add(int64(total))
	return b.inboxes, nil
}

// Counters is the loopback's counter-only observability: how many
// Exchange barriers completed and how many envelopes they routed. It is
// the loopback analogue of the socket substrate's frame counters — no
// bytes, no timings (a slice shuffle has nothing worth timing), just
// the shape — which is what lets substrate-equivalence tests assert
// trace-shape parity: on identical runs, Exchanges here equals the
// completed superstep count on tcp, and Envelopes the envelopes its
// batches carried.
type Counters struct {
	// Exchanges counts completed Exchange calls (one per superstep).
	Exchanges int64
	// Envelopes counts every envelope routed across all exchanges.
	Envelopes int64
}

// Counters returns a snapshot of the transport's counters. Safe to call
// at any time, including mid-run.
func (t *Transport[M]) Counters() Counters {
	return Counters{Exchanges: t.exchanges.Load(), Envelopes: t.envelopes.Load()}
}

// CanStream implements transport.Streamer: the loopback always can.
func (t *Transport[M]) CanStream() bool { return true }

// BeginSuperstep implements transport.Streamer. There is no wire to
// arm; it just opens the staging area for SendBatch.
func (t *Transport[M]) BeginSuperstep(ctx context.Context, step int) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("inmem: superstep %d canceled: %w", step, err)
	}
	if t.closed {
		return fmt.Errorf("inmem: BeginSuperstep on closed transport (superstep %d)", step)
	}
	if t.staged == nil {
		t.staged = make([][]transport.Envelope[M], t.k*t.k)
		t.strPairs = make([][]int32, t.k)
		for i := range t.strPairs {
			t.strPairs[i] = make([]int32, 0, t.k)
		}
	}
	t.streaming = true
	return nil
}

// SendBatch implements transport.Streamer. It only stages the batch —
// the caller owns the slice until FinishSuperstep, per the Streamer
// contract, and the loopback copies envelopes out of it there. Safe for
// concurrent calls with distinct senders: each sender goroutine writes
// only its own staging slots and pair list.
func (t *Transport[M]) SendBatch(from, to transport.MachineID, batch []transport.Envelope[M]) error {
	if !t.streaming {
		return fmt.Errorf("inmem: SendBatch outside an open streaming superstep")
	}
	if from < 0 || int(from) >= t.k || to < 0 || int(to) >= t.k || from == to {
		return fmt.Errorf("inmem: SendBatch with invalid pair (%d -> %d)", from, to)
	}
	idx := int(from)*t.k + int(to)
	if t.staged[idx] != nil {
		return fmt.Errorf("inmem: duplicate SendBatch for pair (%d -> %d)", from, to)
	}
	t.staged[idx] = batch
	t.strPairs[from] = append(t.strPairs[from], int32(to))
	return nil
}

// FinishSuperstep implements transport.Streamer: the same
// count-then-place assembly as Exchange, with each sender's staged
// batches taking the place of its (forbidden) rest envelopes for those
// destinations. Iterating senders in machine order keeps inbox assembly
// sender-ID ordered, so the result is byte-identical to an Exchange
// carrying the same envelopes.
func (t *Transport[M]) FinishSuperstep(ctx context.Context, step int, rest [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	defer func() {
		for i := range t.strPairs {
			for _, to := range t.strPairs[i] {
				t.staged[i*t.k+int(to)] = nil
			}
			t.strPairs[i] = t.strPairs[i][:0]
		}
		t.streaming = false
	}()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("inmem: superstep %d canceled: %w", step, err)
	}
	if t.closed {
		return nil, fmt.Errorf("inmem: FinishSuperstep on closed transport (superstep %d)", step)
	}
	if !t.streaming {
		return nil, fmt.Errorf("inmem: FinishSuperstep without BeginSuperstep (superstep %d)", step)
	}
	if len(rest) != t.k {
		return nil, fmt.Errorf("inmem: got %d outboxes for a %d-machine cluster", len(rest), t.k)
	}

	counts := t.counts
	for i := range counts {
		counts[i] = 0
	}
	total := 0
	for i := range rest {
		for _, to := range t.strPairs[i] {
			n := len(t.staged[i*t.k+int(to)])
			counts[to] += n
			total += n
		}
		for j := range rest[i] {
			to := rest[i][j].To
			if to < 0 || int(to) >= t.k {
				return nil, fmt.Errorf("inmem: envelope to invalid machine %d (superstep %d)", to, step)
			}
			counts[to]++
		}
		total += len(rest[i])
	}

	b := &t.bufs[t.gen]
	t.gen ^= 1
	if cap(b.flat) < total {
		b.flat = make([]transport.Envelope[M], total)
	}
	flat := b.flat[:total]
	if b.inboxes == nil {
		b.inboxes = make([][]transport.Envelope[M], t.k)
	}

	starts := t.starts
	starts[0] = 0
	for j := 0; j < t.k; j++ {
		starts[j+1] = starts[j] + counts[j]
		counts[j] = starts[j]
	}
	for i := range rest {
		for _, to := range t.strPairs[i] {
			batch := t.staged[i*t.k+int(to)]
			copy(flat[counts[to]:], batch)
			counts[to] += len(batch)
		}
		for j := range rest[i] {
			to := rest[i][j].To
			flat[counts[to]] = rest[i][j]
			counts[to]++
		}
	}
	for j := 0; j < t.k; j++ {
		b.inboxes[j] = flat[starts[j]:starts[j+1]:starts[j+1]]
	}
	t.exchanges.Add(1)
	t.envelopes.Add(int64(total))
	return b.inboxes, nil
}

// Close implements transport.Transport.
func (t *Transport[M]) Close() error {
	t.closed = true
	return nil
}
