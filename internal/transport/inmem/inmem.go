// Package inmem implements the in-process loopback Transport: the
// routing loop that used to be hard-wired into core.Cluster.Run,
// extracted behind the transport.Transport interface. It is the default
// substrate for simulations and tests: envelopes never leave the
// process and delivery is a pure slice shuffle.
package inmem

import (
	"fmt"

	"kmachine/internal/transport"
)

// Transport is the loopback implementation of transport.Transport.
type Transport[M any] struct {
	k      int
	closed bool
}

// New returns a loopback transport for a k-machine cluster.
func New[M any](k int) *Transport[M] {
	if k < 2 {
		panic(fmt.Sprintf("inmem: need k >= 2 machines, got %d", k))
	}
	return &Transport[M]{k: k}
}

// Exchange routes outs into per-destination inboxes. Iterating senders
// in machine order makes inbox assembly deterministic and sender-ID
// ordered, matching the Transport contract.
func (t *Transport[M]) Exchange(step int, outs [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	if t.closed {
		return nil, fmt.Errorf("inmem: Exchange on closed transport (superstep %d)", step)
	}
	if len(outs) != t.k {
		return nil, fmt.Errorf("inmem: got %d outboxes for a %d-machine cluster", len(outs), t.k)
	}
	inboxes := make([][]transport.Envelope[M], t.k)
	for i := range outs {
		for _, e := range outs[i] {
			inboxes[e.To] = append(inboxes[e.To], e)
		}
	}
	return inboxes, nil
}

// Close implements transport.Transport.
func (t *Transport[M]) Close() error {
	t.closed = true
	return nil
}
