package tcp

import (
	"bufio"
	"net"
)

// bufWriter / bufReader are the buffered halves of a connection; named
// so the Endpoint fields read as intent rather than bufio plumbing.
type bufWriter = bufio.Writer
type bufReader = bufio.Reader

const connBufSize = 64 << 10

func newDataConn(c net.Conn) *dataConn {
	if tc, ok := c.(*net.TCPConn); ok {
		// Batches are written once per superstep and flushed whole;
		// Nagle only adds latency to the barrier frames.
		tc.SetNoDelay(true)
	}
	return &dataConn{
		c: c,
		w: bufio.NewWriterSize(c, connBufSize),
		r: bufio.NewReaderSize(c, connBufSize),
	}
}
