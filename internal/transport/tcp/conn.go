package tcp

import (
	"bufio"
	"net"
	"time"

	"kmachine/internal/transport/wire"
)

// bufWriter / bufReader are the buffered halves of a connection; named
// so the Endpoint fields read as intent rather than bufio plumbing.
type bufWriter = bufio.Writer
type bufReader = bufio.Reader

const connBufSize = 64 << 10

func newDataConn(c net.Conn) *dataConn {
	if tc, ok := c.(*net.TCPConn); ok {
		// Batches are written once per superstep and flushed whole;
		// Nagle only adds latency to the barrier frames.
		tc.SetNoDelay(true)
	}
	return &dataConn{
		c: c,
		w: bufio.NewWriterSize(c, connBufSize),
		r: bufio.NewReaderSize(c, connBufSize),
	}
}

// writeFrameLocked ships one frame under the connection's write mutex:
// the writer worker and a concurrent blame broadcast (castBlame) may
// target the same connection, and the mutex is what keeps their frames
// whole on the stream.
func (dc *dataConn) writeFrameLocked(dl time.Time, payload []byte) error {
	dc.wmu.Lock()
	defer dc.wmu.Unlock()
	return dc.writeFrame(dl, payload)
}

// tryWriteFrameLocked is writeFrameLocked for callers that must not
// block on the mutex: if the owning writer is mid-frame (or wedged in
// one), it reports false without writing. The blame broadcast uses it —
// a teardown must never wait on a connection whose writer is stuck.
func (dc *dataConn) tryWriteFrameLocked(dl time.Time, payload []byte) (bool, error) {
	if !dc.wmu.TryLock() {
		return false, nil
	}
	defer dc.wmu.Unlock()
	return true, dc.writeFrame(dl, payload)
}

func (dc *dataConn) writeFrame(dl time.Time, payload []byte) error {
	if err := dc.c.SetWriteDeadline(dl); err != nil {
		return err
	}
	if err := wire.WriteFrame(dc.w, payload); err != nil {
		return err
	}
	return dc.w.Flush()
}
