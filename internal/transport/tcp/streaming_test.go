package tcp

// Streamer conformance for the TCP mesh: driving the relaxed-barrier
// API directly — BeginSuperstep, a mix of eager SendBatch calls and
// leftovers handed to FinishSuperstep — must assemble exactly the
// inboxes the lockstep loopback Exchange produces for the same
// traffic, superstep after superstep. This pins the two invariants the
// engine's oracle relies on at the transport layer: one frame per
// (src,dst) pair regardless of when the batch was dispatched, and
// sender-ID-ordered inbox merge regardless of arrival order.

import (
	"context"
	"reflect"
	"testing"

	"kmachine/internal/rng"
	"kmachine/internal/transport"
	"kmachine/internal/transport/inmem"
)

func TestTCPStreamingMatchesLoopback(t *testing.T) {
	const k = 5
	tr, err := New[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if !tr.CanStream() {
		t.Fatal("TCP transport does not advertise streaming")
	}
	lb := inmem.New[testMsg](k)

	ctx := context.Background()
	rT, rL := rng.New(99), rng.New(99)
	for step := 0; step < 30; step++ {
		outsT := randomOuts(rT, k)
		outsL := randomOuts(rL, k)

		if err := tr.BeginSuperstep(ctx, step); err != nil {
			t.Fatalf("superstep %d: begin: %v", step, err)
		}
		// Split each outbox by destination; dispatch even-numbered peers
		// eagerly mid-"compute", leave odd peers and self-addressed
		// envelopes for the finish — both paths must land identically.
		rest := make([][]transport.Envelope[testMsg], k)
		for i := 0; i < k; i++ {
			perDest := make([][]transport.Envelope[testMsg], k)
			for _, env := range outsT[i] {
				perDest[env.To] = append(perDest[env.To], env)
			}
			for j := 0; j < k; j++ {
				if len(perDest[j]) == 0 {
					continue
				}
				if j != i && j%2 == 0 {
					if err := tr.SendBatch(transport.MachineID(i), transport.MachineID(j), perDest[j]); err != nil {
						t.Fatalf("superstep %d: send %d->%d: %v", step, i, j, err)
					}
				} else {
					rest[i] = append(rest[i], perDest[j]...)
				}
			}
		}
		got, err := tr.FinishSuperstep(ctx, step, rest)
		if err != nil {
			t.Fatalf("superstep %d: finish: %v", step, err)
		}
		want, err := lb.Exchange(ctx, step, outsL)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k; j++ {
			if len(got[j]) == 0 && len(want[j]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got[j], want[j]) {
				t.Fatalf("superstep %d inbox %d:\n streamed: %+v\n lockstep: %+v", step, j, got[j], want[j])
			}
		}
	}
	if w := tr.WireStats(); w.FramesSent == 0 {
		t.Error("streamed supersteps shipped no frames — traffic bypassed the wire")
	}
}
