// Package tcp runs the k-machine cluster over real sockets: every
// machine owns a net.Listener and dials every peer, giving the full
// point-to-point mesh of the model (§1.1) as k·(k-1) actual TCP
// connections. Envelopes cross machine boundaries as length-prefixed
// binary frames (transport/wire), one batch frame per (sender,
// receiver) pair per superstep — empty batches included, which is how a
// receiver knows a superstep's input is complete.
//
// Machine 0 additionally acts as the coordinator: every other machine
// holds a control connection to it, used for the superstep barrier
// (Transport.Exchange) and for the report/verdict protocol of the
// standalone runtime (transport/node).
//
// The package knows nothing about rounds or words: cost accounting
// stays in core, which is what keeps Stats bit-identical between this
// transport and the in-memory loopback.
package tcp

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"kmachine/internal/transport"
	"kmachine/internal/transport/wire"
)

// Connection-type byte carried in the HELLO frame that opens every
// dialed connection.
const (
	helloData = byte(iota)
	helloCtrl
)

// DefaultDialTimeout bounds mesh construction: peers of a standalone
// node may start seconds apart.
const DefaultDialTimeout = 10 * time.Second

type dataConn struct {
	c net.Conn
	w *wbuf
	r *rbuf
}

// wbuf/rbuf are tiny aliases to keep struct fields readable.
type wbuf = bufWriter
type rbuf = bufReader

// Endpoint is one machine's socket stack: its listener, the k-1 dialed
// data connections (writes), the k-1 accepted data connections (reads),
// and the control connection to the coordinator (or, on the
// coordinator, from every peer).
type Endpoint[M any] struct {
	id    int
	k     int
	codec wire.Codec[M]
	ln    net.Listener

	out []*dataConn // out[j]: dialed conn for writing to peer j
	in  []*dataConn // in[j]: accepted conn for reading from peer j

	ctrl     *dataConn   // id>0: connection to the coordinator
	ctrlIn   []*dataConn // id==0: ctrlIn[j] accepted from peer j
	ownQueue [][]byte    // id==0: coordinator's loopback report queue

	// Per-superstep scratch, recycled across Exchange calls (the
	// transport ownership rule). perDest/tx/frame/rx are dead once
	// Exchange returns and are single-buffered; the assembled inbox is
	// handed to the caller and double-buffered so the previous
	// superstep's envelopes survive while the next one is built.
	perDest [][]transport.Envelope[M] // outgoing split by destination
	tx      [][]byte                  // per-peer batch encode buffers
	frame   [][]byte                  // per-peer frame read buffers
	rx      [][]transport.Envelope[M] // per-peer decoded batches
	inboxes [2][]transport.Envelope[M]
	gen     int

	closeOnce sync.Once
	closeErr  error
}

// Listen opens machine id's listener on addr ("host:0" picks a free
// port). Connect must be called before the endpoint can exchange.
func Listen[M any](id, k int, addr string, codec wire.Codec[M]) (*Endpoint[M], error) {
	if k < 2 || id < 0 || id >= k {
		return nil, fmt.Errorf("tcp: invalid endpoint id %d for k=%d", id, k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: machine %d listen %s: %w", id, addr, err)
	}
	return &Endpoint[M]{
		id:      id,
		k:       k,
		codec:   codec,
		ln:      ln,
		out:     make([]*dataConn, k),
		in:      make([]*dataConn, k),
		perDest: make([][]transport.Envelope[M], k),
		tx:      make([][]byte, k),
		frame:   make([][]byte, k),
		rx:      make([][]transport.Envelope[M], k),
	}, nil
}

// Addr returns the listener's concrete address (useful with ":0").
func (e *Endpoint[M]) Addr() string { return e.ln.Addr().String() }

// ID returns the machine ID this endpoint serves.
func (e *Endpoint[M]) ID() int { return e.id }

// K returns the cluster size.
func (e *Endpoint[M]) K() int { return e.k }

// Connect completes the mesh: it dials a data connection to every peer
// in peers (indexed by machine ID; peers[e.id] is ignored) plus a
// control connection to peer 0, while accepting the mirror-image
// connections on its own listener. Dials are retried until timeout so
// nodes may start in any order.
func (e *Endpoint[M]) Connect(peers []string, timeout time.Duration) error {
	if len(peers) != e.k {
		return fmt.Errorf("tcp: machine %d got %d peer addresses for k=%d", e.id, len(peers), e.k)
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)

	wantAccept := e.k - 1 // data conns from every peer
	if e.id == 0 {
		e.ctrlIn = make([]*dataConn, e.k)
		wantAccept += e.k - 1 // plus every peer's control conn
	}

	var wg sync.WaitGroup
	var dialErr, acceptErr error

	wg.Add(1)
	go func() {
		defer wg.Done()
		dialErr = e.dialAll(peers, deadline)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		acceptErr = e.acceptAll(wantAccept, deadline)
	}()
	wg.Wait()

	if dialErr != nil || acceptErr != nil {
		e.Close()
		if dialErr != nil {
			return dialErr
		}
		return acceptErr
	}
	return nil
}

func (e *Endpoint[M]) dialAll(peers []string, deadline time.Time) error {
	dial := func(addr string, kind byte) (*dataConn, error) {
		var lastErr error
		for time.Now().Before(deadline) {
			c, err := net.DialTimeout("tcp", addr, time.Until(deadline))
			if err != nil {
				lastErr = err
				time.Sleep(20 * time.Millisecond)
				continue
			}
			dc := newDataConn(c)
			hello := []byte{kind}
			hello = wire.AppendUvarint(hello, uint64(e.id))
			if err := wire.WriteFrame(dc.w, hello); err != nil {
				c.Close()
				return nil, err
			}
			if err := dc.w.Flush(); err != nil {
				c.Close()
				return nil, err
			}
			return dc, nil
		}
		return nil, fmt.Errorf("tcp: machine %d dial %s timed out: %v", e.id, addr, lastErr)
	}
	for j := 0; j < e.k; j++ {
		if j == e.id {
			continue
		}
		dc, err := dial(peers[j], helloData)
		if err != nil {
			return err
		}
		e.out[j] = dc
	}
	if e.id != 0 {
		dc, err := dial(peers[0], helloCtrl)
		if err != nil {
			return err
		}
		e.ctrl = dc
	}
	return nil
}

func (e *Endpoint[M]) acceptAll(want int, deadline time.Time) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := e.ln.(deadliner); ok {
		d.SetDeadline(deadline)
		defer d.SetDeadline(time.Time{})
	}
	for got := 0; got < want; got++ {
		c, err := e.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: machine %d accept: %w", e.id, err)
		}
		dc := newDataConn(c)
		hello, err := wire.ReadFrame(dc.r)
		if err != nil {
			c.Close()
			return fmt.Errorf("tcp: machine %d bad hello: %w", e.id, err)
		}
		if len(hello) < 2 {
			c.Close()
			return fmt.Errorf("tcp: machine %d short hello", e.id)
		}
		from, _, err := wire.Uvarint(hello[1:])
		if err != nil || int(from) >= e.k || int(from) == e.id {
			c.Close()
			return fmt.Errorf("tcp: machine %d hello from invalid peer %d", e.id, from)
		}
		switch hello[0] {
		case helloData:
			if e.in[from] != nil {
				c.Close()
				return fmt.Errorf("tcp: machine %d got duplicate data conn from %d", e.id, from)
			}
			e.in[from] = dc
		case helloCtrl:
			if e.id != 0 {
				c.Close()
				return fmt.Errorf("tcp: machine %d (not coordinator) got control conn from %d", e.id, from)
			}
			if e.ctrlIn[from] != nil {
				c.Close()
				return fmt.Errorf("tcp: coordinator got duplicate control conn from %d", from)
			}
			e.ctrlIn[from] = dc
		default:
			c.Close()
			return fmt.Errorf("tcp: machine %d unknown hello kind %d", e.id, hello[0])
		}
	}
	return nil
}

// Exchange ships this machine's superstep batch to every peer and
// collects the peers' batches: one frame per directed pair, empty
// batches included. Self-addressed envelopes never touch a socket. The
// returned inbox is assembled in sender-ID order, self-addressed
// envelopes at position e.id, exactly like the loopback transport.
func (e *Endpoint[M]) Exchange(step int, out []transport.Envelope[M]) ([]transport.Envelope[M], error) {
	perDest := e.perDest
	for j := range perDest {
		perDest[j] = perDest[j][:0]
	}
	for _, env := range out {
		if env.To < 0 || int(env.To) >= e.k {
			e.Close() // peers are waiting on our batch; unblock them
			return nil, fmt.Errorf("tcp: machine %d envelope to invalid machine %d", e.id, env.To)
		}
		perDest[env.To] = append(perDest[env.To], env)
	}

	perSender := e.rx
	var wg sync.WaitGroup
	errs := make([]error, 2*e.k)

	// On any error, tear the endpoint down immediately: the peers (and
	// our own reader goroutines below) are blocked in reads with no
	// deadline, and closing the connections is what converts a wedged
	// cluster into an error cascade — each endpoint's failed read
	// closes it in turn. Without this a single broken connection
	// deadlocks Exchange forever.
	fail := func(slot int, err error) {
		errs[slot] = err
		e.Close()
	}

	// Writers: one batch frame per peer, flushed immediately. The
	// per-peer encode buffer is recycled: WriteFrame has copied it into
	// the connection's bufio writer before the next peer is encoded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < e.k; j++ {
			if j == e.id {
				continue
			}
			buf, err := wire.AppendBatch(e.tx[j][:0], step, transport.MachineID(e.id), perDest[j], e.codec)
			e.tx[j] = buf[:0]
			if err == nil {
				if err = wire.WriteFrame(e.out[j].w, buf); err == nil {
					err = e.out[j].w.Flush()
				}
			}
			if err != nil {
				fail(j, fmt.Errorf("tcp: machine %d send to %d (superstep %d): %w", e.id, j, step, err))
				return
			}
		}
	}()

	// Readers: every incoming connection delivers exactly one batch
	// frame per superstep; read them concurrently so no peer's write
	// can block on our unread input.
	for j := 0; j < e.k; j++ {
		if j == e.id {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			// Both the frame buffer and the decoded-envelope scratch are
			// per-peer, so each is touched by exactly one goroutine; the
			// decoded values are copied into the inbox below, freeing
			// both for reuse next superstep.
			frame, err := wire.ReadFrameInto(e.in[j].r, e.frame[j])
			if err != nil {
				fail(e.k+j, fmt.Errorf("tcp: machine %d recv from %d (superstep %d): %w", e.id, j, step, err))
				return
			}
			e.frame[j] = frame[:0]
			gotStep, from, envs, err := wire.DecodeBatchInto(frame, e.codec, e.rx[j])
			if err != nil {
				fail(e.k+j, fmt.Errorf("tcp: machine %d decode from %d: %w", e.id, j, err))
				return
			}
			if gotStep != step || int(from) != j {
				fail(e.k+j, fmt.Errorf("tcp: machine %d expected (superstep %d, from %d), got (%d, %d)",
					e.id, step, j, gotStep, from))
				return
			}
			perSender[j] = envs
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Assemble the inbox in sender-ID order into the double-buffered
	// storage: the previous superstep's inbox (the other generation) is
	// still readable by the caller per the ownership rule.
	total := len(perDest[e.id])
	for s := 0; s < e.k; s++ {
		if s != e.id {
			total += len(perSender[s])
		}
	}
	buf := e.inboxes[e.gen]
	if cap(buf) < total {
		buf = make([]transport.Envelope[M], 0, total)
	}
	inbox := buf[:0]
	for s := 0; s < e.k; s++ {
		if s == e.id {
			inbox = append(inbox, perDest[s]...)
			continue
		}
		inbox = append(inbox, perSender[s]...)
	}
	e.inboxes[e.gen] = inbox
	e.gen ^= 1
	return inbox, nil
}

// SendToCoordinator ships one control payload to machine 0. On the
// coordinator itself the payload loops back locally.
func (e *Endpoint[M]) SendToCoordinator(payload []byte) error {
	if e.id == 0 {
		e.ownQueue = append(e.ownQueue, payload)
		return nil
	}
	if err := wire.WriteFrame(e.ctrl.w, payload); err != nil {
		return err
	}
	return e.ctrl.w.Flush()
}

// CollectReports (coordinator only) returns one control payload per
// machine, indexed by machine ID; position 0 is the coordinator's own
// loop-back payload.
func (e *Endpoint[M]) CollectReports() ([][]byte, error) {
	if e.id != 0 {
		return nil, fmt.Errorf("tcp: machine %d is not the coordinator", e.id)
	}
	if len(e.ownQueue) == 0 {
		return nil, fmt.Errorf("tcp: coordinator has no local report queued")
	}
	reports := make([][]byte, e.k)
	reports[0] = e.ownQueue[0]
	e.ownQueue = e.ownQueue[1:]
	var wg sync.WaitGroup
	errs := make([]error, e.k)
	for j := 1; j < e.k; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			frame, err := wire.ReadFrame(e.ctrlIn[j].r)
			if err != nil {
				errs[j] = fmt.Errorf("tcp: coordinator read report from %d: %w", j, err)
				return
			}
			reports[j] = frame
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// Broadcast (coordinator only) sends one control payload to every other
// machine.
func (e *Endpoint[M]) Broadcast(payload []byte) error {
	if e.id != 0 {
		return fmt.Errorf("tcp: machine %d is not the coordinator", e.id)
	}
	for j := 1; j < e.k; j++ {
		if err := wire.WriteFrame(e.ctrlIn[j].w, payload); err != nil {
			return fmt.Errorf("tcp: coordinator broadcast to %d: %w", j, err)
		}
		if err := e.ctrlIn[j].w.Flush(); err != nil {
			return fmt.Errorf("tcp: coordinator broadcast to %d: %w", j, err)
		}
	}
	return nil
}

// ReceiveVerdict (non-coordinator) blocks for the coordinator's next
// control payload.
func (e *Endpoint[M]) ReceiveVerdict() ([]byte, error) {
	if e.id == 0 {
		return nil, fmt.Errorf("tcp: the coordinator does not receive verdicts")
	}
	return wire.ReadFrame(e.ctrl.r)
}

// Barrier runs one coordinator-driven superstep barrier: every machine
// reports "superstep done" to machine 0, which releases them all once
// the last report is in.
func (e *Endpoint[M]) Barrier(step int) error {
	payload := wire.AppendUvarint(nil, uint64(step))
	if err := e.SendToCoordinator(payload); err != nil {
		return fmt.Errorf("tcp: machine %d barrier send (superstep %d): %w", e.id, step, err)
	}
	if e.id == 0 {
		reports, err := e.CollectReports()
		if err != nil {
			return fmt.Errorf("tcp: barrier collect (superstep %d): %w", step, err)
		}
		for j, r := range reports {
			got, _, err := wire.Uvarint(r)
			if err != nil || got != uint64(step) {
				return fmt.Errorf("tcp: barrier report from %d: step %d, want %d (err=%v)", j, got, step, err)
			}
		}
		return e.Broadcast(payload)
	}
	release, err := e.ReceiveVerdict()
	if err != nil {
		return fmt.Errorf("tcp: machine %d barrier release (superstep %d): %w", e.id, step, err)
	}
	got, _, err := wire.Uvarint(release)
	if err != nil || got != uint64(step) {
		return fmt.Errorf("tcp: machine %d barrier release: step %d, want %d (err=%v)", e.id, got, step, err)
	}
	return nil
}

// Close tears down the listener and every connection.
func (e *Endpoint[M]) Close() error {
	e.closeOnce.Do(func() {
		var errs []string
		record := func(err error) {
			if err != nil {
				errs = append(errs, err.Error())
			}
		}
		if e.ln != nil {
			record(e.ln.Close())
		}
		for _, dc := range e.out {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		for _, dc := range e.in {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		if e.ctrl != nil {
			record(e.ctrl.c.Close())
		}
		for _, dc := range e.ctrlIn {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		if len(errs) > 0 {
			e.closeErr = fmt.Errorf("tcp: close machine %d: %s", e.id, strings.Join(errs, "; "))
		}
	})
	return e.closeErr
}

// NewLoopbackMesh builds the complete k-endpoint mesh over loopback TCP
// inside one process: k listeners on 127.0.0.1, every ordered pair
// connected. Used by the cluster Transport and by kmnode -local.
func NewLoopbackMesh[M any](k int, codec wire.Codec[M]) ([]*Endpoint[M], error) {
	eps := make([]*Endpoint[M], k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		e, err := Listen[M](i, k, "127.0.0.1:0", codec)
		if err != nil {
			for _, prev := range eps[:i] {
				prev.Close()
			}
			return nil, err
		}
		eps[i] = e
		addrs[i] = e.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = eps[i].Connect(addrs, DefaultDialTimeout)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, e := range eps {
				e.Close()
			}
			return nil, err
		}
	}
	return eps, nil
}

// Transport is the cluster-side transport.Transport implementation: all
// k machines live in this process, but every envelope crosses a real
// loopback TCP connection and every superstep ends with the
// coordinator-driven barrier.
type Transport[M any] struct {
	eps []*Endpoint[M]
	// inboxes are the double-buffered outer slices handed to the
	// cluster; the envelope storage inside is owned (and recycled) by
	// the endpoints.
	inboxes [2][][]transport.Envelope[M]
	gen     int
}

// New builds a loopback-TCP transport for a k-machine cluster.
func New[M any](k int, codec wire.Codec[M]) (*Transport[M], error) {
	eps, err := NewLoopbackMesh(k, codec)
	if err != nil {
		return nil, err
	}
	return &Transport[M]{eps: eps}, nil
}

// Exchange implements transport.Transport: each endpoint ships its
// batch over its sockets concurrently, then all pass the coordinator
// barrier before any inbox is released to the cluster.
func (t *Transport[M]) Exchange(step int, outs [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	k := len(t.eps)
	if len(outs) != k {
		return nil, fmt.Errorf("tcp: got %d outboxes for a %d-machine cluster", len(outs), k)
	}
	if t.inboxes[t.gen] == nil {
		t.inboxes[t.gen] = make([][]transport.Envelope[M], k)
	}
	inboxes := t.inboxes[t.gen]
	t.gen ^= 1
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inbox, err := t.eps[i].Exchange(step, outs[i])
			if err != nil {
				// Exchange already closed the endpoint; the close
				// cascades error returns to every peer blocked on this
				// endpoint's connections, so no goroutine hangs here.
				errs[i] = err
				return
			}
			if err := t.eps[i].Barrier(step); err != nil {
				t.eps[i].Close()
				errs[i] = err
				return
			}
			inboxes[i] = inbox
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return inboxes, nil
}

// Close tears down every endpoint.
func (t *Transport[M]) Close() error {
	var first error
	for _, e := range t.eps {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
