// Package tcp runs the k-machine cluster over real sockets: every
// machine owns a net.Listener and dials every peer, giving the full
// point-to-point mesh of the model (§1.1) as k·(k-1) actual TCP
// connections. Envelopes cross machine boundaries as length-prefixed
// binary frames (transport/wire), one batch frame per (sender,
// receiver) pair per superstep — empty batches included, which is how a
// receiver knows a superstep's input is complete.
//
// The per-superstep exchange is a persistent parallel pipeline: every
// data connection is owned by a long-lived worker goroutine — one
// writer per outgoing peer, one reader per incoming peer — spawned once
// when the mesh connects and parked on a signal channel between
// supersteps. Exchange becomes signal → encode-in-parallel (each writer
// serialises its own peer's batch into its own recycled buffer) →
// decode-in-parallel (each reader decodes into its own recycled
// envelope scratch) → merge, with no goroutine spawned and no
// synchronisation state allocated on the steady-state path. Workers
// exit when the endpoint closes; they never leak across supersteps.
//
// Machine 0 additionally acts as the coordinator: every other machine
// holds a control connection to it, used for the superstep barrier
// (Transport.Exchange) and for the report/verdict protocol of the
// standalone runtime (transport/node). The coordinator's per-peer
// report reads are driven by the same persistent-worker machinery.
//
// The package knows nothing about rounds or words: cost accounting
// stays in core, which is what keeps Stats bit-identical between this
// transport and the in-memory loopback. What the package does account
// is the physical layer: every endpoint counts the actual frame bytes
// it ships and receives (transport.WireStats), the quantity the paper's
// word-based cost model abstracts over.
package tcp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kmachine/internal/obs"
	"kmachine/internal/transport"
	"kmachine/internal/transport/wire"
)

// Connection-type byte carried in the HELLO frame that opens every
// dialed connection.
const (
	helloData = byte(iota)
	helloCtrl
)

// DefaultDialTimeout bounds mesh construction: peers of a standalone
// node may start seconds apart.
const DefaultDialTimeout = 10 * time.Second

type dataConn struct {
	c net.Conn
	w *wbuf
	r *rbuf
	// wmu serialises frame writes: the owning writer worker and a
	// failing peer's blame broadcast may write concurrently.
	wmu sync.Mutex
}

// wbuf/rbuf are tiny aliases to keep struct fields readable.
type wbuf = bufWriter
type rbuf = bufReader

// pipeJob is one superstep's marching order for a parked pipeline
// worker: which superstep to encode/decode and the I/O deadline to
// install first. It is passed by value over a buffered channel, so
// signalling a worker allocates nothing.
type pipeJob struct {
	step int
	dl   time.Time
}

// Endpoint is one machine's typed socket stack over a Mesh: the
// listener and connections live in the embedded Mesh (promoted fields),
// while everything typed in M — codec, encode/decode scratch, pipeline
// workers — lives here. A single-run endpoint (Listen/Connect) owns a
// private mesh for its lifetime; a job-attached endpoint (Attach)
// borrows a standing mesh for one job and detaches, leaving the
// connections — and any bytes buffered on them — intact for the next
// job's endpoint. Each data connection is serviced by a persistent
// worker goroutine that lives from Connect/Attach to Detach/Close.
type Endpoint[M any] struct {
	*Mesh
	codec wire.Codec[M]

	// wireVersion selects the batch encoding the writers ship
	// (wire.BatchV2 by default); the readers accept either version via
	// the dispatching decoder regardless.
	wireVersion byte

	// jobID/jobbed scope this endpoint's data frames to one job of a
	// resident mesh (wire doc.go "Job-scoped frames"): writers prefix
	// every batch with the job header, readers reject frames scoped to
	// any other job, and MachineError attribution carries the ID.
	// Single-run endpoints leave jobbed false and ship bare frames.
	jobID  uint64
	jobbed bool

	ownQueue [][]byte // id==0: coordinator's loopback report queue

	// Pipeline worker state, created once per endpoint lifetime. The
	// channels carry at most one job (Exchange is a barrier, so a second
	// superstep cannot be signalled before the first drains); workWG
	// counts in-flight data jobs and ctrlWG in-flight coordinator report
	// reads. Worker failures land in the cause/shrapnel pairs below —
	// all hoisted out of the per-call path, so a steady-state superstep
	// allocates nothing.
	started  bool
	writerCh []chan pipeJob
	readerCh []chan pipeJob
	ctrlCh   []chan pipeJob // id==0 only
	workWG   sync.WaitGroup
	ctrlWG   sync.WaitGroup

	// Worker error state, reset per dispatch and guarded by mu. The
	// FIRST-ARRIVING genuine error wins (cause), because causality on a
	// failing mesh is temporal: the machine that died emits its FIN
	// before the cascade of peer teardowns it triggers, so a
	// slot-ordered scan could blame a healthy peer whose own teardown
	// EOF happened to sit in an earlier slot. net.ErrClosed failures —
	// shrapnel of our own cascade close — are kept apart and reported
	// only when no genuine cause surfaced.
	cause, shrapnel         error // data path (Exchange)
	ctrlCause, ctrlShrapnel error // control path (CollectReports)

	// Per-superstep scratch, recycled across calls (the transport
	// ownership rule). perDest/tx/frame/rx are dead once Exchange
	// returns and are single-buffered; the assembled inbox is handed to
	// the caller and double-buffered so the previous superstep's
	// envelopes survive while the next one is built. reports/ctrlFrame
	// and verdictBuf are the control-plane equivalents: the payloads
	// returned by CollectReports and ReceiveVerdict stay valid until the
	// next call of the same method.
	perDest [][]transport.Envelope[M] // outgoing split by destination
	tx      [][]byte                  // per-peer batch encode buffers
	frame   [][]byte                  // per-peer frame read buffers
	rx      [][]transport.Envelope[M] // per-peer decoded batches
	inboxes [2][]transport.Envelope[M]
	gen     int

	// txSrc[j] is what peer j's writer worker encodes this superstep:
	// the recycled perDest[j] split on the lockstep path, or the
	// machine's own eagerly-streamed batch slice on the streaming path
	// (which the Streamer contract keeps immutable until FinishSuperstep
	// returns). A separate indirection — instead of storing streamed
	// batches into perDest — so the next superstep's perDest[j][:0]
	// recycling can never append into machine-owned memory.
	txSrc [][]transport.Envelope[M]

	// Streaming-superstep state (the endpoint-level half of
	// transport.Streamer; the cluster Transport composes k of these).
	// Guarded by mu where concurrent with StreamBatch; the
	// Begin→drive→Finish handoff provides the rest of the ordering.
	strEmitted []bool      // peers already streamed to this superstep
	strOn      bool        // BeginSuperstep called, FinishSuperstep pending
	strStep    int         // the open superstep
	strDl      time.Time   // its I/O deadline
	strRelease func() bool // its ioGuard release, disarmed by Finish

	// serialWriters, sampled at construction, records that the process
	// has a single execution core (GOMAXPROCS=1): parallel writer workers
	// then cannot overlap with anything, and every wakeup is a pure
	// scheduling tax, so the inline serial-write paths (Exchange,
	// StreamBatch, FinishSuperstep) are taken unconditionally. Readers
	// stay parallel regardless — a read is mostly netpoll parking, which
	// costs no core while it waits.
	serialWriters bool
	reports       [][]byte // id==0: assembled CollectReports result
	ctrlFrame     [][]byte // id==0: per-peer control read buffers
	barrierBuf    []byte
	verdictBuf    []byte

	// Bytes-on-wire accounting: every frame that crosses a socket —
	// data batches and control payloads alike — is counted with its
	// length prefix, against the peer it crossed to or from. Atomics
	// because writers, readers, and the control plane account
	// concurrently; WireStats sums the lanes into totals on demand.
	wirePeers []peerWire // indexed by peer machine ID; [e.id] stays zero

	// rec, when non-nil, receives per-frame telemetry spans from the
	// pipeline workers (obs.PhaseFrameWrite/Read/Decode). Set via
	// SetRecorder before the first Exchange; read without
	// synchronisation on the hot paths.
	rec obs.Recorder

	// mu serialises job dispatch against Close so a send can never race
	// the closing of a signal channel (see dispatch), and closed gates
	// Exchange/CollectReports on an endpoint that is already torn down.
	mu        sync.Mutex
	closed    bool
	closeOnce sync.Once
	closeErr  error
}

// newEndpoint wires a typed endpoint onto a mesh (private or standing).
func newEndpoint[M any](m *Mesh, codec wire.Codec[M]) *Endpoint[M] {
	k := m.k
	return &Endpoint[M]{
		Mesh:        m,
		codec:       codec,
		wireVersion: wire.BatchV2,
		perDest:     make([][]transport.Envelope[M], k),
		tx:          make([][]byte, k),
		frame:       make([][]byte, k),
		rx:          make([][]transport.Envelope[M], k),
		txSrc:       make([][]transport.Envelope[M], k),
		strEmitted:  make([]bool, k),
		wirePeers:   make([]peerWire, k),

		serialWriters: runtime.GOMAXPROCS(0) == 1,
	}
}

// Listen opens machine id's listener on addr ("host:0" picks a free
// port). Connect must be called before the endpoint can exchange. The
// endpoint owns its mesh: Close tears both down.
func Listen[M any](id, k int, addr string, codec wire.Codec[M]) (*Endpoint[M], error) {
	m, err := ListenMesh(id, k, addr)
	if err != nil {
		return nil, err
	}
	return newEndpoint(m, codec), nil
}

// Attach binds a typed per-job endpoint to a standing, connected mesh:
// fresh pipeline workers are spawned over the mesh's existing
// connections (cheap — no dials, no handshakes), every data frame the
// endpoint ships carries the job header for `job`, and frames scoped to
// any other job are rejected as attributed errors. On clean job end
// call Detach, which retires the workers and leaves the mesh reusable;
// Close (taken automatically on any failure) poisons the mesh, because
// closing the connections is what unblocks the surviving peers.
func Attach[M any](m *Mesh, codec wire.Codec[M], job uint64) (*Endpoint[M], error) {
	m.mu.Lock()
	connected, closed := m.connected, m.closed
	m.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("tcp: machine %d attach job %d to closed mesh: %w", m.id, job, net.ErrClosed)
	}
	if !connected {
		return nil, fmt.Errorf("tcp: machine %d attach job %d to unconnected mesh", m.id, job)
	}
	e := newEndpoint(m, codec)
	e.jobID, e.jobbed = job, true
	e.startPipeline()
	return e, nil
}

// peerWire is one peer's lane of the wire counters.
type peerWire struct {
	sentFrames, recvFrames atomic.Int64
	sentBytes, recvBytes   atomic.Int64
}

// SetWireVersion selects the batch format the endpoint's writers ship:
// wire.BatchV2 (the default) or wire.BatchV1 for the legacy layout.
// Readers accept both regardless, so endpoints of different versions
// interoperate in one mesh. Call it after Connect and before the first
// Exchange; it must not be changed mid-run.
func (e *Endpoint[M]) SetWireVersion(v byte) error {
	if v != wire.BatchV1 && v != wire.BatchV2 {
		return fmt.Errorf("tcp: unknown wire version 0x%02x", v)
	}
	e.wireVersion = v
	return nil
}

// WireStats returns the endpoint's physical-layer counters: frames and
// actual bytes (length prefix included) sent and received across data
// and control connections, with a per-peer breakdown in PerPeer
// (indexed by peer machine ID; the endpoint's own slot stays zero).
// Safe to call at any time, including mid-run.
func (e *Endpoint[M]) WireStats() transport.WireStats {
	w := transport.WireStats{PerPeer: make([]transport.PeerWireStats, e.k)}
	for j := range e.wirePeers {
		p := &e.wirePeers[j]
		pp := transport.PeerWireStats{
			FramesSent: p.sentFrames.Load(),
			FramesRecv: p.recvFrames.Load(),
			BytesSent:  p.sentBytes.Load(),
			BytesRecv:  p.recvBytes.Load(),
		}
		w.PerPeer[j] = pp
		w.FramesSent += pp.FramesSent
		w.FramesRecv += pp.FramesRecv
		w.BytesSent += pp.BytesSent
		w.BytesRecv += pp.BytesRecv
	}
	return w
}

// SetRecorder installs the telemetry recorder the pipeline workers
// record frame spans into (implements the transport.TraceSink shape at
// the endpoint level). Must be called before the first Exchange; nil
// (the default) keeps the workers on their span-free path.
func (e *Endpoint[M]) SetRecorder(r obs.Recorder) { e.rec = r }

func (e *Endpoint[M]) countSent(peer, payloadLen int) {
	p := &e.wirePeers[peer]
	p.sentFrames.Add(1)
	p.sentBytes.Add(int64(wire.FrameSize(payloadLen)))
}

func (e *Endpoint[M]) countRecv(peer, payloadLen int) {
	p := &e.wirePeers[peer]
	p.recvFrames.Add(1)
	p.recvBytes.Add(int64(wire.FrameSize(payloadLen)))
}

// Connect completes the endpoint's private mesh (see Mesh.Connect for
// the dial/accept discipline). On success the persistent pipeline
// workers are spawned; they park between supersteps and exit on Close.
func (e *Endpoint[M]) Connect(peers []string, timeout time.Duration) error {
	if err := e.Mesh.Connect(peers, timeout); err != nil {
		e.Close()
		return err
	}
	e.startPipeline()
	return nil
}

// startPipeline spawns the persistent per-connection workers: a writer
// and a reader per data peer, plus (on the coordinator) a control
// reader per peer for CollectReports. Workers park on their signal
// channel between supersteps and exit when Close closes it.
func (e *Endpoint[M]) startPipeline() {
	e.writerCh = make([]chan pipeJob, e.k)
	e.readerCh = make([]chan pipeJob, e.k)
	for j := 0; j < e.k; j++ {
		if j == e.id {
			continue
		}
		e.writerCh[j] = make(chan pipeJob, 1)
		e.readerCh[j] = make(chan pipeJob, 1)
		go e.pipeWorker(e.writerCh[j], &e.workWG, func(job pipeJob) { e.runWriter(j, job) })
		go e.pipeWorker(e.readerCh[j], &e.workWG, func(job pipeJob) { e.runReader(j, job) })
	}
	if e.id == 0 {
		e.ctrlCh = make([]chan pipeJob, e.k)
		e.reports = make([][]byte, e.k)
		e.ctrlFrame = make([][]byte, e.k)
		for j := 1; j < e.k; j++ {
			e.ctrlCh[j] = make(chan pipeJob, 1)
			go e.pipeWorker(e.ctrlCh[j], &e.ctrlWG, func(job pipeJob) { e.runCtrlReader(j, job) })
		}
	}
	e.mu.Lock()
	e.started = true
	e.mu.Unlock()
}

// pipeWorker is the body of every persistent pipeline goroutine: run
// one job per signal, park in between, exit when the signal channel
// closes. The park is a bare channel receive — no select — because the
// channel doubles as the quit signal: the dispatch/Close mutex
// guarantees no send can follow the close, and a job already buffered
// when Close fires is still delivered before the closed-channel zero
// value, so the dispatcher's WaitGroup always drains (the job's I/O
// fails fast on the closed connections).
func (e *Endpoint[M]) pipeWorker(ch chan pipeJob, wg *sync.WaitGroup, run func(pipeJob)) {
	for job := range ch {
		run(job)
		wg.Done()
	}
}

// recordErr files a worker failure into a (cause, shrapnel) pair:
// net.ErrClosed errors — the debris of our own teardown — are kept
// apart from genuine causes, and within each class the first arrival
// wins. Returns whether err was installed as the genuine cause.
func (e *Endpoint[M]) recordErr(cause, shrapnel *error, err error) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if errors.Is(err, net.ErrClosed) {
		if *shrapnel == nil {
			*shrapnel = err
		}
		return false
	}
	if *cause == nil {
		*cause = err
		return true
	}
	return false
}

// blameWriteTimeout bounds the best-effort blame broadcast of a failing
// endpoint: the frames are a handful of bytes, so the deadline only
// matters against a peer whose receive buffer is completely wedged —
// and teardown must not wait longer than this on such a peer.
const blameWriteTimeout = time.Second

// fail records a data-path failure and tears the endpoint down
// immediately: the peers (and our own parked readers) are blocked in
// reads bounded only by the superstep deadline — which may be absent —
// and closing the connections is what converts a wedged cluster into an
// error cascade right away; each endpoint's failed read closes it in
// turn. Without this a single broken connection would stall every
// machine until the deadline (or forever without one).
//
// Before closing, the first genuine failure is broadcast as a blame
// frame on every data connection. This is what keeps attribution
// correct across the cascade the close triggers: a peer reading our
// connection finds "machine v failed" ahead of the FIN, instead of a
// bare EOF it would have to attribute to US. Without it, a machine
// whose exchange starts after the cascade has begun sees
// indistinguishable EOFs from the victim and from healthy-but-closing
// peers, and the persistent pipeline reacts fast enough to make that
// race real (the slow per-superstep goroutine spawns of the previous
// engine masked it).
func (e *Endpoint[M]) fail(err error) {
	if e.recordErr(&e.cause, &e.shrapnel, err) {
		e.castBlame(err)
	}
	e.Close()
}

// castBlame ships a best-effort blame frame to every data peer before
// the endpoint closes. Only machine-attributed causes are broadcast;
// the suspect itself is skipped (it is the one machine that cannot act
// on the news), as is any connection whose writer currently holds the
// write mutex — blocking there on a wedged writer would postpone the
// Close that fail() exists to perform, stalling the whole teardown.
func (e *Endpoint[M]) castBlame(cause error) {
	var me *transport.MachineError
	if !errors.As(cause, &me) || me.Machine < 0 {
		return
	}
	payload := wire.AppendAbort(nil, me.Superstep, me.Machine)
	dl := time.Now().Add(blameWriteTimeout)
	for j := 0; j < e.k; j++ {
		if j == e.id || j == int(me.Machine) || e.out[j] == nil {
			continue
		}
		if sent, err := e.out[j].tryWriteFrameLocked(dl, payload); sent && err == nil {
			e.countSent(j, len(payload))
		}
	}
}

// runWriter encodes and ships this superstep's batch for peer j: its
// own recycled buffer, its own connection, in parallel with every other
// writer — the serial encode loop of the previous engine is gone.
func (e *Endpoint[M]) runWriter(j int, job pipeJob) {
	var t0 int64
	if e.rec != nil {
		t0 = obs.Now()
	}
	base := e.tx[j][:0]
	if e.jobbed {
		// Job-attached endpoints scope every data frame: the header sits
		// ahead of the version byte, the batch encoding is untouched.
		base = wire.AppendJobHeader(base, e.jobID)
	}
	var buf []byte
	var err error
	if e.wireVersion == wire.BatchV1 {
		buf, err = wire.AppendBatchV1(base, job.step, transport.MachineID(e.id), e.txSrc[j], e.codec)
	} else {
		buf, err = wire.AppendBatchV2(base, job.step, transport.MachineID(e.id), transport.MachineID(j), e.txSrc[j], e.codec)
	}
	e.tx[j] = buf[:0]
	if err != nil {
		// An encode failure is OUR defect (a codec bug, a malformed
		// envelope), not peer j's: attribute it to this machine so the
		// blame broadcast names the actual culprit instead of spreading
		// "j failed" across the cluster.
		e.fail(&transport.MachineError{Machine: transport.MachineID(e.id), Superstep: job.step, Job: e.jobID,
			Err: fmt.Errorf("tcp: machine %d encode batch for %d: %w", e.id, j, err)})
		return
	}
	// writeFrameLocked installs job.dl first and refuses to write if the
	// deadline cannot be set: falling through into an unbounded write
	// would silently defeat the wedge detection the deadline exists for.
	if err := e.out[j].writeFrameLocked(job.dl, buf); err != nil {
		e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d send to %d: %w", e.id, j, err)))
		return
	}
	e.countSent(j, len(buf))
	if e.rec != nil {
		e.rec.Record(obs.Span{Start: t0, Dur: obs.Now() - t0,
			Machine: int32(e.id), Peer: int32(j), Superstep: int32(job.step),
			Phase: obs.PhaseFrameWrite, Bytes: int32(wire.FrameSize(len(buf)))})
	}
}

// runReader receives and decodes peer j's batch for this superstep.
// Both the frame buffer and the decoded-envelope scratch are per-peer,
// so each is touched by exactly one goroutine; the decoded values are
// copied into the inbox during the merge, freeing both for reuse next
// superstep.
func (e *Endpoint[M]) runReader(j int, job pipeJob) {
	var t0 int64
	if e.rec != nil {
		t0 = obs.Now()
	}
	dc := e.in[j]
	if err := dc.c.SetReadDeadline(job.dl); err != nil {
		e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d set read deadline for %d: %w", e.id, j, err)))
		return
	}
	frame, err := wire.ReadFrameInto(dc.r, e.frame[j])
	if err != nil {
		e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d recv from %d: %w", e.id, j, err)))
		return
	}
	e.frame[j] = frame[:0]
	e.countRecv(j, len(frame))
	var t1 int64
	if e.rec != nil {
		// The read span is dominated by stall — waiting for peer j to
		// produce and ship its frame — which is the quantity worth
		// seeing per peer; the decode below gets its own span.
		t1 = obs.Now()
		e.rec.Record(obs.Span{Start: t0, Dur: t1 - t0,
			Machine: int32(e.id), Peer: int32(j), Superstep: int32(job.step),
			Phase: obs.PhaseFrameRead, Bytes: int32(wire.FrameSize(len(frame)))})
	}
	if len(frame) > 0 && frame[0] == wire.BatchAbort {
		// The peer is tearing down and names the machine it blames; the
		// abort precedes its FIN in stream order, so we learn the true
		// culprit instead of misattributing the peer's own EOF to it.
		// Blame frames are deliberately job-agnostic — a teardown must be
		// understood whichever job's endpoint reads it.
		bstep, suspect, aerr := wire.DecodeAbort(frame)
		if aerr != nil {
			e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d bad abort from %d: %w", e.id, j, aerr)))
			return
		}
		e.fail(&transport.MachineError{Machine: suspect, Superstep: job.step, Job: e.jobID,
			Err: fmt.Errorf("tcp: peer %d aborted superstep %d blaming machine %d", j, bstep, suspect)})
		return
	}
	payload := frame
	if e.jobbed {
		// Verify the frame belongs to OUR job before decoding a byte of
		// it: a straggler from a previous job decoded into this run would
		// corrupt it silently; rejected here it is a loud attributed error.
		gotJob, rest, jobbed, jerr := wire.PeelJobHeader(frame)
		if jerr != nil {
			e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d job header from %d: %w", e.id, j, jerr)))
			return
		}
		if !jobbed {
			e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d got job-less frame from %d during job %d", e.id, j, e.jobID)))
			return
		}
		if gotJob != e.jobID {
			e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d got frame for job %d from %d during job %d", e.id, gotJob, j, e.jobID)))
			return
		}
		payload = rest
	}
	gotStep, from, envs, err := wire.DecodeBatchAnyInto(payload, e.codec, transport.MachineID(j), transport.MachineID(e.id), e.rx[j])
	if e.rec != nil {
		e.rec.Record(obs.Span{Start: t1, Dur: obs.Now() - t1,
			Machine: int32(e.id), Peer: int32(j), Superstep: int32(job.step),
			Phase: obs.PhaseFrameDecode})
	}
	if err != nil {
		e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d decode from %d: %w", e.id, j, err)))
		return
	}
	e.rx[j] = envs
	if gotStep != job.step || int(from) != j {
		e.fail(e.attrib(j, job.step, fmt.Errorf("tcp: machine %d expected (superstep %d, from %d), got (%d, %d)",
			e.id, job.step, j, gotStep, from)))
		return
	}
}

// runCtrlReader receives peer j's control report for the coordinator.
// Unlike the data path it does not tear the endpoint down on failure:
// the coordinator decides how to propagate a missing report (see
// transport/node's abort broadcast).
func (e *Endpoint[M]) runCtrlReader(j int, job pipeJob) {
	dc := e.ctrlIn[j]
	if err := dc.c.SetReadDeadline(job.dl); err != nil {
		e.recordErr(&e.ctrlCause, &e.ctrlShrapnel, e.attrib(j, job.step, fmt.Errorf("tcp: coordinator set read deadline for %d: %w", j, err)))
		return
	}
	frame, err := wire.ReadFrameInto(dc.r, e.ctrlFrame[j])
	if err != nil {
		e.recordErr(&e.ctrlCause, &e.ctrlShrapnel, e.attrib(j, job.step, fmt.Errorf("tcp: coordinator read report from %d: %w", j, err)))
		return
	}
	e.ctrlFrame[j] = frame[:0]
	e.countRecv(j, len(frame))
	e.reports[j] = frame
}

// dispatch signals one superstep to the parked pipeline workers. The
// mutex makes the signal atomic with respect to Close: either every
// worker receives its job before quit can fire (and the drain in
// pipeWorker guarantees completion), or the endpoint is already closed
// and no job is sent at all.
//
// With inlineWriters set, only the readers are signalled — the caller
// runs the writers serially on its own goroutine afterwards (the
// tiny-superstep path, see Exchange). Signal order rotates with the
// superstep: machine i starts its sweep at peer (i+step) mod k, so the
// k machines do not all hammer peer 0's sockets first every superstep.
func (e *Endpoint[M]) dispatch(step int, dl time.Time, inlineWriters bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("tcp: machine %d exchange on closed endpoint (superstep %d): %w", e.id, step, net.ErrClosed)
	}
	if !e.started {
		return fmt.Errorf("tcp: machine %d exchange before Connect (superstep %d)", e.id, step)
	}
	e.cause, e.shrapnel = nil, nil
	job := pipeJob{step: step, dl: dl}
	if inlineWriters {
		e.workWG.Add(e.k - 1)
	} else {
		e.workWG.Add(2 * (e.k - 1))
		// Writers are released before any reader: on a loaded machine
		// the scheduler then tends to ship our outgoing frames before
		// the readers poll, so reads find their peer's data already
		// buffered instead of parking in netpoll first.
		for o := 0; o < e.k; o++ {
			if j := (e.id + step + o) % e.k; j != e.id {
				e.writerCh[j] <- job
			}
		}
	}
	for o := 0; o < e.k; o++ {
		if j := (e.id + step + o) % e.k; j != e.id {
			e.readerCh[j] <- job
		}
	}
	return nil
}

// ioGuard applies ctx to the endpoint's blocking socket I/O. It returns
// the connection deadline to install before each read/write (zero when
// ctx has none, which clears any deadline left by a previous superstep)
// and a release function — nil for an uncancellable ctx, so the
// happy-path superstep allocates neither the AfterFunc nor a closure —
// that the operation must call before returning when non-nil.
// While the operation is in flight, cancellation of ctx closes the
// whole endpoint: Close is the only way to unblock conns that are
// already parked in a read, and a canceled run is over anyway — the
// mesh is single-run and not restartable after a failure.
func (e *Endpoint[M]) ioGuard(ctx context.Context) (deadline time.Time, release func() bool) {
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	if ctx.Done() == nil {
		return deadline, nil
	}
	return deadline, context.AfterFunc(ctx, func() {
		// Only explicit cancellation closes here: deadline expiry is
		// already enforced by the connection deadlines installed above,
		// and letting them fire keeps the error deterministically
		// os.ErrDeadlineExceeded instead of racing it against a close.
		// ctx.Err() (not Cause) is what distinguishes the two — it is
		// context.Canceled for every cancellation, including one with a
		// custom cause via WithCancelCause.
		if errors.Is(ctx.Err(), context.Canceled) {
			e.Close()
		}
	})
}

// attributed wraps a per-peer failure as a transport.MachineError naming
// the peer machine and superstep, translating an expired I/O deadline
// into a diagnosis the caller can act on.
func attributed(peer, step int, err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		err = fmt.Errorf("no data within the superstep deadline (peer crashed or wedged?): %w", err)
	}
	return &transport.MachineError{Machine: transport.MachineID(peer), Superstep: step, Err: err}
}

// attrib is attributed plus the endpoint's job stamp: failures of a
// job-attached endpoint name the job they killed, so a multi-job daemon
// can fail exactly one submission. Zero (single-run endpoints) means
// "no job" and prints as before.
func (e *Endpoint[M]) attrib(peer, step int, err error) error {
	me := attributed(peer, step, err).(*transport.MachineError)
	me.Job = e.jobID
	return me
}

// Exchange ships this machine's superstep batch to every peer and
// collects the peers' batches: one frame per directed pair, empty
// batches included. Self-addressed envelopes never touch a socket. The
// returned inbox is assembled in sender-ID order, self-addressed
// envelopes at position e.id, exactly like the loopback transport.
//
// The call is one pipeline generation: split the outbox per
// destination, signal the parked workers (each writer encodes and ships
// its own peer's batch concurrently; each reader receives and decodes
// concurrently), wait for the generation to drain, then merge the
// per-sender batches into the inbox.
//
// ctx bounds the whole superstep: its deadline is installed on every
// connection before I/O, so a dead or wedged peer surfaces as a
// *transport.MachineError (wrapping os.ErrDeadlineExceeded) within the
// deadline, and cancellation tears the endpoint down, unblocking every
// parked read. After any error the endpoint is closed and unusable.
func (e *Endpoint[M]) Exchange(ctx context.Context, step int, out []transport.Envelope[M]) ([]transport.Envelope[M], error) {
	dl, release := e.ioGuard(ctx)
	if release != nil {
		defer release()
	}
	perDest := e.perDest
	for j := range perDest {
		perDest[j] = perDest[j][:0]
	}
	for _, env := range out {
		if env.To < 0 || int(env.To) >= e.k {
			e.Close() // peers are waiting on our batch; unblock them
			return nil, fmt.Errorf("tcp: machine %d envelope to invalid machine %d", e.id, env.To)
		}
		perDest[env.To] = append(perDest[env.To], env)
	}
	remote := 0
	for j := range perDest {
		e.txSrc[j] = perDest[j]
		if j != e.id {
			remote += len(perDest[j])
		}
	}

	// Tiny supersteps skip the writer wakeups: when the whole outbox is
	// at most ~2 envelopes per peer, encoding is trivial and the cost of
	// signalling k-1 parked goroutines dominates shipping k-1
	// few-byte frames (the k=16/batch=1 regression of the parallel
	// pipeline). Write them serially on this goroutine instead — each
	// connection's buffered writer still coalesces prefix+payload into
	// one flush/syscall — while the readers stay parallel. A GOMAXPROCS=1
	// process takes this path for every superstep: with one core the
	// parallel writers can't overlap anyway, so the wakeups are all tax.
	inline := e.serialWriters || remote <= 2*e.k
	if err := e.dispatch(step, dl, inline); err != nil {
		return nil, err
	}
	if inline {
		job := pipeJob{step: step, dl: dl}
		for o := 0; o < e.k; o++ {
			if j := (e.id + step + o) % e.k; j != e.id {
				e.runWriter(j, job)
			}
		}
	}
	e.workWG.Wait()

	// Report the error that diagnoses the failure, not the teardown:
	// recordErr kept the first genuine cause (a peer's FIN, a reset, an
	// expired deadline) apart from the net.ErrClosed shrapnel of our own
	// cascade close, so the genuine cause — which names the actual
	// culprit — wins whenever one exists. The workWG barrier above is
	// the happens-before edge that makes the plain reads safe.
	if err := e.cause; err != nil {
		return nil, err
	}
	if err := e.shrapnel; err != nil {
		return nil, err
	}
	return e.mergeInbox(), nil
}

// mergeInbox assembles the superstep's inbox in sender-ID order into
// the double-buffered storage: the previous superstep's inbox (the
// other generation) is still readable by the caller per the ownership
// rule. Call only after the pipeline generation drained error-free.
func (e *Endpoint[M]) mergeInbox() []transport.Envelope[M] {
	perSender := e.rx
	total := len(e.perDest[e.id])
	for s := 0; s < e.k; s++ {
		if s != e.id {
			total += len(perSender[s])
		}
	}
	buf := e.inboxes[e.gen]
	if cap(buf) < total {
		buf = make([]transport.Envelope[M], 0, total)
	}
	inbox := buf[:0]
	for s := 0; s < e.k; s++ {
		if s == e.id {
			inbox = append(inbox, e.perDest[s]...)
			continue
		}
		inbox = append(inbox, perSender[s]...)
	}
	e.inboxes[e.gen] = inbox
	e.gen ^= 1
	return inbox
}

// BeginSuperstep opens streaming superstep `step` on this endpoint: the
// per-superstep failure state is reset and every reader worker is
// released immediately, so incoming batch frames are received and
// decoded as peers produce them — during this machine's own compute —
// instead of waiting for the finish barrier. The per-machine half of
// the transport.Streamer contract; StreamBatch and FinishSuperstep
// complete it.
func (e *Endpoint[M]) BeginSuperstep(ctx context.Context, step int) error {
	dl, release := e.ioGuard(ctx)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		if release != nil {
			release()
		}
		return fmt.Errorf("tcp: machine %d begin superstep %d on closed endpoint: %w", e.id, step, net.ErrClosed)
	}
	if !e.started {
		e.mu.Unlock()
		if release != nil {
			release()
		}
		return fmt.Errorf("tcp: machine %d begin superstep %d before Connect", e.id, step)
	}
	if e.strOn {
		e.mu.Unlock()
		if release != nil {
			release()
		}
		return fmt.Errorf("tcp: machine %d begin superstep %d with superstep %d still open", e.id, step, e.strStep)
	}
	e.cause, e.shrapnel = nil, nil
	for j := range e.strEmitted {
		e.strEmitted[j] = false
	}
	e.strOn, e.strStep, e.strDl, e.strRelease = true, step, dl, release
	job := pipeJob{step: step, dl: dl}
	e.workWG.Add(e.k - 1)
	for o := 0; o < e.k; o++ {
		if j := (e.id + step + o) % e.k; j != e.id {
			e.readerCh[j] <- job
		}
	}
	e.mu.Unlock()
	return nil
}

// streamInlineMax is the batch size at or below which StreamBatch
// writes the frame on the calling goroutine instead of waking the
// peer's parked writer worker: for a couple of envelopes the encode is
// a handful of stores and the wakeup costs more than the write (the
// same economics as Exchange's tiny-superstep path).
const streamInlineMax = 2

// StreamBatch hands peer `to`'s finished batch to its parked writer
// worker right now — mid-compute — which encodes and ships it while the
// superstep's remaining work continues. Tiny batches (and every batch
// on a single-core process) are instead written inline on the calling
// goroutine — still mid-compute, so the wire is busy during the
// superstep either way; what varies is only who pays for the encode.
// The batch slice stays readable by the endpoint until FinishSuperstep
// returns (the Streamer ownership rule); envelopes arrive pre-validated
// and From-stamped from core. At most one batch per peer per superstep.
func (e *Endpoint[M]) StreamBatch(to transport.MachineID, batch []transport.Envelope[M]) error {
	e.mu.Lock()
	if e.closed {
		// Prefer the attributed failure that closed us (a reader's
		// verdict on a dead peer) over an anonymous "closed" — this is
		// what the emitter surfaces to the run.
		err := e.cause
		if err == nil {
			err = e.shrapnel
		}
		e.mu.Unlock()
		if err != nil {
			return err
		}
		return fmt.Errorf("tcp: machine %d stream batch on closed endpoint: %w", e.id, net.ErrClosed)
	}
	if !e.strOn {
		e.mu.Unlock()
		return fmt.Errorf("tcp: machine %d StreamBatch outside an open streaming superstep", e.id)
	}
	if int(to) < 0 || int(to) >= e.k || int(to) == e.id {
		e.mu.Unlock()
		return fmt.Errorf("tcp: machine %d cannot stream batch to machine %d", e.id, to)
	}
	if e.strEmitted[to] {
		e.mu.Unlock()
		return fmt.Errorf("tcp: machine %d streamed two batches to machine %d in superstep %d", e.id, to, e.strStep)
	}
	e.strEmitted[to] = true
	e.txSrc[to] = batch
	job := pipeJob{step: e.strStep, dl: e.strDl}
	if e.serialWriters || len(batch) <= streamInlineMax {
		// Inline write, off the mutex: the write may block on a full
		// socket buffer, and holding mu there would stall a concurrent
		// Close. txSrc[to] is safe to read unlocked — at most one batch
		// per peer per superstep means no other goroutine touches it.
		e.mu.Unlock()
		e.runWriter(int(to), job)
		// A write failure closed the endpoint and recorded its cause;
		// surface it now so the emitter aborts the run immediately
		// instead of discovering the corpse at FinishSuperstep.
		e.mu.Lock()
		err := e.cause
		if err == nil {
			err = e.shrapnel
		}
		e.mu.Unlock()
		return err
	}
	e.workWG.Add(1)
	e.writerCh[to] <- job
	e.mu.Unlock()
	return nil
}

// finishGuard disarms the cancellation guard BeginSuperstep armed.
func (e *Endpoint[M]) finishGuard() {
	if r := e.strRelease; r != nil {
		e.strRelease = nil
		r()
	}
}

// FinishSuperstep closes streaming superstep `step`: it ships `out` —
// the envelopes NOT streamed eagerly (self-addressed ones included; a
// peer that already got a streamed batch must not reappear here) — on
// the remaining writer workers, waits for the whole pipeline generation
// (eager readers, streamed writers, rest writers) to drain, and merges
// the inbox exactly like Exchange. It is the streaming superstep's
// barrier and carries the Exchange failure contract.
func (e *Endpoint[M]) FinishSuperstep(ctx context.Context, step int, out []transport.Envelope[M]) ([]transport.Envelope[M], error) {
	_ = ctx // the superstep's guard/deadline were armed by BeginSuperstep
	perDest := e.perDest
	for j := range perDest {
		perDest[j] = perDest[j][:0]
	}
	for _, env := range out {
		if env.To < 0 || int(env.To) >= e.k {
			e.finishGuard()
			e.Close() // peers are waiting on our batches; unblock them
			return nil, fmt.Errorf("tcp: machine %d envelope to invalid machine %d", e.id, env.To)
		}
		perDest[env.To] = append(perDest[env.To], env)
	}

	e.mu.Lock()
	if !e.strOn || e.strStep != step {
		open, openStep := e.strOn, e.strStep
		e.mu.Unlock()
		e.finishGuard()
		e.Close()
		return nil, fmt.Errorf("tcp: machine %d finish superstep %d without matching begin (open=%v step=%d)", e.id, step, open, openStep)
	}
	e.strOn = false
	if e.closed {
		// A mid-compute failure (a reader's verdict, a peer's blame
		// frame, a StreamBatch hitting dead sockets) already tore the
		// endpoint down. The eager jobs drain against the closed conns;
		// report the recorded cause, never a merged inbox.
		e.mu.Unlock()
		e.workWG.Wait()
		e.finishGuard()
		e.mu.Lock()
		err := e.cause
		if err == nil {
			err = e.shrapnel
		}
		e.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("tcp: machine %d finish superstep %d on closed endpoint: %w", e.id, step, net.ErrClosed)
		}
		return nil, err
	}
	job := pipeJob{step: step, dl: e.strDl}
	pending, rest := 0, 0
	for j := 0; j < e.k; j++ {
		if j == e.id {
			continue
		}
		if e.strEmitted[j] {
			if len(perDest[j]) > 0 {
				e.mu.Unlock()
				e.finishGuard()
				e.Close()
				return nil, fmt.Errorf("tcp: machine %d has rest envelopes for machine %d after streaming a batch to it in superstep %d", e.id, j, step)
			}
			continue
		}
		e.txSrc[j] = perDest[j]
		pending++
		rest += len(perDest[j])
	}
	// Same inline-writer economics as Exchange: a tiny remainder (the
	// common case when the machines streamed their batches eagerly) is
	// written serially on this goroutine rather than waking the parked
	// writers. strEmitted is stable here — StreamBatch only runs while
	// the superstep computes, which happens-before FinishSuperstep.
	inline := e.serialWriters || rest <= 2*e.k
	if !inline {
		e.workWG.Add(pending)
		for o := 0; o < e.k; o++ {
			j := (e.id + step + o) % e.k
			if j == e.id || e.strEmitted[j] {
				continue
			}
			e.writerCh[j] <- job
		}
	}
	e.mu.Unlock()
	if inline {
		for o := 0; o < e.k; o++ {
			j := (e.id + step + o) % e.k
			if j == e.id || e.strEmitted[j] {
				continue
			}
			e.runWriter(j, job)
		}
	}

	e.workWG.Wait()
	e.finishGuard()
	// Streamed batch slices are machine-owned; drop the references now
	// that their writers are done, honouring the "must not retain"
	// ownership rule.
	for j := range e.txSrc {
		e.txSrc[j] = nil
	}
	if err := e.cause; err != nil {
		return nil, err
	}
	if err := e.shrapnel; err != nil {
		return nil, err
	}
	return e.mergeInbox(), nil
}

// SendToCoordinator ships one control payload to machine 0, bounded by
// ctx's deadline. On the coordinator itself the payload loops back
// locally; the queued slice is retained until the matching
// CollectReports pops it, so the caller must not recycle it earlier.
func (e *Endpoint[M]) SendToCoordinator(ctx context.Context, payload []byte) error {
	if e.id == 0 {
		e.ownQueue = append(e.ownQueue, payload)
		return nil
	}
	dl, release := e.ioGuard(ctx)
	if release != nil {
		defer release()
	}
	if err := e.ctrl.c.SetWriteDeadline(dl); err != nil {
		return fmt.Errorf("tcp: machine %d set control write deadline: %w", e.id, err)
	}
	if err := wire.WriteFrame(e.ctrl.w, payload); err != nil {
		return err
	}
	if err := e.ctrl.w.Flush(); err != nil {
		return err
	}
	e.countSent(0, len(payload))
	return nil
}

// CollectReports (coordinator only) returns one control payload per
// machine, indexed by machine ID; position 0 is the coordinator's own
// loop-back payload. A machine whose report does not arrive within
// ctx's deadline surfaces as a *transport.MachineError naming it and
// step — this is where the coordinator detects a dead peer between
// supersteps. The reads are serviced by the persistent per-peer control
// workers; the returned payloads are recycled storage — peer slots are
// valid until the next CollectReports call, while position 0 aliases
// the buffer the caller itself queued via SendToCoordinator and is only
// valid until the caller's next control-plane send (Barrier and the
// node runtime both re-encode into recycled scratch each superstep).
func (e *Endpoint[M]) CollectReports(ctx context.Context, step int) ([][]byte, error) {
	if e.id != 0 {
		return nil, fmt.Errorf("tcp: machine %d is not the coordinator", e.id)
	}
	if len(e.ownQueue) == 0 {
		return nil, fmt.Errorf("tcp: coordinator has no local report queued")
	}
	dl, release := e.ioGuard(ctx)
	if release != nil {
		defer release()
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("tcp: coordinator collect on closed endpoint (superstep %d): %w", step, net.ErrClosed)
	}
	if !e.started {
		e.mu.Unlock()
		return nil, fmt.Errorf("tcp: coordinator collect before Connect (superstep %d)", step)
	}
	e.ctrlCause, e.ctrlShrapnel = nil, nil
	job := pipeJob{step: step, dl: dl}
	e.ctrlWG.Add(e.k - 1)
	for j := 1; j < e.k; j++ {
		e.ctrlCh[j] <- job
	}
	e.mu.Unlock()
	e.ctrlWG.Wait()

	e.reports[0] = e.ownQueue[0]
	// Pop by shifting down on the same backing array: a re-slice would
	// walk the array forward and force append to reallocate every few
	// supersteps.
	copy(e.ownQueue, e.ownQueue[1:])
	e.ownQueue = e.ownQueue[:len(e.ownQueue)-1]
	if err := e.ctrlCause; err != nil {
		return nil, err
	}
	if err := e.ctrlShrapnel; err != nil {
		return nil, err
	}
	return e.reports, nil
}

// Broadcast (coordinator only) sends one control payload to every other
// machine. Delivery is attempted to EVERY peer even after a failure —
// an abort verdict must reach the surviving machines when one peer's
// control connection is already dead — and the first error is returned
// after the full sweep.
func (e *Endpoint[M]) Broadcast(ctx context.Context, payload []byte) error {
	if e.id != 0 {
		return fmt.Errorf("tcp: machine %d is not the coordinator", e.id)
	}
	dl, release := e.ioGuard(ctx)
	if release != nil {
		defer release()
	}
	var first error
	for j := 1; j < e.k; j++ {
		err := e.ctrlIn[j].c.SetWriteDeadline(dl)
		if err == nil {
			if err = wire.WriteFrame(e.ctrlIn[j].w, payload); err == nil {
				err = e.ctrlIn[j].w.Flush()
			}
		}
		if err != nil {
			if first == nil {
				first = fmt.Errorf("tcp: coordinator broadcast to %d: %w", j, err)
			}
			continue
		}
		e.countSent(j, len(payload))
	}
	return first
}

// ReceiveVerdict (non-coordinator) blocks for the coordinator's next
// control payload, bounded by ctx's deadline. The returned payload is
// recycled storage, valid until the next ReceiveVerdict call.
func (e *Endpoint[M]) ReceiveVerdict(ctx context.Context) ([]byte, error) {
	if e.id == 0 {
		return nil, fmt.Errorf("tcp: the coordinator does not receive verdicts")
	}
	dl, release := e.ioGuard(ctx)
	if release != nil {
		defer release()
	}
	if err := e.ctrl.c.SetReadDeadline(dl); err != nil {
		return nil, fmt.Errorf("tcp: machine %d set verdict read deadline: %w", e.id, err)
	}
	frame, err := wire.ReadFrameInto(e.ctrl.r, e.verdictBuf)
	if err != nil {
		return nil, err
	}
	e.verdictBuf = frame[:0]
	e.countRecv(0, len(frame))
	return frame, nil
}

// Barrier runs one coordinator-driven superstep barrier: every machine
// reports "superstep done" to machine 0, which releases them all once
// the last report is in. ctx bounds both directions.
func (e *Endpoint[M]) Barrier(ctx context.Context, step int) error {
	payload := wire.AppendUvarint(e.barrierBuf[:0], uint64(step))
	e.barrierBuf = payload
	if err := e.SendToCoordinator(ctx, payload); err != nil {
		return fmt.Errorf("tcp: machine %d barrier send (superstep %d): %w", e.id, step, err)
	}
	if e.id == 0 {
		reports, err := e.CollectReports(ctx, step)
		if err != nil {
			return fmt.Errorf("tcp: barrier collect (superstep %d): %w", step, err)
		}
		for j, r := range reports {
			got, _, err := wire.Uvarint(r)
			if err != nil || got != uint64(step) {
				return fmt.Errorf("tcp: barrier report from %d: step %d, want %d (err=%v)", j, got, step, err)
			}
		}
		return e.Broadcast(ctx, payload)
	}
	release, err := e.ReceiveVerdict(ctx)
	if err != nil {
		return fmt.Errorf("tcp: machine %d barrier release (superstep %d): %w", e.id, step, err)
	}
	got, _, err := wire.Uvarint(release)
	if err != nil || got != uint64(step) {
		return fmt.Errorf("tcp: machine %d barrier release: step %d, want %d (err=%v)", e.id, got, step, err)
	}
	return nil
}

// retireWorkers closes every pipeline signal channel, run at most once
// (via closeOnce) by Detach or Close. No dispatch can race it: the
// caller set closed under mu first, dispatch sends only while holding
// mu with closed unset, and buffered jobs survive a channel close, so
// in-flight supersteps still drain.
func (e *Endpoint[M]) retireWorkers() {
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	if !started {
		return
	}
	for _, ch := range e.writerCh {
		if ch != nil {
			close(ch)
		}
	}
	for _, ch := range e.readerCh {
		if ch != nil {
			close(ch)
		}
	}
	for _, ch := range e.ctrlCh {
		if ch != nil {
			close(ch)
		}
	}
}

// Detach retires the endpoint's pipeline workers and ends its use of
// the mesh WITHOUT closing any connection — the standing fabric (and
// any bytes buffered on it) stays intact for the next job's endpoint.
// Valid only at a quiescent point: every superstep drained, every
// control frame consumed — the job-end handshake of the node runtime is
// what certifies that. A failed endpoint must use Close instead; after
// Detach the endpoint itself is dead either way.
func (e *Endpoint[M]) Detach() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.closeOnce.Do(e.retireWorkers)
}

// Close retires the pipeline workers and tears down the mesh — the
// listener and every connection — unblocking all pending I/O. It is
// idempotent — concurrent and repeated calls are safe and return the
// first call's result — which is what lets the error-cascade teardown,
// context cancellation (ioGuard), and the caller's own deferred Close
// coexist. Closing a job-attached endpoint poisons the standing mesh
// deliberately: a failure is only survivable cluster-wide by closing
// the connections every peer is parked on.
func (e *Endpoint[M]) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.closeOnce.Do(e.retireWorkers)
	return e.Mesh.Close()
}

// NewLoopbackMesh builds the complete k-endpoint mesh over loopback TCP
// inside one process: k listeners on 127.0.0.1, every ordered pair
// connected. Used by the cluster Transport and by kmnode -local.
func NewLoopbackMesh[M any](k int, codec wire.Codec[M]) ([]*Endpoint[M], error) {
	eps := make([]*Endpoint[M], k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		e, err := Listen[M](i, k, "127.0.0.1:0", codec)
		if err != nil {
			for _, prev := range eps[:i] {
				prev.Close()
			}
			return nil, err
		}
		eps[i] = e
		addrs[i] = e.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = eps[i].Connect(addrs, DefaultDialTimeout)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, e := range eps {
				e.Close()
			}
			return nil, err
		}
	}
	return eps, nil
}

// driveJob is one superstep's assignment for a cluster-side endpoint
// driver: exchange this outbox under this context, then pass the
// barrier.
type driveJob[M any] struct {
	ctx    context.Context
	step   int
	out    []transport.Envelope[M]
	finish bool // close a streaming superstep instead of a lockstep exchange
}

// Transport is the cluster-side transport.Transport implementation: all
// k machines live in this process, but every envelope crosses a real
// loopback TCP connection and every superstep ends with the
// coordinator-driven barrier. Each endpoint is owned by a persistent
// driver goroutine, signalled once per superstep — no goroutine or
// error-slice churn on the steady-state path.
type Transport[M any] struct {
	eps []*Endpoint[M]
	// inboxes are the double-buffered outer slices handed to the
	// cluster; the envelope storage inside is owned (and recycled) by
	// the endpoints.
	inboxes [2][][]transport.Envelope[M]
	gen     int

	drive   []chan driveJob[M]
	wg      sync.WaitGroup
	errs    []error
	results [][]transport.Envelope[M]

	mu        sync.Mutex
	closed    bool
	closeOnce sync.Once
}

// New builds a loopback-TCP transport for a k-machine cluster.
func New[M any](k int, codec wire.Codec[M]) (*Transport[M], error) {
	return NewWithVersion[M](k, codec, wire.BatchV2)
}

// NewWithVersion is New shipping the given wire batch version
// (wire.BatchV1 or wire.BatchV2) — the A/B surface for measuring the v2
// format's bytes-on-wire savings on identical runs.
func NewWithVersion[M any](k int, codec wire.Codec[M], version byte) (*Transport[M], error) {
	eps, err := NewLoopbackMesh(k, codec)
	if err != nil {
		return nil, err
	}
	t := &Transport[M]{
		eps:     eps,
		drive:   make([]chan driveJob[M], k),
		errs:    make([]error, k),
		results: make([][]transport.Envelope[M], k),
	}
	for i := 0; i < k; i++ {
		if err := eps[i].SetWireVersion(version); err != nil {
			t.Close()
			return nil, err
		}
		t.drive[i] = make(chan driveJob[M], 1)
		go t.driver(i)
	}
	return t, nil
}

// driver is the persistent goroutine owning endpoint i: one
// exchange+barrier per signal, parked in between, exits when Close
// closes its channel. The same close-under-mutex discipline as the
// endpoint's pipeWorker keeps the WaitGroup sound against a concurrent
// Close.
func (t *Transport[M]) driver(i int) {
	for job := range t.drive[i] {
		t.runStep(i, job)
		t.wg.Done()
	}
}

func (t *Transport[M]) runStep(i int, job driveJob[M]) {
	var inbox []transport.Envelope[M]
	var err error
	if job.finish {
		inbox, err = t.eps[i].FinishSuperstep(job.ctx, job.step, job.out)
	} else {
		inbox, err = t.eps[i].Exchange(job.ctx, job.step, job.out)
	}
	if err == nil {
		if berr := t.eps[i].Barrier(job.ctx, job.step); berr != nil {
			t.eps[i].Close()
			err = berr
		}
	}
	// On an Exchange error the endpoint has already closed itself; the
	// close cascades error returns to every peer blocked on this
	// endpoint's connections, so no driver hangs here.
	t.errs[i] = err
	t.results[i] = inbox
}

// Exchange implements transport.Transport: each endpoint ships its
// batch over its sockets concurrently (signalled to the persistent
// drivers), then all pass the coordinator barrier before any inbox is
// released to the cluster. ctx bounds the whole superstep on every
// endpoint.
func (t *Transport[M]) Exchange(ctx context.Context, step int, outs [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	k := len(t.eps)
	if len(outs) != k {
		return nil, fmt.Errorf("tcp: got %d outboxes for a %d-machine cluster", len(outs), k)
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp: exchange on closed transport (superstep %d): %w", step, net.ErrClosed)
	}
	for i := 0; i < k; i++ {
		t.errs[i] = nil
		t.results[i] = nil
	}
	t.wg.Add(k)
	for i := 0; i < k; i++ {
		t.drive[i] <- driveJob[M]{ctx: ctx, step: step, out: outs[i]}
	}
	t.mu.Unlock()
	t.wg.Wait()

	// Prefer the error that diagnoses the failure: a machine-attributed
	// error that is not close-shrapnel (net.ErrClosed from our own
	// cascade teardown) beats an attributed shrapnel error, which beats
	// an unattributed one. When machine j dies, the survivors' errors
	// name j while j's own endpoint reports only its severed sockets.
	var attributed, first error
	for _, err := range t.errs {
		if err == nil {
			continue
		}
		var me *transport.MachineError
		if errors.As(err, &me) {
			if !errors.Is(err, net.ErrClosed) {
				return nil, err
			}
			if attributed == nil {
				attributed = err
			}
		}
		if first == nil {
			first = err
		}
	}
	if attributed != nil {
		return nil, attributed
	}
	if first != nil {
		return nil, first
	}

	if t.inboxes[t.gen] == nil {
		t.inboxes[t.gen] = make([][]transport.Envelope[M], k)
	}
	inboxes := t.inboxes[t.gen]
	t.gen ^= 1
	copy(inboxes, t.results)
	return inboxes, nil
}

// CanStream implements transport.Streamer: the socket substrate is the
// capability's raison d'être — eager batches overlap the wire with the
// senders' remaining compute.
func (t *Transport[M]) CanStream() bool { return true }

// BeginSuperstep implements transport.Streamer: it opens the streaming
// superstep on every endpoint, arming the per-superstep deadline guards
// and releasing all reader workers so frames are consumed as they
// arrive. Endpoints are opened serially under the transport mutex — the
// same t.mu→e.mu lock order as Close — which is cheap (no I/O happens
// in an endpoint BeginSuperstep, it only parks jobs on buffered
// channels) and gives SendBatch a consistent "all open" view.
func (t *Transport[M]) BeginSuperstep(ctx context.Context, step int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("tcp: begin superstep %d on closed transport: %w", step, net.ErrClosed)
	}
	for i, e := range t.eps {
		if err := e.BeginSuperstep(ctx, step); err != nil {
			return fmt.Errorf("tcp: machine %d: %w", i, err)
		}
	}
	return nil
}

// SendBatch implements transport.Streamer: machine from's eager batch
// for machine to goes straight to from's endpoint, which hands it to
// the parked writer worker for that peer. Called concurrently from the
// machines' compute goroutines (distinct senders), per the contract;
// each endpoint serialises its own state under its own mutex, so no
// transport-level lock is needed — or wanted, it would serialise the
// very sends streaming exists to overlap.
func (t *Transport[M]) SendBatch(from, to transport.MachineID, batch []transport.Envelope[M]) error {
	if int(from) < 0 || int(from) >= len(t.eps) {
		return fmt.Errorf("tcp: SendBatch from invalid machine %d", from)
	}
	return t.eps[from].StreamBatch(to, batch)
}

// FinishSuperstep implements transport.Streamer: the streaming
// superstep's barrier. Every endpoint ships its rest envelopes, drains
// its pipeline generation (eager and rest frames alike), and passes the
// coordinator barrier — the same drivers, error preference, and
// double-buffered inbox hand-off as Exchange.
func (t *Transport[M]) FinishSuperstep(ctx context.Context, step int, rest [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	k := len(t.eps)
	if len(rest) != k {
		return nil, fmt.Errorf("tcp: got %d outboxes for a %d-machine cluster", len(rest), k)
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp: finish superstep %d on closed transport: %w", step, net.ErrClosed)
	}
	for i := 0; i < k; i++ {
		t.errs[i] = nil
		t.results[i] = nil
	}
	t.wg.Add(k)
	for i := 0; i < k; i++ {
		t.drive[i] <- driveJob[M]{ctx: ctx, step: step, out: rest[i], finish: true}
	}
	t.mu.Unlock()
	t.wg.Wait()

	var attributed, first error
	for _, err := range t.errs {
		if err == nil {
			continue
		}
		var me *transport.MachineError
		if errors.As(err, &me) {
			if !errors.Is(err, net.ErrClosed) {
				return nil, err
			}
			if attributed == nil {
				attributed = err
			}
		}
		if first == nil {
			first = err
		}
	}
	if attributed != nil {
		return nil, attributed
	}
	if first != nil {
		return nil, first
	}

	if t.inboxes[t.gen] == nil {
		t.inboxes[t.gen] = make([][]transport.Envelope[M], k)
	}
	inboxes := t.inboxes[t.gen]
	t.gen ^= 1
	copy(inboxes, t.results)
	return inboxes, nil
}

// WireStats sums the physical-layer counters of every endpoint: total
// frames and bytes that crossed the loopback sockets. In a healthy mesh
// sent and received totals match.
func (t *Transport[M]) WireStats() transport.WireStats {
	var w transport.WireStats
	for _, e := range t.eps {
		w = w.Plus(e.WireStats())
	}
	return w
}

// SetRecorder implements transport.TraceSink: every endpoint's pipeline
// workers record their per-peer frame spans into r. Call before the
// first Exchange.
func (t *Transport[M]) SetRecorder(r obs.Recorder) {
	for _, e := range t.eps {
		e.SetRecorder(r)
	}
}

// SeverMachine forcibly closes machine i's endpoint — its listener and
// every connection — simulating that machine's process dying mid-run.
// Survivors observe the severed connections as attributed errors on
// their next (or in-flight) Exchange. It exists for fault injection:
// transport/chaos's drop-connection fault calls it to make "peer died"
// deterministically reproducible in tests.
func (t *Transport[M]) SeverMachine(i int) error {
	if i < 0 || i >= len(t.eps) {
		return fmt.Errorf("tcp: cannot sever machine %d of %d", i, len(t.eps))
	}
	return t.eps[i].Close()
}

// Close retires the drivers and tears down every endpoint.
func (t *Transport[M]) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.closeOnce.Do(func() {
		for _, ch := range t.drive {
			if ch != nil {
				// A construction failure can reach Close before every
				// driver channel exists.
				close(ch)
			}
		}
	})
	var first error
	for _, e := range t.eps {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
