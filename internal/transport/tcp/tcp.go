// Package tcp runs the k-machine cluster over real sockets: every
// machine owns a net.Listener and dials every peer, giving the full
// point-to-point mesh of the model (§1.1) as k·(k-1) actual TCP
// connections. Envelopes cross machine boundaries as length-prefixed
// binary frames (transport/wire), one batch frame per (sender,
// receiver) pair per superstep — empty batches included, which is how a
// receiver knows a superstep's input is complete.
//
// Machine 0 additionally acts as the coordinator: every other machine
// holds a control connection to it, used for the superstep barrier
// (Transport.Exchange) and for the report/verdict protocol of the
// standalone runtime (transport/node).
//
// The package knows nothing about rounds or words: cost accounting
// stays in core, which is what keeps Stats bit-identical between this
// transport and the in-memory loopback.
package tcp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"kmachine/internal/transport"
	"kmachine/internal/transport/wire"
)

// Connection-type byte carried in the HELLO frame that opens every
// dialed connection.
const (
	helloData = byte(iota)
	helloCtrl
)

// DefaultDialTimeout bounds mesh construction: peers of a standalone
// node may start seconds apart.
const DefaultDialTimeout = 10 * time.Second

type dataConn struct {
	c net.Conn
	w *wbuf
	r *rbuf
}

// wbuf/rbuf are tiny aliases to keep struct fields readable.
type wbuf = bufWriter
type rbuf = bufReader

// Endpoint is one machine's socket stack: its listener, the k-1 dialed
// data connections (writes), the k-1 accepted data connections (reads),
// and the control connection to the coordinator (or, on the
// coordinator, from every peer).
type Endpoint[M any] struct {
	id    int
	k     int
	codec wire.Codec[M]
	ln    net.Listener

	out []*dataConn // out[j]: dialed conn for writing to peer j
	in  []*dataConn // in[j]: accepted conn for reading from peer j

	ctrl     *dataConn   // id>0: connection to the coordinator
	ctrlIn   []*dataConn // id==0: ctrlIn[j] accepted from peer j
	ownQueue [][]byte    // id==0: coordinator's loopback report queue

	// Per-superstep scratch, recycled across Exchange calls (the
	// transport ownership rule). perDest/tx/frame/rx are dead once
	// Exchange returns and are single-buffered; the assembled inbox is
	// handed to the caller and double-buffered so the previous
	// superstep's envelopes survive while the next one is built.
	perDest [][]transport.Envelope[M] // outgoing split by destination
	tx      [][]byte                  // per-peer batch encode buffers
	frame   [][]byte                  // per-peer frame read buffers
	rx      [][]transport.Envelope[M] // per-peer decoded batches
	inboxes [2][]transport.Envelope[M]
	gen     int

	closeOnce sync.Once
	closeErr  error
}

// Listen opens machine id's listener on addr ("host:0" picks a free
// port). Connect must be called before the endpoint can exchange.
func Listen[M any](id, k int, addr string, codec wire.Codec[M]) (*Endpoint[M], error) {
	if k < 2 || id < 0 || id >= k {
		return nil, fmt.Errorf("tcp: invalid endpoint id %d for k=%d", id, k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: machine %d listen %s: %w", id, addr, err)
	}
	return &Endpoint[M]{
		id:      id,
		k:       k,
		codec:   codec,
		ln:      ln,
		out:     make([]*dataConn, k),
		in:      make([]*dataConn, k),
		perDest: make([][]transport.Envelope[M], k),
		tx:      make([][]byte, k),
		frame:   make([][]byte, k),
		rx:      make([][]transport.Envelope[M], k),
	}, nil
}

// Addr returns the listener's concrete address (useful with ":0").
func (e *Endpoint[M]) Addr() string { return e.ln.Addr().String() }

// ID returns the machine ID this endpoint serves.
func (e *Endpoint[M]) ID() int { return e.id }

// K returns the cluster size.
func (e *Endpoint[M]) K() int { return e.k }

// Connect completes the mesh: it dials a data connection to every peer
// in peers (indexed by machine ID; peers[e.id] is ignored) plus a
// control connection to peer 0, while accepting the mirror-image
// connections on its own listener. Dials are retried until timeout so
// nodes may start in any order.
func (e *Endpoint[M]) Connect(peers []string, timeout time.Duration) error {
	if len(peers) != e.k {
		return fmt.Errorf("tcp: machine %d got %d peer addresses for k=%d", e.id, len(peers), e.k)
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)

	wantAccept := e.k - 1 // data conns from every peer
	if e.id == 0 {
		e.ctrlIn = make([]*dataConn, e.k)
		wantAccept += e.k - 1 // plus every peer's control conn
	}

	var wg sync.WaitGroup
	var dialErr, acceptErr error

	wg.Add(1)
	go func() {
		defer wg.Done()
		dialErr = e.dialAll(peers, deadline)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		acceptErr = e.acceptAll(wantAccept, deadline)
	}()
	wg.Wait()

	if dialErr != nil || acceptErr != nil {
		e.Close()
		if dialErr != nil {
			return dialErr
		}
		return acceptErr
	}
	return nil
}

func (e *Endpoint[M]) dialAll(peers []string, deadline time.Time) error {
	dial := func(addr string, kind byte) (*dataConn, error) {
		var lastErr error
		for time.Now().Before(deadline) {
			c, err := net.DialTimeout("tcp", addr, time.Until(deadline))
			if err != nil {
				lastErr = err
				time.Sleep(20 * time.Millisecond)
				continue
			}
			dc := newDataConn(c)
			hello := []byte{kind}
			hello = wire.AppendUvarint(hello, uint64(e.id))
			if err := wire.WriteFrame(dc.w, hello); err != nil {
				c.Close()
				return nil, err
			}
			if err := dc.w.Flush(); err != nil {
				c.Close()
				return nil, err
			}
			return dc, nil
		}
		return nil, fmt.Errorf("tcp: machine %d dial %s timed out: %v", e.id, addr, lastErr)
	}
	for j := 0; j < e.k; j++ {
		if j == e.id {
			continue
		}
		dc, err := dial(peers[j], helloData)
		if err != nil {
			return err
		}
		e.out[j] = dc
	}
	if e.id != 0 {
		dc, err := dial(peers[0], helloCtrl)
		if err != nil {
			return err
		}
		e.ctrl = dc
	}
	return nil
}

func (e *Endpoint[M]) acceptAll(want int, deadline time.Time) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := e.ln.(deadliner); ok {
		d.SetDeadline(deadline)
		defer d.SetDeadline(time.Time{})
	}
	for got := 0; got < want; got++ {
		c, err := e.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: machine %d accept: %w", e.id, err)
		}
		dc := newDataConn(c)
		hello, err := wire.ReadFrame(dc.r)
		if err != nil {
			c.Close()
			return fmt.Errorf("tcp: machine %d bad hello: %w", e.id, err)
		}
		if len(hello) < 2 {
			c.Close()
			return fmt.Errorf("tcp: machine %d short hello", e.id)
		}
		from, _, err := wire.Uvarint(hello[1:])
		if err != nil || int(from) >= e.k || int(from) == e.id {
			c.Close()
			return fmt.Errorf("tcp: machine %d hello from invalid peer %d", e.id, from)
		}
		switch hello[0] {
		case helloData:
			if e.in[from] != nil {
				c.Close()
				return fmt.Errorf("tcp: machine %d got duplicate data conn from %d", e.id, from)
			}
			e.in[from] = dc
		case helloCtrl:
			if e.id != 0 {
				c.Close()
				return fmt.Errorf("tcp: machine %d (not coordinator) got control conn from %d", e.id, from)
			}
			if e.ctrlIn[from] != nil {
				c.Close()
				return fmt.Errorf("tcp: coordinator got duplicate control conn from %d", from)
			}
			e.ctrlIn[from] = dc
		default:
			c.Close()
			return fmt.Errorf("tcp: machine %d unknown hello kind %d", e.id, hello[0])
		}
	}
	return nil
}

// ioGuard applies ctx to the endpoint's blocking socket I/O. It returns
// the connection deadline to install before each read/write (zero when
// ctx has none, which clears any deadline left by a previous superstep)
// and a release function the operation must call before returning.
// While the operation is in flight, cancellation of ctx closes the
// whole endpoint: Close is the only way to unblock conns that are
// already parked in a read, and a canceled run is over anyway — the
// mesh is single-run and not restartable after a failure.
func (e *Endpoint[M]) ioGuard(ctx context.Context) (deadline time.Time, release func()) {
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	if ctx.Done() == nil {
		return deadline, func() {}
	}
	stop := context.AfterFunc(ctx, func() {
		// Only explicit cancellation closes here: deadline expiry is
		// already enforced by the connection deadlines installed above,
		// and letting them fire keeps the error deterministically
		// os.ErrDeadlineExceeded instead of racing it against a close.
		// ctx.Err() (not Cause) is what distinguishes the two — it is
		// context.Canceled for every cancellation, including one with a
		// custom cause via WithCancelCause.
		if errors.Is(ctx.Err(), context.Canceled) {
			e.Close()
		}
	})
	return deadline, func() { stop() }
}

// attributed wraps a per-peer failure as a transport.MachineError naming
// the peer machine and superstep, translating an expired I/O deadline
// into a diagnosis the caller can act on.
func attributed(peer, step int, err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		err = fmt.Errorf("no data within the superstep deadline (peer crashed or wedged?): %w", err)
	}
	return &transport.MachineError{Machine: transport.MachineID(peer), Superstep: step, Err: err}
}

// Exchange ships this machine's superstep batch to every peer and
// collects the peers' batches: one frame per directed pair, empty
// batches included. Self-addressed envelopes never touch a socket. The
// returned inbox is assembled in sender-ID order, self-addressed
// envelopes at position e.id, exactly like the loopback transport.
//
// ctx bounds the whole superstep: its deadline is installed on every
// connection before I/O, so a dead or wedged peer surfaces as a
// *transport.MachineError (wrapping os.ErrDeadlineExceeded) within the
// deadline, and cancellation tears the endpoint down, unblocking every
// parked read. After any error the endpoint is closed and unusable.
func (e *Endpoint[M]) Exchange(ctx context.Context, step int, out []transport.Envelope[M]) ([]transport.Envelope[M], error) {
	dl, release := e.ioGuard(ctx)
	defer release()
	perDest := e.perDest
	for j := range perDest {
		perDest[j] = perDest[j][:0]
	}
	for _, env := range out {
		if env.To < 0 || int(env.To) >= e.k {
			e.Close() // peers are waiting on our batch; unblock them
			return nil, fmt.Errorf("tcp: machine %d envelope to invalid machine %d", e.id, env.To)
		}
		perDest[env.To] = append(perDest[env.To], env)
	}

	perSender := e.rx
	var wg sync.WaitGroup
	errs := make([]error, 2*e.k)

	// On any error, tear the endpoint down immediately: the peers (and
	// our own reader goroutines below) are parked in reads bounded only
	// by ctx's deadline — which may be absent — and closing the
	// connections is what converts a wedged cluster into an error
	// cascade right away: each endpoint's failed read closes it in
	// turn. Without this a single broken connection would stall every
	// machine until the deadline (or forever without one).
	fail := func(slot int, err error) {
		errs[slot] = err
		e.Close()
	}

	// Writers: one batch frame per peer, flushed immediately. The
	// per-peer encode buffer is recycled: WriteFrame has copied it into
	// the connection's bufio writer before the next peer is encoded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < e.k; j++ {
			if j == e.id {
				continue
			}
			e.out[j].c.SetWriteDeadline(dl)
			buf, err := wire.AppendBatch(e.tx[j][:0], step, transport.MachineID(e.id), perDest[j], e.codec)
			e.tx[j] = buf[:0]
			if err == nil {
				if err = wire.WriteFrame(e.out[j].w, buf); err == nil {
					err = e.out[j].w.Flush()
				}
			}
			if err != nil {
				fail(j, attributed(j, step, fmt.Errorf("tcp: machine %d send to %d: %w", e.id, j, err)))
				return
			}
		}
	}()

	// Readers: every incoming connection delivers exactly one batch
	// frame per superstep; read them concurrently so no peer's write
	// can block on our unread input.
	for j := 0; j < e.k; j++ {
		if j == e.id {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			// Both the frame buffer and the decoded-envelope scratch are
			// per-peer, so each is touched by exactly one goroutine; the
			// decoded values are copied into the inbox below, freeing
			// both for reuse next superstep.
			e.in[j].c.SetReadDeadline(dl)
			frame, err := wire.ReadFrameInto(e.in[j].r, e.frame[j])
			if err != nil {
				fail(e.k+j, attributed(j, step, fmt.Errorf("tcp: machine %d recv from %d: %w", e.id, j, err)))
				return
			}
			e.frame[j] = frame[:0]
			gotStep, from, envs, err := wire.DecodeBatchInto(frame, e.codec, e.rx[j])
			if err != nil {
				fail(e.k+j, attributed(j, step, fmt.Errorf("tcp: machine %d decode from %d: %w", e.id, j, err)))
				return
			}
			if gotStep != step || int(from) != j {
				fail(e.k+j, attributed(j, step, fmt.Errorf("tcp: machine %d expected (superstep %d, from %d), got (%d, %d)",
					e.id, step, j, gotStep, from)))
				return
			}
			perSender[j] = envs
		}(j)
	}
	wg.Wait()
	// Pick the error that diagnoses the failure, not the teardown: once
	// one goroutine's fail() closes the endpoint, the others' I/O dies
	// with net.ErrClosed — shrapnel of OUR close, attributed to peers
	// that may be perfectly healthy. An error that is not net.ErrClosed
	// (a peer's reset connection, EOF, an expired deadline) names the
	// actual culprit, so it wins.
	var shrapnel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, net.ErrClosed) {
			if shrapnel == nil {
				shrapnel = err
			}
			continue
		}
		return nil, err
	}
	if shrapnel != nil {
		return nil, shrapnel
	}

	// Assemble the inbox in sender-ID order into the double-buffered
	// storage: the previous superstep's inbox (the other generation) is
	// still readable by the caller per the ownership rule.
	total := len(perDest[e.id])
	for s := 0; s < e.k; s++ {
		if s != e.id {
			total += len(perSender[s])
		}
	}
	buf := e.inboxes[e.gen]
	if cap(buf) < total {
		buf = make([]transport.Envelope[M], 0, total)
	}
	inbox := buf[:0]
	for s := 0; s < e.k; s++ {
		if s == e.id {
			inbox = append(inbox, perDest[s]...)
			continue
		}
		inbox = append(inbox, perSender[s]...)
	}
	e.inboxes[e.gen] = inbox
	e.gen ^= 1
	return inbox, nil
}

// SendToCoordinator ships one control payload to machine 0, bounded by
// ctx's deadline. On the coordinator itself the payload loops back
// locally.
func (e *Endpoint[M]) SendToCoordinator(ctx context.Context, payload []byte) error {
	if e.id == 0 {
		e.ownQueue = append(e.ownQueue, payload)
		return nil
	}
	dl, release := e.ioGuard(ctx)
	defer release()
	e.ctrl.c.SetWriteDeadline(dl)
	if err := wire.WriteFrame(e.ctrl.w, payload); err != nil {
		return err
	}
	return e.ctrl.w.Flush()
}

// CollectReports (coordinator only) returns one control payload per
// machine, indexed by machine ID; position 0 is the coordinator's own
// loop-back payload. A machine whose report does not arrive within
// ctx's deadline surfaces as a *transport.MachineError naming it and
// step — this is where the coordinator detects a dead peer between
// supersteps.
func (e *Endpoint[M]) CollectReports(ctx context.Context, step int) ([][]byte, error) {
	if e.id != 0 {
		return nil, fmt.Errorf("tcp: machine %d is not the coordinator", e.id)
	}
	if len(e.ownQueue) == 0 {
		return nil, fmt.Errorf("tcp: coordinator has no local report queued")
	}
	dl, release := e.ioGuard(ctx)
	defer release()
	reports := make([][]byte, e.k)
	reports[0] = e.ownQueue[0]
	e.ownQueue = e.ownQueue[1:]
	var wg sync.WaitGroup
	errs := make([]error, e.k)
	for j := 1; j < e.k; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			e.ctrlIn[j].c.SetReadDeadline(dl)
			frame, err := wire.ReadFrame(e.ctrlIn[j].r)
			if err != nil {
				errs[j] = attributed(j, step, fmt.Errorf("tcp: coordinator read report from %d: %w", j, err))
				return
			}
			reports[j] = frame
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// Broadcast (coordinator only) sends one control payload to every other
// machine. Delivery is attempted to EVERY peer even after a failure —
// an abort verdict must reach the surviving machines when one peer's
// control connection is already dead — and the first error is returned
// after the full sweep.
func (e *Endpoint[M]) Broadcast(ctx context.Context, payload []byte) error {
	if e.id != 0 {
		return fmt.Errorf("tcp: machine %d is not the coordinator", e.id)
	}
	dl, release := e.ioGuard(ctx)
	defer release()
	var first error
	for j := 1; j < e.k; j++ {
		e.ctrlIn[j].c.SetWriteDeadline(dl)
		err := wire.WriteFrame(e.ctrlIn[j].w, payload)
		if err == nil {
			err = e.ctrlIn[j].w.Flush()
		}
		if err != nil && first == nil {
			first = fmt.Errorf("tcp: coordinator broadcast to %d: %w", j, err)
		}
	}
	return first
}

// ReceiveVerdict (non-coordinator) blocks for the coordinator's next
// control payload, bounded by ctx's deadline.
func (e *Endpoint[M]) ReceiveVerdict(ctx context.Context) ([]byte, error) {
	if e.id == 0 {
		return nil, fmt.Errorf("tcp: the coordinator does not receive verdicts")
	}
	dl, release := e.ioGuard(ctx)
	defer release()
	e.ctrl.c.SetReadDeadline(dl)
	return wire.ReadFrame(e.ctrl.r)
}

// Barrier runs one coordinator-driven superstep barrier: every machine
// reports "superstep done" to machine 0, which releases them all once
// the last report is in. ctx bounds both directions.
func (e *Endpoint[M]) Barrier(ctx context.Context, step int) error {
	payload := wire.AppendUvarint(nil, uint64(step))
	if err := e.SendToCoordinator(ctx, payload); err != nil {
		return fmt.Errorf("tcp: machine %d barrier send (superstep %d): %w", e.id, step, err)
	}
	if e.id == 0 {
		reports, err := e.CollectReports(ctx, step)
		if err != nil {
			return fmt.Errorf("tcp: barrier collect (superstep %d): %w", step, err)
		}
		for j, r := range reports {
			got, _, err := wire.Uvarint(r)
			if err != nil || got != uint64(step) {
				return fmt.Errorf("tcp: barrier report from %d: step %d, want %d (err=%v)", j, got, step, err)
			}
		}
		return e.Broadcast(ctx, payload)
	}
	release, err := e.ReceiveVerdict(ctx)
	if err != nil {
		return fmt.Errorf("tcp: machine %d barrier release (superstep %d): %w", e.id, step, err)
	}
	got, _, err := wire.Uvarint(release)
	if err != nil || got != uint64(step) {
		return fmt.Errorf("tcp: machine %d barrier release: step %d, want %d (err=%v)", e.id, got, step, err)
	}
	return nil
}

// Close tears down the listener and every connection, unblocking all
// pending I/O on them. It is idempotent — concurrent and repeated calls
// are safe and return the first call's result — which is what lets the
// error-cascade teardown, context cancellation (ioGuard), and the
// caller's own deferred Close coexist.
func (e *Endpoint[M]) Close() error {
	e.closeOnce.Do(func() {
		var errs []string
		record := func(err error) {
			if err != nil {
				errs = append(errs, err.Error())
			}
		}
		if e.ln != nil {
			record(e.ln.Close())
		}
		for _, dc := range e.out {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		for _, dc := range e.in {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		if e.ctrl != nil {
			record(e.ctrl.c.Close())
		}
		for _, dc := range e.ctrlIn {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		if len(errs) > 0 {
			e.closeErr = fmt.Errorf("tcp: close machine %d: %s", e.id, strings.Join(errs, "; "))
		}
	})
	return e.closeErr
}

// NewLoopbackMesh builds the complete k-endpoint mesh over loopback TCP
// inside one process: k listeners on 127.0.0.1, every ordered pair
// connected. Used by the cluster Transport and by kmnode -local.
func NewLoopbackMesh[M any](k int, codec wire.Codec[M]) ([]*Endpoint[M], error) {
	eps := make([]*Endpoint[M], k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		e, err := Listen[M](i, k, "127.0.0.1:0", codec)
		if err != nil {
			for _, prev := range eps[:i] {
				prev.Close()
			}
			return nil, err
		}
		eps[i] = e
		addrs[i] = e.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = eps[i].Connect(addrs, DefaultDialTimeout)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, e := range eps {
				e.Close()
			}
			return nil, err
		}
	}
	return eps, nil
}

// Transport is the cluster-side transport.Transport implementation: all
// k machines live in this process, but every envelope crosses a real
// loopback TCP connection and every superstep ends with the
// coordinator-driven barrier.
type Transport[M any] struct {
	eps []*Endpoint[M]
	// inboxes are the double-buffered outer slices handed to the
	// cluster; the envelope storage inside is owned (and recycled) by
	// the endpoints.
	inboxes [2][][]transport.Envelope[M]
	gen     int
}

// New builds a loopback-TCP transport for a k-machine cluster.
func New[M any](k int, codec wire.Codec[M]) (*Transport[M], error) {
	eps, err := NewLoopbackMesh(k, codec)
	if err != nil {
		return nil, err
	}
	return &Transport[M]{eps: eps}, nil
}

// Exchange implements transport.Transport: each endpoint ships its
// batch over its sockets concurrently, then all pass the coordinator
// barrier before any inbox is released to the cluster. ctx bounds the
// whole superstep on every endpoint.
func (t *Transport[M]) Exchange(ctx context.Context, step int, outs [][]transport.Envelope[M]) ([][]transport.Envelope[M], error) {
	k := len(t.eps)
	if len(outs) != k {
		return nil, fmt.Errorf("tcp: got %d outboxes for a %d-machine cluster", len(outs), k)
	}
	if t.inboxes[t.gen] == nil {
		t.inboxes[t.gen] = make([][]transport.Envelope[M], k)
	}
	inboxes := t.inboxes[t.gen]
	t.gen ^= 1
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inbox, err := t.eps[i].Exchange(ctx, step, outs[i])
			if err != nil {
				// Exchange already closed the endpoint; the close
				// cascades error returns to every peer blocked on this
				// endpoint's connections, so no goroutine hangs here.
				errs[i] = err
				return
			}
			if err := t.eps[i].Barrier(ctx, step); err != nil {
				t.eps[i].Close()
				errs[i] = err
				return
			}
			inboxes[i] = inbox
		}(i)
	}
	wg.Wait()
	// Prefer the error that diagnoses the failure: a machine-attributed
	// error that is not close-shrapnel (net.ErrClosed from our own
	// cascade teardown) beats an attributed shrapnel error, which beats
	// an unattributed one. When machine j dies, the survivors' errors
	// name j while j's own endpoint reports only its severed sockets.
	var attributed, first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var me *transport.MachineError
		if errors.As(err, &me) {
			if !errors.Is(err, net.ErrClosed) {
				return nil, err
			}
			if attributed == nil {
				attributed = err
			}
		}
		if first == nil {
			first = err
		}
	}
	if attributed != nil {
		return nil, attributed
	}
	if first != nil {
		return nil, first
	}
	return inboxes, nil
}

// SeverMachine forcibly closes machine i's endpoint — its listener and
// every connection — simulating that machine's process dying mid-run.
// Survivors observe the severed connections as attributed errors on
// their next (or in-flight) Exchange. It exists for fault injection:
// transport/chaos's drop-connection fault calls it to make "peer died"
// deterministically reproducible in tests.
func (t *Transport[M]) SeverMachine(i int) error {
	if i < 0 || i >= len(t.eps) {
		return fmt.Errorf("tcp: cannot sever machine %d of %d", i, len(t.eps))
	}
	return t.eps[i].Close()
}

// Close tears down every endpoint.
func (t *Transport[M]) Close() error {
	var first error
	for _, e := range t.eps {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
