package tcp

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"

	"kmachine/internal/testutil"
	"kmachine/internal/transport"
)

// jobExchange runs one superstep of Exchange concurrently on every
// endpoint (the per-machine halves of one mesh), returning the per-
// machine inboxes and errors.
func jobExchange(eps []*Endpoint[testMsg], step int, outs [][]transport.Envelope[testMsg]) ([][]transport.Envelope[testMsg], []error) {
	k := len(eps)
	inboxes := make([][]transport.Envelope[testMsg], k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inboxes[i], errs[i] = eps[i].Exchange(context.Background(), step, outs[i])
		}(i)
	}
	wg.Wait()
	return inboxes, errs
}

// TestMeshReuseAcrossJobs is the standing-fabric contract: one socket
// mesh, several sequential jobs, each with its own attached endpoints —
// every job's traffic arrives intact, Detach leaves the mesh healthy,
// and no pipeline goroutine leaks across jobs.
func TestMeshReuseAcrossJobs(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const k = 3
	ms, err := NewLoopbackSocketMesh(k)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()

	for job := uint64(1); job <= 3; job++ {
		eps := make([]*Endpoint[testMsg], k)
		for i := 0; i < k; i++ {
			e, err := Attach[testMsg](ms[i], testCodec{}, job)
			if err != nil {
				t.Fatalf("job %d: attach machine %d: %v", job, i, err)
			}
			eps[i] = e
		}
		for step := 0; step < 3; step++ {
			outs := make([][]transport.Envelope[testMsg], k)
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					outs[i] = append(outs[i], transport.Envelope[testMsg]{
						From: transport.MachineID(i), To: transport.MachineID(j),
						Words: 1, Msg: testMsg{Tag: int64(job)*1000 + int64(step)*10 + int64(i)},
					})
				}
			}
			inboxes, errs := jobExchange(eps, step, outs)
			for i := 0; i < k; i++ {
				if errs[i] != nil {
					t.Fatalf("job %d superstep %d machine %d: %v", job, step, i, errs[i])
				}
				if len(inboxes[i]) != k {
					t.Fatalf("job %d superstep %d machine %d: %d envelopes, want %d", job, step, i, len(inboxes[i]), k)
				}
				for _, env := range inboxes[i] {
					want := int64(job)*1000 + int64(step)*10 + int64(env.From)
					if env.Msg.Tag != want {
						t.Fatalf("job %d superstep %d machine %d: tag %d from %d, want %d",
							job, step, i, env.Msg.Tag, env.From, want)
					}
				}
			}
		}
		for _, e := range eps {
			e.Detach()
		}
		for i, m := range ms {
			if !m.Healthy() {
				t.Fatalf("job %d: mesh %d unhealthy after clean detach", job, i)
			}
		}
	}
	testutil.NoLeakedGoroutines(t, baseline)
}

// TestAttachJobMismatchDetected: endpoints attached for different jobs
// on the same mesh must reject each other's frames as attributed
// errors carrying the receiver's job ID — never decode them.
func TestAttachJobMismatchDetected(t *testing.T) {
	const k = 2
	ms, err := NewLoopbackSocketMesh(k)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()
	e0, err := Attach[testMsg](ms[0], testCodec{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Attach[testMsg](ms[1], testCodec{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, errs := jobExchange([]*Endpoint[testMsg]{e0, e1}, 0, make([][]transport.Envelope[testMsg], k))
	var sawMismatch bool
	for i, err := range errs {
		if err == nil {
			t.Fatalf("machine %d accepted a frame from another job", i)
		}
		var me *transport.MachineError
		if errors.As(err, &me) && me.Job != 0 && strings.Contains(err.Error(), "job") {
			sawMismatch = true
		}
	}
	if !sawMismatch {
		t.Fatalf("no job-stamped MachineError surfaced: %v / %v", errs[0], errs[1])
	}
	// The failure closed connections: the mesh is poisoned for reuse.
	if ms[0].Healthy() && ms[1].Healthy() {
		t.Fatal("both meshes still healthy after a job-mismatch failure")
	}
}

// TestAttachRejectsDeadMesh: attaching to a closed or never-connected
// mesh fails fast instead of wedging the first superstep.
func TestAttachRejectsDeadMesh(t *testing.T) {
	ms, err := NewLoopbackSocketMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	ms[0].Close()
	ms[1].Close()
	if _, err := Attach[testMsg](ms[0], testCodec{}, 1); err == nil {
		t.Fatal("attach to closed mesh succeeded")
	}
	lone, err := ListenMesh(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lone.Close()
	if _, err := Attach[testMsg](lone, testCodec{}, 1); err == nil {
		t.Fatal("attach to unconnected mesh succeeded")
	}
}
