package tcp

// Tests for the persistent exchange pipeline: worker lifecycle (spawned
// once, parked between supersteps, retired on Close), bytes-on-wire
// accounting, and cross-version interop of the v2 batch format.

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"kmachine/internal/rng"
	"kmachine/internal/testutil"
	"kmachine/internal/transport"
	"kmachine/internal/transport/inmem"
	"kmachine/internal/transport/wire"
)

// TestPipelineWorkersPersistAcrossSupersteps pins the tentpole property
// of the rebuilt exchange path: the worker population is created by
// mesh construction, does NOT grow or churn across supersteps, and
// drains completely on Close. The previous engine spawned ~2k
// goroutines per endpoint per superstep; a regression to that shows up
// here as a goroutine-count delta between supersteps.
func TestPipelineWorkersPersistAcrossSupersteps(t *testing.T) {
	base := runtime.NumGoroutine()
	const k = 4
	tr, err := New[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		tr.Close()
		testutil.NoLeakedGoroutines(t, base)
	}()

	outs := make([][]transport.Envelope[testMsg], k)
	for i := 0; i < k; i++ {
		outs[i] = []transport.Envelope[testMsg]{
			{From: transport.MachineID(i), To: transport.MachineID((i + 1) % k), Words: 1, Msg: testMsg{Tag: int64(i)}},
		}
	}
	if _, err := tr.Exchange(context.Background(), 0, outs); err != nil {
		t.Fatal(err)
	}
	// Population after the first superstep: transport drivers + data
	// workers + coordinator control readers, all persistent.
	settled := runtime.NumGoroutine()
	for step := 1; step <= 50; step++ {
		if _, err := tr.Exchange(context.Background(), step, outs); err != nil {
			t.Fatalf("superstep %d: %v", step, err)
		}
	}
	// Workers park between supersteps rather than exiting, so the count
	// must not drift in either direction (a small grace for unrelated
	// runtime goroutines).
	if now := runtime.NumGoroutine(); now > settled+2 || now < settled-2 {
		t.Errorf("goroutine population drifted across supersteps: %d after superstep 0, %d after 50", settled, now)
	}
}

// TestWireStatsCountsFrames checks the physical-layer accounting: a
// healthy loopback mesh receives every byte it ships, the per-superstep
// frame count matches the protocol (k·(k-1) data frames plus the
// barrier's 2(k-1) control frames and k-1 loopback-free reports), and
// byte totals grow monotonically with traffic.
func TestWireStatsCountsFrames(t *testing.T) {
	const k = 3
	tr, err := New[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if w := tr.WireStats(); w.FramesSent != 0 || w.BytesSent != 0 {
		t.Fatalf("fresh transport reports nonzero wire stats: %+v", w)
	}
	empty := make([][]transport.Envelope[testMsg], k)
	if _, err := tr.Exchange(context.Background(), 0, empty); err != nil {
		t.Fatal(err)
	}
	w0 := tr.WireStats()
	if w0.BytesSent != w0.BytesRecv || w0.FramesSent != w0.FramesRecv {
		t.Errorf("loopback mesh sent %d bytes/%d frames but received %d/%d",
			w0.BytesSent, w0.FramesSent, w0.BytesRecv, w0.FramesRecv)
	}
	// Data: k(k-1) frames. Barrier: k-1 reports to the coordinator over
	// sockets (its own loops back unframed) and k-1 verdict broadcasts.
	wantFrames := int64(k*(k-1) + 2*(k-1))
	if w0.FramesSent != wantFrames {
		t.Errorf("empty superstep shipped %d frames, want %d", w0.FramesSent, wantFrames)
	}

	outs := make([][]transport.Envelope[testMsg], k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			outs[i] = append(outs[i], transport.Envelope[testMsg]{
				From: transport.MachineID(i), To: transport.MachineID(j), Words: 5, Msg: testMsg{Tag: 77},
			})
		}
	}
	if _, err := tr.Exchange(context.Background(), 1, outs); err != nil {
		t.Fatal(err)
	}
	w1 := tr.WireStats()
	if w1.FramesSent != 2*wantFrames {
		t.Errorf("two supersteps shipped %d frames, want %d", w1.FramesSent, 2*wantFrames)
	}
	if w1.BytesSent-w0.BytesSent <= w0.BytesSent/2 {
		t.Errorf("loaded superstep (%d bytes) not measurably heavier than empty one (%d)",
			w1.BytesSent-w0.BytesSent, w0.BytesSent)
	}
}

// TestWireV2ShipsFewerBytesThanV1 runs identical traffic over a v2 and
// a v1 transport and asserts both that the inboxes are bit-identical
// (the format is behaviourally invisible) and that v2 puts fewer bytes
// on the wire — the point of the format.
func TestWireV2ShipsFewerBytesThanV1(t *testing.T) {
	const k, steps = 4, 10
	run := func(version byte) (int64, [][][]transport.Envelope[testMsg]) {
		tr, err := NewWithVersion[testMsg](k, testCodec{}, version)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		r := rng.New(1234)
		var history [][][]transport.Envelope[testMsg]
		for step := 0; step < steps; step++ {
			inboxes, err := tr.Exchange(context.Background(), step, randomOuts(r, k))
			if err != nil {
				t.Fatalf("version 0x%02x superstep %d: %v", version, step, err)
			}
			snap := make([][]transport.Envelope[testMsg], k)
			for i := range inboxes {
				snap[i] = append([]transport.Envelope[testMsg](nil), inboxes[i]...)
			}
			history = append(history, snap)
		}
		return tr.WireStats().BytesSent, history
	}
	v2Bytes, v2Hist := run(wire.BatchV2)
	v1Bytes, v1Hist := run(wire.BatchV1)
	if !reflect.DeepEqual(v2Hist, v1Hist) {
		t.Fatal("v1 and v2 transports delivered different inboxes for identical traffic")
	}
	if v2Bytes >= v1Bytes {
		t.Errorf("v2 shipped %d bytes, v1 %d — the compact format saved nothing", v2Bytes, v1Bytes)
	}
}

// TestMixedWireVersionMesh runs a mesh whose endpoints speak different
// batch versions — machine 0 ships legacy v1 frames, the rest v2 — and
// asserts delivery matches the loopback transport exactly. This is the
// compatibility guarantee of the version byte: decoders dispatch per
// frame, so a cluster can be upgraded one machine at a time.
func TestMixedWireVersionMesh(t *testing.T) {
	const k = 4
	eps, err := NewLoopbackMesh[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range eps {
			e.Close()
		}
	}()
	if err := eps[0].SetWireVersion(wire.BatchV1); err != nil {
		t.Fatal(err)
	}
	if err := eps[1].SetWireVersion(wire.BatchV2); err != nil {
		t.Fatal(err)
	}
	if err := eps[2].SetWireVersion(0x7f); err == nil {
		t.Error("SetWireVersion accepted an unknown version")
	}

	lb := inmem.New[testMsg](k)
	rT, rL := rng.New(55), rng.New(55)
	for step := 0; step < 10; step++ {
		outsT, outsL := randomOuts(rT, k), randomOuts(rL, k)
		got := make([][]transport.Envelope[testMsg], k)
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i], errs[i] = eps[i].Exchange(context.Background(), step, outsT[i])
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("superstep %d machine %d: %v", step, i, err)
			}
		}
		want, err := lb.Exchange(context.Background(), step, outsL)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k; j++ {
			if len(got[j]) == 0 && len(want[j]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got[j], want[j]) {
				t.Fatalf("superstep %d inbox %d:\n mixed mesh: %+v\n inmem:      %+v", step, j, got[j], want[j])
			}
		}
	}
}

// TestNewWithVersionRejectsUnknownVersion: a construction failure must
// surface as an error, not as a panic from closing half-built driver
// state.
func TestNewWithVersionRejectsUnknownVersion(t *testing.T) {
	if tr, err := NewWithVersion[testMsg](3, testCodec{}, 0x7e); err == nil {
		tr.Close()
		t.Fatal("NewWithVersion accepted an unknown wire version")
	}
}

// TestControlOpsBeforeConnectFailFast mirrors the dispatch guard on the
// coordinator's control path: CollectReports on an unconnected endpoint
// must error, not panic into nil worker channels.
func TestControlOpsBeforeConnectFailFast(t *testing.T) {
	ep, err := Listen[testMsg](0, 3, "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.ownQueue = append(ep.ownQueue, []byte("r"))
	if _, err := ep.CollectReports(context.Background(), 0); err == nil {
		t.Error("CollectReports before Connect succeeded")
	}
	if _, err := ep.Exchange(context.Background(), 0, nil); err == nil {
		t.Error("Exchange before Connect succeeded")
	}
}

// TestExchangeAfterCloseFailsFast: the dispatch guard must turn an
// Exchange on a closed transport into an immediate error instead of
// signalling workers that no longer exist (which would hang the
// WaitGroup forever).
func TestExchangeAfterCloseFailsFast(t *testing.T) {
	const k = 3
	tr, err := New[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	done := make(chan error, 1)
	go func() {
		_, err := tr.Exchange(context.Background(), 0, make([][]transport.Envelope[testMsg], k))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Exchange on a closed transport succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Exchange on a closed transport hung")
	}
}
