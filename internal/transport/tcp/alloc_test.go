package tcp

// Allocation-regression fence for the persistent exchange pipeline, in
// the spirit of internal/core/alloc_test.go: once the mesh is built and
// its buffers have grown to the working set, a steady-state superstep —
// signal the parked workers, encode/ship/receive/decode k(k-1) batch
// frames, pass the coordinator barrier, merge the inboxes — must not
// allocate. The budget covers only the measured loop's incidental noise
// (runtime timer churn from connection deadlines); a per-superstep
// allocation sneaking back into the pipeline blows it immediately
// (supersteps × k × peers ≈ thousands of extra allocations).

import (
	"context"
	"testing"

	"kmachine/internal/obs"
	"kmachine/internal/transport"
)

func TestSteadyStateExchangeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc fence is timing-free but runs hundreds of socket supersteps")
	}
	const k = 4
	const supersteps = 40
	tr, err := New[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Fixed ring traffic, reused outbox slices: the caller-side pattern
	// core's engine produces (outs stay caller-owned per the transport
	// contract).
	outs := make([][]transport.Envelope[testMsg], k)
	for i := 0; i < k; i++ {
		outs[i] = []transport.Envelope[testMsg]{
			{From: transport.MachineID(i), To: transport.MachineID((i + 1) % k), Words: 3, Msg: testMsg{Tag: int64(i)}},
			{From: transport.MachineID(i), To: transport.MachineID((i + k - 1) % k), Words: 2, Msg: testMsg{Tag: -int64(i)}},
		}
	}
	step := 0
	run := func() {
		for s := 0; s < supersteps; s++ {
			if _, err := tr.Exchange(context.Background(), step, outs); err != nil {
				t.Fatal(err)
			}
			step++
		}
	}
	// One warm-up pass outside the measurement grows every recycled
	// buffer to its steady-state capacity (AllocsPerRun's own warm-up
	// call would also do it, but being explicit keeps the budget's
	// meaning obvious).
	run()

	got := testing.AllocsPerRun(3, run)
	// The pipeline itself is allocation-free; the only recurring cost is
	// runtime-internal (netpoll deadline timers when SetDeadline renews
	// them, occasional bufio growth on the first pass). Budget one
	// allocation per two supersteps — a real per-superstep, per-peer
	// regression costs >= supersteps × (k-1) ≈ 120.
	budget := float64(supersteps / 2)
	if got > budget {
		t.Errorf("steady-state exchange allocated %.0f times over %d supersteps, budget %.0f — a per-superstep allocation crept into the pipeline", got, supersteps, budget)
	}

	// Same fence with a live obs.Trace recorder: the pipeline workers
	// record a frame-write span per batch sent and frame-read +
	// frame-decode spans per batch received, all into the trace's
	// preallocated ring — so instrumentation must not move the budget.
	// The trace is built once, outside the measured runs.
	trace := obs.NewTrace(4096, k)
	tr.SetRecorder(trace)
	run() // re-warm with the recorder installed
	instrumented := testing.AllocsPerRun(3, run)
	if instrumented > budget {
		t.Errorf("instrumented exchange allocated %.0f times over %d supersteps, budget %.0f — recording frame spans must not allocate", instrumented, supersteps, budget)
	}
	if c := trace.Counters(); c.FramesSent == 0 || c.FramesRecv == 0 {
		t.Fatalf("recorder saw no frames (sent=%d recv=%d) — the instrumented path did not run", c.FramesSent, c.FramesRecv)
	}
}
