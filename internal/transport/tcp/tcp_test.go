package tcp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"kmachine/internal/rng"
	"kmachine/internal/testutil"
	"kmachine/internal/transport"
	"kmachine/internal/transport/inmem"
	"kmachine/internal/transport/wire"
)

type testMsg struct {
	Tag int64
}

type testCodec struct{}

func (testCodec) Append(dst []byte, m testMsg) ([]byte, error) {
	return wire.AppendVarint(dst, m.Tag), nil
}

func (testCodec) Decode(src []byte) (testMsg, int, error) {
	v, n, err := wire.Varint(src)
	return testMsg{Tag: v}, n, err
}

// randomOuts builds a deterministic random traffic pattern, including
// self-addressed envelopes and silent machines.
func randomOuts(r *rng.RNG, k int) [][]transport.Envelope[testMsg] {
	outs := make([][]transport.Envelope[testMsg], k)
	for i := 0; i < k; i++ {
		for n := r.Intn(20); n > 0; n-- {
			outs[i] = append(outs[i], transport.Envelope[testMsg]{
				From:  transport.MachineID(i),
				To:    transport.MachineID(r.Intn(k)),
				Words: int32(r.Intn(50)),
				Msg:   testMsg{Tag: int64(r.Uint64() >> 1)},
			})
		}
	}
	return outs
}

func TestTCPExchangeMatchesLoopback(t *testing.T) {
	const k = 5
	tr, err := New[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	lb := inmem.New[testMsg](k)

	rT, rL := rng.New(99), rng.New(99)
	for step := 0; step < 30; step++ {
		outsT := randomOuts(rT, k)
		outsL := randomOuts(rL, k)
		got, err := tr.Exchange(context.Background(), step, outsT)
		if err != nil {
			t.Fatalf("superstep %d: %v", step, err)
		}
		want, err := lb.Exchange(context.Background(), step, outsL)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k; j++ {
			if len(got[j]) == 0 && len(want[j]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got[j], want[j]) {
				t.Fatalf("superstep %d inbox %d:\n tcp:    %+v\n inmem:  %+v", step, j, got[j], want[j])
			}
		}
	}
}

func TestTCPEmptySuperstep(t *testing.T) {
	const k = 3
	tr, err := New[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	inboxes, err := tr.Exchange(context.Background(), 0, make([][]transport.Envelope[testMsg], k))
	if err != nil {
		t.Fatal(err)
	}
	for j, in := range inboxes {
		if len(in) != 0 {
			t.Errorf("machine %d got %d envelopes from an empty superstep", j, len(in))
		}
	}
}

// TestBrokenConnectionErrorsInsteadOfDeadlocking is the regression test
// for the error-cascade teardown: a connection failing mid-run must
// surface as an Exchange error on every machine, not wedge the cluster
// in deadline-free reads.
func TestBrokenConnectionErrorsInsteadOfDeadlocking(t *testing.T) {
	const k = 3
	tr, err := New[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Exchange(context.Background(), 0, make([][]transport.Envelope[testMsg], k)); err != nil {
		t.Fatalf("healthy superstep: %v", err)
	}
	// Sever one data connection behind the transport's back.
	tr.eps[0].out[1].c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := tr.Exchange(context.Background(), 1, make([][]transport.Envelope[testMsg], k))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Exchange succeeded over a severed connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Exchange deadlocked on a severed connection")
	}
}

func TestEndpointBarrierSynchronises(t *testing.T) {
	const k = 4
	eps, err := NewLoopbackMesh[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range eps {
			e.Close()
		}
	}()
	for step := 0; step < 5; step++ {
		var wg sync.WaitGroup
		errs := make([]error, k)
		for i := range eps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = eps[i].Barrier(context.Background(), step)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("machine %d barrier (superstep %d): %v", i, step, err)
			}
		}
	}
}

func TestCoordinatorReportVerdictRoundTrip(t *testing.T) {
	const k = 4
	eps, err := NewLoopbackMesh[testMsg](k, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range eps {
			e.Close()
		}
	}()
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := range eps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eps[i].SendToCoordinator(context.Background(), []byte(fmt.Sprintf("report-%d", i))); err != nil {
				errs[i] = err
				return
			}
			if i == 0 {
				reports, err := eps[0].CollectReports(context.Background(), 0)
				if err != nil {
					errs[0] = err
					return
				}
				for j, r := range reports {
					if string(r) != fmt.Sprintf("report-%d", j) {
						errs[0] = fmt.Errorf("report %d = %q", j, r)
						return
					}
				}
				errs[0] = eps[0].Broadcast(context.Background(), []byte("verdict"))
				return
			}
			v, err := eps[i].ReceiveVerdict(context.Background())
			if err != nil {
				errs[i] = err
				return
			}
			if string(v) != "verdict" {
				errs[i] = fmt.Errorf("verdict = %q", v)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
	}
}

// TestExchangeDeadlineOnWedgedPeer is the regression test for the
// original hang: a peer that is alive but never ships its superstep
// batch must surface as a machine-attributed os.ErrDeadlineExceeded
// within the context deadline, not block forever.
func TestExchangeDeadlineOnWedgedPeer(t *testing.T) {
	base := runtime.NumGoroutine()
	eps, err := NewLoopbackMesh[testMsg](2, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range eps {
			e.Close()
		}
		testutil.NoLeakedGoroutines(t, base)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	// Machine 1 never calls Exchange: machine 0's read of its batch can
	// only end by deadline.
	_, err = eps[0].Exchange(ctx, 0, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Exchange against a wedged peer succeeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire, want ~200ms", elapsed)
	}
	var me *transport.MachineError
	if !errors.As(err, &me) {
		t.Fatalf("error %v carries no machine attribution", err)
	}
	if me.Machine != 1 || me.Superstep != 0 {
		t.Errorf("attributed to machine %d superstep %d, want 1/0", me.Machine, me.Superstep)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("error %v does not wrap os.ErrDeadlineExceeded", err)
	}
}

// TestExchangeCancellationUnblocks: with no deadline at all, canceling
// the context must still tear the endpoint down and unblock the read.
func TestExchangeCancellationUnblocks(t *testing.T) {
	eps, err := NewLoopbackMesh[testMsg](2, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range eps {
			e.Close()
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := eps[0].Exchange(ctx, 0, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Exchange succeeded under a canceled context with a wedged peer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock Exchange")
	}
}

// TestCloseIdempotent: Close must be safe to call repeatedly and
// concurrently — the error cascade, context cancellation, and deferred
// cleanup all close the same endpoint.
func TestCloseIdempotent(t *testing.T) {
	eps, err := NewLoopbackMesh[testMsg](3, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, e := range eps {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(e *Endpoint[testMsg]) {
				defer wg.Done()
				e.Close()
			}(e)
		}
	}
	wg.Wait()
	for i, e := range eps {
		if got, again := e.Close(), e.Close(); got != again {
			t.Errorf("endpoint %d: repeated Close returned %v then %v", i, got, again)
		}
	}
}

// TestTransportCloseIdempotent mirrors the endpoint check on the
// cluster-side Transport, including Close after SeverMachine.
func TestTransportCloseIdempotent(t *testing.T) {
	tr, err := New[testMsg](3, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SeverMachine(1); err != nil {
		t.Fatalf("sever: %v", err)
	}
	tr.Close()
	tr.Close()
}
