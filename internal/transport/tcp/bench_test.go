package tcp

// BenchmarkExchange measures the TCP substrate's hot path — one full
// superstep over the loopback mesh: parallel encode, k(k-1) frame
// ships, parallel decode, coordinator barrier, inbox merge — across
// cluster sizes and batch sizes. bytes/superstep is the measured wire
// traffic (from the endpoint WireStats), so format regressions show up
// next to time regressions in the same table. BenchmarkExchangeWireV1
// pins the legacy format at one operating point for the v1-vs-v2
// comparison recorded in BENCH_0003.json.

import (
	"context"
	"fmt"
	"testing"

	"kmachine/internal/transport"
	"kmachine/internal/transport/wire"
)

// benchOuts builds the per-machine outboxes: each machine ships `batch`
// envelopes to every peer, the all-to-all pattern of the paper's
// conversion theorems.
func benchOuts(k, batch int) [][]transport.Envelope[testMsg] {
	outs := make([][]transport.Envelope[testMsg], k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			for n := 0; n < batch; n++ {
				outs[i] = append(outs[i], transport.Envelope[testMsg]{
					From:  transport.MachineID(i),
					To:    transport.MachineID(j),
					Words: 2,
					Msg:   testMsg{Tag: int64(i*1000 + j*100 + n)},
				})
			}
		}
	}
	return outs
}

func benchExchange(b *testing.B, k, batch int, version byte) {
	tr, err := NewWithVersion[testMsg](k, testCodec{}, version)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	outs := benchOuts(k, batch)
	ctx := context.Background()
	// Warm the recycled buffers so the measurement is steady state.
	if _, err := tr.Exchange(ctx, 0, outs); err != nil {
		b.Fatal(err)
	}
	before := tr.WireStats()
	b.ReportAllocs()
	b.ResetTimer()
	for s := 0; s < b.N; s++ {
		if _, err := tr.Exchange(ctx, s+1, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w := tr.WireStats()
	b.ReportMetric(float64(w.BytesSent-before.BytesSent)/float64(b.N), "wirebytes/op")
}

func BenchmarkExchange(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		for _, batch := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("k=%d/batch=%d", k, batch), func(b *testing.B) {
				benchExchange(b, k, batch, wire.BatchV2)
			})
		}
	}
}

func BenchmarkExchangeWireV1(b *testing.B) {
	for _, batch := range []int{16, 256} {
		b.Run(fmt.Sprintf("k=8/batch=%d", batch), func(b *testing.B) {
			benchExchange(b, 8, batch, wire.BatchV1)
		})
	}
}
