package tcp

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"kmachine/internal/transport/wire"
)

// Mesh is one machine's standing socket fabric: its listener, the k-1
// dialed data connections, the k-1 accepted data connections, and the
// control connection to the coordinator (or, on the coordinator, from
// every peer). It is deliberately NOT generic in the message type —
// connections and their buffered readers/writers carry bytes, not
// envelopes — which is what lets a resident daemon keep one mesh alive
// while typed Endpoints of different algorithms attach to it job after
// job (see Attach). The single-run Listen/Connect path builds a private
// Mesh per Endpoint and behaves exactly as before.
//
// A Mesh has two terminal states: detached-from (healthy, reusable) and
// closed (poisoned). Any endpoint failure closes the whole mesh —
// closing the connections is what unblocks peers parked in reads — so a
// scheduler finding Healthy() false must rebuild the mesh before the
// next job.
type Mesh struct {
	id int
	k  int
	ln net.Listener

	out []*dataConn // out[j]: dialed conn for writing to peer j
	in  []*dataConn // in[j]: accepted conn for reading from peer j

	ctrl   *dataConn   // id>0: connection to the coordinator
	ctrlIn []*dataConn // id==0: ctrlIn[j] accepted from peer j

	mu        sync.Mutex
	connected bool
	closed    bool
	closeOnce sync.Once
	closeErr  error
}

// ListenMesh opens machine id's listener on addr ("host:0" picks a free
// port). Connect must be called before an Endpoint can attach.
func ListenMesh(id, k int, addr string) (*Mesh, error) {
	if k < 2 || id < 0 || id >= k {
		return nil, fmt.Errorf("tcp: invalid mesh id %d for k=%d", id, k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: machine %d listen %s: %w", id, addr, err)
	}
	return &Mesh{
		id:  id,
		k:   k,
		ln:  ln,
		out: make([]*dataConn, k),
		in:  make([]*dataConn, k),
	}, nil
}

// Addr returns the listener's concrete address (useful with ":0").
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// ID returns the machine ID this mesh serves.
func (m *Mesh) ID() int { return m.id }

// K returns the cluster size.
func (m *Mesh) K() int { return m.k }

// Healthy reports whether the mesh is connected and not closed: the
// scheduler's "may I run the next job on this fabric, or must I
// rebuild?" check. A mesh poisoned by any endpoint failure stays
// unhealthy forever — failed connections are not restartable.
func (m *Mesh) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.connected && !m.closed
}

// Connect completes the mesh: it dials a data connection to every peer
// in peers (indexed by machine ID; peers[m.id] is ignored) plus a
// control connection to peer 0, while accepting the mirror-image
// connections on its own listener. Dials are retried until timeout so
// nodes may start in any order.
func (m *Mesh) Connect(peers []string, timeout time.Duration) error {
	if len(peers) != m.k {
		return fmt.Errorf("tcp: machine %d got %d peer addresses for k=%d", m.id, len(peers), m.k)
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)

	wantAccept := m.k - 1 // data conns from every peer
	if m.id == 0 {
		m.ctrlIn = make([]*dataConn, m.k)
		wantAccept += m.k - 1 // plus every peer's control conn
	}

	var wg sync.WaitGroup
	var dialErr, acceptErr error

	wg.Add(1)
	go func() {
		defer wg.Done()
		dialErr = m.dialAll(peers, deadline)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		acceptErr = m.acceptAll(wantAccept, deadline)
	}()
	wg.Wait()

	if dialErr != nil || acceptErr != nil {
		m.Close()
		if dialErr != nil {
			return dialErr
		}
		return acceptErr
	}
	m.mu.Lock()
	m.connected = true
	m.mu.Unlock()
	return nil
}

func (m *Mesh) dialAll(peers []string, deadline time.Time) error {
	dial := func(addr string, kind byte) (*dataConn, error) {
		var lastErr error
		for time.Now().Before(deadline) {
			c, err := net.DialTimeout("tcp", addr, time.Until(deadline))
			if err != nil {
				lastErr = err
				time.Sleep(20 * time.Millisecond)
				continue
			}
			dc := newDataConn(c)
			hello := []byte{kind}
			hello = wire.AppendUvarint(hello, uint64(m.id))
			if err := wire.WriteFrame(dc.w, hello); err != nil {
				c.Close()
				return nil, err
			}
			if err := dc.w.Flush(); err != nil {
				c.Close()
				return nil, err
			}
			return dc, nil
		}
		return nil, fmt.Errorf("tcp: machine %d dial %s timed out: %v", m.id, addr, lastErr)
	}
	for j := 0; j < m.k; j++ {
		if j == m.id {
			continue
		}
		dc, err := dial(peers[j], helloData)
		if err != nil {
			return err
		}
		m.out[j] = dc
	}
	if m.id != 0 {
		dc, err := dial(peers[0], helloCtrl)
		if err != nil {
			return err
		}
		m.ctrl = dc
	}
	return nil
}

func (m *Mesh) acceptAll(want int, deadline time.Time) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := m.ln.(deadliner); ok {
		if err := d.SetDeadline(deadline); err != nil {
			return fmt.Errorf("tcp: machine %d set accept deadline: %w", m.id, err)
		}
		defer d.SetDeadline(time.Time{})
	}
	for got := 0; got < want; got++ {
		c, err := m.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: machine %d accept: %w", m.id, err)
		}
		dc := newDataConn(c)
		hello, err := wire.ReadFrame(dc.r)
		if err != nil {
			c.Close()
			return fmt.Errorf("tcp: machine %d bad hello: %w", m.id, err)
		}
		if len(hello) < 2 {
			c.Close()
			return fmt.Errorf("tcp: machine %d short hello", m.id)
		}
		from, _, err := wire.Uvarint(hello[1:])
		if err != nil || int(from) >= m.k || int(from) == m.id {
			c.Close()
			return fmt.Errorf("tcp: machine %d hello from invalid peer %d", m.id, from)
		}
		switch hello[0] {
		case helloData:
			if m.in[from] != nil {
				c.Close()
				return fmt.Errorf("tcp: machine %d got duplicate data conn from %d", m.id, from)
			}
			m.in[from] = dc
		case helloCtrl:
			if m.id != 0 {
				c.Close()
				return fmt.Errorf("tcp: machine %d (not coordinator) got control conn from %d", m.id, from)
			}
			if m.ctrlIn[from] != nil {
				c.Close()
				return fmt.Errorf("tcp: coordinator got duplicate control conn from %d", from)
			}
			m.ctrlIn[from] = dc
		default:
			c.Close()
			return fmt.Errorf("tcp: machine %d unknown hello kind %d", m.id, hello[0])
		}
	}
	return nil
}

// Close tears down the listener and every connection, unblocking all
// pending I/O on them. Idempotent: concurrent and repeated calls are
// safe and return the first call's result.
func (m *Mesh) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.closeOnce.Do(func() {
		var errs []string
		record := func(err error) {
			if err != nil {
				errs = append(errs, err.Error())
			}
		}
		if m.ln != nil {
			record(m.ln.Close())
		}
		for _, dc := range m.out {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		for _, dc := range m.in {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		if m.ctrl != nil {
			record(m.ctrl.c.Close())
		}
		for _, dc := range m.ctrlIn {
			if dc != nil {
				record(dc.c.Close())
			}
		}
		if len(errs) > 0 {
			m.closeErr = fmt.Errorf("tcp: close machine %d: %s", m.id, strings.Join(errs, "; "))
		}
	})
	return m.closeErr
}

// NewLoopbackSocketMesh builds the complete k-machine standing fabric
// over loopback TCP inside one process: k listeners on 127.0.0.1, every
// ordered pair connected, no endpoint attached yet. The resident-daemon
// counterpart of NewLoopbackMesh; typed per-job Endpoints attach via
// Attach and detach at job end.
func NewLoopbackSocketMesh(k int) ([]*Mesh, error) {
	ms := make([]*Mesh, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		m, err := ListenMesh(i, k, "127.0.0.1:0")
		if err != nil {
			for _, prev := range ms[:i] {
				prev.Close()
			}
			return nil, err
		}
		ms[i] = m
		addrs[i] = m.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ms[i].Connect(addrs, DefaultDialTimeout)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, m := range ms {
				m.Close()
			}
			return nil, err
		}
	}
	return ms, nil
}
