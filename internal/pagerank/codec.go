package pagerank

import (
	"fmt"

	"kmachine/internal/routing"
	twire "kmachine/internal/transport/wire"
)

// Wire is the envelope payload type of a PageRank run: the token-count
// message in its two-hop routing frame. It is exported so callers can
// open a transport (core.OpenTransport[pagerank.Wire]) or drive a
// standalone node (node.Run with a pagerank machine).
type Wire = wire

// WireCodec returns the binary codec for PageRank envelopes: the
// Hop framing around ⟨kind, vertex, count⟩.
func WireCodec() twire.Codec[Wire] {
	return routing.HopCodec[msg](msgCodec{})
}

type msgCodec struct{}

func (msgCodec) Append(dst []byte, m msg) ([]byte, error) {
	dst = append(dst, m.Kind)
	dst = twire.AppendVarint(dst, int64(m.V))
	return twire.AppendVarint(dst, m.Count), nil
}

func (msgCodec) Decode(src []byte) (msg, int, error) {
	if len(src) < 1 {
		return msg{}, 0, fmt.Errorf("pagerank: truncated message")
	}
	m := msg{Kind: src[0]}
	pos := 1
	v, n, err := twire.Varint(src[pos:])
	if err != nil {
		return msg{}, 0, err
	}
	m.V = int32(v)
	pos += n
	c, n, err := twire.Varint(src[pos:])
	if err != nil {
		return msg{}, 0, err
	}
	m.Count = c
	return m, pos + n, nil
}
