package pagerank

import (
	"testing"
	"testing/quick"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/partition"
)

// Property tests for structural invariants of the token process that
// hold for every graph, partition and option combination.

// TestPropertyPsiConservation: psi counts every token visit, so
// n·tokens <= Σψ <= n·tokens·(iterations+1): each of the n·tokens
// initial tokens contributes its starting visit and at most one visit
// per iteration afterwards.
func TestPropertyPsiConservation(t *testing.T) {
	f := func(seedRaw uint16, kSel, tokSel uint8) bool {
		seed := uint64(seedRaw)
		n := 50 + int(seedRaw%200)
		g := gen.DirectedGnp(n, 4/float64(n), seed)
		k := []int{2, 4, 8}[kSel%3]
		tokens := []int{4, 16, 64}[tokSel%3]
		p := partition.NewRVP(g, k, seed+1)
		opts := AlgorithmOne(0.2)
		opts.Tokens = tokens
		opts.Iterations = 20
		res, err := Run(p, core.Config{K: k, Bandwidth: 8, Seed: seed + 2}, opts)
		if err != nil {
			return false
		}
		var sum int64
		for _, psi := range res.Psi {
			sum += psi
		}
		lo := int64(n) * int64(tokens)
		hi := lo * int64(opts.Iterations+1)
		return sum >= lo && sum <= hi
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyEstimatesNonNegativeAndBounded: every estimate is in
// [0, (iterations+1)·eps] regardless of options.
func TestPropertyEstimatesBounded(t *testing.T) {
	f := func(seedRaw uint16, aggSel, heavySel, hopSel uint8) bool {
		seed := uint64(seedRaw) + 5000
		n := 40 + int(seedRaw%100)
		g := gen.DirectedGnp(n, 6/float64(n), seed)
		p := partition.NewRVP(g, 4, seed+1)
		opts := Options{
			Eps:        0.2,
			Tokens:     8,
			Iterations: 15,
			Aggregate:  aggSel%2 == 0,
			HeavyPath:  heavySel%2 == 0,
			TwoHop:     hopSel%2 == 0,
		}
		res, err := Run(p, core.Config{K: 4, Bandwidth: 8, Seed: seed + 2}, opts)
		if err != nil {
			return false
		}
		hi := float64(opts.Iterations+1) * opts.Eps
		for _, e := range res.Estimate {
			if e < 0 || e > hi {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyOptionAgreement: all eight option combinations compute the
// same process (identical expectations), so their total psi mass should
// agree within Monte-Carlo noise on a fixed graph.
func TestPropertyOptionAgreement(t *testing.T) {
	g := gen.Gnp(400, 0.01, 61)
	p := partition.NewRVP(g, 8, 67)
	var masses []float64
	for _, agg := range []bool{true, false} {
		for _, heavy := range []bool{true, false} {
			for _, hop := range []bool{true, false} {
				opts := Options{Eps: 0.2, Tokens: 64, Iterations: 40,
					Aggregate: agg, HeavyPath: heavy, TwoHop: hop}
				res, err := Run(p, core.Config{K: 8, Bandwidth: 8, Seed: 71}, opts)
				if err != nil {
					t.Fatal(err)
				}
				var sum int64
				for _, psi := range res.Psi {
					sum += psi
				}
				masses = append(masses, float64(sum))
			}
		}
	}
	// Expected total mass: n·tokens/eps (geometric visit chain). All
	// variants must be within 10% of each other.
	min, max := masses[0], masses[0]
	for _, m := range masses {
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if max/min > 1.1 {
		t.Errorf("option combinations disagree on total visit mass: min %g, max %g", min, max)
	}
}

// TestUndirectedGraphWalk: PageRank on an undirected graph walks the
// symmetric adjacency (every neighbour is an out-neighbour).
func TestUndirectedGraphWalk(t *testing.T) {
	g := gen.Cycle(200)
	p := partition.NewRVP(g, 4, 73)
	opts := AlgorithmOne(0.15)
	opts.Tokens = 64
	res, err := Run(p, core.Config{K: 4, Bandwidth: 8, Seed: 79}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric cycle: all estimates near 1/n.
	want := 1.0 / float64(g.N())
	for v, e := range res.Estimate {
		if e < want/3 || e > want*3 {
			t.Errorf("undirected cycle vertex %d estimate %g far from uniform %g", v, e, want)
		}
	}
}
