// Package pagerank implements the paper's distributed PageRank
// computation (§3.1) in the k-machine model.
//
// The algorithm is the Monte-Carlo token process of Das Sarma et al.
// [20]: every vertex starts c·log n tokens; in each of Θ(log n / eps)
// iterations a token terminates with probability eps and otherwise moves
// to a uniformly random out-neighbour; psi(v) counts all tokens that ever
// visit v and eps·psi(v)/(n·c·log n) is whp a δ-approximation of
// PageRank(v).
//
// The paper's contribution (Algorithm 1, Theorem 4) is how to route the
// token movements in Õ(n/k²) rounds instead of the Õ(n/k) obtained by
// mechanically converting the CONGEST algorithm (Klauck et al. [33]):
//
//  1. per-destination aggregation — a machine merges all tokens its
//     vertices send to the same destination vertex v into one count
//     message ⟨α[v], dest:v⟩ (light path);
//  2. heavy vertices — a vertex holding ≥ k tokens samples, per token, a
//     destination *machine* j with probability n_{j,u}/d_u and sends one
//     count message ⟨β[j], src:u⟩ per machine; the receiver forwards each
//     counted token to a uniformly random locally-hosted neighbour of u.
//     This caps a heavy vertex's traffic at k-1 messages per iteration;
//  3. random routing — light messages travel via a uniformly random
//     intermediate machine (Valiant two-hop, Lemma 13), so no single link
//     serialises.
//
// Options exposes each mechanism as a toggle: disabling all three yields
// exactly the conversion-style baseline the paper improves upon, and the
// individual toggles drive the E14 ablation experiments.
package pagerank

import (
	"fmt"
	"math"
	"slices"

	"kmachine/internal/algo"
	"kmachine/internal/core"
	"kmachine/internal/partition"
	"kmachine/internal/rng"
	"kmachine/internal/routing"
)

// Options configures a distributed PageRank run.
type Options struct {
	// Eps is the reset probability (must be in (0,1)).
	Eps float64
	// Tokens is the number of tokens each vertex starts with. 0 means
	// ceil(C·log2(n+1)) with C = 8, the paper's c·log n.
	Tokens int
	// Iterations is the number of random-walk steps. 0 means
	// ceil(3·ln(n·Tokens+1)/Eps), enough for all tokens to die whp.
	Iterations int
	// Aggregate enables per-destination-vertex aggregation (paper's α).
	Aggregate bool
	// HeavyPath enables the ≥k-token machine-level path (paper's β).
	HeavyPath bool
	// TwoHop routes light messages via random intermediates (Lemma 13).
	TwoHop bool
}

// AlgorithmOne returns the paper's Algorithm 1 configuration.
func AlgorithmOne(eps float64) Options {
	return Options{Eps: eps, Aggregate: true, HeavyPath: true, TwoHop: true}
}

// ConversionBaseline returns the Õ(n/k) baseline of Klauck et al. [33]:
// a direct simulation of the CONGEST token algorithm with per-edge
// messages, no heavy-vertex handling and direct routing.
func ConversionBaseline(eps float64) Options {
	return Options{Eps: eps}
}

// ApplyDefaults fills Tokens and Iterations with the paper's defaults
// for an n-vertex input. Every machine of a run must use the same
// resolved Options — standalone nodes (cmd/kmnode) call this before
// NewNodeMachine, and Run calls it for the in-process cluster.
func (o *Options) ApplyDefaults(n int) {
	if o.Tokens == 0 {
		o.Tokens = int(math.Ceil(8 * math.Log2(float64(n)+1)))
	}
	if o.Iterations == 0 {
		o.Iterations = int(math.Ceil(3 * math.Log(float64(n)*float64(o.Tokens)+1) / o.Eps))
	}
}

// Result is the outcome of a distributed PageRank computation.
type Result struct {
	// Estimate[v] is the PageRank estimate output by v's home machine.
	Estimate []float64
	// Psi[v] is the raw visit count behind the estimate.
	Psi []int64
	// OutputsPerMachine[i] counts the (vertex, value) pairs machine i
	// output — the quantity the lower-bound argument (Lemma 6) tracks.
	OutputsPerMachine []int
	// Stats is the measured communication profile.
	Stats *core.Stats
	// Iterations actually executed.
	Iterations int
	// TokensPerVertex actually used.
	TokensPerVertex int
}

// msg is the wire format. Light messages carry a destination vertex and
// a token count; heavy messages carry a source vertex and a token count.
type msg struct {
	Kind  uint8 // kindLight or kindHeavy
	V     int32
	Count int64
}

const (
	kindLight = iota
	kindHeavy
)

const msgWords = 2 // vertex ID + count, each one Θ(log n)-bit word

type machine struct {
	view partition.View
	opts Options

	// tokens/psi are dense over the global vertex space (nonzero only at
	// local vertices): O(n) per machine instead of a map's O(n/k), but
	// the hot loops touch them once per token and the simulation already
	// holds dense O(n) partition state, so the constant-time unchecked
	// index is worth the k× footprint at simulator scale.
	tokens []int64
	psi    []int64
	// byIn(u) = byInIdx[byInOff[u]:byInOff[u+1]] lists the local
	// vertices that are out-neighbours of u (receiver side of the heavy
	// path) — a CSR index built count-then-place, replacing a
	// map-of-slices whose per-key appends dominated construction cost.
	byInOff []int32
	byInIdx []int32
	// heavyDist caches per-vertex alias tables over destination machines.
	heavyDist map[int32]*rng.Alias

	// Per-superstep scratch, recycled across supersteps so a
	// steady-state Step allocates nothing: accVals/accKeys form the
	// sparse per-destination-vertex counter behind flushLight (dense
	// values plus the list of touched keys, re-zeroed on flush), beta
	// the heavy-path per-machine counts, delivBuf/outBuf the
	// DeliverInto scratch.
	accVals  []int64
	accKeys  []int32
	beta     []int64
	delivBuf []msg
	outBuf   []core.Envelope[wire]
	// buckets[j] collects the superstep's envelopes addressed to machine
	// j (per-destination program order preserved — see the routing
	// *Buckets contract); core.EmitBuckets streams each non-self bucket
	// eagerly on streaming runs and appends all of them to the returned
	// outs on lockstep runs, byte-identically either way.
	buckets [][]core.Envelope[wire]

	iter int
}

func newMachine(view partition.View, opts Options) *machine {
	n := view.N()
	m := &machine{
		view:      view,
		opts:      opts,
		tokens:    make([]int64, n),
		psi:       make([]int64, n),
		byInOff:   make([]int32, n+1),
		heavyDist: make(map[int32]*rng.Alias),
		accVals:   make([]int64, n),
		beta:      make([]int64, view.K()),
		buckets:   make([][]core.Envelope[wire], view.K()),
	}
	for _, v := range view.Locals() {
		m.tokens[v] = int64(opts.Tokens)
		m.psi[v] = int64(opts.Tokens)
		for _, u := range view.InAdj(v) {
			m.byInOff[u+1]++
		}
	}
	for u := 0; u < n; u++ {
		m.byInOff[u+1] += m.byInOff[u]
	}
	m.byInIdx = make([]int32, m.byInOff[n])
	pos := make([]int32, n)
	copy(pos, m.byInOff[:n])
	// Placement order matches the old per-key append order: locals in
	// increasing ID order, each local's in-neighbours in CSR order.
	for _, v := range view.Locals() {
		for _, u := range view.InAdj(v) {
			m.byInIdx[pos[u]] = v
			pos[u]++
		}
	}
	return m
}

// byIn returns the local out-neighbours of u.
func (m *machine) byIn(u int32) []int32 {
	return m.byInIdx[m.byInOff[u]:m.byInOff[u+1]]
}

type wire = routing.Hop[msg]

func (m *machine) Step(ctx *core.StepContext, inbox []core.Envelope[wire]) ([]core.Envelope[wire], bool) {
	buckets := m.buckets
	for j := range buckets {
		buckets[j] = buckets[j][:0]
	}
	delivered := routing.DeliverIntoBuckets(m.view.Self(), inbox, m.delivBuf[:0], buckets)
	m.delivBuf = delivered[:0]
	out := m.outBuf[:0]
	for _, d := range delivered {
		m.receive(ctx, d)
	}
	// Even supersteps start walk iterations; odd ones only relay/receive.
	if ctx.Superstep%2 != 0 {
		out = core.EmitBuckets(ctx, buckets, out)
		m.outBuf = out
		return out, m.iter >= m.opts.Iterations
	}
	if m.iter >= m.opts.Iterations {
		// Quiescence must be judged on what the superstep PRODUCED, not
		// on what is left in out after streaming — the predicate below is
		// therefore computed over the buckets, identically on both
		// schedules.
		quiet := true
		for j := range buckets {
			if len(buckets[j]) > 0 {
				quiet = false
				break
			}
		}
		out = core.EmitBuckets(ctx, buckets, out)
		m.outBuf = out
		return out, quiet
	}
	m.iter++

	for _, u := range m.view.Locals() {
		t := m.tokens[u]
		if t == 0 {
			continue
		}
		// Terminate each token with probability eps (Algorithm 1 line 5).
		t -= ctx.RNG.Binomial(t, m.opts.Eps)
		m.tokens[u] = 0
		if t == 0 {
			continue
		}
		adj := m.view.OutAdj(u)
		if len(adj) == 0 {
			// Dangling vertex: the killed walk ends here (the semantics
			// of the paper's Lemma 4 arithmetic — w is a sink).
			continue
		}
		if m.opts.HeavyPath && t >= int64(ctx.K) {
			m.walkHeavy(ctx, u, t, adj)
			continue
		}
		if m.opts.Aggregate {
			// Light path: accumulate destination-vertex counts across
			// all local sources (the paper's α), flushed once below.
			for i := int64(0); i < t; i++ {
				v := adj[ctx.RNG.Intn(len(adj))]
				if m.accVals[v] == 0 {
					m.accKeys = append(m.accKeys, v)
				}
				m.accVals[v]++
			}
			continue
		}
		// Baseline granularity: per (source, destination-vertex) counts,
		// flushed per source vertex — no cross-vertex merging.
		for i := int64(0); i < t; i++ {
			v := adj[ctx.RNG.Intn(len(adj))]
			if m.accVals[v] == 0 {
				m.accKeys = append(m.accKeys, v)
			}
			m.accVals[v]++
		}
		m.flushLight(ctx)
	}
	if m.opts.Aggregate {
		m.flushLight(ctx)
	}
	out = core.EmitBuckets(ctx, buckets, out)
	m.outBuf = out
	return out, false
}

// flushLight emits one ⟨count, dest:v⟩ message per accumulated
// destination vertex, in sorted vertex order for determinism, and
// resets the accumulator (zeroing only the touched entries).
func (m *machine) flushLight(ctx *core.StepContext) {
	if len(m.accKeys) == 0 {
		return
	}
	keys := m.accKeys
	slices.Sort(keys)
	for _, v := range keys {
		payload := msg{Kind: kindLight, V: v, Count: m.accVals[v]}
		m.accVals[v] = 0
		home := m.view.HomeOf(v)
		if m.opts.TwoHop {
			routing.RouteBuckets(m.buckets, ctx.RNG, ctx.K, home, msgWords, payload)
		} else {
			routing.RouteDirectBuckets(m.buckets, home, msgWords, payload)
		}
	}
	m.accKeys = keys[:0]
}

// walkHeavy implements Algorithm 1 lines 18-27: sample a destination
// machine per token from the degree distribution and send one count
// message per machine.
func (m *machine) walkHeavy(ctx *core.StepContext, u int32, t int64, adj []int32) {
	dist, ok := m.heavyDist[u]
	if !ok {
		weights := make([]float64, ctx.K)
		for _, v := range adj {
			weights[m.view.HomeOf(v)]++
		}
		dist = rng.NewAlias(weights)
		m.heavyDist[u] = dist
	}
	beta := m.beta
	for j := range beta {
		beta[j] = 0
	}
	for i := int64(0); i < t; i++ {
		beta[dist.Sample(ctx.RNG)]++
	}
	for j, c := range beta {
		if c == 0 {
			continue
		}
		// Heavy messages go direct: there is at most one per (vertex,
		// machine) pair, so they cannot congest a link (Lemma 12).
		routing.RouteDirectBuckets(m.buckets, core.MachineID(j), msgWords,
			msg{Kind: kindHeavy, V: u, Count: c})
	}
}

// receive processes a delivered payload.
func (m *machine) receive(ctx *core.StepContext, d msg) {
	switch d.Kind {
	case kindLight:
		m.tokens[d.V] += d.Count
		m.psi[d.V] += d.Count
	case kindHeavy:
		// Distribute d.Count tokens of source vertex d.V uniformly among
		// its locally hosted out-neighbours (Algorithm 1 lines 31-36).
		local := m.byIn(d.V)
		if len(local) == 0 {
			panic(fmt.Sprintf("pagerank: machine %d got heavy tokens for %d but hosts no neighbour",
				m.view.Self(), d.V))
		}
		for i := int64(0); i < d.Count; i++ {
			w := local[ctx.RNG.Intn(len(local))]
			m.tokens[w]++
			m.psi[w]++
		}
	}
}

// Run executes a distributed PageRank computation over the given vertex
// partition. cfg.K must equal p.K. It routes through the generic
// internal/algo driver: the descriptor's machines, outputs, and merge
// are exactly what the standalone node runtime uses, so every substrate
// produces bit-identical results.
func Run(p *partition.VertexPartition, cfg core.Config, opts Options) (*Result, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("pagerank: eps=%v out of (0,1)", opts.Eps)
	}
	res, stats, err := algo.Run(Descriptor(p.G.N(), opts), p, cfg)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}
