package pagerank

import (
	"math"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

func run(t *testing.T, g *graph.Graph, k int, opts Options, seed uint64) *Result {
	t.Helper()
	p := partition.NewRVP(g, k, seed)
	res, err := Run(p, core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: seed + 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// commRounds isolates the communication term of a run: total rounds
// minus the 2-supersteps-per-iteration floor. The paper's Õ hides an
// additive polylog term (footnote 4) which is exactly this Θ(log n / eps)
// iteration floor, so scaling claims are about the remainder.
func commRounds(res *Result) int64 {
	c := res.Stats.Rounds - 2*int64(res.Iterations)
	if c < 0 {
		c = 0
	}
	return c
}

func TestEstimatesSumToOneOnCycle(t *testing.T) {
	// On a directed cycle there are no dangling vertices, so with enough
	// iterations the estimates must sum to ~1 and be ~uniform.
	g := gen.DirectedCycle(400)
	res := run(t, g, 8, AlgorithmOne(0.15), 3)
	var sum float64
	for _, e := range res.Estimate {
		sum += e
	}
	if math.Abs(sum-1) > 0.05 {
		t.Errorf("estimates sum to %g, want ~1", sum)
	}
	want := 1.0 / float64(g.N())
	var maxRel float64
	for v, e := range res.Estimate {
		rel := math.Abs(e-want) / want
		if rel > maxRel {
			maxRel = rel
		}
		if rel > 0.9 {
			t.Errorf("vertex %d estimate %g wildly off uniform %g", v, e, want)
		}
	}
}

func TestMatchesSolverOnRandomDigraph(t *testing.T) {
	g := gen.DirectedGnp(300, 0.02, 17)
	opts := AlgorithmOne(0.2)
	opts.Tokens = 256 // extra tokens tighten the Monte-Carlo noise
	res := run(t, g, 6, opts, 5)
	truth := graph.ExpectedVisitPageRank(g, graph.PageRankOptions{Eps: 0.2, Tol: 1e-12, MaxIter: 5000})
	// Compare on the high-rank half, where relative error is meaningful.
	var relSum float64
	var count int
	for v := range truth {
		if truth[v] < 1.0/float64(g.N()) {
			continue
		}
		relSum += math.Abs(res.Estimate[v]-truth[v]) / truth[v]
		count++
	}
	if count == 0 {
		t.Fatal("no high-rank vertices to compare")
	}
	if avg := relSum / float64(count); avg > 0.15 {
		t.Errorf("mean relative error %g on high-rank vertices, want < 0.15", avg)
	}
}

func TestDistinguishesLowerBoundBits(t *testing.T) {
	// The heart of Theorem 2: a correct PageRank algorithm reveals the
	// direction bits of the Figure-1 graph. PR(v_i | b=1)/PR(v_i | b=0)
	// ≈ 1.44 at eps = 0.15, so with enough tokens the estimates separate.
	const q = 24
	bits := make([]bool, q)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	lb := gen.LowerBoundGraphWithBits(bits, 7)
	opts := AlgorithmOne(0.15)
	opts.Tokens = 2048
	res := run(t, lb.G, 8, opts, 11)
	pr0, pr1 := gen.Lemma4Expected(0.15, lb.G.N())
	thresh := (pr0 + pr1) / 2
	correct := 0
	for i := 0; i < q; i++ {
		est := res.Estimate[lb.V(i)]
		if (est > thresh) == bits[i] {
			correct++
		}
	}
	if correct < q-1 {
		t.Errorf("recovered %d/%d direction bits; algorithm does not distinguish Lemma 4 cases", correct, q)
	}
}

func TestHeavyPathCorrectOnStar(t *testing.T) {
	// Undirected star: the hub accumulates ≫ k tokens each iteration, so
	// the heavy path is exercised; estimates must still match the solver.
	g := gen.Star(300)
	opts := AlgorithmOne(0.2)
	opts.Tokens = 512
	res := run(t, g, 8, opts, 13)
	truth := graph.ExpectedVisitPageRank(g, graph.PageRankOptions{Eps: 0.2, Tol: 1e-12, MaxIter: 5000})
	if rel := math.Abs(res.Estimate[0]-truth[0]) / truth[0]; rel > 0.1 {
		t.Errorf("hub estimate %g vs truth %g (rel err %g)", res.Estimate[0], truth[0], rel)
	}
	// Leaves are symmetric; spot-check the mean.
	var estMean, truthMean float64
	for v := 1; v < g.N(); v++ {
		estMean += res.Estimate[v]
		truthMean += truth[v]
	}
	estMean /= float64(g.N() - 1)
	truthMean /= float64(g.N() - 1)
	if rel := math.Abs(estMean-truthMean) / truthMean; rel > 0.1 {
		t.Errorf("leaf mean estimate %g vs truth %g", estMean, truthMean)
	}
}

func TestAlgorithmOneBeatsBaselineOnStar(t *testing.T) {
	// The paper's star example (§3.1): the baseline funnels one message
	// per leaf into the hub's machine (Θ(n/k) rounds per iteration);
	// Algorithm 1 aggregates to O(1) messages per machine. Theorem 2
	// assumes k = Ω(log² n), i.e. initial tokens c·log n < k, so leaves
	// start (and stay) light; we run in that regime.
	g := gen.Star(2000)
	const k = 32
	opts := AlgorithmOne(0.2)
	opts.Tokens = 16
	base := ConversionBaseline(0.2)
	base.Tokens = 16
	alg := run(t, g, k, opts, 19)
	bl := run(t, g, k, base, 19)
	algC, blC := commRounds(alg), commRounds(bl)
	if blC < 5*algC+20 {
		t.Errorf("Algorithm 1 comm rounds %d (total %d) not ≪ baseline %d (total %d) on star",
			algC, alg.Stats.Rounds, blC, bl.Stats.Rounds)
	}
}

func TestRoundsScaleSuperlinearlyInK(t *testing.T) {
	// Theorem 4: Õ(n/k²). Doubling k should cut rounds by ≫ 2 while the
	// communication term dominates. Run in the k > c·log n regime
	// (tokens < k) and cap iterations so the per-superstep floor of one
	// round does not mask the communication term.
	g := gen.Gnp(3000, 0.004, 23)
	opts := AlgorithmOne(0.15)
	opts.Tokens = 8
	opts.Iterations = 40
	r16 := run(t, g, 16, opts, 29)
	r32 := run(t, g, 32, opts, 29)
	c16, c32 := commRounds(r16), commRounds(r32)
	if c32 == 0 {
		c32 = 1
	}
	ratio := float64(c16) / float64(c32)
	if ratio < 2.2 {
		t.Errorf("k 16->32 comm-round speedup %.2fx (%d vs %d); Õ(n/k²) predicts ~4x, need > 2.2x",
			ratio, c16, c32)
	}
}

func TestOutputsCoverAllVertices(t *testing.T) {
	g := gen.DirectedGnp(200, 0.03, 31)
	res := run(t, g, 5, AlgorithmOne(0.15), 37)
	total := 0
	for _, c := range res.OutputsPerMachine {
		total += c
	}
	if total != g.N() {
		t.Errorf("machines output %d PageRank values, want %d", total, g.N())
	}
	for v, e := range res.Estimate {
		if e < 0 {
			t.Fatalf("negative estimate at vertex %d", v)
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g := gen.DirectedGnp(150, 0.04, 41)
	a := run(t, g, 4, AlgorithmOne(0.15), 43)
	b := run(t, g, 4, AlgorithmOne(0.15), 43)
	if a.Stats.Rounds != b.Stats.Rounds || a.Stats.Words != b.Stats.Words {
		t.Error("stats differ across identical runs")
	}
	for v := range a.Estimate {
		if a.Estimate[v] != b.Estimate[v] {
			t.Fatalf("estimate for %d differs across identical runs", v)
		}
	}
}

func TestRejectsBadConfig(t *testing.T) {
	g := gen.DirectedCycle(10)
	p := partition.NewRVP(g, 4, 1)
	if _, err := Run(p, core.Config{K: 5, Bandwidth: 4, Seed: 1}, AlgorithmOne(0.15)); err == nil {
		t.Error("mismatched k accepted")
	}
	if _, err := Run(p, core.Config{K: 4, Bandwidth: 4, Seed: 1}, Options{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestBaselineMatchesSolverToo(t *testing.T) {
	// The baseline is slower, not wrong: estimates must also track truth.
	g := gen.DirectedGnp(150, 0.04, 47)
	opts := ConversionBaseline(0.2)
	opts.Tokens = 256
	res := run(t, g, 4, opts, 53)
	truth := graph.ExpectedVisitPageRank(g, graph.PageRankOptions{Eps: 0.2, Tol: 1e-12, MaxIter: 5000})
	var relSum float64
	var count int
	for v := range truth {
		if truth[v] < 1.0/float64(g.N()) {
			continue
		}
		relSum += math.Abs(res.Estimate[v]-truth[v]) / truth[v]
		count++
	}
	if avg := relSum / float64(count); avg > 0.15 {
		t.Errorf("baseline mean relative error %g, want < 0.15", avg)
	}
}

func TestPsiConsistentWithEstimates(t *testing.T) {
	g := gen.DirectedCycle(100)
	res := run(t, g, 4, AlgorithmOne(0.15), 59)
	scale := 0.15 / (float64(g.N()) * float64(res.TokensPerVertex))
	for v := range res.Estimate {
		if math.Abs(res.Estimate[v]-float64(res.Psi[v])*scale) > 1e-12 {
			t.Fatalf("estimate[%d] inconsistent with psi", v)
		}
	}
}
