package pagerank

import (
	"fmt"

	"kmachine/internal/core"
	"kmachine/internal/partition"
)

// NodeMachine is one machine of a distributed PageRank computation,
// packaged behind the algo.Machine contract: Step drives the token
// walk and Output (algo.go) extracts the machine's share of the
// result. Every substrate builds it the same way — the in-process
// driver (algo.Run via Descriptor), the standalone node runtime
// (cmd/kmnode), and the registry runners — which is what makes their
// outputs bit-identical.
type NodeMachine struct {
	m    *machine
	n    int
	opts Options
}

// NewNodeMachine builds machine view.Self()'s state. opts.Eps must be
// set; Tokens/Iterations defaults are applied here, so every node of a
// run resolves to identical options as long as the inputs agree.
func NewNodeMachine(view partition.View, opts Options) (*NodeMachine, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("pagerank: eps=%v out of (0,1)", opts.Eps)
	}
	opts.ApplyDefaults(view.N())
	return &NodeMachine{m: newMachine(view, opts), n: view.N(), opts: opts}, nil
}

// Step implements core.Machine.
func (nm *NodeMachine) Step(ctx *core.StepContext, inbox []core.Envelope[Wire]) ([]core.Envelope[Wire], bool) {
	return nm.m.Step(ctx, inbox)
}

// Options returns the resolved options (after ApplyDefaults).
func (nm *NodeMachine) Options() Options { return nm.opts }

// LocalPsi returns a copy of the raw visit counts for the vertices
// homed on this machine.
func (nm *NodeMachine) LocalPsi() map[int32]int64 {
	locals := nm.m.view.Locals()
	out := make(map[int32]int64, len(locals))
	for _, v := range locals {
		out[v] = nm.m.psi[v]
	}
	return out
}

// LocalEstimates returns the PageRank estimates this machine outputs —
// the same eps·psi(v)/(n·c·log n) arithmetic Run applies, so a
// standalone cluster's union of LocalEstimates is bit-identical to an
// in-process Result.Estimate.
func (nm *NodeMachine) LocalEstimates() map[int32]float64 {
	scale := nm.opts.Eps / (float64(nm.n) * float64(nm.opts.Tokens))
	locals := nm.m.view.Locals()
	out := make(map[int32]float64, len(locals))
	for _, v := range locals {
		out[v] = float64(nm.m.psi[v]) * scale
	}
	return out
}
