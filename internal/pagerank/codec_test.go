package pagerank

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/rng"
	"kmachine/internal/routing"
)

func TestWireCodecRoundTripProperty(t *testing.T) {
	r := rng.New(3)
	c := WireCodec()
	kinds := []uint8{kindLight, kindHeavy}
	for i := 0; i < 3000; i++ {
		want := Wire{
			Final: core.MachineID(r.Intn(1 << 16)),
			Msg: msg{
				Kind:  kinds[r.Intn(len(kinds))],
				V:     int32(r.Uint64()),
				Count: int64(r.Uint64()) >> uint(r.Intn(64)),
			},
		}
		buf, err := c.Append(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := c.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || n != len(buf) {
			t.Fatalf("round trip: got %+v (n=%d), want %+v (len=%d)", got, n, want, len(buf))
		}
	}
	if _, _, err := c.Decode(nil); err == nil {
		t.Error("empty input decoded without error")
	}
}

func TestWireCodecMatchesHopFraming(t *testing.T) {
	// The exported codec must agree with composing HopCodec by hand.
	c := WireCodec()
	h := routing.HopCodec[msg](msgCodec{})
	w := Wire{Final: 5, Msg: msg{Kind: kindHeavy, V: -7, Count: 123456789}}
	a, err := c.Append(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Append(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("codec bytes diverge: %x vs %x", a, b)
	}
}
