package pagerank

import (
	"fmt"
	"math"
	"sort"

	"kmachine/internal/algo"
	"kmachine/internal/partition"
)

// Local is one machine's share of a PageRank output: the visit counts
// and estimates of the vertices homed on it, in Locals() order. Dense
// parallel slices, not maps — the in-process Run assembles its Result
// from k of these on the hot path, and the scale arithmetic matches
// LocalEstimates exactly, so the union of the k Local outputs is
// bit-identical to an in-process Result on every substrate.
type Local struct {
	// Vertices lists this machine's vertices in increasing ID order;
	// Psi[i] and Estimate[i] belong to Vertices[i].
	Vertices []int32
	Psi      []int64
	Estimate []float64
}

// Output implements algo.Machine.
func (nm *NodeMachine) Output() Local {
	locals := nm.m.view.Locals()
	out := Local{
		Vertices: locals,
		Psi:      make([]int64, len(locals)),
		Estimate: make([]float64, len(locals)),
	}
	scale := nm.opts.Eps / (float64(nm.n) * float64(nm.opts.Tokens))
	for i, v := range locals {
		count := nm.m.psi[v]
		out.Psi[i] = count
		out.Estimate[i] = float64(count) * scale
	}
	return out
}

// Descriptor returns the algo-layer descriptor of a PageRank run over
// an n-vertex input. Tokens/Iterations defaults are resolved here, so
// every machine of a run — whatever substrate builds it — sees
// identical options.
func Descriptor(n int, opts Options) algo.Algorithm[Wire, Local, *Result] {
	if opts.Eps > 0 && opts.Eps < 1 {
		opts.ApplyDefaults(n)
	}
	return algo.Algorithm[Wire, Local, *Result]{
		Name:  "pagerank",
		Codec: WireCodec(),
		NewMachine: func(view partition.View) (algo.Machine[Wire, Local], error) {
			return NewNodeMachine(view, opts)
		},
		Merge: func(locals []Local) *Result {
			res := &Result{
				Estimate:          make([]float64, n),
				Psi:               make([]int64, n),
				OutputsPerMachine: make([]int, len(locals)),
				Iterations:        opts.Iterations,
				TokensPerVertex:   opts.Tokens,
			}
			for i, l := range locals {
				res.OutputsPerMachine[i] = len(l.Vertices)
				for j, v := range l.Vertices {
					res.Psi[v] = l.Psi[j]
					res.Estimate[v] = l.Estimate[j]
				}
			}
			return res
		},
	}
}

func init() {
	algo.Register(algo.Spec[Wire, Local, *Result]{
		Name: "pagerank",
		Doc:  "Monte-Carlo PageRank, the paper's Algorithm 1 (Õ(n/k²) rounds, Thm 4)",
		Build: func(prob algo.Problem) (algo.Algorithm[Wire, Local, *Result], partition.Input, error) {
			in, err := algo.GnpInput(prob)
			if err != nil {
				return algo.Algorithm[Wire, Local, *Result]{}, nil, err
			}
			return Descriptor(prob.N, AlgorithmOne(prob.Eps)), in, nil
		},
		Hash: func(r *Result) uint64 {
			h := algo.NewHash64()
			for _, x := range r.Estimate {
				h.Add(math.Float64bits(x))
			}
			for _, c := range r.Psi {
				h.Add(uint64(c))
			}
			return h.Sum()
		},
		Summarize: func(r *Result, top int) []string {
			lines := []string{fmt.Sprintf("pagerank: %d iterations, %d tokens/vertex",
				r.Iterations, r.TokensPerVertex)}
			return append(lines, topEstimates(r.Estimate, top, "cluster-wide")...)
		},
		SummarizeLocal: func(l Local, top int) []string {
			return topRanked(l.Vertices, l.Estimate, top, "this machine's")
		},
	})
}

// topEstimates lists the top vertices of a dense estimate vector.
func topEstimates(est []float64, top int, who string) []string {
	ids := make([]int32, len(est))
	for v := range est {
		ids[v] = int32(v)
	}
	return topRanked(ids, est, top, who)
}

// topRanked lists the top vertices of parallel (vertex, estimate)
// slices, ties broken by vertex ID for determinism.
func topRanked(ids []int32, est []float64, top int, who string) []string {
	type ve struct {
		v int32
		e float64
	}
	ranked := make([]ve, len(ids))
	for i, v := range ids {
		ranked[i] = ve{v, est[i]}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].e != ranked[j].e {
			return ranked[i].e > ranked[j].e
		}
		return ranked[i].v < ranked[j].v
	})
	if top > len(ranked) {
		top = len(ranked)
	}
	lines := make([]string, 0, top+1)
	lines = append(lines, fmt.Sprintf("%s top %d vertices by PageRank estimate:", who, top))
	for _, r := range ranked[:top] {
		lines = append(lines, fmt.Sprintf("  v%-8d %.6f", r.v, r.e))
	}
	return lines
}
