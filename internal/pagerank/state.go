package pagerank

import (
	"fmt"

	twire "kmachine/internal/transport/wire"
)

// SnapshotState serialises the machine's dynamic PageRank state — the
// iteration counter and the token/visit counters of its local vertices
// — appending to dst. tokens/psi are dense over the global vertex space
// but nonzero only at locals (a barrier invariant), so the snapshot is
// O(locals), not O(n). Static structure (the partition view, the byIn
// CSR, the alias-table cache) is rebuilt identically by the machine
// factory and never serialised.
func (nm *NodeMachine) SnapshotState(dst []byte) ([]byte, error) {
	m := nm.m
	dst = twire.AppendUvarint(dst, uint64(m.iter))
	for _, v := range m.view.Locals() {
		dst = twire.AppendVarint(dst, m.tokens[v])
		dst = twire.AppendVarint(dst, m.psi[v])
	}
	return dst, nil
}

// RestoreState overwrites the machine's dynamic state from a
// SnapshotState blob taken on a machine built from the same inputs.
// The receiver may be dirty (mid-run, or a failed attempt's survivor):
// every dynamic field is rewritten and every piece of per-superstep
// scratch reset, so the next Step is bit-identical to the one the
// snapshotted machine would have taken.
func (nm *NodeMachine) RestoreState(src []byte) error {
	m := nm.m
	c := twire.Cursor{Src: src}
	iter := c.Uvarint()
	clear(m.tokens)
	clear(m.psi)
	for _, v := range m.view.Locals() {
		m.tokens[v] = c.Varint()
		m.psi[v] = c.Varint()
	}
	if err := c.Finish(); err != nil {
		return fmt.Errorf("pagerank: restore: %w", err)
	}
	m.iter = int(iter)
	// Reset scratch: the sparse accumulator, heavy-path counts, and
	// delivery buffers are only guaranteed clean at barriers.
	for _, v := range m.accKeys {
		m.accVals[v] = 0
	}
	m.accKeys = m.accKeys[:0]
	for j := range m.beta {
		m.beta[j] = 0
	}
	m.delivBuf = m.delivBuf[:0]
	m.outBuf = m.outBuf[:0]
	for j := range m.buckets {
		m.buckets[j] = m.buckets[j][:0]
	}
	return nil
}
