// Package testutil holds tiny helpers shared by the failure-hardening
// test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// NoLeakedGoroutines asserts that the number of live goroutines settles
// back to (at most) baseline, polling with a grace period so goroutines
// still draining after a teardown — deferred Closes, error cascades —
// get a moment to exit. Capture baseline with runtime.NumGoroutine()
// BEFORE the code under test spawns anything:
//
//	base := runtime.NumGoroutine()
//	defer testutil.NoLeakedGoroutines(t, base)
//
// On failure the full goroutine dump is attached, so a stuck read or an
// unreaped worker is immediately identifiable.
func NoLeakedGoroutines(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutine leak: %d running, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
}

// WaitOrDump waits for done to close, failing the test with a full
// goroutine dump if it does not within timeout — the shared watchdog of
// the failure suites, whose whole point is that a distributed teardown
// drains instead of wedging.
func WaitOrDump(t testing.TB, done <-chan struct{}, timeout time.Duration, what string) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(timeout):
		buf := make([]byte, 1<<20)
		t.Fatalf("%s still wedged after %v — the hang this suite guards against is back\n%s",
			what, timeout, buf[:runtime.Stack(buf, true)])
	}
}
