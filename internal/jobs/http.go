package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"kmachine/internal/algo"
)

// This file is the job service's HTTP/JSON control surface, mounted on
// kmnode's -debug-addr mux next to pprof and expvar:
//
//	POST /api/v1/jobs       submit a job        → 202 {id, state}
//	GET  /api/v1/jobs       list jobs           → 200 [{...}]
//	GET  /api/v1/jobs/{id}  job status + result → 200 {..., result}
//	GET  /api/v1/status     scheduler gauges    → 200 {...}
//	POST /api/v1/drain      stop intake, wait   → 200 {drained}
//
// Results carry the canonical output hash (hex, the same quantity the
// cross-substrate golden suite compares) so a client can assert
// determinism over HTTP without touching the process.

// SubmitRequest is the POST /api/v1/jobs body. Zero values follow the
// algo.Problem conventions (EdgeP 0 → 10/N, Bandwidth 0 →
// DefaultBandwidth(N), ...); K may be 0 (the cluster's) or must match.
type SubmitRequest struct {
	Algo      string  `json:"algo"`
	N         int     `json:"n"`
	EdgeP     float64 `json:"edge_p,omitempty"`
	K         int     `json:"k,omitempty"`
	Seed      uint64  `json:"seed"`
	Bandwidth int     `json:"bandwidth,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	Top       int     `json:"top,omitempty"`
	Streaming bool    `json:"streaming,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	// CheckpointEvery opts the job into per-superstep checkpointing and
	// machine-failure recovery: state is captured every
	// CheckpointEvery supersteps and a machine loss resumes the job
	// from the last complete checkpoint instead of failing it. 0 (the
	// default) keeps the fail-fast behaviour.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// JobJSON is the wire form of a Job snapshot.
type JobJSON struct {
	ID        uint64      `json:"id"`
	Algo      string      `json:"algo"`
	State     State       `json:"state"`
	Submitted time.Time   `json:"submitted"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	LatencyMS float64     `json:"latency_ms"`
	Error     string      `json:"error,omitempty"`
	Result    *ResultJSON `json:"result,omitempty"`
}

// ResultJSON is the wire form of a done job's Outcome.
type ResultJSON struct {
	Hash       string   `json:"hash"`
	Rounds     int64    `json:"rounds"`
	Supersteps int      `json:"supersteps"`
	Messages   int64    `json:"messages"`
	Words      int64    `json:"words"`
	Recoveries int      `json:"recoveries,omitempty"`
	Summary    []string `json:"summary,omitempty"`
	SetupMS    float64  `json:"setup_ms"`
	ExecMS     float64  `json:"exec_ms"`
}

// StatusJSON is the GET /api/v1/status body.
type StatusJSON struct {
	K          int    `json:"k"`
	Queued     int    `json:"queued"`
	Running    uint64 `json:"running_job,omitempty"`
	Done       int64  `json:"done"`
	Failed     int64  `json:"failed"`
	Canceled   int64  `json:"canceled"`
	Rebuilds   int64  `json:"mesh_rebuilds"`
	Recovered  int64  `json:"recoveries"`
	Evicted    int64  `json:"jobs_evicted"`
	Draining   bool   `json:"draining"`
	MeshHealth bool   `json:"mesh_healthy"`
}

// RegisterAPI mounts the job-service endpoints on mux (Go 1.22 method
// patterns, so mis-methods get 405 for free).
func (s *Scheduler) RegisterAPI(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/status", s.handleStatus)
	mux.HandleFunc("POST /api/v1/drain", s.handleDrain)
}

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sr SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad submit body: %w", err))
		return
	}
	id, err := s.Submit(Request{
		Algo: sr.Algo,
		Prob: algo.Problem{
			N: sr.N, EdgeP: sr.EdgeP, K: sr.K, Seed: sr.Seed,
			Bandwidth: sr.Bandwidth, Eps: sr.Eps, Top: sr.Top,
			Streaming:  sr.Streaming,
			Checkpoint: algo.CheckpointSpec{Every: sr.CheckpointEvery},
		},
		Timeout: time.Duration(sr.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": StateQueued})
}

func (s *Scheduler) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobJSON, len(jobs))
	for i, j := range jobs {
		out[i] = jobToJSON(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Scheduler) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return
	}
	j, ok := s.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, jobToJSON(j))
}

// handleCancel is DELETE /api/v1/jobs/{id}: cancel a queued or running
// job. 200 with the job snapshot on success, 404 for unknown (or
// evicted) IDs, 409 when the job already reached a terminal state.
func (s *Scheduler) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return
	}
	j, err := s.Cancel(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
	case errors.Is(err, ErrJobFinished):
		httpError(w, http.StatusConflict, fmt.Errorf("job %d already %s", id, j.State))
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, jobToJSON(j))
	}
}

func (s *Scheduler) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	writeJSON(w, http.StatusOK, StatusJSON{
		K: st.K, Queued: st.Queued, Running: st.Running,
		Done: st.Done, Failed: st.Failed, Canceled: st.Canceled,
		Rebuilds: st.Rebuilds, Recovered: st.Recovered, Evicted: st.Evicted,
		Draining: st.Draining, MeshHealth: st.MeshHealth,
	})
}

func (s *Scheduler) handleDrain(w http.ResponseWriter, r *http.Request) {
	if err := s.Drain(r.Context()); err != nil {
		httpError(w, http.StatusGatewayTimeout, fmt.Errorf("drain interrupted: %w", err))
		return
	}
	st := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"drained": true, "done": st.Done, "failed": st.Failed,
	})
}

func jobToJSON(j Job) JobJSON {
	out := JobJSON{
		ID: j.ID, Algo: j.Algo, State: j.State, Submitted: j.Submitted,
		LatencyMS: float64(j.Latency(time.Now()).Microseconds()) / 1e3,
		Error:     j.Err,
	}
	if !j.Started.IsZero() {
		t := j.Started
		out.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		out.Finished = &t
	}
	if j.Outcome != nil {
		res := &ResultJSON{
			Hash:       fmt.Sprintf("%016x", j.Outcome.Hash),
			Recoveries: j.Recoveries,
			Summary:    j.Outcome.Summary,
			SetupMS:    float64(j.Outcome.SetupTime.Microseconds()) / 1e3,
			ExecMS:     float64(j.Outcome.ExecTime.Microseconds()) / 1e3,
		}
		if st := j.Outcome.Stats; st != nil {
			res.Rounds = st.Rounds
			res.Supersteps = st.Supersteps
			res.Messages = st.Messages
			res.Words = st.Words
		}
		out.Result = res
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
