package jobs

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
	"kmachine/internal/testutil"
	"kmachine/internal/transport"
	"kmachine/internal/transport/wire"
)

// chaosHook, when non-nil, is invoked by the testjob-chaos algorithm's
// machine 1 at superstep 2 — the deterministic "kill a machine mid-job"
// waypoint of the chaos test.
var chaosHook atomic.Pointer[func()]

type spinMsg struct{ X int64 }

type spinCodec struct{}

func (spinCodec) Append(dst []byte, m spinMsg) ([]byte, error) {
	return wire.AppendVarint(dst, m.X), nil
}

func (spinCodec) Decode(src []byte) (spinMsg, int, error) {
	v, n, err := wire.Varint(src)
	return spinMsg{X: v}, n, err
}

type spinMachine struct {
	self core.MachineID
	got  int64
}

func (m *spinMachine) Step(ctx *core.StepContext, inbox []core.Envelope[spinMsg]) ([]core.Envelope[spinMsg], bool) {
	for _, e := range inbox {
		m.got += e.Msg.X
	}
	if m.self == 1 && ctx.Superstep == 2 {
		if hook := chaosHook.Load(); hook != nil {
			(*hook)()
		}
	}
	if ctx.Superstep >= 4 {
		return nil, true
	}
	return []core.Envelope[spinMsg]{{
		To:    core.MachineID((int(m.self) + 1) % ctx.K),
		Words: 1,
		Msg:   spinMsg{X: int64(m.self) + 1},
	}}, false
}

func (m *spinMachine) Output() int64 { return m.got }

// The chaos machine is checkpointable, so the same waypoint that drives
// the fail-fast kill test can drive the resume-from-checkpoint test.
func (m *spinMachine) SnapshotState(dst []byte) ([]byte, error) {
	return wire.AppendVarint(dst, m.got), nil
}

func (m *spinMachine) RestoreState(src []byte) error {
	c := &wire.Cursor{Src: src}
	m.got = c.Varint()
	return c.Finish()
}

// testOnlyAlgos names the registrations this test file adds; the
// registry-wide determinism sweep skips them.
var testOnlyAlgos = map[string]bool{"testjob-chaos": true}

func init() {
	algo.Register(algo.Spec[spinMsg, int64, int64]{
		Name: "testjob-chaos",
		Doc:  "test-only multi-superstep ring with a chaos waypoint",
		Build: func(prob algo.Problem) (algo.Algorithm[spinMsg, int64, int64], partition.Input, error) {
			g := graph.NewBuilder(prob.N, false).Build()
			a := algo.Algorithm[spinMsg, int64, int64]{
				Name:  "testjob-chaos",
				Codec: spinCodec{},
				NewMachine: func(view partition.View) (algo.Machine[spinMsg, int64], error) {
					return &spinMachine{self: view.Self()}, nil
				},
				Merge: func(locals []int64) int64 {
					var sum int64
					for _, l := range locals {
						sum += l
					}
					return sum
				},
			}
			return a, partition.NewRVP(g, prob.K, prob.Seed+1), nil
		},
		Hash: func(sum int64) uint64 {
			h := algo.NewHash64()
			h.Add(uint64(sum))
			return h.Sum()
		},
	})
}

// waitState polls until job id reaches a terminal state.
func waitState(t *testing.T, s *Scheduler, id uint64) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		if j.State == StateDone || j.State == StateFailed || j.State == StateCanceled {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d did not finish", id)
	return Job{}
}

// TestSchedulerMeshJobStream: a mixed-algorithm job stream on one
// standing mesh — FIFO order, every result bit-identical to a fresh
// single-run reference, goroutine-clean Close.
func TestSchedulerMeshJobStream(t *testing.T) {
	const k = 3
	base := runtime.NumGoroutine()
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})

	mix := []string{"pagerank", "conncomp", "pagerank", "triangle"}
	ids := make([]uint64, len(mix))
	for i, name := range mix {
		id, err := s.Submit(Request{Algo: name, Prob: algo.Problem{N: 120, Seed: 7}})
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		j := waitState(t, s, id)
		if j.State != StateDone {
			t.Fatalf("job %d (%s) failed: %s", id, mix[i], j.Err)
		}
		entry, _ := algo.Lookup(mix[i])
		ref, err := entry.RunNodeLocal(algo.Problem{N: 120, K: k, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if j.Outcome.Hash != ref.Hash {
			t.Errorf("job %d (%s) hash %016x, fresh-mesh reference %016x", id, mix[i], j.Outcome.Hash, ref.Hash)
		}
		if j.Outcome.Stats.Rounds != ref.Stats.Rounds || j.Outcome.Stats.Words != ref.Stats.Words {
			t.Errorf("job %d (%s) stats diverge from reference", id, mix[i])
		}
	}
	// FIFO: every job started no earlier than its predecessor.
	for i := 1; i < len(ids); i++ {
		a, _ := s.Get(ids[i-1])
		bj, _ := s.Get(ids[i])
		if bj.Started.Before(a.Started) {
			t.Errorf("job %d started before its predecessor", ids[i])
		}
	}
	st := s.Stats()
	if st.Done != int64(len(mix)) || st.Failed != 0 || st.Rebuilds != 0 {
		t.Errorf("stats %+v, want %d done, 0 failed, 0 rebuilds", st, len(mix))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	testutil.NoLeakedGoroutines(t, base)
}

// TestJobStreamDeterminism: for every registered algorithm, the same
// (algo, seed) job run after N prior mixed-algorithm jobs on a standing
// mesh yields output hash and Stats bit-identical to a fresh mesh — and
// the inmem build-per-job backend agrees. This is the resident daemon's
// core correctness claim.
func TestJobStreamDeterminism(t *testing.T) {
	const k = 3
	prob := algo.Problem{N: 150, Seed: 11}
	refProb := prob
	refProb.K = k

	names := []string{}
	for _, n := range algo.Names() {
		if !testOnlyAlgos[n] {
			names = append(names, n)
		}
	}

	for _, backendName := range []string{"mesh", "inmem"} {
		var b Backend
		var err error
		if backendName == "mesh" {
			b, err = NewMeshBackend(k)
		} else {
			b, err = NewBuildBackend(k, transport.InMem)
		}
		if err != nil {
			t.Fatal(err)
		}
		s := New(b, Options{})

		// N prior mixed-algorithm jobs dirty the mesh's history.
		for _, name := range names {
			if _, err := s.Submit(Request{Algo: name, Prob: prob}); err != nil {
				t.Fatalf("%s: prior submit %s: %v", backendName, name, err)
			}
		}
		ids := map[string]uint64{}
		for _, name := range names {
			id, err := s.Submit(Request{Algo: name, Prob: prob})
			if err != nil {
				t.Fatalf("%s: submit %s: %v", backendName, name, err)
			}
			ids[name] = id
		}
		for _, name := range names {
			j := waitState(t, s, ids[name])
			if j.State != StateDone {
				t.Fatalf("%s: %s failed: %s", backendName, name, j.Err)
			}
			entry, _ := algo.Lookup(name)
			ref, err := entry.RunNodeLocal(refProb)
			if err != nil {
				t.Fatal(err)
			}
			if j.Outcome.Hash != ref.Hash {
				t.Errorf("%s: %s after mixed history: hash %016x, fresh reference %016x",
					backendName, name, j.Outcome.Hash, ref.Hash)
			}
			if j.Outcome.Stats.Rounds != ref.Stats.Rounds ||
				j.Outcome.Stats.Words != ref.Stats.Words ||
				j.Outcome.Stats.Messages != ref.Stats.Messages ||
				j.Outcome.Stats.Supersteps != ref.Stats.Supersteps {
				t.Errorf("%s: %s after mixed history: Stats diverge from fresh reference", backendName, name)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosKillMidJobFailsOnlyThatJob: a machine killed mid-job fails
// exactly that job, with the job ID attributed in the error; the
// scheduler rebuilds the mesh and the next job completes.
func TestChaosKillMidJobFailsOnlyThatJob(t *testing.T) {
	const k = 3
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()

	kill := func() { b.Sever(2) }
	chaosHook.Store(&kill)
	defer chaosHook.Store(nil)

	id, err := s.Submit(Request{Algo: "testjob-chaos", Prob: algo.Problem{N: 60, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	j := waitState(t, s, id)
	if j.State != StateFailed {
		t.Fatalf("severed job %d ended %q, want failed", id, j.State)
	}
	if !strings.Contains(j.Err, "job 1") {
		t.Errorf("failure lost its job attribution: %q", j.Err)
	}

	chaosHook.Store(nil)
	id2, err := s.Submit(Request{Algo: "pagerank", Prob: algo.Problem{N: 120, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	j2 := waitState(t, s, id2)
	if j2.State != StateDone {
		t.Fatalf("job after chaos failed: %s", j2.Err)
	}
	st := s.Stats()
	if st.Rebuilds != 1 {
		t.Errorf("rebuilds = %d, want 1", st.Rebuilds)
	}
	entry, _ := algo.Lookup("pagerank")
	ref, err := entry.RunNodeLocal(algo.Problem{N: 120, K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Outcome.Hash != ref.Hash {
		t.Errorf("post-chaos job hash %016x, want %016x", j2.Outcome.Hash, ref.Hash)
	}
}

// TestJobDeadline: a per-job timeout fails only that job (through the
// PR 4 context path) and the stream continues.
func TestJobDeadline(t *testing.T) {
	const k = 3
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()

	stall := func() { time.Sleep(250 * time.Millisecond) }
	chaosHook.Store(&stall)
	defer chaosHook.Store(nil)
	id, err := s.Submit(Request{Algo: "testjob-chaos", Prob: algo.Problem{N: 60, Seed: 5}, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	j := waitState(t, s, id)
	if j.State != StateFailed {
		t.Fatalf("deadlined job ended %q, want failed", j.State)
	}
	if !strings.Contains(j.Err, "deadline") && !strings.Contains(j.Err, "context") {
		t.Errorf("deadline failure reads %q, want a context error", j.Err)
	}

	chaosHook.Store(nil)
	id2, err := s.Submit(Request{Algo: "conncomp", Prob: algo.Problem{N: 120, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitState(t, s, id2); j2.State != StateDone {
		t.Fatalf("job after deadline failure: %s", j2.Err)
	}
}

// TestDrainAndAbort: Drain stops intake with ErrDraining and waits out
// the queue; Abort cancels the in-flight job.
func TestDrainAndAbort(t *testing.T) {
	const k = 3
	b, err := NewBuildBackend(k, transport.InMem)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()

	for i := 0; i < 3; i++ {
		if _, err := s.Submit(Request{Algo: "pagerank", Prob: algo.Problem{N: 100, Seed: uint64(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(Request{Algo: "pagerank", Prob: algo.Problem{N: 100, Seed: 1}}); err != ErrDraining {
		t.Fatalf("post-drain submit error %v, want ErrDraining", err)
	}
	st := s.Stats()
	if !st.Draining || st.Queued != 0 || st.Running != 0 || st.Done != 3 {
		t.Errorf("post-drain stats %+v", st)
	}
}

// TestSubmitValidation: unknown algorithms, bad sizes, and k mismatches
// are rejected at submit time, before touching the queue.
func TestSubmitValidation(t *testing.T) {
	b, err := NewBuildBackend(3, transport.InMem)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()
	if _, err := s.Submit(Request{Algo: "no-such", Prob: algo.Problem{N: 10}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := s.Submit(Request{Algo: "pagerank", Prob: algo.Problem{N: 0}}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := s.Submit(Request{Algo: "pagerank", Prob: algo.Problem{N: 10, K: 5}}); err == nil {
		t.Error("k mismatch accepted")
	}
}

// TestSeveredJobResumesFromCheckpoint is the scheduler half of the
// recovery acceptance bar: a checkpoint-opted job whose machine dies
// mid-run must COMPLETE — mesh rebuilt, state resumed from the per-job
// store — with output hash and Stats bit-identical to an unkilled
// reference, and the recovery visible in Job.Recoveries and the
// scheduler gauges.
func TestSeveredJobResumesFromCheckpoint(t *testing.T) {
	const k = 3
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()

	// The waypoint disarms itself before severing: the replay reaches
	// machine 1's superstep 2 again, and a re-armed hook would kill the
	// replacement mesh until MaxRecoveries ran out.
	var kill func()
	kill = func() {
		chaosHook.Store(nil)
		b.Sever(2)
	}
	chaosHook.Store(&kill)
	defer chaosHook.Store(nil)

	prob := algo.Problem{N: 60, Seed: 5, Checkpoint: algo.CheckpointSpec{Every: 1}}
	id, err := s.Submit(Request{Algo: "testjob-chaos", Prob: prob})
	if err != nil {
		t.Fatal(err)
	}
	j := waitState(t, s, id)
	if j.State != StateDone {
		t.Fatalf("severed checkpoint-opted job ended %q (err %q), want done", j.State, j.Err)
	}
	if j.Recoveries < 1 {
		t.Errorf("job reports %d recoveries, want >= 1", j.Recoveries)
	}

	entry, _ := algo.Lookup("testjob-chaos")
	ref, err := entry.RunNodeLocal(algo.Problem{N: 60, K: k, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if j.Outcome.Hash != ref.Hash {
		t.Errorf("recovered job hash %016x, unkilled reference %016x", j.Outcome.Hash, ref.Hash)
	}
	if j.Outcome.Stats.Rounds != ref.Stats.Rounds ||
		j.Outcome.Stats.Words != ref.Stats.Words ||
		j.Outcome.Stats.Supersteps != ref.Stats.Supersteps {
		t.Errorf("recovered job Stats diverge from unkilled reference")
	}
	st := s.Stats()
	if st.Recovered < 1 {
		t.Errorf("scheduler recovered gauge = %d, want >= 1", st.Recovered)
	}
	if st.Failed != 0 {
		t.Errorf("recovered job counted as failed (failed=%d)", st.Failed)
	}

	// The mesh stays serviceable: the next job runs clean.
	id2, err := s.Submit(Request{Algo: "pagerank", Prob: algo.Problem{N: 120, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitState(t, s, id2); j2.State != StateDone {
		t.Fatalf("job after recovery failed: %s", j2.Err)
	}
}

// TestCancelQueuedAndTerminalSemantics: canceling a queued job removes
// it immediately; canceling an unknown ID reports ErrUnknownJob;
// canceling a finished job reports ErrJobFinished with the snapshot.
func TestCancelQueuedAndTerminalSemantics(t *testing.T) {
	const k = 3
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()

	// A slow waypoint keeps job 1 running long enough for job 2 to be
	// reliably canceled while still queued.
	stall := func() { time.Sleep(100 * time.Millisecond) }
	chaosHook.Store(&stall)
	defer chaosHook.Store(nil)
	id1, err := s.Submit(Request{Algo: "testjob-chaos", Prob: algo.Problem{N: 60, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(Request{Algo: "pagerank", Prob: algo.Problem{N: 120, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Cancel(id2)
	if err != nil {
		t.Fatalf("cancel queued job: %v", err)
	}
	if j2.State != StateCanceled {
		t.Errorf("canceled queued job is %q, want canceled", j2.State)
	}
	if _, err := s.Cancel(9999); err != ErrUnknownJob {
		t.Errorf("cancel of unknown job returned %v, want ErrUnknownJob", err)
	}
	j1 := waitState(t, s, id1)
	if j1.State != StateDone {
		t.Fatalf("job 1 ended %q: %s", j1.State, j1.Err)
	}
	if snap, err := s.Cancel(id1); err != ErrJobFinished {
		t.Errorf("cancel of finished job returned %v, want ErrJobFinished", err)
	} else if snap.State != StateDone {
		t.Errorf("finished-job cancel snapshot is %q, want done", snap.State)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Errorf("canceled gauge = %d, want 1", st.Canceled)
	}
}

// TestCancelRunningJob: canceling an in-flight job aborts it through
// its context, records StateCanceled (not failed), and never attempts
// recovery — cancellation is final even for checkpoint-opted jobs.
func TestCancelRunningJob(t *testing.T) {
	const k = 3
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()

	started := make(chan struct{})
	hook := func() {
		close(started)
		time.Sleep(150 * time.Millisecond)
	}
	chaosHook.Store(&hook)
	defer chaosHook.Store(nil)
	id, err := s.Submit(Request{Algo: "testjob-chaos",
		Prob: algo.Problem{N: 60, Seed: 5, Checkpoint: algo.CheckpointSpec{Every: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(id); err != nil {
		t.Fatalf("cancel running job: %v", err)
	}
	j := waitState(t, s, id)
	if j.State != StateCanceled {
		t.Fatalf("canceled running job ended %q (err %q), want canceled", j.State, j.Err)
	}
	if j.Recoveries != 0 {
		t.Errorf("canceled job attempted %d recoveries, want 0", j.Recoveries)
	}
	st := s.Stats()
	if st.Canceled != 1 || st.Failed != 0 {
		t.Errorf("gauges canceled=%d failed=%d, want 1/0", st.Canceled, st.Failed)
	}
}

// TestRetentionEvictsTerminalJobs: with MaxJobs set, finished jobs are
// evicted oldest-first once the map exceeds the bound; running and
// queued jobs are never evicted, and evicted IDs read as unknown.
func TestRetentionEvictsTerminalJobs(t *testing.T) {
	const k = 3
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{MaxJobs: 2})
	defer s.Close()

	const jobs = 4
	ids := make([]uint64, jobs)
	for i := range ids {
		id, err := s.Submit(Request{Algo: "conncomp", Prob: algo.Problem{N: 60, Seed: uint64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if j := waitState(t, s, id); j.State != StateDone {
			t.Fatalf("job %d failed: %s", id, j.Err)
		}
	}
	for _, id := range ids[:jobs-2] {
		if _, ok := s.Get(id); ok {
			t.Errorf("job %d still retained past MaxJobs=2", id)
		}
		if _, err := s.Cancel(id); err != ErrUnknownJob {
			t.Errorf("evicted job %d cancel returned %v, want ErrUnknownJob", id, err)
		}
	}
	for _, id := range ids[jobs-2:] {
		if _, ok := s.Get(id); !ok {
			t.Errorf("job %d evicted although within the MaxJobs bound", id)
		}
	}
	if st := s.Stats(); st.Evicted != jobs-2 {
		t.Errorf("evicted gauge = %d, want %d", st.Evicted, jobs-2)
	}
	if got := len(s.Jobs()); got != 2 {
		t.Errorf("retained %d job records, want 2", got)
	}
}
