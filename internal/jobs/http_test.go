package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kmachine/internal/algo"
	"kmachine/internal/transport"
)

// TestHTTPAPI drives the full control surface over real HTTP: submit
// two different algorithms, poll to completion, assert the result
// hashes against fresh single-run references, check status and list,
// then drain and verify intake is closed.
func TestHTTPAPI(t *testing.T) {
	const k = 3
	b, err := NewBuildBackend(k, transport.InMem)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()
	mux := http.NewServeMux()
	s.RegisterAPI(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, out.Bytes()
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, out.Bytes()
	}

	// Submit two different algorithms.
	subs := []SubmitRequest{
		{Algo: "pagerank", N: 120, Seed: 7},
		{Algo: "conncomp", N: 120, Seed: 7},
	}
	ids := make([]uint64, len(subs))
	for i, sr := range subs {
		resp, body := post("/api/v1/jobs", sr)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", sr.Algo, resp.StatusCode, body)
		}
		var acc struct {
			ID    uint64 `json:"id"`
			State State  `json:"state"`
		}
		if err := json.Unmarshal(body, &acc); err != nil {
			t.Fatal(err)
		}
		if acc.ID == 0 || acc.State != StateQueued {
			t.Fatalf("submit %s returned %s", sr.Algo, body)
		}
		ids[i] = acc.ID
	}

	// Poll each to completion and check the result hash against a fresh
	// single-run reference.
	for i, id := range ids {
		var j JobJSON
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, body := get(fmt.Sprintf("/api/v1/jobs/%d", id))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %d %s", id, resp.StatusCode, body)
			}
			if err := json.Unmarshal(body, &j); err != nil {
				t.Fatal(err)
			}
			if j.State == StateDone || j.State == StateFailed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d stuck in %q", id, j.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if j.State != StateDone {
			t.Fatalf("job %d failed: %s", id, j.Error)
		}
		if j.Result == nil || j.Result.Hash == "" {
			t.Fatalf("done job %d has no result hash", id)
		}
		entry, _ := algo.Lookup(subs[i].Algo)
		ref, err := entry.Run(algo.Problem{N: subs[i].N, K: k, Seed: subs[i].Seed}, transport.InMem)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%016x", ref.Hash); j.Result.Hash != want {
			t.Errorf("job %d hash %s over HTTP, reference %s", id, j.Result.Hash, want)
		}
		if j.Result.Rounds != ref.Stats.Rounds {
			t.Errorf("job %d rounds %d over HTTP, reference %d", id, j.Result.Rounds, ref.Stats.Rounds)
		}
	}

	// List and scheduler status.
	resp, body := get("/api/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var list []JobJSON
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(ids) {
		t.Fatalf("list has %d jobs, want %d", len(list), len(ids))
	}
	resp, body = get("/api/v1/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var st StatusJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.K != k || st.Done != int64(len(ids)) || st.Draining {
		t.Errorf("scheduler status %s", body)
	}

	// Error paths: bad algo 400, unknown job 404, bad id 400.
	if resp, _ := post("/api/v1/jobs", SubmitRequest{Algo: "no-such", N: 10}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad algo: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get("/api/v1/jobs/9999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/api/v1/jobs/zzz"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: %d, want 400", resp.StatusCode)
	}

	// Drain, then intake must answer 503.
	resp, body = post("/api/v1/drain", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post("/api/v1/jobs", SubmitRequest{Algo: "pagerank", N: 100, Seed: 1}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPCancel drives DELETE /api/v1/jobs/{id} end to end: a queued
// job cancels to 200 + canceled state, an unknown ID answers 404, a
// finished job answers 409, and a malformed ID answers 400.
func TestHTTPCancel(t *testing.T) {
	const k = 3
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()
	mux := http.NewServeMux()
	s.RegisterAPI(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	del := func(path string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, out.Bytes()
	}

	// A slow first job keeps the second one queued for the cancel.
	stall := func() { time.Sleep(100 * time.Millisecond) }
	chaosHook.Store(&stall)
	defer chaosHook.Store(nil)
	id1, err := s.Submit(Request{Algo: "testjob-chaos", Prob: algo.Problem{N: 60, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(Request{Algo: "pagerank", Prob: algo.Problem{N: 120, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := del(fmt.Sprintf("/api/v1/jobs/%d", id2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued job: %d %s, want 200", resp.StatusCode, body)
	}
	var j JobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.State != StateCanceled {
		t.Errorf("canceled job state %q over HTTP, want canceled", j.State)
	}

	if resp, _ := del("/api/v1/jobs/9999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := del("/api/v1/jobs/zzz"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cancel bad id: %d, want 400", resp.StatusCode)
	}

	if j := waitState(t, s, id1); j.State != StateDone {
		t.Fatalf("job %d ended %q: %s", id1, j.State, j.Err)
	}
	if resp, body := del(fmt.Sprintf("/api/v1/jobs/%d", id1)); resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel finished job: %d %s, want 409", resp.StatusCode, body)
	}
}

// TestHTTPCheckpointedSubmit: the checkpoint_every knob round-trips
// through the JSON surface — an opted-in job severed mid-run completes
// with recoveries reported in its result.
func TestHTTPCheckpointedSubmit(t *testing.T) {
	const k = 3
	b, err := NewMeshBackend(k)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, Options{})
	defer s.Close()
	mux := http.NewServeMux()
	s.RegisterAPI(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var kill func()
	kill = func() {
		chaosHook.Store(nil)
		b.Sever(2)
	}
	chaosHook.Store(&kill)
	defer chaosHook.Store(nil)

	buf, _ := json.Marshal(SubmitRequest{Algo: "testjob-chaos", N: 60, Seed: 5, CheckpointEvery: 1})
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	j := waitState(t, s, acc.ID)
	if j.State != StateDone {
		t.Fatalf("severed checkpointed job ended %q: %s", j.State, j.Err)
	}
	var jj JobJSON
	gresp, err := http.Get(srv.URL + fmt.Sprintf("/api/v1/jobs/%d", acc.ID))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(gresp.Body).Decode(&jj); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if jj.Result == nil || jj.Result.Recoveries < 1 {
		t.Errorf("result over HTTP reports no recoveries: %+v", jj.Result)
	}
}
