// Package jobs is the coordinator-side job service of the resident
// cluster daemon (kmnode -serve): a FIFO scheduler that serializes
// submitted (algorithm, Problem, seed) requests onto one standing
// k-machine mesh, plus the HTTP control surface in http.go.
//
// The paper's model prices a computation in rounds, not in cluster
// construction — but the run-once lifecycle of the earlier CLIs paid a
// full mesh build (k listeners, k·(k-1) dials, handshakes) per
// computation. The scheduler amortises that: the mesh is built once
// (transport/node.LocalMesh over transport/tcp.Mesh), every job
// attaches fresh typed endpoints framing its traffic with the job ID,
// and the job-begin/job-end handshake certifies quiescent connections
// between jobs. Per-job isolation is structural — fresh endpoints,
// fresh coordinator Stats, per-job Recorder — so a job stream's
// outputs and Stats are bit-identical to the same jobs run on fresh
// meshes (the determinism suite asserts exactly that).
//
// Failure policy: a failed job poisons the mesh (closing connections
// is what unblocks its peers), so the scheduler rebuilds the fabric
// before the next job and attributes the failure to the job via
// transport.MachineError.Job. One job's death never takes the daemon
// or the queue down with it.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kmachine/internal/algo"
	"kmachine/internal/core"
	"kmachine/internal/obs"
	"kmachine/internal/transport"
	"kmachine/internal/transport/node"
)

// State is a job's position in the queued → running → done|failed
// lifecycle.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a state is final (done, failed, canceled) —
// the states retention may evict and Cancel must refuse.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Request is one job submission: which registered algorithm to run, on
// what Problem, under what deadline. Prob.K is forced to the backend's
// cluster size (a request may pass 0 or the matching k; anything else
// is rejected), and Prob.Context/Prob.Recorder are owned by the
// scheduler — the per-job deadline and the shared trace plug in there.
type Request struct {
	Algo    string
	Prob    algo.Problem
	Timeout time.Duration // submit-to-finish deadline; 0 = none
}

// Job is an immutable snapshot of one submission's lifecycle.
type Job struct {
	ID        uint64
	Algo      string
	State     State
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Outcome is the result of a done job (hash, Stats, summary, setup
	// and exec times); nil otherwise.
	Outcome *algo.Outcome
	// Err is the failure message of a failed job, carrying the job-ID
	// attribution when the runtime recorded it.
	Err string
	// Recoveries counts how many times the job resumed from a
	// checkpoint after a machine failure (0 for jobs that never opted
	// into checkpointing or never failed). A done job with Recoveries >
	// 0 survived that many mid-run machine losses; its hash and Stats
	// are still bit-identical to an unkilled run.
	Recoveries int
}

// Latency is the submit-to-result wall clock of a finished job, or the
// time spent so far for a queued/running one (measured against now).
func (j Job) Latency(now time.Time) time.Duration {
	if !j.Finished.IsZero() {
		return j.Finished.Sub(j.Submitted)
	}
	return now.Sub(j.Submitted)
}

// Backend executes jobs for the scheduler. Exactly one job runs at a
// time (the scheduler serializes), so Run and Rebuild are never called
// concurrently — but Healthy and K may race with them from status
// handlers, so implementations guard shared state.
type Backend interface {
	// Run executes one job; ctx carries the per-job deadline/abort.
	Run(ctx context.Context, req Request, job uint64) (*algo.Outcome, error)
	// Healthy reports whether the backend can run the next job.
	Healthy() bool
	// Rebuild restores a poisoned backend.
	Rebuild() error
	// K is the cluster size every job runs on.
	K() int
	// Close tears the backend down.
	Close() error
}

// MeshBackend runs jobs on a standing k-machine socket mesh — the
// resident daemon's substrate. A failed job poisons the mesh; Rebuild
// replaces it.
type MeshBackend struct {
	k  int
	mu sync.Mutex
	lm *node.LocalMesh
}

// NewMeshBackend builds the standing loopback fabric.
func NewMeshBackend(k int) (*MeshBackend, error) {
	lm, err := node.NewLocalMesh(k)
	if err != nil {
		return nil, err
	}
	return &MeshBackend{k: k, lm: lm}, nil
}

func (b *MeshBackend) Run(ctx context.Context, req Request, job uint64) (*algo.Outcome, error) {
	b.mu.Lock()
	lm := b.lm
	b.mu.Unlock()
	prob := req.Prob
	prob.K = b.k
	prob.Context = ctx
	return algo.Submit(req.Algo, prob, lm, job)
}

func (b *MeshBackend) Healthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lm.Healthy()
}

func (b *MeshBackend) Rebuild() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lm.Close()
	lm, err := node.NewLocalMesh(b.k)
	if err != nil {
		return err
	}
	b.lm = lm
	return nil
}

func (b *MeshBackend) K() int { return b.k }

// Sever forcibly kills machine i's fabric — fault injection for chaos
// tests, forwarding node.LocalMesh.Sever. The in-flight job fails with
// job-ID attribution and the scheduler rebuilds the mesh.
func (b *MeshBackend) Sever(i int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lm.Sever(i)
}

func (b *MeshBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lm.Close()
}

// BuildBackend runs every job on a freshly built substrate — the
// run-once lifecycle the daemon replaces, kept as the E24 baseline and
// as an in-memory mode for socket-free deployments. Kind selects the
// substrate: transport.TCP builds a fresh node-local socket mesh per
// job (entry.RunNodeLocal); anything else runs the in-process cluster
// over that transport kind (transport.InMem / transport.Default).
type BuildBackend struct {
	k    int
	kind transport.Kind
}

// NewBuildBackend returns a build-per-job backend for a k-machine
// cluster over the given transport kind.
func NewBuildBackend(k int, kind transport.Kind) (*BuildBackend, error) {
	if k < 2 {
		return nil, fmt.Errorf("jobs: need k >= 2 machines, got %d", k)
	}
	return &BuildBackend{k: k, kind: kind}, nil
}

func (b *BuildBackend) Run(ctx context.Context, req Request, job uint64) (*algo.Outcome, error) {
	e, ok := algo.Lookup(req.Algo)
	if !ok {
		return nil, fmt.Errorf("jobs: unknown algorithm %q", req.Algo)
	}
	prob := req.Prob
	prob.K = b.k
	prob.Context = ctx
	if b.kind == transport.TCP {
		return e.RunNodeLocal(prob)
	}
	return e.Run(prob, b.kind)
}

func (b *BuildBackend) Healthy() bool  { return true }
func (b *BuildBackend) Rebuild() error { return nil }
func (b *BuildBackend) K() int         { return b.k }
func (b *BuildBackend) Close() error   { return nil }

// Options configures a Scheduler.
type Options struct {
	// Trace, when non-nil, is Reset before each job and installed as
	// the job's Recorder (unless the request brought its own) — the
	// debug plane's kmachine.* gauges then describe the live job.
	Trace *obs.Trace
	// MaxJobs bounds the retained job records: once more than MaxJobs
	// jobs exist, terminal ones (done/failed/canceled) are evicted in
	// the order they finished. Queued and running jobs are never
	// evicted, so the map may transiently exceed the bound when the
	// backlog alone exceeds it. 0 means unbounded.
	MaxJobs int
}

// Stats is a snapshot of the scheduler's own gauges.
type Stats struct {
	K          int
	Queued     int
	Running    uint64 // in-flight job ID, 0 when idle
	Done       int64
	Failed     int64
	Canceled   int64
	Rebuilds   int64
	Recovered  int64 // checkpoint resumes across all jobs
	Evicted    int64 // terminal job records dropped by retention
	Draining   bool
	MeshHealth bool
}

// Scheduler owns the job queue and the single executor goroutine that
// drains it onto the backend in FIFO order. New starts it; Close stops
// it.
type Scheduler struct {
	backend Backend
	trace   *obs.Trace
	maxJobs int

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[uint64]*Job
	queue     []uint64 // FIFO of queued job IDs
	reqs      map[uint64]Request
	terminal  []uint64 // terminal job IDs in finish order (eviction order)
	nextID    uint64
	running   uint64 // in-flight job ID, 0 when idle
	cancelCur context.CancelFunc
	cancelReq uint64 // job ID whose cancellation was requested, 0 if none
	done      int64
	failed    int64
	canceled  int64
	rebuilds  int64
	recovered int64
	evicted   int64
	draining  bool
	closed    bool

	rootCtx    context.Context
	rootCancel context.CancelFunc
	execDone   chan struct{}
}

// New starts a scheduler over the backend.
func New(b Backend, opts Options) *Scheduler {
	s := &Scheduler{
		backend:  b,
		trace:    opts.Trace,
		maxJobs:  opts.MaxJobs,
		jobs:     map[uint64]*Job{},
		reqs:     map[uint64]Request{},
		execDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	go s.run()
	return s
}

// ErrDraining rejects submissions once a drain has begun.
var ErrDraining = fmt.Errorf("jobs: scheduler is draining, not accepting new jobs")

// Submit validates and enqueues one job, returning its ID. Jobs run in
// submission order; IDs start at 1 (zero is the runtime's "no job"
// sentinel).
func (s *Scheduler) Submit(req Request) (uint64, error) {
	if _, ok := algo.Lookup(req.Algo); !ok {
		return 0, fmt.Errorf("jobs: unknown algorithm %q", req.Algo)
	}
	if req.Prob.N <= 0 {
		return 0, fmt.Errorf("jobs: need n > 0, got %d", req.Prob.N)
	}
	if k := s.backend.K(); req.Prob.K != 0 && req.Prob.K != k {
		return 0, fmt.Errorf("jobs: request wants k=%d on a k=%d cluster", req.Prob.K, k)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return 0, ErrDraining
	}
	s.nextID++
	id := s.nextID
	s.jobs[id] = &Job{ID: id, Algo: req.Algo, State: StateQueued, Submitted: time.Now()}
	s.reqs[id] = req
	s.queue = append(s.queue, id)
	s.cond.Signal()
	return id, nil
}

// Cancellation errors, mapped onto 404/409 by the HTTP surface.
var (
	ErrUnknownJob  = fmt.Errorf("jobs: unknown job")
	ErrJobFinished = fmt.Errorf("jobs: job already finished")
)

// Cancel withdraws one job. A queued job leaves the queue and turns
// canceled immediately; a running job gets its context canceled and
// turns canceled when the backend returns (the returned snapshot still
// says running — poll Get for the terminal state). Unknown IDs
// (including evicted ones) return ErrUnknownJob; terminal jobs return
// ErrJobFinished with their snapshot.
func (s *Scheduler) Cancel(id uint64) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, ErrUnknownJob
	}
	if j.State.terminal() {
		snap := *j
		s.mu.Unlock()
		return snap, ErrJobFinished
	}
	if j.State == StateQueued {
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		delete(s.reqs, id)
		j.State = StateCanceled
		j.Finished = time.Now()
		j.Err = "jobs: canceled before start"
		s.canceled++
		s.markTerminalLocked(id)
		snap := *j
		s.mu.Unlock()
		return snap, nil
	}
	// Running: cancel through the job context; the executor records the
	// terminal state when the backend returns.
	s.cancelReq = id
	cancel := s.cancelCur
	snap := *j
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return snap, nil
}

// markTerminalLocked records a job's terminal transition for retention
// and evicts the oldest terminal records past the MaxJobs bound.
func (s *Scheduler) markTerminalLocked(id uint64) {
	s.terminal = append(s.terminal, id)
	if s.maxJobs <= 0 {
		return
	}
	for len(s.jobs) > s.maxJobs && len(s.terminal) > 0 {
		victim := s.terminal[0]
		s.terminal = s.terminal[1:]
		if _, ok := s.jobs[victim]; ok {
			delete(s.jobs, victim)
			s.evicted++
		}
	}
}

// Get returns a snapshot of one job.
func (s *Scheduler) Get(id uint64) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every job in submission order.
func (s *Scheduler) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for id := uint64(1); id <= s.nextID; id++ {
		if j, ok := s.jobs[id]; ok {
			out = append(out, *j)
		}
	}
	return out
}

// Stats snapshots the scheduler gauges.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		K:         s.backend.K(),
		Queued:    len(s.queue),
		Running:   s.running,
		Done:      s.done,
		Failed:    s.failed,
		Canceled:  s.canceled,
		Rebuilds:  s.rebuilds,
		Recovered: s.recovered,
		Evicted:   s.evicted,
		Draining:  s.draining,
	}
	s.mu.Unlock()
	st.MeshHealth = s.backend.Healthy()
	return st
}

// Drain stops accepting submissions (Submit returns ErrDraining) and
// waits until the queue is empty and no job is in flight — the
// first-signal half of graceful shutdown, and the /api/v1/drain
// endpoint. ctx bounds the wait; the drain state persists either way.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		idle := len(s.queue) == 0 && s.running == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Abort cancels the in-flight job through its context — the
// second-signal force path. The job fails with a context error; queued
// jobs are untouched (a Close or Drain decides their fate).
func (s *Scheduler) Abort() {
	s.mu.Lock()
	cancel := s.cancelCur
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Close shuts the scheduler down: no new submissions, the in-flight
// job is aborted through its context, the executor exits, and the
// backend is closed. Idempotent.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.execDone
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.rootCancel()
	<-s.execDone
	return s.backend.Close()
}

// run is the executor goroutine: pop, execute, record, rebuild on
// failure — strictly one job at a time, in submission order.
func (s *Scheduler) run() {
	defer close(s.execDone)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			// Queued jobs die with the scheduler: mark them failed so
			// status queries don't report them queued forever.
			for _, id := range s.queue {
				j := s.jobs[id]
				j.State = StateFailed
				j.Finished = time.Now()
				j.Err = "jobs: scheduler closed before the job ran"
			}
			s.queue = nil
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		req := s.reqs[id]
		delete(s.reqs, id)
		j.State = StateRunning
		j.Started = time.Now()
		s.running = id
		var ctx context.Context
		var cancel context.CancelFunc
		if req.Timeout > 0 {
			ctx, cancel = context.WithTimeout(s.rootCtx, req.Timeout)
		} else {
			ctx, cancel = context.WithCancel(s.rootCtx)
		}
		s.cancelCur = cancel
		s.mu.Unlock()

		if s.trace != nil {
			// Between jobs every recorder is quiescent, so the reset
			// cleanly re-scopes the debug plane to this job.
			s.trace.Reset()
			if req.Prob.Recorder == nil {
				req.Prob.Recorder = s.trace
			}
		}

		// Checkpoint-opted jobs own a per-job store: it must outlive the
		// mesh rebuilds between attempts, which is exactly what makes
		// resume-from-checkpoint possible.
		maxRec := 0
		if req.Prob.Checkpoint.Every > 0 {
			if req.Prob.Checkpoint.Store == nil {
				req.Prob.Checkpoint.Store = node.NewCheckpointStore(s.backend.K())
			}
			maxRec = req.Prob.Checkpoint.MaxRecoveries
			if maxRec == 0 {
				maxRec = core.DefaultMaxRecoveries
			}
		}
		var rebuilds, recoveries int64
		out, err := s.backend.Run(ctx, req, id)
		for err != nil && recoveries < int64(maxRec) && recoverable(ctx, err) {
			// A machine died mid-job. Where the fail-fast path would
			// record the failure and move on, an opted-in job is
			// re-attempted: rebuild the poisoned fabric, then re-run the
			// same job with Resume set — the node runtime restores the
			// last complete checkpoint and replays only the supersteps
			// after it, so the final hash and Stats match an unkilled run.
			if !s.backend.Healthy() {
				if rerr := s.backend.Rebuild(); rerr != nil {
					break
				}
				rebuilds++
			}
			recoveries++
			req.Prob.Checkpoint.Resume = true
			out, err = s.backend.Run(ctx, req, id)
		}
		cancel()

		if err != nil && !s.backend.Healthy() {
			// Closing connections is what unblocked the dead job's
			// peers; the fabric is poisoned, so the next job needs a
			// fresh one. A rebuild failure surfaces on that next job
			// (Run fails fast on a dead mesh).
			if rerr := s.backend.Rebuild(); rerr == nil {
				rebuilds++
			}
		}

		s.mu.Lock()
		j.Finished = time.Now()
		s.running = 0
		s.cancelCur = nil
		wasCanceled := s.cancelReq == id
		s.cancelReq = 0
		s.rebuilds += rebuilds
		s.recovered += recoveries
		j.Recoveries = int(recoveries)
		if err != nil {
			if wasCanceled {
				j.State = StateCanceled
				s.canceled++
			} else {
				j.State = StateFailed
				s.failed++
			}
			j.Err = err.Error()
		} else {
			j.State = StateDone
			j.Outcome = out
			s.done++
		}
		s.markTerminalLocked(id)
		s.mu.Unlock()
	}
}

// recoverable reports whether a job failure is a machine loss worth a
// resume attempt: the runtime attributed it to a machine
// (transport.MachineError) and the job's own context is still live —
// cancellations and deadline hits are final.
func recoverable(ctx context.Context, err error) bool {
	var me *transport.MachineError
	return errors.As(err, &me) && ctx.Err() == nil
}
