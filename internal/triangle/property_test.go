package triangle

import (
	"testing"
	"testing/quick"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
	"kmachine/internal/rng"
)

// Property tests: for arbitrary small random graphs, partitions and
// option combinations, the distributed enumerators agree exactly with
// the sequential ground truths. These are the integration invariants
// that the shape experiments rely on.

func randomSmallGraph(seed uint64) *graph.Graph {
	r := rng.New(seed)
	n := 20 + r.Intn(60)
	p := 0.05 + 0.45*r.Float64()
	return gen.Gnp(n, p, seed+1)
}

func TestPropertyTrianglesMatchSequential(t *testing.T) {
	f := func(seedRaw uint16, kSel, proxSel, heavySel uint8) bool {
		seed := uint64(seedRaw)
		g := randomSmallGraph(seed)
		k := []int{2, 3, 8, 27}[kSel%4]
		p := partition.NewRVP(g, k, seed+2)
		opts := AlgorithmOptions()
		opts.Proxies = proxSel%2 == 0
		opts.HeavyDesignation = heavySel%2 == 0
		res, err := Run(p, core.Config{K: k, Bandwidth: 4, Seed: seed + 3}, opts)
		if err != nil {
			return false
		}
		wantCount, wantSum := graph.TriangleChecksum(g.Triangles())
		return res.Count == wantCount && res.Checksum == wantSum
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriadsMatchSequential(t *testing.T) {
	f := func(seedRaw uint16, kSel uint8) bool {
		seed := uint64(seedRaw) + 1000
		g := randomSmallGraph(seed)
		k := []int{3, 8, 27}[kSel%3]
		p := partition.NewRVP(g, k, seed+2)
		opts := AlgorithmOptions()
		opts.Triads = true
		res, err := Run(p, core.Config{K: k, Bandwidth: 4, Seed: seed + 3}, opts)
		if err != nil {
			return false
		}
		var want []graph.Triad
		g.EnumerateTriads(func(tr graph.Triad) bool { want = append(want, tr); return true })
		wantCount, wantSum := graph.TriadChecksum(want)
		return res.Count == wantCount && res.Checksum == wantSum
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyCliques4MatchSequential(t *testing.T) {
	f := func(seedRaw uint16, kSel uint8) bool {
		seed := uint64(seedRaw) + 2000
		g := randomSmallGraph(seed)
		k := []int{4, 16, 81}[kSel%3]
		p := partition.NewRVP(g, k, seed+2)
		res, err := RunCliques4(p, core.Config{K: k, Bandwidth: 4, Seed: seed + 3}, AlgorithmOptions())
		if err != nil {
			return false
		}
		wantCount, wantSum := graph.Clique4Checksum(g.Cliques4())
		return res.Count == wantCount && res.Checksum == wantSum
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyBaselineMatchesAlgorithm(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw) + 3000
		g := randomSmallGraph(seed)
		p := partition.NewRVP(g, 8, seed+2)
		cfg := core.Config{K: 8, Bandwidth: 4, Seed: seed + 3}
		alg, err := Run(p, cfg, AlgorithmOptions())
		if err != nil {
			return false
		}
		base, err := RunBaseline(p, cfg, Options{})
		if err != nil {
			return false
		}
		return alg.Count == base.Count && alg.Checksum == base.Checksum
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestOutputUniquenessInvariant: the sum over machines of per-machine
// counts must equal the global count — no triangle is double-counted
// even with every option combination.
func TestOutputUniquenessInvariant(t *testing.T) {
	g := gen.Gnp(90, 0.4, 31)
	for _, proxies := range []bool{true, false} {
		for _, heavy := range []bool{true, false} {
			opts := AlgorithmOptions()
			opts.Proxies, opts.HeavyDesignation = proxies, heavy
			p := partition.NewRVP(g, 27, 37)
			res, err := Run(p, core.Config{K: 27, Bandwidth: 8, Seed: 41}, opts)
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, c := range res.PerMachine {
				sum += c
			}
			if sum != res.Count {
				t.Fatalf("proxies=%v heavy=%v: per-machine sum %d != count %d",
					proxies, heavy, sum, res.Count)
			}
			if res.Count != g.CountTriangles() {
				t.Fatalf("proxies=%v heavy=%v: wrong count", proxies, heavy)
			}
		}
	}
}
