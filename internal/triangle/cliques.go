package triangle

import (
	"fmt"
	"sort"

	"kmachine/internal/algo"
	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
	"kmachine/internal/routing"
)

// Distributed 4-clique enumeration — the §1.2 generalization ("our
// techniques and results can be generalized to the enumeration of other
// small subgraphs such as cycles and cliques").
//
// The scheme lifts the triangle machinery one dimension: vertices are
// hashed into c = ⌊k^{1/4}⌋ color classes, each of the c⁴ ordered color
// quadruples is assigned to a machine, and the machine whose quadruple
// equals the ID-sorted color sequence of a clique outputs it — exactly
// once across the cluster. An edge with endpoint colors {a, b} must
// reach every quadruple containing {a, b} as a sub-multiset, i.e.
// Θ(c²) = Θ(k^{1/2}) copies, so total volume is Θ(m·√k) and the
// proxy-routed distribution completes in Õ(m/k^{3/2}) rounds — the
// K_s-generalised analogue of Theorem 5's Õ(m/k^{5/3}) (volume
// m·k^{(s-2)/s} over k² links).

// Colors4 returns the number of color classes for 4-clique runs: the
// largest c with c⁴ <= k.
func Colors4(k int) int {
	c := 1
	for (c+1)*(c+1)*(c+1)*(c+1) <= k {
		c++
	}
	return c
}

// quadOf returns machine m's ordered color quadruple (ok=false for
// machines beyond c⁴, which only serve as proxies).
func quadOf(m core.MachineID, c int) (q [4]int, ok bool) {
	if int(m) >= c*c*c*c {
		return q, false
	}
	i := int(m)
	q[0], q[1], q[2], q[3] = i/(c*c*c), (i/(c*c))%c, (i/c)%c, i%c
	return q, true
}

// pairTargets4 maps each unordered color pair to the quadruple machines
// whose multiset contains it.
func pairTargets4(c int) map[[2]int][]core.MachineID {
	targets := make(map[[2]int][]core.MachineID)
	for m := 0; m < c*c*c*c; m++ {
		q, _ := quadOf(core.MachineID(m), c)
		seen := map[[2]int]bool{}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i == j {
					continue
				}
				a, b := q[i], q[j]
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if !seen[key] {
					seen[key] = true
					targets[key] = append(targets[key], core.MachineID(m))
				}
			}
		}
	}
	return targets
}

type cliqueMachine struct {
	view partition.View
	opts Options
	k, c int

	heavy   map[int32]bool
	targets map[[2]int][]core.MachineID
	edges   [][2]int32

	count    int64
	checksum uint64
	out      []graph.Clique4
}

func (m *cliqueMachine) Step(ctx *core.StepContext, inbox []core.Envelope[tmsg]) ([]core.Envelope[tmsg], bool) {
	var out []core.Envelope[tmsg]
	for _, e := range inbox {
		switch e.Msg.Kind {
		case kindHeavyAnnounce:
			m.heavy[e.Msg.U] = true
		case kindEdgeToProxy:
			a := colorOf(m.opts.ColorSeed, e.Msg.U, m.c)
			b := colorOf(m.opts.ColorSeed, e.Msg.V, m.c)
			if a > b {
				a, b = b, a
			}
			for _, target := range m.targets[[2]int{a, b}] {
				out = append(out, core.Envelope[tmsg]{
					To:    target,
					Words: 2,
					Msg:   tmsg{Kind: kindEdgeFinal, U: e.Msg.U, V: e.Msg.V},
				})
			}
		case kindEdgeFinal:
			m.edges = append(m.edges, [2]int32{e.Msg.U, e.Msg.V})
		}
	}

	switch {
	case ctx.Superstep == 0:
		if m.opts.HeavyDesignation {
			threshold := routing.HeavyDegreeThreshold(m.k, m.view.N())
			for _, u := range m.view.Locals() {
				if m.view.Degree(u) >= threshold {
					m.heavy[u] = true
					for j := 0; j < m.k; j++ {
						if core.MachineID(j) == m.view.Self() {
							continue
						}
						out = append(out, core.Envelope[tmsg]{
							To:    core.MachineID(j),
							Words: 1,
							Msg:   tmsg{Kind: kindHeavyAnnounce, U: u},
						})
					}
				}
			}
		}
		return out, false
	case ctx.Superstep == 1:
		for _, u := range m.view.Locals() {
			for _, v := range m.view.OutAdj(u) {
				if routing.DesignatedEndpoint(u, v, m.heavy[u], m.heavy[v], m.opts.ColorSeed) != u {
					continue
				}
				proxy := core.MachineID(ctx.RNG.Intn(m.k))
				out = append(out, core.Envelope[tmsg]{
					To:    proxy,
					Words: 2,
					Msg:   tmsg{Kind: kindEdgeToProxy, U: u, V: v},
				})
			}
		}
		return out, false
	case ctx.Superstep == 2:
		return out, len(out) == 0
	default:
		m.enumerate()
		return out, true
	}
}

func (m *cliqueMachine) enumerate() {
	q, ok := quadOf(m.view.Self(), m.c)
	if !ok {
		return
	}
	adj := make(map[int32][]int32)
	for _, e := range m.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := range adj {
		s := adj[v]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		w := 0
		for i, x := range s {
			if i > 0 && x == s[i-1] {
				continue
			}
			s[w] = x
			w++
		}
		adj[v] = s[:w]
	}
	seed := m.opts.ColorSeed
	has := func(a, b int32) bool {
		s := adj[a]
		i := sort.Search(len(s), func(i int) bool { return s[i] >= b })
		return i < len(s) && s[i] == b
	}
	for a, nbrs := range adj {
		if colorOf(seed, a, m.c) != q[0] {
			continue
		}
		for _, b := range nbrs {
			if b <= a || colorOf(seed, b, m.c) != q[1] {
				continue
			}
			// c-candidates: common neighbours of a and b above b.
			for _, cv := range nbrs {
				if cv <= b || colorOf(seed, cv, m.c) != q[2] || !has(b, cv) {
					continue
				}
				for _, d := range nbrs {
					if d <= cv || colorOf(seed, d, m.c) != q[3] || !has(b, d) || !has(cv, d) {
						continue
					}
					cl := graph.Clique4{A: a, B: b, C: cv, D: d}
					m.count++
					m.checksum ^= graph.HashClique4(cl)
					if m.opts.Collect {
						m.out = append(m.out, cl)
					}
				}
			}
		}
	}
}

// Clique4Result reports a distributed 4-clique enumeration.
type Clique4Result struct {
	Count      int64
	Checksum   uint64
	PerMachine []int64
	Cliques    []graph.Clique4
	Colors     int
	Stats      *core.Stats
}

// RunCliques4 enumerates all 4-cliques of the partitioned graph; every
// clique is output by exactly one machine.
func RunCliques4(p *partition.VertexPartition, cfg core.Config, opts Options) (*Clique4Result, error) {
	if cfg.K != p.K {
		return nil, fmt.Errorf("triangle: cluster k=%d but partition k=%d", cfg.K, p.K)
	}
	if p.G.Directed() {
		return nil, fmt.Errorf("triangle: clique enumeration needs an undirected graph")
	}
	c := Colors4(cfg.K)
	targets := pairTargets4(c)
	res, stats, err := algo.Exec(cfg, WireCodec(),
		func(id core.MachineID) (algo.Machine[Wire, local4], error) {
			return &cliqueMachine{
				view:    p.View(id),
				opts:    opts,
				k:       cfg.K,
				c:       c,
				heavy:   make(map[int32]bool),
				targets: targets,
			}, nil
		},
		func(locals []local4) *Clique4Result {
			res := &Clique4Result{Colors: c, PerMachine: make([]int64, len(locals))}
			for id, l := range locals {
				res.Count += l.count
				res.Checksum ^= l.checksum
				res.PerMachine[id] = l.count
				res.Cliques = append(res.Cliques, l.cliques...)
			}
			return res
		})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// local4 is one machine's share of a 4-clique enumeration.
type local4 struct {
	count    int64
	checksum uint64
	cliques  []graph.Clique4
}

// Output implements algo.Machine.
func (m *cliqueMachine) Output() local4 {
	return local4{count: m.count, checksum: m.checksum, cliques: m.out}
}
