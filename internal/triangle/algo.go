package triangle

import (
	"fmt"

	"kmachine/internal/algo"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

// Local is one machine's share of an enumeration output (triangles or
// open triads; the baseline and color-partition machines share it).
type Local struct {
	// Count and Checksum summarise the outputs of this machine.
	Count    int64
	Checksum uint64
	// Triangles / Triads are the materialised outputs (Options.Collect).
	Triangles []graph.Triangle
	Triads    []graph.Triad
}

// Output implements algo.Machine.
func (m *triMachine) Output() Local {
	return Local{Count: m.count, Checksum: m.checksum, Triangles: m.out, Triads: m.triads}
}

// Output implements algo.Machine.
func (m *baselineMachine) Output() Local {
	return Local{Count: m.count, Checksum: m.checksum, Triangles: m.out}
}

// mergeEnum folds machine-local enumeration shares into a Result for a
// run with c color classes.
func mergeEnum(c int) func(locals []Local) *Result {
	return func(locals []Local) *Result {
		res := &Result{Colors: c, PerMachine: make([]int64, len(locals))}
		for id, l := range locals {
			res.Count += l.Count
			res.Checksum ^= l.Checksum
			res.PerMachine[id] = l.Count
			res.Triangles = append(res.Triangles, l.Triangles...)
			res.Triads = append(res.Triads, l.Triads...)
		}
		return res
	}
}

// Descriptor returns the algo-layer descriptor of the paper's §3.2
// color-partition enumeration on a k-machine cluster.
func Descriptor(k int, opts Options) algo.Algorithm[Wire, Local, *Result] {
	c := Colors(k)
	targets := pairTargets(c)
	return algo.Algorithm[Wire, Local, *Result]{
		Name:  "triangle",
		Codec: WireCodec(),
		NewMachine: func(view partition.View) (algo.Machine[Wire, Local], error) {
			return &triMachine{
				view:    view,
				opts:    opts,
				k:       k,
				c:       c,
				heavy:   make(map[int32]bool),
				targets: targets,
			}, nil
		},
		Merge: mergeEnum(c),
	}
}

func init() {
	algo.Register(algo.Spec[Wire, Local, *Result]{
		Name: "triangle",
		Doc:  "color-partition triangle enumeration (Õ(m/k^{5/3}+n/k^{4/3}) rounds, Thm 5)",
		Build: func(prob algo.Problem) (algo.Algorithm[Wire, Local, *Result], partition.Input, error) {
			in, err := algo.GnpInput(prob)
			if err != nil {
				return algo.Algorithm[Wire, Local, *Result]{}, nil, err
			}
			return Descriptor(prob.K, AlgorithmOptions()), in, nil
		},
		Hash: func(r *Result) uint64 {
			h := algo.NewHash64()
			h.Add(uint64(r.Count))
			h.Add(r.Checksum)
			for _, c := range r.PerMachine {
				h.Add(uint64(c))
			}
			return h.Sum()
		},
		Summarize: func(r *Result, top int) []string {
			var maxOut int64
			for _, c := range r.PerMachine {
				if c > maxOut {
					maxOut = c
				}
			}
			return []string{fmt.Sprintf("triangle: %d triangles (checksum %016x), colors=%d, max %d outputs on one machine",
				r.Count, r.Checksum, r.Colors, maxOut)}
		},
		SummarizeLocal: func(l Local, top int) []string {
			return []string{fmt.Sprintf("triangle: this machine output %d triangles (checksum %016x)",
				l.Count, l.Checksum)}
		},
	})
}
