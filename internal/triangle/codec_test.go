package triangle

import (
	"testing"

	"kmachine/internal/rng"
)

func TestWireCodecRoundTripProperty(t *testing.T) {
	r := rng.New(31)
	c := WireCodec()
	kinds := []uint8{kindHeavyAnnounce, kindEdgeToProxy, kindEdgeFinal}
	for i := 0; i < 3000; i++ {
		want := Wire{
			Kind: kinds[r.Intn(len(kinds))],
			U:    int32(r.Uint64()),
			V:    int32(r.Uint64()),
		}
		buf, err := c.Append(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := c.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || n != len(buf) {
			t.Fatalf("round trip: got %+v (n=%d), want %+v (len=%d)", got, n, want, len(buf))
		}
	}
}

func TestBaselineWireCodecRoundTripProperty(t *testing.T) {
	r := rng.New(37)
	c := BaselineWireCodec()
	for i := 0; i < 3000; i++ {
		want := BaselineWire{
			Deputy: int32(r.Uint64()),
			U:      int32(r.Uint64()),
			V:      int32(r.Uint64()),
		}
		buf, err := c.Append(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := c.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || n != len(buf) {
			t.Fatalf("round trip: got %+v (n=%d), want %+v (len=%d)", got, n, want, len(buf))
		}
	}
}
