package triangle

import (
	"fmt"
	"sort"

	"kmachine/internal/algo"
	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

// Conversion-style baseline (Klauck et al. [33]): the congested-clique
// TriPartition algorithm of Dolev et al. [21] uses n^{1/3} color classes
// and assigns each of the n ordered color triples to a distinct *vertex*
// ("deputy"). Simulating it in the k-machine model via the Conversion
// Theorem means every deputy receives its edge copies as separate
// node-addressed messages through its home machine — no machine-level
// aggregation, no proxies. The total volume is Θ(m·n^{1/3}) words, which
// the k² links drain in Õ(m·n^{1/3}/k²) rounds — Õ(n^{7/3}/k²) on dense
// graphs, the bound the paper improves to Õ(m/k^{5/3} + n/k^{4/3}).

type bmsg struct {
	Deputy int32
	U, V   int32
}

type baselineMachine struct {
	view partition.View
	opts Options
	k    int
	c    int // n^{1/3} color classes

	// perDeputy collects edge lists for the deputies homed here.
	perDeputy map[int32][][2]int32
	targets   map[[2]int][]core.MachineID // reused: pair -> deputy IDs (as int32 in MachineID form)

	count    int64
	checksum uint64
	out      []graph.Triangle
}

func (m *baselineMachine) Step(ctx *core.StepContext, inbox []core.Envelope[bmsg]) ([]core.Envelope[bmsg], bool) {
	for _, e := range inbox {
		m.perDeputy[e.Msg.Deputy] = append(m.perDeputy[e.Msg.Deputy], [2]int32{e.Msg.U, e.Msg.V})
	}
	switch ctx.Superstep {
	case 0:
		var out []core.Envelope[bmsg]
		for _, u := range m.view.Locals() {
			for _, v := range m.view.OutAdj(u) {
				if v < u {
					continue // min-ID endpoint's home ships the edge
				}
				a := colorOf(m.opts.ColorSeed, u, m.c)
				b := colorOf(m.opts.ColorSeed, v, m.c)
				if a > b {
					a, b = b, a
				}
				for _, dep := range m.targets[[2]int{a, b}] {
					deputy := int32(dep) // deputy vertex ID < c³ <= n
					out = append(out, core.Envelope[bmsg]{
						To:    m.view.HomeOf(deputy),
						Words: 3, // deputy + two endpoints
						Msg:   bmsg{Deputy: deputy, U: u, V: v},
					})
				}
			}
		}
		return out, false
	default:
		// Every edge sent in superstep 0 has arrived by superstep 1.
		for deputy, edges := range m.perDeputy {
			m.enumerateDeputy(deputy, edges)
		}
		return nil, true
	}
}

func (m *baselineMachine) enumerateDeputy(deputy int32, edges [][2]int32) {
	c1, c2, c3, ok := tripleOf(core.MachineID(deputy), m.c)
	if !ok {
		return
	}
	adj := make(map[int32][]int32)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := range adj {
		s := adj[v]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		w := 0
		for i, x := range s {
			if i > 0 && x == s[i-1] {
				continue
			}
			s[w] = x
			w++
		}
		adj[v] = s[:w]
	}
	seed := m.opts.ColorSeed
	for u, nbrs := range adj {
		if colorOf(seed, u, m.c) != c1 {
			continue
		}
		for _, v := range nbrs {
			if v <= u || colorOf(seed, v, m.c) != c2 {
				continue
			}
			us, vs := adj[u], adj[v]
			i := sort.Search(len(us), func(i int) bool { return us[i] > v })
			j := sort.Search(len(vs), func(i int) bool { return vs[i] > v })
			for i < len(us) && j < len(vs) {
				switch {
				case us[i] < vs[j]:
					i++
				case us[i] > vs[j]:
					j++
				default:
					w := us[i]
					if colorOf(seed, w, m.c) == c3 {
						t := graph.Triangle{A: u, B: v, C: w}
						m.count++
						m.checksum ^= graph.HashTriangle(t)
						if m.opts.Collect {
							m.out = append(m.out, t)
						}
					}
					i++
					j++
				}
			}
		}
	}
}

// RunBaseline executes the conversion-style baseline through the
// generic internal/algo driver. cfg.K must equal p.K; the graph must be
// undirected.
func RunBaseline(p *partition.VertexPartition, cfg core.Config, opts Options) (*Result, error) {
	if cfg.K != p.K {
		return nil, fmt.Errorf("triangle: cluster k=%d but partition k=%d", cfg.K, p.K)
	}
	if p.G.Directed() {
		return nil, fmt.Errorf("triangle: enumeration needs an undirected graph")
	}
	c := Colors(p.G.N()) // n^{1/3} classes: the congested-clique granularity
	targets := pairTargets(c)
	res, stats, err := algo.Exec(cfg, BaselineWireCodec(),
		func(id core.MachineID) (algo.Machine[BaselineWire, Local], error) {
			return &baselineMachine{
				view:      p.View(id),
				opts:      opts,
				k:         cfg.K,
				c:         c,
				perDeputy: make(map[int32][][2]int32),
				targets:   targets,
			}, nil
		}, mergeEnum(c))
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}
