package triangle

import (
	"fmt"

	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

// Centralized strategy — the foil in the paper's Corollary 2 discussion:
// "this rules out algorithms that aggregate all input information at a
// single machine (which would only require O(m) messages in total)".
// Every machine ships its designated edges straight to machine 0, which
// enumerates everything locally. Total messages are exactly m (optimal),
// but the collector's k-1 incoming links serialise the transfer at
// Θ(m/(k·B)) rounds — a factor ~k^{2/3} above the round-optimal
// Õ(m/k^{5/3}) algorithm. Together with RunBaseline and Run this gives
// the three points of the message/round tradeoff curve that Corollary 2
// describes.

type centralMachine struct {
	view partition.View

	edges    [][2]int32
	count    int64
	checksum uint64
}

func (m *centralMachine) Step(ctx *core.StepContext, inbox []core.Envelope[tmsg]) ([]core.Envelope[tmsg], bool) {
	for _, e := range inbox {
		m.edges = append(m.edges, [2]int32{e.Msg.U, e.Msg.V})
	}
	switch ctx.Superstep {
	case 0:
		var out []core.Envelope[tmsg]
		for _, u := range m.view.Locals() {
			for _, v := range m.view.OutAdj(u) {
				if v < u {
					continue // each edge shipped once, by the min endpoint's home
				}
				out = append(out, core.Envelope[tmsg]{
					To:    0,
					Words: 2,
					Msg:   tmsg{Kind: kindEdgeFinal, U: u, V: v},
				})
			}
		}
		return out, false
	default:
		if m.view.Self() == 0 {
			g := graph.FromEdges(m.view.N(), false, m.edges)
			g.EnumerateTriangles(func(t graph.Triangle) bool {
				m.count++
				m.checksum ^= graph.HashTriangle(t)
				return true
			})
		}
		return nil, true
	}
}

// RunCentralized aggregates the whole graph at machine 0 and enumerates
// there. It exists to measure the Corollary 2 tradeoff, not to be used.
func RunCentralized(p *partition.VertexPartition, cfg core.Config) (*Result, error) {
	if cfg.K != p.K {
		return nil, fmt.Errorf("triangle: cluster k=%d but partition k=%d", cfg.K, p.K)
	}
	if p.G.Directed() {
		return nil, fmt.Errorf("triangle: enumeration needs an undirected graph")
	}
	machines := make([]*centralMachine, cfg.K)
	cluster := core.NewCluster(cfg, func(id core.MachineID) core.Machine[tmsg] {
		m := &centralMachine{view: p.View(id)}
		machines[id] = m
		return m
	})
	stats, err := cluster.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{Colors: 1, Stats: stats, PerMachine: make([]int64, cfg.K)}
	for id, m := range machines {
		res.Count += m.count
		res.Checksum ^= m.checksum
		res.PerMachine[id] = m.count
	}
	return res, nil
}
