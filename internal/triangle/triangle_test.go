package triangle

import (
	"sort"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

func runTri(t *testing.T, g *graph.Graph, k int, opts Options, seed uint64) *Result {
	t.Helper()
	p := partition.NewRVP(g, k, seed)
	res, err := Run(p, core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: seed + 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkAgainstGroundTruth(t *testing.T, g *graph.Graph, res *Result, label string) {
	t.Helper()
	wantCount, wantSum := graph.TriangleChecksum(g.Triangles())
	if res.Count != wantCount {
		t.Errorf("%s: %d triangles, want %d", label, res.Count, wantCount)
	}
	if res.Checksum != wantSum {
		t.Errorf("%s: checksum mismatch (count %d): outputs differ from ground truth", label, res.Count)
	}
}

func TestColors(t *testing.T) {
	cases := map[int]int{2: 1, 7: 1, 8: 2, 26: 2, 27: 3, 63: 3, 64: 4, 1000: 10}
	for k, want := range cases {
		if got := Colors(k); got != want {
			t.Errorf("Colors(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestTripleRoundTrip(t *testing.T) {
	for _, c := range []int{1, 2, 3, 4} {
		for m := 0; m < c*c*c; m++ {
			c1, c2, c3, ok := tripleOf(core.MachineID(m), c)
			if !ok {
				t.Fatalf("c=%d machine %d should be a triple machine", c, m)
			}
			if got := tripleMachine(c1, c2, c3, c); int(got) != m {
				t.Fatalf("triple round trip failed: %d -> (%d,%d,%d) -> %d", m, c1, c2, c3, got)
			}
		}
		if _, _, _, ok := tripleOf(core.MachineID(c*c*c), c); ok {
			t.Errorf("c=%d: machine %d wrongly claims a triple", c, c*c*c)
		}
	}
}

func TestPairTargetsCoverage(t *testing.T) {
	// Every triple machine whose multiset contains the pair must be a
	// target, and no others.
	for _, c := range []int{2, 3, 4} {
		targets := pairTargets(c)
		for a := 0; a < c; a++ {
			for b := a; b < c; b++ {
				got := map[core.MachineID]bool{}
				for _, m := range targets[[2]int{a, b}] {
					if got[m] {
						t.Fatalf("c=%d pair (%d,%d): duplicate target %d", c, a, b, m)
					}
					got[m] = true
				}
				for m := 0; m < c*c*c; m++ {
					c1, c2, c3, _ := tripleOf(core.MachineID(m), c)
					counts := map[int]int{c1: 0, c2: 0, c3: 0}
					counts[c1]++
					counts[c2]++
					counts[c3]++
					var want bool
					if a == b {
						want = counts[a] >= 2
					} else {
						want = counts[a] >= 1 && counts[b] >= 1
					}
					if want != got[core.MachineID(m)] {
						t.Fatalf("c=%d pair (%d,%d) machine %d (%d,%d,%d): target=%v want %v",
							c, a, b, m, c1, c2, c3, got[core.MachineID(m)], want)
					}
				}
			}
		}
	}
}

func TestEnumeratesGnpExactly(t *testing.T) {
	for _, k := range []int{8, 27, 64} {
		g := gen.Gnp(150, 0.2, uint64(k))
		res := runTri(t, g, k, AlgorithmOptions(), uint64(k)+100)
		checkAgainstGroundTruth(t, g, res, "gnp")
	}
}

func TestEnumeratesDenseGraphExactly(t *testing.T) {
	// G(n, 1/2) is the Theorem 3 lower-bound family.
	g := gen.Gnp(120, 0.5, 3)
	res := runTri(t, g, 27, AlgorithmOptions(), 5)
	checkAgainstGroundTruth(t, g, res, "dense")
}

func TestEnumeratesCompleteGraph(t *testing.T) {
	g := gen.Complete(40)
	res := runTri(t, g, 8, AlgorithmOptions(), 7)
	if want := int64(40 * 39 * 38 / 6); res.Count != want {
		t.Errorf("K40: %d triangles, want %d", res.Count, want)
	}
}

func TestEnumeratesPlantedExactlyWithCollect(t *testing.T) {
	g := gen.PlantedTriangles(60, 120, 9)
	opts := AlgorithmOptions()
	opts.Collect = true
	res := runTri(t, g, 27, opts, 11)
	want := g.Triangles()
	got := append([]graph.Triangle(nil), res.Triangles...)
	sort.Slice(got, func(i, j int) bool {
		a, b := got[i], got[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
	if len(got) != len(want) {
		t.Fatalf("got %d triangles, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("triangle %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestNoDuplicatesAcrossMachines(t *testing.T) {
	// Count equality with ground truth plus checksum equality already
	// rules out duplicates; this test makes the property explicit by
	// collecting and checking set-ness.
	g := gen.Gnp(100, 0.3, 13)
	opts := AlgorithmOptions()
	opts.Collect = true
	res := runTri(t, g, 27, opts, 17)
	seen := map[graph.Triangle]bool{}
	for _, tr := range res.Triangles {
		if seen[tr] {
			t.Fatalf("triangle %+v output by two machines", tr)
		}
		seen[tr] = true
	}
}

func TestTriangleFreeGraph(t *testing.T) {
	g := gen.CompleteBipartite(20, 20)
	res := runTri(t, g, 8, AlgorithmOptions(), 19)
	if res.Count != 0 {
		t.Errorf("bipartite graph yielded %d triangles", res.Count)
	}
}

func TestWithoutProxiesStillExact(t *testing.T) {
	g := gen.Gnp(120, 0.3, 21)
	opts := AlgorithmOptions()
	opts.Proxies = false
	res := runTri(t, g, 27, opts, 23)
	checkAgainstGroundTruth(t, g, res, "no-proxies")
}

func TestWithoutHeavyDesignationStillExact(t *testing.T) {
	g := gen.Star(200) // maximally heavy hub
	opts := AlgorithmOptions()
	opts.HeavyDesignation = false
	res := runTri(t, g, 8, opts, 29)
	if res.Count != 0 {
		t.Errorf("star yielded %d triangles", res.Count)
	}
	g2 := gen.Gnp(100, 0.3, 31)
	res2 := runTri(t, g2, 8, opts, 37)
	checkAgainstGroundTruth(t, g2, res2, "no-heavy")
}

func TestBaselineExact(t *testing.T) {
	g := gen.Gnp(80, 0.3, 41)
	p := partition.NewRVP(g, 8, 43)
	res, err := RunBaseline(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 47}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstGroundTruth(t, g, res, "baseline")
}

func TestAlgorithmBeatsBaseline(t *testing.T) {
	// Theorem 5 vs the Õ(m·n^{1/3}/k²) baseline: the ratio is
	// Θ((n/k)^{1/3}), clearly visible on a dense graph.
	g := gen.Gnp(300, 0.5, 53)
	const k = 27
	p := partition.NewRVP(g, k, 59)
	cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 61}
	alg, err := Run(p, cfg, AlgorithmOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunBaseline(p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if alg.Count != base.Count {
		t.Fatalf("algorithm and baseline disagree on count: %d vs %d", alg.Count, base.Count)
	}
	if base.Stats.Rounds < alg.Stats.Rounds*3/2 {
		t.Errorf("baseline rounds %d not ≫ algorithm rounds %d", base.Stats.Rounds, alg.Stats.Rounds)
	}
}

func TestRoundsScaleWithK(t *testing.T) {
	// Theorem 5: Õ(m/k^{5/3}). k: 8 -> 64 is an 8x machine increase, so
	// rounds should drop by ~8^{5/3} = 32x; we assert a conservative 6x.
	g := gen.Gnp(300, 0.5, 67)
	r8 := runTri(t, g, 8, AlgorithmOptions(), 71)
	r64 := runTri(t, g, 64, AlgorithmOptions(), 71)
	if r8.Count != r64.Count {
		t.Fatalf("count depends on k: %d vs %d", r8.Count, r64.Count)
	}
	ratio := float64(r8.Stats.Rounds) / float64(r64.Stats.Rounds)
	if ratio < 6 {
		t.Errorf("k 8->64 speedup %.1fx (%d -> %d rounds); want > 6x",
			ratio, r8.Stats.Rounds, r64.Stats.Rounds)
	}
}

func TestCongestedCliqueMode(t *testing.T) {
	// Corollary 1 upper bound side: k = n, one vertex per machine.
	g := gen.Gnp(64, 0.5, 73)
	p := partition.NewIdentity(g)
	res, err := Run(p, core.Config{K: g.N(), Bandwidth: 1, Seed: 79}, AlgorithmOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstGroundTruth(t, g, res, "clique")
}

func TestSomeMachineOutputsManyTriangles(t *testing.T) {
	// Lemma 9(A): at least one machine outputs >= t/k triangles.
	g := gen.Gnp(150, 0.5, 83)
	const k = 27
	res := runTri(t, g, k, AlgorithmOptions(), 89)
	var max int64
	for _, c := range res.PerMachine {
		if c > max {
			max = c
		}
	}
	if need := res.Count / int64(k); max < need {
		t.Errorf("max per-machine output %d below t/k = %d", max, need)
	}
}

func TestTriadsExact(t *testing.T) {
	g := gen.Gnp(80, 0.15, 97)
	opts := AlgorithmOptions()
	opts.Triads = true
	res := runTri(t, g, 27, opts, 101)
	var want []graph.Triad
	g.EnumerateTriads(func(tr graph.Triad) bool { want = append(want, tr); return true })
	wantCount, wantSum := graph.TriadChecksum(want)
	if res.Count != wantCount {
		t.Errorf("triads: %d, want %d", res.Count, wantCount)
	}
	if res.Checksum != wantSum {
		t.Error("triad checksum mismatch")
	}
}

func TestTriadsOnStar(t *testing.T) {
	// K_{1,d}: exactly C(d,2) triads, all centred at the hub.
	const d = 40
	g := gen.Star(d + 1)
	opts := AlgorithmOptions()
	opts.Triads = true
	opts.Collect = true
	res := runTri(t, g, 8, opts, 103)
	if want := int64(d * (d - 1) / 2); res.Count != want {
		t.Errorf("star triads = %d, want %d", res.Count, want)
	}
	for _, tr := range res.Triads {
		if tr.Center != 0 {
			t.Fatalf("triad %+v not centred at hub", tr)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := gen.Gnp(100, 0.3, 107)
	a := runTri(t, g, 27, AlgorithmOptions(), 109)
	b := runTri(t, g, 27, AlgorithmOptions(), 109)
	if a.Count != b.Count || a.Checksum != b.Checksum || a.Stats.Rounds != b.Stats.Rounds {
		t.Error("identical runs disagree")
	}
}

func TestRejectsDirectedGraph(t *testing.T) {
	g := gen.DirectedCycle(10)
	p := partition.NewRVP(g, 4, 1)
	if _, err := Run(p, core.Config{K: 4, Bandwidth: 4, Seed: 1}, AlgorithmOptions()); err == nil {
		t.Error("directed graph accepted")
	}
	if _, err := RunBaseline(p, core.Config{K: 4, Bandwidth: 4, Seed: 1}, Options{}); err == nil {
		t.Error("baseline accepted directed graph")
	}
}

func TestRejectsMismatchedK(t *testing.T) {
	g := gen.Gnp(30, 0.2, 1)
	p := partition.NewRVP(g, 4, 1)
	if _, err := Run(p, core.Config{K: 8, Bandwidth: 4, Seed: 1}, AlgorithmOptions()); err == nil {
		t.Error("mismatched k accepted")
	}
}
