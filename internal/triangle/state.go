package triangle

import (
	"encoding/binary"
	"fmt"
	"slices"

	"kmachine/internal/graph"
	twire "kmachine/internal/transport/wire"
)

// SnapshotState serialises the machine's dynamic enumeration state:
// the heavy-vertex set (keys sorted — map iteration order must not
// leak into the blob), the accumulated final-edge list in append order
// (enumeration walks it in that order), the running count/checksum, and
// any collected triangles/triads. The proxy-target table is static
// (derived from k and the color seed at construction) and never
// serialised.
func (m *triMachine) SnapshotState(dst []byte) ([]byte, error) {
	heavy := make([]int32, 0, len(m.heavy))
	for u := range m.heavy {
		heavy = append(heavy, u)
	}
	slices.Sort(heavy)
	dst = twire.AppendUvarint(dst, uint64(len(heavy)))
	for _, u := range heavy {
		dst = twire.AppendVarint(dst, int64(u))
	}
	dst = twire.AppendUvarint(dst, uint64(len(m.edges)))
	for _, e := range m.edges {
		dst = twire.AppendVarint(dst, int64(e[0]))
		dst = twire.AppendVarint(dst, int64(e[1]))
	}
	dst = twire.AppendVarint(dst, m.count)
	dst = binary.LittleEndian.AppendUint64(dst, m.checksum)
	dst = twire.AppendUvarint(dst, uint64(len(m.out)))
	for _, t := range m.out {
		dst = twire.AppendVarint(dst, int64(t.A))
		dst = twire.AppendVarint(dst, int64(t.B))
		dst = twire.AppendVarint(dst, int64(t.C))
	}
	dst = twire.AppendUvarint(dst, uint64(len(m.triads)))
	for _, t := range m.triads {
		dst = twire.AppendVarint(dst, int64(t.Center))
		dst = twire.AppendVarint(dst, int64(t.Left))
		dst = twire.AppendVarint(dst, int64(t.Right))
	}
	return dst, nil
}

// RestoreState overwrites the machine's dynamic state from a
// SnapshotState blob taken on a machine built from the same inputs.
func (m *triMachine) RestoreState(src []byte) error {
	c := twire.Cursor{Src: src}
	nHeavy := int(c.Uvarint())
	heavy := make([]int32, 0, nHeavy)
	for i := 0; i < nHeavy && c.Err == nil; i++ {
		heavy = append(heavy, int32(c.Varint()))
	}
	nEdges := int(c.Uvarint())
	edges := m.edges[:0]
	for i := 0; i < nEdges && c.Err == nil; i++ {
		u := int32(c.Varint())
		v := int32(c.Varint())
		edges = append(edges, [2]int32{u, v})
	}
	count := c.Varint()
	checksum := c.Uint64()
	nOut := int(c.Uvarint())
	out := m.out[:0]
	for i := 0; i < nOut && c.Err == nil; i++ {
		a := int32(c.Varint())
		b := int32(c.Varint())
		cc := int32(c.Varint())
		out = append(out, graph.Triangle{A: a, B: b, C: cc})
	}
	nTriads := int(c.Uvarint())
	triads := m.triads[:0]
	for i := 0; i < nTriads && c.Err == nil; i++ {
		ce := int32(c.Varint())
		l := int32(c.Varint())
		r := int32(c.Varint())
		triads = append(triads, graph.Triad{Center: ce, Left: l, Right: r})
	}
	if err := c.Finish(); err != nil {
		return fmt.Errorf("triangle: restore: %w", err)
	}
	clear(m.heavy)
	for _, u := range heavy {
		m.heavy[u] = true
	}
	m.edges = edges
	m.count = count
	m.checksum = checksum
	m.out = out
	m.triads = triads
	return nil
}
