package triangle

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

func runC4(t *testing.T, g *graph.Graph, k int, seed uint64) *Clique4Result {
	t.Helper()
	p := partition.NewRVP(g, k, seed)
	res, err := RunCliques4(p, core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: seed + 1}, AlgorithmOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkCliques4(t *testing.T, g *graph.Graph, res *Clique4Result, label string) {
	t.Helper()
	wantCount, wantSum := graph.Clique4Checksum(g.Cliques4())
	if res.Count != wantCount {
		t.Errorf("%s: %d 4-cliques, want %d", label, res.Count, wantCount)
	}
	if res.Checksum != wantSum {
		t.Errorf("%s: checksum mismatch", label)
	}
}

func TestColors4(t *testing.T) {
	cases := map[int]int{2: 1, 15: 1, 16: 2, 80: 2, 81: 3, 256: 4}
	for k, want := range cases {
		if got := Colors4(k); got != want {
			t.Errorf("Colors4(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestQuadRoundTrip(t *testing.T) {
	const c = 3
	seen := map[[4]int]bool{}
	for m := 0; m < c*c*c*c; m++ {
		q, ok := quadOf(core.MachineID(m), c)
		if !ok {
			t.Fatalf("machine %d should hold a quadruple", m)
		}
		if seen[q] {
			t.Fatalf("duplicate quadruple %v", q)
		}
		seen[q] = true
	}
	if _, ok := quadOf(core.MachineID(c*c*c*c), c); ok {
		t.Error("out-of-range machine claims a quadruple")
	}
}

func TestPairTargets4Coverage(t *testing.T) {
	for _, c := range []int{2, 3} {
		targets := pairTargets4(c)
		for a := 0; a < c; a++ {
			for b := a; b < c; b++ {
				got := map[core.MachineID]bool{}
				for _, m := range targets[[2]int{a, b}] {
					if got[m] {
						t.Fatalf("duplicate target for pair (%d,%d)", a, b)
					}
					got[m] = true
				}
				for m := 0; m < c*c*c*c; m++ {
					q, _ := quadOf(core.MachineID(m), c)
					counts := map[int]int{}
					for _, x := range q {
						counts[x]++
					}
					var want bool
					if a == b {
						want = counts[a] >= 2
					} else {
						want = counts[a] >= 1 && counts[b] >= 1
					}
					if want != got[core.MachineID(m)] {
						t.Fatalf("c=%d pair (%d,%d) machine %d (%v): got %v want %v",
							c, a, b, m, q, got[core.MachineID(m)], want)
					}
				}
			}
		}
	}
}

func TestCliques4Gnp(t *testing.T) {
	for _, k := range []int{16, 81} {
		g := gen.Gnp(80, 0.4, uint64(k))
		res := runC4(t, g, k, uint64(k)+5)
		checkCliques4(t, g, res, "gnp")
	}
}

func TestCliques4CompleteGraph(t *testing.T) {
	g := gen.Complete(20)
	res := runC4(t, g, 16, 7)
	if want := int64(20 * 19 * 18 * 17 / 24); res.Count != want {
		t.Errorf("K20: %d 4-cliques, want %d", res.Count, want)
	}
}

func TestCliques4NoneInBipartite(t *testing.T) {
	g := gen.CompleteBipartite(15, 15)
	res := runC4(t, g, 16, 9)
	if res.Count != 0 {
		t.Errorf("bipartite graph yielded %d 4-cliques", res.Count)
	}
}

func TestCliques4NoDuplicates(t *testing.T) {
	g := gen.Gnp(60, 0.5, 11)
	p := partition.NewRVP(g, 16, 13)
	opts := AlgorithmOptions()
	opts.Collect = true
	res, err := RunCliques4(p, core.Config{K: 16, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 17}, opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.Clique4]bool{}
	for _, c := range res.Cliques {
		if seen[c] {
			t.Fatalf("clique %+v output twice", c)
		}
		seen[c] = true
	}
	checkCliques4(t, g, res, "collect")
}

func TestCliques4SmallK(t *testing.T) {
	// k < 16 gives a single color class: one machine enumerates, the
	// rest proxy. Still exact.
	g := gen.Gnp(50, 0.4, 19)
	res := runC4(t, g, 4, 23)
	checkCliques4(t, g, res, "k=4")
}

func TestCliques4Deterministic(t *testing.T) {
	g := gen.Gnp(60, 0.4, 29)
	a := runC4(t, g, 16, 31)
	b := runC4(t, g, 16, 31)
	if a.Count != b.Count || a.Checksum != b.Checksum || a.Stats.Rounds != b.Stats.Rounds {
		t.Error("identical runs disagree")
	}
}

func TestCliques4RejectsDirected(t *testing.T) {
	g := gen.DirectedCycle(10)
	p := partition.NewRVP(g, 4, 1)
	if _, err := RunCliques4(p, core.Config{K: 4, Bandwidth: 4, Seed: 1}, AlgorithmOptions()); err == nil {
		t.Error("directed graph accepted")
	}
}
