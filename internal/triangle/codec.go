package triangle

import (
	"fmt"

	twire "kmachine/internal/transport/wire"
)

// Wire is the envelope payload type of the paper's triangle / 4-clique
// enumeration: ⟨kind, u, v⟩ edge and announcement messages. These
// travel without the two-hop frame — proxy indirection is explicit in
// the algorithm's superstep structure.
type Wire = tmsg

// BaselineWire is the payload of the conversion-style TriPartition
// baseline: ⟨deputy, u, v⟩ edge copies.
type BaselineWire = bmsg

// WireCodec returns the binary codec for triangle envelopes.
func WireCodec() twire.Codec[Wire] { return tmsgCodec{} }

// BaselineWireCodec returns the binary codec for baseline envelopes.
func BaselineWireCodec() twire.Codec[BaselineWire] { return bmsgCodec{} }

type tmsgCodec struct{}

func (tmsgCodec) Append(dst []byte, m tmsg) ([]byte, error) {
	dst = append(dst, m.Kind)
	dst = twire.AppendVarint(dst, int64(m.U))
	return twire.AppendVarint(dst, int64(m.V)), nil
}

func (tmsgCodec) Decode(src []byte) (tmsg, int, error) {
	if len(src) < 1 {
		return tmsg{}, 0, fmt.Errorf("triangle: truncated message")
	}
	m := tmsg{Kind: src[0]}
	pos := 1
	u, n, err := twire.Varint(src[pos:])
	if err != nil {
		return tmsg{}, 0, err
	}
	m.U = int32(u)
	pos += n
	v, n, err := twire.Varint(src[pos:])
	if err != nil {
		return tmsg{}, 0, err
	}
	m.V = int32(v)
	return m, pos + n, nil
}

type bmsgCodec struct{}

func (bmsgCodec) Append(dst []byte, m bmsg) ([]byte, error) {
	dst = twire.AppendVarint(dst, int64(m.Deputy))
	dst = twire.AppendVarint(dst, int64(m.U))
	return twire.AppendVarint(dst, int64(m.V)), nil
}

func (bmsgCodec) Decode(src []byte) (bmsg, int, error) {
	var m bmsg
	pos := 0
	for _, f := range []*int32{&m.Deputy, &m.U, &m.V} {
		v, n, err := twire.Varint(src[pos:])
		if err != nil {
			return bmsg{}, 0, err
		}
		*f = int32(v)
		pos += n
	}
	return m, pos, nil
}
