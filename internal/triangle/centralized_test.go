package triangle

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

func TestCentralizedExact(t *testing.T) {
	g := gen.Gnp(120, 0.3, 3)
	p := partition.NewRVP(g, 8, 5)
	res, err := RunCentralized(p, core.Config{K: 8, Bandwidth: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum := graph.TriangleChecksum(g.Triangles())
	if res.Count != wantCount || res.Checksum != wantSum {
		t.Fatalf("centralized: %d triangles, want %d", res.Count, wantCount)
	}
	// All output at machine 0.
	for i := 1; i < 8; i++ {
		if res.PerMachine[i] != 0 {
			t.Errorf("machine %d output %d triangles; centralized should use only machine 0", i, res.PerMachine[i])
		}
	}
}

func TestCentralizedMessageOptimalRoundSuboptimal(t *testing.T) {
	// The Corollary 2 tradeoff: the centralized strategy uses ~m messages
	// (minus the free self-deliveries at machine 0) but pays more rounds
	// than the round-optimal algorithm at the same k.
	g := gen.Gnp(256, 0.5, 11)
	const k = 64
	p := partition.NewRVP(g, k, 13)
	cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: 17}
	cen, err := RunCentralized(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := Run(p, cfg, AlgorithmOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cen.Count != alg.Count {
		t.Fatalf("strategies disagree: %d vs %d", cen.Count, alg.Count)
	}
	if cen.Stats.Messages > int64(g.M()) {
		t.Errorf("centralized used %d messages for %d edges", cen.Stats.Messages, g.M())
	}
	if cen.Stats.Messages >= alg.Stats.Messages {
		t.Errorf("centralized (%d msgs) should use fewer messages than round-optimal (%d)",
			cen.Stats.Messages, alg.Stats.Messages)
	}
	if cen.Stats.Rounds <= alg.Stats.Rounds {
		t.Errorf("centralized (%d rounds) should be slower than round-optimal (%d)",
			cen.Stats.Rounds, alg.Stats.Rounds)
	}
}

func TestCentralizedRejectsDirected(t *testing.T) {
	g := gen.DirectedCycle(10)
	p := partition.NewRVP(g, 4, 1)
	if _, err := RunCentralized(p, core.Config{K: 4, Bandwidth: 4, Seed: 1}); err == nil {
		t.Error("directed graph accepted")
	}
}
