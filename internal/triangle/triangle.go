// Package triangle implements the paper's distributed triangle
// enumeration (§3.2) and its comparators.
//
// The main algorithm (Theorem 5, Õ(m/k^{5/3} + n/k^{4/3}) rounds) is the
// color-partition scheme: vertices are hashed into c = ⌊k^{1/3}⌋ color
// classes, each of the c³ ordered color triples is assigned to a distinct
// machine, and each machine enumerates exactly the triangles whose
// ID-sorted vertices carry its color sequence — so every triangle is
// output by exactly one machine. Edges reach the triple machines through
// uniformly random edge proxies (randomized proxy computation, §1.3),
// with the heavy-vertex designation rule of §3.2 (degree ≥ 2k·log n)
// deciding which endpoint's home machine ships each edge.
//
// The package also provides:
//
//   - the conversion-style baseline of Klauck et al. [33]
//     (Õ(m·n^{1/3}/k²) = Õ(n^{7/3}/k²) on dense graphs): the congested
//     clique TriPartition of Dolev et al. [21] with n^{1/3} color classes
//     simulated node-by-node through home machines, no proxies;
//   - a congested-clique mode (k = n via partition.NewIdentity), which
//     realises the Θ̃(n^{1/3}) upper bound side of Corollary 1;
//   - open-triad enumeration (§1.2), reusing the same color machinery.
package triangle

import (
	"fmt"
	"sort"

	"kmachine/internal/algo"
	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
	"kmachine/internal/rng"
	"kmachine/internal/routing"
)

// Options configures the color-partition enumerator.
type Options struct {
	// Proxies routes edges through uniformly random proxy machines
	// (default in AlgorithmOptions). Disabling it is the E14 ablation:
	// designated home machines send straight to the triple machines.
	Proxies bool
	// HeavyDesignation enables the degree >= 2k·log n announcement round
	// and the light-endpoint designation rule. When disabled, a hash coin
	// picks the sender for every edge regardless of degree.
	HeavyDesignation bool
	// Collect materialises every machine's triangle list in the result
	// (tests); otherwise only counts and checksums are kept.
	Collect bool
	// Triads switches the enumeration target from triangles to open
	// triads (paper §1.2): three vertices with exactly two edges. The
	// distribution machinery is identical; a triple machine can certify
	// the *absence* of the closing edge because it holds every edge
	// between its color classes.
	Triads bool
	// ColorSeed salts the vertex -> color hash.
	ColorSeed uint64
}

// AlgorithmOptions returns the configuration of the paper's §3.2
// algorithm.
func AlgorithmOptions() Options {
	return Options{Proxies: true, HeavyDesignation: true}
}

// Result reports a distributed enumeration.
type Result struct {
	// Count is the total number of triangles output across machines.
	Count int64
	// Checksum is the XOR of graph.HashTriangle over all outputs; equal
	// counts and checksums against the sequential enumerator verify the
	// output set without materialising it.
	Checksum uint64
	// PerMachine[i] is the number of triangles machine i output (Lemma 9
	// guarantees some machine outputs >= t/k of them).
	PerMachine []int64
	// Triangles is the full output (only when Options.Collect).
	Triangles []graph.Triangle
	// Triads is the full output in triad mode (only when Options.Collect).
	Triads []graph.Triad
	// Colors is c = ⌊k^{1/3}⌋.
	Colors int
	// Stats is the measured communication profile.
	Stats *core.Stats
}

// Colors returns the number of color classes for a k-machine run:
// the largest c with c³ <= k.
func Colors(k int) int {
	c := 1
	for (c+1)*(c+1)*(c+1) <= k {
		c++
	}
	return c
}

// colorOf hashes a vertex into [0, c).
func colorOf(seed uint64, v int32, c int) int {
	return int(rng.Mix(seed^(uint64(uint32(v))+0xd1b54a32d192ed03)) % uint64(c))
}

// tripleOf returns machine m's ordered color triple, or ok=false if m is
// not a triple machine (m >= c³; such machines still act as proxies).
func tripleOf(m core.MachineID, c int) (c1, c2, c3 int, ok bool) {
	if int(m) >= c*c*c {
		return 0, 0, 0, false
	}
	i := int(m)
	return i / (c * c), (i / c) % c, i % c, true
}

// tripleMachine inverts tripleOf.
func tripleMachine(c1, c2, c3, c int) core.MachineID {
	return core.MachineID(c1*c*c + c2*c + c3)
}

// pairTargets returns, for every unordered color pair (a <= b), the
// machines whose triple contains the pair as a sub-multiset. An edge
// with endpoint colors {a, b} must reach exactly these machines.
func pairTargets(c int) map[[2]int]([]core.MachineID) {
	targets := make(map[[2]int][]core.MachineID)
	for c1 := 0; c1 < c; c1++ {
		for c2 := 0; c2 < c; c2++ {
			for c3 := 0; c3 < c; c3++ {
				m := tripleMachine(c1, c2, c3, c)
				triple := []int{c1, c2, c3}
				seen := map[[2]int]bool{}
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						if i == j {
							continue
						}
						a, b := triple[i], triple[j]
						if a > b {
							a, b = b, a
						}
						key := [2]int{a, b}
						if !seen[key] {
							seen[key] = true
							targets[key] = append(targets[key], m)
						}
					}
				}
			}
		}
	}
	return targets
}

const (
	kindHeavyAnnounce = iota
	kindEdgeToProxy
	kindEdgeFinal
)

type tmsg struct {
	Kind uint8
	U, V int32
}

type triMachine struct {
	view partition.View
	opts Options
	k    int
	c    int

	heavy    map[int32]bool
	targets  map[[2]int][]core.MachineID
	edges    [][2]int32 // final edges for enumeration
	out      []graph.Triangle
	triads   []graph.Triad
	count    int64
	checksum uint64
}

func (m *triMachine) Step(ctx *core.StepContext, inbox []core.Envelope[tmsg]) ([]core.Envelope[tmsg], bool) {
	var out []core.Envelope[tmsg]
	for _, e := range inbox {
		switch e.Msg.Kind {
		case kindHeavyAnnounce:
			m.heavy[e.Msg.U] = true
		case kindEdgeToProxy:
			// Forward to every triple machine that needs this edge.
			a := colorOf(m.opts.ColorSeed, e.Msg.U, m.c)
			b := colorOf(m.opts.ColorSeed, e.Msg.V, m.c)
			if a > b {
				a, b = b, a
			}
			for _, target := range m.targets[[2]int{a, b}] {
				out = append(out, core.Envelope[tmsg]{
					To:    target,
					Words: 2,
					Msg:   tmsg{Kind: kindEdgeFinal, U: e.Msg.U, V: e.Msg.V},
				})
			}
		case kindEdgeFinal:
			m.edges = append(m.edges, [2]int32{e.Msg.U, e.Msg.V})
		}
	}

	switch {
	case ctx.Superstep == 0:
		if m.opts.HeavyDesignation {
			threshold := routing.HeavyDegreeThreshold(m.k, m.view.N())
			for _, u := range m.view.Locals() {
				if m.view.Degree(u) >= threshold {
					m.heavy[u] = true
					for j := 0; j < m.k; j++ {
						if core.MachineID(j) == m.view.Self() {
							continue
						}
						out = append(out, core.Envelope[tmsg]{
							To:    core.MachineID(j),
							Words: 1,
							Msg:   tmsg{Kind: kindHeavyAnnounce, U: u},
						})
					}
				}
			}
		}
		return out, false

	case ctx.Superstep == 1:
		// Ship designated edges.
		for _, u := range m.view.Locals() {
			for _, v := range m.view.OutAdj(u) {
				if routing.DesignatedEndpoint(u, v, m.heavy[u], m.heavy[v], m.opts.ColorSeed) != u {
					continue
				}
				if m.opts.Proxies {
					proxy := core.MachineID(ctx.RNG.Intn(m.k))
					out = append(out, core.Envelope[tmsg]{
						To:    proxy,
						Words: 2,
						Msg:   tmsg{Kind: kindEdgeToProxy, U: u, V: v},
					})
				} else {
					a := colorOf(m.opts.ColorSeed, u, m.c)
					b := colorOf(m.opts.ColorSeed, v, m.c)
					if a > b {
						a, b = b, a
					}
					for _, target := range m.targets[[2]int{a, b}] {
						out = append(out, core.Envelope[tmsg]{
							To:    target,
							Words: 2,
							Msg:   tmsg{Kind: kindEdgeFinal, U: u, V: v},
						})
					}
				}
			}
		}
		return out, false

	default:
		// With proxies, superstep 2 emits the forwards computed above and
		// superstep 3 enumerates; without, superstep 2 enumerates.
		finalStep := 2
		if m.opts.Proxies {
			finalStep = 3
		}
		if ctx.Superstep < finalStep {
			return out, len(out) == 0
		}
		m.enumerate()
		return out, true
	}
}

// enumerate lists the triangles (or triads) whose ID-sorted color
// sequence matches this machine's triple, using only the edges it
// received.
func (m *triMachine) enumerate() {
	c1, c2, c3, ok := tripleOf(m.view.Self(), m.c)
	if !ok {
		return
	}
	adj := make(map[int32][]int32)
	for _, e := range m.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := range adj {
		s := adj[v]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		// Dedupe defensively (each edge should arrive once).
		w := 0
		for i, x := range s {
			if i > 0 && x == s[i-1] {
				continue
			}
			s[w] = x
			w++
		}
		adj[v] = s[:w]
	}
	if m.opts.Triads {
		m.enumerateTriads(adj, c1, c2, c3)
		return
	}
	seed := m.opts.ColorSeed
	for u, nbrs := range adj {
		if colorOf(seed, u, m.c) != c1 {
			continue
		}
		for _, v := range nbrs {
			if v <= u || colorOf(seed, v, m.c) != c2 {
				continue
			}
			// w in adj[u] ∩ adj[v], w > v, color c3.
			us, vs := adj[u], adj[v]
			i := sort.Search(len(us), func(i int) bool { return us[i] > v })
			j := sort.Search(len(vs), func(i int) bool { return vs[i] > v })
			for i < len(us) && j < len(vs) {
				switch {
				case us[i] < vs[j]:
					i++
				case us[i] > vs[j]:
					j++
				default:
					w := us[i]
					if colorOf(seed, w, m.c) == c3 {
						m.emit(graph.Triangle{A: u, B: v, C: w})
					}
					i++
					j++
				}
			}
		}
	}
}

func (m *triMachine) emit(t graph.Triangle) {
	m.count++
	m.checksum ^= graph.HashTriangle(t)
	if m.opts.Collect {
		m.out = append(m.out, t)
	}
}

// enumerateTriads lists open triads (centre u; endpoints v < w, edge
// {v,w} absent) whose ID-sorted color sequence matches the triple. The
// machine holds every edge between its color classes, so the absence
// check is sound.
func (m *triMachine) enumerateTriads(adj map[int32][]int32, c1, c2, c3 int) {
	seed := m.opts.ColorSeed
	hasEdge := func(a, b int32) bool {
		s := adj[a]
		i := sort.Search(len(s), func(i int) bool { return s[i] >= b })
		return i < len(s) && s[i] == b
	}
	for u, nbrs := range adj {
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				v, w := nbrs[i], nbrs[j]
				if hasEdge(v, w) {
					continue
				}
				a, b, c := u, v, w
				if a > b {
					a, b = b, a
				}
				if b > c {
					b, c = c, b
				}
				if a > b {
					a, b = b, a
				}
				if colorOf(seed, a, m.c) != c1 || colorOf(seed, b, m.c) != c2 || colorOf(seed, c, m.c) != c3 {
					continue
				}
				tr := graph.Triad{Center: u, Left: v, Right: w}
				m.count++
				m.checksum ^= graph.HashTriad(tr)
				if m.opts.Collect {
					m.triads = append(m.triads, tr)
				}
			}
		}
	}
}

// Run executes the color-partition enumeration over the given partition
// through the generic internal/algo driver. cfg.K must equal p.K.
func Run(p *partition.VertexPartition, cfg core.Config, opts Options) (*Result, error) {
	if p.G.Directed() {
		return nil, fmt.Errorf("triangle: enumeration needs an undirected graph")
	}
	res, stats, err := algo.Run(Descriptor(cfg.K, opts), p, cfg)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}
