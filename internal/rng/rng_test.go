package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("independent streams collided %d times in 1000 draws", same)
	}
}

func TestMixBijectivityOnSample(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix collision: Mix(%d) == Mix(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %g beyond 5 sigma", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(11)
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.3}, {100, 0.15}, {1000, 0.5}, {50000, 0.15}, {1 << 20, 0.25},
	}
	for _, c := range cases {
		const reps = 300
		var sum, sumsq float64
		for i := 0; i < reps; i++ {
			v := float64(r.Binomial(c.n, c.p))
			if v < 0 || v > float64(c.n) {
				t.Fatalf("Binomial(%d,%g) out of range: %v", c.n, c.p, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / reps
		wantMean := float64(c.n) * c.p
		wantSD := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-wantMean) > 6*wantSD/math.Sqrt(reps) {
			t.Errorf("Binomial(%d,%g): mean %g, want ~%g", c.n, c.p, mean, wantMean)
		}
		variance := sumsq/reps - mean*mean
		if variance < wantSD*wantSD/3 || variance > wantSD*wantSD*3 {
			t.Errorf("Binomial(%d,%g): variance %g, want ~%g", c.n, c.p, variance, wantSD*wantSD)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(13)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d, want 0", got)
	}
	if got := r.Binomial(100, 0); got != 0 {
		t.Errorf("Binomial(100, 0) = %d, want 0", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Errorf("Binomial(100, 1) = %d, want 100", got)
	}
	if got := r.Binomial(-5, 0.5); got != 0 {
		t.Errorf("Binomial(-5, .5) = %d, want 0", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const p, reps = 0.2, 50000
	var sum float64
	for i := 0; i < reps; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / reps
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("Geometric(%g) mean %g, want ~%g", p, mean, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(29)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw) % (n + 1)
		s := r.Sample(n, m)
		if len(s) != m {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(31)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	orig := map[int]int{}
	for _, x := range xs {
		orig[x]++
	}
	Shuffle(r, xs)
	got := map[int]int{}
	for _, x := range xs {
		got[x]++
	}
	for k, v := range orig {
		if got[k] != v {
			t.Fatalf("Shuffle changed multiset: key %d count %d want %d", k, got[k], v)
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := New(37)
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	const draws = 200000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := counts[i] / draws
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("alias index %d frequency %g, want %g", i, got, want)
		}
	}
}

func TestAliasSingleton(t *testing.T) {
	a := NewAlias([]float64{3.5})
	r := New(41)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("singleton alias sampled non-zero index")
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0, 1})
	r := New(43)
	for i := 0; i < 10000; i++ {
		v := a.Sample(r)
		if v == 0 || v == 2 {
			t.Fatalf("alias sampled zero-weight index %d", v)
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero-sum": {0, 0},
		"negative": {1, -1},
	} {
		w := weights
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAlias(%v) did not panic", w)
				}
			}()
			NewAlias(w)
		})
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(47)
	const reps = 100000
	var sum, sumsq float64
	for i := 0; i < reps; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / reps
	variance := sumsq / reps
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %g, want ~1", variance)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(1<<20, 0.15)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	r := New(1)
	w := make([]float64, 64)
	for i := range w {
		w[i] = float64(i + 1)
	}
	a := NewAlias(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(r)
	}
}
