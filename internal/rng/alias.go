package rng

// Alias is a Walker alias table for O(1) sampling from a fixed discrete
// distribution. Algorithm 1 of the paper (heavy-vertex path, line 23)
// samples a destination machine for every token of a heavy vertex from
// the distribution (n_{1,u}/d_u, ..., n_{k,u}/d_u); a heavy vertex can
// hold Θ(n log n) tokens, so per-sample cost matters.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given non-negative weights.
// It panics if weights is empty or sums to zero.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias with empty weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewAlias with negative weight")
		}
		sum += w
	}
	if sum == 0 {
		panic("rng: NewAlias with zero total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
		a.alias[i] = i
	}
	return a
}

// N returns the support size of the table.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index from the distribution.
func (a *Alias) Sample(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
