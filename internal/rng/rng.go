// Package rng provides the deterministic randomness substrate used by the
// whole repository.
//
// The k-machine model (paper §1.1) assumes every machine has a private
// source of true random bits. We substitute deterministic SplitMix64
// streams, one per machine, derived from a single run seed. This keeps
// every simulation bit-reproducible (the same seed yields the same
// partition, the same token walks and the same round counts) while
// preserving the statistical properties the algorithms rely on:
// SplitMix64 passes BigCrush and its outputs are independent across
// distinct stream seeds for all practical purposes.
//
// The package also implements the exact discrete samplers the paper's
// algorithms need: Bernoulli, Binomial (Algorithm 1 line 5 terminates
// tokens with probability eps via Binomial(tokens, eps)), geometric
// skips, uniform integers without modulo bias, Fisher-Yates shuffles and
// alias tables for O(1) sampling from fixed discrete distributions
// (Algorithm 1 line 23 samples destination machines proportionally to
// n_{j,u}/d_u).
package rng

import "math"

// RNG is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New to derive independent streams.
type RNG struct {
	state uint64
}

// New returns a generator for the given seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// NewStream derives an independent stream from a run seed and a stream
// index (e.g. one stream per machine). The derivation hashes both values
// so that nearby (seed, stream) pairs yield uncorrelated sequences.
func NewStream(seed uint64, stream uint64) *RNG {
	return &RNG{state: Mix(seed) ^ Mix(stream*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d)}
}

// Mix is the SplitMix64 finalizer: a bijective mixing function with good
// avalanche behaviour, also used as the repository's integer hash.
func Mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// State returns the generator's internal state word. Together with
// SetState it makes an RNG checkpointable: a machine restored from a
// snapshot resumes the exact random sequence it would have drawn, which
// is what makes replayed supersteps bit-identical (core's checkpoint
// subsystem is the consumer).
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state word, resuming the
// sequence a State() call captured.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire's nearly-divisionless method.
	x := r.Uint64()
	hi, lo := mul64(x, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, n)
		}
	}
	return hi
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Binomial samples from Binomial(n, p).
//
// Three regimes:
//   - tiny n: direct Bernoulli trials;
//   - moderate mean: geometric-skip ("first success") counting, exact,
//     with expected time O(n*p + 1);
//   - large mean (n*p*(1-p) > normalCutoff): a clamped normal
//     approximation. The approximation error is far below the noise floor
//     of the Monte-Carlo processes that consume these samples (the paper's
//     Algorithm 1 only needs concentration, not exactness).
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	const normalCutoff = 4096
	np := float64(n) * p
	if np*(1-p) > normalCutoff {
		x := math.Round(np + math.Sqrt(np*(1-p))*r.NormFloat64())
		if x < 0 {
			x = 0
		}
		if x > float64(n) {
			x = float64(n)
		}
		return int64(x)
	}
	if n <= 32 {
		var c int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				c++
			}
		}
		return c
	}
	// Geometric skips: positions of successes are separated by
	// Geometric(p) gaps.
	var count, pos int64
	lq := math.Log1p(-p)
	for {
		g := int64(math.Floor(math.Log(1-r.Float64())/lq)) + 1
		pos += g
		if pos > n {
			return count
		}
		count++
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). It panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	return int64(math.Floor(math.Log(1-r.Float64()) / math.Log1p(-p)))
}

// Perm returns a uniformly random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs uniformly at random in place.
func Shuffle[T any](r *RNG, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Sample returns m distinct integers drawn uniformly from [0, n) in
// selection order (partial Fisher-Yates when m is a large fraction of n,
// rejection hashing otherwise). It panics if m > n.
func (r *RNG) Sample(n, m int) []int {
	if m > n {
		panic("rng: Sample with m > n")
	}
	if m*4 >= n {
		p := r.Perm(n)
		return p[:m]
	}
	seen := make(map[int]struct{}, m)
	out := make([]int, 0, m)
	for len(out) < m {
		v := r.Intn(n)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
