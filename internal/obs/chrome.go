package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// WriteChromeTrace writes spans as a Chrome trace-event JSON array —
// the format chrome://tracing and Perfetto's legacy importer open
// directly. Each span becomes one complete ("X") event; timestamps and
// durations are microseconds relative to the process epoch. Lane
// layout: machines are threads of process 0 (tid = machine ID),
// cluster-level spans (Machine = -1, the in-process engine's exchange)
// live on process 1. Output is deterministic for a given span slice —
// events are emitted in input order with fixed formatting — which is
// what the golden test pins.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	// Name the lanes so the viewer reads "machine 3", not "tid 3".
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":0,"args":{"name":"machines"}},`+"\n")
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":1,"args":{"name":"cluster"}}`)
	seen := map[int32]bool{}
	for _, s := range spans {
		if s.Machine >= 0 && !seen[s.Machine] {
			seen[s.Machine] = true
			fmt.Fprintf(bw, ",\n"+`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"machine %d"}}`,
				s.Machine, s.Machine)
		}
	}
	for _, s := range spans {
		pid, tid := 0, s.Machine
		if s.Machine < 0 {
			pid, tid = 1, 0
		}
		fmt.Fprintf(bw, ",\n"+`{"name":%q,"cat":"superstep","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"superstep":%d`,
			s.Phase.String(), float64(s.Start)/1e3, float64(s.Dur)/1e3, pid, tid, s.Superstep)
		if s.Peer >= 0 {
			fmt.Fprintf(bw, `,"peer":%d`, s.Peer)
		}
		if s.Bytes > 0 {
			fmt.Fprintf(bw, `,"bytes":%d`, s.Bytes)
		}
		bw.WriteString("}}")
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes the spans to path via WriteChromeTrace.
func WriteChromeTraceFile(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
