package obs

import (
	"sort"
	"sync"
)

// DefaultTraceSpans is the ring capacity NewTrace uses when the caller
// passes capacity <= 0: 1<<17 spans ≈ 5 MiB, enough for several
// thousand supersteps of a k=8 socket run before the ring wraps.
const DefaultTraceSpans = 1 << 17

// PeerCounters is one peer's share of the wire traffic observed through
// frame spans: frames and on-wire bytes shipped to (Sent) and received
// from (Recv) that peer, summed over every endpoint recording into the
// trace.
type PeerCounters struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
}

// Counters is a consistent snapshot of a Trace's gauges — the live
// numbers the kmnode debug plane publishes as expvars.
type Counters struct {
	// Total is the number of Record calls; Dropped how many of them
	// fell off the ring (Total - retained).
	Total, Dropped int64
	// CurrentSuperstep is the highest superstep any span carried, -1
	// before the first span: the "where is the run now" gauge.
	CurrentSuperstep int64
	// SuperstepsStarted is CurrentSuperstep+1 — supersteps the engine
	// has entered (the last one may still be in flight).
	SuperstepsStarted int64
	// PhaseCount / PhaseNs total the span count and duration per phase,
	// indexed by Phase.
	PhaseCount, PhaseNs [NumPhases]int64
	// FramesSent/BytesSent total the frame-write spans' frames and
	// on-wire bytes; FramesRecv/BytesRecv the frame-read spans'. They
	// cover the data plane only (control frames are not span-recorded);
	// transport.WireStats remains the physical-layer total.
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	// PerPeer breaks the frame counters down by peer machine ID; nil
	// when the trace was built without a cluster size.
	PerPeer []PeerCounters
}

// Trace is the Recorder used by the CLIs and experiments: a fixed-size
// span ring plus live gauges. All storage is allocated at construction;
// Record copies the span into the ring and bumps plain counters under a
// mutex, so steady-state recording performs zero allocations. When the
// ring is full the oldest spans are overwritten (Dropped counts them) —
// a bounded trace of a long run keeps its tail, which is the part a
// post-mortem wants.
type Trace struct {
	mu sync.Mutex

	spans []Span // ring storage, len = capacity
	total int64  // Record calls ever; ring cursor = total % len(spans)

	cur                    int64 // highest superstep seen; -1 before first span
	phaseCount             [NumPhases]int64
	phaseNs                [NumPhases]int64
	perPeer                []PeerCounters // nil when k unknown
	framesSent, framesRecv int64
	bytesSent, bytesRecv   int64
}

// NewTrace returns a Trace with room for capacity spans (<= 0 selects
// DefaultTraceSpans). k, when positive, sizes the per-peer wire
// counters; pass 0 if the cluster size is unknown or per-peer
// breakdowns are not needed.
func NewTrace(capacity, k int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	t := &Trace{spans: make([]Span, capacity), cur: -1}
	if k > 0 {
		t.perPeer = make([]PeerCounters, k)
	}
	return t
}

// Record implements Recorder. It is safe for concurrent use and
// allocation-free.
func (t *Trace) Record(s Span) {
	t.mu.Lock()
	t.spans[t.total%int64(len(t.spans))] = s
	t.total++
	if int64(s.Superstep) > t.cur {
		t.cur = int64(s.Superstep)
	}
	if int(s.Phase) < NumPhases {
		t.phaseCount[s.Phase]++
		t.phaseNs[s.Phase] += s.Dur
	}
	switch s.Phase {
	case PhaseFrameWrite:
		t.framesSent++
		t.bytesSent += int64(s.Bytes)
		if p := int(s.Peer); p >= 0 && p < len(t.perPeer) {
			t.perPeer[p].FramesSent++
			t.perPeer[p].BytesSent += int64(s.Bytes)
		}
	case PhaseFrameRead:
		t.framesRecv++
		t.bytesRecv += int64(s.Bytes)
		if p := int(s.Peer); p >= 0 && p < len(t.perPeer) {
			t.perPeer[p].FramesRecv++
			t.perPeer[p].BytesRecv += int64(s.Bytes)
		}
	}
	t.mu.Unlock()
}

// Spans returns a chronologically sorted copy of the retained spans.
// Safe to call while recording continues (the debug plane does), though
// a concurrent snapshot naturally sees a point-in-time prefix.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	n := t.total
	if n > int64(len(t.spans)) {
		n = int64(len(t.spans))
	}
	out := make([]Span, n)
	if t.total <= int64(len(t.spans)) {
		copy(out, t.spans[:n])
	} else {
		// Ring has wrapped: oldest retained span sits at the cursor.
		at := t.total % int64(len(t.spans))
		copy(out, t.spans[at:])
		copy(out[int64(len(t.spans))-at:], t.spans[:at])
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Reset returns the trace to its just-constructed state — empty ring,
// zeroed gauges, per-peer lanes retained. The resident daemon calls it
// between jobs so the debug plane's kmachine.* expvars describe the
// live job instead of accumulating across the process lifetime (the
// single-run CLIs never need it). Callers must not Reset while a job
// is recording; between jobs the recorder is quiescent by construction.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.total = 0
	t.cur = -1
	t.phaseCount = [NumPhases]int64{}
	t.phaseNs = [NumPhases]int64{}
	for i := range t.perPeer {
		t.perPeer[i] = PeerCounters{}
	}
	t.framesSent, t.framesRecv = 0, 0
	t.bytesSent, t.bytesRecv = 0, 0
	t.mu.Unlock()
}

// Counters returns a consistent snapshot of the live gauges.
func (t *Trace) Counters() Counters {
	t.mu.Lock()
	c := Counters{
		Total:            t.total,
		CurrentSuperstep: t.cur,
		PhaseCount:       t.phaseCount,
		PhaseNs:          t.phaseNs,
		FramesSent:       t.framesSent,
		FramesRecv:       t.framesRecv,
		BytesSent:        t.bytesSent,
		BytesRecv:        t.bytesRecv,
	}
	if t.total > int64(len(t.spans)) {
		c.Dropped = t.total - int64(len(t.spans))
	}
	c.SuperstepsStarted = t.cur + 1
	if t.perPeer != nil {
		c.PerPeer = append([]PeerCounters(nil), t.perPeer...)
	}
	t.mu.Unlock()
	return c
}
