package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteChromeTraceGolden pins the exact bytes the writer emits for
// a fixed span set — the trace-event format is consumed by external
// viewers, so the output must stay deterministic and stable.
func TestWriteChromeTraceGolden(t *testing.T) {
	spans := []Span{
		{Start: 1000, Dur: 5500, Machine: 0, Peer: -1, Superstep: 0, Phase: PhaseCompute},
		{Start: 6500, Dur: 500, Machine: 0, Peer: -1, Superstep: 0, Phase: PhaseBarrier},
		{Start: 7000, Dur: 3000, Machine: -1, Peer: -1, Superstep: 0, Phase: PhaseExchange},
		{Start: 7100, Dur: 900, Machine: 0, Peer: 1, Superstep: 0, Phase: PhaseFrameWrite, Bytes: 128},
	}
	const want = `[
{"name":"process_name","ph":"M","pid":0,"args":{"name":"machines"}},
{"name":"process_name","ph":"M","pid":1,"args":{"name":"cluster"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"machine 0"}},
{"name":"compute","cat":"superstep","ph":"X","ts":1.000,"dur":5.500,"pid":0,"tid":0,"args":{"superstep":0}},
{"name":"barrier","cat":"superstep","ph":"X","ts":6.500,"dur":0.500,"pid":0,"tid":0,"args":{"superstep":0}},
{"name":"exchange","cat":"superstep","ph":"X","ts":7.000,"dur":3.000,"pid":1,"tid":0,"args":{"superstep":0}},
{"name":"frame-write","cat":"superstep","ph":"X","ts":7.100,"dur":0.900,"pid":0,"tid":0,"args":{"superstep":0,"peer":1,"bytes":128}}
]
`
	var b strings.Builder
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if b.String() != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestWriteChromeTraceParses checks the output is a valid JSON array of
// event objects for a larger, machine-generated span set.
func TestWriteChromeTraceParses(t *testing.T) {
	var spans []Span
	for step := int32(0); step < 5; step++ {
		for m := int32(0); m < 4; m++ {
			base := int64(step)*1000 + int64(m)*10
			spans = append(spans,
				Span{Start: base, Dur: 400, Machine: m, Peer: -1, Superstep: step, Phase: PhaseCompute},
				Span{Start: base + 400, Dur: 100, Machine: m, Peer: -1, Superstep: step, Phase: PhaseBarrier},
				Span{Start: base + 500, Dur: 50, Machine: m, Peer: (m + 1) % 4, Superstep: step, Phase: PhaseFrameRead, Bytes: 64},
			)
		}
		spans = append(spans, Span{Start: int64(step)*1000 + 500, Dur: 300, Machine: -1, Peer: -1, Superstep: step, Phase: PhaseExchange})
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 process metadata + 4 thread metadata + the spans themselves.
	if want := 2 + 4 + len(spans); len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
	for i, ev := range events {
		if ev["name"] == "" || ev["ph"] == "" {
			t.Fatalf("event %d missing name/ph: %v", i, ev)
		}
	}
}
