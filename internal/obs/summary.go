package obs

import "sort"

// PhaseAgg aggregates the spans of one phase: how many there were and
// the p50/max/total of their durations.
type PhaseAgg struct {
	Count   int
	P50Ns   int64
	MaxNs   int64
	TotalNs int64
}

func aggregate(durs []int64) PhaseAgg {
	a := PhaseAgg{Count: len(durs)}
	if len(durs) == 0 {
		return a
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	a.P50Ns = durs[len(durs)/2]
	a.MaxNs = durs[len(durs)-1]
	for _, d := range durs {
		a.TotalNs += d
	}
	return a
}

// SuperstepSummary condenses one superstep: compute and barrier
// aggregated across machines, exchange across its span(s) (one
// cluster-level span on the in-process engine, one per machine on the
// node runtime), and the superstep's wall-clock extent.
type SuperstepSummary struct {
	Superstep                  int
	Compute, Barrier, Exchange PhaseAgg
	// WallNs spans the earliest start to the latest end of the
	// superstep's engine-phase spans.
	WallNs int64
}

// PerSuperstep groups engine-phase spans (compute/barrier/exchange —
// frame spans are the transport's sub-detail and excluded) by superstep
// and summarises each. Supersteps are returned in ascending order.
func PerSuperstep(spans []Span) []SuperstepSummary {
	byStep := map[int32][]Span{}
	for _, s := range spans {
		if s.Phase > PhaseExchange {
			continue
		}
		byStep[s.Superstep] = append(byStep[s.Superstep], s)
	}
	steps := make([]int32, 0, len(byStep))
	for st := range byStep {
		steps = append(steps, st)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	out := make([]SuperstepSummary, 0, len(steps))
	for _, st := range steps {
		ss := SuperstepSummary{Superstep: int(st)}
		var durs [3][]int64
		first, last := int64(1<<62), int64(0)
		for _, s := range byStep[st] {
			durs[s.Phase] = append(durs[s.Phase], s.Dur)
			if s.Start < first {
				first = s.Start
			}
			if s.End() > last {
				last = s.End()
			}
		}
		ss.Compute = aggregate(durs[PhaseCompute])
		ss.Barrier = aggregate(durs[PhaseBarrier])
		ss.Exchange = aggregate(durs[PhaseExchange])
		ss.WallNs = last - first
		out = append(out, ss)
	}
	return out
}

// RunSummary condenses a whole run's trace.
type RunSummary struct {
	// Supersteps is the number of distinct supersteps with spans.
	Supersteps int
	// WallNs spans the earliest start to the latest end over all
	// engine-phase spans.
	WallNs int64
	// Compute/Barrier/Exchange aggregate every span of that phase
	// across all machines and supersteps.
	Compute, Barrier, Exchange PhaseAgg
	// CoveredNs is the length of the union of all engine-phase span
	// intervals, and Coverage its share of WallNs — "how much of the
	// measured wall-clock do the recorded phases explain". The
	// acceptance bar for the instrumentation is Coverage >= 0.95 on a
	// socket run.
	CoveredNs int64
	Coverage  float64
}

// Summarize computes a RunSummary over the trace's engine-phase spans
// (compute/barrier/exchange; frame spans nest inside exchange and are
// excluded so they don't double-count).
func Summarize(spans []Span) RunSummary {
	var r RunSummary
	var durs [3][]int64
	type iv struct{ lo, hi int64 }
	var ivs []iv
	steps := map[int32]bool{}
	first, last := int64(1<<62), int64(0)
	for _, s := range spans {
		if s.Phase > PhaseExchange {
			continue
		}
		durs[s.Phase] = append(durs[s.Phase], s.Dur)
		ivs = append(ivs, iv{s.Start, s.End()})
		steps[s.Superstep] = true
		if s.Start < first {
			first = s.Start
		}
		if s.End() > last {
			last = s.End()
		}
	}
	if len(ivs) == 0 {
		return r
	}
	r.Supersteps = len(steps)
	r.WallNs = last - first
	r.Compute = aggregate(durs[PhaseCompute])
	r.Barrier = aggregate(durs[PhaseBarrier])
	r.Exchange = aggregate(durs[PhaseExchange])
	// Interval-union sweep for coverage: sort by start, merge overlaps.
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	curLo, curHi := ivs[0].lo, ivs[0].hi
	for _, v := range ivs[1:] {
		if v.lo > curHi {
			r.CoveredNs += curHi - curLo
			curLo, curHi = v.lo, v.hi
			continue
		}
		if v.hi > curHi {
			curHi = v.hi
		}
	}
	r.CoveredNs += curHi - curLo
	if r.WallNs > 0 {
		r.Coverage = float64(r.CoveredNs) / float64(r.WallNs)
	}
	return r
}

// unionInto merges the intervals in ivs (sorted in place by lo) and
// returns the merged list appended to out.
func unionInto(ivs, out [][2]int64) [][2]int64 {
	if len(ivs) == 0 {
		return out
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v[0] > cur[1] {
			out = append(out, cur)
			cur = v
			continue
		}
		if v[1] > cur[1] {
			cur[1] = v[1]
		}
	}
	return append(out, cur)
}

// Overlap measures how much of the run's compute time the wire was
// simultaneously active: |union(compute spans) ∩ union(frame-write
// spans)| / |union(compute spans)|, over the whole trace. It is the
// gauge behind the streaming-superstep experiments — on the lockstep
// schedule every frame is written strictly after the superstep's last
// Step returns, so the ratio is ~0; a streaming run's eager batches
// push it above zero, and the ratio quantifies how much of the exchange
// the overlap actually hid.
//
// Frame WRITES, not reads, are the wire side of the intersection
// deliberately: a parked reader's span covers its whole wait, so under
// eager reader dispatch read spans blanket the compute window even when
// no byte moves, and counting them would report perfect overlap for
// runs that ship everything at the barrier. Returns 0 for a trace with
// no compute or no frame-write spans.
func Overlap(spans []Span) float64 {
	var compute, write [][2]int64
	for _, s := range spans {
		switch s.Phase {
		case PhaseCompute:
			compute = append(compute, [2]int64{s.Start, s.End()})
		case PhaseFrameWrite:
			write = append(write, [2]int64{s.Start, s.End()})
		}
	}
	cu := unionInto(compute, nil)
	wu := unionInto(write, nil)
	var computeNs, overlapNs int64
	for _, c := range cu {
		computeNs += c[1] - c[0]
	}
	if computeNs == 0 {
		return 0
	}
	// Both unions are sorted and disjoint: a linear two-pointer sweep
	// accumulates the intersection.
	i, j := 0, 0
	for i < len(cu) && j < len(wu) {
		lo := max(cu[i][0], wu[j][0])
		hi := min(cu[i][1], wu[j][1])
		if hi > lo {
			overlapNs += hi - lo
		}
		if cu[i][1] < wu[j][1] {
			i++
		} else {
			j++
		}
	}
	return float64(overlapNs) / float64(computeNs)
}
