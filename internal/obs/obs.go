// Package obs is the observability layer of the k-machine runtime: a
// zero-steady-state-allocation span recorder threaded through the
// superstep engine (internal/core), the standalone node runtime
// (internal/transport/node), and the socket transport's pipeline
// workers (internal/transport/tcp), plus the exporters that turn the
// recorded spans into something a human can read — a Chrome trace-event
// JSON timeline (chrome://tracing, Perfetto) and per-superstep phase
// summaries.
//
// The paper's model (§1.1) charges rounds and words; this package
// measures the quantity the model deliberately abstracts away:
// wall-clock time, broken down by phase. Every superstep decomposes
// into compute (machine Step calls), barrier (waiting for the slowest
// machine), and exchange (the transport moving the batched envelopes),
// and on the socket substrate the exchange further decomposes into
// per-peer frame writes, reads (mostly stall: waiting for the peer's
// data), and decodes. Comparing the measured phase shares against the
// model's round counts is what turns "the microbench is 1.4x faster
// but end-to-end only 1.05x" from a mystery into a timeline.
//
// Recording discipline. Recorders are handed to the runtime as a
// Config knob (core.Config.Recorder, node.Config.Recorder,
// kmachine.RunConfig.Recorder); nil means no instrumentation and the
// engine's no-op fast path — the alloc fences in core and tcp pin that
// path at zero allocations per superstep. A non-nil recorder must be
// safe for concurrent Record calls (engine workers, pipeline writers
// and readers all record from their own goroutines) and must not
// retain the Span beyond the call. The Trace implementation in this
// package preallocates a fixed ring at construction, so steady-state
// recording allocates nothing either.
package obs

import "time"

// Phase labels one kind of recorded span.
type Phase uint8

const (
	// PhaseCompute is one machine's Step call: the model's "free" local
	// computation, measured.
	PhaseCompute Phase = iota
	// PhaseBarrier is synchronisation wait. In the in-process engine it
	// is the time between a machine finishing its Step and the
	// superstep barrier releasing (i.e. waiting for the slowest
	// machine); in the node runtime it is the coordinator report/verdict
	// control round that plays the same role.
	PhaseBarrier
	// PhaseExchange is the transport moving one superstep's batched
	// envelopes. The in-process engine records it once per superstep as
	// a cluster-level span (Machine = -1); the node runtime records it
	// per machine, since each node performs its own exchange.
	PhaseExchange
	// PhaseFrameWrite is one tcp writer worker encoding and shipping
	// one peer's batch frame (Peer names the destination, Bytes the
	// on-wire frame size).
	PhaseFrameWrite
	// PhaseFrameRead is one tcp reader worker blocking for its peer's
	// batch frame. The duration is dominated by stall — waiting for the
	// peer to produce and ship its data — which is exactly why it is
	// recorded: per-peer read stalls are where a slow machine shows up
	// on everyone else's timeline.
	PhaseFrameRead
	// PhaseFrameDecode is the decode of a received batch frame into
	// envelope scratch — the CPU part of the read path, split from the
	// stall so the two are distinguishable.
	PhaseFrameDecode

	// NumPhases is the number of defined phases (for table sizing).
	NumPhases = 6
)

// String returns the phase's stable lowercase name (used in trace
// exports, summaries, and expvar keys — do not change casually).
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseBarrier:
		return "barrier"
	case PhaseExchange:
		return "exchange"
	case PhaseFrameWrite:
		return "frame-write"
	case PhaseFrameRead:
		return "frame-read"
	case PhaseFrameDecode:
		return "frame-decode"
	}
	return "unknown"
}

// Span is one recorded phase interval. It is a plain value — recording
// one allocates nothing, and recorders must not retain it beyond the
// Record call (copy into owned storage, as Trace's ring does).
type Span struct {
	// Start is the span's start timestamp in nanoseconds since the
	// process epoch (Now's zero); Dur its duration in nanoseconds.
	// Timestamps are monotonic, so spans from different goroutines of
	// one process order correctly.
	Start, Dur int64
	// Machine is the executing machine's ID; -1 means cluster-level
	// (the in-process engine's exchange span).
	Machine int32
	// Peer is the remote machine for per-peer frame phases; -1
	// otherwise.
	Peer int32
	// Superstep is the zero-based superstep the span belongs to.
	Superstep int32
	// Phase labels what the interval covers.
	Phase Phase
	// Bytes is the on-wire frame size for frame phases; 0 otherwise.
	Bytes int32
}

// End returns Start + Dur.
func (s Span) End() int64 { return s.Start + s.Dur }

// Recorder receives phase spans from the runtime. Implementations must
// be safe for concurrent Record calls — engine workers and transport
// pipeline workers record from their own goroutines — and should not
// allocate on the record path: the engine's zero-alloc discipline
// extends to instrumented runs (see the alloc fences in core and tcp).
type Recorder interface {
	Record(s Span)
}

// epoch anchors Now: all spans of a process share one monotonic zero.
var epoch = time.Now()

// Now returns the current monotonic timestamp in nanoseconds since the
// process epoch — the clock every recorded Span uses. It allocates
// nothing.
func Now() int64 { return int64(time.Since(epoch)) }
