package obs

import (
	"sync"
	"testing"
)

func TestTraceRingRetainsTail(t *testing.T) {
	tr := NewTrace(4, 0)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Start: int64(i), Dur: 1, Machine: 0, Peer: -1, Superstep: int32(i), Phase: PhaseCompute})
	}
	c := tr.Counters()
	if c.Total != 10 || c.Dropped != 6 {
		t.Fatalf("counters = total %d dropped %d, want 10/6", c.Total, c.Dropped)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := int64(6 + i); s.Start != want {
			t.Fatalf("span %d start = %d, want %d (tail of the stream, in order)", i, s.Start, want)
		}
	}
	if c.CurrentSuperstep != 9 || c.SuperstepsStarted != 10 {
		t.Fatalf("superstep gauge = %d/%d, want 9/10", c.CurrentSuperstep, c.SuperstepsStarted)
	}
}

func TestTraceGauges(t *testing.T) {
	tr := NewTrace(64, 3)
	tr.Record(Span{Start: 0, Dur: 5, Machine: 0, Peer: -1, Superstep: 0, Phase: PhaseCompute})
	tr.Record(Span{Start: 5, Dur: 2, Machine: 0, Peer: -1, Superstep: 0, Phase: PhaseBarrier})
	tr.Record(Span{Start: 7, Dur: 3, Machine: -1, Peer: -1, Superstep: 0, Phase: PhaseExchange})
	tr.Record(Span{Start: 7, Dur: 1, Machine: 0, Peer: 1, Superstep: 0, Phase: PhaseFrameWrite, Bytes: 100})
	tr.Record(Span{Start: 7, Dur: 2, Machine: 0, Peer: 2, Superstep: 0, Phase: PhaseFrameRead, Bytes: 40})
	c := tr.Counters()
	if c.PhaseCount[PhaseCompute] != 1 || c.PhaseNs[PhaseCompute] != 5 {
		t.Fatalf("compute gauge = %d/%dns", c.PhaseCount[PhaseCompute], c.PhaseNs[PhaseCompute])
	}
	if c.FramesSent != 1 || c.BytesSent != 100 || c.FramesRecv != 1 || c.BytesRecv != 40 {
		t.Fatalf("wire gauges = sent %d/%dB recv %d/%dB", c.FramesSent, c.BytesSent, c.FramesRecv, c.BytesRecv)
	}
	if len(c.PerPeer) != 3 {
		t.Fatalf("per-peer lanes = %d, want 3", len(c.PerPeer))
	}
	if c.PerPeer[1].FramesSent != 1 || c.PerPeer[1].BytesSent != 100 {
		t.Fatalf("peer 1 counters = %+v", c.PerPeer[1])
	}
	if c.PerPeer[2].FramesRecv != 1 || c.PerPeer[2].BytesRecv != 40 {
		t.Fatalf("peer 2 counters = %+v", c.PerPeer[2])
	}
}

// TestTraceReset: between jobs the resident daemon resets the shared
// trace; afterwards the gauges and ring must be indistinguishable from
// a fresh trace, with capacity and per-peer lanes retained.
func TestTraceReset(t *testing.T) {
	tr := NewTrace(4, 3)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Start: int64(i), Dur: 1, Machine: 0, Peer: 1, Superstep: int32(i), Phase: PhaseFrameWrite, Bytes: 10})
	}
	tr.Reset()
	c := tr.Counters()
	if c.Total != 0 || c.Dropped != 0 || c.CurrentSuperstep != -1 || c.SuperstepsStarted != 0 {
		t.Fatalf("post-reset counters %+v, want zeroed", c)
	}
	if c.FramesSent != 0 || c.BytesSent != 0 || c.PerPeer[1].FramesSent != 0 {
		t.Fatalf("post-reset wire gauges %+v, want zeroed", c)
	}
	if len(c.PerPeer) != 3 {
		t.Fatalf("reset dropped the per-peer lanes: %d, want 3", len(c.PerPeer))
	}
	if spans := tr.Spans(); len(spans) != 0 {
		t.Fatalf("post-reset ring retains %d spans", len(spans))
	}
	// The next job records into the clean trace as if freshly built.
	tr.Record(Span{Start: 100, Dur: 2, Machine: 0, Peer: -1, Superstep: 0, Phase: PhaseCompute})
	c = tr.Counters()
	if c.Total != 1 || c.CurrentSuperstep != 0 || c.PhaseCount[PhaseCompute] != 1 {
		t.Fatalf("post-reset recording broken: %+v", c)
	}
}

// TestTraceConcurrentRecord hammers one Trace from many goroutines —
// the recorder contract says Record must be concurrency-safe, and this
// is the test the race detector watches.
func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace(128, 4)
	var wg sync.WaitGroup
	const writers, each = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Record(Span{Start: Now(), Dur: 1, Machine: int32(w % 4), Peer: int32(i % 4), Superstep: int32(i), Phase: Phase(i % NumPhases)})
				if i%100 == 0 {
					tr.Spans()
					tr.Counters()
				}
			}
		}(w)
	}
	wg.Wait()
	if c := tr.Counters(); c.Total != writers*each {
		t.Fatalf("total = %d, want %d", c.Total, writers*each)
	}
}

func TestTraceRecordDoesNotAllocate(t *testing.T) {
	tr := NewTrace(1024, 4)
	s := Span{Start: 1, Dur: 2, Machine: 1, Peer: 2, Superstep: 3, Phase: PhaseFrameWrite, Bytes: 64}
	allocs := testing.AllocsPerRun(1000, func() { tr.Record(s) })
	if allocs != 0 {
		t.Fatalf("Trace.Record allocates %.1f per call, want 0", allocs)
	}
}

func TestPerSuperstepAndSummarize(t *testing.T) {
	// Two supersteps, two machines, hand-built timeline (ns):
	// step 0: m0 compute [0,10), m1 compute [0,14), barriers to 14,
	//         cluster exchange [14,20).
	// step 1: computes [20,26) and [20,30), barriers to 30, exchange
	//         [30,34), then a gap [34,40) covered by nothing.
	spans := []Span{
		{Start: 0, Dur: 10, Machine: 0, Peer: -1, Superstep: 0, Phase: PhaseCompute},
		{Start: 0, Dur: 14, Machine: 1, Peer: -1, Superstep: 0, Phase: PhaseCompute},
		{Start: 10, Dur: 4, Machine: 0, Peer: -1, Superstep: 0, Phase: PhaseBarrier},
		{Start: 14, Dur: 0, Machine: 1, Peer: -1, Superstep: 0, Phase: PhaseBarrier},
		{Start: 14, Dur: 6, Machine: -1, Peer: -1, Superstep: 0, Phase: PhaseExchange},
		{Start: 14, Dur: 2, Machine: 0, Peer: 1, Superstep: 0, Phase: PhaseFrameWrite, Bytes: 10},
		{Start: 20, Dur: 6, Machine: 0, Peer: -1, Superstep: 1, Phase: PhaseCompute},
		{Start: 20, Dur: 10, Machine: 1, Peer: -1, Superstep: 1, Phase: PhaseCompute},
		{Start: 26, Dur: 4, Machine: 0, Peer: -1, Superstep: 1, Phase: PhaseBarrier},
		{Start: 30, Dur: 0, Machine: 1, Peer: -1, Superstep: 1, Phase: PhaseBarrier},
		{Start: 30, Dur: 4, Machine: -1, Peer: -1, Superstep: 1, Phase: PhaseExchange},
		{Start: 36, Dur: 4, Machine: -1, Peer: -1, Superstep: 1, Phase: PhaseExchange},
	}
	per := PerSuperstep(spans)
	if len(per) != 2 {
		t.Fatalf("got %d supersteps, want 2", len(per))
	}
	s0 := per[0]
	if s0.Compute.Count != 2 || s0.Compute.MaxNs != 14 || s0.Compute.P50Ns != 14 {
		t.Fatalf("step 0 compute agg = %+v", s0.Compute)
	}
	if s0.Exchange.TotalNs != 6 || s0.WallNs != 20 {
		t.Fatalf("step 0 exchange %dns wall %dns, want 6/20", s0.Exchange.TotalNs, s0.WallNs)
	}
	sum := Summarize(spans)
	if sum.Supersteps != 2 {
		t.Fatalf("supersteps = %d, want 2", sum.Supersteps)
	}
	if sum.WallNs != 40 {
		t.Fatalf("wall = %dns, want 40", sum.WallNs)
	}
	// Union covers [0,34) and [36,40): 38 of 40ns.
	if sum.CoveredNs != 38 {
		t.Fatalf("covered = %dns, want 38", sum.CoveredNs)
	}
	if sum.Coverage < 0.94 || sum.Coverage > 0.96 {
		t.Fatalf("coverage = %.3f, want 0.95", sum.Coverage)
	}
	if sum.Compute.MaxNs != 14 || sum.Compute.Count != 4 {
		t.Fatalf("run compute agg = %+v", sum.Compute)
	}
	if sum.Exchange.TotalNs != 14 {
		t.Fatalf("run exchange total = %dns, want 14", sum.Exchange.TotalNs)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Supersteps != 0 || s.Coverage != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if per := PerSuperstep(nil); len(per) != 0 {
		t.Fatalf("empty per-superstep = %+v", per)
	}
}

func TestPhaseString(t *testing.T) {
	want := []string{"compute", "barrier", "exchange", "frame-write", "frame-read", "frame-decode"}
	for p := 0; p < NumPhases; p++ {
		if got := Phase(p).String(); got != want[p] {
			t.Fatalf("Phase(%d) = %q, want %q", p, got, want[p])
		}
	}
	if got := Phase(99).String(); got != "unknown" {
		t.Fatalf("Phase(99) = %q", got)
	}
}
