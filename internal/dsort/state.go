package dsort

import (
	"fmt"

	twire "kmachine/internal/transport/wire"
)

func appendU64s(dst []byte, xs []uint64) []byte {
	dst = twire.AppendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = twire.AppendUvarint(dst, x)
	}
	return dst
}

func readU64s(c *twire.Cursor, into []uint64) []uint64 {
	n := int(c.Uvarint())
	into = into[:0]
	for i := 0; i < n && c.Err == nil; i++ {
		into = append(into, c.Uvarint())
	}
	return into
}

// SnapshotState serialises the machine's dynamic sort state — every
// phase-accumulated key set plus the rebalance cursor — appending to
// dst. The input keys are static (assigned at construction, never
// mutated) and are not serialised.
func (m *sortMachine) SnapshotState(dst []byte) ([]byte, error) {
	dst = appendU64s(dst, m.samples)
	dst = appendU64s(dst, m.splitters)
	dst = appendU64s(dst, m.bucket)
	dst = appendU64s(dst, m.final)
	dst = twire.AppendUvarint(dst, uint64(len(m.sizes)))
	for _, s := range m.sizes {
		dst = twire.AppendVarint(dst, s)
	}
	dst = twire.AppendVarint(dst, m.rebal)
	dst = twire.AppendUvarint(dst, uint64(m.sizesIn))
	return dst, nil
}

// RestoreState overwrites the machine's dynamic state from a
// SnapshotState blob taken on a machine built from the same inputs,
// reusing slice capacity where possible and resetting delivery scratch.
func (m *sortMachine) RestoreState(src []byte) error {
	c := twire.Cursor{Src: src}
	m.samples = readU64s(&c, m.samples)
	m.splitters = readU64s(&c, m.splitters)
	m.bucket = readU64s(&c, m.bucket)
	m.final = readU64s(&c, m.final)
	nSizes := int(c.Uvarint())
	m.sizes = m.sizes[:0]
	for i := 0; i < nSizes && c.Err == nil; i++ {
		m.sizes = append(m.sizes, c.Varint())
	}
	rebal := c.Varint()
	sizesIn := c.Uvarint()
	if err := c.Finish(); err != nil {
		return fmt.Errorf("dsort: restore: %w", err)
	}
	m.rebal = rebal
	m.sizesIn = int(sizesIn)
	m.delivBuf = m.delivBuf[:0]
	m.outBuf = m.outBuf[:0]
	for j := range m.buckets {
		m.buckets[j] = m.buckets[j][:0]
	}
	return nil
}
