package dsort

import (
	"fmt"

	"kmachine/internal/algo"
	"kmachine/internal/partition"
)

// Local is one machine's share of a sort output: its final sorted block
// of order statistics plus its rebalance traffic.
type Local struct {
	// Block is this machine's sorted block.
	Block []uint64
	// Rebalanced counts keys this machine forwarded in the
	// exact-rebalance phase.
	Rebalanced int64
}

// Output implements algo.Machine.
func (m *sortMachine) Output() Local {
	return Local{Block: m.final, Rebalanced: m.rebal}
}

// Descriptor returns the algo-layer descriptor of a distributed sort of
// the given input. The partition.View only supplies the machine
// identity — a sort input is a key multiset, not a graph — so any
// partition with K = len(in.Keys) drives it; the registry uses an
// edgeless placeholder graph.
func Descriptor(in *Input, samplesPerMachine int) (algo.Algorithm[Wire, Local, *Result], error) {
	k := len(in.Keys)
	n, samplesPerMachine, err := resolveInput(in, samplesPerMachine)
	if err != nil {
		return algo.Algorithm[Wire, Local, *Result]{}, err
	}
	return algo.Algorithm[Wire, Local, *Result]{
		Name:  "dsort",
		Codec: WireCodec(),
		NewMachine: func(view partition.View) (algo.Machine[Wire, Local], error) {
			if view.K() != k {
				return nil, fmt.Errorf("dsort: cluster k=%d but input has %d machines", view.K(), k)
			}
			return newSortMachine(view.Self(), in, n, k, samplesPerMachine), nil
		},
		Merge: mergeLocals,
	}, nil
}

func init() {
	algo.Register(algo.Spec[Wire, Local, *Result]{
		Name: "dsort",
		Doc:  "distributed sample sort of n random keys (§1.3, Õ(n/k²) matching the GLBT)",
		Build: func(prob algo.Problem) (algo.Algorithm[Wire, Local, *Result], partition.Input, error) {
			// The sort input is prob.N keys dealt uniformly from the
			// seed; the partition exists only to satisfy the driver's
			// view plumbing, so it covers an edgeless graph.
			in := RandomInput(prob.N, prob.K, prob.Seed, UniformKeys)
			a, err := Descriptor(in, 0)
			if err != nil {
				return a, nil, err
			}
			return a, algo.EdgelessInput(prob), nil
		},
		Hash: func(r *Result) uint64 {
			h := algo.NewHash64()
			for _, blk := range r.Blocks {
				h.Add(uint64(len(blk)))
				for _, key := range blk {
					h.Add(key)
				}
			}
			h.Add(uint64(r.RebalancedKeys))
			return h.Sum()
		},
		Summarize: func(r *Result, top int) []string {
			total, minB, maxB := 0, -1, 0
			for _, blk := range r.Blocks {
				total += len(blk)
				if minB < 0 || len(blk) < minB {
					minB = len(blk)
				}
				if len(blk) > maxB {
					maxB = len(blk)
				}
			}
			return []string{fmt.Sprintf("dsort: %d keys into %d exact blocks (sizes %d..%d), %d keys rebalanced",
				total, len(r.Blocks), minB, maxB, r.RebalancedKeys)}
		},
		SummarizeLocal: func(l Local, top int) []string {
			line := fmt.Sprintf("dsort: this machine holds %d order statistics", len(l.Block))
			if len(l.Block) > 0 {
				line += fmt.Sprintf(" [%d .. %d]", l.Block[0], l.Block[len(l.Block)-1])
			}
			return []string{line}
		},
	})
}
