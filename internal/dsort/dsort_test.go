package dsort

import (
	"sort"
	"testing"

	"kmachine/internal/core"
)

// verifyExactBlocks checks the problem's output condition: machine i
// holds exactly the i-th block of n/k order statistics, sorted.
func verifyExactBlocks(t *testing.T, in *Input, res *Result) {
	t.Helper()
	var all []uint64
	for _, ks := range in.Keys {
		all = append(all, ks...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	k := len(in.Keys)
	bounds := blockBounds(len(all), k)
	for i := 0; i < k; i++ {
		want := all[bounds[i]:bounds[i+1]]
		got := res.Blocks[i]
		if len(got) != len(want) {
			t.Fatalf("machine %d holds %d keys, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("machine %d key %d = %d, want order statistic %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestSortUniform(t *testing.T) {
	const n, k = 5000, 8
	in := RandomInput(n, k, 3, UniformKeys)
	res, err := Run(in, core.Config{K: k, Bandwidth: 8, Seed: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	verifyExactBlocks(t, in, res)
}

func TestSortSkewed(t *testing.T) {
	// 90% of keys in a tiny range: splitters must adapt, and the exact
	// rebalance must still land every key in its block.
	const n, k = 4000, 8
	in := RandomInput(n, k, 7, SkewedKeys)
	res, err := Run(in, core.Config{K: k, Bandwidth: 8, Seed: 11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	verifyExactBlocks(t, in, res)
}

func TestSortTinyInput(t *testing.T) {
	in := &Input{Keys: [][]uint64{{5, 1}, {9}, {3, 7, 2}, {}}}
	res, err := Run(in, core.Config{K: 4, Bandwidth: 4, Seed: 13}, 0)
	if err != nil {
		t.Fatal(err)
	}
	verifyExactBlocks(t, in, res)
}

func TestSortWithDuplicates(t *testing.T) {
	in := &Input{Keys: make([][]uint64, 4)}
	for i := 0; i < 4; i++ {
		for j := 0; j < 100; j++ {
			in.Keys[i] = append(in.Keys[i], uint64(j%7))
		}
	}
	res, err := Run(in, core.Config{K: 4, Bandwidth: 8, Seed: 17}, 0)
	if err != nil {
		t.Fatal(err)
	}
	verifyExactBlocks(t, in, res)
}

func TestRebalanceVolumeSmall(t *testing.T) {
	// The exact-rebalance phase should move o(n) keys: splitter sampling
	// bounds bucket imbalance whp.
	const n, k = 20000, 16
	in := RandomInput(n, k, 19, UniformKeys)
	res, err := Run(in, core.Config{K: k, Bandwidth: 8, Seed: 23}, 0)
	if err != nil {
		t.Fatal(err)
	}
	verifyExactBlocks(t, in, res)
	if res.RebalancedKeys > int64(n/4) {
		t.Errorf("rebalance moved %d of %d keys; splitters are not balancing", res.RebalancedKeys, n)
	}
}

// TestSortScalesWithK checks the Õ(n/k²) claim of §1.3: quadrupling the
// machines should shrink rounds by well over 4x while the routing term
// dominates.
func TestSortScalesWithK(t *testing.T) {
	const n = 60000
	rounds := map[int]int64{}
	for _, k := range []int{8, 32} {
		in := RandomInput(n, k, 29, UniformKeys)
		res, err := Run(in, core.Config{K: k, Bandwidth: 8, Seed: 31}, 128)
		if err != nil {
			t.Fatal(err)
		}
		verifyExactBlocks(t, in, res)
		rounds[k] = res.Stats.Rounds
	}
	ratio := float64(rounds[8]) / float64(rounds[32])
	if ratio < 6 {
		t.Errorf("k 8->32 speedup %.1fx (%d -> %d); Õ(n/k²) predicts ~16x, need > 6x",
			ratio, rounds[8], rounds[32])
	}
}

func TestDeterministic(t *testing.T) {
	in := RandomInput(1000, 4, 37, UniformKeys)
	a, err := Run(in, core.Config{K: 4, Bandwidth: 4, Seed: 41}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, core.Config{K: 4, Bandwidth: 4, Seed: 41}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Rounds != b.Stats.Rounds || a.RebalancedKeys != b.RebalancedKeys {
		t.Error("identical runs disagree")
	}
}

func TestRejectsBadInput(t *testing.T) {
	if _, err := Run(&Input{Keys: make([][]uint64, 4)}, core.Config{K: 4, Bandwidth: 4, Seed: 1}, 0); err == nil {
		t.Error("empty input accepted")
	}
	in := RandomInput(100, 4, 1, UniformKeys)
	if _, err := Run(in, core.Config{K: 8, Bandwidth: 4, Seed: 1}, 0); err == nil {
		t.Error("mismatched k accepted")
	}
}

func TestBlockBounds(t *testing.T) {
	b := blockBounds(10, 4)
	want := []int64{0, 2, 5, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("blockBounds(10,4) = %v, want %v", b, want)
		}
	}
}
