package dsort

import (
	"sort"
	"testing"
	"testing/quick"

	"kmachine/internal/core"
	"kmachine/internal/rng"
)

// TestPropertySortExactForArbitraryInputs: for arbitrary key
// distributions (uniform, skewed, constant-heavy, adversarial sizes) the
// output blocks are exactly the order statistics.
func TestPropertySortExactForArbitraryInputs(t *testing.T) {
	f := func(seedRaw uint16, kSel, genSel uint8) bool {
		seed := uint64(seedRaw)
		k := []int{2, 4, 8, 16}[kSel%4]
		n := 200 + int(seedRaw%2000)
		keyGen := []func(*rng.RNG) uint64{
			UniformKeys,
			SkewedKeys,
			func(r *rng.RNG) uint64 { return r.Uint64() % 5 }, // heavy duplicates
		}[genSel%3]
		in := RandomInput(n, k, seed+1, keyGen)
		res, err := Run(in, core.Config{K: k, Bandwidth: 8, Seed: seed + 2}, 0)
		if err != nil {
			return false
		}
		var all []uint64
		for _, ks := range in.Keys {
			all = append(all, ks...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		bounds := blockBounds(len(all), k)
		for i := 0; i < k; i++ {
			want := all[bounds[i]:bounds[i+1]]
			got := res.Blocks[i]
			if len(got) != len(want) {
				return false
			}
			for j := range want {
				if got[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyBlockBoundsPartition: bounds form a monotone partition of
// [0, n) into k near-equal blocks for any (n, k).
func TestPropertyBlockBoundsPartition(t *testing.T) {
	f := func(nRaw uint16, kRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		k := int(kRaw)%64 + 1
		b := blockBounds(n, k)
		if b[0] != 0 || b[k] != int64(n) {
			return false
		}
		for i := 0; i < k; i++ {
			size := b[i+1] - b[i]
			if size < 0 || size > int64(n/k)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
