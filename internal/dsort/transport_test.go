package dsort

import (
	"reflect"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/transport"
)

// A distributed sort over real TCP sockets must return the exact same
// blocks and measured statistics as the loopback run: the transport
// may not perturb determinism or accounting.
func TestSortOverTCPMatchesInMemory(t *testing.T) {
	const (
		n    = 600
		k    = 4
		seed = 13
	)
	mkInput := func() *Input { return RandomInput(n, k, seed, UniformKeys) }
	cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(n), Seed: seed + 1}

	mem, err := Run(mkInput(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = transport.TCP
	tcp, err := Run(mkInput(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tcp.Blocks, mem.Blocks) {
		t.Error("sorted blocks diverge between tcp and inmem")
	}
	if tcp.Stats.Rounds != mem.Stats.Rounds || tcp.Stats.Words != mem.Stats.Words ||
		tcp.Stats.Messages != mem.Stats.Messages || tcp.Stats.Supersteps != mem.Stats.Supersteps {
		t.Errorf("stats diverge: tcp %+v, inmem %+v", tcp.Stats, mem.Stats)
	}
	if tcp.RebalancedKeys != mem.RebalancedKeys {
		t.Errorf("rebalanced keys: tcp %d, inmem %d", tcp.RebalancedKeys, mem.RebalancedKeys)
	}
}
