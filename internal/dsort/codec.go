package dsort

import (
	"fmt"

	"kmachine/internal/routing"
	twire "kmachine/internal/transport/wire"
)

// Wire is the envelope payload type of a distributed sort: the sample /
// key / size / rebalance message in its two-hop routing frame.
type Wire = wire

// WireCodec returns the binary codec for sort envelopes.
func WireCodec() twire.Codec[Wire] {
	return routing.HopCodec[smsg](smsgCodec{})
}

type smsgCodec struct{}

func (smsgCodec) Append(dst []byte, m smsg) ([]byte, error) {
	dst = append(dst, m.Kind)
	dst = twire.AppendUvarint(dst, m.Value)
	return twire.AppendVarint(dst, m.Count), nil
}

func (smsgCodec) Decode(src []byte) (smsg, int, error) {
	if len(src) < 1 {
		return smsg{}, 0, fmt.Errorf("dsort: truncated message")
	}
	m := smsg{Kind: src[0]}
	pos := 1
	v, n, err := twire.Uvarint(src[pos:])
	if err != nil {
		return smsg{}, 0, err
	}
	m.Value = v
	pos += n
	c, n, err := twire.Varint(src[pos:])
	if err != nil {
		return smsg{}, 0, err
	}
	m.Count = c
	return m, pos + n, nil
}
