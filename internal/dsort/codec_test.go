package dsort

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/rng"
)

func TestWireCodecRoundTripProperty(t *testing.T) {
	r := rng.New(11)
	c := WireCodec()
	kinds := []uint8{kindSample, kindKey, kindSize, kindFinal}
	for i := 0; i < 3000; i++ {
		want := Wire{
			Final: core.MachineID(r.Intn(1 << 16)),
			Msg: smsg{
				Kind:  kinds[r.Intn(len(kinds))],
				Value: r.Uint64(),
				Count: int64(r.Uint64()) >> uint(r.Intn(64)),
			},
		}
		buf, err := c.Append(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := c.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || n != len(buf) {
			t.Fatalf("round trip: got %+v (n=%d), want %+v (len=%d)", got, n, want, len(buf))
		}
	}
}
