// Package dsort implements distributed sorting in the k-machine model —
// the §1.3 example of the paper's General Lower Bound Theorem cookbook:
// n keys are randomly distributed across the k machines and, at the end,
// machine i must hold the i-th block of n/k order statistics. The GLBT
// gives Ω̃(n/k²) rounds for this problem; the sample-sort algorithm here
// matches it in Õ(n/k²).
//
// The algorithm is a three-phase sample sort:
//
//  1. splitter agreement — every machine broadcasts Θ(k·log n / k) local
//     samples; all machines deterministically derive the same k-1
//     splitters from the union;
//  2. bucket routing — each key is routed (Valiant two-hop, Lemma 13) to
//     the machine owning its splitter bucket; per-link load is Õ(n/k²)
//     whp because both samples and hops are uniform;
//  3. exact rebalance — machines broadcast bucket sizes (k words each),
//     compute every key's exact global rank from prefix sums, and
//     forward the few boundary keys that belong to a neighbouring
//     machine's block. Sampling errors make this volume o(n/k) whp.
//
// The output is exact: machine i finishes with precisely the order
// statistics (i·n/k, (i+1)·n/k], sorted.
package dsort

import (
	"cmp"
	"fmt"
	"slices"

	"kmachine/internal/algo"
	"kmachine/internal/core"
	"kmachine/internal/rng"
	"kmachine/internal/routing"
)

// Input is the initial key distribution: Keys[i] are machine i's keys.
type Input struct {
	Keys [][]uint64
}

// RandomInput deals n keys drawn from keyGen to k machines uniformly —
// the random distribution the problem statement assumes.
func RandomInput(n, k int, seed uint64, keyGen func(r *rng.RNG) uint64) *Input {
	r := rng.New(seed)
	in := &Input{Keys: make([][]uint64, k)}
	for i := 0; i < n; i++ {
		m := r.Intn(k)
		in.Keys[m] = append(in.Keys[m], keyGen(r))
	}
	return in
}

// UniformKeys is the default key generator: uniform 63-bit keys.
func UniformKeys(r *rng.RNG) uint64 { return r.Uint64() >> 1 }

// SkewedKeys concentrates 90% of the mass on a tiny range, stressing the
// splitter logic.
func SkewedKeys(r *rng.RNG) uint64 {
	if r.Intn(10) != 0 {
		return r.Uint64() % 1024
	}
	return r.Uint64() >> 1
}

// Result reports a distributed sort.
type Result struct {
	// Blocks[i] is machine i's final sorted block.
	Blocks [][]uint64
	// Stats is the measured communication profile.
	Stats *core.Stats
	// RebalancedKeys counts keys moved in the exact-rebalance phase.
	RebalancedKeys int64
}

const (
	kindSample = iota
	kindKey
	kindSize
	kindFinal
)

type smsg struct {
	Kind  uint8
	Value uint64
	Count int64
}

type wire = routing.Hop[smsg]

type sortMachine struct {
	k, n       int
	samplesPer int
	keys       []uint64

	samples   []uint64
	splitters []uint64
	bucket    []uint64
	sizes     []int64
	final     []uint64
	rebal     int64
	sizesIn   int

	// DeliverInto scratch, recycled across supersteps.
	delivBuf []smsg
	outBuf   []core.Envelope[wire]
	// buckets[j] collects the superstep's envelopes addressed to machine
	// j; core.EmitBuckets streams the non-self buckets eagerly on
	// streaming runs and appends them to the returned outs on lockstep
	// runs, byte-identically either way. The broadcast supersteps (0 and
	// 3) go further and emit each peer's batch as soon as its loop
	// completes, overlapping the remaining peers' assembly with the wire.
	buckets [][]core.Envelope[wire]
	// sortTmp is the radix-sort ping-pong buffer, shared by the three
	// key sorts of a run.
	sortTmp []uint64
}

// sortKeys sorts xs ascending. Comparison sort below a small cutoff,
// LSD radix above it: the phase sorts dominate the run's local work and
// a byte-wise radix pass over uniform uint64 keys avoids pdqsort's
// branch-miss-heavy comparisons. The output is the ascending multiset
// either way, so run behaviour is unchanged.
func (m *sortMachine) sortKeys(xs []uint64) {
	const radixCutoff = 128
	if len(xs) < radixCutoff {
		slices.Sort(xs)
		return
	}
	if cap(m.sortTmp) < len(xs) {
		m.sortTmp = make([]uint64, len(xs))
	}
	var counts [8][256]int
	for _, x := range xs {
		for b := 0; b < 8; b++ {
			counts[b][byte(x>>(8*b))]++
		}
	}
	src, dst := xs, m.sortTmp[:len(xs)]
	for b := 0; b < 8; b++ {
		c := &counts[b]
		distinct := 0
		for d := 0; d < 256 && distinct < 2; d++ {
			if c[d] > 0 {
				distinct++
			}
		}
		if distinct < 2 {
			continue // constant digit column: nothing to move
		}
		sum := 0
		for d := 0; d < 256; d++ {
			n := c[d]
			c[d] = sum
			sum += n
		}
		for _, x := range src {
			d := byte(x >> (8 * b))
			dst[c[d]] = x
			c[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}

// searchGreater returns the smallest index i with xs[i] > key (len(xs)
// if none) — sort.Search semantics without the per-probe closure call.
func searchGreater[T cmp.Ordered](xs []T, key T) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] > key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (m *sortMachine) Step(ctx *core.StepContext, inbox []core.Envelope[wire]) ([]core.Envelope[wire], bool) {
	buckets := m.buckets
	for j := range buckets {
		buckets[j] = buckets[j][:0]
	}
	delivered := routing.DeliverIntoBuckets(core.MachineID(ctx.Self), inbox, m.delivBuf[:0], buckets)
	m.delivBuf = delivered[:0]
	out := m.outBuf[:0]
	defer func() { m.outBuf = out[:0] }()
	for _, d := range delivered {
		switch d.Kind {
		case kindSample:
			m.samples = append(m.samples, d.Value)
		case kindKey:
			m.bucket = append(m.bucket, d.Value)
		case kindSize:
			m.sizes = append(m.sizes, 0) // placeholder, replaced below
			m.sizes[len(m.sizes)-1] = d.Count
			m.sizesIn++
		case kindFinal:
			m.final = append(m.final, d.Value)
		}
	}

	switch ctx.Superstep {
	case 0:
		// Phase 1: broadcast local samples (duplicated to every machine
		// so all derive identical splitters).
		sampleCount := m.samplesPer
		if sampleCount > len(m.keys) {
			sampleCount = len(m.keys)
		}
		idx := ctx.RNG.Sample(len(m.keys), sampleCount)
		mySamples := make([]uint64, 0, sampleCount)
		for _, i := range idx {
			mySamples = append(mySamples, m.keys[i])
		}
		m.samples = append(m.samples, mySamples...) // self-copy
		for j := 0; j < ctx.K; j++ {
			if core.MachineID(j) == ctx.Self {
				continue
			}
			for _, s := range mySamples {
				routing.RouteDirectBuckets(buckets, core.MachineID(j), 1, smsg{Kind: kindSample, Value: s})
			}
			// Peer j's broadcast batch is complete: hand it to the wire
			// now (streaming runs) while the remaining peers' batches are
			// still being assembled.
			out = core.EmitOrAppend(ctx, core.MachineID(j), buckets[j], out)
		}
		out = append(out, buckets[ctx.Self]...)
		return out, false

	case 1:
		// Phase 2: derive splitters and route keys to bucket machines.
		m.sortKeys(m.samples)
		m.splitters = make([]uint64, 0, ctx.K-1)
		for j := 1; j < ctx.K; j++ {
			m.splitters = append(m.splitters, m.samples[j*len(m.samples)/ctx.K])
		}
		for _, key := range m.keys {
			b := searchGreater(m.splitters, key)
			if core.MachineID(b) == ctx.Self {
				m.bucket = append(m.bucket, key)
				continue
			}
			routing.RouteBuckets(buckets, ctx.RNG, ctx.K, core.MachineID(b), 1, smsg{Kind: kindKey, Value: key})
		}
		out = core.EmitBuckets(ctx, buckets, out)
		return out, false

	case 2:
		// Relay hop for key routing.
		out = core.EmitBuckets(ctx, buckets, out)
		return out, false

	case 3:
		// Phase 3a: broadcast bucket size.
		m.sortKeys(m.bucket)
		m.sizes = nil
		m.sizesIn = 0
		for j := 0; j < ctx.K; j++ {
			if core.MachineID(j) == ctx.Self {
				continue
			}
			routing.RouteDirectBuckets(buckets, core.MachineID(j), 1, smsg{Kind: kindSize, Count: int64(len(m.bucket))})
			out = core.EmitOrAppend(ctx, core.MachineID(j), buckets[j], out)
		}
		out = append(out, buckets[ctx.Self]...)
		return out, false

	case 4:
		// Phase 3b: sizes arrive ordered by sender machine ID (the
		// cluster assembles inboxes in machine order), so insert our own
		// at our index to get the global size vector.
		sizes := make([]int64, 0, ctx.K)
		idx := 0
		for j := 0; j < ctx.K; j++ {
			if core.MachineID(j) == ctx.Self {
				sizes = append(sizes, int64(len(m.bucket)))
				continue
			}
			sizes = append(sizes, m.sizes[idx])
			idx++
		}
		prefix := int64(0)
		for j := 0; int(j) < int(ctx.Self); j++ {
			prefix += sizes[j]
		}
		// Exact global rank of bucket[i] is prefix + i; ship each key to
		// the machine owning that rank's block. Boundary keys mostly
		// target the adjacent machine, so they go two-hop as well —
		// a direct send would serialise one link.
		bounds := blockBounds(m.n, ctx.K)
		for i, key := range m.bucket {
			rank := prefix + int64(i)
			target := core.MachineID(searchGreater(bounds[1:ctx.K+1], rank))
			if target == ctx.Self {
				m.final = append(m.final, key)
				continue
			}
			m.rebal++
			routing.RouteBuckets(buckets, ctx.RNG, ctx.K, target, 1, smsg{Kind: kindFinal, Value: key})
		}
		out = core.EmitBuckets(ctx, buckets, out)
		return out, false

	case 5:
		// Relay hop for rebalance keys.
		out = core.EmitBuckets(ctx, buckets, out)
		return out, false

	default:
		m.sortKeys(m.final)
		out = core.EmitBuckets(ctx, buckets, out)
		return out, true
	}
}

// blockBounds returns the k+1 rank boundaries: machine i owns global
// ranks [bounds[i], bounds[i+1]).
func blockBounds(n, k int) []int64 {
	b := make([]int64, k+1)
	for i := 0; i <= k; i++ {
		b[i] = int64(i) * int64(n) / int64(k)
	}
	return b
}

// newSortMachine builds machine id's state from the shared input — the
// construction every substrate uses.
func newSortMachine(id core.MachineID, in *Input, n, k, samplesPerMachine int) *sortMachine {
	m := &sortMachine{k: k, n: n, samplesPer: samplesPerMachine, keys: in.Keys[id]}
	// Presize the working buffers to the phase maxima (whp): the
	// run is only ~7 supersteps, too few to amortise append-growth
	// chains, and these caps make the big phases allocation-flat.
	// Capacities only — contents and behaviour are unchanged.
	sz := len(in.Keys[id]) + k
	if bc := (k-1)*samplesPerMachine + k; bc > sz {
		sz = bc // phase 1 broadcasts (k-1)·samplesPer sample envelopes
	}
	m.outBuf = make([]core.Envelope[wire], 0, sz)
	m.delivBuf = make([]smsg, 0, sz)
	m.buckets = make([][]core.Envelope[wire], k)
	m.samples = make([]uint64, 0, k*samplesPerMachine)
	m.bucket = make([]uint64, 0, sz)
	m.final = make([]uint64, 0, sz)
	return m
}

// Run sorts the input across k machines. cfg.K must equal len(in.Keys).
// The input is not a vertex partition, so Run drives the generic
// internal/algo tail (algo.Exec) directly with a keys-closing factory.
func Run(in *Input, cfg core.Config, samplesPerMachine int) (*Result, error) {
	k := len(in.Keys)
	if cfg.K != k {
		return nil, fmt.Errorf("dsort: cluster k=%d but input has %d machines", cfg.K, k)
	}
	n, samplesPerMachine, err := resolveInput(in, samplesPerMachine)
	if err != nil {
		return nil, err
	}
	res, stats, err := algo.Exec(cfg, WireCodec(),
		func(id core.MachineID) (algo.Machine[Wire, Local], error) {
			return newSortMachine(id, in, n, k, samplesPerMachine), nil
		}, mergeLocals)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// resolveInput derives the global key count and the samples-per-machine
// default.
func resolveInput(in *Input, samplesPerMachine int) (n, samples int, err error) {
	for _, ks := range in.Keys {
		n += len(ks)
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("dsort: empty input")
	}
	if samplesPerMachine <= 0 {
		samplesPerMachine = 16 * len(in.Keys)
	}
	return n, samplesPerMachine, nil
}

// mergeLocals folds the machine-local blocks into a Result.
func mergeLocals(locals []Local) *Result {
	res := &Result{Blocks: make([][]uint64, len(locals))}
	for id, l := range locals {
		res.Blocks[id] = l.Block
		res.RebalancedKeys += l.Rebalanced
	}
	return res
}
