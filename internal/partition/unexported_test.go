// In-package tests for unexported details; the rest of the suite lives
// in package partition_test so it can import internal/gen (which now
// imports this package for its shard builders).
package partition

import (
	"strings"
	"testing"

	"kmachine/internal/graph"
)

func TestBalanceEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, false).Build()
	// A zero-vertex graph has all-empty machines; Balance reports 0/0.
	p := &VertexPartition{G: g, K: 3, locals: make([][]int32, 3), home: nil}
	min, max := p.Balance()
	if min != 0 || max != 0 {
		t.Errorf("empty balance [%d,%d], want [0,0]", min, max)
	}
}

func TestConversionErrorMessage(t *testing.T) {
	err := errEdgeMissing(2, 5, 7)
	if !strings.Contains(err.Error(), "without a local edge") {
		t.Errorf("unexpected error text %q", err.Error())
	}
}
