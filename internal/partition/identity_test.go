package partition_test

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	. "kmachine/internal/partition"
)

func TestIdentityPartition(t *testing.T) {
	g := gen.Cycle(20)
	p := NewIdentity(g)
	if p.K != g.N() {
		t.Fatalf("identity partition k = %d, want n = %d", p.K, g.N())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if p.Home(v) != core.MachineID(v) {
			t.Fatalf("Home(%d) = %d, want %d", v, p.Home(v), v)
		}
		locals := p.Locals(core.MachineID(v))
		if len(locals) != 1 || locals[0] != v {
			t.Fatalf("Locals(%d) = %v, want [%d]", v, locals, v)
		}
	}
	min, max := p.Balance()
	if min != 1 || max != 1 {
		t.Errorf("identity balance [%d,%d], want [1,1]", min, max)
	}
}

func TestIdentityPanicsOnTinyGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewIdentity(n=1) did not panic")
		}
	}()
	NewIdentity(gen.Path(1))
}

func TestIdentityViewAccess(t *testing.T) {
	g := gen.DirectedCycle(10)
	p := NewIdentity(g)
	v := p.View(3)
	if v.Self() != 3 || v.K() != 10 || v.N() != 10 {
		t.Errorf("view identity mismatch: self=%d k=%d n=%d", v.Self(), v.K(), v.N())
	}
	if got := v.OutAdj(3); len(got) != 1 || got[0] != 4 {
		t.Errorf("OutAdj(3) = %v, want [4]", got)
	}
	if v.HomeOf(7) != 7 {
		t.Errorf("HomeOf(7) = %d, want 7", v.HomeOf(7))
	}
}

func TestRVPPanicsOnSmallK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRVP(k=1) did not panic")
		}
	}()
	NewRVP(gen.Path(10), 1, 1)
}

func TestREPPanicsOnSmallK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewREP(k=1) did not panic")
		}
	}()
	NewREP(gen.Path(10), 1, 1)
}

func TestREPBalanceEmpty(t *testing.T) {
	g := gen.Path(5) // 4 edges
	p := NewREP(g, 4, 3)
	min, max := p.Balance()
	if min < 0 || max > 4 || min > max {
		t.Errorf("REP balance [%d,%d] inconsistent for 4 edges", min, max)
	}
}

func TestViewInAdjUndirected(t *testing.T) {
	g := gen.Star(10)
	p := NewRVP(g, 3, 5)
	for m := core.MachineID(0); m < 3; m++ {
		view := p.View(m)
		for _, u := range view.Locals() {
			in := view.InAdj(u)
			out := view.OutAdj(u)
			if len(in) != len(out) {
				t.Fatalf("undirected vertex %d: in/out adjacency differ", u)
			}
		}
	}
}

func TestConversionRejectsMismatchedK(t *testing.T) {
	g := gen.Path(20)
	rep := NewREP(g, 4, 1)
	if _, err := ConvertREPToRVP(rep, core.Config{K: 8, Bandwidth: 4, Seed: 1}, 2); err == nil {
		t.Error("mismatched k accepted")
	}
}
