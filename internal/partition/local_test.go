package partition_test

import (
	"slices"
	"strings"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	. "kmachine/internal/partition"
)

// buildLocal replays g's edges through a LocalBuilder — the
// generator-independent way to shard an existing graph — and returns
// machine m's LocalView.
func buildLocal(g *graph.Graph, spec Spec, m core.MachineID, directed bool) *LocalView {
	lb := NewLocalBuilder(spec, m, directed)
	g.Edges(func(u, v int32) bool {
		lb.AddArc(u, v)
		return true
	})
	return lb.Build()
}

// TestLocalViewMatchesGraphView is the interface-parity property: on
// the same graph, partition seed, and machine, every View accessor must
// answer identically whether backed by the materialised graph
// (GraphView) or by the per-machine CSR shard (LocalView).
func TestLocalViewMatchesGraphView(t *testing.T) {
	for _, tc := range []struct {
		name     string
		directed bool
		g        *graph.Graph
	}{
		{"gnp", false, gen.Gnp(300, 0.04, 5)},
		{"directed-gnp", true, gen.DirectedGnp(150, 0.05, 9)},
		{"star", false, gen.Star(200)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const k, seed = 6, 77
			p := NewRVP(tc.g, k, seed)
			spec := Spec{N: tc.g.N(), K: k, Seed: seed}
			for m := core.MachineID(0); int(m) < k; m++ {
				gv := p.View(m)
				lv := buildLocal(tc.g, spec, m, tc.directed)
				if !slices.Equal(gv.Locals(), lv.Locals()) {
					t.Fatalf("machine %d: Locals differ", m)
				}
				if gv.Self() != lv.Self() || gv.K() != lv.K() || gv.N() != lv.N() {
					t.Fatalf("machine %d: identity accessors differ", m)
				}
				for _, u := range gv.Locals() {
					if !slices.Equal(gv.OutAdj(u), lv.OutAdj(u)) {
						t.Fatalf("machine %d: OutAdj(%d): graph %v, local %v", m, u, gv.OutAdj(u), lv.OutAdj(u))
					}
					if !slices.Equal(gv.InAdj(u), lv.InAdj(u)) {
						t.Fatalf("machine %d: InAdj(%d): graph %v, local %v", m, u, gv.InAdj(u), lv.InAdj(u))
					}
					if gv.Degree(u) != lv.Degree(u) {
						t.Fatalf("machine %d: Degree(%d): graph %d, local %d", m, u, gv.Degree(u), lv.Degree(u))
					}
				}
				for v := int32(0); int(v) < tc.g.N(); v += 17 {
					if gv.HomeOf(v) != lv.HomeOf(v) {
						t.Fatalf("HomeOf(%d): graph %d, local %d", v, gv.HomeOf(v), lv.HomeOf(v))
					}
					if gv.IsLocal(v) != lv.IsLocal(v) {
						t.Fatalf("IsLocal(%d): graph %v, local %v", v, gv.IsLocal(v), lv.IsLocal(v))
					}
				}
			}
		})
	}
}

func TestLocalViewGuardsNonLocalAccess(t *testing.T) {
	g := gen.Path(100)
	spec := Spec{N: 100, K: 4, Seed: 5}
	lv := buildLocal(g, spec, 0, false)
	var foreign int32 = -1
	for u := int32(0); u < 100; u++ {
		if spec.HomeOf(u) != 0 {
			foreign = u
			break
		}
	}
	if foreign < 0 {
		t.Skip("degenerate partition")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("LocalView.OutAdj on a foreign vertex did not panic")
		}
		if !strings.Contains(r.(string), "illegally accessed") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	lv.OutAdj(foreign)
}

func TestSpecAgreesWithNewRVP(t *testing.T) {
	g := gen.Gnp(400, 0.02, 3)
	const k, seed = 8, 91
	p := NewRVP(g, k, seed)
	spec := Spec{N: 400, K: k, Seed: seed}
	for v := int32(0); v < 400; v++ {
		if p.Home(v) != spec.HomeOf(v) {
			t.Fatalf("Home(%d): materialised %d, spec %d", v, p.Home(v), spec.HomeOf(v))
		}
	}
	for m := core.MachineID(0); int(m) < k; m++ {
		if !slices.Equal(p.Locals(m), spec.Locals(m)) {
			t.Fatalf("Locals(%d) differ between materialised partition and spec", m)
		}
	}
}

func TestShardedInputWrapsBuildErrors(t *testing.T) {
	in := &ShardedInput{
		Spec: Spec{N: 10, K: 2, Seed: 1},
		BuildShard: func(m core.MachineID) (*LocalView, error) {
			return nil, errBoom
		},
	}
	if in.NumMachines() != 2 {
		t.Fatalf("NumMachines = %d", in.NumMachines())
	}
	_, err := in.MachineView(1)
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("MachineView error %v does not attribute the machine", err)
	}
}

var errBoom = stubErr("boom")

type stubErr string

func (e stubErr) Error() string { return string(e) }
