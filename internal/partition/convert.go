package partition

import (
	"fmt"

	"kmachine/internal/core"
)

// REP -> RVP conversion (paper §1.1, footnote 3): "one can transform the
// input partition from one model to the other in Õ(m/k² + n/k) rounds".
//
// The conversion is itself a k-machine computation: every machine sends
// each of its REP edges {u,v} to the (hash-computable) home machines of
// u and of v. Because edge owners and vertex homes are both uniform, each
// directed link carries Õ(m/k²) words whp, which is what the cluster
// measures.

// convMsg carries one edge to a vertex's home machine.
type convMsg struct {
	U, V int32
}

type convMachine struct {
	rep   *EdgePartition
	vseed uint64
	recv  [][2]int32
}

func (m *convMachine) Step(ctx *core.StepContext, inbox []core.Envelope[convMsg]) ([]core.Envelope[convMsg], bool) {
	for _, e := range inbox {
		m.recv = append(m.recv, [2]int32{e.Msg.U, e.Msg.V})
	}
	if ctx.Superstep > 0 {
		return nil, true
	}
	var out []core.Envelope[convMsg]
	for _, e := range m.rep.Edges(ctx.Self) {
		for _, end := range []int32{e[0], e[1]} {
			out = append(out, core.Envelope[convMsg]{
				To:    Home(m.vseed, end, m.rep.K),
				Words: 2, // two vertex IDs
				Msg:   convMsg{U: e[0], V: e[1]},
			})
		}
	}
	return out, true
}

// ConversionResult reports a measured REP -> RVP conversion.
type ConversionResult struct {
	// Stats is the cluster run profile (rounds, words, ...).
	Stats *core.Stats
	// RVP is the resulting vertex partition (hash-based with VertexSeed).
	RVP *VertexPartition
}

// ConvertREPToRVP runs the conversion on a cluster and verifies that each
// home machine ends with exactly the incident edges of its vertices.
// cfg.K must match the REP's k.
func ConvertREPToRVP(rep *EdgePartition, cfg core.Config, vertexSeed uint64) (*ConversionResult, error) {
	if cfg.K != rep.K {
		return nil, fmt.Errorf("partition: cluster k=%d but edge partition k=%d", cfg.K, rep.K)
	}
	machines := make([]*convMachine, cfg.K)
	cluster := core.NewCluster(cfg, func(id core.MachineID) core.Machine[convMsg] {
		m := &convMachine{rep: rep, vseed: vertexSeed}
		machines[id] = m
		return m
	})
	stats, err := cluster.Run()
	if err != nil {
		return nil, err
	}
	rvp := NewRVP(rep.G, cfg.K, vertexSeed)

	// Verification: rebuild each machine's local edge set and compare
	// against the ground-truth RVP view.
	for id, m := range machines {
		got := map[[2]int32]int{}
		for _, e := range m.recv {
			got[e]++
		}
		for _, v := range rvp.Locals(core.MachineID(id)) {
			for _, w := range rep.G.Adj(int(v)) {
				key := [2]int32{v, w}
				if !rep.G.Directed() && v > w {
					key = [2]int32{w, v}
				}
				if got[key] == 0 {
					return nil, errEdgeMissing(id, v, w)
				}
			}
		}
	}
	return &ConversionResult{Stats: stats, RVP: rvp}, nil
}

type conversionError struct {
	machine int
	u, w    int32
}

func errEdgeMissing(machine int, u, w int32) error {
	return &conversionError{machine: machine, u: u, w: w}
}

func (e *conversionError) Error() string {
	return "partition: conversion left machine without a local edge"
}
