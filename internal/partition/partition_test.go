package partition_test

import (
	"math"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	. "kmachine/internal/partition"
)

func TestHomeIsPureAndInRange(t *testing.T) {
	const k = 8
	for v := int32(0); v < 1000; v++ {
		h1 := Home(42, v, k)
		h2 := Home(42, v, k)
		if h1 != h2 {
			t.Fatalf("Home not deterministic for vertex %d", v)
		}
		if h1 < 0 || int(h1) >= k {
			t.Fatalf("Home(%d) = %d out of range", v, h1)
		}
	}
}

func TestHomeDependsOnSeed(t *testing.T) {
	const k = 8
	diff := 0
	for v := int32(0); v < 1000; v++ {
		if Home(1, v, k) != Home(2, v, k) {
			diff++
		}
	}
	if diff < 500 {
		t.Errorf("only %d/1000 vertices moved between seeds; hashing looks broken", diff)
	}
}

func TestRVPBalance(t *testing.T) {
	// RVP gives Θ̃(n/k) vertices per machine whp (paper §1.1).
	g := gen.Gnp(2000, 0.01, 3)
	const k = 10
	p := NewRVP(g, k, 7)
	min, max := p.Balance()
	mean := float64(g.N()) / k
	if float64(min) < mean/2 || float64(max) > mean*2 {
		t.Errorf("RVP balance [%d, %d] too skewed around mean %g", min, max, mean)
	}
	// Every vertex appears exactly once across machines.
	total := 0
	for m := 0; m < k; m++ {
		total += len(p.Locals(core.MachineID(m)))
	}
	if total != g.N() {
		t.Errorf("locals cover %d vertices, want %d", total, g.N())
	}
}

func TestRVPUniformity(t *testing.T) {
	// Chi-squared style check: machine loads should be near-uniform.
	g := gen.Path(10000)
	const k = 16
	p := NewRVP(g, k, 11)
	want := float64(g.N()) / k
	for m := 0; m < k; m++ {
		got := float64(len(p.Locals(core.MachineID(m))))
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("machine %d load %g deviates from %g beyond 6 sigma", m, got, want)
		}
	}
}

func TestViewGuardsNonLocalAccess(t *testing.T) {
	g := gen.Path(100)
	p := NewRVP(g, 4, 5)
	v := p.View(0)
	// Find a vertex not homed at machine 0.
	var foreign int32 = -1
	for u := int32(0); u < int32(g.N()); u++ {
		if p.Home(u) != 0 {
			foreign = u
			break
		}
	}
	if foreign < 0 {
		t.Skip("degenerate partition")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("View.OutAdj on a foreign vertex did not panic")
		}
	}()
	v.OutAdj(foreign)
}

func TestViewLocalAccess(t *testing.T) {
	g := gen.DirectedCycle(50)
	p := NewRVP(g, 5, 9)
	for m := core.MachineID(0); m < 5; m++ {
		view := p.View(m)
		for _, u := range view.Locals() {
			out := view.OutAdj(u)
			if len(out) != 1 || out[0] != (u+1)%50 {
				t.Errorf("OutAdj(%d) = %v, want [%d]", u, out, (u+1)%50)
			}
			in := view.InAdj(u)
			if len(in) != 1 || in[0] != (u+49)%50 {
				t.Errorf("InAdj(%d) = %v, want [%d]", u, in, (u+49)%50)
			}
			if view.Degree(u) != 1 {
				t.Errorf("Degree(%d) = %d, want 1", u, view.Degree(u))
			}
			if !view.IsLocal(u) {
				t.Errorf("IsLocal(%d) = false for a local vertex", u)
			}
		}
	}
}

func TestREPCoversAllEdges(t *testing.T) {
	g := gen.Gnp(300, 0.05, 13)
	const k = 6
	p := NewREP(g, k, 17)
	total := 0
	for m := 0; m < k; m++ {
		total += len(p.Edges(core.MachineID(m)))
	}
	if total != g.M() {
		t.Errorf("REP covers %d edges, want %d", total, g.M())
	}
	min, max := p.Balance()
	mean := float64(g.M()) / k
	if float64(min) < mean/2 || float64(max) > 2*mean {
		t.Errorf("REP balance [%d,%d] too skewed around %g", min, max, mean)
	}
}

func TestConvertREPToRVP(t *testing.T) {
	g := gen.Gnp(400, 0.03, 19)
	const k = 8
	rep := NewREP(g, k, 23)
	res, err := ConvertREPToRVP(rep, core.Config{K: k, Bandwidth: 4, Seed: 29}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds == 0 {
		t.Error("conversion reported zero rounds")
	}
	// Volume sanity: 2 endpoints x 2 words per edge, minus the ~1/k
	// fraction delivered locally for free (owner == home machine).
	maxWords := int64(4 * g.M())
	minWords := int64(float64(maxWords) * (1 - 3.0/float64(k)))
	if res.Stats.Words > maxWords || res.Stats.Words < minWords {
		t.Errorf("conversion moved %d words, want in [%d, %d]", res.Stats.Words, minWords, maxWords)
	}
}

// TestConversionRoundsScaling checks the Õ(m/k²) shape of footnote 3:
// quadrupling k should cut conversion rounds by roughly 16 (up to
// rounding and whp slack).
func TestConversionRoundsScaling(t *testing.T) {
	g := gen.Gnp(600, 0.2, 37)
	rounds := map[int]int64{}
	for _, k := range []int{4, 16} {
		rep := NewREP(g, k, 41)
		res, err := ConvertREPToRVP(rep, core.Config{K: k, Bandwidth: 4, Seed: 43}, 47)
		if err != nil {
			t.Fatal(err)
		}
		rounds[k] = res.Stats.Rounds
	}
	ratio := float64(rounds[4]) / float64(rounds[16])
	if ratio < 4 {
		t.Errorf("k 4->16 conversion speedup %.1fx; want >= 4x (ideal ~16x)", ratio)
	}
}

func TestDirectedConversion(t *testing.T) {
	g := gen.DirectedGnp(150, 0.05, 53)
	const k = 5
	rep := NewREP(g, k, 59)
	if _, err := ConvertREPToRVP(rep, core.Config{K: k, Bandwidth: 4, Seed: 61}, 67); err != nil {
		t.Fatal(err)
	}
}
