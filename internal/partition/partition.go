// Package partition implements the input partitioning schemes of the
// k-machine model (paper §1.1):
//
//   - the random vertex partition (RVP): every vertex, with its incident
//     edges, is assigned to a uniformly random machine. As in real
//     systems (Pregel, Giraph) the assignment is realised by hashing, so
//     any machine that knows a vertex ID also knows its home machine
//     without communication;
//   - the random edge partition (REP, footnote 3): every edge is assigned
//     to a uniformly random machine;
//   - the REP -> RVP conversion, run as an actual k-machine computation so
//     its Õ(m/k² + n/k) cost is measured, not assumed.
//
// A View is a machine-local window onto the partitioned graph. Its
// accessors panic when an algorithm touches a vertex that is not local,
// which keeps the simulated algorithms honest about what a machine can
// see: the home machine knows the IDs of its vertices' neighbours and
// those neighbours' home machines, and nothing else.
//
// View is an interface with two implementations: GraphView, backed by a
// fully materialised *graph.Graph (every process holds the whole input),
// and LocalView (local.go), backed by a per-machine CSR holding only the
// adjacency rows of the machine's own vertices — the paper's actual
// input model, where machine m stores Õ((n+m)/k) words, realised without
// any global graph object behind it.
package partition

import (
	"fmt"

	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/rng"
)

// Home returns the home machine of vertex v under the hash-based RVP
// with the given seed. It is a pure function: every machine can evaluate
// it locally for any vertex ID.
func Home(seed uint64, v int32, k int) core.MachineID {
	return core.MachineID(rng.Mix(seed^(uint64(uint32(v))+0x517cc1b727220a95)) % uint64(k))
}

// VertexPartition is a materialised RVP of a graph.
type VertexPartition struct {
	G    *graph.Graph
	K    int
	Seed uint64

	home   []core.MachineID
	locals [][]int32
}

// NewRVP partitions g across k machines by hashing vertex IDs with seed.
func NewRVP(g *graph.Graph, k int, seed uint64) *VertexPartition {
	if k < 2 {
		panic("partition: need k >= 2")
	}
	p := &VertexPartition{G: g, K: k, Seed: seed}
	p.home = make([]core.MachineID, g.N())
	p.locals = make([][]int32, k)
	for v := 0; v < g.N(); v++ {
		h := Home(seed, int32(v), k)
		p.home[v] = h
		p.locals[h] = append(p.locals[h], int32(v))
	}
	return p
}

// NewIdentity builds the congested-clique partition (paper §2.4,
// Corollary 1): k = n machines and vertex v lives on machine v. It is a
// VertexPartition like any other, so every k-machine algorithm runs
// unchanged in the congested clique.
func NewIdentity(g *graph.Graph) *VertexPartition {
	n := g.N()
	if n < 2 {
		panic("partition: identity partition needs n >= 2")
	}
	p := &VertexPartition{G: g, K: n, Seed: 0}
	p.home = make([]core.MachineID, n)
	p.locals = make([][]int32, n)
	for v := 0; v < n; v++ {
		p.home[v] = core.MachineID(v)
		p.locals[v] = []int32{int32(v)}
	}
	return p
}

// Home returns the home machine of v.
func (p *VertexPartition) Home(v int32) core.MachineID { return p.home[v] }

// Locals returns the vertices homed at machine m, in increasing order.
func (p *VertexPartition) Locals(m core.MachineID) []int32 { return p.locals[m] }

// Balance returns the minimum and maximum number of vertices per machine
// (the RVP guarantees Θ̃(n/k) per machine whp).
func (p *VertexPartition) Balance() (min, max int) {
	min = p.G.N() + 1
	for _, l := range p.locals {
		if len(l) < min {
			min = len(l)
		}
		if len(l) > max {
			max = len(l)
		}
	}
	if min > p.G.N() {
		min = 0
	}
	return
}

// View is the information one machine legitimately holds under the RVP:
// its own vertices and their incident edges, plus the public knowledge
// of the model (n, k, and the hash-computable home of any vertex ID).
// Accessing a non-local vertex's adjacency panics — that would be
// cheating in the model. GraphView implements it over a materialised
// global graph; LocalView over a per-machine CSR shard.
type View interface {
	// Self returns the owning machine.
	Self() core.MachineID
	// K returns the number of machines.
	K() int
	// N returns the global vertex count (public knowledge in the model).
	N() int
	// Locals returns this machine's vertices in increasing ID order.
	Locals() []int32
	// IsLocal reports whether u is homed here.
	IsLocal(u int32) bool
	// HomeOf returns the home machine of any vertex (hashing is public).
	HomeOf(u int32) core.MachineID
	// OutAdj returns the out-neighbours (or neighbours, if undirected)
	// of a LOCAL vertex, sorted. The slice aliases internal storage.
	OutAdj(u int32) []int32
	// InAdj returns the in-neighbours of a LOCAL vertex. (The home
	// machine knows both directions of its vertices' incident edges,
	// §1.1.)
	InAdj(u int32) []int32
	// Degree returns the out-degree of a LOCAL vertex.
	Degree(u int32) int
}

// Input is a partitioned problem input as the algorithm driver sees it:
// it hands every machine its View. *VertexPartition implements it by
// windowing the shared global graph; ShardedInput (local.go) by building
// each machine's CSR shard on demand, so a process hosting one machine
// materialises only that machine's Õ((n+m)/k) share.
type Input interface {
	// NumMachines returns k.
	NumMachines() int
	// MachineView returns machine m's local window. For sharded inputs
	// this is where the shard is generated or ingested, so it can fail.
	MachineView(m core.MachineID) (View, error)
}

// View returns machine m's local window onto the materialised graph.
func (p *VertexPartition) View(m core.MachineID) *GraphView {
	return &GraphView{p: p, self: m}
}

// NumMachines implements Input.
func (p *VertexPartition) NumMachines() int { return p.K }

// MachineView implements Input.
func (p *VertexPartition) MachineView(m core.MachineID) (View, error) {
	return p.View(m), nil
}

// GraphView is the full-materialisation View: a window onto a
// *graph.Graph shared by all k machines of the process. Setup cost is
// O(n+m) per process; LocalView is the O((n+m)/k) alternative.
type GraphView struct {
	p    *VertexPartition
	self core.MachineID
}

// Self returns the owning machine.
func (v *GraphView) Self() core.MachineID { return v.self }

// K returns the number of machines.
func (v *GraphView) K() int { return v.p.K }

// N returns the global vertex count (public knowledge in the model).
func (v *GraphView) N() int { return v.p.G.N() }

// Locals returns this machine's vertices.
func (v *GraphView) Locals() []int32 { return v.p.locals[v.self] }

// IsLocal reports whether u is homed here.
func (v *GraphView) IsLocal(u int32) bool { return v.p.home[u] == v.self }

// HomeOf returns the home machine of any vertex (hashing is public).
func (v *GraphView) HomeOf(u int32) core.MachineID { return v.p.home[u] }

// OutAdj returns the out-neighbours (or neighbours, if undirected) of a
// LOCAL vertex.
func (v *GraphView) OutAdj(u int32) []int32 {
	v.mustLocal(u, "OutAdj")
	return v.p.G.Adj(int(u))
}

// InAdj returns the in-neighbours of a LOCAL vertex. (The home machine
// knows both directions of its vertices' incident edges, §1.1.)
func (v *GraphView) InAdj(u int32) []int32 {
	v.mustLocal(u, "InAdj")
	return v.p.G.InAdj(int(u))
}

// Degree returns the out-degree of a LOCAL vertex.
func (v *GraphView) Degree(u int32) int {
	v.mustLocal(u, "Degree")
	return v.p.G.Degree(int(u))
}

func (v *GraphView) mustLocal(u int32, op string) {
	if v.p.home[u] != v.self {
		panic(fmt.Sprintf("partition: machine %d illegally accessed %s(%d), homed at %d",
			v.self, op, u, v.p.home[u]))
	}
}

// EdgePartition is a materialised REP: edge i (in graph.EdgeList order)
// is owned by a uniformly random machine.
type EdgePartition struct {
	G    *graph.Graph
	K    int
	Seed uint64

	edges [][2]int32
	owner []core.MachineID
	byM   [][][2]int32
}

// NewREP partitions g's edges across k machines uniformly at random.
func NewREP(g *graph.Graph, k int, seed uint64) *EdgePartition {
	if k < 2 {
		panic("partition: need k >= 2")
	}
	r := rng.New(seed)
	p := &EdgePartition{G: g, K: k, Seed: seed}
	p.edges = g.EdgeList()
	p.owner = make([]core.MachineID, len(p.edges))
	p.byM = make([][][2]int32, k)
	for i := range p.edges {
		m := core.MachineID(r.Intn(k))
		p.owner[i] = m
		p.byM[m] = append(p.byM[m], p.edges[i])
	}
	return p
}

// Edges returns the edges owned by machine m.
func (p *EdgePartition) Edges(m core.MachineID) [][2]int32 { return p.byM[m] }

// Balance returns the min and max number of edges per machine.
func (p *EdgePartition) Balance() (min, max int) {
	min = len(p.edges) + 1
	for _, l := range p.byM {
		if len(l) < min {
			min = len(l)
		}
		if len(l) > max {
			max = len(l)
		}
	}
	if min > len(p.edges) {
		min = 0
	}
	return
}
