// Partition-local input: the machinery that lets one process hold only
// its machine's Õ((n+m)/k) share of the graph, which is the k-machine
// model's own input assumption (§1.1: "the input is already partitioned
// when the computation starts"; likewise Klauck et al.'s input
// distribution). A Spec describes the RVP without materialising anything
// — homes are a pure hash — and a LocalBuilder accumulates exactly the
// adjacency rows of one machine's vertices into a LocalView, a CSR with
// no *graph.Graph behind it.

package partition

import (
	"fmt"
	"slices"
	"sort"

	"kmachine/internal/core"
)

// Spec is an unmaterialised random vertex partition: n vertices hashed
// onto k machines with the given seed. It carries no per-vertex state —
// every quantity below is derived from the hash — so any process can
// hold a Spec for any n.
type Spec struct {
	// N is the global vertex count.
	N int
	// K is the number of machines.
	K int
	// Seed drives the Home hash (the registry convention seeds it at
	// problem seed + 1, exactly like NewRVP).
	Seed uint64
}

// HomeOf returns the home machine of v: the same pure hash NewRVP
// materialises, so a Spec and a NewRVP with equal (k, seed) agree on
// every vertex.
func (s Spec) HomeOf(v int32) core.MachineID { return Home(s.Seed, v, s.K) }

// Locals returns machine m's vertices in increasing ID order. This is
// the one O(n)-time pass sharded setup cannot avoid under a hashed RVP
// (local IDs are only enumerable by evaluating the hash), but it
// allocates just the O(n/k) result.
func (s Spec) Locals(m core.MachineID) []int32 {
	out := make([]int32, 0, s.N/s.K+1)
	for v := 0; v < s.N; v++ {
		if Home(s.Seed, int32(v), s.K) == m {
			out = append(out, int32(v))
		}
	}
	return out
}

// LocalBuilder accumulates machine m's shard of a graph: exactly the
// arcs incident to m's vertices, fed either by replaying a generator's
// canonical edge stream (AddEdge/AddArc filter by Home) or by emitting
// the machine's rows directly. Build produces an immutable LocalView.
type LocalBuilder struct {
	spec     Spec
	self     core.MachineID
	directed bool
	locals   []int32
	index    map[int32]int32 // global vertex ID -> local row
	out      [][2]int32      // (local tail, head) arcs
	in       [][2]int32      // (local head, tail) arcs, directed only
}

// NewLocalBuilder returns a builder for machine m's shard under the
// given partition spec.
func NewLocalBuilder(spec Spec, m core.MachineID, directed bool) *LocalBuilder {
	if spec.N < 0 || spec.K < 1 {
		panic(fmt.Sprintf("partition: bad shard spec n=%d k=%d", spec.N, spec.K))
	}
	if int(m) < 0 || int(m) >= spec.K {
		panic(fmt.Sprintf("partition: shard machine %d out of [0,%d)", m, spec.K))
	}
	locals := spec.Locals(m)
	index := make(map[int32]int32, len(locals))
	for i, v := range locals {
		index[v] = int32(i)
	}
	return &LocalBuilder{spec: spec, self: m, directed: directed, locals: locals, index: index}
}

// Locals returns the builder's local vertices (increasing ID order); it
// lets row-direct generators iterate exactly the rows they must emit.
func (b *LocalBuilder) Locals() []int32 { return b.locals }

// IsLocal reports whether v is homed on the builder's machine.
func (b *LocalBuilder) IsLocal(v int32) bool {
	_, ok := b.index[v]
	return ok
}

// AddEdge records the undirected edge {u,v} if either endpoint is local;
// remote-remote edges are dropped, so a full canonical edge stream can
// be replayed through it. Self-loops are ignored (matching
// graph.Builder), out-of-range endpoints panic.
func (b *LocalBuilder) AddEdge(u, v int32) {
	b.check(u, v)
	if u == v {
		return
	}
	if _, ok := b.index[u]; ok {
		b.out = append(b.out, [2]int32{u, v})
	}
	if _, ok := b.index[v]; ok {
		b.out = append(b.out, [2]int32{v, u})
	}
}

// AddArc records the directed arc u->v: an out-arc if u is local, an
// in-arc if v is local (the home machine knows both directions of its
// vertices' incident edges, §1.1).
func (b *LocalBuilder) AddArc(u, v int32) {
	b.check(u, v)
	if u == v {
		return
	}
	if !b.directed {
		b.AddEdge(u, v)
		return
	}
	if _, ok := b.index[u]; ok {
		b.out = append(b.out, [2]int32{u, v})
	}
	if _, ok := b.index[v]; ok {
		b.in = append(b.in, [2]int32{v, u})
	}
}

func (b *LocalBuilder) check(u, v int32) {
	if u < 0 || int(u) >= b.spec.N || v < 0 || int(v) >= b.spec.N {
		panic(fmt.Sprintf("partition: shard edge (%d,%d) out of range [0,%d)", u, v, b.spec.N))
	}
}

// Build finalises the shard: per-row sort, dedupe, CSR. The builder's
// arc buffers are released; only the O(local rows) CSR is retained.
func (b *LocalBuilder) Build() *LocalView {
	lv := &LocalView{
		spec:     b.spec,
		self:     b.self,
		directed: b.directed,
		locals:   b.locals,
	}
	lv.outOffs, lv.outTgts = b.csr(b.out)
	if b.directed {
		lv.inOffs, lv.inTgts = b.csr(b.in)
	}
	b.out, b.in = nil, nil
	return lv
}

// csr turns (local vertex, neighbour) arcs into a deduped CSR indexed by
// local row, mirroring graph.Builder's sort-dedupe semantics.
func (b *LocalBuilder) csr(arcs [][2]int32) (offs, tgts []int32) {
	sort.Slice(arcs, func(i, j int) bool {
		ri, rj := b.index[arcs[i][0]], b.index[arcs[j][0]]
		if ri != rj {
			return ri < rj
		}
		return arcs[i][1] < arcs[j][1]
	})
	w := 0
	for i, a := range arcs {
		if i > 0 && a == arcs[i-1] {
			continue
		}
		arcs[w] = a
		w++
	}
	arcs = arcs[:w]
	offs = make([]int32, len(b.locals)+1)
	tgts = make([]int32, len(arcs))
	for i, a := range arcs {
		offs[b.index[a[0]]+1]++
		tgts[i] = a[1]
	}
	for i := 0; i < len(b.locals); i++ {
		offs[i+1] += offs[i]
	}
	return offs, tgts
}

// LocalView is a machine-local View backed by a per-machine CSR of the
// machine's own adjacency rows — no global graph object. Setup memory is
// O((n+m)/k) per machine instead of the GraphView's O(n+m) per process,
// which is what lets a k-process run hold inputs no single process
// could. Accessor semantics (including the non-local panic) match
// GraphView exactly; the parity and shard/full equivalence suites assert
// bit-identical adjacency against the materialised path.
type LocalView struct {
	spec     Spec
	self     core.MachineID
	directed bool
	locals   []int32
	outOffs  []int32
	outTgts  []int32
	inOffs   []int32
	inTgts   []int32
}

// Self returns the owning machine.
func (v *LocalView) Self() core.MachineID { return v.self }

// K returns the number of machines.
func (v *LocalView) K() int { return v.spec.K }

// N returns the global vertex count (public knowledge in the model).
func (v *LocalView) N() int { return v.spec.N }

// Locals returns this machine's vertices in increasing ID order.
func (v *LocalView) Locals() []int32 { return v.locals }

// IsLocal reports whether u is homed here. Local rows are found by
// binary search over the sorted locals — a map would cost tens of bytes
// per vertex of pure overhead, a real fraction of the Õ((n+m)/k) budget
// the shard exists to respect.
func (v *LocalView) IsLocal(u int32) bool {
	_, ok := slices.BinarySearch(v.locals, u)
	return ok
}

// HomeOf returns the home machine of any vertex: the hash is public, so
// no per-vertex state is needed (this is the O(1)/O(0)-memory answer the
// GraphView precomputes as an O(n) array).
func (v *LocalView) HomeOf(u int32) core.MachineID { return Home(v.spec.Seed, u, v.spec.K) }

// OutAdj returns the out-neighbours (or neighbours, if undirected) of a
// LOCAL vertex, sorted. The slice aliases the shard's CSR.
func (v *LocalView) OutAdj(u int32) []int32 {
	r := v.mustLocal(u, "OutAdj")
	return v.outTgts[v.outOffs[r]:v.outOffs[r+1]]
}

// InAdj returns the in-neighbours of a LOCAL vertex.
func (v *LocalView) InAdj(u int32) []int32 {
	r := v.mustLocal(u, "InAdj")
	if !v.directed {
		return v.outTgts[v.outOffs[r]:v.outOffs[r+1]]
	}
	return v.inTgts[v.inOffs[r]:v.inOffs[r+1]]
}

// Degree returns the out-degree of a LOCAL vertex.
func (v *LocalView) Degree(u int32) int {
	r := v.mustLocal(u, "Degree")
	return int(v.outOffs[r+1] - v.outOffs[r])
}

// LocalArcs returns the number of stored adjacency entries — the shard's
// actual size, which the setup-cost experiment (E23) reports against the
// full graph's 2m (undirected) or m+m (directed CSR + reverse) entries.
func (v *LocalView) LocalArcs() int { return len(v.outTgts) + len(v.inTgts) }

func (v *LocalView) mustLocal(u int32, op string) int32 {
	r, ok := slices.BinarySearch(v.locals, u)
	if !ok {
		panic(fmt.Sprintf("partition: machine %d illegally accessed %s(%d), homed at %d",
			v.self, op, u, v.HomeOf(u)))
	}
	return int32(r)
}

// ShardedInput is the partition-local Input: MachineView(m) builds
// machine m's shard on demand by calling BuildShard, so a process
// hosting one machine (cmd/kmnode -id) materialises only that machine's
// rows, and a process hosting all k (the in-process substrates, used by
// the sharded/full equivalence suite) never holds a global graph object.
type ShardedInput struct {
	// Spec is the partition every shard is built under.
	Spec Spec
	// BuildShard generates or ingests machine m's shard.
	BuildShard func(m core.MachineID) (*LocalView, error)
}

// NumMachines implements Input.
func (in *ShardedInput) NumMachines() int { return in.Spec.K }

// MachineView implements Input.
func (in *ShardedInput) MachineView(m core.MachineID) (View, error) {
	lv, err := in.BuildShard(m)
	if err != nil {
		return nil, fmt.Errorf("partition: shard %d: %w", m, err)
	}
	return lv, nil
}
