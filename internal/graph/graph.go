// Package graph provides the graph substrate of the reproduction: compact
// CSR (compressed sparse row) graphs, builders, and the *sequential*
// ground-truth algorithms that the distributed k-machine algorithms are
// validated against — power-iteration PageRank, the expected-visit solver
// matching the Monte-Carlo token process of Das Sarma et al. [20],
// triangle enumeration and open-triad enumeration.
//
// Vertices are identified by integers in [0, n). The paper's lower-bound
// construction additionally assigns random IDs from a polynomial range to
// obfuscate vertex positions; that relabelling lives in the generator
// (package gen), not here: a Graph is always the structural object.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable graph in CSR form. For undirected graphs each
// edge {u,v} appears in both adjacency lists. For directed graphs Adj
// holds out-neighbours; in-neighbour access is available via InAdj after
// BuildIn (the k-machine model's home machines know both edge directions
// of their vertices, paper §1.1).
type Graph struct {
	n        int
	directed bool
	offs     []int32 // len n+1
	targets  []int32 // len = sum of out-degrees
	inOffs   []int32 // lazily built for directed graphs
	inTgts   []int32
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// M returns the number of edges (each undirected edge counted once).
func (g *Graph) M() int {
	if g.directed {
		return len(g.targets)
	}
	return len(g.targets) / 2
}

// Adj returns the (out-)neighbours of u as a sorted slice. The slice
// aliases internal storage and must not be modified.
func (g *Graph) Adj(u int) []int32 {
	return g.targets[g.offs[u]:g.offs[u+1]]
}

// Degree returns the (out-)degree of u.
func (g *Graph) Degree(u int) int {
	return int(g.offs[u+1] - g.offs[u])
}

// MaxDegree returns the maximum (out-)degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether the edge u->v (or {u,v} if undirected) exists,
// by binary search on the sorted adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	adj := g.Adj(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= int32(v) })
	return i < len(adj) && adj[i] == int32(v)
}

// InAdj returns the in-neighbours of u for a directed graph (neighbours
// for an undirected one). BuildIn must have been called for directed
// graphs; the Graph constructors in this package and in package gen do so.
func (g *Graph) InAdj(u int) []int32 {
	if !g.directed {
		return g.Adj(u)
	}
	return g.inTgts[g.inOffs[u]:g.inOffs[u+1]]
}

// InDegree returns the in-degree of u.
func (g *Graph) InDegree(u int) int {
	if !g.directed {
		return g.Degree(u)
	}
	return int(g.inOffs[u+1] - g.inOffs[u])
}

// buildIn constructs the reverse adjacency for directed graphs.
func (g *Graph) buildIn() {
	if !g.directed || g.inOffs != nil {
		return
	}
	deg := make([]int32, g.n+1)
	for _, v := range g.targets {
		deg[v+1]++
	}
	offs := make([]int32, g.n+1)
	for i := 0; i < g.n; i++ {
		offs[i+1] = offs[i] + deg[i+1]
	}
	tgts := make([]int32, len(g.targets))
	next := make([]int32, g.n)
	copy(next, offs[:g.n])
	for u := 0; u < g.n; u++ {
		for _, v := range g.Adj(u) {
			tgts[next[v]] = int32(u)
			next[v]++
		}
	}
	for u := 0; u < g.n; u++ {
		s := tgts[offs[u]:offs[u+1]]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	g.inOffs, g.inTgts = offs, tgts
}

// Edges calls fn for every edge. For undirected graphs each edge {u,v}
// is visited once with u < v; for directed graphs every arc u->v is
// visited. Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v int32) bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Adj(u) {
			if !g.directed && v < int32(u) {
				continue
			}
			if !fn(int32(u), v) {
				return
			}
		}
	}
}

// EdgeList materialises the edge list in the order of Edges.
func (g *Graph) EdgeList() [][2]int32 {
	out := make([][2]int32, 0, g.M())
	g.Edges(func(u, v int32) bool {
		out = append(out, [2]int32{u, v})
		return true
	})
	return out
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are dropped at Build time.
type Builder struct {
	n        int
	directed bool
	edges    [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int, directed bool) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, directed: directed}
}

// AddEdge records the edge u->v (or {u,v}). It panics on out-of-range
// endpoints; self-loops are silently ignored.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build finalises the graph.
func (b *Builder) Build() *Graph {
	type arc struct{ u, v int32 }
	arcs := make([]arc, 0, len(b.edges)*2)
	for _, e := range b.edges {
		arcs = append(arcs, arc{e[0], e[1]})
		if !b.directed {
			arcs = append(arcs, arc{e[1], e[0]})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		return arcs[i].v < arcs[j].v
	})
	// Dedupe.
	w := 0
	for i, a := range arcs {
		if i > 0 && a == arcs[i-1] {
			continue
		}
		arcs[w] = a
		w++
	}
	arcs = arcs[:w]

	g := &Graph{n: b.n, directed: b.directed}
	g.offs = make([]int32, b.n+1)
	g.targets = make([]int32, len(arcs))
	for i, a := range arcs {
		g.offs[a.u+1]++
		g.targets[i] = a.v
	}
	for i := 0; i < b.n; i++ {
		g.offs[i+1] += g.offs[i]
	}
	if b.directed {
		g.buildIn()
	}
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, directed bool, edges [][2]int32) *Graph {
	b := NewBuilder(n, directed)
	for _, e := range edges {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	return b.Build()
}
