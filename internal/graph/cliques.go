package graph

// Sequential 4-clique enumeration — the ground truth for the §1.2
// generalization of the distributed enumerator ("our techniques and
// results can be generalized to the enumeration of other small subgraphs
// such as cycles and cliques").

// Clique4 is a set of four mutually adjacent vertices, A < B < C < D.
type Clique4 struct {
	A, B, C, D int32
}

// EnumerateCliques4 calls fn for every 4-clique exactly once, in
// lexicographic order, extending the forward triangle algorithm by one
// intersection level. It panics on directed graphs.
func (g *Graph) EnumerateCliques4(fn func(c Clique4) bool) {
	if g.directed {
		panic("graph: EnumerateCliques4 on a directed graph")
	}
	g.EnumerateTriangles(func(t Triangle) bool {
		// Extend (A,B,C) by every common neighbour D > C.
		adjA, adjB, adjC := g.Adj(int(t.A)), g.Adj(int(t.B)), g.Adj(int(t.C))
		i := upper(adjA, t.C)
		j := upper(adjB, t.C)
		l := upper(adjC, t.C)
		for i < len(adjA) && j < len(adjB) && l < len(adjC) {
			switch {
			case adjA[i] < adjB[j] || adjA[i] < adjC[l]:
				i++
			case adjB[j] < adjA[i] || adjB[j] < adjC[l]:
				j++
			case adjC[l] < adjA[i] || adjC[l] < adjB[j]:
				l++
			default:
				if !fn(Clique4{t.A, t.B, t.C, adjA[i]}) {
					return false
				}
				i++
				j++
				l++
			}
		}
		return true
	})
}

// upper returns the index of the first element of the sorted slice s
// strictly greater than v.
func upper(s []int32, v int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CountCliques4 returns the number of 4-cliques.
func (g *Graph) CountCliques4() int64 {
	var c int64
	g.EnumerateCliques4(func(Clique4) bool { c++; return true })
	return c
}

// Cliques4 materialises the 4-clique list.
func (g *Graph) Cliques4() []Clique4 {
	var out []Clique4
	g.EnumerateCliques4(func(c Clique4) bool { out = append(out, c); return true })
	return out
}

// HashClique4 maps a 4-clique to a 64-bit fingerprint, invariant under
// vertex permutations (the clique is canonicalised first).
func HashClique4(c Clique4) uint64 {
	v := [4]int32{c.A, c.B, c.C, c.D}
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
	x := uint64(uint32(v[0]))<<48 ^ uint64(uint32(v[1]))<<32 ^ uint64(uint32(v[2]))<<16 ^ uint64(uint32(v[3]))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Clique4Checksum returns (count, xor-of-hashes) for a 4-clique set.
func Clique4Checksum(cs []Clique4) (count int64, xor uint64) {
	for _, c := range cs {
		xor ^= HashClique4(c)
	}
	return int64(len(cs)), xor
}
