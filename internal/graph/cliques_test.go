package graph

import (
	"testing"
	"testing/quick"

	"kmachine/internal/rng"
)

func bruteCliques4(g *Graph) []Clique4 {
	var out []Clique4
	n := g.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if !g.HasEdge(a, c) || !g.HasEdge(b, c) {
					continue
				}
				for d := c + 1; d < n; d++ {
					if g.HasEdge(a, d) && g.HasEdge(b, d) && g.HasEdge(c, d) {
						out = append(out, Clique4{int32(a), int32(b), int32(c), int32(d)})
					}
				}
			}
		}
	}
	return out
}

func TestCliques4MatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := randomGraph(seed, 24, 0.45)
		want := bruteCliques4(g)
		got := g.Cliques4()
		if len(got) != len(want) {
			t.Fatalf("seed %d: got %d cliques, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: clique %d = %v, want %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestCliques4CompleteGraph(t *testing.T) {
	// K_n has C(n,4) 4-cliques.
	for _, n := range []int{4, 6, 9} {
		b := NewBuilder(n, false)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		want := int64(n * (n - 1) * (n - 2) * (n - 3) / 24)
		if got := g.CountCliques4(); got != want {
			t.Errorf("K_%d: %d 4-cliques, want %d", n, got, want)
		}
	}
}

func TestCliques4TriangleFree(t *testing.T) {
	// A triangle alone has no 4-clique; a bipartite graph has none.
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	if got := b.Build().CountCliques4(); got != 0 {
		t.Errorf("triangle: %d 4-cliques, want 0", got)
	}
}

func TestCliques4EarlyStop(t *testing.T) {
	g := randomGraph(1, 20, 0.6)
	if g.CountCliques4() == 0 {
		t.Skip("no cliques at this seed")
	}
	calls := 0
	g.EnumerateCliques4(func(Clique4) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop made %d calls, want 1", calls)
	}
}

func TestHashClique4PermutationInvariant(t *testing.T) {
	r := rng.New(5)
	f := func(a, b, c, d uint8) bool {
		if a == b || a == c || a == d || b == c || b == d || c == d {
			return true
		}
		v := []int32{int32(a), int32(b), int32(c), int32(d)}
		h1 := HashClique4(Clique4{v[0], v[1], v[2], v[3]})
		rng.Shuffle(r, v)
		h2 := HashClique4(Clique4{v[0], v[1], v[2], v[3]})
		return h1 == h2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClique4ChecksumOrderIndependent(t *testing.T) {
	g := randomGraph(7, 22, 0.5)
	cs := g.Cliques4()
	if len(cs) < 2 {
		t.Skip("need at least two cliques")
	}
	c1, x1 := Clique4Checksum(cs)
	rev := make([]Clique4, len(cs))
	for i := range cs {
		rev[len(cs)-1-i] = cs[i]
	}
	c2, x2 := Clique4Checksum(rev)
	if c1 != c2 || x1 != x2 {
		t.Error("Clique4Checksum is order dependent")
	}
}

func TestUpper(t *testing.T) {
	s := []int32{1, 3, 3, 5, 9}
	cases := map[int32]int{0: 0, 1: 1, 2: 1, 3: 3, 4: 3, 9: 5, 10: 5}
	for v, want := range cases {
		if got := upper(s, v); got != want {
			t.Errorf("upper(%v, %d) = %d, want %d", s, v, got, want)
		}
	}
}
