package graph

// This file holds the two sequential PageRank ground truths used to
// validate the distributed Algorithm 1.
//
// The paper (§1.5) defines PageRank as the stationary distribution of the
// reset random walk: with probability eps restart at a uniform vertex,
// with probability 1-eps follow a uniformly random out-edge. Its upper
// bound (§3.1) estimates PageRank via the Monte-Carlo token process of
// Das Sarma et al. [20]: every vertex starts c·log n tokens, each token
// terminates with probability eps per step and otherwise moves to a
// random out-neighbour; the estimate is eps·psi(v)/(c·n·log n) where
// psi(v) counts all token visits to v (including starts).
//
// On graphs with dangling vertices (out-degree 0) the token process kills
// tokens at dangling vertices, which matches the arithmetic of the
// paper's Lemma 4 on the lower-bound graph H (vertex w is a sink). The
// linear system satisfied by the *expected* visit counts is
//
//	E[psi] = cLogN·1 + (1-eps)·Pᵀ·E[psi],
//
// where P is the out-degree-normalised adjacency with zero rows at
// dangling vertices. ExpectedVisitPageRank solves this system by
// fixed-point iteration (contraction factor 1-eps) and rescales, giving
// exactly the quantity the distributed algorithm approximates. On graphs
// without dangling vertices it coincides with classical PageRank up to
// normalisation.

// PageRankOptions configures the sequential solvers.
type PageRankOptions struct {
	// Eps is the reset probability (paper's ε). Must be in (0, 1).
	Eps float64
	// Tol is the L1 convergence tolerance for iterative solvers.
	Tol float64
	// MaxIter caps the number of iterations.
	MaxIter int
}

// DefaultPageRankOptions returns the options used throughout the
// experiments: eps = 0.15 (the classical damping complement), 1e-12
// tolerance.
func DefaultPageRankOptions() PageRankOptions {
	return PageRankOptions{Eps: 0.15, Tol: 1e-12, MaxIter: 10000}
}

// PowerIterationPageRank computes the classical PageRank vector with
// reset probability opts.Eps by power iteration. Dangling vertices
// redistribute their mass uniformly (the standard convention); on graphs
// without dangling vertices this equals the paper's stationary
// distribution. The returned vector sums to 1.
func PowerIterationPageRank(g *Graph, opts PageRankOptions) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	validateOpts(opts)
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		base := opts.Eps / float64(n)
		var danglingMass float64
		for u := 0; u < n; u++ {
			if g.Degree(u) == 0 {
				danglingMass += pr[u]
			}
		}
		spread := (1 - opts.Eps) * danglingMass / float64(n)
		for i := range next {
			next[i] = base + spread
		}
		for u := 0; u < n; u++ {
			d := g.Degree(u)
			if d == 0 {
				continue
			}
			share := (1 - opts.Eps) * pr[u] / float64(d)
			for _, v := range g.Adj(u) {
				next[v] += share
			}
		}
		var delta float64
		for i := range pr {
			if d := next[i] - pr[i]; d >= 0 {
				delta += d
			} else {
				delta -= d
			}
		}
		pr, next = next, pr
		if delta < opts.Tol {
			break
		}
	}
	return pr
}

// ExpectedVisitPageRank computes the PageRank estimate that the
// Monte-Carlo token process converges to: eps·E[psi(v)]/n where E[psi]
// solves the killed-walk visit system with per-vertex unit start mass
// (the c·log n factor cancels in the estimate). Tokens at dangling
// vertices die. The result sums to at most 1 (strictly less when
// dangling vertices absorb walk mass).
func ExpectedVisitPageRank(g *Graph, opts PageRankOptions) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	validateOpts(opts)
	psi := make([]float64, n)
	next := make([]float64, n)
	for i := range psi {
		psi[i] = 1
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := range next {
			next[i] = 1
		}
		for u := 0; u < n; u++ {
			d := g.Degree(u)
			if d == 0 {
				continue
			}
			share := (1 - opts.Eps) * psi[u] / float64(d)
			for _, v := range g.Adj(u) {
				next[v] += share
			}
		}
		var delta float64
		for i := range psi {
			if d := next[i] - psi[i]; d >= 0 {
				delta += d
			} else {
				delta -= d
			}
		}
		psi, next = next, psi
		if delta < opts.Tol {
			break
		}
	}
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = opts.Eps * psi[i] / float64(n)
	}
	return pr
}

func validateOpts(opts PageRankOptions) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		panic("graph: PageRank reset probability must be in (0,1)")
	}
	if opts.MaxIter <= 0 {
		panic("graph: PageRank MaxIter must be positive")
	}
}
