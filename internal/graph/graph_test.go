package graph

import (
	"math"
	"testing"
	"testing/quick"

	"kmachine/internal/rng"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop dropped
	g := b.Build()
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge {0,1} missing in one direction")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge {0,2}")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestDirectedInAdjacency(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if g.Degree(2) != 1 {
		t.Errorf("out-degree(2) = %d, want 1", g.Degree(2))
	}
	if g.InDegree(2) != 2 {
		t.Errorf("in-degree(2) = %d, want 2", g.InDegree(2))
	}
	in := g.InAdj(2)
	if len(in) != 2 || in[0] != 0 || in[1] != 1 {
		t.Errorf("InAdj(2) = %v, want [0 1]", in)
	}
	if g.HasEdge(2, 0) {
		t.Error("directed graph has reverse edge 2->0")
	}
}

func TestEdgesVisitsEachOnce(t *testing.T) {
	b := NewBuilder(5, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	seen := map[[2]int32]int{}
	g.Edges(func(u, v int32) bool {
		if u >= v {
			t.Errorf("undirected Edges yielded unordered pair (%d,%d)", u, v)
		}
		seen[[2]int32{u, v}]++
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("Edges visited %d edges, want 3", len(seen))
	}
	for e, c := range seen {
		if c != 1 {
			t.Errorf("edge %v visited %d times", e, c)
		}
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	visits := 0
	g.Edges(func(u, v int32) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early-stopping Edges made %d visits, want 1", visits)
	}
}

func TestAdjacencySorted(t *testing.T) {
	r := rng.New(7)
	b := NewBuilder(50, false)
	for i := 0; i < 300; i++ {
		b.AddEdge(r.Intn(50), r.Intn(50))
	}
	g := b.Build()
	for u := 0; u < g.N(); u++ {
		adj := g.Adj(u)
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("Adj(%d) not strictly sorted: %v", u, adj)
			}
		}
	}
}

// triangle ground truth by brute force for cross-checking.
func bruteTriangles(g *Graph) []Triangle {
	var out []Triangle
	n := g.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					out = append(out, Triangle{int32(a), int32(b), int32(c)})
				}
			}
		}
	}
	return out
}

func randomGraph(seed uint64, n int, p float64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bernoulli(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestEnumerateTrianglesMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := randomGraph(seed, 30, 0.3)
		want := bruteTriangles(g)
		got := g.Triangles()
		if len(got) != len(want) {
			t.Fatalf("seed %d: got %d triangles, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: triangle %d = %v, want %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestCountTrianglesCompleteGraph(t *testing.T) {
	// K_n has C(n,3) triangles.
	for _, n := range []int{3, 4, 5, 8, 12} {
		b := NewBuilder(n, false)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		want := int64(n * (n - 1) * (n - 2) / 6)
		if got := g.CountTriangles(); got != want {
			t.Errorf("K_%d: %d triangles, want %d", n, got, want)
		}
	}
}

func TestTrianglesEarlyStop(t *testing.T) {
	g := randomGraph(1, 20, 0.5)
	calls := 0
	g.EnumerateTriangles(func(Triangle) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop made %d calls, want 1", calls)
	}
}

func TestTriadsStarGraph(t *testing.T) {
	// A star K_{1,d} has C(d,2) open triads centred at the hub and none
	// elsewhere.
	const d = 10
	b := NewBuilder(d+1, false)
	for i := 1; i <= d; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	want := int64(d * (d - 1) / 2)
	if got := g.CountTriads(); got != want {
		t.Errorf("star triads = %d, want %d", got, want)
	}
	g.EnumerateTriads(func(tr Triad) bool {
		if tr.Center != 0 {
			t.Errorf("triad centred at %d, want hub 0", tr.Center)
		}
		if tr.Left >= tr.Right {
			t.Errorf("triad endpoints unordered: %+v", tr)
		}
		return true
	})
}

func TestTriadsPlusTrianglesCountPaths(t *testing.T) {
	// Every path of length 2 (centre u, unordered endpoints) is either an
	// open triad or part of a triangle: sum_u C(deg(u),2) =
	// triads + 3*triangles.
	for seed := uint64(0); seed < 4; seed++ {
		g := randomGraph(seed, 40, 0.2)
		var paths int64
		for u := 0; u < g.N(); u++ {
			d := int64(g.Degree(u))
			paths += d * (d - 1) / 2
		}
		if got := g.CountTriads() + 3*g.CountTriangles(); got != paths {
			t.Errorf("seed %d: triads+3*triangles = %d, want %d", seed, got, paths)
		}
	}
}

func TestPowerIterationUniformOnCycle(t *testing.T) {
	// On a directed cycle every vertex has PageRank 1/n by symmetry.
	const n = 10
	b := NewBuilder(n, true)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	g := b.Build()
	pr := PowerIterationPageRank(g, DefaultPageRankOptions())
	for i, v := range pr {
		if math.Abs(v-1.0/n) > 1e-9 {
			t.Errorf("cycle PageRank[%d] = %g, want %g", i, v, 1.0/n)
		}
	}
}

func TestPowerIterationSumsToOne(t *testing.T) {
	r := rng.New(11)
	b := NewBuilder(30, true)
	for i := 0; i < 120; i++ {
		b.AddEdge(r.Intn(30), r.Intn(30))
	}
	g := b.Build()
	pr := PowerIterationPageRank(g, DefaultPageRankOptions())
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank sums to %g, want 1", sum)
	}
}

func TestPowerIterationStarFavoursHub(t *testing.T) {
	// Directed star: all leaves point at the hub; hub's PageRank must
	// dominate every leaf's.
	const n = 20
	b := NewBuilder(n, true)
	for i := 1; i < n; i++ {
		b.AddEdge(i, 0)
	}
	g := b.Build()
	pr := PowerIterationPageRank(g, DefaultPageRankOptions())
	for i := 1; i < n; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("hub PageRank %g not above leaf %d's %g", pr[0], i, pr[i])
		}
	}
}

func TestExpectedVisitMatchesHandComputation(t *testing.T) {
	// Chain a -> b -> c (c dangling). Unit starts; expected visits:
	// psi(a) = 1, psi(b) = 1 + (1-eps), psi(c) = 1 + (1-eps) + (1-eps)^2.
	opts := DefaultPageRankOptions()
	q := 1 - opts.Eps
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	pr := ExpectedVisitPageRank(g, opts)
	want := []float64{
		opts.Eps * 1 / 3,
		opts.Eps * (1 + q) / 3,
		opts.Eps * (1 + q + q*q) / 3,
	}
	for i := range want {
		if math.Abs(pr[i]-want[i]) > 1e-9 {
			t.Errorf("expected-visit PR[%d] = %g, want %g", i, pr[i], want[i])
		}
	}
}

func TestExpectedVisitEqualsClassicalWithoutDangling(t *testing.T) {
	// On a graph with no dangling vertices the killed walk never loses
	// mass, so the expected-visit estimate equals classical PageRank.
	const n = 12
	b := NewBuilder(n, true)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		b.AddEdge(i, (i+5)%n)
	}
	g := b.Build()
	opts := DefaultPageRankOptions()
	a := PowerIterationPageRank(g, opts)
	bb := ExpectedVisitPageRank(g, opts)
	for i := range a {
		if math.Abs(a[i]-bb[i]) > 1e-8 {
			t.Errorf("vertex %d: classical %g vs expected-visit %g", i, a[i], bb[i])
		}
	}
}

func TestPageRankOptionValidation(t *testing.T) {
	g := NewBuilder(2, true).Build()
	for _, eps := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%g did not panic", eps)
				}
			}()
			PowerIterationPageRank(g, PageRankOptions{Eps: eps, MaxIter: 10})
		}()
	}
}

func TestTriangleChecksumOrderIndependent(t *testing.T) {
	g := randomGraph(3, 25, 0.4)
	ts := g.Triangles()
	count1, x1 := TriangleChecksum(ts)
	rev := make([]Triangle, len(ts))
	for i := range ts {
		rev[len(ts)-1-i] = ts[i]
	}
	count2, x2 := TriangleChecksum(rev)
	if count1 != count2 || x1 != x2 {
		t.Error("TriangleChecksum is order dependent")
	}
}

func TestHashTrianglePermutationInvariant(t *testing.T) {
	f := func(a, b, c uint8) bool {
		if a == b || b == c || a == c {
			return true
		}
		t1 := Triangle{int32(a), int32(b), int32(c)}
		t2 := Triangle{int32(c), int32(a), int32(b)}
		return HashTriangle(t1) == HashTriangle(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnumerateTrianglesPanicsOnDirected(t *testing.T) {
	g := NewBuilder(3, true).Build()
	defer func() {
		if recover() == nil {
			t.Fatal("EnumerateTriangles on directed graph did not panic")
		}
	}()
	g.EnumerateTriangles(func(Triangle) bool { return true })
}

func TestFromEdgesRoundTrip(t *testing.T) {
	g := randomGraph(9, 20, 0.3)
	g2 := FromEdges(g.N(), false, g.EdgeList())
	if g2.M() != g.M() {
		t.Fatalf("round-trip M = %d, want %d", g2.M(), g.M())
	}
	g.Edges(func(u, v int32) bool {
		if !g2.HasEdge(int(u), int(v)) {
			t.Errorf("round-trip lost edge (%d,%d)", u, v)
		}
		return true
	})
}

func TestMaxDegree(t *testing.T) {
	b := NewBuilder(5, false)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	g := b.Build()
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
}
