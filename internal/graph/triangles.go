package graph

// Sequential triangle and open-triad enumeration, the ground truths for
// the distributed enumerators of §3.2.

// Triangle is a set of three mutually adjacent vertices, stored with
// A < B < C.
type Triangle struct {
	A, B, C int32
}

// Triad is an open triad (paper §1.2/§1.5): three vertices with exactly
// two edges, Center adjacent to both Left and Right, Left < Right, and
// {Left, Right} not an edge.
type Triad struct {
	Center, Left, Right int32
}

// EnumerateTriangles calls fn for every triangle of the undirected graph
// exactly once, in lexicographic order. It uses the standard "forward"
// algorithm: for every vertex u and every pair of higher neighbours
// (v, w) of u with v < w, report (u,v,w) when {v,w} is an edge.
// Enumeration stops early when fn returns false. It panics on directed
// graphs: triangle enumeration in the paper is an undirected problem.
func (g *Graph) EnumerateTriangles(fn func(t Triangle) bool) {
	if g.directed {
		panic("graph: EnumerateTriangles on a directed graph")
	}
	for u := 0; u < g.n; u++ {
		adj := g.Adj(u)
		// Skip to neighbours greater than u.
		i := 0
		for i < len(adj) && adj[i] <= int32(u) {
			i++
		}
		higher := adj[i:]
		for a := 0; a < len(higher); a++ {
			for b := a + 1; b < len(higher); b++ {
				if g.HasEdge(int(higher[a]), int(higher[b])) {
					if !fn(Triangle{int32(u), higher[a], higher[b]}) {
						return
					}
				}
			}
		}
	}
}

// CountTriangles returns the number of triangles.
func (g *Graph) CountTriangles() int64 {
	var c int64
	g.EnumerateTriangles(func(Triangle) bool { c++; return true })
	return c
}

// Triangles materialises the full triangle list (lexicographic order).
func (g *Graph) Triangles() []Triangle {
	var out []Triangle
	g.EnumerateTriangles(func(t Triangle) bool { out = append(out, t); return true })
	return out
}

// EnumerateTriads calls fn for every open triad exactly once: for every
// centre u and every pair of neighbours v < w of u such that {v,w} is
// not an edge. Stops early when fn returns false.
func (g *Graph) EnumerateTriads(fn func(t Triad) bool) {
	if g.directed {
		panic("graph: EnumerateTriads on a directed graph")
	}
	for u := 0; u < g.n; u++ {
		adj := g.Adj(u)
		for a := 0; a < len(adj); a++ {
			for b := a + 1; b < len(adj); b++ {
				if !g.HasEdge(int(adj[a]), int(adj[b])) {
					if !fn(Triad{int32(u), adj[a], adj[b]}) {
						return
					}
				}
			}
		}
	}
}

// CountTriads returns the number of open triads.
func (g *Graph) CountTriads() int64 {
	var c int64
	g.EnumerateTriads(func(Triad) bool { c++; return true })
	return c
}

// TriangleChecksum returns an order-independent fingerprint of the
// triangle set: the XOR of a mixed hash of every triangle, plus the
// count. Distributed enumerators compare their aggregate output against
// this fingerprint so that large runs can be verified without
// materialising and sorting both triangle lists.
func TriangleChecksum(ts []Triangle) (count int64, xor uint64) {
	for _, t := range ts {
		xor ^= HashTriangle(t)
	}
	return int64(len(ts)), xor
}

// TriadChecksum returns an order-independent fingerprint (count, XOR of
// HashTriad) of a triad set, mirroring TriangleChecksum.
func TriadChecksum(ts []Triad) (count int64, xor uint64) {
	for _, t := range ts {
		xor ^= HashTriad(t)
	}
	return int64(len(ts)), xor
}

// HashTriad maps an open triad to a 64-bit fingerprint. The endpoint pair
// is canonicalised (sorted); the centre is distinguished, since
// (c; {l, r}) and (l; {c, r}) are different triads.
func HashTriad(t Triad) uint64 {
	l, r := t.Left, t.Right
	if l > r {
		l, r = r, l
	}
	x := uint64(uint32(t.Center))<<42 ^ uint64(uint32(l))<<21 ^ uint64(uint32(r)) ^ 0xabcd1234ef56789a
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashTriangle maps a triangle to a 64-bit fingerprint. The triangle is
// canonicalised (sorted) first, so permutations of the same vertex set
// collide by design.
func HashTriangle(t Triangle) uint64 {
	a, b, c := t.A, t.B, t.C
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	x := uint64(uint32(a))<<42 ^ uint64(uint32(b))<<21 ^ uint64(uint32(c))
	// SplitMix64 finalizer inline to avoid an import cycle with rng.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
