// Package gen generates the graph families used throughout the paper's
// arguments and this reproduction's experiments:
//
//   - Gnp / Gnm Erdős–Rényi graphs — the triangle lower bound (Theorem 3)
//     samples inputs from G(n, 1/2);
//   - the Figure-1 lower-bound graph H for PageRank (Theorem 2), with its
//     random edge-direction bit vector and random vertex-ID obfuscation;
//   - stars and preferential-attachment (power-law) graphs — the skewed
//     inputs on which the congestion-avoidance machinery of §3
//     (aggregation, heavy-vertex handling, proxies) is exercised;
//   - paths, cycles, complete and complete-bipartite graphs for
//     closed-form sanity checks;
//   - planted-triangle graphs for sparse enumeration tests.
//
// All generators are deterministic given their seed.
package gen

import (
	"fmt"
	"math"

	"kmachine/internal/graph"
	"kmachine/internal/rng"
)

// Gnp samples an undirected Erdős–Rényi G(n, p) graph using
// Batagelj–Brandes geometric skipping (linear in the number of edges).
func Gnp(n int, p float64, seed uint64) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: Gnp probability %v out of [0,1]", p))
	}
	b := graph.NewBuilder(n, false)
	if p == 0 || n < 2 {
		return b.Build()
	}
	r := rng.New(seed)
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.Build()
	}
	// Walk the strictly-upper-triangular pair sequence with geometric
	// skips of parameter p.
	lq := math.Log1p(-p)
	v, w := 1, -1
	for v < n {
		w += 1 + int(math.Floor(math.Log(1-r.Float64())/lq))
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(v, w)
		}
	}
	return b.Build()
}

// DirectedGnp samples a directed G(n, p): every ordered pair (u,v),
// u != v, is an arc independently with probability p.
func DirectedGnp(n int, p float64, seed uint64) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: DirectedGnp probability %v out of [0,1]", p))
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && r.Bernoulli(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// Gnm samples an undirected graph with exactly m distinct edges chosen
// uniformly from all pairs. It panics if m exceeds C(n,2).
func Gnm(n, m int, seed uint64) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("gen: Gnm wants %d edges but K_%d has only %d", m, n, maxM))
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n, false)
	seen := make(map[[2]int32]struct{}, m)
	for len(seen) < m {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int32{int32(u), int32(v)}
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// Star returns the undirected star K_{1,n-1} with hub 0. The star is the
// paper's running example (§3.1) of a topology whose naive simulation
// congests one machine.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// DirectedStarIn returns the directed star with all arcs pointing at
// hub 0 (the congestion example for PageRank token delivery).
func DirectedStarIn(n int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	for i := 1; i < n; i++ {
		b.AddEdge(i, 0)
	}
	return b.Build()
}

// Path returns the undirected path 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the undirected cycle on n vertices (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle needs n >= 3")
	}
	b := graph.NewBuilder(n, false)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// DirectedCycle returns the directed cycle 0->1->...->0.
func DirectedCycle(n int) *graph.Graph {
	if n < 2 {
		panic("gen: DirectedCycle needs n >= 2")
	}
	b := graph.NewBuilder(n, true)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with parts [0,a) and [a,a+b).
func CompleteBipartite(a, b int) *graph.Graph {
	bl := graph.NewBuilder(a+b, false)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bl.AddEdge(u, v)
		}
	}
	return bl.Build()
}

// PreferentialAttachment grows a Barabási–Albert style power-law graph:
// vertices arrive one at a time and attach `attach` edges to existing
// vertices chosen proportionally to degree (+1 smoothing). The result
// has heavy-tailed degrees — the regime where the paper's heavy-vertex
// and proxy machinery matters.
func PreferentialAttachment(n, attach int, seed uint64) *graph.Graph {
	if attach < 1 {
		panic("gen: PreferentialAttachment needs attach >= 1")
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n, false)
	// Repeated-endpoint list: vertex v appears deg(v)+1 times.
	endpoints := make([]int32, 0, 2*n*attach)
	for v := 0; v < n && v <= attach; v++ {
		endpoints = append(endpoints, int32(v))
		for u := 0; u < v; u++ {
			b.AddEdge(u, v)
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}
	for v := attach + 1; v < n; v++ {
		chosen := map[int32]struct{}{}
		for len(chosen) < attach {
			u := endpoints[r.Intn(len(endpoints))]
			if int(u) == v {
				continue
			}
			chosen[u] = struct{}{}
		}
		endpoints = append(endpoints, int32(v))
		for u := range chosen {
			b.AddEdge(int(u), v)
			endpoints = append(endpoints, u, int32(v))
		}
	}
	return b.Build()
}

// PlantedTriangles returns a sparse graph consisting of t vertex-disjoint
// triangles plus `extra` random non-closing chord attempts, so that the
// exact triangle set is known by construction when extra == 0.
func PlantedTriangles(t int, extra int, seed uint64) *graph.Graph {
	n := 3 * t
	r := rng.New(seed)
	b := graph.NewBuilder(n, false)
	for i := 0; i < t; i++ {
		a, bb, c := 3*i, 3*i+1, 3*i+2
		b.AddEdge(a, bb)
		b.AddEdge(bb, c)
		b.AddEdge(a, c)
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u/3 != v/3 { // never add chords inside a planted triangle group
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
