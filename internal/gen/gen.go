// Package gen generates the graph families used throughout the paper's
// arguments and this reproduction's experiments:
//
//   - Gnp / Gnm Erdős–Rényi graphs — the triangle lower bound (Theorem 3)
//     samples inputs from G(n, 1/2);
//   - the Figure-1 lower-bound graph H for PageRank (Theorem 2), with its
//     random edge-direction bit vector and random vertex-ID obfuscation;
//   - stars and preferential-attachment (power-law) graphs — the skewed
//     inputs on which the congestion-avoidance machinery of §3
//     (aggregation, heavy-vertex handling, proxies) is exercised;
//   - paths, cycles, complete and complete-bipartite graphs for
//     closed-form sanity checks;
//   - planted-triangle graphs for sparse enumeration tests.
//
// All generators are deterministic given their seed.
//
// # Per-row canonical form
//
// The random families (Gnp, DirectedGnp, Gnm, PreferentialAttachment)
// are defined by a canonical edge stream that a shard builder can replay
// (shard.go): Gnp and DirectedGnp derive one independent RNG stream per
// adjacency row (rowRNG), so row u's edges are a pure function of
// (seed, u) and the union of any row subset is bit-identical to the
// corresponding slice of the full graph; Gnm and PreferentialAttachment
// keep a single sequential stream (global dedupe and global degree state
// are inherent to those models) that shard builders replay while
// retaining only their machine's rows. The full constructors below and
// the *Shard constructors consume the SAME streams, which is what makes
// sharded and fully-materialised setup bit-identical by construction.
package gen

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"kmachine/internal/graph"
	"kmachine/internal/rng"
)

// rowRNG returns the independent RNG stream of adjacency row u: the
// per-row seeding that makes every row a pure function of (seed, u).
func rowRNG(seed uint64, u int32) *rng.RNG {
	return rng.NewStream(seed, uint64(uint32(u)))
}

// gnpRow emits row u of the canonical G(n, p) upper-triangular form: the
// neighbours v in (u, n) chosen by row u's stream with Batagelj–Brandes
// geometric skipping, so the expected work per row is O(p·(n-u)), not
// O(n). The undirected edge {u,v}, u < v, exists iff row u emits v.
func gnpRow(n int, p float64, seed uint64, u int32, emit func(v int32)) {
	if p >= 1 {
		for v := int(u) + 1; v < n; v++ {
			emit(int32(v))
		}
		return
	}
	r := rowRNG(seed, u)
	lq := math.Log1p(-p)
	v := int(u)
	for {
		g := math.Floor(math.Log(1-r.Float64()) / lq)
		if g >= float64(n-v-1) { // v + 1 + g would leave the row
			return
		}
		v += 1 + int(g)
		emit(int32(v))
	}
}

// gnpStream replays the canonical G(n, p) edge stream: every row in
// order, each edge {u,v} (u < v) emitted once.
func gnpStream(n int, p float64, seed uint64, emit func(u, v int32)) {
	if p <= 0 || n < 2 {
		return
	}
	for u := 0; u < n-1; u++ {
		gnpRow(n, p, seed, int32(u), func(v int32) { emit(int32(u), v) })
	}
}

// Gnp samples an undirected Erdős–Rényi G(n, p) graph in its per-row
// canonical form (see the package comment): row-seeded geometric
// skipping, linear in the number of edges.
func Gnp(n int, p float64, seed uint64) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: Gnp probability %v out of [0,1]", p))
	}
	b := graph.NewBuilder(n, false)
	gnpStream(n, p, seed, func(u, v int32) { b.AddEdge(int(u), int(v)) })
	return b.Build()
}

// directedGnpRow emits row u of the canonical directed G(n, p): the
// out-neighbours of u, chosen from [0,n)\{u} by row u's stream with
// geometric skipping over the n-1 candidate slots.
func directedGnpRow(n int, p float64, seed uint64, u int32, emit func(v int32)) {
	if p >= 1 {
		for v := 0; v < n; v++ {
			if int32(v) != u {
				emit(int32(v))
			}
		}
		return
	}
	r := rowRNG(seed, u)
	lq := math.Log1p(-p)
	slot := -1 // slots 0..n-2 map to columns skipping u
	for {
		g := math.Floor(math.Log(1-r.Float64()) / lq)
		if g >= float64(n-1-slot-1) {
			return
		}
		slot += 1 + int(g)
		col := int32(slot)
		if col >= u {
			col++
		}
		emit(col)
	}
}

// DirectedGnp samples a directed G(n, p) in per-row canonical form:
// every ordered pair (u,v), u != v, is an arc independently with
// probability p, decided by row u's stream.
func DirectedGnp(n int, p float64, seed uint64) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: DirectedGnp probability %v out of [0,1]", p))
	}
	b := graph.NewBuilder(n, true)
	if p > 0 {
		for u := 0; u < n; u++ {
			directedGnpRow(n, p, seed, int32(u), func(v int32) { b.AddEdge(u, int(v)) })
		}
	}
	return b.Build()
}

// gnmStream replays the canonical G(n, m) edge stream: the first m
// distinct unordered pairs of the seed's candidate sequence (pairs drawn
// uniformly, self-pairs skipped). The dedupe is slice-based — sample,
// sort, count, top up — so the stream allocates a few flat slices
// instead of a map of every edge (see BenchmarkGnm).
func gnmStream(n, m int, seed uint64, emit func(u, v int32)) {
	if m == 0 {
		return
	}
	r := rng.New(seed)
	draws := make([][2]int32, 0, m+m/8+8)
	// Draw in batches until the draw sequence contains >= m distinct
	// pairs; near-clique inputs need the top-up rounds (coupon
	// collector), sparse ones finish in one.
	distinct := 0
	scratch := make([][2]int32, 0, m+m/8+8)
	for distinct < m {
		need := m - distinct
		need += need/8 + 1
		for i := 0; i < need; i++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			draws = append(draws, [2]int32{u, v})
		}
		scratch = append(scratch[:0], draws...)
		sort.Slice(scratch, func(i, j int) bool {
			if scratch[i][0] != scratch[j][0] {
				return scratch[i][0] < scratch[j][0]
			}
			return scratch[i][1] < scratch[j][1]
		})
		distinct = 0
		for i, p := range scratch {
			if i == 0 || p != scratch[i-1] {
				distinct++
			}
		}
	}
	// The canonical edge set is the first m distinct pairs in DRAW
	// order: sort draw indices by (pair, index), keep each pair's first
	// occurrence, then take the m earliest first-occurrences.
	idx := make([]int32, len(draws))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := draws[idx[a]], draws[idx[b]]
		if pa != pb {
			if pa[0] != pb[0] {
				return pa[0] < pb[0]
			}
			return pa[1] < pb[1]
		}
		return idx[a] < idx[b]
	})
	firsts := idx[:0]
	for i, id := range idx {
		if i == 0 || draws[id] != draws[idx[i-1]] {
			firsts = append(firsts, id)
		} else if firsts[len(firsts)-1] > id { // kept a later occurrence
			firsts[len(firsts)-1] = id
		}
	}
	slices.Sort(firsts)
	for _, id := range firsts[:m] {
		emit(draws[id][0], draws[id][1])
	}
}

// Gnm samples an undirected graph with exactly m distinct edges chosen
// uniformly from all pairs. It panics if m exceeds C(n,2).
func Gnm(n, m int, seed uint64) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("gen: Gnm wants %d edges but K_%d has only %d", m, n, maxM))
	}
	b := graph.NewBuilder(n, false)
	gnmStream(n, m, seed, func(u, v int32) { b.AddEdge(int(u), int(v)) })
	return b.Build()
}

// Star returns the undirected star K_{1,n-1} with hub 0. The star is the
// paper's running example (§3.1) of a topology whose naive simulation
// congests one machine.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// DirectedStarIn returns the directed star with all arcs pointing at
// hub 0 (the congestion example for PageRank token delivery).
func DirectedStarIn(n int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	for i := 1; i < n; i++ {
		b.AddEdge(i, 0)
	}
	return b.Build()
}

// Path returns the undirected path 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the undirected cycle on n vertices (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle needs n >= 3")
	}
	b := graph.NewBuilder(n, false)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// DirectedCycle returns the directed cycle 0->1->...->0.
func DirectedCycle(n int) *graph.Graph {
	if n < 2 {
		panic("gen: DirectedCycle needs n >= 2")
	}
	b := graph.NewBuilder(n, true)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with parts [0,a) and [a,a+b).
func CompleteBipartite(a, b int) *graph.Graph {
	bl := graph.NewBuilder(a+b, false)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bl.AddEdge(u, v)
		}
	}
	return bl.Build()
}

// paStream replays the canonical preferential-attachment stream: the
// seed graph's clique edges, then each arriving vertex's `attach`
// endpoints drawn degree-proportionally (repeated-endpoint list, +1
// smoothing) in a fixed order. The chosen endpoints of each vertex are
// sorted before being appended to the endpoint list, so the stream — and
// therefore the graph — is a pure function of (n, attach, seed); the
// pre-fix code appended them in Go map iteration order, which silently
// broke the package's seed-determinism promise for every later draw.
func paStream(n, attach int, seed uint64, emit func(u, v int32)) {
	r := rng.New(seed)
	endpoints := make([]int32, 0, 2*n*attach)
	for v := 0; v < n && v <= attach; v++ {
		endpoints = append(endpoints, int32(v))
		for u := 0; u < v; u++ {
			emit(int32(u), int32(v))
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}
	chosen := make([]int32, 0, attach)
	for v := attach + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < attach {
			u := endpoints[r.Intn(len(endpoints))]
			if int(u) == v || slices.Contains(chosen, u) {
				continue
			}
			chosen = append(chosen, u)
		}
		slices.Sort(chosen)
		endpoints = append(endpoints, int32(v))
		for _, u := range chosen {
			emit(u, int32(v))
			endpoints = append(endpoints, u, int32(v))
		}
	}
}

// PreferentialAttachment grows a Barabási–Albert style power-law graph:
// vertices arrive one at a time and attach `attach` edges to existing
// vertices chosen proportionally to degree (+1 smoothing). The result
// has heavy-tailed degrees — the regime where the paper's heavy-vertex
// and proxy machinery matters.
func PreferentialAttachment(n, attach int, seed uint64) *graph.Graph {
	if attach < 1 {
		panic("gen: PreferentialAttachment needs attach >= 1")
	}
	b := graph.NewBuilder(n, false)
	paStream(n, attach, seed, func(u, v int32) { b.AddEdge(int(u), int(v)) })
	return b.Build()
}

// PlantedTriangles returns a sparse graph consisting of t vertex-disjoint
// triangles plus `extra` random non-closing chord attempts, so that the
// exact triangle set is known by construction when extra == 0.
func PlantedTriangles(t int, extra int, seed uint64) *graph.Graph {
	n := 3 * t
	r := rng.New(seed)
	b := graph.NewBuilder(n, false)
	for i := 0; i < t; i++ {
		a, bb, c := 3*i, 3*i+1, 3*i+2
		b.AddEdge(a, bb)
		b.AddEdge(bb, c)
		b.AddEdge(a, c)
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u/3 != v/3 { // never add chords inside a planted triangle group
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
