// Out-of-core edge-list ingest: stream a text edge list from disk
// straight into a per-machine CSR shard, so a real dataset can be run
// without any process ever materialising the full graph.
//
// File format: one edge per line, "u v" with whitespace separation;
// blank lines and lines starting with '#' are skipped. Vertex IDs are
// 0-based and must lie in [0, n); n is not stored in the file — it comes
// from the problem (kmnode -n). For undirected graphs each line is the
// edge {u,v}; for directed graphs it is the arc u->v.
package gen

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

// ScanEdgeList streams the edge list from r, calling emit for every edge
// line. It validates syntax and vertex range and reports errors with
// line numbers.
func ScanEdgeList(r io.Reader, n int, emit func(u, v int32)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		u, v, skip, err := parseEdgeLine(sc.Bytes(), n)
		if err != nil {
			return fmt.Errorf("gen: edge list line %d: %w", lineNo, err)
		}
		if skip {
			continue
		}
		emit(u, v)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("gen: edge list read: %w", err)
	}
	return nil
}

// parseEdgeLine parses "u v" from one line without allocating. skip is
// true for blank and comment lines.
func parseEdgeLine(line []byte, n int) (u, v int32, skip bool, err error) {
	i := 0
	skipWS := func() {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
	}
	number := func() (int64, error) {
		start := i
		var x int64
		for i < len(line) && line[i] >= '0' && line[i] <= '9' {
			x = x*10 + int64(line[i]-'0')
			if x > int64(1)<<40 {
				return 0, fmt.Errorf("vertex ID out of range")
			}
			i++
		}
		if i == start {
			return 0, fmt.Errorf("expected vertex ID")
		}
		if x >= int64(n) {
			return 0, fmt.Errorf("vertex %d out of range [0,%d)", x, n)
		}
		return x, nil
	}
	skipWS()
	if i == len(line) || line[i] == '#' {
		return 0, 0, true, nil
	}
	uu, err := number()
	if err != nil {
		return 0, 0, false, err
	}
	skipWS()
	vv, err := number()
	if err != nil {
		return 0, 0, false, err
	}
	skipWS()
	if i != len(line) && line[i] != '#' {
		return 0, 0, false, fmt.Errorf("trailing garbage after edge")
	}
	return int32(uu), int32(vv), false, nil
}

// ReadEdgeListGraph fully materialises the edge list at path — the
// baseline against which IngestEdgeList's sharded CSRs are compared.
func ReadEdgeListGraph(path string, n int, directed bool) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := graph.NewBuilder(n, directed)
	if err := ScanEdgeList(f, n, func(u, v int32) { b.AddEdge(int(u), int(v)) }); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// IngestEdgeList streams the edge list at path into machine m's CSR
// shard: O(file) I/O, O((n+m)/k) retained memory, no global graph
// object. The file may be the full edge list or a per-machine split
// (cliutil's splitter) — any superset of m's incident edges ingests to
// the identical shard, because the LocalBuilder drops remote-remote
// lines.
func IngestEdgeList(path string, ps partition.Spec, directed bool, m core.MachineID) (*partition.LocalView, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lb := partition.NewLocalBuilder(ps, m, directed)
	if err := ScanEdgeList(f, ps.N, lb.AddArc); err != nil {
		return nil, err
	}
	return lb.Build(), nil
}

// EdgeListInput returns the ShardedInput that ingests each machine's
// shard from the edge list at path.
func EdgeListInput(path string, ps partition.Spec, directed bool) *partition.ShardedInput {
	return &partition.ShardedInput{
		Spec: ps,
		BuildShard: func(m core.MachineID) (*partition.LocalView, error) {
			return IngestEdgeList(path, ps, directed, m)
		},
	}
}

// WriteEdgeList writes g in the ingest file format: each undirected edge
// once as "u v" with u < v, each directed arc once.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(u, v int32) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
