// Shard constructors: machine m's partition-local view of each generator
// family, built without ever materialising a *graph.Graph. Each replays
// the SAME canonical edge stream as the full constructor in gen.go
// through a partition.LocalBuilder, which retains only the arcs incident
// to m's Home-owned vertices — so the union of all k shards is
// bit-identical to the full graph by construction (asserted per
// generator by the shard/full equivalence suite).
//
// Cost note: under a hashed RVP the random families must REPLAY the full
// stream — an undirected edge {u,v} with u remote and v local is decided
// by row u's RNG, which machine m can only reproduce by running row u —
// so shard generation is O(n+m) time but O((n+m)/k) retained memory,
// which is the resource the model (and E23) actually bounds per machine.
// The structured families (Star, Path, Cycle) emit their local rows
// directly and skip the replay entirely.
package gen

import (
	"fmt"

	"kmachine/internal/core"
	"kmachine/internal/partition"
)

// GnpShard builds machine m's shard of Gnp(ps.N, p, seed).
func GnpShard(ps partition.Spec, p float64, seed uint64, m core.MachineID) *partition.LocalView {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: GnpShard probability %v out of [0,1]", p))
	}
	lb := partition.NewLocalBuilder(ps, m, false)
	gnpStream(ps.N, p, seed, lb.AddEdge)
	return lb.Build()
}

// DirectedGnpShard builds machine m's shard of DirectedGnp(ps.N, p, seed).
func DirectedGnpShard(ps partition.Spec, p float64, seed uint64, m core.MachineID) *partition.LocalView {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: DirectedGnpShard probability %v out of [0,1]", p))
	}
	lb := partition.NewLocalBuilder(ps, m, true)
	if p > 0 {
		for u := 0; u < ps.N; u++ {
			directedGnpRow(ps.N, p, seed, int32(u), func(v int32) { lb.AddArc(int32(u), v) })
		}
	}
	return lb.Build()
}

// GnmShard builds machine m's shard of Gnm(ps.N, mEdges, seed).
func GnmShard(ps partition.Spec, mEdges int, seed uint64, m core.MachineID) *partition.LocalView {
	maxM := ps.N * (ps.N - 1) / 2
	if mEdges > maxM {
		panic(fmt.Sprintf("gen: GnmShard wants %d edges but K_%d has only %d", mEdges, ps.N, maxM))
	}
	lb := partition.NewLocalBuilder(ps, m, false)
	gnmStream(ps.N, mEdges, seed, lb.AddEdge)
	return lb.Build()
}

// StarShard builds machine m's shard of Star(ps.N). Row-direct: when the
// hub is remote only the machine's own leaf rows are touched.
func StarShard(ps partition.Spec, m core.MachineID) *partition.LocalView {
	lb := partition.NewLocalBuilder(ps, m, false)
	if lb.IsLocal(0) {
		for v := 1; v < ps.N; v++ {
			lb.AddEdge(0, int32(v))
		}
	} else {
		for _, v := range lb.Locals() {
			if v != 0 {
				lb.AddEdge(0, v)
			}
		}
	}
	return lb.Build()
}

// PathShard builds machine m's shard of Path(ps.N). Row-direct.
func PathShard(ps partition.Spec, m core.MachineID) *partition.LocalView {
	lb := partition.NewLocalBuilder(ps, m, false)
	for _, v := range lb.Locals() {
		if v > 0 {
			lb.AddEdge(v-1, v)
		}
		if int(v)+1 < ps.N {
			lb.AddEdge(v, v+1)
		}
	}
	return lb.Build()
}

// CycleShard builds machine m's shard of Cycle(ps.N). Row-direct.
func CycleShard(ps partition.Spec, m core.MachineID) *partition.LocalView {
	if ps.N < 3 {
		panic("gen: CycleShard needs n >= 3")
	}
	n := int32(ps.N)
	lb := partition.NewLocalBuilder(ps, m, false)
	for _, v := range lb.Locals() {
		lb.AddEdge(v, (v+1)%n)
		lb.AddEdge((v-1+n)%n, v)
	}
	return lb.Build()
}

// PreferentialAttachmentShard builds machine m's shard of
// PreferentialAttachment(ps.N, attach, seed) by replaying the canonical
// attachment stream (the global degree state is inherent to the model,
// but only m's rows are retained).
func PreferentialAttachmentShard(ps partition.Spec, attach int, seed uint64, m core.MachineID) *partition.LocalView {
	if attach < 1 {
		panic("gen: PreferentialAttachmentShard needs attach >= 1")
	}
	lb := partition.NewLocalBuilder(ps, m, false)
	paStream(ps.N, attach, seed, lb.AddEdge)
	return lb.Build()
}

// GnpInput returns the ShardedInput that lazily builds per-machine
// Gnp shards — the registry's sharded counterpart of
// NewRVP(Gnp(n, p, seed), k, pseed).
func GnpInput(ps partition.Spec, p float64, seed uint64) *partition.ShardedInput {
	return &partition.ShardedInput{
		Spec: ps,
		BuildShard: func(m core.MachineID) (*partition.LocalView, error) {
			return GnpShard(ps, p, seed, m), nil
		},
	}
}

// EdgelessInput returns the ShardedInput for problems whose graph is
// empty (dsort, routing): each machine's shard is just its local vertex
// set.
func EdgelessInput(ps partition.Spec) *partition.ShardedInput {
	return &partition.ShardedInput{
		Spec: ps,
		BuildShard: func(m core.MachineID) (*partition.LocalView, error) {
			return partition.NewLocalBuilder(ps, m, false).Build(), nil
		},
	}
}
