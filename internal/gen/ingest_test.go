package gen

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/partition"
)

// TestIngestRoundTrip: graph → edge-list file → full read AND sharded
// ingest → identical adjacency. The file produced by WriteEdgeList must
// reproduce the graph bit for bit on both input paths.
func TestIngestRoundTrip(t *testing.T) {
	const n, k = 200, 8
	g := Gnp(n, 0.05, 21)
	path := filepath.Join(t.TempDir(), "edges.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadEdgeListGraph(path, n, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round-trip graph n=%d m=%d, want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
	}
	for u := 0; u < n; u++ {
		if !slices.Equal(back.Adj(u), g.Adj(u)) {
			t.Fatalf("round-trip Adj(%d) = %v, want %v", u, back.Adj(u), g.Adj(u))
		}
	}

	ps := partition.Spec{N: n, K: k, Seed: 22}
	covered := 0
	for m := 0; m < k; m++ {
		lv, err := IngestEdgeList(path, ps, false, core.MachineID(m))
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range lv.Locals() {
			if !slices.Equal(lv.OutAdj(u), g.Adj(int(u))) {
				t.Fatalf("machine %d ingested OutAdj(%d) = %v, want %v", m, u, lv.OutAdj(u), g.Adj(int(u)))
			}
		}
		covered += len(lv.Locals())
	}
	if covered != n {
		t.Fatalf("ingested shards cover %d vertices, want %d", covered, n)
	}
}

func TestIngestDirectedRoundTrip(t *testing.T) {
	const n, k = 120, 4
	g := DirectedGnp(n, 0.05, 31)
	path := filepath.Join(t.TempDir(), "arcs.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ps := partition.Spec{N: n, K: k, Seed: 32}
	for m := 0; m < k; m++ {
		lv, err := IngestEdgeList(path, ps, true, core.MachineID(m))
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range lv.Locals() {
			if !slices.Equal(lv.OutAdj(u), g.Adj(int(u))) {
				t.Fatalf("machine %d OutAdj(%d) = %v, want %v", m, u, lv.OutAdj(u), g.Adj(int(u)))
			}
			if !slices.Equal(lv.InAdj(u), g.InAdj(int(u))) {
				t.Fatalf("machine %d InAdj(%d) = %v, want %v", m, u, lv.InAdj(u), g.InAdj(int(u)))
			}
		}
	}
}

func TestScanEdgeListFormat(t *testing.T) {
	input := "# comment line\n\n 3 5 \n7 2 # trailing comment\n"
	var got [][2]int32
	if err := ScanEdgeList(strings.NewReader(input), 10, func(u, v int32) {
		got = append(got, [2]int32{u, v})
	}); err != nil {
		t.Fatal(err)
	}
	want := [][2]int32{{3, 5}, {7, 2}}
	if !slices.Equal(flattenPairs(got), flattenPairs(want)) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
}

func TestScanEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"out-of-range": "1 99\n",
		"one-field":    "4\n",
		"garbage":      "4 5 junk\n",
		"negative":     "-1 3\n",
	}
	for name, input := range cases {
		err := ScanEdgeList(strings.NewReader(input), 10, func(u, v int32) {})
		if err == nil {
			t.Errorf("%s: %q parsed without error", name, input)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error %q does not name the line", name, err)
		}
	}
}
