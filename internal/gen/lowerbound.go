package gen

import (
	"fmt"

	"kmachine/internal/graph"
	"kmachine/internal/rng"
)

// LowerBound is an instance of the PageRank lower-bound graph H of the
// paper's Figure 1 (Section 2.3).
//
// H is a weakly connected directed graph on n = 4q+1 vertices with
// m = n-1 = 4q edges, built from q disjoint "paths" plus a shared sink w:
//
//	x_i ?— u_i -> t_i -> v_i -> w        for 1 <= i <= q,
//
// where the direction of the edge between x_i and u_i is set by a fair
// coin b_i: b_i = 0 gives u_i -> x_i, b_i = 1 gives x_i -> u_i. Lemma 4
// shows that PageRank(v_i) differs by a constant factor between the two
// cases, so a correct PageRank algorithm must learn every b_i.
//
// The construction also assigns every structural vertex a random ID from
// a polynomial range ("the random vertex IDs obfuscate the position of a
// vertex in the graph"): Label maps structural index -> obfuscated ID.
type LowerBound struct {
	// G is the structural graph: index layout x_i = i, u_i = q+i,
	// t_i = 2q+i, v_i = 3q+i for i in [0,q), and w = 4q.
	G *graph.Graph
	// Q is the number of paths (m/4 in the paper's notation).
	Q int
	// Bits is the direction vector b: Bits[i] == true means b_i = 1,
	// i.e. the edge is x_i -> u_i.
	Bits []bool
	// Label[v] is the obfuscated random ID of structural vertex v,
	// drawn without replacement from [0, n^3).
	Label []int64
}

// X returns the structural index of x_i.
func (lb *LowerBound) X(i int) int { return i }

// U returns the structural index of u_i.
func (lb *LowerBound) U(i int) int { return lb.Q + i }

// T returns the structural index of t_i.
func (lb *LowerBound) T(i int) int { return 2*lb.Q + i }

// V returns the structural index of v_i.
func (lb *LowerBound) V(i int) int { return 3*lb.Q + i }

// W returns the structural index of the sink w.
func (lb *LowerBound) W() int { return 4 * lb.Q }

// LowerBoundGraph builds an H instance with q paths, fair-coin bits and
// random ID obfuscation, all derived from seed.
func LowerBoundGraph(q int, seed uint64) *LowerBound {
	r := rng.New(seed)
	bits := make([]bool, q)
	for i := range bits {
		bits[i] = r.Uint64()&1 == 1
	}
	return LowerBoundGraphWithBits(bits, seed+1)
}

// LowerBoundGraphWithBits builds an H instance with the given direction
// vector; the seed controls only the ID obfuscation. Lemma 4's
// verification uses this to compare the two directions of a single edge
// with everything else held fixed.
func LowerBoundGraphWithBits(bits []bool, seed uint64) *LowerBound {
	q := len(bits)
	if q < 1 {
		panic("gen: lower-bound graph needs at least one path")
	}
	n := 4*q + 1
	lb := &LowerBound{Q: q, Bits: append([]bool(nil), bits...)}
	b := graph.NewBuilder(n, true)
	for i := 0; i < q; i++ {
		b.AddEdge(lb.U(i), lb.T(i))
		b.AddEdge(lb.T(i), lb.V(i))
		b.AddEdge(lb.V(i), lb.W())
		if bits[i] {
			b.AddEdge(lb.X(i), lb.U(i))
		} else {
			b.AddEdge(lb.U(i), lb.X(i))
		}
	}
	lb.G = b.Build()
	if lb.G.M() != n-1 {
		panic(fmt.Sprintf("gen: lower-bound graph has %d edges, want %d", lb.G.M(), n-1))
	}
	lb.Label = obfuscatedIDs(n, seed)
	return lb
}

// obfuscatedIDs draws n distinct IDs uniformly from [0, n^3).
func obfuscatedIDs(n int, seed uint64) []int64 {
	r := rng.New(seed)
	bound := uint64(n) * uint64(n) * uint64(n)
	seen := make(map[int64]struct{}, n)
	out := make([]int64, 0, n)
	for len(out) < n {
		id := int64(r.Uint64n(bound))
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// Lemma4Expected returns the expected-visit PageRank values that Lemma 4
// derives for a vertex v_i in the two direction cases, for reset
// probability eps and graph size n:
//
//	b_i = 0:  eps(2.5 - 2eps + eps²/2)/n
//	b_i = 1:  eps(3 - 3eps + eps²)/n   (a lower bound; the exact value
//	          adds the (1-eps)³ term's remainder, see Lemma 4's proof)
//
// The exact per-case values from the proof's visit expansion are also
// returned: with q = 1-eps,
//
//	b_i = 0: eps(1 + q + q²/2)/n
//	b_i = 1: eps(1 + q + q² + q³)/n
func Lemma4Expected(eps float64, n int) (pr0, pr1 float64) {
	q := 1 - eps
	pr0 = eps * (1 + q + q*q/2) / float64(n)
	pr1 = eps * (1 + q + q*q + q*q*q) / float64(n)
	return
}
