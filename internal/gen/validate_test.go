package gen

import "testing"

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestGeneratorValidation(t *testing.T) {
	expectPanic(t, "Gnp(p=-1)", func() { Gnp(10, -1, 1) })
	expectPanic(t, "Gnp(p=2)", func() { Gnp(10, 2, 1) })
	expectPanic(t, "DirectedGnp(p=-1)", func() { DirectedGnp(10, -1, 1) })
	expectPanic(t, "Cycle(2)", func() { Cycle(2) })
	expectPanic(t, "DirectedCycle(1)", func() { DirectedCycle(1) })
	expectPanic(t, "PreferentialAttachment(attach=0)", func() { PreferentialAttachment(10, 0, 1) })
	expectPanic(t, "LowerBoundGraphWithBits(empty)", func() { LowerBoundGraphWithBits(nil, 1) })
}

func TestDirectedGnpExtremes(t *testing.T) {
	if g := DirectedGnp(20, 0, 1); g.M() != 0 {
		t.Errorf("DirectedGnp(p=0) has %d arcs", g.M())
	}
	if g := DirectedGnp(10, 1, 1); g.M() != 90 {
		t.Errorf("DirectedGnp(p=1) has %d arcs, want 90", g.M())
	}
}

func TestGnpTinyN(t *testing.T) {
	for _, n := range []int{0, 1} {
		if g := Gnp(n, 0.5, 1); g.M() != 0 || g.N() != n {
			t.Errorf("Gnp(%d, .5): n=%d m=%d", n, g.N(), g.M())
		}
	}
}

func TestPlantedTrianglesWithExtras(t *testing.T) {
	// Extras never close new triangles inside planted groups, but they
	// may create cross-group ones; counts must be >= planted.
	g := PlantedTriangles(20, 100, 9)
	if got := g.CountTriangles(); got < 20 {
		t.Errorf("planted graph has %d triangles, want >= 20", got)
	}
}
