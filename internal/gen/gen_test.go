package gen

import (
	"math"
	"testing"

	"kmachine/internal/graph"
)

func TestGnpEdgeCount(t *testing.T) {
	const n = 200
	for _, p := range []float64{0.1, 0.5, 0.9} {
		g := Gnp(n, p, 42)
		want := p * float64(n*(n-1)/2)
		sd := math.Sqrt(float64(n*(n-1)/2) * p * (1 - p))
		if math.Abs(float64(g.M())-want) > 6*sd {
			t.Errorf("Gnp(%d,%g): %d edges, want ~%g", n, p, g.M(), want)
		}
	}
}

func TestGnpExtremes(t *testing.T) {
	if g := Gnp(50, 0, 1); g.M() != 0 {
		t.Errorf("Gnp(p=0) has %d edges", g.M())
	}
	if g := Gnp(20, 1, 1); g.M() != 190 {
		t.Errorf("Gnp(p=1) has %d edges, want 190", g.M())
	}
}

func TestGnpDeterministic(t *testing.T) {
	a := Gnp(100, 0.3, 7)
	b := Gnp(100, 0.3, 7)
	if a.M() != b.M() {
		t.Fatal("Gnp not deterministic for fixed seed")
	}
	ae, be := a.EdgeList(), b.EdgeList()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("Gnp edge lists differ for fixed seed")
		}
	}
}

func TestGnmExact(t *testing.T) {
	g := Gnm(50, 200, 3)
	if g.M() != 200 {
		t.Errorf("Gnm produced %d edges, want 200", g.M())
	}
}

func TestGnmPanicsWhenTooDense(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gnm over-capacity did not panic")
		}
	}()
	Gnm(4, 7, 1)
}

func TestStarShape(t *testing.T) {
	g := Star(10)
	if g.M() != 9 {
		t.Fatalf("star M = %d, want 9", g.M())
	}
	if g.Degree(0) != 9 {
		t.Errorf("hub degree %d, want 9", g.Degree(0))
	}
	for i := 1; i < 10; i++ {
		if g.Degree(i) != 1 {
			t.Errorf("leaf %d degree %d, want 1", i, g.Degree(i))
		}
	}
}

func TestDirectedStarIn(t *testing.T) {
	g := DirectedStarIn(8)
	if g.InDegree(0) != 7 || g.Degree(0) != 0 {
		t.Errorf("hub in/out = %d/%d, want 7/0", g.InDegree(0), g.Degree(0))
	}
}

func TestPathCycleComplete(t *testing.T) {
	if g := Path(5); g.M() != 4 {
		t.Errorf("path M = %d, want 4", g.M())
	}
	if g := Cycle(5); g.M() != 5 {
		t.Errorf("cycle M = %d, want 5", g.M())
	}
	if g := Complete(6); g.M() != 15 {
		t.Errorf("K6 M = %d, want 15", g.M())
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 || g.CountTriangles() != 0 {
		t.Errorf("K_{3,4}: M=%d triangles=%d, want 12 and 0", g.M(), g.CountTriangles())
	}
}

func TestDirectedCycleDegrees(t *testing.T) {
	g := DirectedCycle(6)
	for i := 0; i < 6; i++ {
		if g.Degree(i) != 1 || g.InDegree(i) != 1 {
			t.Fatalf("vertex %d out/in = %d/%d, want 1/1", i, g.Degree(i), g.InDegree(i))
		}
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g := PreferentialAttachment(500, 2, 11)
	if g.N() != 500 {
		t.Fatalf("PA N = %d", g.N())
	}
	// Expect heavy tail: max degree far above the mean.
	mean := 2 * float64(g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 4*mean {
		t.Errorf("PA max degree %d not heavy-tailed vs mean %g", g.MaxDegree(), mean)
	}
	// Connected growth process: no isolated vertices.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			t.Fatalf("PA vertex %d isolated", v)
		}
	}
}

func TestPlantedTrianglesExact(t *testing.T) {
	g := PlantedTriangles(40, 0, 5)
	if got := g.CountTriangles(); got != 40 {
		t.Errorf("planted triangles: %d, want 40", got)
	}
	ts := g.Triangles()
	for _, tr := range ts {
		if tr.A/3 != tr.B/3 || tr.B/3 != tr.C/3 {
			t.Errorf("triangle %+v crosses groups", tr)
		}
	}
}

func TestLowerBoundGraphStructure(t *testing.T) {
	const q = 16
	lb := LowerBoundGraph(q, 99)
	g := lb.G
	if g.N() != 4*q+1 {
		t.Fatalf("H has %d vertices, want %d", g.N(), 4*q+1)
	}
	if g.M() != 4*q {
		t.Fatalf("H has %d edges, want %d", g.M(), 4*q)
	}
	for i := 0; i < q; i++ {
		if !g.HasEdge(lb.U(i), lb.T(i)) {
			t.Errorf("missing u_%d -> t_%d", i, i)
		}
		if !g.HasEdge(lb.T(i), lb.V(i)) {
			t.Errorf("missing t_%d -> v_%d", i, i)
		}
		if !g.HasEdge(lb.V(i), lb.W()) {
			t.Errorf("missing v_%d -> w", i)
		}
		if lb.Bits[i] {
			if !g.HasEdge(lb.X(i), lb.U(i)) || g.HasEdge(lb.U(i), lb.X(i)) {
				t.Errorf("path %d: bit=1 but edge direction wrong", i)
			}
		} else {
			if !g.HasEdge(lb.U(i), lb.X(i)) || g.HasEdge(lb.X(i), lb.U(i)) {
				t.Errorf("path %d: bit=0 but edge direction wrong", i)
			}
		}
	}
	if g.Degree(lb.W()) != 0 {
		t.Errorf("w has out-degree %d, want 0 (sink)", g.Degree(lb.W()))
	}
}

func TestLowerBoundLabelsDistinct(t *testing.T) {
	lb := LowerBoundGraph(32, 5)
	seen := map[int64]bool{}
	bound := int64(lb.G.N()) * int64(lb.G.N()) * int64(lb.G.N())
	for _, id := range lb.Label {
		if id < 0 || id >= bound {
			t.Fatalf("label %d out of range [0,%d)", id, bound)
		}
		if seen[id] {
			t.Fatal("duplicate obfuscated label")
		}
		seen[id] = true
	}
	if len(lb.Label) != lb.G.N() {
		t.Fatalf("got %d labels for %d vertices", len(lb.Label), lb.G.N())
	}
}

// TestLemma4AgainstSolver is the heart of the Figure-1 reproduction: the
// closed-form visit expansions of Lemma 4 must agree with the
// expected-visit PageRank solver on the actual graph H.
func TestLemma4AgainstSolver(t *testing.T) {
	const q = 8
	for _, eps := range []float64{0.1, 0.15, 0.3, 0.5} {
		bits := make([]bool, q)
		for i := range bits {
			bits[i] = i%2 == 0 // mix of both cases
		}
		lb := LowerBoundGraphWithBits(bits, 7)
		opts := graph.PageRankOptions{Eps: eps, Tol: 1e-13, MaxIter: 10000}
		pr := graph.ExpectedVisitPageRank(lb.G, opts)
		want0, want1 := Lemma4Expected(eps, lb.G.N())
		for i := 0; i < q; i++ {
			got := pr[lb.V(i)]
			want := want0
			if bits[i] {
				want = want1
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("eps=%g path %d (bit=%v): PR(v)=%g, want %g",
					eps, i, bits[i], got, want)
			}
		}
	}
}

// TestLemma4Separation verifies the paper's claim of a constant-factor
// separation between the two direction cases for every eps < 1.
func TestLemma4Separation(t *testing.T) {
	for _, eps := range []float64{0.05, 0.15, 0.5, 0.9} {
		pr0, pr1 := Lemma4Expected(eps, 101)
		if pr1 <= pr0 {
			t.Errorf("eps=%g: pr1=%g not above pr0=%g", eps, pr1, pr0)
		}
		// The separation constant depends on eps (Lemma 4) and degrades
		// as eps -> 1; for the practical range it is comfortably large.
		if eps <= 0.5 {
			if ratio := pr1 / pr0; ratio < 1.1 {
				t.Errorf("eps=%g: separation ratio %g too small to be 'constant factor'", eps, ratio)
			}
		}
	}
}

func TestLowerBoundWithBitsDeterministicLabels(t *testing.T) {
	bits := []bool{true, false, true}
	a := LowerBoundGraphWithBits(bits, 3)
	b := LowerBoundGraphWithBits(bits, 3)
	for i := range a.Label {
		if a.Label[i] != b.Label[i] {
			t.Fatal("labels not deterministic for fixed seed")
		}
	}
}
