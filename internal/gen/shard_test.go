package gen

import (
	"slices"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
	"kmachine/internal/rng"
)

// shardFamily pairs a generator's full constructor with its shard
// constructor so the equivalence property below can sweep every family.
type shardFamily struct {
	name     string
	directed bool
	full     func(n int, seed uint64) *graph.Graph
	shard    func(ps partition.Spec, seed uint64, m core.MachineID) *partition.LocalView
}

func shardFamilies() []shardFamily {
	return []shardFamily{
		{"gnp", false,
			func(n int, seed uint64) *graph.Graph { return Gnp(n, 0.06, seed) },
			func(ps partition.Spec, seed uint64, m core.MachineID) *partition.LocalView {
				return GnpShard(ps, 0.06, seed, m)
			}},
		{"directed-gnp", true,
			func(n int, seed uint64) *graph.Graph { return DirectedGnp(n, 0.04, seed) },
			func(ps partition.Spec, seed uint64, m core.MachineID) *partition.LocalView {
				return DirectedGnpShard(ps, 0.04, seed, m)
			}},
		{"gnm", false,
			func(n int, seed uint64) *graph.Graph { return Gnm(n, 3*n, seed) },
			func(ps partition.Spec, seed uint64, m core.MachineID) *partition.LocalView {
				return GnmShard(ps, 3*ps.N, seed, m)
			}},
		{"star", false,
			func(n int, seed uint64) *graph.Graph { return Star(n) },
			func(ps partition.Spec, seed uint64, m core.MachineID) *partition.LocalView {
				return StarShard(ps, m)
			}},
		{"path", false,
			func(n int, seed uint64) *graph.Graph { return Path(n) },
			func(ps partition.Spec, seed uint64, m core.MachineID) *partition.LocalView {
				return PathShard(ps, m)
			}},
		{"cycle", false,
			func(n int, seed uint64) *graph.Graph { return Cycle(n) },
			func(ps partition.Spec, seed uint64, m core.MachineID) *partition.LocalView {
				return CycleShard(ps, m)
			}},
		{"pref-attach", false,
			func(n int, seed uint64) *graph.Graph { return PreferentialAttachment(n, 3, seed) },
			func(ps partition.Spec, seed uint64, m core.MachineID) *partition.LocalView {
				return PreferentialAttachmentShard(ps, 3, seed, m)
			}},
	}
}

// TestShardFullEquivalence is the tentpole property: for every
// generator family, the union of the k machine-local shards is
// bit-identical to the full materialisation — row for row, neighbour
// for neighbour — across machine counts and seeds. This is what makes
// the per-row stream the canonical definition rather than a parallel
// implementation that could drift.
func TestShardFullEquivalence(t *testing.T) {
	const n = 150
	for _, fam := range shardFamilies() {
		for _, k := range []int{1, 2, 8} {
			for _, seed := range []uint64{1, 42} {
				full := fam.full(n, seed)
				ps := partition.Spec{N: n, K: k, Seed: seed + 1}
				covered := 0
				for m := 0; m < k; m++ {
					lv := fam.shard(ps, seed, core.MachineID(m))
					if lv.Self() != core.MachineID(m) || lv.K() != k || lv.N() != n {
						t.Fatalf("%s k=%d seed=%d: shard %d identity (self=%d k=%d n=%d)",
							fam.name, k, seed, m, lv.Self(), lv.K(), lv.N())
					}
					for _, u := range lv.Locals() {
						if got, want := lv.OutAdj(u), full.Adj(int(u)); !slices.Equal(got, want) {
							t.Fatalf("%s k=%d seed=%d machine %d: OutAdj(%d) = %v, full graph has %v",
								fam.name, k, seed, m, u, got, want)
						}
						if got, want := lv.InAdj(u), full.InAdj(int(u)); !slices.Equal(got, want) {
							t.Fatalf("%s k=%d seed=%d machine %d: InAdj(%d) = %v, full graph has %v",
								fam.name, k, seed, m, u, got, want)
						}
						if lv.Degree(u) != full.Degree(int(u)) {
							t.Fatalf("%s k=%d seed=%d machine %d: Degree(%d) = %d, want %d",
								fam.name, k, seed, m, u, lv.Degree(u), full.Degree(int(u)))
						}
					}
					covered += len(lv.Locals())
				}
				if covered != n {
					t.Fatalf("%s k=%d seed=%d: shards cover %d vertices, want %d", fam.name, k, seed, covered, n)
				}
			}
		}
	}
}

// TestGnpRowIsPureFunctionOfSeedAndRow pins the per-row formulation
// itself: a row's neighbours must not depend on which other rows were
// generated around it.
func TestGnpRowIsPureFunctionOfSeedAndRow(t *testing.T) {
	const n, p, seed = 100, 0.1, 7
	var a, b []int32
	gnpRow(n, p, seed, 40, func(v int32) { a = append(a, v) })
	for u := int32(0); u < int32(n)-1; u++ {
		u := u
		gnpRow(n, p, seed, u, func(v int32) {
			if u == 40 {
				b = append(b, v)
			}
		})
	}
	if !slices.Equal(a, b) {
		t.Fatalf("row 40 alone = %v, row 40 within full sweep = %v", a, b)
	}
}

// TestPreferentialAttachmentRunTwice is the regression for the map
// iteration order bug: two generations at one seed must agree edge for
// edge (the old code appended each vertex's chosen endpoints in Go map
// order, perturbing every later degree-proportional draw).
func TestPreferentialAttachmentRunTwice(t *testing.T) {
	for run := 0; run < 3; run++ {
		g1 := PreferentialAttachment(500, 3, 11)
		g2 := PreferentialAttachment(500, 3, 11)
		e1, e2 := g1.EdgeList(), g2.EdgeList()
		if !slices.Equal(flattenPairs(e1), flattenPairs(e2)) {
			t.Fatalf("run %d: PreferentialAttachment(500,3,11) differed between two generations", run)
		}
	}
}

func flattenPairs(es [][2]int32) []int32 {
	out := make([]int32, 0, 2*len(es))
	for _, e := range es {
		out = append(out, e[0], e[1])
	}
	return out
}

// TestGnmMatchesDrawOrderReference checks the alloc-light dedupe against
// a straightforward map-based reference of the canonical definition:
// the first m distinct pairs of the seed's candidate sequence.
func TestGnmMatchesDrawOrderReference(t *testing.T) {
	const n, m, seed = 80, 600, 5
	want := make([][2]int32, 0, m)
	seen := map[[2]int32]bool{}
	r := rng.New(seed)
	for len(want) < m {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		pair := [2]int32{u, v}
		if seen[pair] {
			continue
		}
		seen[pair] = true
		want = append(want, pair)
	}
	got := make([][2]int32, 0, m)
	gnmStream(n, m, seed, func(u, v int32) { got = append(got, [2]int32{u, v}) })
	if !slices.Equal(flattenPairs(got), flattenPairs(want)) {
		t.Fatalf("gnmStream disagrees with the map-based reference (got %d pairs, want %d)", len(got), len(want))
	}
}

func TestGnmNearCompleteGraph(t *testing.T) {
	// Coupon-collector regime: m close to C(n,2) forces many top-up
	// rounds.
	const n = 24
	maxM := n * (n - 1) / 2
	g := Gnm(n, maxM-1, 3)
	if g.M() != maxM-1 {
		t.Fatalf("Gnm(%d, %d) produced %d edges", n, maxM-1, g.M())
	}
}

func BenchmarkGnm(b *testing.B) {
	const n = 20000
	const m = 100000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Gnm(n, m, uint64(i)+1)
	}
}

func BenchmarkGnpShard(b *testing.B) {
	ps := partition.Spec{N: 20000, K: 8, Seed: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GnpShard(ps, 10.0/20000, 1, 0)
	}
}
