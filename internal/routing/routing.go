// Package routing implements the communication-balancing machinery of
// the paper's upper bounds (§1.3, §3):
//
//   - random routing (Lemma 13): when every machine sends O(x) messages
//     to uniformly random destinations (or receives O(x) from random
//     sources), direct links deliver everything in O((x log x)/k) rounds
//     whp. RandomRouteExperiment measures exactly this setting;
//   - Valiant two-hop routing: when destinations are fixed (not random) —
//     e.g. token counts addressed to the home machine of a vertex — a
//     message is first sent to a uniformly random intermediate machine
//     and then forwarded, so both hops have a random endpoint and Lemma 13
//     applies to each. Hop/Route/Deliver implement the pattern generically
//     for any payload type;
//   - randomized proxy computation (§1.3, §3.2): the designation rule that
//     decides which endpoint's home machine ships an edge to its random
//     proxy, including the heavy-vertex (degree >= 2k log n) broadcast
//     convention that keeps machines hosting high-degree vertices from
//     serialising.
package routing

import (
	"math"

	"kmachine/internal/core"
	"kmachine/internal/rng"
)

// Hop wraps a payload with its final destination for two-hop routing. A
// receiver inspects Final: if it names the receiver the payload is
// delivered, otherwise the receiver forwards it (second hop).
type Hop[M any] struct {
	Final core.MachineID
	Msg   M
}

// Route appends to out an envelope carrying msg towards final via a
// uniformly random intermediate machine drawn from r.
func Route[M any](out []core.Envelope[Hop[M]], r *rng.RNG, k int, final core.MachineID, words int32, msg M) []core.Envelope[Hop[M]] {
	mid := core.MachineID(r.Intn(k))
	return append(out, core.Envelope[Hop[M]]{
		To:    mid,
		Words: words,
		Msg:   Hop[M]{Final: final, Msg: msg},
	})
}

// RouteDirect appends an envelope addressed straight to final, in the
// same Hop framing (used by the ablation that disables two-hop routing,
// and for messages whose destination is already uniformly random).
func RouteDirect[M any](out []core.Envelope[Hop[M]], final core.MachineID, words int32, msg M) []core.Envelope[Hop[M]] {
	return append(out, core.Envelope[Hop[M]]{
		To:    final,
		Words: words,
		Msg:   Hop[M]{Final: final, Msg: msg},
	})
}

// Deliver partitions an inbox into payloads that have arrived (Final is
// the receiving machine) and second-hop forwards to emit this superstep.
func Deliver[M any](self core.MachineID, inbox []core.Envelope[Hop[M]]) (delivered []M, forwards []core.Envelope[Hop[M]]) {
	return DeliverInto(self, inbox, nil, nil)
}

// DeliverInto is Deliver appending into caller-provided scratch
// (typically machine-owned buffers passed as buf[:0]), so a machine
// stepping every superstep can recycle its delivery and forward slices
// instead of growing fresh ones each time. Payload and forward values
// are copied out of inbox, never aliased, so the scratch stays valid
// after the transport recycles the inbox storage.
func DeliverInto[M any](self core.MachineID, inbox []core.Envelope[Hop[M]], delivered []M, forwards []core.Envelope[Hop[M]]) ([]M, []core.Envelope[Hop[M]]) {
	for _, e := range inbox {
		if e.Msg.Final == self {
			delivered = append(delivered, e.Msg.Msg)
			continue
		}
		forwards = append(forwards, core.Envelope[Hop[M]]{
			To:    e.Msg.Final,
			Words: e.Words,
			Msg:   e.Msg,
		})
	}
	return delivered, forwards
}

// The *Buckets variants below are the streaming-superstep counterparts
// of Route/RouteDirect/DeliverInto: instead of one interleaved out
// slice they append into a per-destination-machine bucket array
// (buckets[j] holds the envelopes addressed to machine j), which is the
// shape core.EmitBuckets streams eagerly. Appending a given call's
// envelope to bucket j preserves the program order of all envelopes
// addressed to j, and inbox assembly orders by (sender, per-sender
// program order) — so a bucketed machine produces byte-identical
// inboxes to its interleaved self, on any schedule. RNG draws happen at
// the same call sites in the same order, keeping determinism hashes
// unchanged.

// RouteBuckets is Route into per-destination buckets: the envelope
// lands in the bucket of its (uniformly random) intermediate machine.
func RouteBuckets[M any](buckets [][]core.Envelope[Hop[M]], r *rng.RNG, k int, final core.MachineID, words int32, msg M) {
	mid := r.Intn(k)
	buckets[mid] = append(buckets[mid], core.Envelope[Hop[M]]{
		To:    core.MachineID(mid),
		Words: words,
		Msg:   Hop[M]{Final: final, Msg: msg},
	})
}

// RouteDirectBuckets is RouteDirect into per-destination buckets.
func RouteDirectBuckets[M any](buckets [][]core.Envelope[Hop[M]], final core.MachineID, words int32, msg M) {
	buckets[final] = append(buckets[final], core.Envelope[Hop[M]]{
		To:    final,
		Words: words,
		Msg:   Hop[M]{Final: final, Msg: msg},
	})
}

// DeliverIntoBuckets is DeliverInto with the second-hop forwards
// appended into per-destination buckets instead of one forwards slice.
func DeliverIntoBuckets[M any](self core.MachineID, inbox []core.Envelope[Hop[M]], delivered []M, buckets [][]core.Envelope[Hop[M]]) []M {
	for _, e := range inbox {
		if e.Msg.Final == self {
			delivered = append(delivered, e.Msg.Msg)
			continue
		}
		buckets[e.Msg.Final] = append(buckets[e.Msg.Final], core.Envelope[Hop[M]]{
			To:    e.Msg.Final,
			Words: e.Words,
			Msg:   e.Msg,
		})
	}
	return delivered
}

// HeavyDegreeThreshold is the §3.2 proxy-assignment cutoff 2·k·log n:
// vertices at or above it have their edge shipments delegated to the
// neighbours' home machines.
func HeavyDegreeThreshold(k, n int) int {
	t := int(math.Ceil(2 * float64(k) * math.Log2(float64(n)+1)))
	if t < 1 {
		t = 1
	}
	return t
}

// DesignatedEndpoint decides which endpoint's home machine ships edge
// {u,v} to its random proxy. All machines that know the heaviness flags
// evaluate the same pure function, so exactly one machine sends each
// edge:
//
//   - exactly one endpoint heavy: the light endpoint's home sends (the
//     heavy vertex "requests all other machines to designate the
//     respective edge proxies");
//   - both light or both heavy: a hash coin picks the endpoint (the
//     paper breaks such ties randomly).
func DesignatedEndpoint(u, v int32, uHeavy, vHeavy bool, seed uint64) int32 {
	switch {
	case uHeavy && !vHeavy:
		return v
	case vHeavy && !uHeavy:
		return u
	default:
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if rng.Mix(seed^(uint64(uint32(a))<<32|uint64(uint32(b))))&1 == 0 {
			return a
		}
		return b
	}
}
