package routing

import (
	"kmachine/internal/algo"
	"kmachine/internal/core"
	"kmachine/internal/transport"
	"kmachine/internal/transport/wire"
)

// This file implements the measurable workloads behind Lemma 13 and the
// two-hop pattern, used by experiment E7 and the algorithm registry.
// Both run through the generic internal/algo driver, so they execute on
// any substrate (loopback, TCP sockets, standalone nodes) with
// identical Stats.

type routeProbe struct{ Token int32 }

// probeCodec serialises the one-word routing probes for socket
// substrates.
type probeCodec struct{}

func (probeCodec) Append(dst []byte, m routeProbe) ([]byte, error) {
	return wire.AppendVarint(dst, int64(m.Token)), nil
}

func (probeCodec) Decode(src []byte) (routeProbe, int, error) {
	v, n, err := wire.Varint(src)
	return routeProbe{Token: int32(v)}, n, err
}

// RandomRouteResult reports one routing run.
type RandomRouteResult struct {
	Stats *core.Stats
	// Delivered counts payloads that reached a machine as final.
	Delivered int64
}

// randomRouteMachine sends x one-word messages to independently uniform
// destinations in superstep 0 and counts everything it receives.
type randomRouteMachine struct {
	x         int
	delivered int64
}

func (m *randomRouteMachine) Step(ctx *core.StepContext, inbox []core.Envelope[routeProbe]) ([]core.Envelope[routeProbe], bool) {
	m.delivered += int64(len(inbox))
	if ctx.Superstep > 0 {
		return nil, true
	}
	out := make([]core.Envelope[routeProbe], 0, m.x)
	for i := 0; i < m.x; i++ {
		out = append(out, core.Envelope[routeProbe]{
			To:    core.MachineID(ctx.RNG.Intn(ctx.K)),
			Words: 1,
			Msg:   routeProbe{Token: int32(i)},
		})
	}
	return out, true
}

// Output implements algo.Machine.
func (m *randomRouteMachine) Output() int64 { return m.delivered }

// sumDelivered merges the per-machine delivery counts.
func sumDelivered(locals []int64) int64 {
	var total int64
	for _, d := range locals {
		total += d
	}
	return total
}

// RandomRouteExperiment has every machine send x one-word messages to
// independently uniform destinations over direct links — the exact
// hypothesis of Lemma 13. The measured rounds should scale as
// Θ((x/k + log)/B): each of the k-1 outgoing links of a machine carries
// ~x/k messages whp.
func RandomRouteExperiment(k, x, bandwidth int, seed uint64) (*RandomRouteResult, error) {
	return RandomRouteExperimentOn(transport.Default, k, x, bandwidth, seed)
}

// RandomRouteExperimentOn is RandomRouteExperiment over an explicit
// transport kind.
func RandomRouteExperimentOn(kind transport.Kind, k, x, bandwidth int, seed uint64) (*RandomRouteResult, error) {
	cfg := core.Config{K: k, Bandwidth: bandwidth, Seed: seed, Transport: kind}
	delivered, stats, err := algo.Exec(cfg, probeCodec{},
		func(core.MachineID) (algo.Machine[routeProbe, int64], error) {
			return &randomRouteMachine{x: x}, nil
		}, sumDelivered)
	if err != nil {
		return nil, err
	}
	return &RandomRouteResult{Stats: stats, Delivered: delivered}, nil
}

// fixedDestMachine: machine 0 sends x one-word messages all addressed
// to machine k-1 (directly or two-hop); every machine relays forwards
// and counts deliveries.
type fixedDestMachine struct {
	x         int
	twoHop    bool
	final     core.MachineID
	delivered int64
}

func (m *fixedDestMachine) Step(ctx *core.StepContext, inbox []core.Envelope[Hop[routeProbe]]) ([]core.Envelope[Hop[routeProbe]], bool) {
	got, forwards := Deliver(ctx.Self, inbox)
	m.delivered += int64(len(got))
	if ctx.Superstep > 0 || ctx.Self != 0 {
		return forwards, true
	}
	out := forwards
	for i := 0; i < m.x; i++ {
		if m.twoHop {
			out = Route(out, ctx.RNG, ctx.K, m.final, 1, routeProbe{Token: int32(i)})
		} else {
			out = RouteDirect(out, m.final, 1, routeProbe{Token: int32(i)})
		}
	}
	return out, true
}

// Output implements algo.Machine.
func (m *fixedDestMachine) Output() int64 { return m.delivered }

// FixedDestinationExperiment has machine 0 send x one-word messages all
// addressed to machine k-1, either directly (twoHop=false: the single
// link 0 -> k-1 serialises at x/B rounds) or via Valiant two-hop relays
// (twoHop=true: hop 1 spreads over random intermediates and hop 2
// converges over the receiver's k-1 incoming links, ~x/k per link per
// hop). The contrast quantifies what two-hop routing buys when a source
// is adversarially concentrated; it is the routing primitive Algorithm 1
// invokes for its light-vertex token counts.
func FixedDestinationExperiment(k, x, bandwidth int, twoHop bool, seed uint64) (*RandomRouteResult, error) {
	return FixedDestinationExperimentOn(transport.Default, k, x, bandwidth, twoHop, seed)
}

// FixedDestinationExperimentOn is FixedDestinationExperiment over an
// explicit transport kind.
func FixedDestinationExperimentOn(kind transport.Kind, k, x, bandwidth int, twoHop bool, seed uint64) (*RandomRouteResult, error) {
	cfg := core.Config{K: k, Bandwidth: bandwidth, Seed: seed, Transport: kind}
	delivered, stats, err := algo.Exec(cfg, HopCodec[routeProbe](probeCodec{}),
		func(core.MachineID) (algo.Machine[Hop[routeProbe], int64], error) {
			return &fixedDestMachine{x: x, twoHop: twoHop, final: core.MachineID(k - 1)}, nil
		}, sumDelivered)
	if err != nil {
		return nil, err
	}
	return &RandomRouteResult{Stats: stats, Delivered: delivered}, nil
}
