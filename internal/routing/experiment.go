package routing

import (
	"kmachine/internal/core"
)

// This file implements the measurable workloads behind Lemma 13 and the
// two-hop pattern, used by experiment E7.

type routeProbe struct{ Token int32 }

// RandomRouteResult reports one routing run.
type RandomRouteResult struct {
	Stats *core.Stats
	// Delivered counts payloads that reached a machine as final.
	Delivered int64
}

// RandomRouteExperiment has every machine send x one-word messages to
// independently uniform destinations over direct links — the exact
// hypothesis of Lemma 13. The measured rounds should scale as
// Θ((x/k + log)/B): each of the k-1 outgoing links of a machine carries
// ~x/k messages whp.
func RandomRouteExperiment(k, x, bandwidth int, seed uint64) (*RandomRouteResult, error) {
	var delivered int64
	deliveredPer := make([]int64, k)
	cluster := core.NewCluster(core.Config{K: k, Bandwidth: bandwidth, Seed: seed},
		func(id core.MachineID) core.Machine[routeProbe] {
			return core.MachineFunc[routeProbe](func(ctx *core.StepContext, inbox []core.Envelope[routeProbe]) ([]core.Envelope[routeProbe], bool) {
				deliveredPer[ctx.Self] += int64(len(inbox))
				if ctx.Superstep > 0 {
					return nil, true
				}
				out := make([]core.Envelope[routeProbe], 0, x)
				for i := 0; i < x; i++ {
					out = append(out, core.Envelope[routeProbe]{
						To:    core.MachineID(ctx.RNG.Intn(ctx.K)),
						Words: 1,
						Msg:   routeProbe{Token: int32(i)},
					})
				}
				return out, true
			})
		})
	stats, err := cluster.Run()
	if err != nil {
		return nil, err
	}
	for _, d := range deliveredPer {
		delivered += d
	}
	return &RandomRouteResult{Stats: stats, Delivered: delivered}, nil
}

// FixedDestinationExperiment has machine 0 send x one-word messages all
// addressed to machine k-1, either directly (twoHop=false: the single
// link 0 -> k-1 serialises at x/B rounds) or via Valiant two-hop relays
// (twoHop=true: hop 1 spreads over random intermediates and hop 2
// converges over the receiver's k-1 incoming links, ~x/k per link per
// hop). The contrast quantifies what two-hop routing buys when a source
// is adversarially concentrated; it is the routing primitive Algorithm 1
// invokes for its light-vertex token counts.
func FixedDestinationExperiment(k, x, bandwidth int, twoHop bool, seed uint64) (*RandomRouteResult, error) {
	var delivered int64
	deliveredPer := make([]int64, k)
	final := core.MachineID(k - 1)
	cluster := core.NewCluster(core.Config{K: k, Bandwidth: bandwidth, Seed: seed},
		func(id core.MachineID) core.Machine[Hop[routeProbe]] {
			return core.MachineFunc[Hop[routeProbe]](func(ctx *core.StepContext, inbox []core.Envelope[Hop[routeProbe]]) ([]core.Envelope[Hop[routeProbe]], bool) {
				got, forwards := Deliver(ctx.Self, inbox)
				deliveredPer[ctx.Self] += int64(len(got))
				if ctx.Superstep > 0 || ctx.Self != 0 {
					return forwards, true
				}
				out := forwards
				for i := 0; i < x; i++ {
					if twoHop {
						out = Route(out, ctx.RNG, ctx.K, final, 1, routeProbe{Token: int32(i)})
					} else {
						out = RouteDirect(out, final, 1, routeProbe{Token: int32(i)})
					}
				}
				return out, true
			})
		})
	stats, err := cluster.Run()
	if err != nil {
		return nil, err
	}
	for _, d := range deliveredPer {
		delivered += d
	}
	return &RandomRouteResult{Stats: stats, Delivered: delivered}, nil
}
