package routing

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/rng"
)

func TestDeliverSplitsFinalsAndForwards(t *testing.T) {
	inbox := []core.Envelope[Hop[int]]{
		{From: 1, To: 2, Words: 1, Msg: Hop[int]{Final: 2, Msg: 10}},
		{From: 1, To: 2, Words: 1, Msg: Hop[int]{Final: 5, Msg: 20}},
		{From: 3, To: 2, Words: 2, Msg: Hop[int]{Final: 2, Msg: 30}},
	}
	delivered, forwards := Deliver(core.MachineID(2), inbox)
	if len(delivered) != 2 || delivered[0] != 10 || delivered[1] != 30 {
		t.Errorf("delivered = %v, want [10 30]", delivered)
	}
	if len(forwards) != 1 || forwards[0].To != 5 || forwards[0].Words != 1 {
		t.Errorf("forwards = %+v, want one envelope to 5", forwards)
	}
}

func TestRouteChoosesIntermediate(t *testing.T) {
	r := rng.New(5)
	const k = 10
	counts := make([]int, k)
	for i := 0; i < 1000; i++ {
		out := Route(nil, r, k, 3, 1, i)
		if len(out) != 1 {
			t.Fatal("Route did not append exactly one envelope")
		}
		counts[out[0].To]++
		if out[0].Msg.Final != 3 {
			t.Fatal("Route lost the final destination")
		}
	}
	for m, c := range counts {
		if c == 0 {
			t.Errorf("intermediate %d never chosen in 1000 routes", m)
		}
	}
}

func TestRandomRouteDeliversEverything(t *testing.T) {
	const k, x = 8, 50
	res, err := RandomRouteExperiment(k, x, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Self-addressed messages are delivered too (they are just free).
	if res.Delivered != int64(k*x) {
		t.Errorf("delivered %d messages, want %d", res.Delivered, k*x)
	}
}

// TestLemma13Scaling: x random-destination messages per machine route in
// O((x log x)/k) rounds; doubling k should roughly halve the rounds once
// x/k dominates the +1 floor.
func TestLemma13Scaling(t *testing.T) {
	const x = 2048
	rounds := map[int]int64{}
	for _, k := range []int{4, 8, 16} {
		var total int64
		for seed := uint64(0); seed < 4; seed++ {
			res, err := RandomRouteExperiment(k, x, 1, seed)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stats.Rounds
		}
		rounds[k] = total / 4
	}
	if r := float64(rounds[4]) / float64(rounds[8]); r < 1.5 || r > 2.6 {
		t.Errorf("k 4->8 speedup %.2fx, want ~2x", r)
	}
	if r := float64(rounds[8]) / float64(rounds[16]); r < 1.5 || r > 2.6 {
		t.Errorf("k 8->16 speedup %.2fx, want ~2x", r)
	}
}

// TestTwoHopBeatsDirectForConcentratedSource: a single source sending x
// messages to a single destination is ~k/2 times faster with Valiant
// routing (x/k per link per hop vs x on one link).
func TestTwoHopBeatsDirectForConcentratedSource(t *testing.T) {
	const k, x = 16, 4096
	direct, err := FixedDestinationExperiment(k, x, 1, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	twohop, err := FixedDestinationExperiment(k, x, 1, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Delivered != x || twohop.Delivered != x {
		t.Fatalf("delivered %d / %d, want %d each", direct.Delivered, twohop.Delivered, x)
	}
	if direct.Stats.Rounds != x {
		t.Errorf("direct rounds = %d, want exactly x = %d (single hot link)", direct.Stats.Rounds, x)
	}
	speedup := float64(direct.Stats.Rounds) / float64(twohop.Stats.Rounds)
	if speedup < float64(k)/4 {
		t.Errorf("two-hop speedup %.1fx, want >= k/4 = %.1fx", speedup, float64(k)/4)
	}
}

func TestHeavyDegreeThresholdMonotone(t *testing.T) {
	if HeavyDegreeThreshold(2, 10) < 1 {
		t.Error("threshold below 1")
	}
	if HeavyDegreeThreshold(4, 1000) >= HeavyDegreeThreshold(8, 1000) {
		t.Error("threshold not increasing in k")
	}
	if HeavyDegreeThreshold(4, 100) >= HeavyDegreeThreshold(4, 100000) {
		t.Error("threshold not increasing in n")
	}
}

func TestDesignatedEndpointConsistentAndCovering(t *testing.T) {
	// The designation is a pure function: both endpoints' home machines
	// must compute the same sender, and over many edges with symmetric
	// flags the coin should pick both sides.
	pickedU, pickedV := 0, 0
	for u := int32(0); u < 100; u++ {
		for v := u + 1; v < 100; v += 7 {
			a := DesignatedEndpoint(u, v, false, false, 9)
			b := DesignatedEndpoint(v, u, false, false, 9) // arg order must not matter
			if (a == u) != (b == u) {
				t.Fatalf("designation of {%d,%d} depends on argument order", u, v)
			}
			if a == u {
				pickedU++
			} else {
				pickedV++
			}
		}
	}
	if pickedU == 0 || pickedV == 0 {
		t.Errorf("designation coin never picks one side (u:%d v:%d)", pickedU, pickedV)
	}
}

func TestDesignatedEndpointAvoidsHeavy(t *testing.T) {
	for u := int32(0); u < 50; u++ {
		v := u + 1
		if got := DesignatedEndpoint(u, v, true, false, 1); got != v {
			t.Fatalf("heavy u: designated %d, want light endpoint %d", got, v)
		}
		if got := DesignatedEndpoint(u, v, false, true, 1); got != u {
			t.Fatalf("heavy v: designated %d, want light endpoint %d", got, u)
		}
	}
}
