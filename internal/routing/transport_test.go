package routing

import (
	"testing"

	"kmachine/internal/transport"
)

// The routing workloads over real TCP sockets must deliver the same
// payloads and report identical statistics as the loopback runs — the
// HopCodec framing and the probe codec are exercised end to end here
// (every other package had an inmem-vs-TCP test; this closes the gap
// for routing, whose two-hop machinery the others build on).

func sameRouteResult(t *testing.T, label string, tcp, mem *RandomRouteResult) {
	t.Helper()
	if tcp.Delivered != mem.Delivered {
		t.Errorf("%s: delivered over tcp %d, inmem %d", label, tcp.Delivered, mem.Delivered)
	}
	if tcp.Stats.Rounds != mem.Stats.Rounds || tcp.Stats.Words != mem.Stats.Words ||
		tcp.Stats.Messages != mem.Stats.Messages || tcp.Stats.Supersteps != mem.Stats.Supersteps ||
		tcp.Stats.MaxRecvWords != mem.Stats.MaxRecvWords {
		t.Errorf("%s stats diverge:\n tcp:   %+v\n inmem: %+v", label, *tcp.Stats, *mem.Stats)
	}
}

func TestRandomRouteOverTCPMatchesInMemory(t *testing.T) {
	const (
		k    = 6
		x    = 400
		bw   = 8
		seed = 41
	)
	mem, err := RandomRouteExperiment(k, x, bw, seed)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := RandomRouteExperimentOn(transport.TCP, k, x, bw, seed)
	if err != nil {
		t.Fatal(err)
	}
	sameRouteResult(t, "random-route", tcp, mem)
	if mem.Delivered != k*x {
		t.Errorf("delivered %d probes, want %d", mem.Delivered, k*x)
	}
}

func TestFixedDestinationOverTCPMatchesInMemory(t *testing.T) {
	const (
		k    = 6
		x    = 300
		bw   = 8
		seed = 43
	)
	for _, twoHop := range []bool{false, true} {
		mem, err := FixedDestinationExperiment(k, x, bw, twoHop, seed)
		if err != nil {
			t.Fatal(err)
		}
		tcp, err := FixedDestinationExperimentOn(transport.TCP, k, x, bw, twoHop, seed)
		if err != nil {
			t.Fatal(err)
		}
		label := "direct"
		if twoHop {
			label = "two-hop"
		}
		sameRouteResult(t, label, tcp, mem)
		if mem.Delivered != x {
			t.Errorf("%s: delivered %d, want %d", label, mem.Delivered, x)
		}
	}
}
