package routing

import (
	"fmt"
	"math"

	"kmachine/internal/core"
	"kmachine/internal/transport/wire"
)

// HopCodec lifts a payload codec to the two-hop Hop[M] framing: the
// final destination is prepended as a uvarint. Algorithms that route
// through random intermediates compose this with their message codec to
// obtain the wire format of their full envelope payload.
func HopCodec[M any](inner wire.Codec[M]) wire.Codec[Hop[M]] {
	return hopCodec[M]{inner: inner}
}

type hopCodec[M any] struct {
	inner wire.Codec[M]
}

func (c hopCodec[M]) Append(dst []byte, h Hop[M]) ([]byte, error) {
	if h.Final < 0 {
		return dst, fmt.Errorf("routing: hop with negative final destination %d", h.Final)
	}
	dst = wire.AppendUvarint(dst, uint64(h.Final))
	return c.inner.Append(dst, h.Msg)
}

func (c hopCodec[M]) Decode(src []byte) (Hop[M], int, error) {
	final, n, err := wire.Uvarint(src)
	if err != nil {
		return Hop[M]{}, 0, err
	}
	if final > math.MaxInt32 {
		return Hop[M]{}, 0, fmt.Errorf("routing: hop destination %d out of range", final)
	}
	msg, m, err := c.inner.Decode(src[n:])
	if err != nil {
		return Hop[M]{}, 0, err
	}
	return Hop[M]{Final: core.MachineID(final), Msg: msg}, n + m, nil
}
