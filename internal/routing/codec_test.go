package routing

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/transport/wire"
)

type u64Codec struct{}

func (u64Codec) Append(dst []byte, v uint64) ([]byte, error) { return wire.AppendUvarint(dst, v), nil }
func (u64Codec) Decode(src []byte) (uint64, int, error)      { return wire.Uvarint(src) }

func TestHopCodecRoundTripAndGuards(t *testing.T) {
	c := HopCodec[uint64](u64Codec{})
	for _, final := range []core.MachineID{0, 1, 1 << 20} {
		h := Hop[uint64]{Final: final, Msg: 12345}
		buf, err := c.Append(nil, h)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := c.Decode(buf)
		if err != nil || got != h || n != len(buf) {
			t.Fatalf("round trip %+v: got %+v (n=%d, err=%v)", h, got, n, err)
		}
	}
	if _, err := c.Append(nil, Hop[uint64]{Final: -1}); err == nil {
		t.Error("negative Final encoded without error")
	}
	// A corrupted frame whose Final decodes above int32 range must be
	// rejected, not silently truncated into a wrong MachineID.
	bad := wire.AppendUvarint(nil, 1<<40)
	bad = wire.AppendUvarint(bad, 7)
	if _, _, err := c.Decode(bad); err == nil {
		t.Error("out-of-range Final decoded without error")
	}
}
