package routing

import (
	"fmt"

	"kmachine/internal/algo"
	"kmachine/internal/partition"
)

// The registry entry for the routing workload: the Lemma 13 random-route
// experiment as a registered algorithm, so the cross-substrate
// equivalence suite and cmd/kmnode exercise the two-hop machinery the
// other algorithms build on. Every machine sends N one-word probes to
// uniformly random destinations; the output is the cluster-wide
// delivery count.

// Descriptor returns the algo-layer descriptor of a random-route run
// with x probes per machine. The merged output is the per-machine
// delivery vector, NOT the total: the total is an invariant (k·x) of
// the problem size, so only the vector can witness misrouted probes in
// the cross-substrate hash comparisons.
func Descriptor(x int) algo.Algorithm[routeProbe, int64, []int64] {
	return algo.Algorithm[routeProbe, int64, []int64]{
		Name:  "routing",
		Codec: probeCodec{},
		NewMachine: func(view partition.View) (algo.Machine[routeProbe, int64], error) {
			return &randomRouteMachine{x: x}, nil
		},
		Merge: func(locals []int64) []int64 { return locals },
	}
}

func init() {
	algo.Register(algo.Spec[routeProbe, int64, []int64]{
		Name: "routing",
		Doc:  "Lemma 13 random routing: every machine sends n one-word probes to uniform destinations",
		Build: func(prob algo.Problem) (algo.Algorithm[routeProbe, int64, []int64], partition.Input, error) {
			// The workload is synthetic — the partition only carries the
			// machine identities, so it covers an edgeless graph.
			return Descriptor(prob.N), algo.EdgelessInput(prob), nil
		},
		Hash: func(perMachine []int64) uint64 {
			h := algo.NewHash64()
			for _, d := range perMachine {
				h.Add(uint64(d))
			}
			return h.Sum()
		},
		Summarize: func(perMachine []int64, top int) []string {
			return []string{fmt.Sprintf("routing: %d probes delivered across %d machines",
				sumDelivered(perMachine), len(perMachine))}
		},
		SummarizeLocal: func(delivered int64, top int) []string {
			return []string{fmt.Sprintf("routing: this machine received %d probes", delivered)}
		},
	})
}
