package routing

import (
	"fmt"

	twire "kmachine/internal/transport/wire"
)

// SnapshotState serialises the probe machine's single dynamic field:
// the delivered-probe counter. The send fan-out x is static
// configuration.
func (m *randomRouteMachine) SnapshotState(dst []byte) ([]byte, error) {
	return twire.AppendVarint(dst, m.delivered), nil
}

// RestoreState overwrites the delivered-probe counter from a
// SnapshotState blob.
func (m *randomRouteMachine) RestoreState(src []byte) error {
	c := twire.Cursor{Src: src}
	d := c.Varint()
	if err := c.Finish(); err != nil {
		return fmt.Errorf("routing: restore: %w", err)
	}
	m.delivered = d
	return nil
}
