package conncomp

import (
	"fmt"

	"kmachine/internal/algo"
	"kmachine/internal/partition"
)

// Local is one machine's share of a connectivity output: the converged
// labels of its locally homed vertices plus its phase count.
type Local struct {
	// Label maps each locally homed vertex to the minimum vertex ID of
	// its component.
	Label map[int32]int32
	// Phases is the number of label-propagation phases this machine ran.
	Phases int
}

// Output implements algo.Machine.
func (m *ccMachine) Output() Local {
	return Local{Label: m.label, Phases: m.phase}
}

// Descriptor returns the algo-layer descriptor of a connectivity run
// over an n-vertex input.
func Descriptor(n int) algo.Algorithm[Wire, Local, *Result] {
	return algo.Algorithm[Wire, Local, *Result]{
		Name:  "conncomp",
		Codec: WireCodec(),
		NewMachine: func(view partition.View) (algo.Machine[Wire, Local], error) {
			return newCCMachine(view), nil
		},
		Merge: func(locals []Local) *Result {
			res := &Result{Label: make([]int32, n)}
			distinct := map[int32]bool{}
			for _, l := range locals {
				if l.Phases > res.Phases {
					res.Phases = l.Phases
				}
				for v, lbl := range l.Label {
					res.Label[v] = lbl
					distinct[lbl] = true
				}
			}
			res.Components = len(distinct)
			return res
		},
	}
}

func init() {
	algo.Register(algo.Spec[Wire, Local, *Result]{
		Name: "conncomp",
		Doc:  "connected components by min-label propagation (§1.3 cookbook, Ω̃(n/k²) via GLBT)",
		Build: func(prob algo.Problem) (algo.Algorithm[Wire, Local, *Result], partition.Input, error) {
			in, err := algo.GnpInput(prob)
			if err != nil {
				return algo.Algorithm[Wire, Local, *Result]{}, nil, err
			}
			return Descriptor(prob.N), in, nil
		},
		Hash: func(r *Result) uint64 {
			h := algo.NewHash64()
			for _, l := range r.Label {
				h.Add(uint64(uint32(l)))
			}
			h.Add(uint64(r.Components))
			h.Add(uint64(r.Phases))
			return h.Sum()
		},
		Summarize: func(r *Result, top int) []string {
			return []string{fmt.Sprintf("conncomp: %d components over %d vertices in %d phases",
				r.Components, len(r.Label), r.Phases)}
		},
		SummarizeLocal: func(l Local, top int) []string {
			distinct := map[int32]bool{}
			for _, lbl := range l.Label {
				distinct[lbl] = true
			}
			return []string{fmt.Sprintf("conncomp: this machine labels %d vertices with %d distinct component labels (%d phases)",
				len(l.Label), len(distinct), l.Phases)}
		},
	})
}
