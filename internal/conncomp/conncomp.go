// Package conncomp implements connected components in the k-machine
// model — the §1.3 cookbook example where the General Lower Bound
// Theorem directly yields Ω̃(n/k²) (matched by the MST/connectivity
// algorithms of Pandurangan et al. [51]).
//
// The algorithm here is synchronous minimum-label propagation with local
// collapsing: every machine first merges its local vertices with a
// union-find over the edges it already holds (free local computation),
// then repeatedly exchanges per-destination-aggregated minimum labels
// across cut edges, routed two-hop (Lemma 13). Labels converge to the
// minimum vertex ID of each component within O(supergraph diameter)
// phases — O(log n) whp on the G(n,p) families used in the experiments.
//
// Substitution note (DESIGN.md): the paper's reference point [51]
// achieves Õ(n/k²) deterministically in the phase count via graph
// sketches; label propagation keeps the same per-phase communication
// profile (the quantity the GLBT bounds) with a simpler, fully testable
// mechanism.
package conncomp

import (
	"slices"

	"kmachine/internal/algo"
	"kmachine/internal/core"
	"kmachine/internal/partition"
	"kmachine/internal/routing"
)

const (
	kindLabel = iota // candidate minimum label for a destination vertex
	kindFlag         // "my labels changed this phase" broadcast
)

type cmsg struct {
	Kind    uint8
	V       int32
	Label   int32
	Changed bool
}

type wire = routing.Hop[cmsg]

type ccMachine struct {
	view partition.View

	label  map[int32]int32
	parent map[int32]int32 // local union-find over local-local edges

	phase        int
	anyChange    bool // set when a label changed in the last phase
	flagsChanged bool // OR of all machines' change flags
	flagsSeen    int

	// DeliverInto scratch, recycled across supersteps.
	delivBuf []cmsg
	outBuf   []core.Envelope[wire]
}

func newCCMachine(view partition.View) *ccMachine {
	m := &ccMachine{
		view:   view,
		label:  make(map[int32]int32),
		parent: make(map[int32]int32),
	}
	for _, v := range view.Locals() {
		m.parent[v] = v
	}
	// Local union-find over edges with both endpoints local: free local
	// computation collapses each machine-local component.
	for _, v := range view.Locals() {
		for _, w := range view.OutAdj(v) {
			if view.IsLocal(w) {
				m.union(v, w)
			}
		}
	}
	for _, v := range view.Locals() {
		m.label[v] = m.find(v)
	}
	m.relax()
	return m
}

func (m *ccMachine) find(v int32) int32 {
	for m.parent[v] != v {
		m.parent[v] = m.parent[m.parent[v]]
		v = m.parent[v]
	}
	return v
}

func (m *ccMachine) union(a, b int32) {
	ra, rb := m.find(a), m.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		m.parent[rb] = ra
	} else {
		m.parent[ra] = rb
	}
}

// relax pushes the minimum label of every local union-find class to all
// of its members (free local computation).
func (m *ccMachine) relax() {
	min := make(map[int32]int32)
	for _, v := range m.view.Locals() {
		r := m.find(v)
		if cur, ok := min[r]; !ok || m.label[v] < cur {
			min[r] = m.label[v]
		}
	}
	for _, v := range m.view.Locals() {
		r := m.find(v)
		if m.label[v] != min[r] {
			m.label[v] = min[r]
			m.anyChange = true
		}
	}
}

func (m *ccMachine) Step(ctx *core.StepContext, inbox []core.Envelope[wire]) ([]core.Envelope[wire], bool) {
	delivered, out := routing.DeliverInto(m.view.Self(), inbox, m.delivBuf[:0], m.outBuf[:0])
	m.delivBuf = delivered[:0]
	defer func() { m.outBuf = out[:0] }()
	for _, d := range delivered {
		switch d.Kind {
		case kindLabel:
			if d.Label < m.label[d.V] {
				m.label[d.V] = d.Label
				m.anyChange = true
			}
		case kindFlag:
			m.flagsSeen++
			if d.Changed {
				m.flagsChanged = true
			}
		}
	}

	switch ctx.Superstep % 3 {
	case 0:
		// Phase start: stop if the previous phase changed nothing
		// anywhere (flags from every other machine plus our own state).
		if ctx.Superstep > 0 {
			done := !m.flagsChanged && !m.anyChange
			m.flagsChanged = false
			m.flagsSeen = 0
			if done {
				return out, true
			}
		}
		m.anyChange = false
		m.phase++
		// Send per-destination-aggregated minimum labels over cut edges.
		cand := make(map[int32]int32)
		for _, v := range m.view.Locals() {
			lv := m.label[v]
			for _, w := range m.view.OutAdj(v) {
				if m.view.IsLocal(w) {
					continue
				}
				if cur, ok := cand[w]; !ok || lv < cur {
					cand[w] = lv
				}
			}
		}
		keys := make([]int32, 0, len(cand))
		for w := range cand {
			keys = append(keys, w)
		}
		slices.Sort(keys)
		for _, w := range keys {
			out = routing.Route(out, ctx.RNG, ctx.K, m.view.HomeOf(w), 2,
				cmsg{Kind: kindLabel, V: w, Label: cand[w]})
		}
		return out, false

	case 1:
		// Relay hop for label messages.
		return out, false

	default:
		// Labels have arrived (processed above); collapse locally and
		// broadcast the change flag.
		m.relax()
		for j := 0; j < ctx.K; j++ {
			if core.MachineID(j) == m.view.Self() {
				continue
			}
			out = routing.RouteDirect(out, core.MachineID(j), 1,
				cmsg{Kind: kindFlag, Changed: m.anyChange})
		}
		return out, false
	}
}

// Result reports a connected-components run.
type Result struct {
	// Label[v] is the minimum vertex ID of v's component.
	Label []int32
	// Components is the number of distinct labels.
	Components int
	// Phases is the number of label-propagation phases executed.
	Phases int
	// Stats is the communication profile.
	Stats *core.Stats
}

// Run computes connected components over the partitioned graph,
// routing through the generic internal/algo driver.
func Run(p *partition.VertexPartition, cfg core.Config) (*Result, error) {
	res, stats, err := algo.Run(Descriptor(p.G.N()), p, cfg)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}
