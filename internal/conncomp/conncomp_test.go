package conncomp

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
)

// sequential ground truth by union-find.
func trueComponents(g *graph.Graph) []int32 {
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	g.Edges(func(u, v int32) bool {
		ru, rv := find(u), find(v)
		if ru != rv {
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
		return true
	})
	labels := make([]int32, g.N())
	// Minimum-ID representative: find() with min-union already yields it.
	for v := range labels {
		labels[v] = find(int32(v))
	}
	return labels
}

func runCC(t *testing.T, g *graph.Graph, k int, seed uint64) *Result {
	t.Helper()
	p := partition.NewRVP(g, k, seed)
	res, err := Run(p, core.Config{K: k, Bandwidth: core.DefaultBandwidth(g.N()), Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkLabels(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	want := trueComponents(g)
	for v := range want {
		if res.Label[v] != want[v] {
			t.Fatalf("vertex %d labelled %d, want %d", v, res.Label[v], want[v])
		}
	}
}

func TestConnectedGnp(t *testing.T) {
	g := gen.Gnp(500, 0.02, 3) // far above the connectivity threshold
	res := runCC(t, g, 8, 5)
	checkLabels(t, g, res)
	if res.Components != 1 {
		t.Errorf("components = %d, want 1", res.Components)
	}
}

func TestManyComponents(t *testing.T) {
	// Disjoint triangles: 40 components.
	g := gen.PlantedTriangles(40, 0, 7)
	res := runCC(t, g, 8, 9)
	checkLabels(t, g, res)
	if res.Components != 40 {
		t.Errorf("components = %d, want 40", res.Components)
	}
}

func TestIsolatedVertices(t *testing.T) {
	b := graph.NewBuilder(10, false)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	res := runCC(t, g, 4, 11)
	checkLabels(t, g, res)
	if res.Components != 8 {
		t.Errorf("components = %d, want 8 (2 pairs + 6 singletons)", res.Components)
	}
}

func TestPathGraph(t *testing.T) {
	// Worst case for label propagation diameter; still must be exact.
	g := gen.Path(120)
	res := runCC(t, g, 4, 13)
	checkLabels(t, g, res)
	if res.Components != 1 {
		t.Errorf("path components = %d, want 1", res.Components)
	}
}

func TestStarAndCycle(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"star":  gen.Star(200),
		"cycle": gen.Cycle(200),
	} {
		res := runCC(t, g, 8, 17)
		checkLabels(t, g, res)
		if res.Components != 1 {
			t.Errorf("%s components = %d, want 1", name, res.Components)
		}
	}
}

func TestPhasesLogarithmicOnGnp(t *testing.T) {
	// Above the connectivity threshold the supergraph diameter is
	// O(log n) whp, so phases should be small.
	g := gen.Gnp(2000, 0.006, 19)
	res := runCC(t, g, 16, 23)
	checkLabels(t, g, res)
	if res.Phases > 30 {
		t.Errorf("took %d phases on G(n,p); expected O(log n)", res.Phases)
	}
}

func TestRoundsImproveWithK(t *testing.T) {
	g := gen.Gnp(3000, 0.004, 29)
	r4 := runCC(t, g, 4, 31)
	r16 := runCC(t, g, 16, 31)
	checkLabels(t, g, r4)
	checkLabels(t, g, r16)
	if r16.Stats.Rounds >= r4.Stats.Rounds {
		t.Errorf("rounds did not improve with k: k=4 -> %d, k=16 -> %d",
			r4.Stats.Rounds, r16.Stats.Rounds)
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.Gnp(300, 0.02, 37)
	a := runCC(t, g, 8, 41)
	b := runCC(t, g, 8, 41)
	if a.Stats.Rounds != b.Stats.Rounds || a.Components != b.Components {
		t.Error("identical runs disagree")
	}
}

func TestRejectsMismatchedK(t *testing.T) {
	g := gen.Path(10)
	p := partition.NewRVP(g, 4, 1)
	if _, err := Run(p, core.Config{K: 8, Bandwidth: 4, Seed: 1}); err == nil {
		t.Error("mismatched k accepted")
	}
}
