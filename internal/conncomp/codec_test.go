package conncomp

import (
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/rng"
)

func TestWireCodecRoundTripProperty(t *testing.T) {
	r := rng.New(23)
	c := WireCodec()
	kinds := []uint8{kindLabel, kindFlag}
	for i := 0; i < 3000; i++ {
		want := Wire{
			Final: core.MachineID(r.Intn(1 << 16)),
			Msg: cmsg{
				Kind:    kinds[r.Intn(len(kinds))],
				V:       int32(r.Uint64()),
				Label:   int32(r.Uint64()),
				Changed: r.Intn(2) == 0,
			},
		}
		buf, err := c.Append(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := c.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || n != len(buf) {
			t.Fatalf("round trip: got %+v (n=%d), want %+v (len=%d)", got, n, want, len(buf))
		}
	}
}
