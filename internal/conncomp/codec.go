package conncomp

import (
	"fmt"

	"kmachine/internal/routing"
	twire "kmachine/internal/transport/wire"
)

// Wire is the envelope payload type of a connectivity run: the label /
// change-flag message in its two-hop routing frame.
type Wire = wire

// WireCodec returns the binary codec for connectivity envelopes.
func WireCodec() twire.Codec[Wire] {
	return routing.HopCodec[cmsg](cmsgCodec{})
}

type cmsgCodec struct{}

func (cmsgCodec) Append(dst []byte, m cmsg) ([]byte, error) {
	flags := m.Kind << 1
	if m.Changed {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = twire.AppendVarint(dst, int64(m.V))
	return twire.AppendVarint(dst, int64(m.Label)), nil
}

func (cmsgCodec) Decode(src []byte) (cmsg, int, error) {
	if len(src) < 1 {
		return cmsg{}, 0, fmt.Errorf("conncomp: truncated message")
	}
	m := cmsg{Kind: src[0] >> 1, Changed: src[0]&1 != 0}
	pos := 1
	v, n, err := twire.Varint(src[pos:])
	if err != nil {
		return cmsg{}, 0, err
	}
	m.V = int32(v)
	pos += n
	l, n, err := twire.Varint(src[pos:])
	if err != nil {
		return cmsg{}, 0, err
	}
	m.Label = int32(l)
	return m, pos + n, nil
}
