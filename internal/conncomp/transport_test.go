package conncomp

import (
	"reflect"
	"testing"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/partition"
	"kmachine/internal/transport"
)

// Connectivity over real TCP sockets must label every vertex exactly
// like the loopback run and report identical statistics.
func TestComponentsOverTCPMatchesInMemory(t *testing.T) {
	const (
		n    = 400
		k    = 4
		seed = 29
	)
	g := gen.Gnp(n, 2.0/float64(n), seed) // sparse: many components
	p := partition.NewRVP(g, k, seed+1)
	cfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(n), Seed: seed + 2}

	mem, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = transport.TCP
	tcp, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tcp.Label, mem.Label) {
		t.Error("component labels diverge between tcp and inmem")
	}
	if tcp.Components != mem.Components || tcp.Phases != mem.Phases {
		t.Errorf("tcp (components=%d, phases=%d), inmem (components=%d, phases=%d)",
			tcp.Components, tcp.Phases, mem.Components, mem.Phases)
	}
	if tcp.Stats.Rounds != mem.Stats.Rounds || tcp.Stats.Words != mem.Stats.Words ||
		tcp.Stats.Supersteps != mem.Stats.Supersteps {
		t.Errorf("stats diverge: tcp rounds=%d words=%d, inmem rounds=%d words=%d",
			tcp.Stats.Rounds, tcp.Stats.Words, mem.Stats.Rounds, mem.Stats.Words)
	}
}
