package conncomp

import (
	"fmt"

	twire "kmachine/internal/transport/wire"
)

// SnapshotState serialises the machine's dynamic connectivity state:
// the 3-superstep phase cursor, the change/termination flags, and the
// per-local-vertex labels in Locals() order. The local union-find
// (parent) is NOT serialised: unions happen only in the constructor, so
// its set partition is an input invariant — path compression after a
// restore re-derives the same roots the snapshotted machine saw.
func (m *ccMachine) SnapshotState(dst []byte) ([]byte, error) {
	dst = twire.AppendUvarint(dst, uint64(m.phase))
	var flags byte
	if m.anyChange {
		flags |= 1
	}
	if m.flagsChanged {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = twire.AppendUvarint(dst, uint64(m.flagsSeen))
	for _, v := range m.view.Locals() {
		dst = twire.AppendVarint(dst, int64(m.label[v]))
	}
	return dst, nil
}

// RestoreState overwrites the machine's dynamic state from a
// SnapshotState blob taken on a machine built from the same inputs.
// Label entries are overwritten in place (Output aliases the map), and
// delivery scratch reset.
func (m *ccMachine) RestoreState(src []byte) error {
	c := twire.Cursor{Src: src}
	phase := c.Uvarint()
	flags := c.Byte()
	flagsSeen := c.Uvarint()
	for _, v := range m.view.Locals() {
		m.label[v] = int32(c.Varint())
	}
	if err := c.Finish(); err != nil {
		return fmt.Errorf("conncomp: restore: %w", err)
	}
	m.phase = int(phase)
	m.anyChange = flags&1 != 0
	m.flagsChanged = flags&2 != 0
	m.flagsSeen = int(flagsSeen)
	m.delivBuf = m.delivBuf[:0]
	m.outBuf = m.outBuf[:0]
	return nil
}
