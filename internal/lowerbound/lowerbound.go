// Package lowerbound makes the paper's lower-bound constructions (§2)
// empirically checkable:
//
//   - Lemma 5: under the random vertex partition, no machine learns more
//     than O(n·log n / k²) of the Figure-1 graph's weakly connected
//     paths "for free" from its initial assignment — the premise that
//     machines start with little knowledge of Z;
//   - Lemma 10's analogue: on G(n,1/2) every machine initially knows
//     only the O(n²·log n / k) edges incident to its own vertices;
//   - Proposition 2 (Rödl–Ruciński): the number of edges induced by a
//     random t-subset of vertices is at most 3ηt² whp — the concentration
//     result behind Theorem 5's Õ(m/k^{2/3}) per-machine edge load.
//
// Together with package infotheory these turn the lower-bound proofs'
// premises into measured quantities: experiments compare them against
// the closed forms and against what the algorithms actually transfer.
package lowerbound

import (
	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/partition"
	"kmachine/internal/rng"
)

// RevealedPaths returns, per machine, how many weakly connected paths
// (x_j, u_j, t_j, v_j) of the lower-bound graph the machine can
// reconstruct from its initial RVP assignment alone. Following Lemma 5's
// case analysis, path j is revealed to machine M iff M hosts both x_j
// and t_j (learning b_j from x_j's edge and v_j's identity through t_j),
// or both u_j and v_j.
func RevealedPaths(lb *gen.LowerBound, p *partition.VertexPartition) []int {
	counts := make([]int, p.K)
	for j := 0; j < lb.Q; j++ {
		hx := p.Home(int32(lb.X(j)))
		ht := p.Home(int32(lb.T(j)))
		hu := p.Home(int32(lb.U(j)))
		hv := p.Home(int32(lb.V(j)))
		if hx == ht {
			counts[hx]++
		}
		if hu == hv && !(hx == ht && hx == hu) {
			counts[hu]++
		}
	}
	return counts
}

// MaxRevealedPaths is the maximum of RevealedPaths over machines — the
// quantity Lemma 5 bounds by O(n·log n / k²) whp.
func MaxRevealedPaths(lb *gen.LowerBound, p *partition.VertexPartition) int {
	max := 0
	for _, c := range RevealedPaths(lb, p) {
		if c > max {
			max = c
		}
	}
	return max
}

// InitialEdgeKnowledge returns, per machine, the number of distinct
// edges incident to at least one of its local vertices — a machine's
// entire initial knowledge of the characteristic edge vector Z
// (Lemma 10 bounds its maximum by O(n²·log n / k) on G(n,1/2)).
func InitialEdgeKnowledge(p *partition.VertexPartition) []int64 {
	g := p.G
	counts := make([]int64, p.K)
	seenBoth := func(u, v int32) bool { return p.Home(u) == p.Home(v) }
	g.Edges(func(u, v int32) bool {
		counts[p.Home(u)]++
		if !seenBoth(u, v) {
			counts[p.Home(v)]++
		}
		return true
	})
	return counts
}

// InducedEdgeCount returns e(G[R]), the number of edges in the subgraph
// induced by the vertex set R.
func InducedEdgeCount(g *graph.Graph, r []int) int {
	in := make(map[int32]bool, len(r))
	for _, v := range r {
		in[int32(v)] = true
	}
	count := 0
	g.Edges(func(u, v int32) bool {
		if in[u] && in[v] {
			count++
		}
		return true
	})
	return count
}

// Proposition2Check samples `trials` random t-subsets of g's vertices
// and reports the maximum induced edge count together with the
// Rödl–Ruciński bound 3ηt² for η = 2m/n² (the instantiation used in the
// proof of Theorem 5). Proposition 2 requires t ≥ 1/(3η).
type Proposition2Result struct {
	MaxInduced int
	Bound      float64
	Violations int
	Trials     int
}

// Proposition2Check runs the experiment.
func Proposition2Check(g *graph.Graph, t, trials int, seed uint64) Proposition2Result {
	n := g.N()
	eta := 2 * float64(g.M()) / (float64(n) * float64(n))
	bound := 3 * eta * float64(t) * float64(t)
	r := rng.New(seed)
	res := Proposition2Result{Bound: bound, Trials: trials}
	for i := 0; i < trials; i++ {
		subset := r.Sample(n, t)
		e := InducedEdgeCount(g, subset)
		if e > res.MaxInduced {
			res.MaxInduced = e
		}
		if float64(e) > bound {
			res.Violations++
		}
	}
	return res
}

// ColorClassEdgeLoad measures the quantity Theorem 5's proof bounds with
// Proposition 2: the number of edges a triple machine must hold, i.e.
// the edges induced by the union of three random color classes of size
// ~n/c each. It returns the maximum over all c³ triples for a hash
// coloring with the given seed.
func ColorClassEdgeLoad(g *graph.Graph, c int, seed uint64) int {
	n := g.N()
	color := make([]int, n)
	classes := make([][]int, c)
	for v := 0; v < n; v++ {
		cc := int(rng.Mix(seed^(uint64(uint32(v))+0xd1b54a32d192ed03)) % uint64(c))
		color[v] = cc
		classes[cc] = append(classes[cc], v)
	}
	max := 0
	for c1 := 0; c1 < c; c1++ {
		for c2 := c1; c2 < c; c2++ {
			for c3 := c2; c3 < c; c3++ {
				member := map[int]bool{c1: true, c2: true, c3: true}
				count := 0
				g.Edges(func(u, v int32) bool {
					if member[color[u]] && member[color[v]] {
						count++
					}
					return true
				})
				if count > max {
					max = count
				}
			}
		}
	}
	return max
}

// MaxMachineKnowledge converts a per-machine received-words profile into
// bits and returns the maximum — the empirical counterpart of the
// information cost IC a correct run must give some machine (Theorem 1
// premise (2)). n sets the word size.
func MaxMachineKnowledge(stats *core.Stats, n int) int64 {
	return core.Bits(stats.MaxRecvWords, n)
}
