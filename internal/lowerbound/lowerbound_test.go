package lowerbound

import (
	"math"
	"testing"

	"kmachine/internal/gen"
	"kmachine/internal/partition"
)

func TestRevealedPathsManualPartition(t *testing.T) {
	// Small instance: count revelations by hand via the Home function.
	lb := gen.LowerBoundGraph(50, 3)
	p := partition.NewRVP(lb.G, 4, 7)
	counts := RevealedPaths(lb, p)
	var manual [4]int
	for j := 0; j < lb.Q; j++ {
		hx, ht := p.Home(int32(lb.X(j))), p.Home(int32(lb.T(j)))
		hu, hv := p.Home(int32(lb.U(j))), p.Home(int32(lb.V(j)))
		if hx == ht {
			manual[hx]++
		} else if hu == hv {
			manual[hu]++
		} else if hu == hv && hx == ht {
			t.Fatal("unreachable")
		}
	}
	// The implementation counts a doubly-revealed path once for x/t and
	// once for u/v only when machines differ; manual here mirrors the
	// distinct-machine logic loosely, so compare totals within slack.
	var got, want int
	for i := range counts {
		got += counts[i]
		want += manual[i]
	}
	if got < want {
		t.Errorf("revealed paths %d below manual recount %d", got, want)
	}
}

// TestLemma5Scaling is the Lemma 5 experiment: the max number of paths
// revealed to any machine must scale like q/k² (+ whp slack), so
// quadrupling k at fixed size should cut it by roughly 16.
func TestLemma5Scaling(t *testing.T) {
	const q = 20000
	lb := gen.LowerBoundGraph(q, 11)
	avg := func(k int) float64 {
		var total int
		const seeds = 8
		for s := uint64(0); s < seeds; s++ {
			p := partition.NewRVP(lb.G, k, 100+s)
			total += MaxRevealedPaths(lb, p)
		}
		return float64(total) / seeds
	}
	m4, m16 := avg(4), avg(16)
	// Expected max ≈ 2q/k² + concentration slack.
	if m4 < m16 {
		t.Errorf("revealed paths grew with k: k=4 -> %g, k=16 -> %g", m4, m16)
	}
	if ratio := m4 / math.Max(m16, 1); ratio < 6 {
		t.Errorf("k 4->16 revealed-path reduction %.1fx, want ~16x (>= 6x)", ratio)
	}
	// Absolute sanity: way below the trivial bound q.
	if m4 > float64(q)/4 {
		t.Errorf("max revealed %g too close to q=%d; RVP obfuscation broken", m4, q)
	}
}

func TestInitialEdgeKnowledgeBalanced(t *testing.T) {
	// Lemma 10's premise: each machine starts with O(m·log n/k) edges on
	// a dense random graph.
	g := gen.Gnp(300, 0.5, 13)
	const k = 8
	p := partition.NewRVP(g, k, 17)
	counts := InitialEdgeKnowledge(p)
	mean := 2 * float64(g.M()) / k // each edge counted at up to 2 homes
	for i, c := range counts {
		if float64(c) > 2*mean {
			t.Errorf("machine %d knows %d edges, > 2x mean %g", i, c, mean)
		}
	}
	// Total with double counting is between m and 2m.
	var total int64
	for _, c := range counts {
		total += c
	}
	if total < int64(g.M()) || total > 2*int64(g.M()) {
		t.Errorf("total edge knowledge %d outside [m, 2m] = [%d, %d]", total, g.M(), 2*g.M())
	}
}

func TestInducedEdgeCountComplete(t *testing.T) {
	g := gen.Complete(20)
	r := []int{0, 1, 2, 3, 4}
	if got := InducedEdgeCount(g, r); got != 10 {
		t.Errorf("induced edges of 5-subset of K20 = %d, want C(5,2)=10", got)
	}
}

func TestProposition2Holds(t *testing.T) {
	// e(G[R]) <= 3ηt² whp for η = 2m/n², t >= 1/(3η).
	g := gen.Gnp(400, 0.5, 19)
	res := Proposition2Check(g, 60, 200, 23)
	if res.Violations != 0 {
		t.Errorf("Proposition 2 violated in %d/%d trials (max %d vs bound %g)",
			res.Violations, res.Trials, res.MaxInduced, res.Bound)
	}
	// The bound should not be vacuous: max induced within a small factor.
	if float64(res.MaxInduced)*6 < res.Bound {
		t.Errorf("bound %g is > 6x the observed max %d; check η instantiation",
			res.Bound, res.MaxInduced)
	}
}

func TestProposition2SparseRegime(t *testing.T) {
	// The m < η n² requirement with η = 2m/n² always holds; check a
	// sparse graph too.
	g := gen.Gnp(500, 0.02, 29)
	res := Proposition2Check(g, 150, 100, 31)
	if res.Violations != 0 {
		t.Errorf("sparse Proposition 2 violated %d times", res.Violations)
	}
}

// TestColorClassEdgeLoad verifies the Theorem 5 consequence of
// Proposition 2: the edges a triple machine holds are Õ(m/c²) for
// c = k^{1/3} color classes, i.e. Õ(m/k^{2/3}).
func TestColorClassEdgeLoad(t *testing.T) {
	g := gen.Gnp(300, 0.5, 37)
	for _, c := range []int{2, 3, 4} {
		load := ColorClassEdgeLoad(g, c, 41)
		// Triple holds ~3 classes of n/c vertices: expected edges
		// ≈ m·(3/c)², allow 2x slack.
		bound := 2 * float64(g.M()) * 9 / float64(c*c)
		if float64(load) > bound {
			t.Errorf("c=%d: max triple edge load %d exceeds 2x expectation %g", c, load, bound)
		}
	}
}

func TestColorLoadDecreasesWithC(t *testing.T) {
	g := gen.Gnp(300, 0.5, 43)
	l2 := ColorClassEdgeLoad(g, 2, 47)
	l4 := ColorClassEdgeLoad(g, 4, 47)
	if l4 >= l2 {
		t.Errorf("edge load did not shrink with more colors: c=2 -> %d, c=4 -> %d", l2, l4)
	}
}
