package core

import (
	"errors"
	"testing"
)

// pingMsg is a trivial payload for the tests.
type pingMsg struct {
	Hop int
}

// relayMachine sends `count` one-word messages to machine (self+1)%k in
// superstep 0 and is then done.
func relayMachine(count int) func(MachineID) Machine[pingMsg] {
	return func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Superstep > 0 {
				return nil, true
			}
			out := make([]Envelope[pingMsg], 0, count)
			to := MachineID((int(ctx.Self) + 1) % ctx.K)
			for i := 0; i < count; i++ {
				out = append(out, Envelope[pingMsg]{To: to, Words: 1})
			}
			return out, true
		})
	}
}

func TestQuiescentClusterTerminatesInOneSuperstep(t *testing.T) {
	c := NewCluster(Config{K: 4, Bandwidth: 1, Seed: 1}, func(MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(*StepContext, []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			return nil, true
		})
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 0 || st.Supersteps != 0 {
		t.Errorf("idle cluster: rounds=%d supersteps=%d, want 0/0", st.Rounds, st.Supersteps)
	}
}

func TestBandwidthChargesCeil(t *testing.T) {
	// 10 one-word messages on each link, bandwidth 3 -> ceil(10/3)=4
	// rounds for the sending superstep. The final receive-only barrier is
	// pure local computation, which the model costs at zero.
	c := NewCluster(Config{K: 3, Bandwidth: 3, Seed: 1}, relayMachine(10))
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps != 1 {
		t.Fatalf("supersteps = %d, want 1 (drain barrier is free)", st.Supersteps)
	}
	if st.PerSuperstep[0].Rounds != 4 {
		t.Errorf("send superstep charged %d rounds, want ceil(10/3)=4", st.PerSuperstep[0].Rounds)
	}
	if st.Rounds != 4 {
		t.Errorf("total rounds = %d, want 4", st.Rounds)
	}
}

func TestLinkLoadIsPerLinkNotAggregate(t *testing.T) {
	// Machine 0 sends 8 words to machine 1 and 8 to machine 2: two
	// different links, so the superstep costs ceil(8/2)=4 rounds, not 8.
	c := NewCluster(Config{K: 3, Bandwidth: 2, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Superstep > 0 || ctx.Self != 0 {
				return nil, true
			}
			return []Envelope[pingMsg]{
				{To: 1, Words: 8},
				{To: 2, Words: 8},
			}, true
		})
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.PerSuperstep[0].Rounds != 4 {
		t.Errorf("superstep rounds = %d, want 4 (parallel links)", st.PerSuperstep[0].Rounds)
	}
	if st.PerSuperstep[0].MaxLinkWords != 8 {
		t.Errorf("MaxLinkWords = %d, want 8", st.PerSuperstep[0].MaxLinkWords)
	}
}

func TestSelfMessagesAreFree(t *testing.T) {
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Superstep == 0 && ctx.Self == 0 {
				return []Envelope[pingMsg]{{To: 0, Words: 1000, Msg: pingMsg{Hop: 1}}}, true
			}
			for _, e := range inbox {
				if e.Msg.Hop != 1 {
					t.Errorf("self message payload corrupted: %+v", e.Msg)
				}
			}
			return nil, true
		})
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Words != 0 || st.Messages != 0 {
		t.Errorf("self messages were charged: words=%d msgs=%d", st.Words, st.Messages)
	}
	if st.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (one live superstep)", st.Rounds)
	}
}

func TestMessageDeliveryAndFromStamp(t *testing.T) {
	// Ring: each machine passes a token around once; every hop must
	// carry the correct From.
	const k = 5
	type tok struct{ Origin MachineID }
	c := NewCluster(Config{K: k, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[tok] {
		return MachineFunc[tok](func(ctx *StepContext, inbox []Envelope[tok]) ([]Envelope[tok], bool) {
			if ctx.Superstep == 0 {
				return []Envelope[tok]{{
					To:    MachineID((int(ctx.Self) + 1) % k),
					Words: 1,
					Msg:   tok{Origin: ctx.Self},
				}}, true
			}
			for _, e := range inbox {
				wantFrom := MachineID((int(ctx.Self) + k - 1) % k)
				if e.From != wantFrom {
					t.Errorf("machine %d got From=%d, want %d", ctx.Self, e.From, wantFrom)
				}
				if e.Msg.Origin != wantFrom {
					t.Errorf("payload origin %d, want %d", e.Msg.Origin, wantFrom)
				}
			}
			return nil, true
		})
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPerMachineAccounting(t *testing.T) {
	// Machine 0 sends 5 words to 1; machine 1 sends 2 words to 2.
	c := NewCluster(Config{K: 3, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Superstep > 0 {
				return nil, true
			}
			switch ctx.Self {
			case 0:
				return []Envelope[pingMsg]{{To: 1, Words: 5}}, true
			case 1:
				return []Envelope[pingMsg]{{To: 2, Words: 2}}, true
			}
			return nil, true
		})
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.SentWords[0] != 5 || st.SentWords[1] != 2 || st.SentWords[2] != 0 {
		t.Errorf("SentWords = %v, want [5 2 0]", st.SentWords)
	}
	if st.RecvWords[0] != 0 || st.RecvWords[1] != 5 || st.RecvWords[2] != 2 {
		t.Errorf("RecvWords = %v, want [0 5 2]", st.RecvWords)
	}
	if st.MaxRecvWords != 5 {
		t.Errorf("MaxRecvWords = %d, want 5", st.MaxRecvWords)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *Stats {
		// Each machine sends a random number of words to a random peer
		// for 5 supersteps; with fixed seed everything must agree.
		c := NewCluster(Config{K: 6, Bandwidth: 2, Seed: 77}, func(id MachineID) Machine[pingMsg] {
			return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
				if ctx.Superstep >= 5 {
					return nil, true
				}
				to := MachineID(ctx.RNG.Intn(ctx.K))
				return []Envelope[pingMsg]{{To: to, Words: int32(1 + ctx.RNG.Intn(9))}}, false
			})
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Words != b.Words || a.Messages != b.Messages {
		t.Errorf("non-deterministic run: %+v vs %+v", a, b)
	}
	for i := range a.RecvWords {
		if a.RecvWords[i] != b.RecvWords[i] {
			t.Errorf("machine %d RecvWords differ: %d vs %d", i, a.RecvWords[i], b.RecvWords[i])
		}
	}
}

func TestMaxSuperstepsAborts(t *testing.T) {
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1, MaxSupersteps: 10}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			return nil, false // never done
		})
	})
	_, err := c.Run()
	if !errors.Is(err, ErrMaxSupersteps) {
		t.Fatalf("err = %v, want ErrMaxSupersteps", err)
	}
}

func TestInvalidDestinationRejected(t *testing.T) {
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			return []Envelope[pingMsg]{{To: 9, Words: 1}}, true
		})
	})
	if _, err := c.Run(); err == nil {
		t.Fatal("invalid destination not rejected")
	}
}

func TestPendingMessagesKeepClusterAlive(t *testing.T) {
	// A machine that is "done" must still be woken to consume incoming
	// messages before the run terminates.
	var consumed bool
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Self == 1 {
				if len(inbox) > 0 {
					consumed = true
				}
				return nil, true
			}
			if ctx.Superstep == 0 {
				return []Envelope[pingMsg]{{To: 1, Words: 1}}, true
			}
			return nil, true
		})
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !consumed {
		t.Error("message to a done machine was never delivered")
	}
}

func TestDefaultBandwidthGrowsLogarithmically(t *testing.T) {
	if DefaultBandwidth(1) < 1 {
		t.Error("DefaultBandwidth(1) < 1")
	}
	b1k, b1m := DefaultBandwidth(1024), DefaultBandwidth(1<<20)
	if b1k != 11 || b1m != 21 {
		t.Errorf("DefaultBandwidth(1024)=%d, (2^20)=%d; want 11, 21", b1k, b1m)
	}
}

func TestBitsConversion(t *testing.T) {
	// 1024-vertex words are 11 bits under the convention.
	if got := Bits(10, 1024); got != 110 {
		t.Errorf("Bits(10, 1024) = %d, want 110", got)
	}
}

func TestCongestedHotLinkSerialises(t *testing.T) {
	// All of machine 0's traffic to machine 1 serialises on one link,
	// while the same volume spread over k-1 links is ~k-1 times faster —
	// the congestion phenomenon behind the paper's routing lemmas.
	const words = 120
	hot := NewCluster(Config{K: 5, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Superstep > 0 || ctx.Self != 0 {
				return nil, true
			}
			return []Envelope[pingMsg]{{To: 1, Words: words}}, true
		})
	})
	spread := NewCluster(Config{K: 5, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Superstep > 0 || ctx.Self != 0 {
				return nil, true
			}
			out := []Envelope[pingMsg]{}
			for to := 1; to < ctx.K; to++ {
				out = append(out, Envelope[pingMsg]{To: MachineID(to), Words: words / 4})
			}
			return out, true
		})
	})
	hs, err := hot.Run()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := spread.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Rounds != words {
		t.Errorf("hot-link rounds = %d, want %d", hs.Rounds, words)
	}
	if ss.Rounds != words/4 {
		t.Errorf("spread rounds = %d, want %d", ss.Rounds, words/4)
	}
}
