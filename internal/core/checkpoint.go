package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"kmachine/internal/rng"
	"kmachine/internal/transport"
	"kmachine/internal/transport/wire"
)

// This file is the checkpoint/recovery subsystem (ROADMAP item 5): a
// run that loses a machine finishes anyway, with bit-identical output.
//
// The design leans entirely on determinism the repo already guarantees.
// Machine state is a pure function of (seed, inbox history), so a
// checkpoint of all k machines taken at one observation barrier — state
// blobs via each algorithm's Snapshotter, RNG state words, done flags,
// and the superstep's validated outgoing envelopes — is a complete,
// consistent cut of the computation. Recovery reopens a fresh
// transport, restores every machine in place from the latest cut, and
// retries that superstep's exchange; from there the replay is the
// original run, bit for bit, because every machine draws the same
// random words and reads the same inboxes.
//
// Placement of the cut. runLockstep captures a checkpoint after the
// superstep's accounting and before its Exchange. The checkpointed
// Stats therefore already include the captured superstep, and a resumed
// run re-enters the loop at the exchange of that superstep without
// re-accounting it. Quiescence returns before accounting, so a final
// superstep is never captured — a checkpoint always names a superstep
// whose exchange is (re)tryable. An additional arm-time image at
// superstep -1 (fresh state, empty outs, zero stats) covers failures
// that land before the first periodic capture: restoring it is an exact
// restart-from-zero.
//
// What is recoverable: errors that unwrap to *transport.MachineError
// while the run context is still live — the attributed peer-loss class
// chaos injects and real socket failures produce. Panics, context
// cancellation, MaxSupersteps, and validation errors stay fail-fast.

// Snapshotter is the per-machine state codec capability. Machines that
// implement it (all five registry algorithms do, in their state.go
// files) can be checkpointed and restored mid-run.
//
// SnapshotState appends the machine's complete dynamic state to dst and
// returns the extended slice; static input (the partition view, graph
// shard, sort keys) is excluded — a restored machine is rebuilt by the
// same factory and already holds it. RestoreState overwrites every
// dynamic field from a blob SnapshotState produced, including clearing
// scratch state, so the machine's subsequent supersteps are
// bit-identical to the snapshotted original's. Implementations reuse
// the algorithm's wire codec types where state is message-shaped.
type Snapshotter interface {
	SnapshotState(dst []byte) ([]byte, error)
	RestoreState(src []byte) error
}

// DefaultMaxRecoveries bounds machine replacements per run when the
// policy doesn't set its own limit.
const DefaultMaxRecoveries = 3

// CheckpointPolicy is Config.Checkpoint: off by default (Every == 0),
// and the lockstep loop's checkpoint hook is a single nil check when
// off, preserving the engine's zero-allocation steady state and every
// golden hash.
type CheckpointPolicy struct {
	// Every captures a checkpoint each s supersteps (at supersteps
	// Every-1, 2*Every-1, ...). 0 disables checkpointing.
	Every int
	// Sink stores the checkpoint blobs; nil means an in-memory ring of
	// the last two checkpoints (NewMemorySink).
	Sink CheckpointSink
	// MaxRecoveries bounds machine replacements per run; 0 means
	// DefaultMaxRecoveries.
	MaxRecoveries int
}

// CheckpointSink is pluggable checkpoint storage. Put stores the blob
// for one superstep (the sink must copy it — the encoder reuses its
// buffer); Latest returns the most recent stored checkpoint, or
// (-1, nil, nil) when the sink holds none.
type CheckpointSink interface {
	Put(superstep int, blob []byte) error
	Latest() (superstep int, blob []byte, err error)
}

// MemorySink is an in-memory checkpoint ring holding the newest retain
// checkpoints. It also counts every Put and its bytes, which is how E25
// reports bytes-per-checkpoint without touching a disk.
type MemorySink struct {
	mu      sync.Mutex
	retain  int
	entries []memCkpt
	puts    int
	bytes   int64
}

type memCkpt struct {
	step int
	blob []byte
}

// NewMemorySink returns a ring keeping the newest retain checkpoints
// (retain <= 0 means 2: the newest plus one fallback).
func NewMemorySink(retain int) *MemorySink {
	if retain <= 0 {
		retain = 2
	}
	return &MemorySink{retain: retain}
}

// Put implements CheckpointSink.
func (s *MemorySink) Put(superstep int, blob []byte) error {
	cp := append([]byte(nil), blob...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, memCkpt{step: superstep, blob: cp})
	if len(s.entries) > s.retain {
		n := copy(s.entries, s.entries[len(s.entries)-s.retain:])
		for i := n; i < len(s.entries); i++ {
			s.entries[i] = memCkpt{}
		}
		s.entries = s.entries[:n]
	}
	s.puts++
	s.bytes += int64(len(blob))
	return nil
}

// Latest implements CheckpointSink.
func (s *MemorySink) Latest() (int, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return -1, nil, nil
	}
	e := s.entries[len(s.entries)-1]
	return e.step, e.blob, nil
}

// Puts returns how many checkpoints have been stored.
func (s *MemorySink) Puts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts
}

// Bytes returns the total bytes across all Put calls (not just the
// retained ring).
func (s *MemorySink) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// FileSink stores checkpoints as files under a run directory, one file
// per checkpoint (ckpt-<superstep>.kmcp), written atomically via a tmp
// file and rename, pruned to the newest two. The directory is created
// on first Put.
type FileSink struct {
	dir    string
	retain int
}

// NewFileSink returns a file-backed sink rooted at dir.
func NewFileSink(dir string) *FileSink {
	return &FileSink{dir: dir, retain: 2}
}

const ckptFilePrefix, ckptFileSuffix = "ckpt-", ".kmcp"

// Put implements CheckpointSink.
func (s *FileSink) Put(superstep int, blob []byte) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("core: checkpoint dir: %w", err)
	}
	name := fmt.Sprintf("%s%08d%s", ckptFilePrefix, superstep, ckptFileSuffix)
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return err
	}
	steps, err := s.list()
	if err != nil {
		return err
	}
	for len(steps) > s.retain {
		old := fmt.Sprintf("%s%08d%s", ckptFilePrefix, steps[0], ckptFileSuffix)
		if err := os.Remove(filepath.Join(s.dir, old)); err != nil {
			return err
		}
		steps = steps[1:]
	}
	return nil
}

// Latest implements CheckpointSink.
func (s *FileSink) Latest() (int, []byte, error) {
	steps, err := s.list()
	if err != nil || len(steps) == 0 {
		return -1, nil, err
	}
	step := steps[len(steps)-1]
	blob, err := os.ReadFile(filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", ckptFilePrefix, step, ckptFileSuffix)))
	if err != nil {
		return -1, nil, err
	}
	return step, blob, nil
}

// list returns the stored superstep numbers in ascending order.
func (s *FileSink) list() ([]int, error) {
	ents, err := os.ReadDir(s.dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, ckptFilePrefix) || !strings.HasSuffix(name, ckptFileSuffix) {
			continue
		}
		v, err := strconv.Atoi(name[len(ckptFilePrefix) : len(name)-len(ckptFileSuffix)])
		if err != nil {
			continue
		}
		steps = append(steps, v)
	}
	sort.Ints(steps)
	return steps, nil
}

// ckRun is the per-run checkpoint state threaded through runLockstep
// when checkpointing is armed; nil keeps the loop on its fenced
// zero-allocation path.
type ckRun[M any] struct {
	every int
	sink  CheckpointSink
	codec wire.Codec[M]
	snaps []Snapshotter
	rngs  []*rng.RNG

	buf      []byte // encode scratch, reused across captures
	initBlob []byte // arm-time superstep -1 image (restart-from-zero)
	// resume >= 0 asks the next runLockstep call to re-enter at this
	// superstep's exchange with restored outs; -2 means a normal start.
	resume int
}

// Checkpoint blob format (versioned; decode rejects unknown versions):
//
//	"KMCP" ver=1
//	uvarint superstep+1          (+1 encodes the arm-time -1)
//	uvarint k
//	uvarint Rounds, Supersteps, Messages, Words
//	k × uvarint RecvWords; k × uvarint SentWords
//	uvarint len(PerSuperstep), each 6 uvarints
//	per machine: uvarint rngState; flags byte (bit0 done);
//	             uvarint len(state) + state blob;
//	             uvarint len(outs), each: uvarint To, uvarint Words,
//	             codec payload (self-delimiting per wire.Codec)
//
// Stats.Recoveries is deliberately excluded: it is a live counter of
// the run, not part of the computation's cut, and survives restores.
var ckptMagic = []byte{'K', 'M', 'C', 'P', 1}

// arm validates that every machine is checkpointable and captures the
// superstep -1 image.
func (ck *ckRun[M]) arm(c *Cluster[M], e *engine[M], stats *Stats) error {
	ck.snaps = make([]Snapshotter, c.cfg.K)
	for i, m := range c.machines {
		s, ok := m.(Snapshotter)
		if !ok {
			return fmt.Errorf("core: machine %d (%T) does not implement core.Snapshotter; checkpointing needs a per-machine state codec", i, m)
		}
		ck.snaps[i] = s
	}
	blob, err := ck.encode(-1, e, stats)
	if err != nil {
		return err
	}
	ck.initBlob = append([]byte(nil), blob...)
	return nil
}

// capture encodes the cut at superstep step and stores it in the sink.
func (ck *ckRun[M]) capture(step int, e *engine[M], stats *Stats) error {
	blob, err := ck.encode(step, e, stats)
	if err != nil {
		return err
	}
	return ck.sink.Put(step, blob)
}

func (ck *ckRun[M]) encode(step int, e *engine[M], stats *Stats) ([]byte, error) {
	b := append(ck.buf[:0], ckptMagic...)
	b = wire.AppendUvarint(b, uint64(step+1))
	k := len(ck.snaps)
	b = wire.AppendUvarint(b, uint64(k))
	b = wire.AppendUvarint(b, uint64(stats.Rounds))
	b = wire.AppendUvarint(b, uint64(stats.Supersteps))
	b = wire.AppendUvarint(b, uint64(stats.Messages))
	b = wire.AppendUvarint(b, uint64(stats.Words))
	for _, w := range stats.RecvWords {
		b = wire.AppendUvarint(b, uint64(w))
	}
	for _, w := range stats.SentWords {
		b = wire.AppendUvarint(b, uint64(w))
	}
	b = wire.AppendUvarint(b, uint64(len(stats.PerSuperstep)))
	for i := range stats.PerSuperstep {
		ss := &stats.PerSuperstep[i]
		b = wire.AppendUvarint(b, uint64(ss.Rounds))
		b = wire.AppendUvarint(b, uint64(ss.Messages))
		b = wire.AppendUvarint(b, uint64(ss.Words))
		b = wire.AppendUvarint(b, uint64(ss.MaxLinkWords))
		b = wire.AppendUvarint(b, uint64(ss.MaxRecvWords))
		b = wire.AppendUvarint(b, uint64(ss.MaxSentWords))
	}
	var err error
	for i := 0; i < k; i++ {
		b = wire.AppendUvarint(b, ck.rngs[i].State())
		var flags byte
		if e.dones[i] {
			flags |= 1
		}
		b = append(b, flags)
		lenAt := len(b)
		b = wire.AppendUvarint(b, 0) // state length placeholder
		stateAt := len(b)
		if b, err = ck.snaps[i].SnapshotState(b); err != nil {
			return nil, fmt.Errorf("core: snapshot machine %d: %w", i, err)
		}
		b = spliceLen(b, lenAt, stateAt)
		b = wire.AppendUvarint(b, uint64(len(e.outs[i])))
		for j := range e.outs[i] {
			env := &e.outs[i][j]
			b = wire.AppendUvarint(b, uint64(env.To))
			b = wire.AppendUvarint(b, uint64(env.Words))
			if b, err = ck.codec.Append(b, env.Msg); err != nil {
				return nil, fmt.Errorf("core: snapshot machine %d envelope %d: %w", i, j, err)
			}
		}
	}
	ck.buf = b
	return b, nil
}

// spliceLen rewrites the uvarint length placeholder at lenAt (encoded
// as a single zero byte) to the actual length of b[stateAt:], shifting
// the tail when the real uvarint needs more than one byte.
func spliceLen(b []byte, lenAt, stateAt int) []byte {
	n := len(b) - stateAt
	var enc [10]byte
	encLen := len(wire.AppendUvarint(enc[:0], uint64(n)))
	if encLen == 1 {
		b[lenAt] = byte(n)
		return b
	}
	b = append(b, make([]byte, encLen-1)...)
	copy(b[stateAt+encLen-1:], b[stateAt:len(b)-(encLen-1)])
	wire.AppendUvarint(b[lenAt:lenAt], uint64(n))
	return b
}

// restore decodes the latest stored checkpoint (or the arm-time image
// when the sink is empty) into the machines, RNG streams, engine
// buffers, and stats, and returns the superstep the run resumes at
// (-1 for a restart-from-zero).
func (ck *ckRun[M]) restore(e *engine[M], stats *Stats) (int, error) {
	step, blob, err := ck.sink.Latest()
	if err != nil {
		return -1, fmt.Errorf("core: read latest checkpoint: %w", err)
	}
	if blob == nil {
		step, blob = -1, ck.initBlob
	}
	got, err := ck.decodeInto(blob, e, stats)
	if err != nil {
		return -1, err
	}
	if got != step {
		return -1, fmt.Errorf("core: checkpoint blob names superstep %d, sink says %d", got, step)
	}
	return step, nil
}

func (ck *ckRun[M]) decodeInto(blob []byte, e *engine[M], stats *Stats) (int, error) {
	k := len(ck.snaps)
	d := ckDecoder{src: blob}
	for _, m := range ckptMagic {
		if b, err := d.byte(); err != nil || b != m {
			return -1, fmt.Errorf("core: bad checkpoint header")
		}
	}
	step := int(d.uvarint()) - 1
	if gotK := int(d.uvarint()); gotK != k {
		return -1, fmt.Errorf("core: checkpoint for k=%d cluster, running k=%d", gotK, k)
	}
	stats.Rounds = int64(d.uvarint())
	stats.Supersteps = int(d.uvarint())
	stats.Messages = int64(d.uvarint())
	stats.Words = int64(d.uvarint())
	for i := 0; i < k; i++ {
		stats.RecvWords[i] = int64(d.uvarint())
	}
	for i := 0; i < k; i++ {
		stats.SentWords[i] = int64(d.uvarint())
	}
	stats.MaxRecvWords = 0
	nss := int(d.uvarint())
	stats.PerSuperstep = stats.PerSuperstep[:0]
	for i := 0; i < nss; i++ {
		stats.PerSuperstep = append(stats.PerSuperstep, SuperstepStat{
			Rounds:       int64(d.uvarint()),
			Messages:     int64(d.uvarint()),
			Words:        int64(d.uvarint()),
			MaxLinkWords: int64(d.uvarint()),
			MaxRecvWords: int64(d.uvarint()),
			MaxSentWords: int64(d.uvarint()),
		})
	}
	for i := 0; i < k; i++ {
		ck.rngs[i].SetState(d.uvarint())
		flags, err := d.byte()
		if err != nil {
			return -1, err
		}
		e.dones[i] = flags&1 != 0
		state, err := d.bytes(int(d.uvarint()))
		if err != nil {
			return -1, err
		}
		if err := ck.snaps[i].RestoreState(state); err != nil {
			return -1, fmt.Errorf("core: restore machine %d: %w", i, err)
		}
		nOut := int(d.uvarint())
		outs := make([]Envelope[M], 0, nOut)
		for j := 0; j < nOut; j++ {
			env := Envelope[M]{
				From:  MachineID(i),
				To:    MachineID(d.uvarint()),
				Words: int32(d.uvarint()),
			}
			m, n, err := ck.codec.Decode(d.src[d.off:])
			if err != nil {
				return -1, fmt.Errorf("core: decode checkpoint envelope (machine %d): %w", i, err)
			}
			d.off += n
			env.Msg = m
			outs = append(outs, env)
		}
		e.outs[i] = outs
		e.inboxes[i] = nil
		e.panics[i] = nil
	}
	if d.err != nil {
		return -1, fmt.Errorf("core: corrupt checkpoint: %w", d.err)
	}
	return step, nil
}

// ckDecoder is a cursor over a checkpoint blob that latches the first
// error, so the decode body reads linearly.
type ckDecoder struct {
	src []byte
	off int
	err error
}

func (d *ckDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n, err := wire.Uvarint(d.src[d.off:])
	if err != nil {
		d.err = err
		return 0
	}
	d.off += n
	return v
}

func (d *ckDecoder) byte() (byte, error) {
	if d.err == nil && d.off >= len(d.src) {
		d.err = fmt.Errorf("truncated")
	}
	if d.err != nil {
		return 0, d.err
	}
	b := d.src[d.off]
	d.off++
	return b, nil
}

func (d *ckDecoder) bytes(n int) ([]byte, error) {
	if d.err == nil && (n < 0 || d.off+n > len(d.src)) {
		d.err = fmt.Errorf("truncated")
	}
	if d.err != nil {
		return nil, d.err
	}
	b := d.src[d.off : d.off+n]
	d.off += n
	return b, nil
}

// RunCheckpointed executes the cluster over t with the configured
// checkpoint policy and in-run recovery: when the run fails with an
// attributed *transport.MachineError and the context is still live, the
// dead transport is replaced by one from reopen, every machine is
// restored in place from the latest checkpoint, and the run resumes at
// the checkpointed superstep's exchange — a deterministic replay whose
// output is bit-identical to an unkilled run. Recovery is attempted up
// to the policy's MaxRecoveries; Stats.Recoveries counts the
// replacements performed.
//
// The caller owns t (and must Close it, as with RunOn); replacement
// transports created from reopen are owned and closed here. Streaming
// is ignored — checkpointing forces the lockstep schedule, whose
// observation barrier is the consistent cut. With Checkpoint.Every ==
// 0 this is exactly RunOn.
func (c *Cluster[M]) RunCheckpointed(t Transport[M], codec wire.Codec[M], reopen func() (Transport[M], error)) (*Stats, error) {
	pol := c.cfg.Checkpoint
	if pol.Every <= 0 {
		return c.RunOn(t)
	}
	if codec == nil {
		return nil, fmt.Errorf("core: checkpointing needs a message codec for state and envelope serialization")
	}
	k := c.cfg.K
	runCtx := c.cfg.Context
	if runCtx == nil {
		runCtx = context.Background()
	}
	maxRec := pol.MaxRecoveries
	if maxRec <= 0 {
		maxRec = DefaultMaxRecoveries
	}
	sink := pol.Sink
	if sink == nil {
		sink = NewMemorySink(0)
	}

	stats := &Stats{
		RecvWords: make([]int64, k),
		SentWords: make([]int64, k),
	}
	defer stats.finalize()

	e := &engine[M]{
		machines: c.machines,
		rec:      c.cfg.Recorder,
		start:    newBarrier(k + 1),
		done:     newBarrier(k + 1),
		inboxes:  make([][]Envelope[M], k),
		outs:     make([][]Envelope[M], k),
		dones:    make([]bool, k),
		panics:   make([]error, k),
		ctxs:     make([]StepContext, k),
	}
	for i := 0; i < k; i++ {
		e.ctxs[i] = StepContext{Self: MachineID(i), K: k, RNG: c.rngs[i]}
		go e.worker(i)
	}
	defer e.shutdown()

	ck := &ckRun[M]{every: pol.Every, sink: sink, codec: codec, rngs: c.rngs, resume: -2}
	if err := ck.arm(c, e, stats); err != nil {
		return stats, err
	}

	cur := t
	defer func() {
		if cur != t {
			cur.Close()
		}
	}()
	for {
		err := c.runLockstep(e, cur, runCtx, stats, ck)
		if err == nil {
			return stats, nil
		}
		var me *transport.MachineError
		if !errors.As(err, &me) || runCtx.Err() != nil || reopen == nil || stats.Recoveries >= maxRec {
			return stats, err
		}
		step, rerr := ck.restore(e, stats)
		if rerr != nil {
			return stats, fmt.Errorf("core: recovery after %v: %w", err, rerr)
		}
		nt, oerr := reopen()
		if oerr != nil {
			return stats, fmt.Errorf("core: recovery reopen after %v: %w", err, oerr)
		}
		if cur != t {
			cur.Close()
		}
		cur = nt
		stats.Recoveries++
		if step >= 0 {
			ck.resume = step
		} else {
			ck.resume = -2 // restart-from-zero: the arm-time image was restored
		}
	}
}
