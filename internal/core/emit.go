package core

import "kmachine/internal/transport"

// This file is the machine-facing half of streaming supersteps: an
// Emitter bound into a machine's StepContext lets its Step hand a
// finished per-peer batch to the transport (via transport.BatchSender)
// while it is still computing the rest of the superstep. The engine
// (internal/core/engine.go) and the standalone node runtime
// (internal/transport/node) each own one Emitter per machine, reset it
// every superstep, and fold its emission record into the §1.1
// accounting after the step barrier — which is how the word/round
// accounting stays pre-transport and bit-identical to the lockstep
// schedule even though the bytes left early.
//
// Machines opt in through EmitBatch/EmitOrAppend and keep working
// unchanged when no emitter is bound (lockstep runs, substrates without
// the Streamer capability): EmitBatch then reports false and the batch
// travels in the machine's returned outs exactly as before.

// Emitter is the per-machine streaming-emission state for one run. It
// is single-goroutine on the machine side (only machine `self`'s worker
// calls EmitBatch during its Step) and is read by the run coordinator
// strictly after the step barrier, which provides the happens-before
// edge; no locking is needed.
type Emitter[M any] struct {
	sender transport.BatchSender[M]
	self   MachineID
	k      int

	err     error // first SendBatch failure; sticky until Reset
	msgs    int64 // envelopes emitted this superstep (never self-addressed)
	anySent bool  // at least one batch emitted this superstep
	words   []int64
	emitted []bool
	touched []int32 // peers with emitted[·] set, for O(touched) Reset
}

// NewEmitter builds the emission state for machine self of a k-machine
// run over the given sender.
func NewEmitter[M any](sender transport.BatchSender[M], self MachineID, k int) *Emitter[M] {
	return &Emitter[M]{
		sender:  sender,
		self:    self,
		k:       k,
		words:   make([]int64, k),
		emitted: make([]bool, k),
		touched: make([]int32, 0, k),
	}
}

// Bind installs the emitter into the machine's StepContext so
// EmitBatch can find it. Call once per run, before the first Step.
func (em *Emitter[M]) Bind(sc *StepContext) { sc.emitter = em }

// Reset clears the per-superstep emission record. The coordinator
// calls it before each BeginSuperstep.
func (em *Emitter[M]) Reset() {
	for _, j := range em.touched {
		em.emitted[j] = false
		em.words[j] = 0
	}
	em.touched = em.touched[:0]
	em.msgs = 0
	em.anySent = false
	em.err = nil
}

// Err returns the first transport error a SendBatch hit this
// superstep, or nil. A non-nil Err is fatal for the run.
func (em *Emitter[M]) Err() error { return em.err }

// EmittedTo reports whether a batch was already streamed to peer `to`
// this superstep — such a peer must not appear in the machine's
// returned rest envelopes.
func (em *Emitter[M]) EmittedTo(to MachineID) bool {
	return int(to) >= 0 && int(to) < em.k && em.emitted[to]
}

// AccountInto folds the superstep's emitted word loads into row (the
// sender's length-k row of the link-load matrix) and returns the
// emitted envelope count plus whether anything was emitted at all. The
// sums are order-independent, so merging them with the rest envelopes'
// loads reproduces the lockstep accounting exactly.
func (em *Emitter[M]) AccountInto(row []int64) (messages int64, any bool) {
	for _, j := range em.touched {
		row[j] += em.words[j]
	}
	return em.msgs, em.anySent
}

// EmitBatch streams one finished per-peer batch to machine `to` and
// reports whether the transport took it. On true, the batch belongs to
// the transport until the superstep's FinishSuperstep returns — the
// machine must not mutate or recycle it before its next Step — and the
// machine must not address `to` again this superstep (neither via
// EmitBatch nor in its returned outs). On false nothing was sent and
// the machine must route the envelopes through its returned outs as
// usual; false covers every reason eager emission cannot happen — no
// emitter bound (lockstep run), self- or out-of-range destination, a
// peer already emitted to, an invalid envelope (the lockstep validator
// will then report the identical error), or a failing transport.
//
// An empty batch is a successful no-op: nothing ships, `to` stays
// available.
func EmitBatch[M any](sc *StepContext, to MachineID, batch []Envelope[M]) bool {
	em, ok := sc.emitter.(*Emitter[M])
	if !ok || em == nil || em.err != nil {
		return false
	}
	if int(to) < 0 || int(to) >= em.k || to == em.self || em.emitted[to] {
		return false
	}
	if len(batch) == 0 {
		return true
	}
	var words int64
	for i := range batch {
		env := &batch[i]
		if env.To != to || env.Words < 0 {
			return false
		}
		words += int64(env.Words)
	}
	for i := range batch {
		batch[i].From = em.self
	}
	if err := em.sender.SendBatch(em.self, to, batch); err != nil {
		em.err = err
		return false
	}
	em.emitted[to] = true
	em.touched = append(em.touched, int32(to))
	em.words[to] = words
	em.msgs += int64(len(batch))
	em.anySent = true
	return true
}

// EmitOrAppend streams batch to `to` when the run supports it and
// otherwise appends the batch to out, returning the (possibly grown)
// out slice — the one-liner that lets an algorithm keep a single code
// path for both schedules:
//
//	out = core.EmitOrAppend(ctx, to, m.bucket[to], out)
func EmitOrAppend[M any](sc *StepContext, to MachineID, batch []Envelope[M], out []Envelope[M]) []Envelope[M] {
	if EmitBatch(sc, to, batch) {
		return out
	}
	return append(out, batch...)
}

// EmitBuckets emits every non-empty per-destination bucket (buckets[j]
// holds the envelopes addressed to machine j) in ascending peer order,
// appending to out whatever could not be streamed — self-addressed
// buckets always land in out, where the engine delivers them for free.
// Per-destination envelope order is preserved either way, which is the
// property that keeps inbox assembly, and hence the golden output
// hashes, independent of the schedule.
func EmitBuckets[M any](sc *StepContext, buckets [][]Envelope[M], out []Envelope[M]) []Envelope[M] {
	for j := range buckets {
		if len(buckets[j]) == 0 {
			continue
		}
		out = EmitOrAppend(sc, MachineID(j), buckets[j], out)
	}
	return out
}
