// Package core implements the k-machine model of the paper (§1.1) as an
// executable substrate.
//
// A Cluster runs k Machine implementations that are pairwise connected by
// bidirectional point-to-point links. Computation advances in supersteps:
// in each superstep every machine consumes the messages delivered to it,
// performs free local computation, and emits messages for the next
// superstep. Every machine's Step executes in its own goroutine and the
// cluster synchronises them with a barrier — machines share nothing and
// communicate only through envelopes, CSP style.
//
// Cost model. The paper charges one round per B bits crossing a link, and
// a phase that puts L bits on the most loaded link costs ceil(L/B) rounds
// (this is precisely the quantity bounded in Lemma 13 and Lemmas 12/14).
// The cluster therefore accounts a superstep at
//
//	max(1, ceil(max-link-words / Bandwidth))
//
// rounds, where message sizes are counted in words (1 word = Θ(log n)
// bits, so Bandwidth in words corresponds to the paper's B = Θ(polylog n)
// bits). Measured round totals consequently reproduce the congestion
// behaviour the theorems describe: a machine that must receive R words
// needs at least R/(k-1)/Bandwidth rounds no matter how the senders
// schedule, and a single hot link serialises.
//
// Determinism. Machine i draws randomness from its own SplitMix64 stream
// seeded by (runSeed, i), and inboxes are assembled in machine order, so
// a run is a pure function of (machines, Config).
package core

import (
	"errors"
	"fmt"
	"sync"

	"kmachine/internal/rng"
	"kmachine/internal/transport"
	"kmachine/internal/transport/inmem"
)

// MachineID identifies one of the k machines.
type MachineID = transport.MachineID

// Envelope is one message in flight. Words is its size in machine words
// for bandwidth accounting; From is stamped by the cluster.
type Envelope[M any] = transport.Envelope[M]

// Transport moves one superstep's batched envelopes between machines;
// see the contract in internal/transport. Cluster.RunOn accepts any
// implementation, and all word/round accounting happens in this package
// before envelopes reach the transport, so Stats are bit-identical on
// every substrate.
type Transport[M any] = transport.Transport[M]

// Machine is one of the k participants. Step consumes the envelopes
// delivered this superstep and returns the envelopes to send; done
// reports that this machine has no further work of its own (it may still
// be woken by incoming messages, and must then return done again once
// idle). The computation terminates when every machine reports done and
// no envelope is in flight.
type Machine[M any] interface {
	Step(ctx *StepContext, inbox []Envelope[M]) (out []Envelope[M], done bool)
}

// MachineFunc adapts a function to the Machine interface.
type MachineFunc[M any] func(ctx *StepContext, inbox []Envelope[M]) ([]Envelope[M], bool)

// Step implements Machine.
func (f MachineFunc[M]) Step(ctx *StepContext, inbox []Envelope[M]) ([]Envelope[M], bool) {
	return f(ctx, inbox)
}

// StepContext carries per-machine, per-superstep environment.
type StepContext struct {
	// Self is the executing machine's ID.
	Self MachineID
	// K is the number of machines.
	K int
	// Superstep is the zero-based superstep index.
	Superstep int
	// RNG is the machine's private random stream (paper: "each machine
	// has access to a private source of true random bits").
	RNG *rng.RNG
}

// Config configures a cluster run.
type Config struct {
	// K is the number of machines (k > 2 in the paper; we accept k >= 2,
	// and k = n gives the congested clique of Corollary 1).
	K int
	// Bandwidth is the per-link capacity in words per round (the paper's
	// B, measured in Θ(log n)-bit words). Must be >= 1.
	Bandwidth int
	// Seed derives all machine random streams.
	Seed uint64
	// MaxSupersteps aborts runaway algorithms; 0 means a generous default.
	MaxSupersteps int
	// Transport names the envelope substrate to run on; empty means the
	// in-memory loopback. Core only stores the name — algorithm Run
	// functions resolve it through OpenTransport with their message
	// codec, because building a non-loopback transport needs one.
	Transport transport.Kind
}

// Log2Words returns the machine word size for an n-vertex input under
// the 1 word = ceil(log2 n)+1 bits convention — the shared ceil-log2
// helper behind DefaultBandwidth and Bits.
func Log2Words(n int) int {
	w := 1
	for v := n; v > 1; v >>= 1 {
		w++
	}
	return w
}

// DefaultBandwidth returns the bandwidth used by the experiments for an
// n-vertex input: Θ(log n) words per round, i.e. B = Θ(log² n) bits,
// squarely in the paper's B = Θ(polylog n) regime.
func DefaultBandwidth(n int) int { return Log2Words(n) }

// SuperstepStat records one superstep's communication profile.
type SuperstepStat struct {
	// Rounds charged to this superstep: max(1, ceil(maxLink/Bandwidth)).
	Rounds int64
	// Messages and Words are totals across all links.
	Messages int64
	Words    int64
	// MaxLinkWords is the load of the most loaded directed link.
	MaxLinkWords int64
	// MaxRecvWords / MaxSentWords are the per-machine extremes.
	MaxRecvWords int64
	MaxSentWords int64
}

// Stats aggregates a run.
type Stats struct {
	// Rounds is the measured round complexity (the paper's T).
	Rounds int64
	// Supersteps is the number of barrier phases executed.
	Supersteps int
	// Messages and Words are run totals.
	Messages int64
	Words    int64
	// RecvWords[i] / SentWords[i] are per-machine totals; MaxRecvWords is
	// the maximum information (in words) any single machine received —
	// the quantity the General Lower Bound Theorem reasons about.
	RecvWords    []int64
	SentWords    []int64
	MaxRecvWords int64
	// PerSuperstep is the per-phase breakdown (Lemmas 12/14 experiments).
	PerSuperstep []SuperstepStat
}

// Bits converts a word count to bits for an n-vertex input under the
// 1 word = ceil(log2 n)+1 bits convention.
func Bits(words int64, n int) int64 {
	return words * int64(Log2Words(n))
}

// AccountSuperstep computes one superstep's communication profile from
// the directed link-load matrix (linkWords[i*k+j] = words machine i
// sent to machine j; self-links must already be excluded — local
// computation is free) and the cross-machine message count. It also
// returns the per-machine receive/send totals for the run aggregates.
//
// This function is the single home of the paper's §1.1 cost arithmetic
// — max(1, ceil(max-link-words/Bandwidth)) rounds — shared by the
// in-process cluster (RunOn) and the standalone coordinator
// (transport/node), which is what makes Stats bit-identical across
// substrates by construction.
func AccountSuperstep(k, bandwidth int, linkWords []int64, messages int64) (ss SuperstepStat, recv, sent []int64) {
	ss.Messages = messages
	recv = make([]int64, k)
	sent = make([]int64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			w := linkWords[i*k+j]
			if w == 0 {
				continue
			}
			ss.Words += w
			recv[j] += w
			sent[i] += w
			if w > ss.MaxLinkWords {
				ss.MaxLinkWords = w
			}
		}
	}
	for i := 0; i < k; i++ {
		if recv[i] > ss.MaxRecvWords {
			ss.MaxRecvWords = recv[i]
		}
		if sent[i] > ss.MaxSentWords {
			ss.MaxSentWords = sent[i]
		}
	}
	ss.Rounds = 1
	if r := (ss.MaxLinkWords + int64(bandwidth) - 1) / int64(bandwidth); r > 1 {
		ss.Rounds = r
	}
	return ss, recv, sent
}

// Cluster coordinates k machines.
type Cluster[M any] struct {
	cfg      Config
	machines []Machine[M]
	rngs     []*rng.RNG
}

// ErrMaxSupersteps is returned when an algorithm fails to terminate
// within Config.MaxSupersteps barriers.
var ErrMaxSupersteps = errors.New("core: exceeded MaxSupersteps without termination")

// NewCluster builds a cluster; the factory is called once per machine.
func NewCluster[M any](cfg Config, factory func(id MachineID) Machine[M]) *Cluster[M] {
	if cfg.K < 2 {
		panic(fmt.Sprintf("core: need k >= 2 machines, got %d", cfg.K))
	}
	if cfg.Bandwidth < 1 {
		panic(fmt.Sprintf("core: need Bandwidth >= 1 word/round, got %d", cfg.Bandwidth))
	}
	if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = 1 << 20
	}
	c := &Cluster[M]{cfg: cfg}
	c.machines = make([]Machine[M], cfg.K)
	c.rngs = make([]*rng.RNG, cfg.K)
	for i := 0; i < cfg.K; i++ {
		c.machines[i] = factory(MachineID(i))
		c.rngs[i] = rng.NewStream(cfg.Seed, uint64(i))
	}
	return c
}

// K returns the number of machines.
func (c *Cluster[M]) K() int { return c.cfg.K }

// Machine returns machine i (for output collection after Run).
func (c *Cluster[M]) Machine(i MachineID) Machine[M] { return c.machines[int(i)] }

// Run executes supersteps until global quiescence (every machine done and
// no envelope in flight) and returns the communication statistics. It
// runs on the in-memory loopback transport; use RunOn for any other
// substrate (Config.Transport cannot be resolved here because building
// a non-loopback transport needs a message codec — see OpenTransport).
func (c *Cluster[M]) Run() (*Stats, error) {
	if c.cfg.Transport != transport.Default && c.cfg.Transport != transport.InMem {
		return nil, fmt.Errorf("core: Config.Transport=%q needs a codec; resolve it with OpenTransport and call RunOn", c.cfg.Transport)
	}
	t := inmem.New[M](c.cfg.K)
	defer t.Close()
	return c.RunOn(t)
}

// RunOn executes the cluster over the given transport. Envelope
// validation, From-stamping, and all round/word accounting happen here,
// before batches reach the transport, so the returned Stats are
// bit-identical whichever substrate carries the envelopes.
func (c *Cluster[M]) RunOn(t Transport[M]) (*Stats, error) {
	k := c.cfg.K
	stats := &Stats{
		RecvWords: make([]int64, k),
		SentWords: make([]int64, k),
	}
	defer stats.finalize()
	inboxes := make([][]Envelope[M], k)
	outs := make([][]Envelope[M], k)
	dones := make([]bool, k)
	linkLoad := make([]int64, k*k) // directed link (from,to) -> words

	for step := 0; ; step++ {
		if step >= c.cfg.MaxSupersteps {
			return stats, ErrMaxSupersteps
		}
		var wg sync.WaitGroup
		panics := make([]error, k)
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panics[i] = fmt.Errorf("core: machine %d panicked in superstep %d: %v", i, step, r)
					}
				}()
				ctx := &StepContext{
					Self:      MachineID(i),
					K:         k,
					Superstep: step,
					RNG:       c.rngs[i],
				}
				outs[i], dones[i] = c.machines[i].Step(ctx, inboxes[i])
			}(i)
		}
		wg.Wait()
		for _, perr := range panics {
			if perr != nil {
				return stats, perr
			}
		}

		// Validate, stamp, and build the link-load matrix; the cost
		// arithmetic itself lives in AccountSuperstep, shared with the
		// standalone coordinator.
		for i := range linkLoad {
			linkLoad[i] = 0
		}
		var messages int64
		allDone := true
		for i := 0; i < k; i++ {
			if !dones[i] {
				allDone = false
			}
			for j := range outs[i] {
				e := &outs[i][j]
				if e.To < 0 || int(e.To) >= k {
					return stats, fmt.Errorf("core: machine %d sent to invalid machine %d", i, e.To)
				}
				if e.Words < 0 {
					return stats, fmt.Errorf("core: machine %d sent negative-size envelope", i)
				}
				e.From = MachineID(i)
				if int(e.To) != i {
					// Link traffic. Self-addressed envelopes are free:
					// local computation costs nothing in the model.
					linkLoad[i*k+int(e.To)] += int64(e.Words)
					messages++
				}
			}
		}
		pending := false
		for i := 0; i < k; i++ {
			if len(outs[i]) > 0 {
				pending = true
				break
			}
		}
		if allDone && !pending {
			return stats, nil
		}

		ss, recvThis, sentThis := AccountSuperstep(k, c.cfg.Bandwidth, linkLoad, messages)
		for i := 0; i < k; i++ {
			stats.RecvWords[i] += recvThis[i]
			stats.SentWords[i] += sentThis[i]
		}
		stats.Rounds += ss.Rounds
		stats.Supersteps++
		stats.Messages += ss.Messages
		stats.Words += ss.Words
		stats.PerSuperstep = append(stats.PerSuperstep, ss)

		// Deliver through the transport; the contract guarantees inboxes
		// come back assembled in sender order for determinism.
		next, err := t.Exchange(step, outs)
		if err != nil {
			return stats, fmt.Errorf("core: transport exchange failed in superstep %d: %w", step, err)
		}
		if len(next) != k {
			return stats, fmt.Errorf("core: transport returned %d inboxes for a %d-machine cluster", len(next), k)
		}
		for i := 0; i < k; i++ {
			outs[i] = nil
		}
		inboxes = next
	}
}

// finalize computes MaxRecvWords from the per-machine totals; Run defers
// it so that both normal and error returns carry consistent stats.
func (s *Stats) finalize() {
	for _, w := range s.RecvWords {
		if w > s.MaxRecvWords {
			s.MaxRecvWords = w
		}
	}
}
