// Package core implements the k-machine model of the paper (§1.1) as an
// executable substrate.
//
// A Cluster runs k Machine implementations that are pairwise connected by
// bidirectional point-to-point links. Computation advances in supersteps:
// in each superstep every machine consumes the messages delivered to it,
// performs free local computation, and emits messages for the next
// superstep. Every machine's Step executes in its own goroutine and the
// cluster synchronises them with a barrier — machines share nothing and
// communicate only through envelopes, CSP style.
//
// Cost model. The paper charges one round per B bits crossing a link, and
// a phase that puts L bits on the most loaded link costs ceil(L/B) rounds
// (this is precisely the quantity bounded in Lemma 13 and Lemmas 12/14).
// The cluster therefore accounts a superstep at
//
//	max(1, ceil(max-link-words / Bandwidth))
//
// rounds, where message sizes are counted in words (1 word = Θ(log n)
// bits, so Bandwidth in words corresponds to the paper's B = Θ(polylog n)
// bits). Measured round totals consequently reproduce the congestion
// behaviour the theorems describe: a machine that must receive R words
// needs at least R/(k-1)/Bandwidth rounds no matter how the senders
// schedule, and a single hot link serialises.
//
// Determinism. Machine i draws randomness from its own SplitMix64 stream
// seeded by (runSeed, i), and inboxes are assembled in machine order, so
// a run is a pure function of (machines, Config).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"kmachine/internal/obs"
	"kmachine/internal/rng"
	"kmachine/internal/transport"
	"kmachine/internal/transport/inmem"
)

// MachineID identifies one of the k machines.
type MachineID = transport.MachineID

// Envelope is one message in flight. Words is its size in machine words
// for bandwidth accounting; From is stamped by the cluster.
type Envelope[M any] = transport.Envelope[M]

// Transport moves one superstep's batched envelopes between machines;
// see the contract in internal/transport. Cluster.RunOn accepts any
// implementation, and all word/round accounting happens in this package
// before envelopes reach the transport, so Stats are bit-identical on
// every substrate.
type Transport[M any] = transport.Transport[M]

// Machine is one of the k participants. Step consumes the envelopes
// delivered this superstep and returns the envelopes to send; done
// reports that this machine has no further work of its own (it may still
// be woken by incoming messages, and must then return done again once
// idle). The computation terminates when every machine reports done and
// no envelope is in flight.
//
// Buffer ownership: ctx and inbox are only valid for the duration of
// the Step call — the engine reuses the StepContext across supersteps
// and the transport recycles inbox storage (see the ownership rule on
// transport.Transport). A machine that needs an envelope beyond its
// Step must copy it. The returned out slice may be one the machine
// recycles: the engine and transport finish reading it before the next
// Step of the same machine begins.
type Machine[M any] interface {
	Step(ctx *StepContext, inbox []Envelope[M]) (out []Envelope[M], done bool)
}

// MachineFunc adapts a function to the Machine interface.
type MachineFunc[M any] func(ctx *StepContext, inbox []Envelope[M]) ([]Envelope[M], bool)

// Step implements Machine.
func (f MachineFunc[M]) Step(ctx *StepContext, inbox []Envelope[M]) ([]Envelope[M], bool) {
	return f(ctx, inbox)
}

// StepContext carries per-machine, per-superstep environment.
type StepContext struct {
	// Self is the executing machine's ID.
	Self MachineID
	// K is the number of machines.
	K int
	// Superstep is the zero-based superstep index.
	Superstep int
	// RNG is the machine's private random stream (paper: "each machine
	// has access to a private source of true random bits").
	RNG *rng.RNG

	// emitter is the machine's eager per-peer emission hook when the run
	// streams supersteps (a *Emitter[M] bound by the engine or the node
	// runtime); nil on the lockstep path. It is reached through the
	// generic package-level EmitBatch/EmitOrAppend, because StepContext
	// itself is deliberately non-generic.
	emitter any
}

// Config configures a cluster run.
type Config struct {
	// K is the number of machines (k > 2 in the paper; we accept k >= 2,
	// and k = n gives the congested clique of Corollary 1).
	K int
	// Bandwidth is the per-link capacity in words per round (the paper's
	// B, measured in Θ(log n)-bit words). Must be >= 1.
	Bandwidth int
	// Seed derives all machine random streams.
	Seed uint64
	// MaxSupersteps aborts runaway algorithms; 0 means a generous default.
	MaxSupersteps int
	// DropPerSuperstep disables Stats.PerSuperstep retention. Long runs
	// execute millions of supersteps and the per-phase breakdown is the
	// only Stats component that grows with them; dropping it keeps a
	// run's memory footprint constant. All other Stats fields are
	// unaffected.
	DropPerSuperstep bool
	// Transport names the envelope substrate to run on; empty means the
	// in-memory loopback. Core only stores the name — algorithm Run
	// functions resolve it through OpenTransport with their message
	// codec, because building a non-loopback transport needs one.
	Transport transport.Kind
	// Context cancels the whole run: RunOn observes it between barrier
	// phases and hands it to every transport Exchange, so canceling it
	// aborts the computation with a wrapped context error instead of
	// letting it run (or hang) to completion. nil means Background.
	// Cancellation cannot interrupt a machine's local Step — the model
	// makes local computation free — only the phases between barriers.
	Context context.Context
	// SuperstepTimeout bounds each superstep's cross-machine phases
	// (transport exchange and, on socket substrates, the coordinator
	// barrier): a peer that crashes or wedges mid-superstep surfaces as
	// a machine-attributed error within the timeout instead of blocking
	// the cluster forever. 0 means no per-superstep deadline; the
	// happy-path behaviour (Stats, outputs, determinism) is identical
	// with or without one.
	SuperstepTimeout time.Duration
	// Streaming opts the run into streaming supersteps when the
	// transport supports them (it implements transport.Streamer and
	// reports CanStream): machines that emit per-peer batches through
	// EmitBatch hand them to the wire while the superstep is still
	// computing, instead of the compute → barrier → exchange lockstep.
	// The knob changes scheduling only — §1.1 accounting stays
	// pre-transport, so Stats, outputs, and determinism hashes are
	// bit-identical with the flag on or off. Default off.
	Streaming bool
	// Checkpoint opts the run into per-superstep checkpointing and
	// in-run recovery (see checkpoint.go): every Checkpoint.Every
	// supersteps a consistent cut of all machine state is captured at
	// the observation barrier into Checkpoint.Sink, and a run driven by
	// RunCheckpointed survives machine loss by restoring the latest cut
	// and replaying. Off by default (Every == 0): the lockstep loop's
	// hook is a single nil check, keeping the zero-allocation steady
	// state and every golden hash unchanged. Checkpointing requires all
	// machines to implement Snapshotter and forces the lockstep
	// schedule (Streaming is ignored).
	Checkpoint CheckpointPolicy
	// Recorder, when non-nil, receives wall-clock phase spans from the
	// run: per machine and superstep, a compute span (the Step call) and
	// a barrier span (waiting for the slowest machine), plus one
	// cluster-level exchange span per superstep; socket substrates
	// additionally record per-peer frame spans (RunOverWire installs the
	// recorder on transports implementing transport.TraceSink). The
	// recorder must tolerate concurrent Record calls and should not
	// allocate (obs.Trace satisfies both). nil — the default — keeps the
	// engine on its span-free path: the zero-allocation discipline and
	// the golden determinism hashes are fenced with the recorder off,
	// and Stats are identical either way (spans measure time, never
	// model cost).
	Recorder obs.Recorder
}

// Log2Words returns the machine word size for an n-vertex input under
// the 1 word = ceil(log2 n)+1 bits convention — the shared ceil-log2
// helper behind DefaultBandwidth and Bits.
func Log2Words(n int) int {
	w := 1
	for v := n; v > 1; v >>= 1 {
		w++
	}
	return w
}

// DefaultBandwidth returns the bandwidth used by the experiments for an
// n-vertex input: Θ(log n) words per round, i.e. B = Θ(log² n) bits,
// squarely in the paper's B = Θ(polylog n) regime.
func DefaultBandwidth(n int) int { return Log2Words(n) }

// SuperstepStat records one superstep's communication profile.
type SuperstepStat struct {
	// Rounds charged to this superstep: max(1, ceil(maxLink/Bandwidth)).
	Rounds int64
	// Messages and Words are totals across all links.
	Messages int64
	Words    int64
	// MaxLinkWords is the load of the most loaded directed link.
	MaxLinkWords int64
	// MaxRecvWords / MaxSentWords are the per-machine extremes.
	MaxRecvWords int64
	MaxSentWords int64
}

// Stats aggregates a run.
type Stats struct {
	// Rounds is the measured round complexity (the paper's T).
	Rounds int64
	// Supersteps is the number of barrier phases executed.
	Supersteps int
	// Messages and Words are run totals.
	Messages int64
	Words    int64
	// RecvWords[i] / SentWords[i] are per-machine totals; MaxRecvWords is
	// the maximum information (in words) any single machine received —
	// the quantity the General Lower Bound Theorem reasons about.
	RecvWords    []int64
	SentWords    []int64
	MaxRecvWords int64
	// PerSuperstep is the per-phase breakdown (Lemmas 12/14 experiments).
	PerSuperstep []SuperstepStat
	// Recoveries counts in-run machine replacements performed by
	// checkpoint recovery (RunCheckpointed). It is a property of this
	// run's execution, not of the computation: a recovered run's other
	// Stats fields and outputs are bit-identical to an undisturbed
	// run's, and Recoveries is excluded from checkpoint blobs so the
	// counter survives restores.
	Recoveries int
}

// Bits converts a word count to bits for an n-vertex input under the
// 1 word = ceil(log2 n)+1 bits convention.
func Bits(words int64, n int) int64 {
	return words * int64(Log2Words(n))
}

// AccountSuperstep computes one superstep's communication profile from
// the directed link-load matrix (linkWords[i*k+j] = words machine i
// sent to machine j; self-links must already be excluded — local
// computation is free) and the cross-machine message count. recv and
// sent are caller-owned scratch vectors of length k: the function
// zeroes and then fills them with the per-machine receive/send totals
// for the run aggregates, so a caller accounting many supersteps can
// thread the same two slices through every call and allocate nothing.
//
// Together with accountSparse (the engine's touched-links variant, same
// arithmetic over a sparse index list) this is the home of the paper's
// §1.1 cost model — max(1, ceil(max-link-words/Bandwidth)) rounds —
// shared by the in-process cluster (RunOn) and the standalone
// coordinator (transport/node), which is what makes Stats bit-identical
// across substrates by construction.
func AccountSuperstep(k, bandwidth int, linkWords []int64, messages int64, recv, sent []int64) SuperstepStat {
	ss := SuperstepStat{Messages: messages}
	for i := 0; i < k; i++ {
		recv[i], sent[i] = 0, 0
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			w := linkWords[i*k+j]
			if w == 0 {
				continue
			}
			ss.Words += w
			recv[j] += w
			sent[i] += w
			if w > ss.MaxLinkWords {
				ss.MaxLinkWords = w
			}
		}
	}
	finishSuperstep(&ss, bandwidth, recv, sent)
	return ss
}

// accountSparse is AccountSuperstep over a sparse link set: touched
// lists the indices of linkLoad with traffic this superstep (built by
// the engine while stamping envelopes), and each visited entry is
// re-zeroed so linkLoad is clean for the next superstep without an
// O(k²) sweep. The sums and maxima are order-independent, so the
// resulting SuperstepStat is identical to the dense computation.
func accountSparse(k, bandwidth int, linkLoad []int64, touched []int32, messages int64, recv, sent []int64) SuperstepStat {
	ss := SuperstepStat{Messages: messages}
	for i := 0; i < k; i++ {
		recv[i], sent[i] = 0, 0
	}
	for _, idx := range touched {
		w := linkLoad[idx]
		linkLoad[idx] = 0
		ss.Words += w
		recv[int(idx)%k] += w
		sent[int(idx)/k] += w
		if w > ss.MaxLinkWords {
			ss.MaxLinkWords = w
		}
	}
	finishSuperstep(&ss, bandwidth, recv, sent)
	return ss
}

// finishSuperstep derives the per-machine extremes and the round charge
// — the arithmetic tail shared by the dense and sparse accountings.
func finishSuperstep(ss *SuperstepStat, bandwidth int, recv, sent []int64) {
	for i := range recv {
		if recv[i] > ss.MaxRecvWords {
			ss.MaxRecvWords = recv[i]
		}
		if sent[i] > ss.MaxSentWords {
			ss.MaxSentWords = sent[i]
		}
	}
	ss.Rounds = 1
	if r := (ss.MaxLinkWords + int64(bandwidth) - 1) / int64(bandwidth); r > 1 {
		ss.Rounds = r
	}
}

// Cluster coordinates k machines.
type Cluster[M any] struct {
	cfg      Config
	machines []Machine[M]
	rngs     []*rng.RNG
}

// ErrMaxSupersteps is returned when an algorithm fails to terminate
// within Config.MaxSupersteps barriers.
var ErrMaxSupersteps = errors.New("core: exceeded MaxSupersteps without termination")

// NewCluster builds a cluster; the factory is called once per machine.
func NewCluster[M any](cfg Config, factory func(id MachineID) Machine[M]) *Cluster[M] {
	if cfg.K < 2 {
		panic(fmt.Sprintf("core: need k >= 2 machines, got %d", cfg.K))
	}
	if cfg.Bandwidth < 1 {
		panic(fmt.Sprintf("core: need Bandwidth >= 1 word/round, got %d", cfg.Bandwidth))
	}
	if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = 1 << 20
	}
	c := &Cluster[M]{cfg: cfg}
	c.machines = make([]Machine[M], cfg.K)
	c.rngs = make([]*rng.RNG, cfg.K)
	for i := 0; i < cfg.K; i++ {
		c.machines[i] = factory(MachineID(i))
		c.rngs[i] = rng.NewStream(cfg.Seed, uint64(i))
	}
	return c
}

// K returns the number of machines.
func (c *Cluster[M]) K() int { return c.cfg.K }

// Machine returns machine i (for output collection after Run).
func (c *Cluster[M]) Machine(i MachineID) Machine[M] { return c.machines[int(i)] }

// Run executes supersteps until global quiescence (every machine done and
// no envelope in flight) and returns the communication statistics. It
// runs on the in-memory loopback transport; use RunOn for any other
// substrate (Config.Transport cannot be resolved here because building
// a non-loopback transport needs a message codec — see OpenTransport).
func (c *Cluster[M]) Run() (*Stats, error) {
	if c.cfg.Transport != transport.Default && c.cfg.Transport != transport.InMem {
		return nil, fmt.Errorf("core: Config.Transport=%q needs a codec; resolve it with OpenTransport and call RunOn", c.cfg.Transport)
	}
	t := inmem.New[M](c.cfg.K)
	defer t.Close()
	return c.RunOn(t)
}

// finalize computes MaxRecvWords from the per-machine totals; Run defers
// it so that both normal and error returns carry consistent stats.
func (s *Stats) finalize() {
	for _, w := range s.RecvWords {
		if w > s.MaxRecvWords {
			s.MaxRecvWords = w
		}
	}
}
