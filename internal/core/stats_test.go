package core

import (
	"testing"
	"testing/quick"
)

// Invariant tests on the statistics contract that the experiments rely
// on: per-superstep profiles must sum to the run totals, and the cost
// model must be consistent under load splitting.

func TestStatsPerSuperstepSumsToTotals(t *testing.T) {
	c := NewCluster(Config{K: 5, Bandwidth: 3, Seed: 9}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Superstep >= 4 {
				return nil, true
			}
			out := []Envelope[pingMsg]{}
			for i := 0; i < 1+ctx.RNG.Intn(6); i++ {
				out = append(out, Envelope[pingMsg]{
					To:    MachineID(ctx.RNG.Intn(ctx.K)),
					Words: int32(1 + ctx.RNG.Intn(4)),
				})
			}
			return out, false
		})
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	var rounds, msgs, words int64
	for _, ss := range st.PerSuperstep {
		rounds += ss.Rounds
		msgs += ss.Messages
		words += ss.Words
		if ss.Rounds < 1 {
			t.Error("superstep charged zero rounds")
		}
		if ss.MaxLinkWords > ss.Words {
			t.Error("per-link load exceeds total words")
		}
		if ss.MaxRecvWords > ss.Words || ss.MaxSentWords > ss.Words {
			t.Error("per-machine extreme exceeds superstep total")
		}
	}
	if rounds != st.Rounds || msgs != st.Messages || words != st.Words {
		t.Errorf("per-superstep sums (%d,%d,%d) != totals (%d,%d,%d)",
			rounds, msgs, words, st.Rounds, st.Messages, st.Words)
	}
	var sent, recv int64
	for i := range st.SentWords {
		sent += st.SentWords[i]
		recv += st.RecvWords[i]
	}
	if sent != st.Words || recv != st.Words {
		t.Errorf("sent %d / recv %d words, want both == total %d", sent, recv, st.Words)
	}
}

// TestCostModelSplitInvariance: sending W words on one link in one
// superstep costs the same as W one-word envelopes on the same link.
func TestCostModelSplitInvariance(t *testing.T) {
	run := func(split bool) int64 {
		c := NewCluster(Config{K: 2, Bandwidth: 3, Seed: 1}, func(id MachineID) Machine[pingMsg] {
			return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
				if ctx.Superstep > 0 || ctx.Self != 0 {
					return nil, true
				}
				if split {
					out := make([]Envelope[pingMsg], 17)
					for i := range out {
						out[i] = Envelope[pingMsg]{To: 1, Words: 1}
					}
					return out, true
				}
				return []Envelope[pingMsg]{{To: 1, Words: 17}}, true
			})
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Rounds
	}
	if a, b := run(true), run(false); a != b {
		t.Errorf("split %d rounds vs bulk %d rounds; cost model not volume-based", a, b)
	}
}

func TestPropertyRoundsCeilDivision(t *testing.T) {
	// For any (words, bandwidth), a single hot link costs exactly
	// ceil(words/bandwidth) rounds.
	f := func(wRaw uint8, bRaw uint8) bool {
		words := int(wRaw)%200 + 1
		bw := int(bRaw)%16 + 1
		c := NewCluster(Config{K: 2, Bandwidth: bw, Seed: 1}, func(id MachineID) Machine[pingMsg] {
			return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
				if ctx.Superstep > 0 || ctx.Self != 0 {
					return nil, true
				}
				return []Envelope[pingMsg]{{To: 1, Words: int32(words)}}, true
			})
		})
		st, err := c.Run()
		if err != nil {
			return false
		}
		want := int64((words + bw - 1) / bw)
		return st.Rounds == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewClusterValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"k too small":    {K: 1, Bandwidth: 1},
		"zero bandwidth": {K: 2, Bandwidth: 0},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewCluster(%+v) did not panic", cfg)
				}
			}()
			NewCluster(cfg, func(MachineID) Machine[pingMsg] { return nil })
		})
	}
}

// TestMachinePanicBecomesError: a panicking machine must surface as a
// run error, not crash the process — failure injection for the harness.
func TestMachinePanicBecomesError(t *testing.T) {
	c := NewCluster(Config{K: 3, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Self == 1 && ctx.Superstep == 2 {
				panic("injected fault")
			}
			return nil, ctx.Superstep >= 5
		})
	})
	_, err := c.Run()
	if err == nil {
		t.Fatal("machine panic did not surface as an error")
	}
	want := "machine 1 panicked in superstep 2"
	if got := err.Error(); !contains(got, want) {
		t.Errorf("error %q does not mention %q", got, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMachineAccessor(t *testing.T) {
	var made []Machine[pingMsg]
	c := NewCluster(Config{K: 3, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		m := MachineFunc[pingMsg](func(*StepContext, []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			return nil, true
		})
		made = append(made, m)
		return m
	})
	for i := 0; i < 3; i++ {
		if c.Machine(MachineID(i)) == nil {
			t.Fatalf("Machine(%d) is nil", i)
		}
	}
	if c.K() != 3 {
		t.Errorf("K() = %d, want 3", c.K())
	}
}
