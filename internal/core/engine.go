package core

import (
	"context"
	"fmt"
	"sync"

	"kmachine/internal/obs"
	"kmachine/internal/transport"
)

// This file is the superstep engine behind Cluster.RunOn: k persistent
// per-machine worker goroutines coordinated by a reusable two-phase
// barrier. The engine is built so that a steady-state superstep
// allocates nothing:
//
//   - workers are spawned once per run, not once per superstep (no
//     go/WaitGroup churn in the loop);
//   - each worker owns one StepContext for the whole run, with only the
//     Superstep field updated between barriers;
//   - link loads are accumulated sparsely — only the links actually
//     touched this superstep are visited and re-zeroed, instead of
//     clearing the dense k×k matrix every superstep;
//   - the per-machine receive/send scratch vectors are reused across
//     supersteps (see accountSparse / AccountSuperstep).
//
// The superstep protocol is two barrier phases per superstep:
//
//	coordinator                      worker i
//	write ctxs[*].Superstep
//	start.Await() ───────────────▶   start.Await()
//	                                 outs[i], dones[i] = Step(...)
//	done.Await()  ◀───────────────   done.Await()
//	validate, account, Exchange
//
// All engine state (inboxes, outs, dones, panics, ctxs) is handed back
// and forth through the barriers, whose internal mutex establishes the
// happens-before edges; no other synchronisation is needed. Shutdown
// (normal termination, error, or panic propagation) sets stop before
// releasing the start barrier one last time, so workers always exit and
// a run never leaks goroutines.

// barrier is a reusable generation-counted rendezvous for n
// participants: the p-th Await of a generation releases everyone, and
// the barrier is immediately ready for the next generation.
type barrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	n       int
	arrived int
	gen     uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond.L = &b.mu
	return b
}

// Await blocks until all n participants have arrived.
func (b *barrier) Await() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// engine is the per-run worker-pool state.
type engine[M any] struct {
	machines []Machine[M]
	start    *barrier // releases workers into a superstep
	done     *barrier // collects workers after their Step
	stop     bool     // set (pre-start-barrier) to shut workers down

	// rec receives per-machine compute and barrier-wait spans when
	// non-nil (Config.Recorder); nil keeps workers on the span-free
	// path the alloc fences pin.
	rec obs.Recorder

	inboxes [][]Envelope[M]
	outs    [][]Envelope[M]
	dones   []bool
	panics  []error
	ctxs    []StepContext
}

// worker is the long-lived goroutine driving machine i.
func (e *engine[M]) worker(i int) {
	for {
		e.start.Await()
		if e.stop {
			return
		}
		if e.rec == nil {
			e.stepMachine(i)
			e.done.Await()
			continue
		}
		// Instrumented path: the compute span is the Step call, the
		// barrier span the wait for the slowest machine to arrive at the
		// done barrier (the straggler itself records ~0). The superstep
		// is captured before the barrier releases — after it, the
		// coordinator may already be stamping the next one into ctxs.
		t0 := obs.Now()
		e.stepMachine(i)
		t1 := obs.Now()
		step := int32(e.ctxs[i].Superstep)
		e.rec.Record(obs.Span{Start: t0, Dur: t1 - t0,
			Machine: int32(i), Peer: -1, Superstep: step, Phase: obs.PhaseCompute})
		e.done.Await()
		e.rec.Record(obs.Span{Start: t1, Dur: obs.Now() - t1,
			Machine: int32(i), Peer: -1, Superstep: step, Phase: obs.PhaseBarrier})
	}
}

// stepMachine runs one Step with panic recovery; a recovered panic is
// surfaced to the coordinator through panics[i].
func (e *engine[M]) stepMachine(i int) {
	defer func() {
		if r := recover(); r != nil {
			e.panics[i] = fmt.Errorf("core: machine %d panicked in superstep %d: %v", i, e.ctxs[i].Superstep, r)
		}
	}()
	e.outs[i], e.dones[i] = e.machines[i].Step(&e.ctxs[i], e.inboxes[i])
}

// superstep drives one start/step/done cycle for all workers.
func (e *engine[M]) superstep(step int) {
	for i := range e.ctxs {
		e.ctxs[i].Superstep = step
	}
	e.start.Await()
	// Workers are stepping their machines here.
	e.done.Await()
}

// shutdown releases the workers with the stop flag set so they exit.
// It is deferred by RunOn, covering every return path exactly once.
func (e *engine[M]) shutdown() {
	e.stop = true
	e.start.Await()
}

// RunOn executes the cluster over the given transport. Envelope
// validation, From-stamping, and all round/word accounting happen here,
// before batches reach the transport, so the returned Stats are
// bit-identical whichever substrate carries the envelopes.
//
// Failure handling: Config.Context is observed between barrier phases
// (a canceled run aborts before the next superstep's exchange), and
// Config.SuperstepTimeout imposes a per-superstep deadline on the
// transport exchange, so a dead or wedged peer machine surfaces as a
// wrapped, machine-attributed error within the timeout. Both knobs
// leave the happy path byte-identical: with neither set, no context
// machinery is allocated and the golden determinism hashes are
// unchanged.
func (c *Cluster[M]) RunOn(t Transport[M]) (*Stats, error) {
	k := c.cfg.K
	runCtx := c.cfg.Context
	if runCtx == nil {
		runCtx = context.Background()
	}
	stats := &Stats{
		RecvWords: make([]int64, k),
		SentWords: make([]int64, k),
	}
	defer stats.finalize()

	e := &engine[M]{
		machines: c.machines,
		rec:      c.cfg.Recorder,
		start:    newBarrier(k + 1),
		done:     newBarrier(k + 1),
		inboxes:  make([][]Envelope[M], k),
		outs:     make([][]Envelope[M], k),
		dones:    make([]bool, k),
		panics:   make([]error, k),
		ctxs:     make([]StepContext, k),
	}
	for i := 0; i < k; i++ {
		e.ctxs[i] = StepContext{Self: MachineID(i), K: k, RNG: c.rngs[i]}
		go e.worker(i)
	}
	defer e.shutdown()

	// Streaming supersteps: discovered like TraceSink/WireMeter, by
	// type assertion, and additionally gated on the config knob and the
	// transport's own CanStream answer (a chaos wrapper exposes the
	// methods but delegates the decision to its inner transport). The
	// lockstep loop below stays byte-identical when the knob is off.
	if c.cfg.Streaming {
		if s, ok := t.(transport.Streamer[M]); ok && s.CanStream() {
			return stats, c.runStreaming(e, s, runCtx, stats)
		}
	}
	return stats, c.runLockstep(e, t, runCtx, stats, nil)
}

// runLockstep is the classic compute → barrier → exchange loop: every
// envelope travels in the machine's returned outs, and the transport
// sees one Exchange call per superstep.
//
// ck, when non-nil, arms per-superstep checkpointing (see
// checkpoint.go): a cut of all machines is captured every ck.every
// supersteps after accounting and before the exchange, and a resume
// request (ck.resume >= 0, set by RunCheckpointed after restoring a
// checkpoint) re-enters the loop at that superstep's exchange with the
// restored outs, skipping the already-executed compute and accounting.
// With ck nil the loop is byte-identical to its pre-checkpoint form.
func (c *Cluster[M]) runLockstep(e *engine[M], t Transport[M], runCtx context.Context, stats *Stats, ck *ckRun[M]) error {
	k := c.cfg.K

	// Link-load accumulator: linkLoad is dense (k×k) but only the
	// entries in touched are nonzero, so accounting and re-zeroing cost
	// O(touched links), not O(k²). recvS/sentS are the per-superstep
	// scratch reused by accountSparse.
	linkLoad := make([]int64, k*k)
	touched := make([]int32, 0, 4*k)
	recvS := make([]int64, k)
	sentS := make([]int64, k)

	start, skipCompute := 0, false
	if ck != nil && ck.resume >= 0 {
		start, skipCompute = ck.resume, true
		ck.resume = -2
	}
	for step := start; ; step++ {
		if skipCompute {
			// Resuming from a checkpoint: machines, stats, and outs hold
			// the restored post-compute image of this superstep — go
			// straight to retrying its exchange.
			skipCompute = false
		} else {
			if step >= c.cfg.MaxSupersteps {
				return ErrMaxSupersteps
			}
			if err := runCtx.Err(); err != nil {
				return fmt.Errorf("core: run canceled before superstep %d: %w", step, err)
			}
			e.superstep(step)
			for _, perr := range e.panics {
				if perr != nil {
					return perr
				}
			}
			// Second cancellation point, between the step barrier and the
			// exchange: a cancel that landed while machines were stepping
			// aborts before any envelope reaches the transport.
			if err := runCtx.Err(); err != nil {
				return fmt.Errorf("core: run canceled in superstep %d: %w", step, err)
			}

			// Validate, stamp, and accumulate the touched link loads; the
			// cost arithmetic itself lives in accountSparse/AccountSuperstep,
			// shared with the standalone coordinator.
			var messages int64
			allDone, pending := true, false
			for i := 0; i < k; i++ {
				if !e.dones[i] {
					allDone = false
				}
				if len(e.outs[i]) > 0 {
					pending = true
				}
				for j := range e.outs[i] {
					env := &e.outs[i][j]
					if env.To < 0 || int(env.To) >= k {
						return fmt.Errorf("core: machine %d sent to invalid machine %d", i, env.To)
					}
					if env.Words < 0 {
						return fmt.Errorf("core: machine %d sent negative-size envelope", i)
					}
					env.From = MachineID(i)
					if int(env.To) == i {
						// Self-addressed envelopes are free: local
						// computation costs nothing in the model.
						continue
					}
					messages++
					if w := int64(env.Words); w > 0 {
						idx := i*k + int(env.To)
						if linkLoad[idx] == 0 {
							touched = append(touched, int32(idx))
						}
						linkLoad[idx] += w
					}
				}
			}
			if allDone && !pending {
				return nil
			}

			ss := accountSparse(k, c.cfg.Bandwidth, linkLoad, touched, messages, recvS, sentS)
			touched = touched[:0]
			for i := 0; i < k; i++ {
				stats.RecvWords[i] += recvS[i]
				stats.SentWords[i] += sentS[i]
			}
			stats.Rounds += ss.Rounds
			stats.Supersteps++
			stats.Messages += ss.Messages
			stats.Words += ss.Words
			if !c.cfg.DropPerSuperstep {
				stats.PerSuperstep = append(stats.PerSuperstep, ss)
			}

			// The observation-barrier cut: everything above (state, RNG
			// draws, accounting) is included, the exchange below is not —
			// a restore retries it. Quiescence returned before this point,
			// so a captured superstep always has an exchange to retry.
			if ck != nil && (step+1)%ck.every == 0 {
				if err := ck.capture(step, e, stats); err != nil {
					return fmt.Errorf("core: checkpoint at superstep %d: %w", step, err)
				}
			}
		}

		// Deliver through the transport; the contract guarantees inboxes
		// come back assembled in sender order for determinism, and the
		// ownership rule lets the transport recycle inbox storage across
		// supersteps (double-buffered, so superstep s inboxes stay valid
		// while s+1 is assembled). The per-superstep deadline, when
		// configured, lives only around this call: the deadline context
		// is the run's sole allocation in a steady-state superstep, and
		// only when the knob is on.
		sctx, cancel := runCtx, context.CancelFunc(nil)
		if c.cfg.SuperstepTimeout > 0 {
			sctx, cancel = context.WithTimeout(runCtx, c.cfg.SuperstepTimeout)
		}
		var xt0 int64
		if e.rec != nil {
			xt0 = obs.Now()
		}
		next, err := t.Exchange(sctx, step, e.outs)
		if e.rec != nil {
			// One cluster-level span per superstep (Machine -1): the
			// exchange is a barrier, so its duration is the whole
			// cluster's communication phase. Recorded on the error path
			// too — a failed run's timeline is the one worth reading.
			e.rec.Record(obs.Span{Start: xt0, Dur: obs.Now() - xt0,
				Machine: -1, Peer: -1, Superstep: int32(step), Phase: obs.PhaseExchange})
		}
		if cancel != nil {
			cancel()
		}
		if err != nil {
			// A run canceled mid-exchange surfaces from the transport
			// as teardown shrapnel (closed connections); re-report the
			// cancellation as the root cause so errors.Is(err,
			// context.Canceled) holds as Config.Context documents.
			if cErr := runCtx.Err(); cErr != nil {
				return fmt.Errorf("core: run canceled in superstep %d: %w (teardown: %v)", step, cErr, err)
			}
			return fmt.Errorf("core: transport exchange failed in superstep %d: %w", step, err)
		}
		if len(next) != k {
			return fmt.Errorf("core: transport returned %d inboxes for a %d-machine cluster", len(next), k)
		}
		e.inboxes = next
	}
}

// runStreaming is the streaming-superstep loop: the transport is opened
// with BeginSuperstep before the workers are released, machines hand
// finished per-peer batches to it mid-compute through their bound
// Emitters, and FinishSuperstep ships the remainder and doubles as the
// superstep barrier.
//
// The §1.1 accounting is unchanged by construction. Every envelope is
// validated and From-stamped in core before the transport sees it —
// streamed batches in EmitBatch (on the emitting worker's goroutine),
// rest envelopes in the loop below — and the link-load sums fold the
// emitters' records and the rest loads together after the step barrier;
// since per-link sums and maxima are order-independent, the resulting
// SuperstepStat is bit-identical to the lockstep computation over the
// same envelopes. Mixing schedules per peer is forbidden (a machine
// that streamed a batch to j must not also return rest envelopes for
// j), which keeps each receiver's per-sender envelope order — and hence
// the golden output hashes — schedule-independent.
//
// Termination quiesces BEFORE FinishSuperstep, exactly like lockstep
// returns before its Exchange — so the final superstep's BeginSuperstep
// is deliberately left dangling and the transport's Close (deferred by
// the caller) unblocks the eagerly-parked receive I/O. Finishing it
// instead would ship k(k-1) empty frames the lockstep schedule never
// sends, breaking wire-byte parity.
func (c *Cluster[M]) runStreaming(e *engine[M], s transport.Streamer[M], runCtx context.Context, stats *Stats) error {
	k := c.cfg.K
	emitters := make([]*Emitter[M], k)
	for i := 0; i < k; i++ {
		emitters[i] = NewEmitter[M](s, MachineID(i), k)
		emitters[i].Bind(&e.ctxs[i])
	}

	linkLoad := make([]int64, k*k)
	touched := make([]int32, 0, 4*k)
	recvS := make([]int64, k)
	sentS := make([]int64, k)

	for step := 0; ; step++ {
		done, err := c.streamStep(e, s, emitters, runCtx, step, stats, linkLoad, &touched, recvS, sentS)
		if done || err != nil {
			return err
		}
	}
}

// streamStep drives one streaming superstep; done reports quiescent
// termination. The per-superstep deadline, when configured, covers the
// whole superstep — BeginSuperstep through FinishSuperstep — because
// under streaming the wire is active during compute, not only in a
// trailing exchange phase.
func (c *Cluster[M]) streamStep(e *engine[M], s transport.Streamer[M], emitters []*Emitter[M],
	runCtx context.Context, step int, stats *Stats, linkLoad []int64, touchedP *[]int32, recvS, sentS []int64) (done bool, err error) {
	k := c.cfg.K
	if step >= c.cfg.MaxSupersteps {
		return false, ErrMaxSupersteps
	}
	if err := runCtx.Err(); err != nil {
		return false, fmt.Errorf("core: run canceled before superstep %d: %w", step, err)
	}
	sctx, cancel := runCtx, context.CancelFunc(nil)
	if c.cfg.SuperstepTimeout > 0 {
		sctx, cancel = context.WithTimeout(runCtx, c.cfg.SuperstepTimeout)
	}
	if cancel != nil {
		defer cancel()
	}
	for i := 0; i < k; i++ {
		emitters[i].Reset()
	}
	if berr := s.BeginSuperstep(sctx, step); berr != nil {
		return false, fmt.Errorf("core: transport begin superstep %d: %w", step, berr)
	}
	e.superstep(step)
	for _, perr := range e.panics {
		if perr != nil {
			return false, perr
		}
	}
	if err := runCtx.Err(); err != nil {
		return false, fmt.Errorf("core: run canceled in superstep %d: %w", step, err)
	}

	// Validate and stamp the rest envelopes, fold both emission records
	// into the touched link loads, and surface any mid-compute
	// SendBatch failure before the finish barrier.
	touched := *touchedP
	var messages int64
	allDone, pending := true, false
	for i := 0; i < k; i++ {
		em := emitters[i]
		if serr := em.Err(); serr != nil {
			if cErr := runCtx.Err(); cErr != nil {
				return false, fmt.Errorf("core: run canceled in superstep %d: %w (teardown: %v)", step, cErr, serr)
			}
			return false, fmt.Errorf("core: machine %d streaming emit failed in superstep %d: %w", i, step, serr)
		}
		if !e.dones[i] {
			allDone = false
		}
		if len(e.outs[i]) > 0 {
			pending = true
		}
		for _, j := range em.touched {
			if w := em.words[j]; w > 0 {
				idx := i*k + int(j)
				if linkLoad[idx] == 0 {
					touched = append(touched, int32(idx))
				}
				linkLoad[idx] += w
			}
		}
		messages += em.msgs
		if em.anySent {
			pending = true
		}
		for j := range e.outs[i] {
			env := &e.outs[i][j]
			if env.To < 0 || int(env.To) >= k {
				*touchedP = touched
				return false, fmt.Errorf("core: machine %d sent to invalid machine %d", i, env.To)
			}
			if env.Words < 0 {
				*touchedP = touched
				return false, fmt.Errorf("core: machine %d sent negative-size envelope", i)
			}
			env.From = MachineID(i)
			if int(env.To) == i {
				continue
			}
			if em.emitted[env.To] {
				*touchedP = touched
				return false, fmt.Errorf("core: machine %d returned envelopes for machine %d after streaming a batch to it in superstep %d", i, env.To, step)
			}
			messages++
			if w := int64(env.Words); w > 0 {
				idx := i*k + int(env.To)
				if linkLoad[idx] == 0 {
					touched = append(touched, int32(idx))
				}
				linkLoad[idx] += w
			}
		}
	}
	if allDone && !pending {
		*touchedP = touched
		return true, nil
	}

	ss := accountSparse(k, c.cfg.Bandwidth, linkLoad, touched, messages, recvS, sentS)
	*touchedP = touched[:0]
	for i := 0; i < k; i++ {
		stats.RecvWords[i] += recvS[i]
		stats.SentWords[i] += sentS[i]
	}
	stats.Rounds += ss.Rounds
	stats.Supersteps++
	stats.Messages += ss.Messages
	stats.Words += ss.Words
	if !c.cfg.DropPerSuperstep {
		stats.PerSuperstep = append(stats.PerSuperstep, ss)
	}

	var xt0 int64
	if e.rec != nil {
		xt0 = obs.Now()
	}
	next, ferr := s.FinishSuperstep(sctx, step, e.outs)
	if e.rec != nil {
		// The cluster-level exchange span under streaming is only the
		// finish barrier — the drain of whatever the eager path had not
		// already shipped. Its shrinkage relative to lockstep is the
		// schedule's win; the obs overlap gauge (frame-write ∩ compute)
		// is the direct proof of concurrency.
		e.rec.Record(obs.Span{Start: xt0, Dur: obs.Now() - xt0,
			Machine: -1, Peer: -1, Superstep: int32(step), Phase: obs.PhaseExchange})
	}
	if ferr != nil {
		if cErr := runCtx.Err(); cErr != nil {
			return false, fmt.Errorf("core: run canceled in superstep %d: %w (teardown: %v)", step, cErr, ferr)
		}
		return false, fmt.Errorf("core: transport exchange failed in superstep %d: %w", step, ferr)
	}
	if len(next) != k {
		return false, fmt.Errorf("core: transport returned %d inboxes for a %d-machine cluster", len(next), k)
	}
	e.inboxes = next
	return false, nil
}
