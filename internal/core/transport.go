package core

import (
	"fmt"

	"kmachine/internal/transport"
	"kmachine/internal/transport/inmem"
	"kmachine/internal/transport/tcp"
	"kmachine/internal/transport/wire"
)

// OpenTransport resolves a transport kind (Config.Transport) to a live
// Transport for message type M. The codec is only exercised by
// substrates that actually serialise (tcp); the loopback ignores it.
// Callers own the returned transport and must Close it after RunOn.
func OpenTransport[M any](kind transport.Kind, k int, codec wire.Codec[M]) (Transport[M], error) {
	switch kind {
	case transport.Default, transport.InMem:
		return inmem.New[M](k), nil
	case transport.TCP:
		if codec == nil {
			return nil, fmt.Errorf("core: transport %q needs a message codec", kind)
		}
		return tcp.New[M](k, codec)
	case transport.TCPWireV1:
		if codec == nil {
			return nil, fmt.Errorf("core: transport %q needs a message codec", kind)
		}
		return tcp.NewWithVersion[M](k, codec, wire.BatchV1)
	default:
		return nil, fmt.Errorf("core: unknown transport kind %q", kind)
	}
}

// RunOver resolves the cluster's Config.Transport with the given codec,
// runs on it, and closes it — the shared tail of every algorithm's Run
// function.
func RunOver[M any](c *Cluster[M], codec wire.Codec[M]) (*Stats, error) {
	stats, _, err := RunOverWire(c, codec)
	return stats, err
}

// RunOverWire is RunOver additionally reporting the physical
// bytes-on-wire the substrate shipped (zero for the loopback, which
// implements no transport.WireMeter). The WireStats ride alongside the
// paper-level Stats rather than inside them: Stats are bit-identical
// across substrates by construction, while bytes-on-wire are exactly
// the substrate-dependent quantity the model abstracts away.
func RunOverWire[M any](c *Cluster[M], codec wire.Codec[M]) (*Stats, transport.WireStats, error) {
	t, err := OpenTransport[M](c.cfg.Transport, c.cfg.K, codec)
	if err != nil {
		return nil, transport.WireStats{}, err
	}
	defer t.Close()
	if c.cfg.Recorder != nil {
		// Substrates with frame-level detail (tcp) record per-peer
		// write/read/decode spans into the same recorder the engine's
		// phase spans go to; the loopback has none and stays dark.
		if ts, ok := t.(transport.TraceSink); ok {
			ts.SetRecorder(c.cfg.Recorder)
		}
	}
	var stats *Stats
	if c.cfg.Checkpoint.Every > 0 {
		// Checkpointed runs recover from machine loss by replacing the
		// dead transport with a freshly opened one of the same kind (a
		// recovered tcp mesh binds new ports — the replacement round the
		// recovery protocol reattaches on).
		reopen := func() (Transport[M], error) {
			nt, err := OpenTransport[M](c.cfg.Transport, c.cfg.K, codec)
			if err == nil && c.cfg.Recorder != nil {
				if ts, ok := nt.(transport.TraceSink); ok {
					ts.SetRecorder(c.cfg.Recorder)
				}
			}
			return nt, err
		}
		stats, err = c.RunCheckpointed(t, codec, reopen)
	} else {
		stats, err = c.RunOn(t)
	}
	var w transport.WireStats
	if m, ok := t.(transport.WireMeter); ok {
		w = m.WireStats()
	}
	return stats, w, err
}
