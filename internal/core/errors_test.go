package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"kmachine/internal/transport"
)

// Error-path coverage for Cluster.Run: invalid destinations, negative
// sizes, superstep exhaustion, and machine panics must all surface as
// errors (never hang or crash the process), and the stats returned
// alongside the error must stay consistent.

func TestNegativeWordsRejected(t *testing.T) {
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			return []Envelope[pingMsg]{{To: 1, Words: -3}}, true
		})
	})
	_, err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "negative-size") {
		t.Fatalf("err = %v, want negative-size rejection", err)
	}
}

func TestInvalidDestinationNamesSenderAndTarget(t *testing.T) {
	c := NewCluster(Config{K: 3, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Self == 2 {
				return []Envelope[pingMsg]{{To: -1, Words: 1}}, true
			}
			return nil, true
		})
	})
	_, err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "machine 2") {
		t.Fatalf("err = %v, want the offending machine named", err)
	}
}

func TestMachinePanicIsRecoveredWithContext(t *testing.T) {
	c := NewCluster(Config{K: 3, Bandwidth: 1, Seed: 1}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if ctx.Self == 1 && ctx.Superstep == 2 {
				panic("intentional test panic")
			}
			return nil, false
		})
	})
	_, err := c.Run()
	if err == nil {
		t.Fatal("panicking machine did not error the run")
	}
	for _, want := range []string{"machine 1", "superstep 2", "intentional test panic"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err %q missing %q", err, want)
		}
	}
}

func TestErrMaxSuperstepsCarriesPartialStats(t *testing.T) {
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1, MaxSupersteps: 7}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(ctx *StepContext, inbox []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			return []Envelope[pingMsg]{{To: MachineID(1 - ctx.Self), Words: 1}}, false
		})
	})
	st, err := c.Run()
	if !errors.Is(err, ErrMaxSupersteps) {
		t.Fatalf("err = %v, want ErrMaxSupersteps", err)
	}
	if st == nil || st.Supersteps != 7 {
		t.Fatalf("partial stats = %+v, want 7 supersteps accounted", st)
	}
	if st.MaxRecvWords != st.RecvWords[0] && st.MaxRecvWords != st.RecvWords[1] {
		t.Errorf("finalize did not run on the error path: %+v", st)
	}
}

func TestRunRejectsUnresolvableTransportKind(t *testing.T) {
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1, Transport: transport.TCP}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(*StepContext, []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			return nil, true
		})
	})
	if _, err := c.Run(); err == nil {
		t.Fatal("Run() silently ignored Config.Transport=tcp")
	}
}

func TestOpenTransportUnknownKind(t *testing.T) {
	if _, err := OpenTransport[pingMsg]("carrier-pigeon", 2, nil); err == nil {
		t.Fatal("unknown transport kind accepted")
	}
	tr, err := OpenTransport[pingMsg]("", 2, nil)
	if err != nil {
		t.Fatalf("default transport: %v", err)
	}
	tr.Close()
}

func TestLog2Words(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := Log2Words(c.n); got != c.want {
			t.Errorf("Log2Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// The deduplicated helpers must stay consistent with it.
	for _, n := range []int{1, 10, 1024, 1 << 20} {
		if DefaultBandwidth(n) != Log2Words(n) {
			t.Errorf("DefaultBandwidth(%d) != Log2Words", n)
		}
		if Bits(7, n) != 7*int64(Log2Words(n)) {
			t.Errorf("Bits(7, %d) inconsistent with Log2Words", n)
		}
	}
}

func TestPreCanceledContextAbortsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1, Context: ctx}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(*StepContext, []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			t.Error("machine stepped under a pre-canceled context")
			return nil, true
		})
	})
	st, err := c.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st == nil || st.Supersteps != 0 {
		t.Errorf("stats = %+v, want zero supersteps", st)
	}
}

func TestMidRunCancellationStopsCluster(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	c := NewCluster(Config{K: 2, Bandwidth: 1, Seed: 1, Context: ctx}, func(id MachineID) Machine[pingMsg] {
		return MachineFunc[pingMsg](func(sc *StepContext, _ []Envelope[pingMsg]) ([]Envelope[pingMsg], bool) {
			if sc.Self == 0 {
				steps = sc.Superstep
				if sc.Superstep == 3 {
					cancel()
				}
			}
			return []Envelope[pingMsg]{{To: 1 - sc.Self, Words: 1}}, false
		})
	})
	_, err := c.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if steps > 4 {
		t.Errorf("cluster ran %d supersteps past the cancellation", steps-3)
	}
}
